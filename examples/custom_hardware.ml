(* Bringing your own chip: the hardware abstraction (DEHA, §4.2) is a plain
   record — describe a different dual-mode design and the whole compiler
   stack retargets. This example defines a small edge-class SRAM chip,
   validates it, and sweeps the array count to see where dual-mode
   compilation pays off most.

   Run with: dune exec examples/custom_hardware.exe *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Baseline = Cim_baselines.Baseline
module Table = Cim_util.Table

(* A hypothetical edge accelerator: fewer, smaller SRAM arrays; slower main
   memory (LPDDR on a narrow bus) but a 2-cycle switch. Every parameter the
   compiler consumes lives in this record. *)
let edge_chip =
  Chip.validate
    {
      Chip.name = "EdgeCIM-32";
      n_arrays = 32;
      grid_cols = 8;
      rows = 256;
      cols = 256;
      cell_bits = 1;
      weight_bits = 8;
      buffer_bytes = Cim_util.Bytesize.kib 32;
      internal_bw = 128.;
      extern_bw = 16.;
      op_cim = 256. *. 32. /. 8.;
      d_cim = 32.;
      l_m2c = 2.;
      l_c2m = 2.;
      write_latency = 8.;
      switch_method = "per-bank wordline driver select";
      freq_mhz = 500.;
    }

let () =
  Format.printf "%a@.@." Chip.pp edge_chip;

  (* MobileNetV2 is the natural edge workload. *)
  let entry = Option.get (Zoo.find "mobilenetv2") in
  let w = Workload.prefill ~batch:1 1 in
  let c = (Cmswitch.compile_model edge_chip entry w).Cmswitch.total_cycles in
  let b = Baseline.compile_model Baseline.Cim_mlc edge_chip entry w in
  Printf.printf "MobileNetV2 on EdgeCIM-32: CMSwitch %.3e vs CIM-MLC %.3e cycles (%.2fx)\n\n"
    c b (b /. c);

  (* Sweep the array budget: with very few arrays everything is forced into
     compute mode (weights must fit); with more arrays the compiler starts
     spending the surplus on bandwidth. *)
  let tbl =
    Table.create ~title:"dual-mode benefit vs array count (MobileNetV2)"
      [ ("arrays", Table.Right); ("CMSwitch cycles", Table.Right);
        ("speedup vs CIM-MLC", Table.Right); ("mem-mode ratio", Table.Right) ]
  in
  List.iter
    (fun n ->
      let chip = Config.scaled ~name:(Printf.sprintf "EdgeCIM-%d" n) edge_chip ~n_arrays:n in
      let mc = Cmswitch.compile_model chip entry w in
      let base = Baseline.compile_model Baseline.Cim_mlc chip entry w in
      Table.add_row tbl
        [ string_of_int n;
          Table.cell_si mc.Cmswitch.total_cycles;
          Table.cell_speedup (base /. mc.Cmswitch.total_cycles);
          Table.cell_pct mc.Cmswitch.mem_ratio ])
    [ 16; 32; 64; 128 ];
  Table.print tbl;

  (* Compiler knobs travel with the unified config. *)
  let fast_config =
    Cmswitch.Config.(
      default |> with_max_segment_ops 4 |> with_milp_max_nodes 100)
  in
  let t0 = Sys.time () in
  let quick = Cmswitch.compile_model ~config:fast_config edge_chip entry w in
  Printf.printf
    "\nreduced search (segment window 4, 100 B&B nodes): %.3e cycles in %.2fs (full: %.3e)\n"
    quick.Cmswitch.total_cycles (Sys.time () -. t0) c
