(** OpenMetrics (Prometheus text exposition) renderer for the metrics
    registry.

    Dotted registry names are sanitised to the exposition grammar
    ([a-zA-Z_:][a-zA-Z0-9_:]*, so [serving.offered] becomes
    [serving_offered]); counters emit a [_total]-suffixed sample,
    histograms the cumulative [_bucket{le="..."}]/[_sum]/[_count] series
    from their fixed buckets, labelled instruments carry their label set
    on every sample, and the output terminates with [# EOF] as the
    OpenMetrics specification requires. *)

val sanitize_name : string -> string
(** Map a registry name onto the exposition grammar: any character outside
    [a-zA-Z0-9_:] (or a leading digit) becomes ['_']. *)

val to_string : unit -> string
(** Render every touched instrument ({!Metrics.dump}). *)

val write_file : string -> unit
(** {!to_string} to a file. *)
