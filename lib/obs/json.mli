(** Minimal JSON value type with a printer and a parser.

    Shared by the trace exporter (Chrome trace-event files), the metrics
    dump, and the benchmark harness's [--json] output; the parser exists so
    tests can load emitted files back and validate their structure without
    an external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : ?pretty:bool -> t -> string
(** Serialise. [Float] values that are NaN or infinite are emitted as
    [null] (JSON has no encoding for them); finite floats round-trip. *)

val of_string : string -> t
(** Parse a JSON document. Raises [Parse_error] with a position-bearing
    message on malformed input. Numbers with a fraction or exponent parse
    as [Float]; bare integers as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj ...)] looks up key [k]; [None] on absence or non-objects. *)

val to_float : t -> float option
(** Numeric accessor accepting both [Int] and [Float]. *)
