type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;
  dur : float option;
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

let on = ref false
let set_enabled b = on := b
let enabled () = !on

(* recording order, reversed *)
let events : event list ref = ref []
let named : (int * int * string, unit) Hashtbl.t = Hashtbl.create 16

let reset () =
  events := [];
  Hashtbl.reset named

let pid_compiler = 1
let pid_simulator = 2
let pid_machine = 3

let epoch = Unix.gettimeofday ()
let last = ref 0.

(* strictly increasing: consecutive calls within one microsecond still get
   distinct stamps (1 ns apart), so a parent span always opens strictly
   before and closes strictly after its children — interval containment
   stays unambiguous even for empty spans *)
let now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let t = if t > !last then t else !last +. 0.001 in
  last := t;
  t

let push e = events := e :: !events

let complete ?(cat = "span") ?(args = []) ~pid ~tid ~ts ~dur name =
  if !on then push { name; cat; ph = "X"; ts; dur = Some dur; pid; tid; args }

let instant ?(cat = "mark") ?(args = []) name =
  if !on then
    push
      { name; cat; ph = "i"; ts = now_us (); dur = None; pid = pid_compiler;
        tid = 1; args }

let counter ?(cat = "counter") ~pid ~ts name samples =
  if !on then
    push
      { name; cat; ph = "C"; ts; dur = None; pid; tid = 0;
        args = List.map (fun (k, v) -> (k, Json.Float v)) samples }

let metadata ~pid ~tid meta label =
  if !on && not (Hashtbl.mem named (pid, tid, meta)) then begin
    Hashtbl.replace named (pid, tid, meta) ();
    push
      { name = meta; cat = "__metadata"; ph = "M"; ts = 0.; dur = None; pid; tid;
        args = [ ("name", Json.String label) ] }
  end

let name_process ~pid label = metadata ~pid ~tid:0 "process_name" label
let name_thread ~pid ~tid label = metadata ~pid ~tid "thread_name" label

let with_span ?(cat = "span") ?(args = []) name f =
  if not !on then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        (* events are pushed at span *exit*, so a parent closes after its
           children; the exporter re-sorts by ts to restore begin order *)
        push
          { name; cat; ph = "X"; ts = t0; dur = Some (t1 -. t0);
            pid = pid_compiler; tid = 1; args })
      f
  end

let event_json e =
  let base =
    [ ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String e.ph);
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid) ]
  in
  let dur = match e.dur with Some d -> [ ("dur", Json.Float d) ] | None -> [] in
  let args = if e.args = [] then [] else [ ("args", Json.Obj e.args) ] in
  Json.Obj (base @ dur @ args)

let export () =
  let evs = List.rev !events in
  (* stable sort on (pid, ts): within one process, parents (earlier ts)
     precede children, which Perfetto's "X"-event nesting expects. Spans
     recorded at exit can share a ts with their children when the clock
     does not advance between entries, so ties put the longer (enclosing)
     span first. *)
  let dur e = match e.dur with Some d -> d | None -> 0. in
  let evs =
    List.stable_sort
      (fun a b ->
        match compare a.pid b.pid with
        | 0 -> (
          match Float.compare a.ts b.ts with
          | 0 -> Float.compare (dur b) (dur a)
          | c -> c)
        | c -> c)
      evs
  in
  Json.Obj
    [ ("traceEvents", Json.List (List.map event_json evs));
      ("displayTimeUnit", Json.String "ms") ]

let write_file file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~pretty:true (export ())))
