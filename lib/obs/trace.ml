type event = {
  name : string;
  cat : string;
  ph : string;
  ts : float;
  dur : float option;
  pid : int;
  tid : int;
  args : (string * Json.t) list;
}

(* domain-safe: the flag is read on every hot path from any domain *)
let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* Recording order; main-domain state guarded by [mutex]. Worker domains
   never touch it directly — they record into a domain-local buffer
   ({!with_buffer}) merged by the coordinator.

   The store is a FIFO [Queue] so a capacity cap ({!set_capacity}) can
   evict the OLDEST event in O(1) — ring semantics: a long fleet run with
   tracing left on keeps the most recent window instead of growing without
   bound. Metadata events (track names) are kept separately and are never
   evicted; there is one per named track, so they are bounded by nature. *)
let events : event Queue.t = Queue.create ()
let meta_events : event list ref = ref [] (* reversed *)
let capacity : int option ref = ref None
let dropped = ref 0
let named : (int * int * string, unit) Hashtbl.t = Hashtbl.create 16
let mutex = Mutex.create ()

let pid_compiler = 1
let pid_simulator = 2
let pid_machine = 3
let pid_fleet = 4

(* Per-domain recording state. [buffer_key]: where pushes land (None = the
   shared queue); [tid_key]: the lane spans are attributed to — pool workers
   get their own tid so Perfetto shows the parallel solves side by side. *)
let buffer_key : event list ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let tid_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 1)

let set_domain_tid tid = Domain.DLS.set tid_key tid
let domain_tid () = Domain.DLS.get tid_key

let epoch = Unix.gettimeofday ()
let last = Atomic.make 0.

(* strictly increasing across *all* domains: a CAS loop publishes each
   stamp, so consecutive acquisitions anywhere in the process get distinct,
   monotone values (1 ns apart when the wall clock does not advance) —
   merged per-domain buffers can therefore never produce a span that ends
   before it starts or a child stamped before its parent entered *)
let rec now_us () =
  let t = (Unix.gettimeofday () -. epoch) *. 1e6 in
  let l = Atomic.get last in
  let t = if t > l then t else l +. 0.001 in
  if Atomic.compare_and_set last l t then t else now_us ()

let reset () =
  Mutex.lock mutex;
  Queue.clear events;
  meta_events := [];
  dropped := 0;
  Hashtbl.reset named;
  Mutex.unlock mutex

let set_capacity cap =
  (match cap with
  | Some c when c <= 0 -> invalid_arg "Trace.set_capacity: capacity must be positive"
  | _ -> ());
  Mutex.lock mutex;
  capacity := cap;
  (* an already-overfull store shrinks immediately, oldest first *)
  (match cap with
  | Some c ->
    while Queue.length events > c do
      ignore (Queue.pop events);
      incr dropped
    done
  | None -> ());
  Mutex.unlock mutex

let get_capacity () =
  Mutex.lock mutex;
  let c = !capacity in
  Mutex.unlock mutex;
  c

let dropped_count () =
  Mutex.lock mutex;
  let d = !dropped in
  Mutex.unlock mutex;
  d

(* trace.dropped is registered lazily so enabling metrics without tracing
   does not create it; bumped under the trace mutex only when eviction
   actually happens (cold path) *)
let dropped_counter = lazy (Metrics.counter "trace.dropped")

(* caller holds [mutex] *)
let push_locked e =
  Queue.push e events;
  match !capacity with
  | Some c when Queue.length events > c ->
    ignore (Queue.pop events);
    incr dropped;
    Metrics.incr (Lazy.force dropped_counter)
  | _ -> ()

let push e =
  match Domain.DLS.get buffer_key with
  | Some buf -> buf := e :: !buf
  | None ->
    Mutex.lock mutex;
    push_locked e;
    Mutex.unlock mutex

let with_buffer f =
  let saved = Domain.DLS.get buffer_key in
  let buf = ref [] in
  Domain.DLS.set buffer_key (Some buf);
  let restore () = Domain.DLS.set buffer_key saved in
  match f () with
  | v ->
    restore ();
    (v, List.rev !buf)
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    restore ();
    Printexc.raise_with_backtrace e bt

let merge buffered =
  if buffered <> [] then begin
    Mutex.lock mutex;
    List.iter push_locked buffered;
    Mutex.unlock mutex
  end

let complete ?(cat = "span") ?(args = []) ~pid ~tid ~ts ~dur name =
  if Atomic.get on then
    push { name; cat; ph = "X"; ts; dur = Some dur; pid; tid; args }

let instant ?(cat = "mark") ?(args = []) ?pid ?tid ?ts name =
  if Atomic.get on then
    push
      { name; cat; ph = "i"; dur = None;
        ts = (match ts with Some t -> t | None -> now_us ());
        pid = Option.value pid ~default:pid_compiler;
        tid = (match tid with Some t -> t | None -> domain_tid ());
        args }

let counter ?(cat = "counter") ~pid ~ts name samples =
  if Atomic.get on then
    push
      { name; cat; ph = "C"; ts; dur = None; pid; tid = 0;
        args = List.map (fun (k, v) -> (k, Json.Float v)) samples }

let metadata ~pid ~tid meta label =
  if Atomic.get on then begin
    Mutex.lock mutex;
    let fresh = not (Hashtbl.mem named (pid, tid, meta)) in
    if fresh then begin
      Hashtbl.replace named (pid, tid, meta) ();
      meta_events :=
        { name = meta; cat = "__metadata"; ph = "M"; ts = 0.; dur = None; pid;
          tid; args = [ ("name", Json.String label) ] }
        :: !meta_events
    end;
    Mutex.unlock mutex
  end

let name_process ~pid label = metadata ~pid ~tid:0 "process_name" label
let name_thread ~pid ~tid label = metadata ~pid ~tid "thread_name" label

let with_span ?(cat = "span") ?(args = []) name f =
  if not (Atomic.get on) then f ()
  else begin
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        (* events are pushed at span *exit*, so a parent closes after its
           children; the exporter re-sorts by ts to restore begin order *)
        push
          { name; cat; ph = "X"; ts = t0; dur = Some (t1 -. t0);
            pid = pid_compiler; tid = domain_tid (); args })
      f
  end

let event_json e =
  let base =
    [ ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String e.ph);
      ("ts", Json.Float e.ts);
      ("pid", Json.Int e.pid);
      ("tid", Json.Int e.tid) ]
  in
  let dur = match e.dur with Some d -> [ ("dur", Json.Float d) ] | None -> [] in
  let args = if e.args = [] then [] else [ ("args", Json.Obj e.args) ] in
  Json.Obj (base @ dur @ args)

let export () =
  Mutex.lock mutex;
  let evs = List.rev (Queue.fold (fun acc e -> e :: acc) [] events) in
  let meta = List.rev !meta_events in
  let n_dropped = !dropped in
  Mutex.unlock mutex;
  let evs = meta @ evs in
  (* stable sort on (pid, ts): within one process, parents (earlier ts)
     precede children, which Perfetto's "X"-event nesting expects. Spans
     recorded at exit can share a ts with their children when the clock
     does not advance between entries, so ties put the longer (enclosing)
     span first. *)
  let dur e = match e.dur with Some d -> d | None -> 0. in
  let evs =
    List.stable_sort
      (fun a b ->
        match compare a.pid b.pid with
        | 0 -> (
          match Float.compare a.ts b.ts with
          | 0 -> Float.compare (dur b) (dur a)
          | c -> c)
        | c -> c)
      evs
  in
  Json.Obj
    ([ ("traceEvents", Json.List (List.map event_json evs));
       ("displayTimeUnit", Json.String "ms") ]
    @ if n_dropped > 0 then [ ("droppedEvents", Json.Int n_dropped) ] else [])

let write_file file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~pretty:true (export ())))
