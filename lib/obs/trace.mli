(** Hierarchical tracing with a Chrome trace-event exporter.

    Spans nest by lexical structure ({!with_span}) on the compiler track and
    by explicit timestamps on the simulator tracks; the export is the JSON
    object format of the Chrome trace-event specification, loadable in
    Perfetto or [chrome://tracing].

    Tracing is globally disabled by default: every recording entry point
    checks one boolean and returns immediately, so instrumented hot paths
    cost nothing observable in production runs (see the self-overhead guard
    in [test/t_obs.ml]).

    Four processes partition the timeline, each with its own clock:
    - pid {!pid_compiler} — wall-clock microseconds (spans of compilation
      passes);
    - pid {!pid_simulator} — simulated cycles (timing-model segments and
      per-array mode residency);
    - pid {!pid_machine} — machine steps (one per executed meta-operator
      effect, per-array mode residency from the functional machine);
    - pid {!pid_fleet} — fleet-serving cycles (per-request phase spans on
      per-chip lanes, fault/breaker instant markers).

    The event store can be bounded ({!set_capacity}): with a capacity set
    it behaves as a ring — the oldest events are evicted first, an
    eviction count is kept (and surfaced as the [trace.dropped] metrics
    counter), and the export reports it as ["droppedEvents"]. Metadata
    (track-name) events are never evicted. *)

type event
(** One recorded trace event (opaque; see {!with_buffer} / {!merge}). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events and zero the dropped-event count (the enabled
    flag and capacity are left as-is). *)

val set_capacity : int option -> unit
(** Bound the shared event store to the given number of events ([None] =
    unbounded, the default). When full, recording a new event evicts the
    oldest one (ring semantics) and increments both the internal dropped
    count and the [trace.dropped] metrics counter (when metrics are
    enabled). Setting a capacity below the current event count evicts
    immediately. Raises [Invalid_argument] on a non-positive capacity. *)

val get_capacity : unit -> int option

val dropped_count : unit -> int
(** Events evicted by the capacity cap since the last {!reset}. *)

val pid_compiler : int
val pid_simulator : int
val pid_machine : int
val pid_fleet : int

val now_us : unit -> float
(** Microseconds since the trace module was initialised, clamped to be
    strictly increasing across calls {e from any domain} (stamps are
    published through an atomic CAS; consecutive acquisitions within one
    microsecond are spread 1 ns apart, so span intervals never degenerate
    and per-domain buffers merge onto one monotone timeline). *)

(** {2 Domain-safety}

    All recording entry points may be called from any domain. By default
    events land in the shared (mutex-guarded) list; a worker that wraps its
    work in {!with_buffer} records into a domain-local buffer instead, and
    the coordinator appends the buffers with {!merge} in an order of its
    choosing — [Segment.run] merges in task-submission order, so the event
    sequence is identical whatever the job count. *)

val with_buffer : (unit -> 'a) -> 'a * event list
(** Run [f] with this domain's recording redirected to a fresh local
    buffer; returns [f]'s value and the buffered events in recording
    order. Nestable; the previous destination is restored even when [f]
    raises (buffered events of a raising [f] are dropped with it). *)

val merge : event list -> unit
(** Append events captured by {!with_buffer} to the shared list, preserving
    their order. *)

val set_domain_tid : int -> unit
(** Set the Chrome-trace thread id spans from this domain are attributed
    to (default 1). Pool workers get distinct tids so parallel solves
    appear as parallel lanes in Perfetto. *)

val domain_tid : unit -> int

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a complete event on the compiler
    track; the event is recorded even if [f] raises. When tracing is
    disabled this is exactly [f ()]. *)

val instant :
  ?cat:string -> ?args:(string * Json.t) list -> ?pid:int -> ?tid:int ->
  ?ts:float -> string -> unit
(** A zero-duration marker; defaults to the compiler track at the current
    wall clock, with explicit coordinates available for synthetic clocks
    (the fleet simulator stamps fault/breaker markers in cycles). *)

val complete :
  ?cat:string -> ?args:(string * Json.t) list -> pid:int -> tid:int ->
  ts:float -> dur:float -> string -> unit
(** A complete event with explicit coordinates — used by the simulators,
    whose clocks are synthetic (cycles, machine steps). *)

val counter : ?cat:string -> pid:int -> ts:float -> string -> (string * float) list -> unit
(** A counter-track sample (Chrome ["C"] event). *)

val name_process : pid:int -> string -> unit
val name_thread : pid:int -> tid:int -> string -> unit
(** Metadata events labelling tracks in the viewer. Idempotent per target:
    repeated names for the same (pid, tid) are recorded once. *)

val export : unit -> Json.t
(** The trace as [{"traceEvents": [...], "displayTimeUnit": "ms"}] (plus
    ["droppedEvents"] when the capacity cap evicted any). Events appear in
    recording order; span events carry [ph = "X"] with [ts]/[dur] so
    nesting is recovered by interval containment. *)

val write_file : string -> unit
(** [export] pretty-printed to a file. *)
