(** Hierarchical tracing with a Chrome trace-event exporter.

    Spans nest by lexical structure ({!with_span}) on the compiler track and
    by explicit timestamps on the simulator tracks; the export is the JSON
    object format of the Chrome trace-event specification, loadable in
    Perfetto or [chrome://tracing].

    Tracing is globally disabled by default: every recording entry point
    checks one boolean and returns immediately, so instrumented hot paths
    cost nothing observable in production runs (see the self-overhead guard
    in [test/t_obs.ml]).

    Three processes partition the timeline, each with its own clock:
    - pid {!pid_compiler} — wall-clock microseconds (spans of compilation
      passes);
    - pid {!pid_simulator} — simulated cycles (timing-model segments and
      per-array mode residency);
    - pid {!pid_machine} — machine steps (one per executed meta-operator
      effect, per-array mode residency from the functional machine). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all recorded events (the enabled flag is left as-is). *)

val pid_compiler : int
val pid_simulator : int
val pid_machine : int

val now_us : unit -> float
(** Microseconds since the trace module was initialised, clamped to be
    strictly increasing across calls (consecutive calls within one
    microsecond are spread 1 ns apart, so span intervals never
    degenerate). *)

val with_span :
  ?cat:string -> ?args:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f] inside a complete event on the compiler
    track; the event is recorded even if [f] raises. When tracing is
    disabled this is exactly [f ()]. *)

val instant : ?cat:string -> ?args:(string * Json.t) list -> string -> unit
(** A zero-duration marker on the compiler track. *)

val complete :
  ?cat:string -> ?args:(string * Json.t) list -> pid:int -> tid:int ->
  ts:float -> dur:float -> string -> unit
(** A complete event with explicit coordinates — used by the simulators,
    whose clocks are synthetic (cycles, machine steps). *)

val counter : ?cat:string -> pid:int -> ts:float -> string -> (string * float) list -> unit
(** A counter-track sample (Chrome ["C"] event). *)

val name_process : pid:int -> string -> unit
val name_thread : pid:int -> tid:int -> string -> unit
(** Metadata events labelling tracks in the viewer. Idempotent per target:
    repeated names for the same (pid, tid) are recorded once. *)

val export : unit -> Json.t
(** The trace as [{"traceEvents": [...], "displayTimeUnit": "ms"}]. Events
    appear in recording order; span events carry [ph = "X"] with [ts]/[dur]
    so nesting is recovered by interval containment. *)

val write_file : string -> unit
(** [export] pretty-printed to a file. *)
