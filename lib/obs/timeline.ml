(* Periodic time-series sampler. The driver (an event loop with its own
   clock — the fleet simulator's discrete-event time, in cycles) calls
   [record] whenever its clock advances; the timeline takes at most one
   sample per interval tick and skips past ticks the driver's clock jumped
   over, so a quiet stretch of simulated time does not fabricate samples.
   Single-writer by design: the DES event loop is serial, so no locking. *)

type sample = { t : float; values : (string * float) list }

type t = {
  interval : float;
  mutable next : float; (* earliest time the next sample may be taken *)
  mutable rev : sample list;
  mutable n : int;
}

let create ?(start = 0.) ~interval () =
  if not (Float.is_finite interval) || interval <= 0. then
    invalid_arg "Timeline.create: interval must be positive";
  { interval; next = start; rev = []; n = 0 }

let interval t = t.interval

let due t ~now = now >= t.next

let record t ~now values =
  if now >= t.next then begin
    t.rev <- { t = now; values } :: t.rev;
    t.n <- t.n + 1;
    (* advance past every tick at or before [now]: one sample per call,
       stamped with the event-loop time that triggered it *)
    t.next <- t.next +. t.interval;
    if t.next <= now then
      t.next <-
        now
        +. t.interval
        -. Float.rem (now -. t.next) t.interval
  end

let force t ~now values =
  t.rev <- { t = now; values } :: t.rev;
  t.n <- t.n + 1;
  if t.next <= now then t.next <- now +. t.interval

let count t = t.n
let samples t = List.rev t.rev

let sample_to_json s =
  Json.Obj
    (("t", Json.Float s.t)
     :: List.map (fun (k, v) -> (k, Json.Float v)) s.values)

let to_json t = Json.List (List.map sample_to_json (samples t))

let samples_of_json j =
  match j with
  | Json.List l ->
    let parse_one = function
      | Json.Obj kvs -> (
        match List.assoc_opt "t" kvs with
        | Some tv -> (
          match Json.to_float tv with
          | Some time ->
            let values =
              List.filter_map
                (fun (k, v) ->
                  if k = "t" then None
                  else Option.map (fun f -> (k, f)) (Json.to_float v))
                kvs
            in
            Ok { t = time; values }
          | None -> Error "snapshot: non-numeric t")
        | None -> Error "snapshot: missing t")
      | _ -> Error "snapshot: not an object"
    in
    List.fold_left
      (fun acc s ->
        match (acc, parse_one s) with
        | Ok xs, Ok x -> Ok (x :: xs)
        | (Error _ as e), _ | _, (Error _ as e) -> e)
      (Ok []) l
    |> Result.map List.rev
  | _ -> Error "snapshots: not a list"

let to_csv t =
  match samples t with
  | [] -> ""
  | first :: _ as ss ->
    let cols = List.map fst first.values in
    let buf = Buffer.create 256 in
    Buffer.add_string buf ("t," ^ String.concat "," cols ^ "\n");
    List.iter
      (fun s ->
        Buffer.add_string buf (Printf.sprintf "%.17g" s.t);
        List.iter
          (fun c ->
            Buffer.add_char buf ',';
            match List.assoc_opt c s.values with
            | Some v -> Buffer.add_string buf (Printf.sprintf "%.17g" v)
            | None -> ())
          cols;
        Buffer.add_char buf '\n')
      ss;
    Buffer.contents buf
