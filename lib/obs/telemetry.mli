(** Per-run telemetry: request-phase spans, instant marks, periodic
    snapshots, and the offline markdown dashboard.

    A collector is an explicit value owned by one driver — the serial
    fleet event loop — so unlike {!Trace} it has no global enable flag
    and no lock: when the fleet is run without a collector the serving
    hot path contains no telemetry code at all, and when it is run with
    one, recording is plain list consing on a single domain.

    {!to_json} freezes the collector into one self-contained document —
    meta, spans, marks, snapshots, a {!Metrics.to_json} dump, and the
    OpenMetrics exposition text — which [cmswitch report] re-reads and
    renders without needing the run that produced it. *)

type t

val create : ?snapshot_interval:float -> ?slo_budget:float -> unit -> t
(** [snapshot_interval] is in the driver's clock units (fleet cycles;
    default 1000). [slo_budget] is the tolerated deadline-violation
    fraction for error-budget tracking; raises [Invalid_argument] outside
    (0, 1). *)

val snapshot_interval : t -> float
val slo_budget : t -> float option

val timeline : t -> Timeline.t
(** The snapshot sampler; the driver calls [Timeline.record] on it as its
    clock advances and [Timeline.force] at end of run. *)

val set_meta : t -> string -> Json.t -> unit
(** Run-level key/value (model, chips, horizon, seed, ...). Re-setting a
    key replaces it. *)

val set_extra : t -> string -> Json.t -> unit
(** Attach an extra top-level document member (e.g. ["drift"], ["slo"]).
    Re-setting a key replaces it. *)

val span :
  t -> ?attrs:(string * Json.t) list -> lane:string -> ts:float ->
  dur:float -> string -> unit
(** A completed phase interval. [lane] groups spans for the dashboard:
    per-chip lanes are named [chip<N>] (they feed the utilization table);
    scheduler-side phases (queue, batch, shed) use ["fleet"]. *)

val mark :
  t -> ?attrs:(string * Json.t) list -> lane:string -> ts:float ->
  string -> unit
(** A zero-duration incident marker (fault injected, breaker opened, ...). *)

val span_count : t -> int

val slo_summary : budget:float -> violations:int -> completed:int -> Json.t
(** Error-budget arithmetic for the ["slo"] document member: error rate,
    burn rate (error rate / budget; > 1 means the budget is exhausted),
    and remaining budget fraction. *)

val to_json : t -> Json.t
(** Freeze the collector (metrics registry and OpenMetrics text are
    captured at this moment). *)

val write_file : t -> string -> unit
(** {!to_json}, pretty-printed. *)

val load : string -> Json.t
(** Read a telemetry file back. Raises [Sys_error] / [Json.Parse_error]. *)

val report : Json.t -> string
(** Render a loaded telemetry document as a markdown dashboard: run meta,
    serving counters, latency percentiles, per-phase span totals, per-chip
    utilization, the Eq. 10 drift table, SLO error budget, and the
    snapshot timeline. Sections whose data is absent are omitted, so the
    renderer accepts documents from older runs. *)
