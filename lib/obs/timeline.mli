(** Periodic time-series snapshots over an external clock.

    A timeline takes at most one sample per [interval] of the {e driver's}
    clock — the fleet simulator records in simulated cycles, so snapshots
    cost nothing in wall-clock terms and are deterministic. Quiet
    stretches produce no samples (ticks the clock jumps over are skipped,
    never back-filled), so sample times are strictly increasing as long as
    the driver's clock is monotone.

    Single-writer: drive a timeline from one domain (the serial DES event
    loop); it carries no lock. *)

type sample = { t : float; values : (string * float) list }

type t

val create : ?start:float -> interval:float -> unit -> t
(** Sampling begins at [start] (default 0). Raises [Invalid_argument] on a
    non-positive or non-finite interval. *)

val interval : t -> float

val due : t -> now:float -> bool
(** Would [record] at [now] take a sample? Lets the driver skip building
    the (possibly expensive) value list when no tick is due. *)

val record : t -> now:float -> (string * float) list -> unit
(** Take a sample stamped [now] if at least one interval elapsed since the
    last one (or this is the first at-or-after [start]); otherwise do
    nothing. *)

val force : t -> now:float -> (string * float) list -> unit
(** Take a sample unconditionally (end-of-run state, breaker trips). *)

val count : t -> int

val samples : t -> sample list
(** Chronological. *)

val to_json : t -> Json.t
(** A list of flat objects [{"t": ..., field: number, ...}]. *)

val samples_of_json : Json.t -> (sample list, string) result
(** Parse {!to_json} output (any numeric-field object list with a ["t"]
    key). *)

val to_csv : t -> string
(** Header row from the first sample's field names, one row per sample;
    empty string when no samples were taken. *)
