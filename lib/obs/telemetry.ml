(* Per-run telemetry collector: request-phase spans, instant marks, and
   periodic snapshots, serialised to one self-contained JSON file that the
   [cmswitch report] dashboard renders offline. Unlike [Trace], a
   collector is an explicit value owned by one driver (the serial fleet
   event loop), so it carries no lock and no global enable flag — whoever
   holds a [t] pays for it. *)

type span = {
  name : string;
  lane : string;
  ts : float;
  dur : float;
  attrs : (string * Json.t) list;
}

type mark = {
  mname : string;
  mlane : string;
  mts : float;
  mattrs : (string * Json.t) list;
}

type t = {
  snapshot_interval : float;
  slo_budget : float option;
  timeline : Timeline.t;
  mutable meta : (string * Json.t) list; (* reversed insertion order *)
  mutable extras : (string * Json.t) list; (* reversed insertion order *)
  mutable spans : span list; (* reversed *)
  mutable marks : mark list; (* reversed *)
  mutable nspans : int;
}

let create ?(snapshot_interval = 1000.) ?slo_budget () =
  (match slo_budget with
  | Some b when not (b > 0. && b < 1.) ->
    invalid_arg "Telemetry.create: slo_budget must be in (0, 1)"
  | _ -> ());
  {
    snapshot_interval;
    slo_budget;
    timeline = Timeline.create ~interval:snapshot_interval ();
    meta = [];
    extras = [];
    spans = [];
    marks = [];
    nspans = 0;
  }

let snapshot_interval t = t.snapshot_interval
let slo_budget t = t.slo_budget
let timeline t = t.timeline

let set_meta t key v =
  t.meta <- (key, v) :: List.remove_assoc key t.meta

let set_extra t key v =
  t.extras <- (key, v) :: List.remove_assoc key t.extras

let span t ?(attrs = []) ~lane ~ts ~dur name =
  t.spans <- { name; lane; ts; dur; attrs } :: t.spans;
  t.nspans <- t.nspans + 1

let mark t ?(attrs = []) ~lane ~ts name =
  t.marks <- { mname = name; mlane = lane; mts = ts; mattrs = attrs } :: t.marks

let span_count t = t.nspans

let slo_summary ~budget ~violations ~completed =
  let total = max completed 1 in
  let error_rate = float_of_int violations /. float_of_int total in
  let burn_rate = error_rate /. budget in
  Json.Obj
    [ ("budget", Json.Float budget);
      ("completed", Json.Int completed);
      ("violations", Json.Int violations);
      ("error_rate", Json.Float error_rate);
      ("burn_rate", Json.Float burn_rate);
      ("budget_remaining", Json.Float (1. -. burn_rate)) ]

let span_json s =
  Json.Obj
    ([ ("name", Json.String s.name);
       ("lane", Json.String s.lane);
       ("ts", Json.Float s.ts);
       ("dur", Json.Float s.dur) ]
    @ if s.attrs = [] then [] else [ ("attrs", Json.Obj s.attrs) ])

let mark_json m =
  Json.Obj
    ([ ("name", Json.String m.mname);
       ("lane", Json.String m.mlane);
       ("ts", Json.Float m.mts) ]
    @ if m.mattrs = [] then [] else [ ("attrs", Json.Obj m.mattrs) ])

let to_json t =
  Json.Obj
    ([ ("meta", Json.Obj (List.rev t.meta));
       ("spans", Json.List (List.rev_map span_json t.spans));
       ("marks", Json.List (List.rev_map mark_json t.marks));
       ("snapshots", Timeline.to_json t.timeline);
       ("metrics", Metrics.to_json ());
       ("openmetrics", Json.String (Openmetrics.to_string ())) ]
    @ List.rev t.extras)

let write_file t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string ~pretty:true (to_json t)))

let load file =
  let ic = open_in file in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> Json.of_string (really_input_string ic (in_channel_length ic)))

(* ------------------------------------------------------------------ *)
(* Markdown dashboard over a parsed telemetry file. Every section is
   optional: the renderer reports what the file contains and skips what it
   does not, so it also degrades gracefully on files from older runs. *)

let fnum v =
  if Float.is_nan v then "nan"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let jrender = function
  | Json.String s -> s
  | Json.Int i -> string_of_int i
  | Json.Float f -> fnum f
  | Json.Bool b -> string_of_bool b
  | Json.Null -> "-"
  | j -> Json.to_string j

let jobj = function Json.Obj kvs -> kvs | _ -> []
let jarr = function Json.List l -> l | _ -> []
let mem k j = Json.member k j
let memf k j = Option.bind (Json.member k j) Json.to_float
let mems k j = match Json.member k j with Some (Json.String s) -> s | _ -> "-"

let section buf title = Buffer.add_string buf ("\n## " ^ title ^ "\n\n")
let row buf cells = Buffer.add_string buf ("| " ^ String.concat " | " cells ^ " |\n")

let header buf cells =
  row buf cells;
  row buf (List.map (fun _ -> "---") cells)

let render_meta buf doc =
  match mem "meta" doc with
  | Some (Json.Obj kvs) when kvs <> [] ->
    section buf "Run";
    header buf [ "key"; "value" ];
    List.iter (fun (k, v) -> row buf [ k; jrender v ]) kvs
  | _ -> ()

let render_serving buf doc =
  let metrics = Option.value (mem "metrics" doc) ~default:(Json.Obj []) in
  let pick prefix kvs =
    List.filter (fun (k, _) -> String.starts_with ~prefix k) kvs
  in
  let counters =
    pick "serving." (jobj (Option.value (mem "counters" metrics) ~default:Json.Null))
  in
  let gauges =
    pick "serving." (jobj (Option.value (mem "gauges" metrics) ~default:Json.Null))
  in
  if counters <> [] || gauges <> [] then begin
    section buf "Serving";
    header buf [ "metric"; "value" ];
    List.iter (fun (k, v) -> row buf [ k; jrender v ]) (counters @ gauges)
  end;
  let hists =
    jobj (Option.value (mem "histograms" metrics) ~default:Json.Null)
  in
  let latency = pick "serving." hists in
  if latency <> [] then begin
    section buf "Latency";
    header buf [ "histogram"; "count"; "mean"; "p50"; "p95"; "p99"; "p999"; "max" ];
    List.iter
      (fun (k, h) ->
        let f field = match memf field h with Some v -> fnum v | None -> "-" in
        row buf
          [ k; f "count"; f "mean"; f "p50"; f "p95"; f "p99"; f "p999"; f "max" ])
      latency
  end

let render_phases buf doc =
  let spans = jarr (Option.value (mem "spans" doc) ~default:Json.Null) in
  if spans <> [] then begin
    let tbl : (string, int ref * float ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun s ->
        let name = mems "name" s in
        let dur = Option.value (memf "dur" s) ~default:0. in
        let n, total =
          match Hashtbl.find_opt tbl name with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0.) in
            Hashtbl.add tbl name cell;
            cell
        in
        incr n;
        total := !total +. dur)
      spans;
    let rows =
      Hashtbl.fold (fun name (n, total) acc -> (name, !n, !total) :: acc) tbl []
      |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a)
    in
    section buf "Request phases";
    header buf [ "phase"; "spans"; "total cycles"; "mean cycles" ];
    List.iter
      (fun (name, n, total) ->
        row buf [ name; string_of_int n; fnum total; fnum (total /. float_of_int n) ])
      rows
  end

let render_utilization buf doc =
  let spans = jarr (Option.value (mem "spans" doc) ~default:Json.Null) in
  let chip_spans =
    List.filter
      (fun s -> String.starts_with ~prefix:"chip" (mems "lane" s))
      spans
  in
  if chip_spans <> [] then begin
    let t_end =
      List.fold_left
        (fun acc s ->
          Float.max acc
            (Option.value (memf "ts" s) ~default:0.
            +. Option.value (memf "dur" s) ~default:0.))
        0. chip_spans
    in
    let makespan =
      match memf "horizon" (Option.value (mem "meta" doc) ~default:Json.Null) with
      | Some h when h > 0. -> Float.max h t_end
      | _ -> t_end
    in
    let tbl : (string, float ref) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun s ->
        let lane = mems "lane" s in
        let dur = Option.value (memf "dur" s) ~default:0. in
        match Hashtbl.find_opt tbl lane with
        | Some busy -> busy := !busy +. dur
        | None -> Hashtbl.add tbl lane (ref dur))
      chip_spans;
    let rows =
      Hashtbl.fold (fun lane busy acc -> (lane, !busy) :: acc) tbl []
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    section buf "Chip utilization";
    header buf [ "chip"; "busy cycles"; "utilization" ];
    List.iter
      (fun (lane, busy) ->
        let util = if makespan > 0. then 100. *. busy /. makespan else 0. in
        row buf [ lane; fnum busy; Printf.sprintf "%.1f%%" util ])
      rows
  end

let render_drift buf doc =
  match mem "drift" doc with
  | None -> ()
  | Some drift ->
    section buf "Cost-model drift (Eq. 10 predicted vs measured)";
    let summary = jarr (Option.value (mem "summary" drift) ~default:Json.Null) in
    if summary <> [] then begin
      header buf [ "mode"; "predicted cycles"; "measured cycles"; "drift" ];
      List.iter
        (fun r ->
          row buf
            [ mems "mode" r;
              fnum (Option.value (memf "predicted" r) ~default:0.);
              fnum (Option.value (memf "measured" r) ~default:0.);
              Printf.sprintf "%+.2f%%"
                (Option.value (memf "drift_pct" r) ~default:0.) ])
        summary
    end;
    let rows = jarr (Option.value (mem "rows" drift) ~default:Json.Null) in
    if rows <> [] then begin
      let cap = 24 in
      let shown, hidden =
        if List.length rows <= cap then (rows, 0)
        else (List.filteri (fun i _ -> i < cap) rows, List.length rows - cap)
      in
      Buffer.add_string buf "\nPer-segment attribution:\n\n";
      header buf [ "segment"; "mode"; "predicted"; "measured"; "drift" ];
      List.iter
        (fun r ->
          row buf
            [ jrender (Option.value (mem "segment" r) ~default:Json.Null);
              mems "mode" r;
              fnum (Option.value (memf "predicted" r) ~default:0.);
              fnum (Option.value (memf "measured" r) ~default:0.);
              Printf.sprintf "%+.2f%%"
                (Option.value (memf "drift_pct" r) ~default:0.) ])
        shown;
      if hidden > 0 then
        Buffer.add_string buf (Printf.sprintf "\n… and %d more segments.\n" hidden)
    end

let render_slo buf doc =
  match mem "slo" doc with
  | Some (Json.Obj kvs) when kvs <> [] ->
    section buf "SLO error budget";
    header buf [ "key"; "value" ];
    List.iter (fun (k, v) -> row buf [ k; jrender v ]) kvs
  | _ -> ()

let render_snapshots buf doc =
  let snaps = jarr (Option.value (mem "snapshots" doc) ~default:Json.Null) in
  match (snaps, List.rev snaps) with
  | first :: _, last :: _ ->
    section buf "Timeline";
    Buffer.add_string buf
      (Printf.sprintf "%d snapshots over t = %s .. %s cycles.\n\n"
         (List.length snaps)
         (fnum (Option.value (memf "t" first) ~default:0.))
         (fnum (Option.value (memf "t" last) ~default:0.)));
    header buf [ "field"; "final value" ];
    List.iter
      (fun (k, v) -> if k <> "t" then row buf [ k; jrender v ])
      (jobj last)
  | _ -> ()

let report doc =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# cmswitch telemetry report\n";
  render_meta buf doc;
  render_serving buf doc;
  render_phases buf doc;
  render_utilization buf doc;
  render_drift buf doc;
  render_slo buf doc;
  render_snapshots buf doc;
  Buffer.contents buf
