(* OpenMetrics / Prometheus exposition-format renderer over Metrics.dump.

   One metric family per instrument name: dotted registry names are
   sanitised to the [a-zA-Z_:][a-zA-Z0-9_:]* grammar ('.' and every other
   illegal character become '_'), counters gain the mandated "_total"
   sample suffix, histograms expand to the _bucket/_sum/_count series with
   cumulative le="..." labels, and the exposition ends with "# EOF". All
   label sets of one family share a single # TYPE line. *)

let sanitize_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
        || (i > 0 && c >= '0' && c <= '9')
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render_float x =
  if Float.is_nan x then "NaN"
  else if x = Float.infinity then "+Inf"
  else if x = Float.neg_infinity then "-Inf"
  else if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let render_labels labels =
  match labels with
  | [] -> ""
  | l ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize_name k) (escape_label_value v))
           l)
    ^ "}"

let to_string () =
  let buf = Buffer.create 1024 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let type_line name kind =
    if not (Hashtbl.mem typed name) then begin
      Hashtbl.replace typed name ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun (name, labels, v) ->
      let mname = sanitize_name name in
      match v with
      | Metrics.Counter c ->
        type_line mname "counter";
        Buffer.add_string buf
          (Printf.sprintf "%s_total%s %s\n" mname (render_labels labels)
             (render_float c))
      | Metrics.Gauge g ->
        type_line mname "gauge";
        Buffer.add_string buf
          (Printf.sprintf "%s%s %s\n" mname (render_labels labels)
             (render_float g))
      | Metrics.Histogram s ->
        type_line mname "histogram";
        List.iter
          (fun (le, cum) ->
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket%s %d\n" mname
                 (render_labels (labels @ [ ("le", render_float le) ]))
                 cum))
          s.Metrics.buckets;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %s\n" mname (render_labels labels)
             (render_float s.Metrics.sum));
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" mname (render_labels labels)
             s.Metrics.n))
    (Metrics.dump ());
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let write_file file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
