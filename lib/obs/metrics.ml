type counter = { cname : string; mutable count : float; mutable c_touched : bool }
type gauge = { gname : string; mutable value : float; mutable g_touched : bool }

type histogram = {
  hname : string;
  mutable samples : float list; (* reversed *)
  mutable n : int;
}

type instrument = C of counter | G of gauge | H of histogram

let on = ref false
let set_enabled b = on := b
let enabled () = !on

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64

let reset () =
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c ->
        c.count <- 0.;
        c.c_touched <- false
      | G g ->
        g.value <- 0.;
        g.g_touched <- false
      | H h ->
        h.samples <- [];
        h.n <- 0)
    registry

let clash name = invalid_arg ("Metrics: " ^ name ^ " already registered with another type")

let counter name =
  match Hashtbl.find_opt registry name with
  | Some (C c) -> c
  | Some _ -> clash name
  | None ->
    let c = { cname = name; count = 0.; c_touched = false } in
    Hashtbl.replace registry name (C c);
    c

let incr ?(by = 1.) c =
  if !on then begin
    c.count <- c.count +. by;
    c.c_touched <- true
  end

let counter_value c = c.count

let gauge name =
  match Hashtbl.find_opt registry name with
  | Some (G g) -> g
  | Some _ -> clash name
  | None ->
    let g = { gname = name; value = 0.; g_touched = false } in
    Hashtbl.replace registry name (G g);
    g

let set_gauge g v =
  if !on then begin
    g.value <- v;
    g.g_touched <- true
  end

let histogram name =
  match Hashtbl.find_opt registry name with
  | Some (H h) -> h
  | Some _ -> clash name
  | None ->
    let h = { hname = name; samples = []; n = 0 } in
    Hashtbl.replace registry name (H h);
    h

let observe h v =
  if !on then begin
    h.samples <- v :: h.samples;
    h.n <- h.n + 1
  end

let histogram_count h = h.n

let touched () =
  Hashtbl.fold
    (fun name i acc ->
      match i with
      | C c when c.c_touched -> (name, i) :: acc
      | G g when g.g_touched -> (name, i) :: acc
      | H h when h.n > 0 -> (name, i) :: acc
      | C _ | G _ | H _ -> acc)
    registry []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let summarize (h : histogram) =
  let xs = h.samples in
  let count = h.n in
  let mean = Cim_util.Stats.mean xs in
  let p50 = Cim_util.Stats.percentile_nearest_rank 50. xs in
  let p95 = Cim_util.Stats.percentile_nearest_rank 95. xs in
  let mn = Cim_util.Stats.minimum xs and mx = Cim_util.Stats.maximum xs in
  (count, mean, mn, p50, p95, mx)

let num x =
  (* counters are usually integral; print them without a fraction *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let to_markdown () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "| metric | type | value |\n|---|---|---|\n";
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> Buffer.add_string buf (Printf.sprintf "| %s | counter | %s |\n" name (num c.count))
      | G g -> Buffer.add_string buf (Printf.sprintf "| %s | gauge | %s |\n" name (num g.value))
      | H h ->
        let count, mean, mn, p50, p95, mx = summarize h in
        Buffer.add_string buf
          (Printf.sprintf
             "| %s | histogram | n=%d mean=%s min=%s p50=%s p95=%s max=%s |\n"
             name count (num mean) (num mn) (num p50) (num p95) (num mx)))
    (touched ());
  Buffer.contents buf

let to_json () =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> counters := (name, Json.Float c.count) :: !counters
      | G g -> gauges := (name, Json.Float g.value) :: !gauges
      | H h ->
        let count, mean, mn, p50, p95, mx = summarize h in
        histos :=
          ( name,
            Json.Obj
              [ ("count", Json.Int count); ("mean", Json.Float mean);
                ("min", Json.Float mn); ("p50", Json.Float p50);
                ("p95", Json.Float p95); ("max", Json.Float mx) ] )
          :: !histos)
    (touched ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histos)) ]
