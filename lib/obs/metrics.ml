(* Domain-safe instruments: counters, gauges and histogram buffers are
   Atomic.t cells (float adds and list prepends go through CAS loops), so
   solver counters bumped from pool worker domains accumulate exactly the
   same totals as a serial run — addition order differs, but counter
   increments are integral and gauges are last-write, so the rendered dump
   is identical whatever the job count. The registry itself is guarded by a
   mutex; call sites register at module initialisation, so the hot path is
   the atomic bump, not the lookup. *)

type counter = { cname : string; count : float Atomic.t; c_touched : bool Atomic.t }
type gauge = { gname : string; value : float Atomic.t; g_touched : bool Atomic.t }

type histogram = {
  hname : string;
  samples : float list Atomic.t; (* reversed *)
  n : int Atomic.t;
}

type instrument = C of counter | G of gauge | H of histogram

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c ->
        Atomic.set c.count 0.;
        Atomic.set c.c_touched false
      | G g ->
        Atomic.set g.value 0.;
        Atomic.set g.g_touched false
      | H h ->
        Atomic.set h.samples [];
        Atomic.set h.n 0)
    registry;
  Mutex.unlock registry_mutex

let clash name = invalid_arg ("Metrics: " ^ name ^ " already registered with another type")

(* find-or-create under the registry mutex; the instrument cells themselves
   are atomics, so only registration needs the lock *)
let find_or_create name make select =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry name with
    | Some i -> ( match select i with Some x -> Ok x | None -> Error ())
    | None ->
      let i, x = make () in
      Hashtbl.replace registry name i;
      Ok x
  in
  Mutex.unlock registry_mutex;
  match r with Ok x -> x | Error () -> clash name

let counter name =
  find_or_create name
    (fun () ->
      let c =
        { cname = name; count = Atomic.make 0.; c_touched = Atomic.make false }
      in
      (C c, c))
    (function C c -> Some c | G _ | H _ -> None)

let rec atomic_add cell by =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. by)) then atomic_add cell by

let incr ?(by = 1.) c =
  if Atomic.get on then begin
    atomic_add c.count by;
    Atomic.set c.c_touched true
  end

let counter_value c = Atomic.get c.count

let gauge name =
  find_or_create name
    (fun () ->
      let g =
        { gname = name; value = Atomic.make 0.; g_touched = Atomic.make false }
      in
      (G g, g))
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g v =
  if Atomic.get on then begin
    Atomic.set g.value v;
    Atomic.set g.g_touched true
  end

let histogram name =
  find_or_create name
    (fun () ->
      let h = { hname = name; samples = Atomic.make []; n = Atomic.make 0 } in
      (H h, h))
    (function H h -> Some h | C _ | G _ -> None)

let rec atomic_prepend cell v =
  let xs = Atomic.get cell in
  if not (Atomic.compare_and_set cell xs (v :: xs)) then atomic_prepend cell v

let observe h v =
  if Atomic.get on then begin
    atomic_prepend h.samples v;
    Atomic.incr h.n
  end

let histogram_count h = Atomic.get h.n

let touched () =
  Mutex.lock registry_mutex;
  let l =
    Hashtbl.fold
      (fun name i acc ->
        match i with
        | C c when Atomic.get c.c_touched -> (name, i) :: acc
        | G g when Atomic.get g.g_touched -> (name, i) :: acc
        | H h when Atomic.get h.n > 0 -> (name, i) :: acc
        | C _ | G _ | H _ -> acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let summarize (h : histogram) =
  let xs = Atomic.get h.samples in
  let count = List.length xs in
  let mean = Cim_util.Stats.mean xs in
  let p50 = Cim_util.Stats.percentile_nearest_rank 50. xs in
  let p95 = Cim_util.Stats.percentile_nearest_rank 95. xs in
  let mn = Cim_util.Stats.minimum xs and mx = Cim_util.Stats.maximum xs in
  (count, mean, mn, p50, p95, mx)

let num x =
  (* counters are usually integral; print them without a fraction *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let to_markdown () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "| metric | type | value |\n|---|---|---|\n";
  List.iter
    (fun (name, i) ->
      match i with
      | C c ->
        Buffer.add_string buf
          (Printf.sprintf "| %s | counter | %s |\n" name (num (Atomic.get c.count)))
      | G g ->
        Buffer.add_string buf
          (Printf.sprintf "| %s | gauge | %s |\n" name (num (Atomic.get g.value)))
      | H h ->
        let count, mean, mn, p50, p95, mx = summarize h in
        Buffer.add_string buf
          (Printf.sprintf
             "| %s | histogram | n=%d mean=%s min=%s p50=%s p95=%s max=%s |\n"
             name count (num mean) (num mn) (num p50) (num p95) (num mx)))
    (touched ());
  Buffer.contents buf

let to_json () =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  List.iter
    (fun (name, i) ->
      match i with
      | C c -> counters := (name, Json.Float (Atomic.get c.count)) :: !counters
      | G g -> gauges := (name, Json.Float (Atomic.get g.value)) :: !gauges
      | H h ->
        let count, mean, mn, p50, p95, mx = summarize h in
        histos :=
          ( name,
            Json.Obj
              [ ("count", Json.Int count); ("mean", Json.Float mean);
                ("min", Json.Float mn); ("p50", Json.Float p50);
                ("p95", Json.Float p95); ("max", Json.Float mx) ] )
          :: !histos)
    (touched ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histos)) ]
