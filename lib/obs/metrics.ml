(* Domain-safe instruments: counter and gauge cells are Atomic.t (float
   adds go through CAS loops), so solver counters bumped from pool worker
   domains accumulate exactly the same totals as a serial run — addition
   order differs, but counter increments are integral and gauges are
   last-write, so the rendered dump is identical whatever the job count.

   Histograms are BOUNDED: a fixed-bucket count vector (cumulative counts
   feed the OpenMetrics exposition) plus a reservoir (Algorithm R with a
   deterministic per-histogram splitmix64 stream) for percentile
   summaries. Memory per histogram is O(buckets + reservoir_capacity)
   however many samples are observed — the previous implementation
   prepended every sample to a list forever, which on a long fleet run
   with telemetry enabled was an unbounded leak. A histogram's mutable
   state is guarded by its own mutex (bucket counts, sum, min/max and the
   reservoir must move together); bucket counts and exact count/sum/min/
   max are order-independent, so they too are deterministic at any job
   count. Reservoir percentiles are exact whenever fewer samples than the
   reservoir capacity were observed (every sample is retained), and a
   uniform subsample estimate beyond that.

   The registry itself is guarded by a mutex; call sites register at
   module initialisation, so the hot path is the instrument update, not
   the lookup. *)

type counter = {
  cname : string;
  clabels : (string * string) list;
  count : float Atomic.t;
  c_touched : bool Atomic.t;
}

type gauge = {
  gname : string;
  glabels : (string * string) list;
  value : float Atomic.t;
  g_touched : bool Atomic.t;
}

let reservoir_capacity = 2048

(* geometric ladder spanning microseconds-of-seconds to tera-cycles:
   1, 2.5, 5 per decade over 1e-6 .. 5e11 *)
let default_buckets =
  List.concat_map
    (fun d ->
      let base = 10. ** float_of_int d in
      [ base; 2.5 *. base; 5. *. base ])
    (List.init 18 (fun i -> i - 6))

type histogram = {
  hname : string;
  hlabels : (string * string) list;
  hlock : Mutex.t;
  bounds : float array; (* strictly increasing upper bounds; +Inf implicit *)
  bucket_counts : int array; (* length = Array.length bounds + 1 *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmin : float;
  mutable hmax : float;
  reservoir : float array; (* first min(hcount, capacity) slots valid *)
  mutable rfill : int;
  mutable rstate : int64; (* splitmix64: deterministic given sample order *)
}

type summary = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
  buckets : (float * int) list; (* (le, cumulative count), +infinity last *)
}

type value = Counter of float | Gauge of float | Histogram of summary

type instrument = C of counter | G of gauge | H of histogram

let on = Atomic.make false
let set_enabled b = Atomic.set on b
let enabled () = Atomic.get on

(* registry key: name plus canonically-ordered labels, so the same
   (name, labels) pair from two call sites aliases one instrument *)
let key_of name labels =
  match labels with
  | [] -> name
  | l ->
    let l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=\"" ^ v ^ "\"") l)
    ^ "}"

let registry : (string, instrument) Hashtbl.t = Hashtbl.create 64
let registry_mutex = Mutex.create ()

let seed = 0x9e3779b97f4a7c15L

let reset_histogram h =
  Mutex.lock h.hlock;
  Array.fill h.bucket_counts 0 (Array.length h.bucket_counts) 0;
  h.hcount <- 0;
  h.hsum <- 0.;
  h.hmin <- Float.infinity;
  h.hmax <- Float.neg_infinity;
  h.rfill <- 0;
  h.rstate <- seed;
  Mutex.unlock h.hlock

let reset () =
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ i ->
      match i with
      | C c ->
        Atomic.set c.count 0.;
        Atomic.set c.c_touched false
      | G g ->
        Atomic.set g.value 0.;
        Atomic.set g.g_touched false
      | H h -> reset_histogram h)
    registry;
  Mutex.unlock registry_mutex

let clash name = invalid_arg ("Metrics: " ^ name ^ " already registered with another type")

(* find-or-create under the registry mutex; the instrument cells themselves
   carry their own synchronisation, so only registration needs the lock *)
let find_or_create key make select =
  Mutex.lock registry_mutex;
  let r =
    match Hashtbl.find_opt registry key with
    | Some i -> ( match select i with Some x -> Ok x | None -> Error ())
    | None ->
      let i, x = make () in
      Hashtbl.replace registry key i;
      Ok x
  in
  Mutex.unlock registry_mutex;
  match r with Ok x -> x | Error () -> clash key

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let counter ?(labels = []) name =
  find_or_create (key_of name labels)
    (fun () ->
      let c =
        { cname = name; clabels = canon_labels labels;
          count = Atomic.make 0.; c_touched = Atomic.make false }
      in
      (C c, c))
    (function C c -> Some c | G _ | H _ -> None)

let rec atomic_add cell by =
  let v = Atomic.get cell in
  if not (Atomic.compare_and_set cell v (v +. by)) then atomic_add cell by

let incr ?(by = 1.) c =
  if Atomic.get on then begin
    atomic_add c.count by;
    Atomic.set c.c_touched true
  end

let counter_value c = Atomic.get c.count

let gauge ?(labels = []) name =
  find_or_create (key_of name labels)
    (fun () ->
      let g =
        { gname = name; glabels = canon_labels labels;
          value = Atomic.make 0.; g_touched = Atomic.make false }
      in
      (G g, g))
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g v =
  if Atomic.get on then begin
    Atomic.set g.value v;
    Atomic.set g.g_touched true
  end

let gauge_value g = Atomic.get g.value

let histogram ?(labels = []) ?buckets name =
  let bounds =
    let bs = match buckets with Some b -> b | None -> default_buckets in
    let bs = List.sort_uniq Float.compare (List.filter Float.is_finite bs) in
    if bs = [] then invalid_arg ("Metrics.histogram " ^ name ^ ": empty bucket list");
    Array.of_list bs
  in
  find_or_create (key_of name labels)
    (fun () ->
      let h =
        { hname = name; hlabels = canon_labels labels;
          hlock = Mutex.create (); bounds;
          bucket_counts = Array.make (Array.length bounds + 1) 0;
          hcount = 0; hsum = 0.;
          hmin = Float.infinity; hmax = Float.neg_infinity;
          reservoir = Array.make reservoir_capacity 0.;
          rfill = 0; rstate = seed }
      in
      (H h, h))
    (function H h -> Some h | C _ | G _ -> None)

(* splitmix64: tiny, deterministic, and statistically fine for reservoir
   slot selection — no dependence on the global Random state *)
let next_u64 h =
  let z = Int64.add h.rstate 0x9e3779b97f4a7c15L in
  h.rstate <- z;
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* uniform int in [0, n) by modulo — the bias at n << 2^63 is irrelevant
   for reservoir slot choice *)
let rand_below h n =
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 h) 1) (Int64.of_int n))

let bucket_index bounds v =
  (* first bound >= v; Array.length bounds = overflow (+Inf) bucket *)
  let lo = ref 0 and hi = ref (Array.length bounds) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if bounds.(mid) >= v then hi := mid else lo := mid + 1
  done;
  !lo

let observe h v =
  if Atomic.get on then begin
    Mutex.lock h.hlock;
    h.hcount <- h.hcount + 1;
    h.hsum <- h.hsum +. v;
    if v < h.hmin then h.hmin <- v;
    if v > h.hmax then h.hmax <- v;
    let bi =
      if Float.is_nan v then Array.length h.bounds else bucket_index h.bounds v
    in
    h.bucket_counts.(bi) <- h.bucket_counts.(bi) + 1;
    (* Algorithm R: keep every sample while the reservoir has room, then
       replace a uniformly-chosen slot with probability capacity/seen *)
    if h.rfill < reservoir_capacity then begin
      h.reservoir.(h.rfill) <- v;
      h.rfill <- h.rfill + 1
    end
    else begin
      let j = rand_below h h.hcount in
      if j < reservoir_capacity then h.reservoir.(j) <- v
    end;
    Mutex.unlock h.hlock
  end

let histogram_count h =
  Mutex.lock h.hlock;
  let n = h.hcount in
  Mutex.unlock h.hlock;
  n

let touched () =
  Mutex.lock registry_mutex;
  let l =
    Hashtbl.fold
      (fun key i acc ->
        match i with
        | C c when Atomic.get c.c_touched -> (key, i) :: acc
        | G g when Atomic.get g.g_touched -> (key, i) :: acc
        | H h when h.hcount > 0 -> (key, i) :: acc
        | C _ | G _ | H _ -> acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort (fun (a, _) (b, _) -> String.compare a b) l

let percentile_of_sorted arr p =
  let n = Array.length arr in
  if n = 0 then 0.
  else begin
    (* nearest rank, multiply-before-divide (see Stats) *)
    let rank = int_of_float (Float.ceil (p *. float_of_int n /. 100.)) in
    arr.(Stdlib.max 0 (Stdlib.min (n - 1) (rank - 1)))
  end

let summarize (h : histogram) =
  Mutex.lock h.hlock;
  let n = h.hcount in
  let sum = h.hsum in
  let mn = h.hmin and mx = h.hmax in
  let kept = Array.sub h.reservoir 0 h.rfill in
  let cum = Array.make (Array.length h.bucket_counts) 0 in
  let acc = ref 0 in
  Array.iteri
    (fun i c ->
      acc := !acc + c;
      cum.(i) <- !acc)
    h.bucket_counts;
  Mutex.unlock h.hlock;
  (* NaN has no rank; drop it from the percentile sample rather than
     letting it poison the sort *)
  let kept =
    if Array.exists Float.is_nan kept then
      Array.of_list (List.filter (fun v -> not (Float.is_nan v)) (Array.to_list kept))
    else kept
  in
  Array.sort Float.compare kept;
  let pct p = percentile_of_sorted kept p in
  let buckets =
    List.init (Array.length cum) (fun i ->
        let le =
          if i < Array.length h.bounds then h.bounds.(i) else Float.infinity
        in
        (le, cum.(i)))
  in
  {
    n;
    sum;
    mean = (if n = 0 then 0. else sum /. float_of_int n);
    min = (if n = 0 then 0. else mn);
    p50 = pct 50.;
    p95 = pct 95.;
    p99 = pct 99.;
    p999 = pct 99.9;
    max = (if n = 0 then 0. else mx);
    buckets;
  }

let dump () =
  List.map
    (fun (_, i) ->
      match i with
      | C c -> (c.cname, c.clabels, Counter (Atomic.get c.count))
      | G g -> (g.gname, g.glabels, Gauge (Atomic.get g.value))
      | H h -> (h.hname, h.hlabels, Histogram (summarize h)))
    (touched ())

let num x =
  (* counters are usually integral; print them without a fraction *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%g" x

let display_name name labels = key_of name labels

let to_markdown () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "| metric | type | value |\n|---|---|---|\n";
  List.iter
    (fun (name, labels, v) ->
      let name = display_name name labels in
      match v with
      | Counter c ->
        Buffer.add_string buf
          (Printf.sprintf "| %s | counter | %s |\n" name (num c))
      | Gauge g ->
        Buffer.add_string buf
          (Printf.sprintf "| %s | gauge | %s |\n" name (num g))
      | Histogram s ->
        Buffer.add_string buf
          (Printf.sprintf
             "| %s | histogram | n=%d mean=%s min=%s p50=%s p95=%s p99=%s \
              p999=%s max=%s |\n"
             name s.n (num s.mean) (num s.min) (num s.p50) (num s.p95)
             (num s.p99) (num s.p999) (num s.max)))
    (dump ());
  Buffer.contents buf

let to_json () =
  let counters = ref [] and gauges = ref [] and histos = ref [] in
  List.iter
    (fun (name, labels, v) ->
      let name = display_name name labels in
      match v with
      | Counter c -> counters := (name, Json.Float c) :: !counters
      | Gauge g -> gauges := (name, Json.Float g) :: !gauges
      | Histogram s ->
        histos :=
          ( name,
            Json.Obj
              [ ("count", Json.Int s.n); ("mean", Json.Float s.mean);
                ("min", Json.Float s.min); ("p50", Json.Float s.p50);
                ("p95", Json.Float s.p95); ("p99", Json.Float s.p99);
                ("p999", Json.Float s.p999); ("max", Json.Float s.max) ] )
          :: !histos)
    (dump ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("gauges", Json.Obj (List.rev !gauges));
      ("histograms", Json.Obj (List.rev !histos)) ]
