type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* --- printing --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_literal x =
  if Float.is_nan x || not (Float.is_finite x) then "null"
  else begin
    let s = Printf.sprintf "%.17g" x in
    (* %.17g prints integral floats without a decimal point; add one so the
       value parses back as a Float, not an Int *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"
  end

let to_string ?(pretty = false) v =
  let buf = Buffer.create 256 in
  let rec emit indent v =
    let pad n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
    let nl () = if pretty then Buffer.add_char buf '\n' in
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float x -> Buffer.add_string buf (float_literal x)
    | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List xs ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i x ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (indent + 1);
          emit (indent + 1) x)
        xs;
      nl ();
      pad indent;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj kvs ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, x) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (indent + 1);
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf (if pretty then "\": " else "\":");
          emit (indent + 1) x)
        kvs;
      nl ();
      pad indent;
      Buffer.add_char buf '}'
  in
  emit 0 v;
  Buffer.contents buf

(* --- parsing --- *)

type state = { src : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "at %d: %s" st.pos m))) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | Some c' -> fail st "expected %C, found %C" c c'
  | None -> fail st "expected %C, found end of input" c

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st "invalid literal"

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> begin
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'
      | Some '\\' -> Buffer.add_char buf '\\'
      | Some '/' -> Buffer.add_char buf '/'
      | Some 'n' -> Buffer.add_char buf '\n'
      | Some 'r' -> Buffer.add_char buf '\r'
      | Some 't' -> Buffer.add_char buf '\t'
      | Some 'b' -> Buffer.add_char buf '\b'
      | Some 'f' -> Buffer.add_char buf '\012'
      | Some 'u' ->
        if st.pos + 4 >= String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src (st.pos + 1) 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with Failure _ -> fail st "bad \\u escape %s" hex
        in
        (* decode into UTF-8; surrogate pairs are passed through as two
           3-byte sequences, good enough for trace names *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        st.pos <- st.pos + 4
      | _ -> fail st "bad escape");
      advance st;
      loop ()
    end
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  let rec loop () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      loop ()
    | _ -> ()
  in
  loop ();
  let token = String.sub st.src start (st.pos - start) in
  let has_frac = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') token in
  if has_frac then
    match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st "bad number %S" token
  else
    match int_of_string_opt token with
    | Some i -> Int i
    | None -> begin
      match float_of_string_opt token with
      | Some f -> Float f
      | None -> fail st "bad number %S" token
    end

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' -> begin
    advance st;
    skip_ws st;
    match peek st with
    | Some ']' ->
      advance st;
      List []
    | _ ->
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
  end
  | Some '{' -> begin
    advance st;
    skip_ws st;
    match peek st with
    | Some '}' ->
      advance st;
      Obj []
    | _ ->
      let rec members acc =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (members [])
  end
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st "unexpected character %C" c

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None
