(** Registry of named counters, gauges, and histograms.

    Instruments are find-or-create by name, so call sites may register them
    at module initialisation (cheap repeated access from hot loops) or
    lazily. Recording is globally disabled by default; every mutator checks
    one boolean first, keeping disabled instrumentation free.

    Domain-safe: instrument cells are [Atomic.t] (counter adds and
    histogram prepends are CAS loops), so recording from pool worker
    domains is race-free and counter totals are independent of the job
    count; the registry itself is mutex-guarded.

    Naming convention (see docs/ARCHITECTURE.md, "Observability"):
    dot-separated [subsystem.noun.detail], e.g. [solver.bb.nodes],
    [compile.alloc.greedy_fallback], [sim.cycles.compute]. The solver
    family splits by layer: [solver.lp.*] (revised-simplex driver:
    solves, wall_seconds, warm_starts, warm_rejects), [solver.simplex.*]
    (pivot engine: pivots, dual_pivots, bound_flips, bland_fallbacks,
    refactorizations), [solver.lp_dense.*] (the dense oracle), and
    [solver.bb.*] (branch-and-bound: nodes, warm_hits, rc_tightened,
    lp_iteration_limits, ...). Counters named [*.wall_seconds] hold
    elapsed time and are excluded from cross-run determinism
    comparisons (see test/t_parallel.ml). *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered instrument. Registrations (and the instrument
    values held by call sites) stay valid. *)

val counter : string -> counter
val incr : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val to_markdown : unit -> string
(** All touched instruments as a Markdown table, sorted by name: counters
    and gauges with their value, histograms with count/mean/p50/p95/max.
    Untouched instruments are omitted. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    mean, min, p50, p95, max}}}], touched instruments only. *)
