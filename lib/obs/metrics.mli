(** Registry of named counters, gauges, and bounded histograms.

    Instruments are find-or-create by (name, labels), so call sites may
    register them at module initialisation (cheap repeated access from hot
    loops) or lazily. Recording is globally disabled by default; every
    mutator checks one boolean first, keeping disabled instrumentation
    free.

    Domain-safe: counter and gauge cells are [Atomic.t] (counter adds are
    CAS loops), histograms carry their own mutex, so recording from pool
    worker domains is race-free and counter totals are independent of the
    job count; the registry itself is mutex-guarded.

    Histograms are {e bounded}: a fixed-bucket count vector (the
    OpenMetrics exposition's [_bucket] series) plus a reservoir (Algorithm
    R over a deterministic per-histogram stream) capped at
    {!reservoir_capacity} samples for the percentile summaries. Memory is
    O(buckets + capacity) regardless of how many samples are observed;
    percentiles are exact while fewer than {!reservoir_capacity} samples
    were seen and a uniform-subsample estimate beyond that. Counts, sums,
    min/max, and bucket counts are always exact.

    Naming convention (see docs/ARCHITECTURE.md, "Observability"):
    dot-separated [subsystem.noun.detail], e.g. [solver.bb.nodes],
    [compile.alloc.greedy_fallback], [sim.cycles.compute]. The solver
    family splits by layer: [solver.lp.*] (revised-simplex driver:
    solves, wall_seconds, warm_starts, warm_rejects), [solver.simplex.*]
    (pivot engine: pivots, dual_pivots, bound_flips, bland_fallbacks,
    refactorizations), [solver.lp_dense.*] (the dense oracle), and
    [solver.bb.*] (branch-and-bound: nodes, warm_hits, rc_tightened,
    lp_iteration_limits, ...). Counters named [*.wall_seconds] hold
    elapsed time and are excluded from cross-run determinism
    comparisons (see test/t_parallel.ml). Fleet telemetry adds
    [serving.*], [costmodel.drift.*] and [trace.dropped]. Labelled
    instruments ([?labels], e.g. per-chip or per-model) render as
    [name{k="v",...}] in every export. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered instrument. Registrations (and the instrument
    values held by call sites) stay valid; histogram reservoirs restart
    their deterministic sampling stream. *)

val counter : ?labels:(string * string) list -> string -> counter
val incr : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge : ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val reservoir_capacity : int
(** Samples a histogram reservoir retains (2048). Percentile summaries are
    exact up to this many observations, subsampled estimates beyond. *)

val default_buckets : float list
(** Geometric bucket ladder (1, 2.5, 5 per decade over 1e-6 .. 5e11),
    suitable for cycles and seconds alike. *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float list -> string -> histogram
(** [buckets] are finite upper bounds (sorted and deduplicated
    internally; an overflow (+Inf) bucket is implicit); they default to
    {!default_buckets} and are fixed at first registration. Raises
    [Invalid_argument] when an explicit bucket list has no finite bound. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int

(** One histogram's bounded summary. [buckets] are (upper bound,
    cumulative count) pairs ending with the +infinity overflow bucket —
    exactly the OpenMetrics [_bucket] series. *)
type summary = {
  n : int;
  sum : float;
  mean : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max : float;
  buckets : (float * int) list;
}

val summarize : histogram -> summary

type value = Counter of float | Gauge of float | Histogram of summary

val dump : unit -> (string * (string * string) list * value) list
(** Every touched instrument as (name, labels, value), sorted by rendered
    name — the single source for all exporters ({!to_markdown},
    {!to_json}, {!Openmetrics.to_string}). Untouched instruments are
    omitted. *)

val to_markdown : unit -> string
(** All touched instruments as a Markdown table, sorted by name: counters
    and gauges with their value, histograms with
    count/mean/min/p50/p95/p99/p999/max. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    mean, min, p50, p95, p99, p999, max}}}], touched instruments only. *)
