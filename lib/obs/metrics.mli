(** Registry of named counters, gauges, and histograms.

    Instruments are find-or-create by name, so call sites may register them
    at module initialisation (cheap repeated access from hot loops) or
    lazily. Recording is globally disabled by default; every mutator checks
    one boolean first, keeping disabled instrumentation free.

    Domain-safe: instrument cells are [Atomic.t] (counter adds and
    histogram prepends are CAS loops), so recording from pool worker
    domains is race-free and counter totals are independent of the job
    count; the registry itself is mutex-guarded.

    Naming convention (see docs/ARCHITECTURE.md, "Observability"):
    dot-separated [subsystem.noun.detail], e.g. [solver.bb.nodes],
    [compile.alloc.greedy_fallback], [sim.cycles.compute]. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Zero every registered instrument. Registrations (and the instrument
    values held by call sites) stay valid. *)

val counter : string -> counter
val incr : ?by:float -> counter -> unit
val counter_value : counter -> float

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

val histogram : string -> histogram
val observe : histogram -> float -> unit
val histogram_count : histogram -> int

val to_markdown : unit -> string
(** All touched instruments as a Markdown table, sorted by name: counters
    and gauges with their value, histograms with count/mean/p50/p95/max.
    Untouched instruments are omitted. *)

val to_json : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    mean, min, p50, p95, max}}}], touched instruments only. *)
