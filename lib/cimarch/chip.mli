(** Dual-mode CIM chip abstraction. Two tiers only — chip and array — as the
    paper's DEHA prescribes (§4.2): the array is the smallest unit that can
    switch modes. All rates are per clock cycle; all sizes in bytes. *)

type coord = { x : int; y : int }

type t = {
  name : string;
  n_arrays : int;        (** number of dual-mode switchable arrays (Table 2: 96) *)
  grid_cols : int;       (** arrays are addressed on a 2-d grid [(x, y)] *)
  rows : int;            (** cells per column of one array (Table 2: 320) *)
  cols : int;            (** cells per row of one array (Table 2: 320) — these
                             are *cell* columns; an 8-bit weight occupies
                             [weight_bits / cell_bits] adjacent cells *)
  cell_bits : int;       (** bits stored per cell (eDRAM/SRAM 1, ReRAM 2+) *)
  weight_bits : int;     (** stored weight precision (8) *)
  buffer_bytes : int;    (** dedicated on-chip buffer (Table 2: 10KB x 8) *)
  internal_bw : float;   (** buffer bandwidth, bytes/cycle (Table 2: 32b/cycle) *)
  extern_bw : float;     (** main-memory bandwidth, bytes/cycle *)
  op_cim : float;        (** MACs/cycle one array provides in compute mode *)
  d_cim : float;         (** bytes/cycle one array provides in memory mode *)
  l_m2c : float;         (** memory->compute switch latency per array, cycles *)
  l_c2m : float;         (** compute->memory switch latency per array, cycles *)
  write_latency : float; (** cycles to (re)program one array's weights *)
  switch_method : string;(** documentation of the physical mechanism *)
  freq_mhz : float;
}

exception Invalid_config of string

val validate : t -> t
(** Checks positivity of every parameter and that the grid covers
    [n_arrays]; returns the record unchanged. Raises [Invalid_config]. *)

val d_main : t -> float
(** Bytes/cycle available from main memory plus the original on-chip buffer
    ([D_main] in Table 1: proportional to extern_bw + internal_bw). *)

val grid_rows : t -> int
(** Rows of the array grid implied by [n_arrays] and [grid_cols]
    ([ceil (n_arrays / grid_cols)]); the last row may be partial. *)

val weight_cols : t -> int
(** Weight columns per array: [cols * cell_bits / weight_bits]. *)

val array_weight_capacity : t -> int
(** Weights one array can hold in compute mode ([rows * weight_cols]). *)

val array_mem_bytes : t -> int
(** Scratchpad bytes one array offers in memory mode. *)

val chip_weight_capacity : t -> int
(** Weights held when every array is in compute mode. *)

val coord_of_index : t -> int -> coord
val index_of_coord : t -> coord -> int
val all_coords : t -> coord list

val cycles_to_us : t -> float -> float
(** Convert a cycle count to microseconds at [freq_mhz]. *)

val pp : Format.formatter -> t -> unit
(** Table-2-style parameter dump. *)
