type coord = { x : int; y : int }

type t = {
  name : string;
  n_arrays : int;
  grid_cols : int;
  rows : int;
  cols : int;
  cell_bits : int;
  weight_bits : int;
  buffer_bytes : int;
  internal_bw : float;
  extern_bw : float;
  op_cim : float;
  d_cim : float;
  l_m2c : float;
  l_c2m : float;
  write_latency : float;
  switch_method : string;
  freq_mhz : float;
}

exception Invalid_config of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid_config s)) fmt

let validate t =
  let pos name v = if v <= 0 then fail "%s must be positive (got %d)" name v in
  let posf name v = if v <= 0. then fail "%s must be positive (got %g)" name v in
  let nonnegf name v = if v < 0. then fail "%s must be non-negative (got %g)" name v in
  pos "n_arrays" t.n_arrays;
  pos "grid_cols" t.grid_cols;
  pos "rows" t.rows;
  pos "cols" t.cols;
  pos "cell_bits" t.cell_bits;
  pos "weight_bits" t.weight_bits;
  if t.cols * t.cell_bits mod t.weight_bits <> 0 then
    fail "cols*cell_bits must be a multiple of weight_bits";
  pos "buffer_bytes" t.buffer_bytes;
  posf "internal_bw" t.internal_bw;
  posf "extern_bw" t.extern_bw;
  posf "op_cim" t.op_cim;
  posf "d_cim" t.d_cim;
  nonnegf "l_m2c" t.l_m2c;
  nonnegf "l_c2m" t.l_c2m;
  nonnegf "write_latency" t.write_latency;
  posf "freq_mhz" t.freq_mhz;
  if t.grid_cols > t.n_arrays then fail "grid_cols exceeds n_arrays";
  t

let d_main t = t.internal_bw +. t.extern_bw
let grid_rows t = (t.n_arrays + t.grid_cols - 1) / t.grid_cols
let weight_cols t = t.cols * t.cell_bits / t.weight_bits
let array_weight_capacity t = t.rows * weight_cols t
let array_mem_bytes t = t.rows * t.cols * t.cell_bits / 8
let chip_weight_capacity t = t.n_arrays * array_weight_capacity t

let coord_of_index t i =
  if i < 0 || i >= t.n_arrays then fail "array index %d out of range" i;
  { x = i mod t.grid_cols; y = i / t.grid_cols }

let index_of_coord t { x; y } =
  let i = (y * t.grid_cols) + x in
  if x < 0 || x >= t.grid_cols || i >= t.n_arrays then
    fail "coordinate (%d,%d) out of range" x y;
  i

let all_coords t = List.init t.n_arrays (coord_of_index t)

let cycles_to_us t cycles = cycles /. t.freq_mhz

let pp ppf t =
  Format.fprintf ppf
    "@[<v>CIM chip %s@,\
     #_switch_array      %d@,\
     array_size          %dx%d@,\
     cell_bits           %d@,\
     weight precision    %d-bit@,\
     buffer_size         %s@,\
     internal_bw         %g B/cycle@,\
     extern_bw           %g B/cycle@,\
     OP_cim              %g MAC/cycle/array@,\
     D_cim               %g B/cycle/array@,\
     L_m->c / L_c->m     %g / %g cycles/array@,\
     weight write        %g cycles/array@,\
     switch method       %s@,\
     frequency           %g MHz@]" t.name t.n_arrays t.rows t.cols
    t.cell_bits t.weight_bits
    (Cim_util.Bytesize.to_string t.buffer_bytes)
    t.internal_bw t.extern_bw t.op_cim t.d_cim t.l_m2c t.l_c2m t.write_latency
    t.switch_method t.freq_mhz
