(** Per-array fault states for a dual-mode chip. Real crossbar arrays die,
    wear out their switch circuits, or get stuck in one mode; the compiler
    must plan around them and the simulators must charge (or reject) the
    consequences. Injection is deterministic from a seed so every degraded
    compilation is reproducible. *)

type fault =
  | Dead  (** the array is unusable in either mode *)
  | Stuck_mode of Mode.t
      (** the switch circuit failed closed: the array still works but only
          in this mode, and can never transition *)
  | Transient_switch_failure of float
      (** each switch attempt independently fails with this probability in
          [0, 1); bounded retries (with their cycle cost) usually recover *)

type t

val chip : t -> Chip.t

val none : Chip.t -> t
(** All arrays healthy. *)

val of_list : Chip.t -> (Chip.coord * fault) list -> t
(** Explicit fault assignment; later entries override earlier ones. Raises
    [Chip.Invalid_config] on out-of-range coordinates and [Invalid_argument]
    on a transient probability outside [0, 1). *)

val inject :
  Chip.t -> seed:int -> ?dead_rate:float -> ?stuck_rate:float ->
  ?transient_rate:float -> ?transient_band:float * float -> unit -> t
(** Random injection, deterministic in [seed]: each array is independently
    [Dead] with [dead_rate] (default 0), else stuck in a uniformly chosen
    mode with [stuck_rate] (default 0), else transiently failing with
    [transient_rate] (default 0). The per-array transient failure
    probability is drawn uniformly from [transient_band] = [(lo, hi)]
    (default [(0.05, 0.5)]; [lo = hi] pins it). Rates must lie in [0, 1]
    and sum to at most 1, and the band must satisfy [0 <= lo <= hi < 1];
    raises [Invalid_argument] otherwise. *)

val apply : t -> (Chip.coord * fault option) list -> t
(** Functional update for scheduled runtime fault events: returns a new map
    with each listed coordinate set to the given state ([None] clears a
    fault — e.g. a transient that recovered); later entries override
    earlier ones, the input map is unchanged. Raises [Chip.Invalid_config]
    on out-of-range coordinates and [Invalid_argument] on an invalid
    transient probability. *)

val diff : t -> t -> (Chip.coord * fault option) list
(** [diff before after]: the coordinates whose state differs, with the
    state they hold in [after], in index order — the exact update list
    that replays the transition: [apply before (diff before after)] has
    the same states as [after]. Raises [Invalid_argument] when the two
    maps describe different chips. *)

val fault_at : t -> int -> fault option
(** Fault state of the array at a linear index (range-checked). *)

val fault : t -> Chip.coord -> fault option

val is_dead : t -> int -> bool

val switchable : t -> int -> bool
(** Neither dead nor stuck: the array can serve either mode. *)

val usable : t -> int -> target:Mode.t -> bool
(** The array can serve [target] mode: healthy, or stuck in exactly that
    mode. Transient switch failures do not make an array unusable. *)

val transient_prob : t -> int -> float
(** The per-attempt switch-failure probability (0. for healthy arrays). *)

val healthy_count : t -> int
(** Arrays that are not [Dead]. *)

val flexible_count : t -> int
(** Arrays that are neither [Dead] nor [Stuck_mode]: the pool the compiler
    can freely assign to either mode. This is the capacity the segment DP
    and the allocation MIP must plan against. *)

val fault_count : t -> int

val faults : t -> (Chip.coord * fault) list
(** Every faulty array with its state, in index order. *)

val effective_chip : t -> Chip.t
(** The chip the *solver* sees: [n_arrays] reduced to [flexible_count],
    with both grid dimensions re-derived so the grid tightly covers the
    surviving pool ([grid_cols] shrunk only when fewer arrays than columns
    survive; [Chip.grid_rows] follows by ceiling division, so no row is
    entirely empty) — every capacity query counts only arrays the compiler
    may place freely, and the result always passes [Chip.validate]. Raises
    [Invalid_argument] when no flexible array remains — there is nothing
    left to compile onto. *)

val fault_to_string : fault -> string

val pp : Format.formatter -> t -> unit
