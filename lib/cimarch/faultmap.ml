type fault =
  | Dead
  | Stuck_mode of Mode.t
  | Transient_switch_failure of float

type t = { fm_chip : Chip.t; states : fault option array }

let chip t = t.fm_chip

let check_fault = function
  | Transient_switch_failure p when not (p >= 0. && p < 1.) ->
    invalid_arg
      (Printf.sprintf "Faultmap: transient probability %g outside [0, 1)" p)
  | Dead | Stuck_mode _ | Transient_switch_failure _ -> ()

let none chip = { fm_chip = chip; states = Array.make chip.Chip.n_arrays None }

let of_list chip assocs =
  let t = none chip in
  List.iter
    (fun (c, f) ->
      check_fault f;
      t.states.(Chip.index_of_coord chip c) <- Some f)
    assocs;
  t

let inject chip ~seed ?(dead_rate = 0.) ?(stuck_rate = 0.)
    ?(transient_rate = 0.) ?(transient_band = (0.05, 0.5)) () =
  let check name r =
    if r < 0. || r > 1. then
      invalid_arg (Printf.sprintf "Faultmap.inject: %s %g outside [0, 1]" name r)
  in
  check "dead_rate" dead_rate;
  check "stuck_rate" stuck_rate;
  check "transient_rate" transient_rate;
  if dead_rate +. stuck_rate +. transient_rate > 1. then
    invalid_arg "Faultmap.inject: rates sum past 1";
  let band_lo, band_hi = transient_band in
  if not (band_lo >= 0. && band_lo <= band_hi && band_hi < 1.) then
    invalid_arg
      (Printf.sprintf
         "Faultmap.inject: transient band [%g, %g] must satisfy 0 <= lo <= hi < 1"
         band_lo band_hi);
  let rng = Cim_util.Rng.create seed in
  let t = none chip in
  for i = 0 to chip.Chip.n_arrays - 1 do
    let u = Cim_util.Rng.float rng 1. in
    if u < dead_rate then t.states.(i) <- Some Dead
    else if u < dead_rate +. stuck_rate then
      t.states.(i) <-
        Some
          (Stuck_mode
             (if Cim_util.Rng.bool rng then Mode.Memory else Mode.Compute))
    else if u < dead_rate +. stuck_rate +. transient_rate then
      t.states.(i) <-
        Some
          (Transient_switch_failure
             (if band_hi > band_lo then
                band_lo +. Cim_util.Rng.float rng (band_hi -. band_lo)
              else band_lo))
  done;
  t

let apply t updates =
  let t' = { t with states = Array.copy t.states } in
  List.iter
    (fun (c, f) ->
      Option.iter check_fault f;
      t'.states.(Chip.index_of_coord t.fm_chip c) <- f)
    updates;
  t'

let diff before after =
  if before.fm_chip <> after.fm_chip then
    invalid_arg "Faultmap.diff: fault maps describe different chips";
  let out = ref [] in
  Array.iteri
    (fun i s ->
      if s <> after.states.(i) then
        out := (Chip.coord_of_index before.fm_chip i, after.states.(i)) :: !out)
    before.states;
  List.rev !out

let fault_at t i =
  if i < 0 || i >= Array.length t.states then
    invalid_arg (Printf.sprintf "Faultmap.fault_at: index %d out of range" i);
  t.states.(i)

let fault t c = fault_at t (Chip.index_of_coord t.fm_chip c)

let is_dead t i = fault_at t i = Some Dead

let switchable t i =
  match fault_at t i with
  | Some Dead | Some (Stuck_mode _) -> false
  | None | Some (Transient_switch_failure _) -> true

let usable t i ~target =
  match fault_at t i with
  | Some Dead -> false
  | Some (Stuck_mode m) -> m = target
  | None | Some (Transient_switch_failure _) -> true

let transient_prob t i =
  match fault_at t i with
  | Some (Transient_switch_failure p) -> p
  | None | Some Dead | Some (Stuck_mode _) -> 0.

let count pred t =
  Array.fold_left (fun acc s -> if pred s then acc + 1 else acc) 0 t.states

let healthy_count t = count (fun s -> s <> Some Dead) t

let flexible_count t =
  count
    (function
      | None | Some (Transient_switch_failure _) -> true
      | Some Dead | Some (Stuck_mode _) -> false)
    t

let fault_count t = count (fun s -> s <> None) t

let faults t =
  let out = ref [] in
  Array.iteri
    (fun i s ->
      match s with
      | None -> ()
      | Some f -> out := (Chip.coord_of_index t.fm_chip i, f) :: !out)
    t.states;
  List.rev !out

let effective_chip t =
  let flex = flexible_count t in
  if flex <= 0 then
    invalid_arg "Faultmap.effective_chip: no flexible array survives";
  if flex = t.fm_chip.Chip.n_arrays then t.fm_chip
  else begin
    (* Re-derive both grid dimensions from the surviving pool: the column
       width is kept where possible and shrunk when fewer arrays than
       columns survive; the row count then follows as [Chip.grid_rows]
       (ceil), so the grid tightly covers the pool — the last row may be
       partial, but no row is entirely empty. *)
    let grid_cols = min t.fm_chip.Chip.grid_cols flex in
    let eff =
      Chip.validate
        { t.fm_chip with
          Chip.name = Printf.sprintf "%s[%d healthy]" t.fm_chip.Chip.name flex;
          n_arrays = flex;
          grid_cols }
    in
    assert (grid_cols * (Chip.grid_rows eff - 1) < flex);
    eff
  end

let fault_to_string = function
  | Dead -> "dead"
  | Stuck_mode m -> Printf.sprintf "stuck-%s" (Mode.to_string m)
  | Transient_switch_failure p -> Printf.sprintf "transient(p=%.2f)" p

let pp ppf t =
  Format.fprintf ppf "@[<v>faultmap %s: %d/%d faulty (%d flexible)"
    t.fm_chip.Chip.name (fault_count t) t.fm_chip.Chip.n_arrays
    (flexible_count t);
  List.iter
    (fun ((c : Chip.coord), f) ->
      Format.fprintf ppf "@,  (%d,%d): %s" c.Chip.x c.Chip.y (fault_to_string f))
    (faults t);
  Format.fprintf ppf "@]"
