(** Content-addressed compilation cache: a directory of self-describing
    JSON entries, addressed by the MD5 of a caller-supplied key string.

    The store is deliberately dumb — it maps [(tier, key)] to an opaque
    payload string and guarantees only {e integrity}: an entry is returned
    iff its recorded key matches the requested key byte-for-byte and the
    payload's MD5 matches the digest recorded at write time. Semantic
    validation of the payload (does this plan still fit this chip? does the
    program pass the flow validator?) is the caller's job; callers report
    such failures back through {!note_invalid} so they land in the same
    [cache.invalid] accounting as integrity failures.

    Tiers partition the key space into subdirectories ([seg/], [prog/]) so
    per-segment allocation entries and whole-program entries can be
    inspected, sized and cleared independently.

    Entries are written atomically (temp file + rename), so a concurrent
    reader never observes a torn entry and a crash mid-write leaves at
    worst an orphan temp file. [find]/[put] may be called from pool worker
    domains; the store's own counters are mutex-guarded.

    Metrics (recorded when {!Cim_obs.Metrics} is enabled): [cache.hits],
    [cache.misses], [cache.invalid], [cache.evictions], [cache.puts]
    globally, the same rooted at [cache.<tier>.] per tier, and the
    [cache.bytes] gauge tracking the on-disk footprint after each write. *)

type t

val open_dir : ?max_bytes:int -> string -> t
(** Open (creating directories as needed) a cache rooted at the given
    path. With [max_bytes], every {!put} that pushes the store's on-disk
    footprint above the budget evicts oldest-modified entries until it
    fits again (the entry just written is never evicted). Because {!find}
    touches an entry's mtime on every hit, the policy is LRU, not
    insert-order FIFO — entries a long-running process keeps re-reading
    (e.g. the fallback plans a serving fleet recompiles around) stay
    resident. Raises [Invalid_argument] on a non-positive [max_bytes] and
    [Sys_error] when the directory cannot be created. *)

val dir : t -> string

val find : t -> tier:string -> key:string -> string option
(** The payload stored for [(tier, key)], or [None]. A present-but-bad
    entry — unreadable, unparseable, wrong version, recorded key differing
    from [key] (hash collision or relocated file), or payload digest
    mismatch (corruption, truncation) — is a miss that also increments the
    invalid counters; it is left on disk for [verify] to report. A hit
    touches the entry's mtime (best-effort) so budget eviction is LRU. *)

val put : t -> tier:string -> key:string -> payload:string -> unit
(** Write (or overwrite) the entry for [(tier, key)]. I/O failures are
    swallowed — a cache that cannot write degrades to a smaller cache, it
    never fails the compile. *)

val note_invalid : t -> tier:string -> unit
(** Record a semantic-validation failure for an entry this store returned:
    the caller parsed the payload and found it stale or meaningless. Counts
    exactly like an integrity failure. *)

type counters = {
  hits : int;
  misses : int;
  invalid : int;  (** subset of [misses] caused by bad entries *)
  evictions : int;
  puts : int;
}

val counters : t -> counters
(** Totals across tiers for this store handle's lifetime (in-process; disk
    state is accounted by {!disk_stats}). *)

val tier_counters : t -> string -> counters

val flush_counters : t -> unit
(** Merge this handle's not-yet-flushed counter deltas into
    [counters.json] at the cache root (read-modify-write, atomic temp +
    rename), so hit/miss accounting survives across processes — one CLI
    invocation's warm hits are visible to the next [cache stats]. I/O
    failures are swallowed and the unflushed delta is retained for the next
    attempt. *)

val lifetime_counters : t -> counters
(** Totals accumulated across every process that has flushed into this
    cache directory, plus this handle's not-yet-flushed delta. Reads
    [counters.json] on each call; a missing or damaged file contributes
    zeros. *)

val lifetime_tier_counters : t -> string -> counters

val fold_keys : t -> tier:string -> init:'a -> f:('a -> string -> 'a) -> 'a
(** Fold [f] over every well-formed entry key stored under [tier], in
    sorted key order (deterministic regardless of directory enumeration).
    Entries that fail parsing or integrity checks are skipped silently and
    the hit/miss counters are not touched — this is an offline scan, not a
    lookup. *)

type tier_stats = { tier : string; entries : int; bytes : int }

type disk_stats = { total_entries : int; total_bytes : int; tiers : tier_stats list }

val disk_stats : t -> disk_stats
(** Walk the directory and size every entry, grouped by tier. *)

val clear : t -> int
(** Remove every entry (and orphan temp file); returns the number of entry
    files removed. *)

val verify : t -> (string * string) list
(** Integrity-check every entry on disk: parse, version, digest, and that
    the entry sits at the path its recorded key hashes to. Returns
    [(path, problem)] for each bad entry; an empty list means the cache is
    sound. Does not touch the hit/miss counters. *)

val entry_path : t -> tier:string -> key:string -> string
(** Where the entry for [(tier, key)] lives (whether or not it exists) —
    exposed for tests that corrupt entries on purpose. *)
