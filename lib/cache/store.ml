module J = Cim_obs.Json
module Metrics = Cim_obs.Metrics
module Trace = Cim_obs.Trace

let entry_version = 1

type counters = {
  hits : int;
  misses : int;
  invalid : int;
  evictions : int;
  puts : int;
}

let zero_counters = { hits = 0; misses = 0; invalid = 0; evictions = 0; puts = 0 }

type mut_counters = {
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_invalid : int;
  mutable c_evictions : int;
  mutable c_puts : int;
}

let fresh_mut () =
  { c_hits = 0; c_misses = 0; c_invalid = 0; c_evictions = 0; c_puts = 0 }

let freeze (m : mut_counters) =
  { hits = m.c_hits; misses = m.c_misses; invalid = m.c_invalid;
    evictions = m.c_evictions; puts = m.c_puts }

let set_mut (m : mut_counters) (c : counters) =
  m.c_hits <- c.hits;
  m.c_misses <- c.misses;
  m.c_invalid <- c.invalid;
  m.c_evictions <- c.evictions;
  m.c_puts <- c.puts

let add_counters a b =
  { hits = a.hits + b.hits; misses = a.misses + b.misses;
    invalid = a.invalid + b.invalid; evictions = a.evictions + b.evictions;
    puts = a.puts + b.puts }

let sub_counters a b =
  { hits = a.hits - b.hits; misses = a.misses - b.misses;
    invalid = a.invalid - b.invalid; evictions = a.evictions - b.evictions;
    puts = a.puts - b.puts }

type t = {
  root : string;
  max_bytes : int option;
  mutex : Mutex.t;
  total : mut_counters;
  by_tier : (string, mut_counters) Hashtbl.t;
  (* the slice of [total]/[by_tier] already merged into counters.json:
     lifetime = file + (in-process - flushed) *)
  flushed_total : mut_counters;
  flushed_by_tier : (string, mut_counters) Hashtbl.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "." then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

let open_dir ?max_bytes root =
  (match max_bytes with
  | Some b when b <= 0 -> invalid_arg "Store.open_dir: max_bytes must be positive"
  | _ -> ());
  mkdir_p root;
  { root; max_bytes; mutex = Mutex.create (); total = fresh_mut ();
    by_tier = Hashtbl.create 4; flushed_total = fresh_mut ();
    flushed_by_tier = Hashtbl.create 4 }

let dir t = t.root

(* --- counters ------------------------------------------------------------ *)

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let tier_mut t tier =
  match Hashtbl.find_opt t.by_tier tier with
  | Some m -> m
  | None ->
    let m = fresh_mut () in
    Hashtbl.add t.by_tier tier m;
    m

let metric tier name = Metrics.counter (Printf.sprintf "cache.%s.%s" tier name)
let metric_total name = Metrics.counter ("cache." ^ name)

let bump t tier f metric_name =
  locked t (fun () ->
      f t.total;
      f (tier_mut t tier));
  Metrics.incr (metric_total metric_name);
  Metrics.incr (metric tier metric_name)

let record_hit t tier = bump t tier (fun m -> m.c_hits <- m.c_hits + 1) "hits"
let record_miss t tier = bump t tier (fun m -> m.c_misses <- m.c_misses + 1) "misses"

let record_invalid t tier =
  bump t tier (fun m -> m.c_invalid <- m.c_invalid + 1) "invalid"

let record_eviction t tier =
  bump t tier (fun m -> m.c_evictions <- m.c_evictions + 1) "evictions"

let record_put t tier = bump t tier (fun m -> m.c_puts <- m.c_puts + 1) "puts"

let counters t = locked t (fun () -> freeze t.total)

let tier_counters t tier =
  locked t (fun () ->
      match Hashtbl.find_opt t.by_tier tier with
      | Some m -> freeze m
      | None -> zero_counters)

(* --- paths --------------------------------------------------------------- *)

let entry_path t ~tier ~key =
  Filename.concat (Filename.concat t.root tier)
    (Digest.to_hex (Digest.string key) ^ ".json")

let is_entry_file name = Filename.check_suffix name ".json"
let is_temp_file name = Filename.check_suffix name ".tmp"

let tier_dirs t =
  if Sys.file_exists t.root && Sys.is_directory t.root then
    Sys.readdir t.root |> Array.to_list
    |> List.filter (fun d -> Sys.is_directory (Filename.concat t.root d))
    |> List.sort compare
  else []

let entries_of_tier t tier =
  let d = Filename.concat t.root tier in
  if Sys.file_exists d && Sys.is_directory d then
    Sys.readdir d |> Array.to_list |> List.filter is_entry_file
    |> List.sort compare
    |> List.map (Filename.concat d)
  else []

let all_entries t =
  List.concat_map (fun tier -> entries_of_tier t tier) (tier_dirs t)

(* --- entry (de)serialisation --------------------------------------------- *)

let entry_to_string ~tier ~key ~payload =
  J.to_string
    (J.Obj
       [ ("version", J.Int entry_version);
         ("tier", J.String tier);
         ("key", J.String key);
         ("payload_md5", J.String (Digest.to_hex (Digest.string payload)));
         ("payload", J.String payload) ])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Parse and integrity-check one entry file; [Ok (key, payload)] only when
   the digest matches. *)
let parse_entry src =
  match J.of_string src with
  | exception J.Parse_error m -> Error ("unparseable entry: " ^ m)
  | j -> (
    let str k = match J.member k j with Some (J.String s) -> Some s | _ -> None in
    match (J.member "version" j, str "tier", str "key", str "payload_md5",
           str "payload")
    with
    | Some (J.Int v), _, _, _, _ when v <> entry_version ->
      Error (Printf.sprintf "unsupported entry version %d" v)
    | Some (J.Int _), Some tier, Some key, Some md5, Some payload ->
      if Digest.to_hex (Digest.string payload) <> md5 then
        Error "payload digest mismatch (corrupted or truncated entry)"
      else Ok (tier, key, payload)
    | _ -> Error "missing or ill-typed entry field")

(* --- lifetime counters --------------------------------------------------- *)

let counters_path t = Filename.concat t.root "counters.json"

let counters_to_json (c : counters) =
  J.Obj
    [ ("hits", J.Int c.hits); ("misses", J.Int c.misses);
      ("invalid", J.Int c.invalid); ("evictions", J.Int c.evictions);
      ("puts", J.Int c.puts) ]

let counters_of_json j =
  let i k = match J.member k j with Some (J.Int n) when n >= 0 -> n | _ -> 0 in
  { hits = i "hits"; misses = i "misses"; invalid = i "invalid";
    evictions = i "evictions"; puts = i "puts" }

(* A missing or damaged counters file reads as all-zero: lifetime stats are
   advisory and must never fail a cache operation. *)
let read_lifetime_file t =
  let path = counters_path t in
  if not (Sys.file_exists path) then (zero_counters, [])
  else
    match read_file path with
    | exception Sys_error _ -> (zero_counters, [])
    | src -> (
      match J.of_string src with
      | exception J.Parse_error _ -> (zero_counters, [])
      | j ->
        let total =
          match J.member "total" j with
          | Some o -> counters_of_json o
          | None -> zero_counters
        in
        let tiers =
          match J.member "tiers" j with
          | Some (J.Obj kvs) ->
            List.map (fun (k, v) -> (k, counters_of_json v)) kvs
          | _ -> []
        in
        (total, tiers))

let flush_counters t =
  locked t (fun () ->
      let delta_total = sub_counters (freeze t.total) (freeze t.flushed_total) in
      let tier_snap =
        Hashtbl.fold
          (fun tier m acc ->
            let cur = freeze m in
            let prev =
              match Hashtbl.find_opt t.flushed_by_tier tier with
              | Some f -> freeze f
              | None -> zero_counters
            in
            (tier, cur, sub_counters cur prev) :: acc)
          t.by_tier []
      in
      let file_total, file_tiers = read_lifetime_file t in
      let tier_names =
        List.sort_uniq compare
          (List.map fst file_tiers @ List.map (fun (n, _, _) -> n) tier_snap)
      in
      let new_tiers =
        List.map
          (fun n ->
            let from_file =
              Option.value (List.assoc_opt n file_tiers) ~default:zero_counters
            in
            let delta =
              match List.find_opt (fun (tn, _, _) -> tn = n) tier_snap with
              | Some (_, _, d) -> d
              | None -> zero_counters
            in
            (n, add_counters from_file delta))
          tier_names
      in
      let json =
        J.Obj
          [ ("version", J.Int 1);
            ("total", counters_to_json (add_counters file_total delta_total));
            ("tiers",
             J.Obj (List.map (fun (n, c) -> (n, counters_to_json c)) new_tiers))
          ]
      in
      match
        let tmp =
          Printf.sprintf "%s.%d.%d.tmp" (counters_path t) (Unix.getpid ())
            (Domain.self () :> int)
        in
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (J.to_string json));
        Sys.rename tmp (counters_path t)
      with
      | () ->
        (* the file now covers everything counted so far; a failed write
           leaves [flushed_*] untouched so the delta is retried next time *)
        set_mut t.flushed_total (freeze t.total);
        List.iter
          (fun (tier, cur, _) ->
            let f =
              match Hashtbl.find_opt t.flushed_by_tier tier with
              | Some f -> f
              | None ->
                let f = fresh_mut () in
                Hashtbl.add t.flushed_by_tier tier f;
                f
            in
            set_mut f cur)
          tier_snap
      | exception (Sys_error _ | Unix.Unix_error _) -> ())

let lifetime_counters t =
  locked t (fun () ->
      let file_total, _ = read_lifetime_file t in
      add_counters file_total
        (sub_counters (freeze t.total) (freeze t.flushed_total)))

let lifetime_tier_counters t tier =
  locked t (fun () ->
      let _, file_tiers = read_lifetime_file t in
      let from_file =
        Option.value (List.assoc_opt tier file_tiers) ~default:zero_counters
      in
      let cur =
        match Hashtbl.find_opt t.by_tier tier with
        | Some m -> freeze m
        | None -> zero_counters
      in
      let flushed =
        match Hashtbl.find_opt t.flushed_by_tier tier with
        | Some m -> freeze m
        | None -> zero_counters
      in
      add_counters from_file (sub_counters cur flushed))

(* --- key enumeration ----------------------------------------------------- *)

let fold_keys t ~tier ~init ~f =
  let keys =
    List.filter_map
      (fun path ->
        match read_file path with
        | exception Sys_error _ -> None
        | src -> (
          match parse_entry src with
          | Ok (etier, key, _payload) when etier = tier -> Some key
          | Ok _ | Error _ -> None))
      (entries_of_tier t tier)
    |> List.sort compare
  in
  List.fold_left f init keys

(* --- find ---------------------------------------------------------------- *)

let find t ~tier ~key =
  Trace.with_span "cache.find" ~cat:"cache" ~args:[ ("tier", J.String tier) ]
  @@ fun () ->
  let path = entry_path t ~tier ~key in
  if not (Sys.file_exists path) then begin
    record_miss t tier;
    None
  end
  else
    let verdict =
      match read_file path with
      | exception Sys_error m -> Error ("unreadable entry: " ^ m)
      | src -> (
        match parse_entry src with
        | Error _ as e -> e
        | Ok (etier, ekey, payload) ->
          if etier <> tier || ekey <> key then
            Error "entry key does not match the requested key"
          else Ok payload)
    in
    match verdict with
    | Ok payload ->
      record_hit t tier;
      (* touch-on-hit: bump the entry's mtime so the size-budget eviction
         (mtime-oldest-first) behaves as LRU rather than FIFO — a hot
         fallback plan a serving fleet keeps recompiling around stays
         resident however long ago it was first stored. Best-effort: a
         read-only cache still hits *)
      (try Unix.utimes path 0. 0. with Unix.Unix_error _ -> ());
      Some payload
    | Error _ ->
      (* a bad entry is a miss, loudly accounted; [verify] can still find
         and describe it on disk *)
      record_invalid t tier;
      record_miss t tier;
      None

let note_invalid t ~tier =
  record_invalid t tier;
  record_miss t tier

(* --- put + eviction ------------------------------------------------------ *)

let file_size path = match (Unix.stat path).Unix.st_size with s -> s

let disk_bytes t =
  List.fold_left (fun acc p -> acc + try file_size p with Unix.Unix_error _ -> 0)
    0 (all_entries t)

let evict_to_budget t ~keep =
  match t.max_bytes with
  | None -> ()
  | Some budget ->
    let entries =
      all_entries t
      |> List.filter_map (fun p ->
             if p = keep then None
             else
               match Unix.stat p with
               | st -> Some (p, st.Unix.st_size, st.Unix.st_mtime)
               | exception Unix.Unix_error _ -> None)
      (* oldest first; name as tie-break so eviction order is stable *)
      |> List.sort (fun (p1, _, m1) (p2, _, m2) ->
             match compare m1 m2 with 0 -> compare p1 p2 | c -> c)
    in
    let total = ref (List.fold_left (fun a (_, s, _) -> a + s) 0 entries) in
    let keep_size = try file_size keep with Unix.Unix_error _ -> 0 in
    total := !total + keep_size;
    List.iter
      (fun (p, size, _) ->
        if !total > budget then begin
          (try Sys.remove p with Sys_error _ -> ());
          total := !total - size;
          let tier = Filename.basename (Filename.dirname p) in
          record_eviction t tier
        end)
      entries

let put t ~tier ~key ~payload =
  Trace.with_span "cache.put" ~cat:"cache" ~args:[ ("tier", J.String tier) ]
  @@ fun () ->
  let path = entry_path t ~tier ~key in
  (try
     mkdir_p (Filename.dirname path);
     let tmp =
       Printf.sprintf "%s.%d.%d.tmp" path (Unix.getpid ())
         (Domain.self () :> int)
     in
     let oc = open_out_bin tmp in
     Fun.protect
       ~finally:(fun () -> close_out_noerr oc)
       (fun () -> output_string oc (entry_to_string ~tier ~key ~payload));
     Sys.rename tmp path;
     record_put t tier;
     (* not under [locked]: record_eviction takes the counter mutex itself,
        and relocking here would raise (and get swallowed below), silently
        abandoning the eviction sweep. Concurrent sweeps are safe — removal
        of an already-removed entry is ignored. *)
     evict_to_budget t ~keep:path
   with Sys_error _ | Unix.Unix_error _ -> ());
  Metrics.set_gauge (Metrics.gauge "cache.bytes") (float_of_int (disk_bytes t))

(* --- maintenance --------------------------------------------------------- *)

type tier_stats = { tier : string; entries : int; bytes : int }

type disk_stats = { total_entries : int; total_bytes : int; tiers : tier_stats list }

let disk_stats t =
  let tiers =
    List.map
      (fun tier ->
        let files = entries_of_tier t tier in
        { tier;
          entries = List.length files;
          bytes =
            List.fold_left
              (fun a p -> a + try file_size p with Unix.Unix_error _ -> 0)
              0 files })
      (tier_dirs t)
  in
  { total_entries = List.fold_left (fun a s -> a + s.entries) 0 tiers;
    total_bytes = List.fold_left (fun a s -> a + s.bytes) 0 tiers;
    tiers }

let clear t =
  let removed = ref 0 in
  List.iter
    (fun tier ->
      let d = Filename.concat t.root tier in
      Array.iter
        (fun name ->
          let p = Filename.concat d name in
          if is_entry_file name then begin
            (try
               Sys.remove p;
               incr removed
             with Sys_error _ -> ())
          end
          else if is_temp_file name then try Sys.remove p with Sys_error _ -> ())
        (try Sys.readdir d with Sys_error _ -> [||]))
    (tier_dirs t);
  Metrics.set_gauge (Metrics.gauge "cache.bytes") (float_of_int (disk_bytes t));
  !removed

let verify t =
  List.filter_map
    (fun path ->
      let problem =
        match read_file path with
        | exception Sys_error m -> Some ("unreadable: " ^ m)
        | src -> (
          match parse_entry src with
          | Error m -> Some m
          | Ok (tier, key, _payload) ->
            let expected = entry_path t ~tier ~key in
            if expected <> path then
              Some
                (Printf.sprintf
                   "entry key hashes to %s (file moved or key tampered)"
                   expected)
            else None)
      in
      Option.map (fun m -> (path, m)) problem)
    (all_entries t)
