(** Machine-level simulator for the lowered MMIO command stream
    ({!Cim_metaop.Isa}): a flat interpreter with an explicit program
    counter over the command FIFO, the way a device-side sequencer would
    drain it — bracket markers delimit pipelined blocks, DMA descriptors
    move tensors, switch/compute commands drive the same {!Machine} mode
    model as the meta-op simulator.

    This is deliberately a second, independent execution path: it shares
    the int8 oracle ({!Functional.quant_eval}) and the {!Machine} fault
    model with {!Functional} but walks the linear stream rather than the
    instruction tree. The differential contract — same graph, same
    program, one lowered through {!Cim_metaop.Isa.of_flow} — is that both
    simulators produce identical {!Functional.report}s, so
    {!Functional.digest} must agree bit for bit. *)

val run :
  Cim_arch.Chip.t -> ?faults:Cim_arch.Faultmap.t -> ?rng:Cim_util.Rng.t ->
  ?max_switch_retries:int -> ?jobs:int -> ?backend:Cim_tensor.Kernels.backend ->
  Cim_nnir.Graph.t -> Cim_metaop.Isa.image ->
  inputs:(string * Cim_tensor.Tensor.t) list -> Functional.report
(** Same contract as {!Functional.run}, over the command stream: raises
    {!Functional.Error} on malformed streams (unbalanced brackets, unknown
    tensors, coverage gaps) and {!Machine.Fault} on mode violations; the
    report is byte-identical at any [jobs] and for either kernel backend.
    Inside a [PAR_BEGIN]/[PAR_END] block, independent CIM nodes are
    pre-evaluated concurrently on the pool exactly as {!Functional.run}
    pre-evaluates a [Parallel] block. *)
