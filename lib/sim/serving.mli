(** Request-level serving simulation: drives a compiled model's cost
    profile with a trace of inference requests (prompt + generation
    lengths, arrival times) through a single CIM chip, FCFS. This is the
    system-level view behind the paper's LLM motivation: decode steps
    dominate wall-clock, and their bandwidth-bound nature is what dual-mode
    compilation accelerates. *)

type request = {
  arrival : float;   (** cycles since trace start *)
  prompt : int;      (** tokens pre-filled at once *)
  output : int;      (** tokens generated, one decode step each *)
}

type cost_profile = {
  prefill_cycles : int -> float;     (** prompt length -> cycles *)
  decode_cycles : int -> float;      (** kv length -> cycles per token *)
}

type stats = {
  completed : int;
  dropped : int;               (** requests rejected by deadline admission *)
  makespan : float;            (** cycles until the last request finishes *)
  mean_latency : float;        (** request arrival -> completion, cycles *)
  p95_latency : float;         (** nearest-rank: the worst observed latency
                                   on traces under 20 completed requests *)
  p99_latency : float;         (** nearest-rank tail latency *)
  mean_ttft : float;           (** time to first token, cycles *)
  p50_tpt : float;             (** median time-per-token: nearest-rank over
                                   every decode step of every admitted
                                   request, cycles *)
  p95_tpt : float;
  p99_tpt : float;
  tokens : int;
  tokens_per_megacycle : float;
}

val zero_stats : stats
(** All-zero statistics: what an empty trace (or a trace whose every
    request was dropped) reports. *)

(** Simulation knobs as one record, so new policies (batching windows,
    admission variants) extend a field instead of growing [run]'s optional
    argument list. *)
type config = {
  deadline : float option;
      (** per-request completion deadline in cycles (admission control);
          [None] admits everything *)
}

val default_config : config
(** No deadline. *)

val bucketed_profile :
  ceiling:(int -> int) ->
  prefill_cycles:(int -> float) ->
  decode_cycles:(int -> float) ->
  cost_profile
(** View a per-length cost model through a bucket policy: every length maps
    to [ceiling length] (which must be [>= length] — [Invalid_argument]
    otherwise) and each distinct ceiling is priced exactly once, memoised.
    [prefill_cycles] receives the bucketed prompt length; [decode_cycles]
    receives the bucketed KV length (the bucket ceiling of [kv_len + 1],
    minus one — buckets partition {e context} lengths). Pass
    [Cim_compiler.Bucket.ceiling] of the compile-side policy as [ceiling]
    so simulated costs price exactly the padded programs the compiler
    emits. *)

val interpolate : (int * float) list -> int -> float
(** Piecewise-linear interpolation through sample points (sorted
    internally, constant extrapolation outside). Duplicate-x samples are
    deduplicated by key, keeping the {e last} one given — never a
    zero-width bracket, never NaN. An empty sample list yields the
    constant-zero profile. *)

val run :
  ?config:config -> ?deadline:float -> cost_profile -> request list -> stats
(** FCFS, no batching across requests: each request runs prefill then its
    decode steps with a growing KV length. An empty trace returns
    {!zero_stats}. [config] carries the simulation knobs; the [deadline]
    argument is the legacy spelling and, when given, overrides
    [config.deadline]. With a deadline (cycles, must be positive), a request
    whose predicted completion would exceed arrival + deadline is dropped
    on arrival — it does not occupy the chip, counts in [dropped], and is
    excluded from every latency/throughput statistic; this is the degraded-
    throughput view of a chip slowed by faults. Raises [Invalid_argument]
    on a malformed request (non-positive prompt or negative output). *)

val poisson_trace :
  Cim_util.Rng.t -> n:int -> mean_gap:float -> prompt:int -> output:int ->
  request list
(** Synthetic open-loop trace: exponential inter-arrival gaps, fixed
    shape. *)

val bursty_trace :
  Cim_util.Rng.t -> n:int -> burst:int -> mean_gap:float -> intra_gap:float ->
  prompt:int -> output:int -> request list
(** Synthetic open-loop bursty trace: bursts of [burst] requests spaced
    [intra_gap] cycles apart inside the burst, with exponential
    (mean [mean_gap]) gaps between burst fronts — the adversarial arrival
    pattern for admission and shedding policies. Raises [Invalid_argument]
    on non-positive [n]/[burst] or negative [intra_gap]. *)
