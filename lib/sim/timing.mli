(** Timing simulator: cycle accounting over a meta-operator flow using the
    DEHA cost model — the MNSIM/NeuroSim-derived latency simulator of §5.1,
    extended with the dual-mode switch (the [CM.switch] cost and the
    compute/memory-mode operation costs of §4.2).

    Each [parallel{}] block is a pipelined network segment: its latency is
    the slowest operator chain (per-operator weight programming followed by
    Eq. 10 execution). Switches are charged per array. Loads and stores
    whose bytes already flow through an operator's arithmetic-intensity term
    are not double-charged; only boundary write-backs of *dirty*
    memory-array contents displaced by the next segment are. Since the
    generated flows store operator outputs back eagerly (their cost lives in
    the AI traffic term), the simulated total can undercut the compiler's
    schedule by at most its conservative Eq. 4 write-back estimate:
    [timing <= schedule <= timing + schedule.writeback]. *)

type breakdown = {
  compute : float;    (** pipelined segment execution (Eq. 9/10) *)
  switch : float;     (** CM.switch cost (Eq. 1) *)
  rewrite : float;    (** weight (re)programming (Eq. 2) *)
  writeback : float;  (** displaced scratchpad data flushed to main memory *)
  total : float;
}

type result = {
  cycles : breakdown;
  microseconds : float;
  segments : int;
  seg_cycles : breakdown list;
      (** measured breakdown of each pipelined segment, program order —
          the per-segment counterpart of the schedule's [intra_cycles]
          prediction (cost-model drift attribution feeds on the pair;
          see {!Drift}) *)
  switch_count : int * int;        (** realised (m->c, c->m) *)
  switch_retries : int;            (** failed transient switch attempts;
                                       each charged one single-array switch
                                       latency on top of the base cost *)
  dma_bytes : int;                 (** explicit load/store traffic *)
  switch_share : float;            (** (switch + writeback) / total — the
                                       §5.5 "dual-mode switch" overhead: the
                                       cost the switching mechanism itself
                                       adds (weight programming is paid by
                                       fixed-mode compilers too) *)
}

val run :
  Cim_arch.Chip.t -> ?faults:Cim_arch.Faultmap.t -> ?rng:Cim_util.Rng.t ->
  ?max_switch_retries:int -> Cim_metaop.Flow.program -> result
(** With [faults], every switch of a transiently failing array draws retry
    attempts from [rng] (default a fixed seed, matching
    {!Machine.create}) and charges each failed attempt. *)

val pp : Format.formatter -> result -> unit
