(** Cost-model drift attribution: Eq. 10 predictions vs timing-simulator
    measurements.

    The compiler's schedule predicts cycles per component (pipelined
    segment execution, mode switching, weight rewriting, boundary
    write-back) and per segment; {!Timing.run} measures them. Comparing
    the two per component and {e per mode} — compute cycles run arrays in
    CIM mode, the rest is memory-system time — turns "the model was off
    by 12%" into "segment 3's intra prediction was off by 12%", which is
    what a cost-model regression hunt needs.

    This library cannot depend on the compiler, so the prediction is a
    plain record the caller projects from [Plan.schedule]. *)

type prediction = {
  source : string;      (** compiler that produced the schedule *)
  seg_intra : float list;  (** per-segment Eq. 9/10 intra cycles, in order *)
  intra : float;
  switch : float;
  rewrite : float;
  writeback : float;
  total : float;
}

type row = {
  label : string;      (** component: intra/switch/rewrite/writeback/... *)
  mode : string;       (** [cim], [memory], or [all] *)
  predicted : float;
  measured : float;
}

type seg_row = { segment : int; seg_predicted : float; seg_measured : float }

type t = { source : string; summary : row list; segments : seg_row list }

val drift_pct : predicted:float -> measured:float -> float
(** Signed relative error in percent; 0 when both are 0, [infinity] when
    only the prediction is. *)

val attribute : prediction -> Timing.result -> t
(** Line the prediction up against a measured run: component rows (intra
    vs measured compute, switch/rewrite/writeback vs their measured
    counterparts, a memory-mode total, and the grand total) plus one row
    per pipelined segment (predicted intra vs the segment's measured
    compute cycles from {!Timing.result.seg_cycles}; a length mismatch
    truncates to the common prefix). *)

val record_metrics : t -> unit
(** Publish [costmodel.drift.pct] / [.predicted_cycles] /
    [.measured_cycles] gauges labelled by (component, mode), and the
    [costmodel.drift.segment_pct] histogram of absolute per-segment
    drift. No-op while metrics are disabled. *)

val to_json : t -> Cim_obs.Json.t
(** The ["drift"] telemetry-document member: [{source, summary: [{mode,
    predicted, measured, drift_pct}], rows: [{segment, mode, predicted,
    measured, drift_pct}]}] — the shape {!Cim_obs.Telemetry.report}
    renders as the drift table. *)

val pp : Format.formatter -> t -> unit
