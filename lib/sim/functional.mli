(** Functional simulator: executes a meta-operator flow against the source
    graph, modelling the int8 arithmetic the CIM arrays actually perform,
    and diffs the results against the float reference executor — the role
    the CIM-MLC functional simulator + PyTorch comparison plays in §5.1.

    Checks enforced while executing:
    - every [CIM.compute] runs on compute-mode arrays programmed with that
      operator's weights, and its memory operands sit in memory-mode arrays;
    - mode switches are never redundant;
    - the output slices of an operator's sub-operators cover its full output
      (nothing silently missing from a partitioned matmul). *)

type report = {
  outputs : (string * Cim_tensor.Tensor.t) list;   (** simulated, int8 path *)
  reference : (string * Cim_tensor.Tensor.t) list; (** float reference *)
  max_abs_err : float;
  max_rel_err : float;  (** relative to the reference tensor's max |value| *)
  compute_instrs : int;
  vector_instrs : int;
  switches : int * int; (** realised (m->c, c->m) *)
  switch_retries : int; (** failed switch attempts recovered by retrying *)
}

exception Error of string

val run :
  Cim_arch.Chip.t -> ?faults:Cim_arch.Faultmap.t -> ?rng:Cim_util.Rng.t ->
  ?max_switch_retries:int -> ?jobs:int -> ?backend:Cim_tensor.Kernels.backend ->
  Cim_nnir.Graph.t -> Cim_metaop.Flow.program ->
  inputs:(string * Cim_tensor.Tensor.t) list -> report
(** Requires every initializer of the graph to carry values. Raises [Error]
    (or {!Machine.Fault}) on illegal programs — including programs that use
    dead arrays, switch stuck arrays, or exhaust the transient-switch retry
    budget of the fault model (see {!Machine.create}).

    [jobs] (default {!Cim_util.Pool.default_jobs}, forced to 1 when already
    inside a pool worker) sizes the work pool the simulator runs on; each
    [Parallel] block's independent CIM nodes are pre-evaluated concurrently
    and the row-parallel {!Cim_tensor.Kernels} split large matmuls across
    the same pool. [backend] (default {!Cim_tensor.Kernels.backend}) picks
    the kernel engine for the run. Under the determinism contract the
    report — outputs, errors, instruction counts, switch stats — is
    byte-identical at any [jobs] and for either backend; {!digest} is the
    cheap way to assert that. *)

val digest : report -> string
(** MD5 hex digest over the simulated output tensors (names + IEEE-754 bit
    patterns, so any numeric divergence changes it) and the instruction /
    switch counters. Golden-fixture material: equal digests mean the run
    was byte-identical. *)

val quant_eval :
  Cim_nnir.Graph.node -> Cim_tensor.Tensor.t list -> Cim_tensor.Tensor.t
(** The int8 oracle for one CIM node (quantize -> int8 matmul/conv ->
    dequantize), exactly as the compute arrays perform it. Shared with
    {!Isa_sim} so both simulators model identical array arithmetic. *)
