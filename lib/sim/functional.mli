(** Functional simulator: executes a meta-operator flow against the source
    graph, modelling the int8 arithmetic the CIM arrays actually perform,
    and diffs the results against the float reference executor — the role
    the CIM-MLC functional simulator + PyTorch comparison plays in §5.1.

    Checks enforced while executing:
    - every [CIM.compute] runs on compute-mode arrays programmed with that
      operator's weights, and its memory operands sit in memory-mode arrays;
    - mode switches are never redundant;
    - the output slices of an operator's sub-operators cover its full output
      (nothing silently missing from a partitioned matmul). *)

type report = {
  outputs : (string * Cim_tensor.Tensor.t) list;   (** simulated, int8 path *)
  reference : (string * Cim_tensor.Tensor.t) list; (** float reference *)
  max_abs_err : float;
  max_rel_err : float;  (** relative to the reference tensor's max |value| *)
  compute_instrs : int;
  vector_instrs : int;
  switches : int * int; (** realised (m->c, c->m) *)
  switch_retries : int; (** failed switch attempts recovered by retrying *)
}

exception Error of string

val run :
  Cim_arch.Chip.t -> ?faults:Cim_arch.Faultmap.t -> ?rng:Cim_util.Rng.t ->
  ?max_switch_retries:int -> Cim_nnir.Graph.t -> Cim_metaop.Flow.program ->
  inputs:(string * Cim_tensor.Tensor.t) list -> report
(** Requires every initializer of the graph to carry values. Raises [Error]
    (or {!Machine.Fault}) on illegal programs — including programs that use
    dead arrays, switch stuck arrays, or exhaust the transient-switch retry
    budget of the fault model (see {!Machine.create}). *)
