module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode
module Faultmap = Cim_arch.Faultmap
module Rng = Cim_util.Rng
module Trace = Cim_obs.Trace

type content =
  | Empty
  | Weights of { node_id : int; lo : int; hi : int }
  | Data of string

type t = {
  chip : Chip.t;
  faults : Faultmap.t option;
  rng : Rng.t;
  max_switch_retries : int;
  modes : Mode.t array;
  contents : content array;
  mutable m2c : int;
  mutable c2m : int;
  mutable retries : int;
  (* residency tracking for the trace: the machine's clock is one step per
     executed meta-operator effect, and [mode_since] remembers when each
     array entered its current mode *)
  mutable step : int;
  mode_since : int array;
  switched : (int, unit) Hashtbl.t;
}

let m_m2c = Cim_obs.Metrics.counter "machine.switches.m2c"
let m_c2m = Cim_obs.Metrics.counter "machine.switches.c2m"
let m_retries = Cim_obs.Metrics.counter "machine.switch.retries"

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create chip ?(initial_mode = Mode.Memory) ?faults ?rng
    ?(max_switch_retries = 3) () =
  if max_switch_retries < 0 then
    invalid_arg "Machine.create: max_switch_retries must be non-negative";
  {
    chip;
    faults;
    rng = (match rng with Some r -> r | None -> Rng.create 0x5117c4);
    max_switch_retries;
    modes =
      Array.init chip.Chip.n_arrays (fun i ->
          (* stuck arrays are physically pinned to their mode *)
          match faults with
          | Some fm -> begin
            match Faultmap.fault_at fm i with
            | Some (Faultmap.Stuck_mode m) -> m
            | _ -> initial_mode
          end
          | None -> initial_mode);
    contents = Array.make chip.Chip.n_arrays Empty;
    m2c = 0;
    c2m = 0;
    retries = 0;
    step = 0;
    mode_since = Array.make chip.Chip.n_arrays 0;
    switched = Hashtbl.create 16;
  }

let tick t = t.step <- t.step + 1

(* one mode-colored slab on the array's track, covering [mode_since, step) *)
let emit_residency t i =
  if Trace.enabled () then begin
    let since = t.mode_since.(i) and now = t.step in
    if now > since then begin
      let c = Chip.coord_of_index t.chip i in
      Trace.name_process ~pid:Trace.pid_machine "machine (steps)";
      Trace.name_thread ~pid:Trace.pid_machine ~tid:i
        (Printf.sprintf "array (%d,%d)" c.Chip.x c.Chip.y);
      Trace.complete ~cat:"residency" ~pid:Trace.pid_machine ~tid:i
        ~ts:(float_of_int since)
        ~dur:(float_of_int (now - since))
        (Mode.to_string t.modes.(i))
    end
  end

let flush_residency t =
  Hashtbl.iter (fun i () -> emit_residency t i) t.switched

let idx t c =
  try Chip.index_of_coord t.chip c
  with Chip.Invalid_config m -> fault "machine: %s" m

(* every fault path names the array, its current mode and what was
   attempted — a degraded run must be diagnosable from the message alone *)
let check_alive t c i ~attempted =
  match t.faults with
  | Some fm when Faultmap.is_dead fm i ->
    fault "array (%d,%d) is dead (currently %s mode): cannot %s" c.Chip.x
      c.Chip.y
      (Mode.to_string t.modes.(i))
      attempted
  | _ -> ()

let mode t c = t.modes.(idx t c)
let content t c = t.contents.(idx t c)

let switch t transition c =
  let i = idx t c in
  let target = Mode.apply transition in
  let attempted =
    Printf.sprintf "switch %s (to %s mode)"
      (Mode.transition_to_string transition)
      (Mode.to_string target)
  in
  check_alive t c i ~attempted;
  (match t.faults with
  | Some fm -> begin
    match Faultmap.fault_at fm i with
    | Some (Faultmap.Stuck_mode m) ->
      fault
        "array (%d,%d) is stuck in %s mode: cannot switch %s to %s mode \
         (currently %s)"
        c.Chip.x c.Chip.y (Mode.to_string m)
        (Mode.transition_to_string transition)
        (Mode.to_string target)
        (Mode.to_string t.modes.(i))
    | _ -> ()
  end
  | None -> ());
  if t.modes.(i) = target then
    fault
      "redundant switch of array (%d,%d): already in %s mode, attempted %s"
      c.Chip.x c.Chip.y (Mode.to_string target)
      (Mode.transition_to_string transition);
  (* a transiently failing switch circuit recovers under bounded retries;
     each failed attempt is counted so the timing simulator can charge it *)
  let p =
    match t.faults with Some fm -> Faultmap.transient_prob fm i | None -> 0.
  in
  if p > 0. then begin
    let attempts = ref 0 in
    let succeeded = ref false in
    while (not !succeeded) && !attempts <= t.max_switch_retries do
      if Rng.float t.rng 1.0 < p then begin
        incr attempts;
        t.retries <- t.retries + 1;
        Cim_obs.Metrics.incr m_retries
      end
      else succeeded := true
    done;
    if not !succeeded then
      fault
        "array (%d,%d): switch %s to %s mode failed %d times (transient \
         failure p=%.2f, currently %s mode)"
        c.Chip.x c.Chip.y
        (Mode.transition_to_string transition)
        (Mode.to_string target) !attempts p
        (Mode.to_string t.modes.(i))
  end;
  tick t;
  emit_residency t i;
  Hashtbl.replace t.switched i ();
  t.mode_since.(i) <- t.step;
  (match transition with
  | Mode.To_compute ->
    t.m2c <- t.m2c + 1;
    Cim_obs.Metrics.incr m_m2c
  | Mode.To_memory ->
    t.c2m <- t.c2m + 1;
    Cim_obs.Metrics.incr m_c2m);
  t.modes.(i) <- target;
  (* mode change loses the scratchpad view of the cells but the physical
     weight charge survives *)
  match t.contents.(i) with
  | Data _ -> t.contents.(i) <- Empty
  | Empty | Weights _ -> ()

let write_weights t c ~node_id ~lo ~hi =
  let i = idx t c in
  tick t;
  check_alive t c i ~attempted:(Printf.sprintf "write node %d weights" node_id);
  if t.modes.(i) <> Mode.Compute then
    fault
      "weight write of node %d to array (%d,%d) while in %s mode (needs \
       compute)"
      node_id c.Chip.x c.Chip.y
      (Mode.to_string t.modes.(i));
  t.contents.(i) <- Weights { node_id; lo; hi }

let stage_data t c name =
  let i = idx t c in
  tick t;
  check_alive t c i ~attempted:(Printf.sprintf "stage tensor %s" name);
  if t.modes.(i) <> Mode.Memory then
    fault
      "data load of %s into array (%d,%d) while in %s mode (needs memory)"
      name c.Chip.x c.Chip.y
      (Mode.to_string t.modes.(i));
  t.contents.(i) <- Data name

let check_compute t c ~node_id =
  let i = idx t c in
  tick t;
  check_alive t c i ~attempted:(Printf.sprintf "compute node %d" node_id);
  if t.modes.(i) <> Mode.Compute then
    fault "compute of node %d on array (%d,%d) in %s mode (needs compute)"
      node_id c.Chip.x c.Chip.y
      (Mode.to_string t.modes.(i));
  match t.contents.(i) with
  | Weights w when w.node_id = node_id -> ()
  | Weights w ->
    fault "array (%d,%d) holds weights of node %d, not %d (in %s mode)"
      c.Chip.x c.Chip.y w.node_id node_id
      (Mode.to_string t.modes.(i))
  | Empty | Data _ ->
    fault "array (%d,%d) computes node %d without programmed weights"
      c.Chip.x c.Chip.y node_id

let check_memory t c =
  let i = idx t c in
  tick t;
  check_alive t c i ~attempted:"memory access";
  if t.modes.(i) <> Mode.Memory then
    fault "memory access to array (%d,%d) in %s mode (needs memory)" c.Chip.x
      c.Chip.y
      (Mode.to_string t.modes.(i))

let switch_counts t = (t.m2c, t.c2m)
let switch_retries t = t.retries
