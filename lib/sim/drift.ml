(* Cost-model drift attribution: the compiler's Eq. 10 schedule promises a
   cycle count per component and per pipelined segment; the timing
   simulator measures what the flow actually costs. This module lines the
   two up — overall, per mode (compute cycles run the arrays in CIM mode;
   switch/rewrite/writeback are memory-system time), and per segment — so
   a drifting cost model is caught with the segment that drifted, not as
   one opaque total. The [prediction] record is deliberately plain data:
   cim_sim cannot see the compiler's [Plan.schedule], so callers (CLI,
   bench) project the schedule down before crossing the library boundary. *)

module Metrics = Cim_obs.Metrics
module Json = Cim_obs.Json

type prediction = {
  source : string;
  seg_intra : float list;
  intra : float;
  switch : float;
  rewrite : float;
  writeback : float;
  total : float;
}

type row = { label : string; mode : string; predicted : float; measured : float }

type seg_row = { segment : int; seg_predicted : float; seg_measured : float }

type t = { source : string; summary : row list; segments : seg_row list }

let drift_pct ~predicted ~measured =
  if predicted > 0. then 100. *. (measured -. predicted) /. predicted
  else if measured = 0. then 0.
  else Float.infinity

let attribute (p : prediction) (m : Timing.result) =
  let summary =
    [ { label = "intra"; mode = "cim"; predicted = p.intra;
        measured = m.Timing.cycles.Timing.compute };
      { label = "switch"; mode = "memory"; predicted = p.switch;
        measured = m.Timing.cycles.Timing.switch };
      { label = "rewrite"; mode = "memory"; predicted = p.rewrite;
        measured = m.Timing.cycles.Timing.rewrite };
      { label = "writeback"; mode = "memory"; predicted = p.writeback;
        measured = m.Timing.cycles.Timing.writeback };
      { label = "memory-total"; mode = "memory";
        predicted = p.switch +. p.rewrite +. p.writeback;
        measured =
          m.Timing.cycles.Timing.switch +. m.Timing.cycles.Timing.rewrite
          +. m.Timing.cycles.Timing.writeback };
      { label = "total"; mode = "all"; predicted = p.total;
        measured = m.Timing.cycles.Timing.total } ]
  in
  (* the schedule and the flow segment the network identically (one
     parallel{} block per seg_plan), but zip defensively: a mismatch
     truncates to the common prefix rather than raising mid-report *)
  let rec zip i acc pred meas =
    match (pred, meas) with
    | ph :: pt, mh :: mt ->
      zip (i + 1)
        ({ segment = i; seg_predicted = ph;
           seg_measured = mh.Timing.compute }
        :: acc)
        pt mt
    | _ -> List.rev acc
  in
  { source = p.source;
    summary;
    segments = zip 0 [] p.seg_intra m.Timing.seg_cycles }

let record_metrics t =
  if Metrics.enabled () then begin
    List.iter
      (fun r ->
        let labels = [ ("component", r.label); ("mode", r.mode) ] in
        Metrics.set_gauge
          (Metrics.gauge ~labels "costmodel.drift.pct")
          (drift_pct ~predicted:r.predicted ~measured:r.measured);
        Metrics.set_gauge
          (Metrics.gauge ~labels "costmodel.drift.predicted_cycles")
          r.predicted;
        Metrics.set_gauge
          (Metrics.gauge ~labels "costmodel.drift.measured_cycles")
          r.measured)
      t.summary;
    let h = Metrics.histogram "costmodel.drift.segment_pct" in
    List.iter
      (fun s ->
        let d =
          drift_pct ~predicted:s.seg_predicted ~measured:s.seg_measured
        in
        if Float.is_finite d then Metrics.observe h (Float.abs d))
      t.segments
  end

let to_json t =
  let summary_row r =
    Json.Obj
      [ ("mode", Json.String (r.mode ^ "/" ^ r.label));
        ("predicted", Json.Float r.predicted);
        ("measured", Json.Float r.measured);
        ("drift_pct",
         Json.Float (drift_pct ~predicted:r.predicted ~measured:r.measured)) ]
  in
  let seg_row s =
    Json.Obj
      [ ("segment", Json.Int s.segment);
        ("mode", Json.String "cim");
        ("predicted", Json.Float s.seg_predicted);
        ("measured", Json.Float s.seg_measured);
        ("drift_pct",
         Json.Float
           (drift_pct ~predicted:s.seg_predicted ~measured:s.seg_measured)) ]
  in
  Json.Obj
    [ ("source", Json.String t.source);
      ("summary", Json.List (List.map summary_row t.summary));
      ("rows", Json.List (List.map seg_row t.segments)) ]

let pp ppf t =
  Format.fprintf ppf "@[<v>cost-model drift (%s):@," t.source;
  List.iter
    (fun r ->
      Format.fprintf ppf "%-14s %-7s predicted %12.0f measured %12.0f  %+.2f%%@,"
        r.label r.mode r.predicted r.measured
        (drift_pct ~predicted:r.predicted ~measured:r.measured))
    t.summary;
  Format.fprintf ppf "@]"
