(** Event-driven multi-chip fleet serving with a runtime failure model.

    {!Serving} replays a trace through one healthy chip; this module grows
    that into a fleet: [chips] identical chips behind a shared router, a
    seeded fault {e schedule} delivered mid-run (arrays die, get stuck in
    one mode, or start failing switches at given cycles), and the runtime
    policies a production deployment needs to survive it —

    - {b recompile-around-faults}: when a fault lands on a chip, its
      in-flight request is aborted and retried (bounded exponential
      backoff) while the chip recompiles against its new fault map and is
      back after [recompile_cycles] of simulated downtime;
    - {b circuit breaker}: a chip that faults [breaker_threshold] times is
      pulled out of rotation for good and its queue re-routed;
    - {b SLO-aware shedding}: under an SLO, a request that can no longer be
      served in full within its latency target is degraded to a cheaper
      {e shed} tier (output truncated to [shed_output] tokens) {e before}
      any request is dropped outright.

    Every offered request reaches exactly one terminal state — completed
    (full service), dropped (rejected at arrival), or shed (truncated
    service, or gave up after exhausting retries: the [starved] subset) —
    so [completed + dropped + shed = offered] always holds.

    Determinism: plans for every fault map a chip can pass through are
    prefetched in parallel and merged in schedule order; the event loop
    itself is a serial discrete-event simulation. With a deterministic
    planner, stats are byte-identical at any [jobs] count for the same
    seed, schedule, and trace. Recompile downtime is charged in simulated
    cycles ([recompile_cycles]), never wall-clock, for the same reason. *)

type fault_event = {
  at : float;           (** cycles since trace start *)
  chip : int;           (** fleet chip id, [0 <= chip < chips] *)
  coord : Cim_arch.Chip.coord;
  state : Cim_arch.Faultmap.fault option;
      (** new state for that array; [None] clears the fault (repair) *)
}

val schedule_to_string : fault_event list -> string
(** One event per line: [at=CYCLES chip=I array=X,Y fault=KIND] with [KIND]
    one of [dead], [stuck-compute], [stuck-memory], [transient:P], [clear]. *)

val schedule_of_string : string -> (fault_event list, string) result
(** Parse the {!schedule_to_string} format; blank lines and [#] comments
    are skipped. Errors name the offending line. *)

val random_schedule :
  Cim_util.Rng.t -> chip:Cim_arch.Chip.t -> chips:int -> n:int ->
  horizon:float -> fault_event list
(** [n] events at uniform times in [0, horizon), uniform over chips and
    arrays, biased towards [Dead] (1/2; stuck 1/4, transient 1/4), sorted
    by time. Deterministic in the RNG state. *)

type plan = {
  level : int;
      (** degradation-ladder level this plan was compiled at (0 = best);
          informational — the simulator only charges [profile] *)
  profile : Serving.cost_profile;
}

type planner = chip:int -> faults:Cim_arch.Faultmap.t -> plan option
(** Compile (or fetch from cache) a serving plan for one chip under one
    fault map; [None] means no plan exists (e.g. no flexible array
    survives) and the chip is out. Called once per (chip, fault-event
    prefix), possibly from pool workers — must be pure and deterministic
    for the fleet determinism contract to hold. *)

type config = {
  chips : int;               (** fleet size, >= 1 *)
  slo : float option;
      (** per-request latency target in cycles; [None] disables both
          admission drops and shedding-by-SLO *)
  shed_output : int;         (** output tokens a shed request still gets *)
  max_retries : int;         (** fault-abort retries before starving *)
  backoff_base : float;      (** first retry delay, cycles *)
  backoff_cap : float;       (** retry delay ceiling, cycles *)
  breaker_threshold : int;   (** fault events before the breaker opens *)
  recompile_cycles : float;  (** simulated downtime per online recompile *)
  jobs : int;                (** plan-prefetch parallelism *)
}

val default_config : config
(** 2 chips, no SLO, 4-token shed tier, 3 retries, backoff 1k..64k cycles,
    breaker at 4 faults, 10k-cycle recompiles, [Pool.default_jobs ()]. *)

type stats = {
  offered : int;
  completed : int;           (** served in full *)
  dropped : int;             (** rejected at arrival (SLO admission, or no
                                 chip left in rotation) *)
  shed : int;                (** served truncated, or starved *)
  starved : int;             (** subset of [shed]: gave up after retries /
                                 eviction with no chip left; zero tokens *)
  retries : int;
  recompiles : int;
  breaker_opens : int;
  chips_out : int;           (** chips out of rotation at end of run *)
  slo_violations : int;      (** served requests that still missed the SLO *)
  makespan : float;
  mean_latency : float;      (** over served (completed + shed) requests *)
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;       (** nearest-rank, like {!Serving.stats} *)
  p999_latency : float;
  mean_ttft : float;
  p50_tpt : float;           (** median time-per-token: nearest-rank over
                                 every decode step of every served request *)
  p95_tpt : float;
  p99_tpt : float;
  tokens : int;
  tokens_per_megacycle : float;
  per_chip_served : int list;  (** requests served, by chip id *)
}

val zero_stats : stats

val run :
  ?config:config -> ?telemetry:Cim_obs.Telemetry.t ->
  ?snapshot_extra:(unit -> (string * float) list) ->
  chip:Cim_arch.Chip.t -> planner -> fault_event list ->
  Serving.request list -> stats
(** Simulate the fleet over the trace and fault schedule. Events sharing a
    timestamp fire faults-before-arrivals, then in insertion order. Also
    emits [serving.*] counters ([offered]/[completed]/[dropped]/[shed]/
    [starved]/[retries]/[recompiles]/[breaker_opens]/[tokens]/
    [slo_violations]), latency histograms, and per-chip labelled
    instruments ([serving.chip.served{chip="i"}], [.out], [.fault_hits])
    when metrics are enabled.

    With [telemetry], the run additionally records into the collector —
    all of it in simulated cycles, none of it read back by the event loop,
    so stats are structurally identical with and without a collector:
    - request-phase spans: [queue] / [retry_backoff] and terminal markers
      ([shed], [starved], [drop]) on the router lane; [prefill] / [decode]
      (partitioning each chip's busy time) and [recompile] on per-chip
      [chipN] lanes; [fault] / [breaker_open] / [offline] marks where they
      land;
    - a fleet-state snapshot into the collector's timeline every
      [snapshot_interval] cycles (throughput, queue depth, in-flight,
      chips out, breaker opens, SLO burn rate, ...), plus whatever
      [snapshot_extra] returns (e.g. the CLI adds plan-cache hit rate),
      with a forced final sample at the last event;
    - the ["slo"] error-budget summary when the collector has a budget.

    When tracing is enabled, the same spans and marks are mirrored onto
    the Chrome trace's {!Cim_obs.Trace.pid_fleet} process (router = tid 0,
    chip [i] = tid [i+1]).

    Raises [Invalid_argument] on an invalid config, a malformed request,
    or a fault event naming a chip outside [0, chips). *)
