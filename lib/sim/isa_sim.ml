module Chip = Cim_arch.Chip
module Flow = Cim_metaop.Flow
module Isa = Cim_metaop.Isa
module Graph = Cim_nnir.Graph
module Exec = Cim_nnir.Exec
module Op = Cim_nnir.Op
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Kernels = Cim_tensor.Kernels
module Pool = Cim_util.Pool

let err fmt = Printf.ksprintf (fun s -> raise (Functional.Error s)) fmt

(* Interval set per node to check the sub-operator slices cover the whole
   output width (same contract as the meta-op simulator). *)
type coverage = { width : int; mutable intervals : (int * int) list }

let covered cov =
  let merged =
    List.sort compare cov.intervals
    |> List.fold_left
         (fun acc (lo, hi) ->
           match acc with
           | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
           | _ -> (lo, hi) :: acc)
         []
  in
  match merged with [ (0, hi) ] -> hi >= cov.width | _ -> false

let run_with_pool pool chip ?faults ?rng ?max_switch_retries (g : Graph.t)
    (img : Isa.image) ~inputs =
  (* structural sanity first: the stream must raise back to a flow the
     static validator accepts (balanced brackets, coords in range, no
     mode conflicts inside a block) before the sequencer starts *)
  (match Isa.to_flow img with
  | p -> (
    match Flow.validate chip p with
    | Ok () -> ()
    | Error m -> err "invalid command stream: %s" m)
  | exception Invalid_argument m -> err "invalid command stream: %s" m);
  let env : (string, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n, t) -> Hashtbl.replace env n t) inputs;
  List.iter
    (fun (i : Graph.initializer_) ->
      match i.Graph.value with
      | Some v -> Hashtbl.replace env i.Graph.init_name v
      | None -> err "initializer %s has no value" i.Graph.init_name)
    g.Graph.initializers;
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some t -> t
    | None -> err "tensor %s used before it is computed" name
  in
  let node_of id =
    try Graph.find_node g id with Graph.Invalid m -> err "%s" m
  in
  let machine = Machine.create chip ?faults ?rng ?max_switch_retries () in
  let node_results : (int, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
  let coverages : (int, coverage) Hashtbl.t = Hashtbl.create 32 in
  let computes = ref 0 and vectors = ref 0 in
  let cmds = img.Isa.cmds in
  let n = Array.length cmds in
  (* Wave pre-evaluation over a bracketed block, mirroring the meta-op
     simulator: one task per distinct pending CIM node whose inputs are
     all available and not written inside the block; inputs snapshotted
     on the submitting domain, results merged in submission order. *)
  let pre_results : (int, (Tensor.t, exn) result) Hashtbl.t = Hashtbl.create 32 in
  let pre_eval_block ~lo ~hi =
    let written = Hashtbl.create 16 in
    for i = lo to hi do
      match cmds.(i) with
      | Isa.Vec { output; _ } | Isa.Compute { output; _ } ->
        Hashtbl.replace written output ()
      | _ -> ()
    done;
    let seen = Hashtbl.create 16 in
    let pending = ref [] in
    for i = lo to hi do
      match cmds.(i) with
      | Isa.Compute { node_id; _ }
        when (not (Hashtbl.mem node_results node_id))
             && (not (Hashtbl.mem pre_results node_id))
             && not (Hashtbl.mem seen node_id) -> begin
        Hashtbl.replace seen node_id ();
        match Graph.find_node g node_id with
        | exception Graph.Invalid _ -> ()
        | nd ->
          if
            List.for_all
              (fun nm -> Hashtbl.mem env nm && not (Hashtbl.mem written nm))
              nd.Graph.inputs
          then pending := (node_id, nd) :: !pending
      end
      | _ -> ()
    done;
    let tasks =
      List.rev_map
        (fun (node_id, (nd : Graph.node)) ->
          let ins = List.map (Hashtbl.find env) nd.Graph.inputs in
          (node_id, Pool.submit pool (fun () -> Functional.quant_eval nd ins)))
        !pending
    in
    List.iter
      (fun (node_id, fut) ->
        let r = match Pool.await fut with t -> Ok t | exception e -> Error e in
        Hashtbl.replace pre_results node_id r)
      tasks
  in
  let exec_cmd = function
    | Isa.Par_begin _ | Isa.Par_end ->
      err "sequencer: bracket marker reached the execution unit"
    | Isa.Switch { target; arrays } ->
      List.iter (Machine.switch machine target) arrays
    | Isa.Write_weights { node_id; arrays; slice; _ } ->
      List.iter
        (fun c ->
          Machine.write_weights machine c ~node_id ~lo:slice.Flow.lo
            ~hi:slice.Flow.hi)
        arrays
    | Isa.Dma_load { tensor; dst; _ } -> begin
      ignore (lookup tensor);
      match dst with
      | Flow.Mem_arrays cs ->
        List.iter (fun c -> Machine.stage_data machine c tensor) cs
      | Flow.Main_memory | Flow.Buffer -> ()
    end
    | Isa.Dma_store { src; _ } -> begin
      match src with
      | Flow.Mem_arrays cs -> List.iter (Machine.check_memory machine) cs
      | Flow.Main_memory | Flow.Buffer -> ()
    end
    | Isa.Vec { node_id; inputs; output; _ } ->
      incr vectors;
      let nd = node_of node_id in
      let ins = List.map lookup inputs in
      Hashtbl.replace env output (Exec.eval_node nd ins)
    | Isa.Compute { node_id; arrays; mem_arrays; output; slice; _ } ->
      incr computes;
      List.iter (fun c -> Machine.check_compute machine c ~node_id) arrays;
      List.iter (Machine.check_memory machine) mem_arrays;
      let nd = node_of node_id in
      (* full-node int8 result, computed once and shared by sub-operators *)
      let result =
        match Hashtbl.find_opt node_results node_id with
        | Some r -> r
        | None ->
          let r =
            match Hashtbl.find_opt pre_results node_id with
            | Some (Ok r) -> r
            | Some (Error e) -> raise e
            | None ->
              let ins = List.map lookup nd.Graph.inputs in
              Functional.quant_eval nd ins
          in
          Hashtbl.replace node_results node_id r;
          r
      in
      (* a Conv sub-operator slices output channels (axis 1 of NCHW);
         matmul/gemm sub-operators slice the last (feature) axis *)
      let shape = Tensor.shape result in
      let axis =
        match nd.Graph.op with Op.Conv -> 1 | _ -> Shape.rank shape - 1
      in
      let width = Shape.dim shape axis in
      let cov =
        match Hashtbl.find_opt coverages node_id with
        | Some c -> c
        | None ->
          let c = { width; intervals = [] } in
          Hashtbl.replace coverages node_id c;
          c
      in
      cov.intervals <- (slice.Flow.lo, min width slice.Flow.hi) :: cov.intervals;
      (* publish the slice into the (possibly partial) output tensor *)
      let out =
        match Hashtbl.find_opt env output with
        | Some t when Shape.equal (Tensor.shape t) shape -> t
        | Some _ | None ->
          let t = Tensor.zeros shape in
          Hashtbl.replace env output t;
          t
      in
      let dims = Array.of_list shape in
      let inner = ref 1 in
      for a = axis + 1 to Array.length dims - 1 do
        inner := !inner * dims.(a)
      done;
      let outer = Tensor.numel result / (width * !inner) in
      let rd = Tensor.data result and od = Tensor.data out in
      let lo = slice.Flow.lo and hi = min width slice.Flow.hi in
      for o = 0 to outer - 1 do
        let base = o * width * !inner in
        Array.blit rd
          (base + (lo * !inner))
          od
          (base + (lo * !inner))
          ((hi - lo) * !inner)
      done
  in
  (* the sequencer: a program counter over the FIFO; PAR_BEGIN drains its
     block (pre-evaluated as a wave, then issued in order) and jumps past
     the PAR_END *)
  let pc = ref 0 in
  while !pc < n do
    (match cmds.(!pc) with
    | Isa.Par_end -> err "sequencer: PAR_END without PAR_BEGIN at %d" !pc
    | Isa.Par_begin count ->
      let lo = !pc + 1 in
      let hi = lo + count - 1 in
      if hi + 1 >= n || cmds.(hi + 1) <> Isa.Par_end then
        err "sequencer: PAR_BEGIN at %d lacks its PAR_END" !pc;
      pre_eval_block ~lo ~hi;
      for i = lo to hi do
        exec_cmd cmds.(i)
      done;
      pc := hi + 1 (* lands on PAR_END; bumped past it below *)
    | c -> exec_cmd c);
    incr pc
  done;
  Machine.flush_residency machine;
  (* every partitioned operator must have covered its full output width *)
  Hashtbl.iter
    (fun node_id cov ->
      if not (covered cov) then
        err "node %d: sub-operator slices do not cover its output" node_id)
    coverages;
  let outputs =
    List.map
      (fun o ->
        match Hashtbl.find_opt env o with
        | Some t -> (o, t)
        | None -> err "graph output %s was never produced" o)
      g.Graph.graph_outputs
  in
  let reference = Exec.run_outputs g inputs in
  let max_abs = ref 0. and max_rel = ref 0. in
  List.iter2
    (fun (_, sim) (_, ref_) ->
      let d = Tensor.max_abs_diff sim ref_ in
      let scale = Tensor.fold (fun acc x -> Float.max acc (Float.abs x)) 0. ref_ in
      max_abs := Float.max !max_abs d;
      if scale > 0. then max_rel := Float.max !max_rel (d /. scale))
    outputs reference;
  {
    Functional.outputs;
    reference;
    max_abs_err = !max_abs;
    max_rel_err = !max_rel;
    compute_instrs = !computes;
    vector_instrs = !vectors;
    switches = Machine.switch_counts machine;
    switch_retries = Machine.switch_retries machine;
  }

let run chip ?faults ?rng ?max_switch_retries ?jobs ?backend (g : Graph.t)
    (img : Isa.image) ~inputs =
  (* from inside a pool worker degrade to serial instead of multiplying
     domains (same rule as Functional.run) *)
  let jobs =
    if Pool.current_worker () <> None then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let backend = match backend with Some b -> b | None -> Kernels.backend () in
  Pool.with_pool ~name:"isasim" ~jobs (fun pool ->
      Kernels.with_pool (Some pool) (fun () ->
          Kernels.with_backend backend (fun () ->
              run_with_pool pool chip ?faults ?rng ?max_switch_retries g img
                ~inputs)))
