module Chip = Cim_arch.Chip
module Cost = Cim_arch.Cost
module Faultmap = Cim_arch.Faultmap
module Flow = Cim_metaop.Flow
module Rng = Cim_util.Rng
module Mode = Cim_arch.Mode
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics

type breakdown = {
  compute : float;
  switch : float;
  rewrite : float;
  writeback : float;
  total : float;
}

type result = {
  cycles : breakdown;
  microseconds : float;
  segments : int;
  seg_cycles : breakdown list;
  switch_count : int * int;
  switch_retries : int;
  dma_bytes : int;
  switch_share : float;
}

(* Dirty tensors living only in memory-mode arrays: name -> (arrays,
   bytes). Data *loaded* into memory arrays is a clean copy (main memory
   still has it), so displacing it is free; data *stored* into memory
   arrays exists nowhere else and must be flushed to main memory when a
   switch or a new resident reclaims those arrays. *)
type residency = {
  mutable staged : (string * (Flow.coord list * int)) list;
}

let coords_overlap a b = List.exists (fun c -> List.mem c b) a

let run chip ?faults ?rng ?(max_switch_retries = 3) (p : Flow.program) =
  let rng = match rng with Some r -> r | None -> Rng.create 0x5117c4 in
  let compute = ref 0. and switch = ref 0. and rewrite = ref 0. in
  let writeback = ref 0. in
  let m2c = ref 0 and c2m = ref 0 in
  let dma = ref 0 in
  let retries = ref 0 in
  let segments = ref 0 in
  let seg_cycles = ref [] in
  let res = { staged = [] } in
  (* each failed transient switch attempt burns one single-array switch
     latency before the retry; draws mirror Machine.switch so a timing run
     with the same rng prices exactly the retries the machine performs *)
  let charge_retries target arrays =
    match faults with
    | None -> ()
    | Some fm ->
      let attempts =
        List.fold_left
          (fun acc (c : Flow.coord) ->
            match Chip.index_of_coord chip c with
            | exception Chip.Invalid_config _ -> acc
            | i ->
              let p = Faultmap.transient_prob fm i in
              if p <= 0. then acc
              else begin
                let a = ref 0 and ok = ref false in
                while (not !ok) && !a <= max_switch_retries do
                  if Rng.float rng 1.0 < p then incr a else ok := true
                done;
                acc + !a
              end)
          0 arrays
      in
      if attempts > 0 then begin
        retries := !retries + attempts;
        let per_attempt =
          match target with
          | Cim_arch.Mode.To_compute -> Cost.switch_latency chip ~m2c:1 ~c2m:0
          | Cim_arch.Mode.To_memory -> Cost.switch_latency chip ~m2c:0 ~c2m:1
        in
        switch := !switch +. (float_of_int attempts *. per_attempt)
      end
  in
  let flush_overlapping coords =
    (* displaced scratchpad contents go back to main memory *)
    let displaced, kept =
      List.partition (fun (_, (cs, _)) -> coords_overlap cs coords) res.staged
    in
    List.iter
      (fun (_, (_, bytes)) ->
        writeback := !writeback +. Cost.writeback_latency chip ~bytes)
      displaced;
    res.staged <- kept
  in
  (* the running component sums double as the simulator's cycle clock; each
     switched array gets its own trace track showing which mode it sat in
     between switches (arrays reset as plain memory, so Memory at cycle 0) *)
  let clock () = !compute +. !switch +. !rewrite +. !writeback in
  let residency : (int, Mode.t * float) Hashtbl.t = Hashtbl.create 32 in
  let emit_residency i mode ~since ~upto =
    if upto > since then begin
      let c = Chip.coord_of_index chip i in
      Trace.name_process ~pid:Trace.pid_simulator "timing simulator (cycles)";
      Trace.name_thread ~pid:Trace.pid_simulator ~tid:(i + 1)
        (Printf.sprintf "array (%d,%d)" c.Chip.x c.Chip.y);
      Trace.complete ~cat:"residency" ~pid:Trace.pid_simulator ~tid:(i + 1)
        ~ts:since ~dur:(upto -. since) (Mode.to_string mode)
    end
  in
  let do_switch target arrays =
    flush_overlapping arrays;
    charge_retries target arrays;
    let t_before = clock () in
    let n = List.length arrays in
    (match target with
    | Mode.To_compute ->
      m2c := !m2c + n;
      switch := !switch +. Cost.switch_latency chip ~m2c:n ~c2m:0
    | Mode.To_memory ->
      c2m := !c2m + n;
      switch := !switch +. Cost.switch_latency chip ~m2c:0 ~c2m:n);
    if Trace.enabled () then begin
      let t_after = clock () in
      List.iter
        (fun (c : Flow.coord) ->
          match Chip.index_of_coord chip c with
          | exception Chip.Invalid_config _ -> ()
          | i ->
            let prev, since =
              Option.value (Hashtbl.find_opt residency i)
                ~default:(Mode.Memory, 0.)
            in
            emit_residency i prev ~since ~upto:t_before;
            Trace.complete ~cat:"switch" ~pid:Trace.pid_simulator ~tid:(i + 1)
              ~ts:t_before ~dur:(t_after -. t_before)
              (Printf.sprintf "switch %s" (Mode.transition_to_string target));
            Hashtbl.replace residency i (Mode.apply target, t_after))
        arrays
    end
  in
  let exec_top (i : Flow.instr) =
    match i with
    | Flow.Switch { target; arrays } -> do_switch target arrays
    | Flow.Load { bytes; dst; _ } ->
      dma := !dma + bytes;
      (match dst with
      | Flow.Mem_arrays cs -> flush_overlapping cs
      | Flow.Main_memory | Flow.Buffer -> ())
    | Flow.Store { bytes; tensor; dst; _ } ->
      dma := !dma + bytes;
      (match dst with
      | Flow.Mem_arrays cs ->
        flush_overlapping cs;
        res.staged <- (tensor, (cs, bytes)) :: res.staged
      | Flow.Main_memory | Flow.Buffer ->
        (* written back: the on-chip copy is clean now *)
        res.staged <- List.filter (fun (n, _) -> n <> tensor) res.staged)
    | Flow.Write_weights { arrays; in_place; _ } ->
      (* an in-place relabel (§5.3) streams nothing: free *)
      if not in_place then
        rewrite :=
          !rewrite +. Cost.weight_rewrite_latency chip ~max_com:(List.length arrays)
    | Flow.Compute { macs; ai; arrays; mem_arrays; _ } ->
      compute :=
        !compute
        +. Cost.op_latency chip ~ops:macs ~ai ~com:(List.length arrays)
             ~mem:(List.length mem_arrays)
    | Flow.Vector_op _ -> ()
    | Flow.Parallel body ->
      incr segments;
      (* component snapshots bracket the segment so its measured cycle
         breakdown can be attributed back to the schedule's per-segment
         Eq. 10 prediction (see Drift) *)
      let c0 = !compute and s0 = !switch in
      let r0 = !rewrite and w0 = !writeback in
      (* pipelined segment: per-operator chains run concurrently; the
         segment costs its slowest chain. Weight programming of distinct
         operators also proceeds in parallel, so Eq. 2's max applies. *)
      (* chains are keyed by sub-operator label: sub-operators of one node
         run in parallel on disjoint arrays, so they are separate chains *)
      let chain : (string, float * float) Hashtbl.t = Hashtbl.create 8 in
      let bump label ~rw ~cp =
        let r, c = Option.value (Hashtbl.find_opt chain label) ~default:(0., 0.) in
        Hashtbl.replace chain label (r +. rw, c +. cp)
      in
      List.iter
        (fun (instr : Flow.instr) ->
          match instr with
          | Flow.Write_weights { label; arrays; in_place; _ } ->
            if not in_place then
              bump label
                ~rw:(Cost.weight_rewrite_latency chip ~max_com:(List.length arrays))
                ~cp:0.
          | Flow.Compute { label; macs; ai; arrays; mem_arrays; _ } ->
            bump label ~rw:0.
              ~cp:
                (Cost.op_latency chip ~ops:macs ~ai ~com:(List.length arrays)
                   ~mem:(List.length mem_arrays))
          | Flow.Load { bytes; dst; _ } -> begin
            dma := !dma + bytes;
            match dst with
            | Flow.Mem_arrays cs -> flush_overlapping cs
            | Flow.Main_memory | Flow.Buffer -> ()
          end
          | Flow.Store { bytes; tensor; dst; _ } -> begin
            dma := !dma + bytes;
            match dst with
            | Flow.Main_memory | Flow.Buffer ->
              res.staged <- List.filter (fun (n, _) -> n <> tensor) res.staged
            | Flow.Mem_arrays cs ->
              flush_overlapping cs;
              res.staged <- (tensor, (cs, bytes)) :: res.staged
          end
          | Flow.Switch { target; arrays } -> do_switch target arrays
          | Flow.Vector_op _ | Flow.Parallel _ -> ())
        body;
      let seg_rw = Hashtbl.fold (fun _ (r, _) acc -> Float.max acc r) chain 0. in
      let seg_cp = Hashtbl.fold (fun _ (_, c) acc -> Float.max acc c) chain 0. in
      rewrite := !rewrite +. seg_rw;
      compute := !compute +. seg_cp;
      let seg_total =
        !compute -. c0 +. (!switch -. s0) +. (!rewrite -. r0)
        +. (!writeback -. w0)
      in
      seg_cycles :=
        { compute = !compute -. c0; switch = !switch -. s0;
          rewrite = !rewrite -. r0; writeback = !writeback -. w0;
          total = seg_total }
        :: !seg_cycles
  in
  let exec_top (i : Flow.instr) =
    match i with
    | Flow.Parallel _ when Trace.enabled () ->
      (* one span per pipelined segment on the simulator's segment track *)
      let t0 = clock () in
      let n = !segments in
      exec_top i;
      Trace.name_thread ~pid:Trace.pid_simulator ~tid:0 "segments";
      Trace.complete ~cat:"segment" ~pid:Trace.pid_simulator ~tid:0 ~ts:t0
        ~dur:(clock () -. t0)
        (Printf.sprintf "segment %d" n)
    | i -> exec_top i
  in
  List.iter exec_top p.Flow.instrs;
  if Trace.enabled () then
    Hashtbl.iter
      (fun i (mode, since) -> emit_residency i mode ~since ~upto:(clock ()))
      residency;
  let total = !compute +. !switch +. !rewrite +. !writeback in
  (* cycles-by-mode: compute cycles run in compute mode, everything else
     (switch, rewrite, writeback) is memory-system time *)
  Metrics.incr ~by:!compute (Metrics.counter "sim.cycles.compute");
  Metrics.incr ~by:!switch (Metrics.counter "sim.cycles.switch");
  Metrics.incr ~by:!rewrite (Metrics.counter "sim.cycles.rewrite");
  Metrics.incr ~by:!writeback (Metrics.counter "sim.cycles.writeback");
  Metrics.incr ~by:total (Metrics.counter "sim.cycles.total");
  Metrics.incr ~by:(float_of_int !m2c) (Metrics.counter "sim.switches.m2c");
  Metrics.incr ~by:(float_of_int !c2m) (Metrics.counter "sim.switches.c2m");
  Metrics.incr ~by:(float_of_int !retries) (Metrics.counter "sim.switch.retries");
  Metrics.incr ~by:(float_of_int !dma) (Metrics.counter "sim.dma.bytes");
  {
    cycles =
      { compute = !compute; switch = !switch; rewrite = !rewrite;
        writeback = !writeback; total };
    microseconds = Chip.cycles_to_us chip total;
    segments = !segments;
    seg_cycles = List.rev !seg_cycles;
    switch_count = (!m2c, !c2m);
    switch_retries = !retries;
    dma_bytes = !dma;
    switch_share = (if total > 0. then (!switch +. !writeback) /. total else 0.);
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>timing: %.0f cycles (%.2f us), %d segments@,\
     compute %.0f | switch %.0f | rewrite %.0f | writeback %.0f@,\
     switches m->c %d, c->m %d (+%d retried); DMA %s; switch share %.1f%%@]"
    r.cycles.total r.microseconds r.segments r.cycles.compute r.cycles.switch
    r.cycles.rewrite r.cycles.writeback (fst r.switch_count)
    (snd r.switch_count) r.switch_retries
    (Cim_util.Bytesize.to_string r.dma_bytes)
    (100. *. r.switch_share)
