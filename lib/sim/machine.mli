(** Per-array state machine for the dual-mode chip: every array's current
    mode and contents. The functional simulator uses it to reject programs
    that compute on arrays in the wrong mode or with stale weights, and the
    timing simulator to count realised switches. *)

type content =
  | Empty
  | Weights of { node_id : int; lo : int; hi : int }
  | Data of string  (** tensor name staged in a memory-mode array *)

type t

val create :
  Cim_arch.Chip.t -> ?initial_mode:Cim_arch.Mode.t ->
  ?faults:Cim_arch.Faultmap.t -> ?rng:Cim_util.Rng.t ->
  ?max_switch_retries:int -> unit -> t
(** With [faults], stuck arrays start in (and can never leave) their stuck
    mode, dead arrays fault on any use, and transiently failing switch
    circuits are retried up to [max_switch_retries] times (default 3; the
    retry draw comes from [rng], default a fixed seed) before faulting.
    Raises [Invalid_argument] on a negative retry budget. *)

val mode : t -> Cim_arch.Chip.coord -> Cim_arch.Mode.t
val content : t -> Cim_arch.Chip.coord -> content

exception Fault of string
(** Raised on illegal transitions/uses; the message always names the array
    coordinate, its current mode and the attempted operation/transition. *)

val switch : t -> Cim_arch.Mode.transition -> Cim_arch.Chip.coord -> unit
(** Faults if the array is already in the target mode (a redundant switch is
    a compiler bug: it wastes cycles), is dead or stuck, or keeps failing
    transiently past the retry budget. Switching clears [Data] contents —
    the scratchpad view is lost — but keeps [Weights] (the DynaPlasia cells
    physically retain their charge across mode changes). *)

val write_weights :
  t -> Cim_arch.Chip.coord -> node_id:int -> lo:int -> hi:int -> unit
(** Faults unless the array is in compute mode. *)

val stage_data : t -> Cim_arch.Chip.coord -> string -> unit
(** Faults unless the array is in memory mode. *)

val check_compute : t -> Cim_arch.Chip.coord -> node_id:int -> unit
(** Faults unless the array is in compute mode holding that node's
    weights. *)

val check_memory : t -> Cim_arch.Chip.coord -> unit
(** Faults unless the array is in memory mode. *)

val switch_counts : t -> int * int
(** (memory->compute, compute->memory) switches performed so far. *)

val switch_retries : t -> int
(** Total failed switch attempts recovered by retrying — each one costs a
    full switch latency, which the timing simulator charges. *)

val flush_residency : t -> unit
(** Emit the still-open mode-residency interval of every array that ever
    switched as trace events (no-op when {!Cim_obs.Trace} is disabled).

    The machine keeps a step clock — one tick per executed meta-operator
    effect — and, while tracing is enabled, records one complete event per
    (array, mode) interval on the machine process's per-array tracks, so
    [CM.switch] instructions render as mode-colored slabs in Perfetto. Call
    this after the last instruction to close the final intervals; the
    functional simulator does so automatically. *)
