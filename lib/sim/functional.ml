module Chip = Cim_arch.Chip
module Flow = Cim_metaop.Flow
module Graph = Cim_nnir.Graph
module Exec = Cim_nnir.Exec
module Attr = Cim_nnir.Attr
module Op = Cim_nnir.Op
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Ops = Cim_tensor.Ops
module Quant = Cim_tensor.Quant
module Kernels = Cim_tensor.Kernels
module Pool = Cim_util.Pool

type report = {
  outputs : (string * Tensor.t) list;
  reference : (string * Tensor.t) list;
  max_abs_err : float;
  max_rel_err : float;
  compute_instrs : int;
  vector_instrs : int;
  switches : int * int;
  switch_retries : int;
}

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

(* int8 matrix multiply as the compute array performs it, lifted back to
   float tensors; handles the batched layouts of Ops.matmul. *)
let qmatmul a b =
  let mm2 x y = Quant.dequantize (Quant.matmul (Quant.quantize x) (Quant.quantize y)) in
  match (Tensor.shape a, Tensor.shape b) with
  | [ _; _ ], [ _; _ ] -> mm2 a b
  | [ bd; m; k ], [ k'; n ] when k = k' ->
    let out = Tensor.zeros (Shape.of_list [ bd; m; n ]) in
    for bi = 0 to bd - 1 do
      let sub =
        Tensor.create (Shape.of_list [ m; k ]) (Array.sub (Tensor.data a) (bi * m * k) (m * k))
      in
      Array.blit (Tensor.data (mm2 sub b)) 0 (Tensor.data out) (bi * m * n) (m * n)
    done;
    out
  | [ bd; m; k ], [ bd'; k'; n ] when k = k' && bd = bd' ->
    let out = Tensor.zeros (Shape.of_list [ bd; m; n ]) in
    for bi = 0 to bd - 1 do
      let suba =
        Tensor.create (Shape.of_list [ m; k ]) (Array.sub (Tensor.data a) (bi * m * k) (m * k))
      in
      let subb =
        Tensor.create (Shape.of_list [ k; n ]) (Array.sub (Tensor.data b) (bi * k * n) (k * n))
      in
      Array.blit (Tensor.data (mm2 suba subb)) 0 (Tensor.data out) (bi * m * n) (m * n)
    done;
    out
  | sa, sb ->
    err "qmatmul: incompatible shapes %s x %s" (Shape.to_string sa) (Shape.to_string sb)

(* Evaluate a CIM node with int8 array arithmetic. *)
let quant_eval (nd : Graph.node) ins =
  match (nd.Graph.op, ins) with
  | Op.Mat_mul, [ a; b ] | Op.Gemm, [ a; b ] -> qmatmul a b
  | Op.Gemm, [ a; b; bias ] -> Ops.add (qmatmul a b) bias
  | Op.Conv, ([ x; w ] | [ x; w; _ ]) ->
    let stride = Attr.get_int_d nd.attrs "stride" 1 in
    let pad = Attr.get_int_d nd.attrs "pad" 0 in
    let groups = Attr.get_int_d nd.attrs "groups" 1 in
    let bias = match ins with [ _; _; b ] -> Some b | _ -> None in
    Ops.conv2d_with ~matmul:qmatmul x ~weight:w ?bias ~stride ~pad ~groups ()
  | op, _ -> err "quant_eval: %s is not a CIM operator" (Op.to_string op)

(* Interval set per node to check the sub-operator slices cover the whole
   output width. *)
type coverage = { width : int; mutable intervals : (int * int) list }

let covered cov =
  let merged =
    List.sort compare cov.intervals
    |> List.fold_left
         (fun acc (lo, hi) ->
           match acc with
           | (plo, phi) :: rest when lo <= phi -> (plo, max phi hi) :: rest
           | _ -> (lo, hi) :: acc)
         []
  in
  match merged with [ (0, hi) ] -> hi >= cov.width | _ -> false

let run_with_pool pool chip ?faults ?rng ?max_switch_retries (g : Graph.t)
    (p : Flow.program) ~inputs =
  (match Flow.validate chip p with
  | Ok () -> ()
  | Error m -> err "invalid program: %s" m);
  let env : (string, Tensor.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (n, t) -> Hashtbl.replace env n t) inputs;
  List.iter
    (fun (i : Graph.initializer_) ->
      match i.Graph.value with
      | Some v -> Hashtbl.replace env i.Graph.init_name v
      | None -> err "initializer %s has no value" i.Graph.init_name)
    g.Graph.initializers;
  let lookup name =
    match Hashtbl.find_opt env name with
    | Some t -> t
    | None -> err "tensor %s used before it is computed" name
  in
  let node_of id =
    try Graph.find_node g id with Graph.Invalid m -> err "%s" m
  in
  let machine = Machine.create chip ?faults ?rng ?max_switch_retries () in
  let node_results : (int, Tensor.t) Hashtbl.t = Hashtbl.create 32 in
  let coverages : (int, coverage) Hashtbl.t = Hashtbl.create 32 in
  let computes = ref 0 and vectors = ref 0 in
  (* Wave pre-evaluation: before executing a [Parallel] block serially,
     evaluate its pending CIM nodes concurrently — one task per distinct
     node whose inputs are all available in [env] and not written by any
     instruction of this block (an op chained on a vector output inside
     the block must wait for the serial walk). Inputs are snapshotted on
     the submitting domain before any task runs, tasks never touch [env]
     or the machine, and results (or exceptions) merge in submission
     order, so outputs, stats and error points are byte-identical to the
     serial walk at any job count. *)
  let pre_results : (int, (Tensor.t, exn) result) Hashtbl.t = Hashtbl.create 32 in
  let pre_eval_block is =
    let written = Hashtbl.create 16 in
    List.iter
      (fun (i : Flow.instr) ->
        match i with
        | Flow.Vector_op { output; _ } | Flow.Compute { output; _ } ->
          Hashtbl.replace written output ()
        | _ -> ())
      is;
    let seen = Hashtbl.create 16 in
    let pending =
      List.filter_map
        (fun (i : Flow.instr) ->
          match i with
          | Flow.Compute { node_id; _ }
            when (not (Hashtbl.mem node_results node_id))
                 && (not (Hashtbl.mem pre_results node_id))
                 && not (Hashtbl.mem seen node_id) -> begin
            Hashtbl.replace seen node_id ();
            match Graph.find_node g node_id with
            | exception Graph.Invalid _ -> None
            | nd ->
              if
                List.for_all
                  (fun nm -> Hashtbl.mem env nm && not (Hashtbl.mem written nm))
                  nd.Graph.inputs
              then Some (node_id, nd)
              else None
          end
          | _ -> None)
        is
    in
    let tasks =
      List.map
        (fun (node_id, (nd : Graph.node)) ->
          let ins = List.map (Hashtbl.find env) nd.Graph.inputs in
          (node_id, Pool.submit pool (fun () -> quant_eval nd ins)))
        pending
    in
    List.iter
      (fun (node_id, fut) ->
        let r = match Pool.await fut with t -> Ok t | exception e -> Error e in
        Hashtbl.replace pre_results node_id r)
      tasks
  in
  let rec exec (i : Flow.instr) =
    match i with
    | Flow.Parallel is ->
      pre_eval_block is;
      List.iter exec is
    | Flow.Switch { target; arrays } ->
      List.iter (Machine.switch machine target) arrays
    | Flow.Write_weights { node_id; arrays; slice; _ } ->
      List.iter
        (fun c ->
          Machine.write_weights machine c ~node_id ~lo:slice.Flow.lo ~hi:slice.Flow.hi)
        arrays
    | Flow.Load { tensor; dst; _ } -> begin
      ignore (lookup tensor);
      match dst with
      | Flow.Mem_arrays cs ->
        List.iter (fun c -> Machine.stage_data machine c tensor) cs
      | Flow.Main_memory | Flow.Buffer -> ()
    end
    | Flow.Store { src; _ } -> begin
      match src with
      | Flow.Mem_arrays cs -> List.iter (Machine.check_memory machine) cs
      | Flow.Main_memory | Flow.Buffer -> ()
    end
    | Flow.Vector_op { node_id; inputs; output; _ } ->
      incr vectors;
      let nd = node_of node_id in
      let ins = List.map lookup inputs in
      Hashtbl.replace env output (Exec.eval_node nd ins)
    | Flow.Compute { node_id; arrays; mem_arrays; output; slice; _ } ->
      incr computes;
      List.iter (fun c -> Machine.check_compute machine c ~node_id) arrays;
      List.iter (Machine.check_memory machine) mem_arrays;
      let nd = node_of node_id in
      (* full-node int8 result, computed once and shared by sub-operators *)
      let result =
        match Hashtbl.find_opt node_results node_id with
        | Some r -> r
        | None ->
          let r =
            match Hashtbl.find_opt pre_results node_id with
            | Some (Ok r) -> r
            | Some (Error e) -> raise e
            | None ->
              let ins = List.map lookup nd.Graph.inputs in
              quant_eval nd ins
          in
          Hashtbl.replace node_results node_id r;
          r
      in
      (* a Conv sub-operator slices output channels (axis 1 of NCHW);
         matmul/gemm sub-operators slice the last (feature) axis *)
      let shape = Tensor.shape result in
      let axis = match nd.Graph.op with Op.Conv -> 1 | _ -> Shape.rank shape - 1 in
      let width = Shape.dim shape axis in
      let cov =
        match Hashtbl.find_opt coverages node_id with
        | Some c -> c
        | None ->
          let c = { width; intervals = [] } in
          Hashtbl.replace coverages node_id c;
          c
      in
      cov.intervals <- (slice.Flow.lo, min width slice.Flow.hi) :: cov.intervals;
      (* publish the slice into the (possibly partial) output tensor *)
      let out =
        match Hashtbl.find_opt env output with
        | Some t when Shape.equal (Tensor.shape t) shape -> t
        | Some _ | None ->
          let t = Tensor.zeros shape in
          Hashtbl.replace env output t;
          t
      in
      let dims = Array.of_list shape in
      let inner = ref 1 in
      for a = axis + 1 to Array.length dims - 1 do
        inner := !inner * dims.(a)
      done;
      let outer = Tensor.numel result / (width * !inner) in
      let rd = Tensor.data result and od = Tensor.data out in
      let lo = slice.Flow.lo and hi = min width slice.Flow.hi in
      for o = 0 to outer - 1 do
        let base = o * width * !inner in
        Array.blit rd (base + (lo * !inner)) od (base + (lo * !inner)) ((hi - lo) * !inner)
      done
  in
  List.iter exec p.Flow.instrs;
  Machine.flush_residency machine;
  (* every partitioned operator must have covered its full output width *)
  Hashtbl.iter
    (fun node_id cov ->
      if not (covered cov) then
        err "node %d: sub-operator slices do not cover its output" node_id)
    coverages;
  let outputs =
    List.map
      (fun o ->
        match Hashtbl.find_opt env o with
        | Some t -> (o, t)
        | None -> err "graph output %s was never produced" o)
      g.Graph.graph_outputs
  in
  let reference = Exec.run_outputs g inputs in
  let max_abs = ref 0. and max_rel = ref 0. in
  List.iter2
    (fun (_, sim) (_, ref_) ->
      let d = Tensor.max_abs_diff sim ref_ in
      let scale = Tensor.fold (fun acc x -> Float.max acc (Float.abs x)) 0. ref_ in
      max_abs := Float.max !max_abs d;
      if scale > 0. then max_rel := Float.max !max_rel (d /. scale))
    outputs reference;
  {
    outputs;
    reference;
    max_abs_err = !max_abs;
    max_rel_err = !max_rel;
    compute_instrs = !computes;
    vector_instrs = !vectors;
    switches = Machine.switch_counts machine;
    switch_retries = Machine.switch_retries machine;
  }

let run chip ?faults ?rng ?max_switch_retries ?jobs ?backend (g : Graph.t)
    (p : Flow.program) ~inputs =
  (* from inside a pool worker (e.g. a fleet prefetch task) degrade to
     serial instead of multiplying domains *)
  let jobs =
    if Pool.current_worker () <> None then 1
    else match jobs with Some j -> j | None -> Pool.default_jobs ()
  in
  let backend = match backend with Some b -> b | None -> Kernels.backend () in
  Pool.with_pool ~name:"funcsim" ~jobs (fun pool ->
      Kernels.with_pool (Some pool) (fun () ->
          Kernels.with_backend backend (fun () ->
              run_with_pool pool chip ?faults ?rng ?max_switch_retries g p
                ~inputs)))

let digest r =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (name, t) ->
      Buffer.add_string buf name;
      Buffer.add_char buf '\000';
      Array.iter
        (fun x -> Buffer.add_int64_le buf (Int64.bits_of_float x))
        (Tensor.data t);
      Buffer.add_char buf '\n')
    r.outputs;
  let mc, cm = r.switches in
  Buffer.add_string buf
    (Printf.sprintf "stats:%d,%d,%d,%d,%d" r.compute_instrs r.vector_instrs mc
       cm r.switch_retries);
  Digest.to_hex (Digest.string (Buffer.contents buf))
