module Metrics = Cim_obs.Metrics

type request = { arrival : float; prompt : int; output : int }

type cost_profile = {
  prefill_cycles : int -> float;
  decode_cycles : int -> float;
}

type stats = {
  completed : int;
  dropped : int;
  makespan : float;
  mean_latency : float;
  p95_latency : float;
  p99_latency : float;
  mean_ttft : float;
  p50_tpt : float;
  p95_tpt : float;
  p99_tpt : float;
  tokens : int;
  tokens_per_megacycle : float;
}

let zero_stats =
  {
    completed = 0;
    dropped = 0;
    makespan = 0.;
    mean_latency = 0.;
    p95_latency = 0.;
    p99_latency = 0.;
    mean_ttft = 0.;
    p50_tpt = 0.;
    p95_tpt = 0.;
    p99_tpt = 0.;
    tokens = 0;
    tokens_per_megacycle = 0.;
  }

let interpolate samples =
  (* dedupe by x KEY, keeping the last sample given for each x: sort_uniq
     over pairs dedupes (x, y) pairs only, so duplicate-x samples like
     (5, 1.0); (5, 2.0) would both survive and put a zero-width bracket
     (x1 - x0 = 0 -> NaN cycles) into the table *)
  let by_x = Hashtbl.create (List.length samples) in
  List.iter (fun (x, y) -> Hashtbl.replace by_x x y) samples;
  let samples = Hashtbl.fold (fun x y acc -> (x, y) :: acc) by_x [] in
  match List.sort compare samples with
  | [] ->
    (* no samples: an empty profile costs nothing, matching the zeroed
       stats an empty trace produces *)
    fun _ -> 0.
  | sorted ->
    let arr = Array.of_list sorted in
    fun x ->
      let n = Array.length arr in
      let xf = float_of_int x in
      if x <= fst arr.(0) then snd arr.(0)
      else if x >= fst arr.(n - 1) then snd arr.(n - 1)
      else begin
        (* find the bracketing pair *)
        let i = ref 0 in
        while fst arr.(!i + 1) < x do
          incr i
        done;
        let x0, y0 = arr.(!i) and x1, y1 = arr.(!i + 1) in
        let t = (xf -. float_of_int x0) /. float_of_int (x1 - x0) in
        y0 +. (t *. (y1 -. y0))
      end

(* Bucket-policy view of a cost profile: every length maps to its bucket
   ceiling before the underlying per-length costers run, and each distinct
   ceiling is priced exactly once. The compiler side passes expensive
   costers (a Cmswitch.session_step behind each call); the memo here is
   what makes decode loops touch them once per bucket, not once per
   length. Kept policy-agnostic (a plain [ceiling] function) so cim_sim
   does not depend on the compiler. *)
let bucketed_profile ~ceiling ~prefill_cycles ~decode_cycles =
  let look memo f len =
    let c = ceiling len in
    if c < len then
      invalid_arg
        (Printf.sprintf
           "Serving.bucketed_profile: ceiling %d below length %d" c len);
    match Hashtbl.find_opt memo c with
    | Some v -> v
    | None ->
      let v = f c in
      Hashtbl.add memo c v;
      v
  in
  let pmemo = Hashtbl.create 16 and dmemo = Hashtbl.create 16 in
  {
    (* prefill of seq tokens prices at the bucket ceiling of seq *)
    prefill_cycles = (fun seq -> look pmemo prefill_cycles (max 1 seq));
    (* a decode step at kv_len prices at context = kv_len + 1, bucketed;
       the underlying coster receives the bucketed kv length (ceiling-1) *)
    decode_cycles =
      (fun kv_len ->
        look dmemo (fun ctx -> decode_cycles (ctx - 1)) (max 1 (kv_len + 1)));
  }

type config = { deadline : float option }

let default_config = { deadline = None }

let run ?(config = default_config) ?deadline profile requests =
  (* an explicit ?deadline wins over the config record *)
  let deadline =
    match deadline with Some _ -> deadline | None -> config.deadline
  in
  (match deadline with
  | Some d when d <= 0. -> invalid_arg "Serving.run: deadline must be positive"
  | _ -> ());
  let requests = List.sort (fun a b -> compare a.arrival b.arrival) requests in
  let now = ref 0. in
  let latencies = ref [] and ttfts = ref [] and tpts = ref [] in
  let tokens = ref 0 in
  let completed = ref 0 and dropped = ref 0 in
  List.iter
    (fun r ->
      if r.prompt <= 0 || r.output < 0 then
        invalid_arg "Serving.run: malformed request";
      let start = Float.max !now r.arrival in
      let after_prefill = start +. profile.prefill_cycles r.prompt in
      let finish = ref after_prefill in
      for t = 0 to r.output - 1 do
        finish := !finish +. profile.decode_cycles (r.prompt + t)
      done;
      (* admission control: a request that cannot finish within its
         deadline is dropped on arrival and does not occupy the chip *)
      match deadline with
      | Some d when !finish -. r.arrival > d -> incr dropped
      | _ ->
        incr completed;
        ttfts := (after_prefill -. r.arrival) :: !ttfts;
        (* per-decode-step latency (time per token), admitted requests only *)
        for t = 0 to r.output - 1 do
          tpts := profile.decode_cycles (r.prompt + t) :: !tpts
        done;
        now := !finish;
        tokens := !tokens + r.output + 1;
        latencies := (!finish -. r.arrival) :: !latencies)
    requests;
  if Metrics.enabled () then begin
    Metrics.incr ~by:(float_of_int !completed) (Metrics.counter "serving.completed");
    Metrics.incr ~by:(float_of_int !dropped) (Metrics.counter "serving.dropped");
    Metrics.incr ~by:(float_of_int !tokens) (Metrics.counter "serving.tokens");
    let h_lat = Metrics.histogram "serving.latency_cycles" in
    let h_ttft = Metrics.histogram "serving.ttft_cycles" in
    let h_tpt = Metrics.histogram "serving.tpt_cycles" in
    List.iter (Metrics.observe h_lat) !latencies;
    List.iter (Metrics.observe h_ttft) !ttfts;
    List.iter (Metrics.observe h_tpt) !tpts
  end;
  if !completed = 0 then { zero_stats with dropped = !dropped }
  else
    let latencies = !latencies in
    {
      completed = !completed;
      dropped = !dropped;
      makespan = !now;
      mean_latency = Cim_util.Stats.mean latencies;
      (* nearest rank, not interpolation: on short traces (< 20 requests)
         the 95th percentile is the worst observed latency, not a blend of
         the two slowest requests *)
      p95_latency = Cim_util.Stats.percentile_nearest_rank 95. latencies;
      p99_latency = Cim_util.Stats.percentile_nearest_rank 99. latencies;
      mean_ttft = Cim_util.Stats.mean !ttfts;
      p50_tpt =
        (match !tpts with
        | [] -> 0.
        | l -> Cim_util.Stats.percentile_nearest_rank 50. l);
      p95_tpt =
        (match !tpts with
        | [] -> 0.
        | l -> Cim_util.Stats.percentile_nearest_rank 95. l);
      p99_tpt =
        (match !tpts with
        | [] -> 0.
        | l -> Cim_util.Stats.percentile_nearest_rank 99. l);
      tokens = !tokens;
      tokens_per_megacycle =
        (if !now > 0. then float_of_int !tokens /. (!now /. 1e6) else 0.);
    }

let poisson_trace rng ~n ~mean_gap ~prompt ~output =
  if n <= 0 then invalid_arg "Serving.poisson_trace: n must be positive";
  let t = ref 0. in
  List.init n (fun _ ->
      let u =
        let rec draw () =
          let u = Cim_util.Rng.float rng 1. in
          if u = 0. then draw () else u
        in
        draw ()
      in
      t := !t +. (-.mean_gap *. log u);
      { arrival = !t; prompt; output })

let bursty_trace rng ~n ~burst ~mean_gap ~intra_gap ~prompt ~output =
  if n <= 0 then invalid_arg "Serving.bursty_trace: n must be positive";
  if burst <= 0 then invalid_arg "Serving.bursty_trace: burst must be positive";
  if intra_gap < 0. then
    invalid_arg "Serving.bursty_trace: intra_gap must be non-negative";
  let t = ref 0. in
  List.init n (fun i ->
      if i mod burst = 0 then begin
        (* a new burst front arrives after an exponential inter-burst gap *)
        let u =
          let rec draw () =
            let u = Cim_util.Rng.float rng 1. in
            if u = 0. then draw () else u
          in
          draw ()
        in
        t := !t +. (-.mean_gap *. log u)
      end
      else t := !t +. intra_gap;
      { arrival = !t; prompt; output })
