(* Event-driven multi-chip fleet serving simulator with a runtime failure
   model. See fleet.mli for the serving-time contract; the implementation
   notes here cover determinism.

   Determinism: the event loop itself is a serial discrete-event
   simulation, so its float arithmetic and its stats are trivially
   reproducible. The only parallel work is plan PREFETCH: every fault map
   a chip can pass through is known up front (the schedule is data, not
   discovered), so all planner calls — one per (chip, fault-event prefix)
   — are fanned out on a Cim_util.Pool and merged back by index. A
   deterministic planner therefore yields byte-identical stats at any job
   count, the same contract Segment.run established for compilation. *)

module Chip = Cim_arch.Chip
module Faultmap = Cim_arch.Faultmap
module Metrics = Cim_obs.Metrics
module Trace = Cim_obs.Trace
module Telemetry = Cim_obs.Telemetry
module Timeline = Cim_obs.Timeline
module Json = Cim_obs.Json
module Pool = Cim_util.Pool
module Rng = Cim_util.Rng

type fault_event = {
  at : float;
  chip : int;
  coord : Chip.coord;
  state : Faultmap.fault option;
}

type plan = { level : int; profile : Serving.cost_profile }

type planner = chip:int -> faults:Faultmap.t -> plan option

type config = {
  chips : int;
  slo : float option;
  shed_output : int;
  max_retries : int;
  backoff_base : float;
  backoff_cap : float;
  breaker_threshold : int;
  recompile_cycles : float;
  jobs : int;
}

let default_config =
  {
    chips = 2;
    slo = None;
    shed_output = 4;
    max_retries = 3;
    backoff_base = 1_000.;
    backoff_cap = 64_000.;
    breaker_threshold = 4;
    recompile_cycles = 10_000.;
    jobs = Pool.default_jobs ();
  }

type stats = {
  offered : int;
  completed : int;
  dropped : int;
  shed : int;
  starved : int;
  retries : int;
  recompiles : int;
  breaker_opens : int;
  chips_out : int;
  slo_violations : int;
  makespan : float;
  mean_latency : float;
  p50_latency : float;
  p95_latency : float;
  p99_latency : float;
  p999_latency : float;
  mean_ttft : float;
  p50_tpt : float;
  p95_tpt : float;
  p99_tpt : float;
  tokens : int;
  tokens_per_megacycle : float;
  per_chip_served : int list;
}

let zero_stats =
  {
    offered = 0;
    completed = 0;
    dropped = 0;
    shed = 0;
    starved = 0;
    retries = 0;
    recompiles = 0;
    breaker_opens = 0;
    chips_out = 0;
    slo_violations = 0;
    makespan = 0.;
    mean_latency = 0.;
    p50_latency = 0.;
    p95_latency = 0.;
    p99_latency = 0.;
    p999_latency = 0.;
    mean_ttft = 0.;
    p50_tpt = 0.;
    p95_tpt = 0.;
    p99_tpt = 0.;
    tokens = 0;
    tokens_per_megacycle = 0.;
    per_chip_served = [];
  }

(* ---- fault schedules ----------------------------------------------------- *)

let fault_state_to_string = function
  | None -> "clear"
  | Some Faultmap.Dead -> "dead"
  | Some (Faultmap.Stuck_mode m) ->
    Printf.sprintf "stuck-%s" (Cim_arch.Mode.to_string m)
  | Some (Faultmap.Transient_switch_failure p) -> Printf.sprintf "transient:%g" p

let event_to_string e =
  Printf.sprintf "at=%g chip=%d array=%d,%d fault=%s" e.at e.chip e.coord.Chip.x
    e.coord.Chip.y
    (fault_state_to_string e.state)

let schedule_to_string evs =
  String.concat "" (List.map (fun e -> event_to_string e ^ "\n") evs)

let schedule_of_string src =
  let ( let* ) = Result.bind in
  let parse_line lineno line =
    let fields = String.split_on_char ' ' (String.trim line) in
    let fields = List.filter (fun f -> f <> "") fields in
    let err m = Error (Printf.sprintf "fault schedule line %d: %s" lineno m) in
    let lookup k =
      let p = k ^ "=" in
      match List.find_opt (String.starts_with ~prefix:p) fields with
      | Some f ->
        Ok (String.sub f (String.length p) (String.length f - String.length p))
      | None -> err (Printf.sprintf "missing field %s=" k)
    in
    let* at_s = lookup "at" in
    let* at =
      match float_of_string_opt at_s with
      | Some f when Float.is_finite f && f >= 0. -> Ok f
      | _ -> err ("bad cycle count " ^ at_s)
    in
    let* chip_s = lookup "chip" in
    let* chip =
      match int_of_string_opt chip_s with
      | Some c when c >= 0 -> Ok c
      | _ -> err ("bad chip id " ^ chip_s)
    in
    let* xy = lookup "array" in
    let* coord =
      match String.split_on_char ',' xy with
      | [ xs; ys ] -> (
        match (int_of_string_opt xs, int_of_string_opt ys) with
        | Some x, Some y -> Ok { Chip.x; y }
        | _ -> err ("bad array coordinate " ^ xy))
      | _ -> err ("bad array coordinate " ^ xy)
    in
    let* fault_s = lookup "fault" in
    let* state =
      match fault_s with
      | "clear" -> Ok None
      | "dead" -> Ok (Some Faultmap.Dead)
      | "stuck-compute" -> Ok (Some (Faultmap.Stuck_mode Cim_arch.Mode.Compute))
      | "stuck-memory" -> Ok (Some (Faultmap.Stuck_mode Cim_arch.Mode.Memory))
      | s when String.starts_with ~prefix:"transient:" s -> (
        let p = String.sub s 10 (String.length s - 10) in
        match float_of_string_opt p with
        | Some p when p >= 0. && p < 1. ->
          Ok (Some (Faultmap.Transient_switch_failure p))
        | _ -> err ("bad transient probability " ^ p))
      | s -> err ("unknown fault kind " ^ s)
    in
    Ok { at; chip; coord; state }
  in
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc rest
      else begin
        match parse_line lineno trimmed with
        | Ok e -> go (lineno + 1) (e :: acc) rest
        | Error _ as e -> e
      end
  in
  go 1 [] lines

let random_schedule rng ~chip ~chips ~n ~horizon =
  if chips <= 0 then invalid_arg "Fleet.random_schedule: chips must be positive";
  if n < 0 then invalid_arg "Fleet.random_schedule: n must be non-negative";
  if not (Float.is_finite horizon) || horizon <= 0. then
    invalid_arg "Fleet.random_schedule: horizon must be positive";
  let evs =
    List.init n (fun _ ->
        let at = Rng.float rng horizon in
        let c = Rng.int rng chips in
        let coord = Chip.coord_of_index chip (Rng.int rng chip.Chip.n_arrays) in
        let state =
          match Rng.int rng 4 with
          | 0 | 1 -> Some Faultmap.Dead
          | 2 ->
            Some
              (Faultmap.Stuck_mode
                 (if Rng.bool rng then Cim_arch.Mode.Memory
                  else Cim_arch.Mode.Compute))
          | _ ->
            Some (Faultmap.Transient_switch_failure (0.05 +. Rng.float rng 0.45))
        in
        { at; chip = c; coord; state })
  in
  List.stable_sort (fun a b -> Float.compare a.at b.at) evs

(* ---- the event loop ------------------------------------------------------ *)

(* events sharing a timestamp fire in insertion order; the loop inserts the
   whole fault schedule before any arrival, so at equal times a fault beats
   an arrival — a request never squeezes in ahead of the failure that was
   scheduled for that exact cycle *)
module Pq = Map.Make (struct
  type t = float * int

  let compare (t1, s1) (t2, s2) =
    match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c
end)

type ev =
  | Arrive of int
  | Fault_hit of fault_event
  | Finish of int * int (* chip, service token *)
  | Recompiled of int * int (* chip, recompile token *)
  | Retry of int

type rstate = {
  req : Serving.request;
  mutable attempts : int;
  mutable shed_mode : bool;
  mutable prefill_done : float;
  mutable terminal : bool;
  (* span bookkeeping (two float stores per transition — kept up to date
     even without a telemetry collector so attaching one cannot perturb
     the event loop's control flow) *)
  mutable enqueued_at : float;
  mutable started_at : float;
}

type cstate = {
  id : int;
  mutable fm : Faultmap.t;
  mutable plan : plan option;
  mutable out : bool;
  mutable recompiling : bool;
  mutable est_free : float; (* routing estimate only; truth is the DES *)
  waiting : int Queue.t;
  mutable cur : int option;
  mutable token : int;
  mutable fault_hits : int;
  mutable plan_idx : int;
  mutable served : int;
}

let validate_config c =
  if c.chips <= 0 then invalid_arg "Fleet.run: chips must be positive";
  (match c.slo with
  | Some s when not (Float.is_finite s && s > 0.) ->
    invalid_arg "Fleet.run: slo must be positive"
  | _ -> ());
  if c.shed_output < 0 then invalid_arg "Fleet.run: shed_output must be >= 0";
  if c.max_retries < 0 then invalid_arg "Fleet.run: max_retries must be >= 0";
  if c.backoff_base < 0. || c.backoff_cap < c.backoff_base then
    invalid_arg "Fleet.run: need 0 <= backoff_base <= backoff_cap";
  if c.breaker_threshold <= 0 then
    invalid_arg "Fleet.run: breaker_threshold must be positive";
  if c.recompile_cycles < 0. then
    invalid_arg "Fleet.run: recompile_cycles must be >= 0";
  if c.jobs < 1 then invalid_arg "Fleet.run: jobs must be >= 1"

let service_cost (profile : Serving.cost_profile) ~prompt ~out_eff =
  let acc = ref (profile.Serving.prefill_cycles prompt) in
  for t = 0 to out_eff - 1 do
    acc := !acc +. profile.Serving.decode_cycles (prompt + t)
  done;
  !acc

(* Every fault map each chip can pass through, with the planner evaluated
   for each — fanned out on the pool, merged back in (chip, prefix) order.
   Plans for states the breaker later masks are computed speculatively;
   that costs planner calls (cheap when the planner is cache-warm), never
   determinism. *)
let prefetch_plans ~config ~chip planner schedule =
  let per_chip_rev = Array.make config.chips [] in
  List.iter
    (fun e ->
      if e.chip < 0 || e.chip >= config.chips then
        invalid_arg
          (Printf.sprintf "Fleet.run: fault event chip %d out of range [0, %d)"
             e.chip config.chips);
      per_chip_rev.(e.chip) <- e :: per_chip_rev.(e.chip))
    schedule;
  let fm_chains =
    Array.map
      (fun evs_rev ->
        let fm0 = Faultmap.none chip in
        let chain =
          List.fold_left
            (fun acc e ->
              let fm = List.hd acc in
              Faultmap.apply fm [ (e.coord, e.state) ] :: acc)
            [ fm0 ] (List.rev evs_rev)
        in
        Array.of_list (List.rev chain))
      per_chip_rev
  in
  let tasks =
    List.concat
      (List.init config.chips (fun c ->
           Array.to_list
             (Array.map (fun fm -> (c, fm)) fm_chains.(c))))
  in
  let solve (c, fm) = planner ~chip:c ~faults:fm in
  let results =
    if config.jobs > 1 && Pool.current_worker () = None then
      Pool.with_pool ~name:"fleet-plan" ~jobs:config.jobs (fun p ->
          Pool.map_list p solve tasks)
    else List.map solve tasks
  in
  let plans = Array.map (fun chain -> Array.make (Array.length chain) None) fm_chains in
  let rec fill c k = function
    | [] -> ()
    | r :: rest ->
      if k < Array.length plans.(c) then begin
        plans.(c).(k) <- r;
        fill c (k + 1) rest
      end
      else fill (c + 1) 0 (r :: rest)
  in
  fill 0 0 results;
  (plans, fm_chains)

let run ?(config = default_config) ?telemetry
    ?(snapshot_extra = fun () -> []) ~chip planner schedule requests =
  validate_config config;
  List.iter
    (fun (r : Serving.request) ->
      if
        r.Serving.prompt <= 0 || r.Serving.output < 0
        || not (Float.is_finite r.Serving.arrival)
        || r.Serving.arrival < 0.
      then invalid_arg "Fleet.run: malformed request")
    requests;
  let schedule =
    List.stable_sort (fun a b -> Float.compare a.at b.at) schedule
  in
  let plans, fm_chains = prefetch_plans ~config ~chip planner schedule in
  let chips =
    Array.init config.chips (fun id ->
        {
          id;
          fm = fm_chains.(id).(0);
          plan = plans.(id).(0);
          out = plans.(id).(0) = None;
          recompiling = false;
          est_free = 0.;
          waiting = Queue.create ();
          cur = None;
          token = 0;
          fault_hits = 0;
          plan_idx = 0;
          served = 0;
        })
  in
  let requests =
    List.stable_sort
      (fun (a : Serving.request) b -> Float.compare a.Serving.arrival b.Serving.arrival)
      requests
  in
  let rstates =
    Array.of_list
      (List.map
         (fun req ->
           { req; attempts = 0; shed_mode = false; prefill_done = 0.;
             terminal = false; enqueued_at = 0.; started_at = 0. })
         requests)
  in
  (* ---- telemetry --------------------------------------------------------
     Spans and marks go to the collector (when one is attached) and are
     mirrored onto the Chrome trace's fleet process (when tracing is on);
     per-chip lanes carry occupancy (prefill/decode/recompile), the router
     lane carries queueing, backoff, and terminal markers. All of it is
     recording only — the event loop's decisions never read it, so stats
     are identical with and without a collector. *)
  let observing () = telemetry <> None || Trace.enabled () in
  let fleet_tid = 0 in
  let chip_tid id = id + 1 in
  let lane_of id = Printf.sprintf "chip%d" id in
  if Trace.enabled () then begin
    Trace.name_process ~pid:Trace.pid_fleet "fleet serving (cycles)";
    Trace.name_thread ~pid:Trace.pid_fleet ~tid:fleet_tid "router";
    for id = 0 to config.chips - 1 do
      Trace.name_thread ~pid:Trace.pid_fleet ~tid:(chip_tid id)
        (Printf.sprintf "chip %d" id)
    done
  end;
  let tspan ?(attrs = []) ~lane ~tid ~ts ~dur name =
    (match telemetry with
    | Some t -> Telemetry.span t ~attrs ~lane ~ts ~dur name
    | None -> ());
    if Trace.enabled () then
      Trace.complete ~cat:"fleet" ~args:attrs ~pid:Trace.pid_fleet ~tid ~ts
        ~dur name
  in
  let tmark ?(attrs = []) ~lane ~tid ~ts name =
    (match telemetry with
    | Some t -> Telemetry.mark t ~attrs ~lane ~ts name
    | None -> ());
    if Trace.enabled () then
      Trace.instant ~cat:"fleet" ~args:attrs ~pid:Trace.pid_fleet ~tid ~ts name
  in
  (* event queue *)
  let events = ref Pq.empty in
  let seq = ref 0 in
  let push at ev =
    events := Pq.add (at, !seq) ev !events;
    incr seq
  in
  (* faults first so they win time ties against arrivals *)
  List.iter (fun e -> push e.at (Fault_hit e)) schedule;
  Array.iteri (fun i (r : rstate) -> push r.req.Serving.arrival (Arrive i)) rstates;
  (* statistics *)
  let completed = ref 0 and dropped = ref 0 and shed = ref 0 in
  let starved = ref 0 and retries = ref 0 and recompiles = ref 0 in
  let breaker_opens = ref 0 and slo_violations = ref 0 in
  let tokens = ref 0 in
  let latencies = ref [] and ttfts = ref [] and tpts = ref [] in
  let makespan = ref 0. in
  let out_eff (r : rstate) =
    if r.shed_mode then min r.req.Serving.output config.shed_output
    else r.req.Serving.output
  in
  let cost_of c (r : rstate) =
    match c.plan with
    | None -> infinity
    | Some p -> service_cost p.profile ~prompt:r.req.Serving.prompt ~out_eff:(out_eff r)
  in
  let cost_full c (r : rstate) =
    match c.plan with
    | None -> infinity
    | Some p ->
      service_cost p.profile ~prompt:r.req.Serving.prompt
        ~out_eff:r.req.Serving.output
  in
  let cost_shed c (r : rstate) =
    match c.plan with
    | None -> infinity
    | Some p ->
      service_cost p.profile ~prompt:r.req.Serving.prompt
        ~out_eff:(min r.req.Serving.output config.shed_output)
  in
  let terminal_starved now rid =
    let r = rstates.(rid) in
    if not r.terminal then begin
      r.terminal <- true;
      r.shed_mode <- true;
      incr shed;
      incr starved;
      makespan := Float.max !makespan now;
      if observing () then
        tmark ~lane:"fleet" ~tid:fleet_tid ~ts:now "starved"
          ~attrs:[ ("req", Json.Int rid) ]
    end
  in
  let start_service now (c : cstate) =
    if (not c.out) && (not c.recompiling) && c.cur = None
       && not (Queue.is_empty c.waiting)
    then begin
      let rid = Queue.pop c.waiting in
      let r = rstates.(rid) in
      (* SLO-aware degradation at service start: if full service can no
         longer meet the SLO but the cheaper shed plan still can — or
         nothing can, for an already-admitted request — descend to the
         shed tier rather than failing the request *)
      (match config.slo with
      | Some s when not r.shed_mode ->
        if now +. cost_full c r -. r.req.Serving.arrival > s then begin
          r.shed_mode <- true;
          if observing () then
            tmark ~lane:"fleet" ~tid:fleet_tid ~ts:now "shed"
              ~attrs:[ ("req", Json.Int rid); ("at", Json.String "start") ]
        end
      | _ -> ());
      let cost = cost_of c r in
      let prefill =
        match c.plan with
        | None -> 0.
        | Some p -> p.profile.Serving.prefill_cycles r.req.Serving.prompt
      in
      if observing () then
        tspan ~lane:"fleet" ~tid:fleet_tid ~ts:r.enqueued_at
          ~dur:(now -. r.enqueued_at) "queue"
          ~attrs:[ ("req", Json.Int rid); ("chip", Json.Int c.id) ];
      r.started_at <- now;
      r.prefill_done <- now +. prefill;
      c.cur <- Some rid;
      c.token <- c.token + 1;
      push (now +. cost) (Finish (c.id, c.token))
    end
  in
  (* route to the chip with the earliest estimated finish (deterministic
     tie-break on chip id); None when no chip can serve at all *)
  let route now (r : rstate) =
    let best = ref None in
    Array.iter
      (fun c ->
        if (not c.out) && c.plan <> None then begin
          let est = Float.max c.est_free now +. cost_of c r in
          match !best with
          | Some (_, best_est) when best_est <= est -> ()
          | _ -> best := Some (c, est)
        end)
      chips;
    !best
  in
  let enqueue now (c : cstate) rid =
    let r = rstates.(rid) in
    r.enqueued_at <- now;
    c.est_free <- Float.max c.est_free now +. cost_of c r;
    Queue.push rid c.waiting;
    start_service now c
  in
  (* admission: [on_reject] distinguishes an arrival (drop) from a retry
     (starve — the request is already inside the system) *)
  let admit now rid ~on_reject =
    let r = rstates.(rid) in
    match route now r with
    | None -> on_reject ()
    | Some (c, _) -> (
      match config.slo with
      | None -> enqueue now c rid
      | Some s ->
        let base = Float.max c.est_free now in
        if base +. cost_full c r -. r.req.Serving.arrival <= s then
          enqueue now c rid
        else if base +. cost_shed c r -. r.req.Serving.arrival <= s then begin
          r.shed_mode <- true;
          if observing () then
            tmark ~lane:"fleet" ~tid:fleet_tid ~ts:now "shed"
              ~attrs:[ ("req", Json.Int rid); ("at", Json.String "admit") ];
          enqueue now c rid
        end
        else on_reject ())
  in
  let push_retry now rid delay =
    if observing () then
      tspan ~lane:"fleet" ~tid:fleet_tid ~ts:now ~dur:delay "retry_backoff"
        ~attrs:
          [ ("req", Json.Int rid);
            ("attempt", Json.Int rstates.(rid).attempts) ];
    push (now +. delay) (Retry rid)
  in
  let abort_inflight now rid =
    let r = rstates.(rid) in
    r.attempts <- r.attempts + 1;
    incr retries;
    if r.attempts > config.max_retries then terminal_starved now rid
    else
      push_retry now rid
        (Float.min config.backoff_cap
           (config.backoff_base *. (2. ** float_of_int (r.attempts - 1))))
  in
  let evict_queue now (c : cstate) =
    (* re-route every waiting request after a one-backoff delay; the
       in-flight one is handled by the fault/abort path *)
    Queue.iter (fun rid -> push_retry now rid config.backoff_base) c.waiting;
    Queue.clear c.waiting
  in
  let take_offline now (c : cstate) =
    c.out <- true;
    c.recompiling <- false;
    c.plan <- None;
    c.token <- c.token + 1;
    if observing () then
      tmark ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:now "offline";
    (match c.cur with
    | Some rid ->
      c.cur <- None;
      abort_inflight now rid
    | None -> ());
    evict_queue now c
  in
  let handle_fault now (e : fault_event) =
    let c = chips.(e.chip) in
    if not c.out then begin
      c.fault_hits <- c.fault_hits + 1;
      c.plan_idx <- c.plan_idx + 1;
      c.fm <- fm_chains.(e.chip).(c.plan_idx);
      if observing () then
        tmark ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:now "fault"
          ~attrs:
            [ ("array",
               Json.String
                 (Printf.sprintf "%d,%d" e.coord.Chip.x e.coord.Chip.y));
              ("state", Json.String (fault_state_to_string e.state)) ];
      (* abort the in-flight request: bounded exponential backoff retry *)
      (match c.cur with
      | Some rid ->
        c.cur <- None;
        c.token <- c.token + 1;
        abort_inflight now rid
      | None -> ());
      if c.fault_hits >= config.breaker_threshold then begin
        (* circuit breaker: the chip faulted too often to trust; pull it
           out of rotation and send its queue elsewhere *)
        incr breaker_opens;
        if observing () then
          tmark ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:now
            "breaker_open"
            ~attrs:[ ("fault_hits", Json.Int c.fault_hits) ];
        take_offline now c
      end
      else begin
        match plans.(e.chip).(c.plan_idx) with
        | None ->
          (* recompile-around-faults has nothing left to compile onto *)
          take_offline now c
        | Some p ->
          incr recompiles;
          c.plan <- Some p;
          c.recompiling <- true;
          c.token <- c.token + 1;
          c.est_free <- Float.max c.est_free now +. config.recompile_cycles;
          if observing () then
            tspan ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:now
              ~dur:config.recompile_cycles "recompile"
              ~attrs:[ ("plan_level", Json.Int p.level) ];
          push (now +. config.recompile_cycles) (Recompiled (c.id, c.token))
      end
    end
  in
  let handle_finish now cid token =
    let c = chips.(cid) in
    if c.token = token then begin
      match c.cur with
      | None -> ()
      | Some rid ->
        c.cur <- None;
        let r = rstates.(rid) in
        r.terminal <- true;
        let latency = now -. r.req.Serving.arrival in
        latencies := latency :: !latencies;
        ttfts := (r.prefill_done -. r.req.Serving.arrival) :: !ttfts;
        (* per-decode-step latency: the token match guarantees [c.plan] is
           the plan that actually served this request *)
        (match c.plan with
        | Some p ->
          for t = 0 to out_eff r - 1 do
            tpts :=
              p.profile.Serving.decode_cycles (r.req.Serving.prompt + t)
              :: !tpts
          done
        | None -> ());
        tokens := !tokens + out_eff r + 1;
        makespan := Float.max !makespan now;
        c.served <- c.served + 1;
        (match config.slo with
        | Some s when latency > s -> incr slo_violations
        | _ -> ());
        if observing () then begin
          (* prefill + decode partition the chip's occupancy, so the
             per-lane span sum is exactly its busy time *)
          let attrs =
            [ ("req", Json.Int rid);
              ("prompt", Json.Int r.req.Serving.prompt);
              ("shed", Json.Bool r.shed_mode) ]
          in
          tspan ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:r.started_at
            ~dur:(r.prefill_done -. r.started_at) "prefill" ~attrs;
          tspan ~lane:(lane_of c.id) ~tid:(chip_tid c.id) ~ts:r.prefill_done
            ~dur:(now -. r.prefill_done) "decode"
            ~attrs:(("tokens", Json.Int (out_eff r)) :: attrs)
        end;
        if r.shed_mode then incr shed else incr completed;
        start_service now c
    end
  in
  (* periodic state-of-the-fleet sample into the collector's timeline;
     sampled on event boundaries (the DES clock only moves between events)
     and guarded by [Timeline.due] so off-tick events cost one compare *)
  let snapshot ~force now =
    match telemetry with
    | None -> ()
    | Some t ->
      let tl = Telemetry.timeline t in
      if force || Timeline.due tl ~now then begin
        let queue_depth =
          Array.fold_left (fun acc c -> acc + Queue.length c.waiting) 0 chips
        in
        let in_flight =
          Array.fold_left
            (fun acc c -> if c.cur = None then acc else acc + 1)
            0 chips
        in
        let out_now =
          Array.fold_left (fun acc c -> if c.out then acc + 1 else acc) 0 chips
        in
        let served = !completed + !shed in
        let fields =
          [ ("completed", float_of_int !completed);
            ("shed", float_of_int !shed);
            ("dropped", float_of_int !dropped);
            ("starved", float_of_int !starved);
            ("queue_depth", float_of_int queue_depth);
            ("in_flight", float_of_int in_flight);
            ("chips_out", float_of_int out_now);
            ("retries", float_of_int !retries);
            ("recompiles", float_of_int !recompiles);
            ("breaker_opens", float_of_int !breaker_opens);
            ("slo_violations", float_of_int !slo_violations);
            ("tokens", float_of_int !tokens);
            ("tokens_per_megacycle",
             if now > 0. then float_of_int !tokens /. (now /. 1e6) else 0.) ]
        in
        let fields =
          match Telemetry.slo_budget t with
          | Some b ->
            fields
            @ [ ("slo_burn_rate",
                 float_of_int !slo_violations
                 /. float_of_int (max served 1) /. b) ]
          | None -> fields
        in
        let fields = fields @ snapshot_extra () in
        if force then Timeline.force tl ~now fields
        else Timeline.record tl ~now fields
      end
  in
  let last_t = ref 0. in
  let rec drain () =
    match Pq.min_binding_opt !events with
    | None -> ()
    | Some ((at, s), ev) ->
      events := Pq.remove (at, s) !events;
      last_t := at;
      (match ev with
      | Arrive rid ->
        admit at rid ~on_reject:(fun () ->
            rstates.(rid).terminal <- true;
            incr dropped;
            if observing () then
              tmark ~lane:"fleet" ~tid:fleet_tid ~ts:at "drop"
                ~attrs:[ ("req", Json.Int rid) ])
      | Retry rid ->
        let r = rstates.(rid) in
        if not r.terminal then
          admit at rid ~on_reject:(fun () -> terminal_starved at rid)
      | Fault_hit e -> handle_fault at e
      | Finish (cid, token) -> handle_finish at cid token
      | Recompiled (cid, token) ->
        let c = chips.(cid) in
        if c.token = token && not c.out then begin
          c.recompiling <- false;
          start_service at c
        end);
      snapshot ~force:false at;
      drain ()
  in
  drain ();
  snapshot ~force:true !last_t;
  let offered = Array.length rstates in
  assert (!completed + !dropped + !shed = offered);
  let chips_out =
    Array.fold_left (fun acc c -> if c.out then acc + 1 else acc) 0 chips
  in
  if Metrics.enabled () then begin
    let count name v =
      Metrics.incr ~by:(float_of_int v) (Metrics.counter name)
    in
    count "serving.offered" offered;
    count "serving.completed" !completed;
    count "serving.dropped" !dropped;
    count "serving.shed" !shed;
    count "serving.starved" !starved;
    count "serving.retries" !retries;
    count "serving.recompiles" !recompiles;
    count "serving.breaker_opens" !breaker_opens;
    count "serving.tokens" !tokens;
    count "serving.slo_violations" !slo_violations;
    let h_lat = Metrics.histogram "serving.latency_cycles" in
    let h_ttft = Metrics.histogram "serving.ttft_cycles" in
    let h_tpt = Metrics.histogram "serving.tpt_cycles" in
    List.iter (Metrics.observe h_lat) !latencies;
    List.iter (Metrics.observe h_ttft) !ttfts;
    List.iter (Metrics.observe h_tpt) !tpts;
    Array.iter
      (fun c ->
        let labels = [ ("chip", string_of_int c.id) ] in
        Metrics.incr
          ~by:(float_of_int c.served)
          (Metrics.counter ~labels "serving.chip.served");
        Metrics.set_gauge
          (Metrics.gauge ~labels "serving.chip.out")
          (if c.out then 1. else 0.);
        Metrics.set_gauge
          (Metrics.gauge ~labels "serving.chip.fault_hits")
          (float_of_int c.fault_hits))
      chips
  end;
  (match telemetry with
  | None -> ()
  | Some t ->
    Telemetry.set_meta t "chips" (Json.Int config.chips);
    Telemetry.set_meta t "offered" (Json.Int offered);
    Telemetry.set_meta t "makespan" (Json.Float !makespan);
    (match config.slo with
    | Some s -> Telemetry.set_meta t "slo_cycles" (Json.Float s)
    | None -> ());
    (match Telemetry.slo_budget t with
    | Some b ->
      Telemetry.set_extra t "slo"
        (Telemetry.slo_summary ~budget:b ~violations:!slo_violations
           ~completed:(!completed + !shed))
    | None -> ()));
  let pct p xs = Cim_util.Stats.percentile_nearest_rank p xs in
  let served_latencies = !latencies in
  {
    offered;
    completed = !completed;
    dropped = !dropped;
    shed = !shed;
    starved = !starved;
    retries = !retries;
    recompiles = !recompiles;
    breaker_opens = !breaker_opens;
    chips_out;
    slo_violations = !slo_violations;
    makespan = !makespan;
    mean_latency =
      (if served_latencies = [] then 0. else Cim_util.Stats.mean served_latencies);
    p50_latency = (if served_latencies = [] then 0. else pct 50. served_latencies);
    p95_latency = (if served_latencies = [] then 0. else pct 95. served_latencies);
    p99_latency = (if served_latencies = [] then 0. else pct 99. served_latencies);
    p999_latency =
      (if served_latencies = [] then 0. else pct 99.9 served_latencies);
    mean_ttft = (if !ttfts = [] then 0. else Cim_util.Stats.mean !ttfts);
    p50_tpt = (if !tpts = [] then 0. else pct 50. !tpts);
    p95_tpt = (if !tpts = [] then 0. else pct 95. !tpts);
    p99_tpt = (if !tpts = [] then 0. else pct 99. !tpts);
    tokens = !tokens;
    tokens_per_megacycle =
      (if !makespan > 0. then float_of_int !tokens /. (!makespan /. 1e6) else 0.);
    per_chip_served = Array.to_list (Array.map (fun c -> c.served) chips);
  }
