module Chip = Cim_arch.Chip
module Cost = Cim_arch.Cost
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Opinfo = Cim_compiler.Opinfo
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo

type which = Occ | Puma | Cim_mlc

let name = function Occ -> "OCC" | Puma -> "PUMA" | Cim_mlc -> "CIM-MLC"

(* Greedy first-fit segmentation: pack operators until the next one would
   exceed the chip. *)
let greedy_segments chip (ops : Opinfo.t array) =
  let n = Array.length ops in
  let segs = ref [] in
  let lo = ref 0 in
  while !lo < n do
    let hi = ref !lo in
    let used = ref ops.(!lo).Opinfo.min_compute_arrays in
    let continue_ = ref true in
    while !continue_ && !hi + 1 < n do
      let next = ops.(!hi + 1).Opinfo.min_compute_arrays in
      if !used + next <= chip.Chip.n_arrays then begin
        used := !used + next;
        incr hi
      end
      else continue_ := false
    done;
    segs := (!lo, !hi) :: !segs;
    lo := !hi + 1
  done;
  List.rev !segs

(* PUMA-style duplication: hand leftover arrays to operators proportionally
   to their MAC counts, so the pipeline bottleneck shrinks. *)
let duplicate_allocs chip (ops : Opinfo.t array) ~lo ~hi =
  let base = Opinfo.total_min_arrays ops ~lo ~hi in
  let spare = max 0 (chip.Chip.n_arrays - base) in
  let total_macs = ref 0. in
  for i = lo to hi do
    total_macs := !total_macs +. ops.(i).Opinfo.macs
  done;
  let given = ref 0 in
  let allocs =
    List.init (hi - lo + 1) (fun k ->
        let i = lo + k in
        let share =
          if !total_macs <= 0. then 0
          else
            int_of_float
              (Float.of_int spare *. ops.(i).Opinfo.macs /. !total_macs)
        in
        let share = min share (spare - !given) in
        given := !given + share;
        {
          Plan.uid = i;
          com = ops.(i).Opinfo.min_compute_arrays + share;
          mem_in = 0;
          mem_out = 0;
        })
  in
  allocs

let op_lat chip (ops : Opinfo.t array) (a : Plan.op_alloc) =
  Alloc.op_latency chip ops.(a.Plan.uid) a

let occ_plan chip ops (lo, hi) =
  let allocs =
    List.init (hi - lo + 1) (fun k ->
        let i = lo + k in
        { Plan.uid = i; com = ops.(i).Opinfo.min_compute_arrays;
          mem_in = 0; mem_out = 0 })
  in
  (* serial execution: no inter-operator pipeline *)
  let intra = List.fold_left (fun acc a -> acc +. op_lat chip ops a) 0. allocs in
  { Plan.lo; hi; allocs; reuse = []; intra_cycles = intra }

let puma_plan chip ops (lo, hi) =
  let allocs = duplicate_allocs chip ops ~lo ~hi in
  let intra =
    List.fold_left (fun acc a -> Float.max acc (op_lat chip ops a)) 0. allocs
  in
  { Plan.lo; hi; allocs; reuse = []; intra_cycles = intra }

let compile ?(config = Cmswitch.Config.default) which chip graph =
  match which with
  | Cim_mlc ->
    let restricted = Cmswitch.Config.with_force_all_compute true config in
    let r = Cmswitch.compile ~config:restricted chip graph in
    { r.Cmswitch.schedule with Plan.compiler = "CIM-MLC" }
  | Occ | Puma ->
    let ops =
      Opinfo.extract chip
        ~partition_fraction:config.Cmswitch.Config.partition_fraction graph
    in
    let segs = greedy_segments chip ops in
    let plans =
      List.map
        (fun seg -> match which with Occ -> occ_plan chip ops seg
                                   | Puma -> puma_plan chip ops seg
                                   | Cim_mlc -> assert false)
        segs
    in
    Plan.roll_up ~compiler:(name which) chip ops plans

let head_cycles ?config which chip (e : Zoo.entry) w =
  (* reuse CMSwitch's head-graph construction through a private rebuild *)
  match Cmswitch.head_graph e w with
  | None -> 0.
  | Some g -> (compile ?config which chip g).Plan.total_cycles

let compile_model ?config which chip (e : Zoo.entry) w =
  match e.Zoo.layer with
  | None -> (compile ?config which chip (e.Zoo.build w)).Plan.total_cycles
  | Some build_layer ->
    let layer = (compile ?config which chip (build_layer w)).Plan.total_cycles in
    (float_of_int e.Zoo.n_layers *. layer) +. head_cycles ?config which chip e w
