(** The three baseline compilers of §5.1, reproduced over the same hardware
    abstraction and cost model so relative results are meaningful. All three
    treat every CIM array as a compute array (the fixed-mode assumption the
    paper identifies as their shared blind spot):

    - {b OCC}: per-operator tiled mapping (minimum arrays per operator, no
      duplication); operators execute serially within a segment.
    - {b PUMA}: operator duplication plus intra-segment pipelining, but
      greedy first-fit segmentation rather than cost-aware search.
    - {b CIM-MLC}: multi-grained pipelining with weight duplication and the
      same DP segmentation machinery as CMSwitch, restricted to
      all-compute allocations — the paper's strongest baseline and the one
      CMSwitch degenerates to when memory mode never helps. *)

type which = Occ | Puma | Cim_mlc

val name : which -> string

val compile :
  ?config:Cim_compiler.Cmswitch.Config.t -> which -> Cim_arch.Chip.t ->
  Cim_nnir.Graph.t -> Cim_compiler.Plan.schedule

val compile_model :
  ?config:Cim_compiler.Cmswitch.Config.t -> which -> Cim_arch.Chip.t ->
  Cim_models.Zoo.entry -> Cim_models.Workload.t -> float
(** Total cycles with the same block-reuse convention as
    {!Cim_compiler.Cmswitch.compile_model}. *)
