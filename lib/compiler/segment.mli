(** Dual-mode-aware network segmentation (§4.3.1, Eq. 3, Alg. 1): dynamic
    programming over segment boundaries, where each candidate segment's
    intra cost comes from the {!Alloc} MIP and the boundary cost from the
    three-part inter-segment model (Fig. 10). *)

type options = {
  alloc : Alloc.options;
  max_segment_ops : int;
      (** window cap on segment length; the hard feasibility bound (Eq. 8 /
          Alg. 1 line 9) still applies on top *)
  memoize : bool;
      (** cache MIP results by segment signature — identical transformer
          blocks then cost one solve (the block-reuse of Fig. 18) *)
  jobs : int;
      (** concurrent MILP solvers per DP frontier. [1] = serial on the
          calling domain; [n > 1] = a {!Cim_util.Pool} of [n] worker
          domains. Defaults to {!Cim_util.Pool.default_jobs} (the
          [CMSWITCH_JOBS] environment override, else
          [Domain.recommended_domain_count ()]). The compilation result —
          plans, programs, stats, metrics — is identical for every job
          count; only wall-clock changes. Nested runs (from inside a pool
          worker) degrade to serial automatically. *)
  cache : Cim_cache.Store.t option;
      (** persistent per-segment tier (["seg"] entries, see
          {!Ccache.seg_key}): window solutions keyed by (signature,
          effective chip, alloc options), shared across models and process
          restarts. Consulted only when [memoize] is on (positional keys
          are meaningless across runs); looked up by the coordinating
          domain during the frontier scan, so hits replay in deterministic
          submission order exactly like memo hits. Entries failing
          revalidation against the live window degrade to a miss. Like
          memo hits, persistent hits do not re-fire the original solve's
          [on_stage] events. [None] (the default) disables the tier. *)
}

type stats = {
  mip_solves : int;        (** MIP invocations actually performed *)
  mip_cache_hits : int;
  candidates : int;        (** (i, j) windows examined *)
  pruned_infeasible : int; (** windows rejected by the Alg. 1 line 9 test *)
}

(** {2 Incremental DP-prefix reuse}

    A decode loop recompiles near-identical operator lists: only the
    trailing attention windows grow when the KV length crosses a bucket
    boundary. A {!frontier_state} carries the DP table of previous runs so
    the next run re-solves only the changed suffix. *)

type frontier_state
(** Mutable carrier of memoised DP frontiers, keyed by (caller tag, chip,
    alloc/window options). Thread one state through the successive
    {!run}s of one compilation session (see [Cmswitch.session]). Safe to
    share across domains (internal mutex). *)

val frontier_state : unit -> frontier_state
(** A fresh, empty frontier carrier. *)

val reuse_counters : frontier_state -> int * int
(** [(reused, solved)] — cumulative count of operator positions seeded from
    a previous frontier vs. re-solved, across every {!run} that was handed
    this state and found a previous frontier under its key. Mirrored by the
    [compile.incremental.*] metrics. *)

val run :
  ?options:options -> ?frontiers:frontier_state -> ?frontier_tag:string ->
  ?on_stage:(Degrade.event -> unit) -> Cim_arch.Chip.t ->
  Opinfo.t array -> Plan.seg_plan list * stats
(** Optimal segmentation of the whole operator list. Per-window allocation
    goes through the {!Degrade.solve} chain, so a node-limited MIP degrades
    to its incumbent or the greedy allocator instead of dropping the window;
    [on_stage] observes every such fallback (memoised windows replay the
    cached plan without re-firing it). With [jobs > 1] the candidate
    windows of each DP frontier are solved concurrently on a domain pool;
    [on_stage] callbacks and trace spans are replayed by the calling domain
    in deterministic (submission) order, so outputs are byte-identical to
    a [jobs = 1] run. Raises [Invalid_argument] when [options.jobs < 1],
    and [Failure] when some operator cannot be scheduled at all (does not
    fit the chip alone — cannot happen for operator lists produced by
    {!Opinfo.extract} against the same chip).

    With [frontiers], the run seeds its DP table with the longest prefix of
    a previous run (same [frontier_tag], chip and options) whose operators
    are byte-identical — every cost-model field, absolute dependency and
    last-consumer entry compared — and starts the frontier loop after it,
    then publishes its own table for the next run. The chosen segmentation
    (and hence the emitted program) is byte-identical to a run without
    [frontiers] at any job count; only [stats] counters shrink, because
    prefix frontiers are never re-enumerated. [on_stage] events of skipped
    prefix windows are not re-fired (same contract as memo hits).
    [frontier_tag] namespaces lineages that interleave over one state —
    e.g. the layer and head graphs of a model compile. *)
