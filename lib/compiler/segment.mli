(** Dual-mode-aware network segmentation (§4.3.1, Eq. 3, Alg. 1): dynamic
    programming over segment boundaries, where each candidate segment's
    intra cost comes from the {!Alloc} MIP and the boundary cost from the
    three-part inter-segment model (Fig. 10). *)

type options = {
  alloc : Alloc.options;
  max_segment_ops : int;
      (** window cap on segment length; the hard feasibility bound (Eq. 8 /
          Alg. 1 line 9) still applies on top *)
  memoize : bool;
      (** cache MIP results by segment signature — identical transformer
          blocks then cost one solve (the block-reuse of Fig. 18) *)
}

val default_options : options

type stats = {
  mip_solves : int;        (** MIP invocations actually performed *)
  mip_cache_hits : int;
  candidates : int;        (** (i, j) windows examined *)
  pruned_infeasible : int; (** windows rejected by the Alg. 1 line 9 test *)
}

val run :
  ?options:options -> ?on_stage:(Degrade.event -> unit) -> Cim_arch.Chip.t ->
  Opinfo.t array -> Plan.seg_plan list * stats
(** Optimal segmentation of the whole operator list. Per-window allocation
    goes through the {!Degrade.solve} chain, so a node-limited MIP degrades
    to its incumbent or the greedy allocator instead of dropping the window;
    [on_stage] observes every such fallback (memoised windows replay the
    cached plan without re-firing it). Raises [Failure] when some operator
    cannot be scheduled at all (does not fit the chip alone — cannot happen
    for operator lists produced by {!Opinfo.extract} against the same
    chip). *)
