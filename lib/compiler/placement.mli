(** Physical array placement: turn the MIP's array *counts* into concrete
    CIM array coordinates (the lambda_z(i, x, y) of Table 1), choosing
    coordinates that (a) realise the Eq. 6 output->input buffer reuse in
    place and (b) minimise the number of mode switches between adjacent
    segments. The realised switch lists are what code generation emits as
    [CM.switch] and what the timing simulator charges. *)

type op_place = {
  uid : int;
  compute : Cim_arch.Chip.coord list;
  in_place : Cim_arch.Chip.coord list;
      (** subset of [compute] claimed from a previous segment's output
          buffers holding this operator's stationary operand (the paper's
          in-place K-cache switch, §5.3): switched to compute mode without
          weight reprogramming *)
  mem_in : Cim_arch.Chip.coord list;
  mem_out : Cim_arch.Chip.coord list;
}

type seg_place = {
  plan : Plan.seg_plan;
  ops : op_place list;
  to_compute : Cim_arch.Chip.coord list;  (** switches performed before the segment *)
  to_memory : Cim_arch.Chip.coord list;
}

val place :
  Cim_arch.Chip.t -> ?initial_mode:Cim_arch.Mode.t ->
  ?faults:Cim_arch.Faultmap.t -> Opinfo.t array ->
  Plan.seg_plan list -> seg_place list
(** [initial_mode] is the mode every array starts in (default [Memory] — a
    dual-mode array resets as plain memory). With [faults], dead arrays are
    never claimed and stuck arrays are only claimed for their stuck mode
    (and start the schedule already in it, so no switch is emitted for
    them); plans must have been solved against
    {!Cim_arch.Faultmap.effective_chip} for capacity to suffice. Raises
    [Failure] if a segment demands more usable arrays than remain (cannot
    happen for plans solved against the matching effective chip). *)

val realized_switches : seg_place list -> int * int
(** Total (memory->compute, compute->memory) switch counts. *)
