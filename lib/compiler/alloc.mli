(** Unified dual-mode allocation with scheduling (§4.3.2): the per-segment
    MIP. The min-max pipeline objective (Eq. 9) is linearised by maximising
    throughput [z] with [Com_i * OP_cim >= OP_i * z] and
    [(Mem_i * D_cim + D_main) * AI_i >= OP_i * z]; constraints Eq. 5-8 are
    imposed through integer array-count variables and dependency-reuse
    variables. Solved exactly with the vendored branch-and-bound solver. *)

type options = {
  milp_max_nodes : int;  (** branch-and-bound node budget per segment *)
  refine : bool;
      (** second lexicographic solve minimising total arrays at the optimal
          latency, so segments do not hoard arrays they cannot use (fewer
          switches downstream) *)
  force_all_compute : bool;
      (** restrict memory-mode variables to zero — this is how the CIM-MLC
          baseline is expressed in the same machinery *)
  lp_backend : Cim_solver.Milp.backend;
      (** LP core for the branch-and-bound relaxations: [Revised] (default)
          is the warm-started bounded-variable revised simplex; [Dense] is
          the original tableau solver, kept for differential testing and
          for benchmarking the speedup in the same run *)
}

(** Solver outcome distinguishing a genuinely infeasible segment from a
    node-limited search, so the {!Degrade} chain can fall back instead of
    silently dropping the window. *)
type outcome =
  | Optimal of Plan.seg_plan       (** proved optimal (within the gap) *)
  | Incumbent of Plan.seg_plan
      (** node budget exhausted; the incumbent passed {!plan_feasible} *)
  | Truncated_no_incumbent
      (** node budget exhausted with no usable integral solution *)
  | Infeasible                     (** the segment cannot fit (Alg. 1 line 13) *)

val plan_feasible : Cim_arch.Chip.t -> Opinfo.t array -> Plan.seg_plan -> bool
(** The contract a plan must honour before the compiler trusts it: every
    operator at or above its minimum compute arrays, non-negative buffer
    counts, and Eq. 8 capacity respected. *)

val segment_problem :
  ?options:options -> Cim_arch.Chip.t -> Opinfo.t array -> lo:int -> hi:int ->
  Cim_solver.Lp.problem * Cim_solver.Milp.kind array
(** The exact MILP {!solve_outcome} hands to the solver for operators
    [lo..hi] (maximise throughput [z]), in computational form. Exposed so
    the differential suite can replay real segment models against both LP
    backends and the solver micro-benchmark can time them in isolation. *)

val solve_outcome :
  ?options:options -> Cim_arch.Chip.t -> Opinfo.t array -> lo:int -> hi:int ->
  outcome
(** Like {!solve} but reporting how the answer was obtained. Incumbents are
    feasibility-checked; a failing incumbent is reported as
    [Truncated_no_incumbent], never returned. *)

val solve :
  ?options:options -> Cim_arch.Chip.t -> Opinfo.t array -> lo:int -> hi:int ->
  Plan.seg_plan option
(** Optimal allocation for operators [lo..hi] scheduled as one pipelined
    segment; [None] when the segment cannot fit on the chip (Alg. 1
    line 13). [intra_cycles] of the result is recomputed from the integer
    allocation via the cost model (not from the LP objective), so it is
    exact. *)

val op_latency : Cim_arch.Chip.t -> Opinfo.t -> Plan.op_alloc -> float
(** Eq. 10 for one operator under an allocation. *)
