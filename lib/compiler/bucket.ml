(* Length-bucketing policy: maps a context length to the bucket ceiling it
   compiles at. The canonical form is embedded as one field of
   Cmswitch.Config.canonical, so it must stay free of ';', '{' and '}'. *)

type t =
  | Pow2 of { min_ceiling : int; max_ceiling : int }
  | Explicit of int list (* non-empty, strictly increasing, all positive *)

let pow2 ?(min_ceiling = 32) ?(max_ceiling = 2048) () =
  if min_ceiling < 1 then invalid_arg "Bucket.pow2: min_ceiling < 1";
  if max_ceiling < min_ceiling then invalid_arg "Bucket.pow2: max_ceiling < min_ceiling";
  Pow2 { min_ceiling; max_ceiling }

let explicit bs =
  let bs = List.sort_uniq compare bs in
  if bs = [] then invalid_arg "Bucket.explicit: empty boundary list";
  if List.exists (fun b -> b < 1) bs then
    invalid_arg "Bucket.explicit: non-positive boundary";
  Explicit bs

let default = pow2 ()

let next_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let ceiling t len =
  if len < 1 then invalid_arg "Bucket.ceiling: len < 1";
  match t with
  | Pow2 { min_ceiling; max_ceiling } ->
      if len <= min_ceiling then min_ceiling
      else if len > max_ceiling then len
      else
        (* the largest boundary is the biggest power of two <= max_ceiling;
           lengths above it (possible when max_ceiling is not a power of
           two) compile exactly, same as lengths above max_ceiling *)
        let p = next_pow2 len in
        if p > max_ceiling then len else p
  | Explicit bs -> (
      match List.find_opt (fun b -> b >= len) bs with
      | Some b -> b
      | None -> len)

let boundaries = function
  | Explicit bs -> bs
  | Pow2 { min_ceiling; max_ceiling } ->
      let rec above p acc =
        if p > max_ceiling then List.rev acc
        else above (p * 2) (p :: acc)
      in
      min_ceiling :: above (next_pow2 (min_ceiling + 1)) []

let equal a b =
  match (a, b) with
  | Pow2 x, Pow2 y -> x.min_ceiling = y.min_ceiling && x.max_ceiling = y.max_ceiling
  | Explicit x, Explicit y -> x = y
  | _ -> false

let canonical = function
  | Pow2 { min_ceiling; max_ceiling } ->
      Printf.sprintf "buckets.v1(pow2:%d:%d)" min_ceiling max_ceiling
  | Explicit bs ->
      Printf.sprintf "buckets.v1(list:%s)"
        (String.concat "," (List.map string_of_int bs))

let of_canonical s =
  let fail () = Error (Printf.sprintf "Bucket.of_canonical: cannot parse %S" s) in
  let prefix = "buckets.v1(" in
  if not (String.length s > String.length prefix + 1
          && String.sub s 0 (String.length prefix) = prefix
          && s.[String.length s - 1] = ')')
  then fail ()
  else
    let body =
      String.sub s (String.length prefix)
        (String.length s - String.length prefix - 1)
    in
    match String.split_on_char ':' body with
    | [ "pow2"; mn; mx ] -> (
        match (int_of_string_opt mn, int_of_string_opt mx) with
        | Some mn, Some mx when 1 <= mn && mn <= mx ->
            Ok (Pow2 { min_ceiling = mn; max_ceiling = mx })
        | _ -> fail ())
    | [ "list"; bs ] -> (
        let parts = String.split_on_char ',' bs in
        let ints = List.filter_map int_of_string_opt parts in
        if List.length ints <> List.length parts || ints = [] then fail ()
        else
          match explicit ints with
          | t ->
              (* canonical lists are already sorted/deduped; reject otherwise
                 so canonical/of_canonical is a strict bijection *)
              if canonical t = s then Ok t else fail ()
          | exception Invalid_argument _ -> fail ())
    | _ -> fail ()

let of_string s =
  let s = String.trim s in
  let fail () =
    Error
      (Printf.sprintf
         "cannot parse bucket policy %S (want pow2[:MIN[:MAX]] or a comma \
          list like 32,64,128)"
         s)
  in
  if String.length s > 10 && String.sub s 0 10 = "buckets.v1" then of_canonical s
  else
    match String.split_on_char ':' s with
    | [ "pow2" ] -> Ok (pow2 ())
    | [ "pow2"; mn ] -> (
        match int_of_string_opt mn with
        | Some mn when mn >= 1 -> Ok (pow2 ~min_ceiling:mn ())
        | _ -> fail ())
    | [ "pow2"; mn; mx ] -> (
        match (int_of_string_opt mn, int_of_string_opt mx) with
        | Some mn, Some mx when 1 <= mn && mn <= mx ->
            Ok (pow2 ~min_ceiling:mn ~max_ceiling:mx ())
        | _ -> fail ())
    | [ _ ] -> (
        let parts = String.split_on_char ',' s in
        let ints = List.filter_map int_of_string_opt parts in
        if List.length ints <> List.length parts || ints = [] then fail ()
        else
          match explicit ints with
          | t -> Ok t
          | exception Invalid_argument _ -> fail ())
    | _ -> fail ()

let to_string = function
  | Pow2 { min_ceiling; max_ceiling } ->
      Printf.sprintf "pow2:%d:%d" min_ceiling max_ceiling
  | Explicit bs -> String.concat "," (List.map string_of_int bs)
