(** Graceful degradation for the solve path. The paper assumes Gurobi always
    returns the optimum and that every array is healthy; neither survives
    contact with real hardware or real node budgets. This module owns the
    fallback ladder

    {v MILP Optimal -> node-limited incumbent -> Greedy.solve -> serial v}

    and the structured report the pipeline returns instead of raising. *)

(** How a segment's allocation was obtained, best to worst. *)
type stage =
  | Milp_optimal       (** the MIP proved optimality — not a degradation *)
  | Milp_incumbent     (** node-limited; the feasible incumbent was kept *)
  | Greedy_fallback    (** solver yielded nothing usable; greedy allocation *)
  | Serial_fallback    (** segmentation itself failed; one operator per segment *)

type event = { lo : int; hi : int; stage : stage; detail : string }

type report = {
  total_arrays : int;          (** physical arrays on the chip *)
  healthy_arrays : int;        (** flexible pool the solver planned against *)
  events : event list;         (** every non-optimal allocation, in order *)
  diagnostics : string list;   (** static flow-validator findings, if run *)
}

val empty_report : total:int -> healthy:int -> report

val degraded : report -> bool
(** True when any fallback fired, arrays were masked out, or the validator
    complained. *)

val stage_to_string : stage -> string

val count_stage : stage -> unit
(** Bump the [compile.alloc.*] ladder counter for a stage (no-op when
    {!Cim_obs.Metrics} is disabled). {!solve} does this itself; the serial
    path in [Cmswitch.compile_serial] builds its events by hand and calls
    this directly. *)

val budget_spent : started:float -> budget:float option -> bool
(** Wall-clock compile-budget check for online recompilation: [true] once
    [budget] seconds have elapsed since [started] (a [Unix.gettimeofday]
    stamp); a [None] budget is never spent. Centralised here so every
    ladder consumer ([Cmswitch.recompile], the serving CLI) applies the
    same semantics: spent budget means jump to the {e cheapest} level, not
    give up. *)

val count_recompile : level:int -> unit
(** Bump the online-recompile counters ([compile.recompile.total] plus the
    per-ladder-level [compile.recompile.level<N>]); no-op when
    {!Cim_obs.Metrics} is disabled. *)

val pp : Format.formatter -> report -> unit

val solve :
  ?options:Alloc.options -> ?on_stage:(event -> unit) -> Cim_arch.Chip.t ->
  Opinfo.t array -> lo:int -> hi:int -> Plan.seg_plan option
(** The per-segment chain: MIP optimum when the search completes; otherwise
    the better of the feasible incumbent and {!Greedy.solve}; greedy alone
    when the search truncates empty-handed. [None] only when the segment is
    genuinely infeasible (minimum arrays exceed the chip). [on_stage] fires
    for every non-[Milp_optimal] outcome. *)
