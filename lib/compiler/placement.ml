module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode
module Faultmap = Cim_arch.Faultmap

type op_place = {
  uid : int;
  compute : Chip.coord list;
  in_place : Chip.coord list;
  mem_in : Chip.coord list;
  mem_out : Chip.coord list;
}

type seg_place = {
  plan : Plan.seg_plan;
  ops : op_place list;
  to_compute : Chip.coord list;
  to_memory : Chip.coord list;
}

(* Take [n] indices out of [pool] (a bool array of free arrays) that [can]
   serve the requested mode, preferring indices for which [prefer] holds —
   i.e. arrays already in the right mode. *)
let take pool ~can ~prefer n =
  let out = ref [] and remaining = ref n in
  let scan want_preferred =
    let i = ref 0 in
    while !remaining > 0 && !i < Array.length pool do
      if pool.(!i) && can !i && prefer !i = want_preferred then begin
        pool.(!i) <- false;
        out := !i :: !out;
        decr remaining
      end;
      incr i
    done
  in
  scan true;
  scan false;
  if !remaining > 0 then
    failwith
      (Printf.sprintf "Placement: chip capacity exceeded (%d arrays short)"
         !remaining);
  List.rev !out

(* Take specific indices if still free and usable; returns the subset
   obtained. *)
let take_specific pool ~can idxs =
  List.filter
    (fun i ->
      if i >= 0 && i < Array.length pool && pool.(i) && can i then begin
        pool.(i) <- false;
        true
      end
      else false)
    idxs

let place chip ?(initial_mode = Mode.Memory) ?faults (ops : Opinfo.t array)
    (plans : Plan.seg_plan list) =
  let n = chip.Chip.n_arrays in
  let usable target i =
    match faults with
    | None -> true
    | Some fm -> Faultmap.usable fm i ~target
  in
  let alive i =
    match faults with None -> true | Some fm -> not (Faultmap.is_dead fm i)
  in
  let can_compute = usable Mode.Compute and can_memory = usable Mode.Memory in
  (* stuck arrays live permanently in their stuck mode; the mode map must
     say so or the switch lists would try to move them *)
  let mode =
    Array.init n (fun i ->
        match faults with
        | None -> initial_mode
        | Some fm -> begin
          match Faultmap.fault_at fm i with
          | Some (Faultmap.Stuck_mode m) -> m
          | Some Faultmap.Dead | Some (Faultmap.Transient_switch_failure _)
          | None -> initial_mode
        end)
  in
  let coord i = Chip.coord_of_index chip i in
  (* producer uid -> array indices holding its output at the end of the
     previous segment (candidates for the in-place K-cache switch) *)
  let prev_mem_out : (int, int list) Hashtbl.t = Hashtbl.create 8 in
  List.map
    (fun (plan : Plan.seg_plan) ->
      let free = Array.init n alive in
      let is_compute i = mode.(i) = Mode.Compute in
      let is_memory i = mode.(i) = Mode.Memory in
      (* Per-op assignment in uid (topological) order: compute arrays prefer
         already-compute coordinates, memory buffers already-memory ones.
         A consumer's shared input buffers are drawn from the producer's
         already-placed output pool (Eq. 6 realised in place); the MIP's
         strengthened reuse constraints guarantee the pools are large
         enough. *)
      let mem_out_pool = Hashtbl.create 8 in
      let ops_placed =
        List.map
          (fun (a : Plan.op_alloc) ->
            let info = ops.(a.Plan.uid) in
            (* §5.3: a dynamic matmul's stationary operand (the K/V cache)
               may already sit in a previous segment's output buffers —
               claim those arrays as compute arrays and skip reprogramming *)
            let in_place =
              if info.Opinfo.kind = Cim_models.Intensity.Dynamic_matmul then begin
                let candidates =
                  List.concat_map
                    (fun d ->
                      Option.value (Hashtbl.find_opt prev_mem_out d) ~default:[])
                    info.Opinfo.deps
                in
                let capped = List.filteri (fun i _ -> i < a.Plan.com) candidates in
                take_specific free ~can:can_compute capped
              end
              else []
            in
            let compute_extra =
              take free ~can:can_compute ~prefer:is_compute
                (a.Plan.com - List.length in_place)
            in
            let mem_out =
              take free ~can:can_memory ~prefer:is_memory a.Plan.mem_out
            in
            Hashtbl.replace mem_out_pool a.Plan.uid mem_out;
            let shared_in =
              List.concat_map
                (fun (i, j, r) ->
                  if j <> a.Plan.uid then []
                  else
                    let pool =
                      Option.value (Hashtbl.find_opt mem_out_pool i) ~default:[]
                    in
                    List.filteri (fun k _ -> k < r) pool)
                plan.Plan.reuse
            in
            let shared_in = List.sort_uniq compare shared_in in
            let mem_in_extra =
              take free ~can:can_memory ~prefer:is_memory
                (max 0 (a.Plan.mem_in - List.length shared_in))
            in
            {
              uid = a.Plan.uid;
              compute = List.map coord (in_place @ compute_extra);
              in_place = List.map coord in_place;
              mem_in = List.map coord (List.sort compare (shared_in @ mem_in_extra));
              mem_out = List.map coord mem_out;
            })
          plan.Plan.allocs
      in
      (* realised switches: whatever assignment disagrees with the current
         mode map *)
      let to_compute = ref [] and to_memory = ref [] in
      let claim target cs =
        List.iter
          (fun c ->
            let i = Chip.index_of_coord chip c in
            if mode.(i) <> target then begin
              (match target with
              | Mode.Compute -> to_compute := c :: !to_compute
              | Mode.Memory -> to_memory := c :: !to_memory);
              mode.(i) <- target
            end)
          cs
      in
      List.iter
        (fun op ->
          claim Mode.Compute op.compute;
          claim Mode.Memory op.mem_in;
          claim Mode.Memory op.mem_out)
        ops_placed;
      (* the next segment sees this one's output buffers *)
      Hashtbl.reset prev_mem_out;
      List.iter
        (fun op ->
          Hashtbl.replace prev_mem_out op.uid
            (List.map (Chip.index_of_coord chip) op.mem_out))
        ops_placed;
      { plan; ops = ops_placed; to_compute = List.rev !to_compute;
        to_memory = List.rev !to_memory })
    plans

let realized_switches places =
  List.fold_left
    (fun (m2c, c2m) sp ->
      (m2c + List.length sp.to_compute, c2m + List.length sp.to_memory))
    (0, 0) places
