(** Key derivation and payload (de)serialisation for the two compilation
    cache tiers (see docs/ARCHITECTURE.md §11).

    Keys are canonical strings — byte-identical across runs and processes —
    hashed by {!Cim_cache.Store} into entry addresses. Floats are rendered
    with [%h] (exact binary64 hex) so no precision is lost and no locale or
    shortest-round-trip printer can drift the key.

    Payloads travel as JSON ({!Cim_obs.Json}; no [Marshal], so a payload
    from another compiler version parses or fails cleanly, never
    segfaults). Deserialisation is defensive: any missing field, wrong
    type, or out-of-range index is an [Error], which callers turn into a
    cache miss. Segment plans are stored {e normalised} to [lo = 0] (so
    identical windows share an entry wherever they sit in the network) and
    without their [intra_cycles] — the loader recomputes the latency from
    the cost model, so a corrupted float cannot perturb the DP. *)

(** {2 Canonical key fragments} *)

val chip_canonical : Cim_arch.Chip.t -> string
(** Every solver-visible chip parameter, in fixed field order. *)

val faults_canonical : Cim_arch.Faultmap.t option -> string
(** The full fault assignment (coordinates, kinds, probabilities);
    ["faults:none"] when healthy. *)

val alloc_canonical : Alloc.options -> string

val backend_to_string : Cim_solver.Milp.backend -> string

val backend_of_string : string -> Cim_solver.Milp.backend option

(** {2 Per-segment tier} *)

val seg_tier : string
(** Tier name ["seg"]. *)

val seg_key :
  chip:Cim_arch.Chip.t -> alloc:Alloc.options -> signature:string -> string
(** Key of one solved window: the structural window signature
    ({!Segment.run}'s memo key: per-op cost constants and intra-window
    dependency pattern) under the effective chip and allocation options that
    produced the solution. *)

val seg_payload_to_string : Plan.seg_plan option -> string
(** [None] records a genuinely infeasible window — caching infeasibility
    avoids re-proving it. The plan must already be normalised to [lo = 0]
    (see {!normalize_plan}). *)

val seg_payload_of_string :
  chip:Cim_arch.Chip.t -> ops:Opinfo.t array -> lo:int -> hi:int -> string ->
  (Plan.seg_plan option, string) result
(** Decode and {e validate} a cached window solution against the live
    window [ops.(lo..hi)]: shape (one alloc per operator, uids in order),
    reuse triples in range and bounded by the allocs they connect, and
    {!Alloc.plan_feasible} on the re-anchored plan. The result is shifted
    to [lo..hi] with [intra_cycles] recomputed from the cost model.
    [Ok None] replays a cached infeasibility verdict. *)

val normalize_plan : Plan.seg_plan -> Plan.seg_plan
(** Re-anchor a plan at [lo = 0] for storage. *)

val revalidate_plan :
  chip:Cim_arch.Chip.t -> ops:Opinfo.t array -> Plan.seg_plan ->
  (Plan.seg_plan, string) result
(** Validate a plan anchored at its own [lo..hi] against the live operator
    list and chip, recomputing [intra_cycles] from the cost model. Used by
    both tiers before a cached plan is trusted. *)

(** {2 Whole-program tier} *)

val prog_tier : string
(** Tier name ["prog"]. *)

val prog_key :
  ?shape:string -> graph_text:string -> chip:Cim_arch.Chip.t ->
  faults:Cim_arch.Faultmap.t option -> config:string -> passes:string ->
  unit -> string
(** Key of one whole compilation: canonical graph text
    ({!Cim_nnir.Text.to_string}), chip, fault map, the canonical
    unified-config serialisation ([Cmswitch.Config.canonical]), the active
    pass-list fingerprint ([Passes.fingerprint], a ["passes.v1[...]"]
    line — a reordered or customised pipeline can never replay a program
    cached under a different one), and an optional versioned shape
    fragment. When a bucket policy is active the caller passes [?shape] as
    a ["shape.v1(...)"] line keyed on the bucket ceiling (never the raw
    length), so every length inside a bucket derives the same key; without
    bucketing the fragment is the literal ["shape:none"]. *)

type prog_payload = {
  segments : Plan.seg_plan list;  (** the chosen segmentation, in order *)
  program_md5 : string;           (** MD5 hex of {!Cim_metaop.Flow.to_string} of the
                                      emitted program — replay regenerates the text
                                      and must reproduce this digest exactly *)
  mip_solves : int;
  mip_cache_hits : int;
  candidates : int;
  pruned_infeasible : int;
  events : Degrade.event list;    (** degradation ladder events to replay *)
}

val prog_payload_to_string : prog_payload -> string

val prog_payload_of_string : string -> (prog_payload, string) result
(** Structural decode only. The caller must still re-derive placement and
    code generation from [segments] and re-validate with
    {!Cim_metaop.Check} before trusting the entry. *)
