module Chip = Cim_arch.Chip
module Faultmap = Cim_arch.Faultmap
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module B = Cim_nnir.Builder
module Shape = Cim_tensor.Shape
module Kernels = Cim_tensor.Kernels
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics
module J = Cim_obs.Json
module Store = Cim_cache.Store

let log_src = Logs.Src.create "cmswitch" ~doc:"CMSwitch compilation pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

module Config = struct
  type t = {
    partition_fraction : float;
    max_segment_ops : int;
    memoize : bool;
    jobs : int;
    milp_max_nodes : int;
    refine : bool;
    force_all_compute : bool;
    lp_backend : Cim_solver.Milp.backend;
    tensor_backend : Kernels.backend;
    buckets : Bucket.t option;
    faults : Faultmap.t option;
    cache : Store.t option;
  }

  let default =
    {
      partition_fraction = 0.5;
      max_segment_ops = 10;
      memoize = true;
      jobs = Cim_util.Pool.default_jobs ();
      milp_max_nodes = 600;
      refine = true;
      force_all_compute = false;
      lp_backend = Cim_solver.Milp.Revised;
      tensor_backend = Kernels.default_backend ();
      buckets = None;
      faults = None;
      cache = None;
    }

  let with_partition_fraction v t = { t with partition_fraction = v }
  let with_max_segment_ops v t = { t with max_segment_ops = v }
  let with_memoize v t = { t with memoize = v }
  let with_jobs v t = { t with jobs = v }
  let with_milp_max_nodes v t = { t with milp_max_nodes = v }
  let with_refine v t = { t with refine = v }
  let with_force_all_compute v t = { t with force_all_compute = v }
  let with_lp_backend v t = { t with lp_backend = v }
  let with_tensor_backend v t = { t with tensor_backend = v }
  let with_buckets v t = { t with buckets = v }
  let with_faults v t = { t with faults = v }
  let with_cache v t = { t with cache = v }
  let with_cache_dir dir t = { t with cache = Some (Store.open_dir dir) }

  let to_alloc_options t =
    {
      Alloc.milp_max_nodes = t.milp_max_nodes;
      refine = t.refine;
      force_all_compute = t.force_all_compute;
      lp_backend = t.lp_backend;
    }

  let to_segment_options t =
    {
      Segment.alloc = to_alloc_options t;
      max_segment_ops = t.max_segment_ops;
      memoize = t.memoize;
      jobs = t.jobs;
      cache = t.cache;
    }

  (* The cache-key serialisation: every semantic field in fixed order,
     floats as exact binary64 hex. Excluded by design: [jobs] and
     [tensor_backend] (pure execution strategy under the byte-identical
     determinism contract — both backends produce bit-equal tensors),
     [faults] (a separate key component, see Ccache.prog_key) and [cache]
     (plumbing, not semantics). *)
  let canonical t =
    Printf.sprintf
      "cmswitch.config.v2{partition_fraction=%h;max_segment_ops=%d;memoize=%b;milp_max_nodes=%d;refine=%b;force_all_compute=%b;lp_backend=%s;buckets=%s}"
      t.partition_fraction t.max_segment_ops t.memoize t.milp_max_nodes
      t.refine t.force_all_compute
      (Ccache.backend_to_string t.lp_backend)
      (match t.buckets with
      | None -> "none"
      | Some b -> Bucket.canonical b)

  let of_canonical s =
    let ( let* ) = Result.bind in
    let prefix = "cmswitch.config.v2{" in
    let plen = String.length prefix in
    if
      not
        (String.length s > plen
        && String.sub s 0 plen = prefix
        && s.[String.length s - 1] = '}')
    then Error "not a cmswitch.config.v2 string"
    else begin
      let body = String.sub s plen (String.length s - plen - 1) in
      let fields = String.split_on_char ';' body in
      let field k =
        let p = k ^ "=" in
        match List.find_opt (String.starts_with ~prefix:p) fields with
        | Some f ->
          Ok (String.sub f (String.length p) (String.length f - String.length p))
        | None -> Error (Printf.sprintf "config: missing field %s" k)
      in
      let float_field k =
        let* v = field k in
        match float_of_string_opt v with
        | Some f -> Ok f
        | None -> Error (Printf.sprintf "config: bad float in %s" k)
      in
      let int_field k =
        let* v = field k in
        match int_of_string_opt v with
        | Some i -> Ok i
        | None -> Error (Printf.sprintf "config: bad int in %s" k)
      in
      let bool_field k =
        let* v = field k in
        match bool_of_string_opt v with
        | Some b -> Ok b
        | None -> Error (Printf.sprintf "config: bad bool in %s" k)
      in
      if List.length fields <> 8 then
        Error
          (Printf.sprintf "config: expected 8 fields, got %d"
             (List.length fields))
      else
        let* partition_fraction = float_field "partition_fraction" in
        let* max_segment_ops = int_field "max_segment_ops" in
        let* memoize = bool_field "memoize" in
        let* milp_max_nodes = int_field "milp_max_nodes" in
        let* refine = bool_field "refine" in
        let* force_all_compute = bool_field "force_all_compute" in
        let* backend_s = field "lp_backend" in
        let* lp_backend =
          match Ccache.backend_of_string backend_s with
          | Some b -> Ok b
          | None -> Error ("config: unknown lp_backend " ^ backend_s)
        in
        let* buckets_s = field "buckets" in
        let* buckets =
          if buckets_s = "none" then Ok None
          else
            match Bucket.of_canonical buckets_s with
            | Ok b -> Ok (Some b)
            | Error e -> Error ("config: " ^ e)
        in
        Ok
          {
            default with
            partition_fraction;
            max_segment_ops;
            memoize;
            milp_max_nodes;
            refine;
            force_all_compute;
            lp_backend;
            buckets;
            faults = None;
            cache = None;
          }
    end
end

(* an explicit [faults] argument always wins over [config.faults] *)
let resolve_config ?config ?faults () =
  let cfg = Option.value config ~default:Config.default in
  match faults with
  | None -> cfg
  | Some fm -> { cfg with Config.faults = Some fm }

type result = {
  chip : Chip.t;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array;
  schedule : Plan.schedule;
  places : Placement.seg_place list;
  program : Cim_metaop.Flow.program;
  dp_stats : Segment.stats;
  degradation : Degrade.report;
  compile_seconds : float;
}

(* dp_stats and realised switch counts, mirrored into the metrics registry
   so one compile's telemetry lands next to the solver's own counters *)
let record_compile_metrics (dp : Segment.stats) places (schedule : Plan.schedule)
    ~seconds =
  Metrics.incr ~by:(float_of_int dp.Segment.mip_solves)
    (Metrics.counter "compile.dp.mip_solves");
  Metrics.incr ~by:(float_of_int dp.Segment.mip_cache_hits)
    (Metrics.counter "compile.dp.mip_cache_hits");
  Metrics.incr ~by:(float_of_int dp.Segment.candidates)
    (Metrics.counter "compile.dp.candidates");
  Metrics.incr ~by:(float_of_int dp.Segment.pruned_infeasible)
    (Metrics.counter "compile.dp.pruned_infeasible");
  let m2c, c2m = Placement.realized_switches places in
  Metrics.incr ~by:(float_of_int m2c) (Metrics.counter "compile.switches.m2c");
  Metrics.incr ~by:(float_of_int c2m) (Metrics.counter "compile.switches.c2m");
  Metrics.incr ~by:(float_of_int (List.length schedule.Plan.segments))
    (Metrics.counter "compile.segments");
  Metrics.set_gauge (Metrics.gauge "compile.schedule.total_cycles")
    schedule.Plan.total_cycles;
  Cim_obs.Metrics.observe (Metrics.histogram "compile.seconds") seconds

let env_of_cfg ?frontiers ?frontier_tag ?on_stage cfg chip =
  Passes.make_env ?faults:cfg.Config.faults ?frontiers ?frontier_tag ?on_stage
    ~partition_fraction:cfg.Config.partition_fraction
    ~seg_options:(Config.to_segment_options cfg) chip

let healthy_of ?faults (chip : Chip.t) =
  match faults with
  | None -> chip.Chip.n_arrays
  | Some fm -> Faultmap.flexible_count fm

(* Project the final pipeline state onto the historical result record; a
   pipeline that never ran codegen fails here with the producing pass
   named (via the _exn accessors). *)
let result_of_state ~events ~compile_seconds (st : Passes.state) =
  let chip = st.Passes.env.Passes.chip in
  let faults = st.Passes.env.Passes.faults in
  let diagnostics = Option.value st.Passes.diagnostics ~default:[] in
  let degradation =
    { (Degrade.empty_report ~total:chip.Chip.n_arrays
         ~healthy:(healthy_of ?faults chip))
      with
      Degrade.events = List.rev events;
      diagnostics }
  in
  let dp_stats = Passes.dp_stats_exn st in
  let places = Passes.places_exn st in
  let schedule = Passes.schedule_exn st in
  record_compile_metrics dp_stats places schedule ~seconds:compile_seconds;
  {
    chip;
    graph = st.Passes.graph;
    ops = Passes.ops_exn st;
    schedule;
    places;
    program = Passes.program_exn st;
    dp_stats;
    degradation;
    compile_seconds;
  }

let compile_uncached ~cfg ?frontiers ?frontier_tag
    ?(passes = Passes.default_pipeline) ?(validate_each = false) ?on_pass chip
    graph =
  let t0 = Unix.gettimeofday () in
  Log.debug (fun m ->
      m "compiling %s on %s" graph.Cim_nnir.Graph.graph_name chip.Chip.name);
  (* the solver plans against the flexible pool only; placement runs on the
     real chip with the fault map masking unusable coordinates *)
  (match cfg.Config.faults with
  | Some fm when Faultmap.fault_count fm > 0 ->
    Log.warn (fun m ->
        m "compiling around %d faulty arrays (%d/%d freely assignable)"
          (Faultmap.fault_count fm)
          (Faultmap.flexible_count fm)
          chip.Chip.n_arrays)
  | _ -> ());
  let events = ref [] in
  let on_stage (e : Degrade.event) =
    Log.warn (fun m ->
        m "ops [%d..%d] degraded to %s: %s" e.Degrade.lo e.Degrade.hi
          (Degrade.stage_to_string e.Degrade.stage) e.Degrade.detail);
    events := e :: !events
  in
  let env = env_of_cfg ?frontiers ?frontier_tag ~on_stage cfg chip in
  let st =
    Passes.run_pipeline ~validate_each ?on_pass passes (Passes.init env graph)
  in
  result_of_state ~events:!events
    ~compile_seconds:(Unix.gettimeofday () -. t0)
    st

(* Rebuild a full result from a cached segmentation by running the live
   deterministic passes (extraction, placement, schedule roll-up, codegen)
   — the cached entry only decides WHICH feasible segmentation is used, so
   a warm compile is byte-identical to the cold one that stored it. The
   replay is itself a pass pipeline: the cached segmentation slots into
   the [segment] position as a revalidation pass, and a digest-compare
   pass guards codegen's output. Raises [Failure] (-> cache miss, caught
   by [prog_cache_find]) whenever anything about the entry fails to
   reproduce a clean compile. *)
let replay_pipeline (p : Ccache.prog_payload) =
  let p_revalidate =
    {
      Passes.name = "cache_revalidate";
      describe = "slot the cached segmentation in, revalidated per window";
      run =
        (fun st ->
          let ops = Passes.ops_exn st in
          let m = Array.length ops in
          let rec tile expect = function
            | [] -> expect = m
            | (s : Plan.seg_plan) :: rest ->
              s.Plan.lo = expect && s.Plan.hi >= s.Plan.lo
              && tile (s.Plan.hi + 1) rest
          in
          if not (tile 0 p.Ccache.segments) then
            failwith "cached segments do not tile the operator list";
          let segments =
            Trace.with_span "cache.revalidate" ~cat:"cache" (fun () ->
                List.map
                  (fun s ->
                    match
                      Ccache.revalidate_plan
                        ~chip:st.Passes.env.Passes.solve_chip ~ops s
                    with
                    | Ok s -> s
                    | Error e -> failwith e)
                  p.Ccache.segments)
          in
          let dp_stats =
            { Segment.mip_solves = p.Ccache.mip_solves;
              mip_cache_hits = p.Ccache.mip_cache_hits;
              candidates = p.Ccache.candidates;
              pruned_infeasible = p.Ccache.pruned_infeasible }
          in
          { st with Passes.segments = Some segments; dp_stats = Some dp_stats });
      validate = None;
    }
  in
  let p_compare =
    {
      Passes.name = "cache_compare";
      describe = "regenerated program must match the cached digest";
      run =
        (fun st ->
          let program = Passes.program_exn st in
          if
            Trace.with_span "cache.compare" ~cat:"cache" (fun () ->
                Digest.to_hex
                  (Digest.string (Cim_metaop.Flow.to_string program))
                <> p.Ccache.program_md5)
          then failwith "regenerated program differs from cached program digest";
          st);
      validate = None;
    }
  in
  let p_check_strict =
    {
      Passes.p_check with
      Passes.name = "check_strict";
      run =
        (fun st ->
          let st = Passes.p_check.Passes.run st in
          (match Passes.diagnostics_exn st with
          | [] -> ()
          | d :: _ -> failwith ("flow validator rejected cached program: " ^ d));
          st);
    }
  in
  [ Passes.p_extract; p_revalidate; Passes.p_place; Passes.p_schedule;
    Passes.p_codegen; p_compare; p_check_strict ]

let replay_program ~cfg chip graph (p : Ccache.prog_payload) =
  let env = env_of_cfg cfg chip in
  let st =
    Passes.run_pipeline (replay_pipeline p) (Passes.init env graph)
  in
  let faults = cfg.Config.faults in
  let degradation =
    { (Degrade.empty_report ~total:chip.Chip.n_arrays
         ~healthy:(healthy_of ?faults chip))
      with
      Degrade.events = p.Ccache.events;
      diagnostics = [] }
  in
  {
    chip;
    graph;
    ops = Passes.ops_exn st;
    schedule = Passes.schedule_exn st;
    places = Passes.places_exn st;
    program = Passes.program_exn st;
    dp_stats = Passes.dp_stats_exn st;
    degradation;
    compile_seconds = 0.;
  }

let prog_cache_key ?shape ~cfg ~passes chip graph =
  Trace.with_span "cache.key" ~cat:"cache" (fun () ->
      Ccache.prog_key ?shape
        ~graph_text:(Cim_nnir.Text.to_string graph)
        ~chip ~faults:cfg.Config.faults
        ~config:(Config.canonical cfg)
        ~passes:(Passes.fingerprint passes) ())

let prog_cache_find ?shape ~cfg ~passes chip graph =
  match cfg.Config.cache with
  | None -> None
  | Some store -> (
    let key = prog_cache_key ?shape ~cfg ~passes chip graph in
    match Store.find store ~tier:Ccache.prog_tier ~key with
    | None -> None
    | Some payload -> (
      let invalid e =
        Log.warn (fun m -> m "program cache entry rejected: %s" e);
        Store.note_invalid store ~tier:Ccache.prog_tier;
        None
      in
      match
        Trace.with_span "cache.decode" ~cat:"cache" (fun () ->
            Ccache.prog_payload_of_string payload)
      with
      | Error e -> invalid e
      | Ok p -> (
        match replay_program ~cfg chip graph p with
        | r -> Some r
        | exception (Failure e | Invalid_argument e) -> invalid e
        | exception Opinfo.Unsupported e -> invalid ("unsupported graph: " ^ e))))

(* cache only clean results: no flow-validator findings means the program
   can be trusted wholesale after the (cheap) replay validation *)
let prog_cache_store ?shape ~cfg ~passes chip graph (r : result) =
  match cfg.Config.cache with
  | None -> ()
  | Some store ->
    if r.degradation.Degrade.diagnostics = [] then
      let payload =
        {
          Ccache.segments = List.map (fun sp -> sp.Placement.plan) r.places;
          program_md5 =
            Digest.to_hex (Digest.string (Cim_metaop.Flow.to_string r.program));
          mip_solves = r.dp_stats.Segment.mip_solves;
          mip_cache_hits = r.dp_stats.Segment.mip_cache_hits;
          candidates = r.dp_stats.Segment.candidates;
          pruned_infeasible = r.dp_stats.Segment.pruned_infeasible;
          events = r.degradation.Degrade.events;
        }
      in
      Store.put store ~tier:Ccache.prog_tier
        ~key:(prog_cache_key ?shape ~cfg ~passes chip graph)
        ~payload:(Ccache.prog_payload_to_string payload)

let compile ?config ?faults ?shape ?frontiers ?frontier_tag
    ?(passes = Passes.default_pipeline) ?validate_each ?on_pass chip graph =
  let cfg = resolve_config ?config ?faults () in
  let t0 = Unix.gettimeofday () in
  Trace.with_span "compile" ~cat:"compiler"
    ~args:
      [ ("graph", J.String graph.Cim_nnir.Graph.graph_name);
        ("chip", J.String chip.Chip.name) ]
  @@ fun () ->
  match prog_cache_find ?shape ~cfg ~passes chip graph with
  | Some r ->
    let compile_seconds = Unix.gettimeofday () -. t0 in
    record_compile_metrics r.dp_stats r.places r.schedule
      ~seconds:compile_seconds;
    { r with compile_seconds }
  | None ->
    let r =
      compile_uncached ~cfg ?frontiers ?frontier_tag ~passes ?validate_each
        ?on_pass chip graph
    in
    prog_cache_store ?shape ~cfg ~passes chip graph r;
    r

(* Last-resort serial schedule: the serial pipeline — one operator per
   segment, greedy allocation, no DP and no MIP. Used when the normal
   pipeline cannot produce a plan at all. Never consulted from / stored
   into the cache. *)
let compile_serial ~cfg chip graph events =
  let t0 = Unix.gettimeofday () in
  Trace.with_span "compile.serial" ~cat:"compiler"
    ~args:[ ("graph", J.String graph.Cim_nnir.Graph.graph_name) ]
  @@ fun () ->
  let on_stage (e : Degrade.event) = events := e :: !events in
  let env = env_of_cfg ~on_stage cfg chip in
  let st = Passes.run_pipeline Passes.serial_pipeline (Passes.init env graph) in
  result_of_state ~events:!events
    ~compile_seconds:(Unix.gettimeofday () -. t0)
    st

let compile_robust ?config ?faults chip graph =
  let cfg = resolve_config ?config ?faults () in
  match compile ~config:cfg chip graph with
  | r -> Ok r
  | exception (Failure first_error | Invalid_argument first_error) -> begin
    Log.warn (fun m ->
        m "pipeline failed (%s); retrying with serial single-op segments"
          first_error);
    let events =
      ref
        [ { Degrade.lo = 0; hi = 0; stage = Degrade.Serial_fallback;
            detail = "pipeline failed: " ^ first_error } ]
    in
    match compile_serial ~cfg chip graph events with
    | r -> Ok r
    | exception (Failure second_error | Invalid_argument second_error) ->
      let healthy = healthy_of ?faults:cfg.Config.faults chip in
      Error
        { (Degrade.empty_report ~total:chip.Chip.n_arrays ~healthy) with
          Degrade.events = List.rev !events;
          diagnostics =
            [ "pipeline: " ^ first_error; "serial fallback: " ^ second_error ] }
  end

type recompile_outcome = {
  rc_result : result;
  rc_level : int;
  rc_attempts : int;
  rc_seconds : float;
}

(* The online recompile ladder: progressively cheaper configs of the same
   compilation, ending at the serial single-operator path. Levels whose
   config collapses to an earlier one (the caller already compiles with a
   tiny node budget, say) are skipped so an attempt is never wasted on a
   duplicate. *)
let recompile_ladder cfg =
  let levels =
    [ (0, cfg);
      (1, Config.with_milp_max_nodes (min cfg.Config.milp_max_nodes 32) cfg);
      (2, cfg |> Config.with_milp_max_nodes 1 |> Config.with_refine false) ]
  in
  let rec dedupe seen = function
    | [] -> []
    | (lvl, c) :: rest ->
      let key = Config.canonical c in
      if List.mem key seen then dedupe seen rest
      else (lvl, c) :: dedupe (key :: seen) rest
  in
  dedupe [] levels

let serial_level = 3

let recompile ?config ?budget_seconds ?(start_level = 0) chip graph =
  (match budget_seconds with
  | Some b when (not (Float.is_finite b)) || b < 0. ->
    invalid_arg "Cmswitch.recompile: budget_seconds must be non-negative"
  | _ -> ());
  if start_level < 0 || start_level > serial_level then
    invalid_arg
      (Printf.sprintf "Cmswitch.recompile: start_level %d outside [0, %d]"
         start_level serial_level);
  let cfg = resolve_config ?config () in
  let t0 = Unix.gettimeofday () in
  let attempts = ref 0 in
  let failures = ref [] (* newest first, like compile_serial's events *) in
  let finish level r =
    Degrade.count_recompile ~level;
    Ok
      {
        rc_result = r;
        rc_level = level;
        rc_attempts = !attempts;
        rc_seconds = Unix.gettimeofday () -. t0;
      }
  in
  let serial () =
    incr attempts;
    let events =
      ref
        (List.map
           (fun detail ->
             { Degrade.lo = 0; hi = 0; stage = Degrade.Serial_fallback; detail })
           !failures)
    in
    match compile_serial ~cfg chip graph events with
    | r -> finish serial_level r
    | exception (Failure e | Invalid_argument e | Opinfo.Unsupported e) ->
      let healthy = healthy_of ?faults:cfg.Config.faults chip in
      Error
        { (Degrade.empty_report ~total:chip.Chip.n_arrays ~healthy) with
          Degrade.events = List.rev !events;
          diagnostics = List.rev (("serial fallback: " ^ e) :: !failures) }
  in
  let rec descend = function
    | [] -> serial ()
    | (level, c) :: rest ->
      (* a spent budget jumps straight to the cheapest level — degrade,
         don't give up: the fleet needs *a* plan, not the best one *)
      if Degrade.budget_spent ~started:t0 ~budget:budget_seconds then serial ()
      else begin
        incr attempts;
        match compile ~config:c chip graph with
        | r -> finish level r
        | exception (Failure e | Invalid_argument e | Opinfo.Unsupported e) ->
          Log.warn (fun m ->
              m "recompile ladder level %d failed (%s); descending" level e);
          failures := Printf.sprintf "ladder level %d: %s" level e :: !failures;
          descend rest
      end
  in
  descend
    (List.filter (fun (lvl, _) -> lvl >= start_level) (recompile_ladder cfg))

let memory_mode_ratio r =
  match r.schedule.Plan.segments with
  | [] -> 0.
  | segs ->
    let ratios =
      List.map
        (fun s ->
          float_of_int (Plan.mem_total s) /. float_of_int r.chip.Chip.n_arrays)
        segs
    in
    Cim_util.Stats.mean ratios

type model_cost = {
  model : string;
  workload : Workload.t;
  padded_workload : Workload.t;
  bucket_ceiling : int option;
  layer : result option;
  whole : result option;
  head : result option;
  total_cycles : float;
  mem_ratio : float;
  compile_seconds : float;
}

(* The LM-head projection (hidden -> vocab logits) compiled standalone. *)
let head_graph (e : Zoo.entry) (w : Workload.t) =
  match e.Zoo.family with
  | Zoo.Cnn -> None
  | Zoo.Encoder_only | Zoo.Decoder_only ->
    let d, vocab =
      (* recover dims from the analytic entry: hidden size from the layer
         graph input, vocab from params is fragile — rebuild from the known
         configs instead *)
      match e.Zoo.key with
      | "bert-large" -> (1024, 30522)
      | "llama2-7b" -> (4096, 32000)
      | "opt-6.7b" -> (4096, 50272)
      | "opt-13b" -> (5120, 50272)
      | _ -> (1024, 32000)
    in
    let bt = w.Workload.batch * Workload.tokens_this_step w in
    let b = B.create (e.Zoo.key ^ "_head") in
    let x = B.input b "hidden" (Shape.of_list [ bt; d ]) in
    let out = B.linear ~bias:false b x ~in_dim:d ~out_dim:vocab ~prefix:"lm_head" in
    Some (B.finish b ~outputs:[ out ])

(* Bucketed compilation: rebuild the workload at its bucket ceiling and
   compile that graph. The padded (ceiling-shape) program is what executes
   for every length inside the bucket, so its Eq. 10 cost is the honest
   per-step cost — Timing and Drift stay truthful by construction. CNN
   entries ignore sequence length and are never padded. *)
let padded_workload cfg (e : Zoo.entry) (w : Workload.t) =
  match cfg.Config.buckets with
  | Some b when e.Zoo.family <> Zoo.Cnn ->
    let ctx = Workload.context_len w in
    let ceil_ctx = Bucket.ceiling b ctx in
    let w' =
      if ceil_ctx = ctx then w
      else
        match w.Workload.phase with
        | Workload.Prefill _ -> Workload.prefill ~batch:w.Workload.batch ceil_ctx
        | Workload.Decode _ ->
          Workload.decode ~batch:w.Workload.batch (ceil_ctx - 1)
    in
    (w', Some ceil_ctx)
  | _ -> (w, None)

let shape_fragment b ~ceil =
  Printf.sprintf "shape.v1(%s:ceil=%d)" (Bucket.canonical b) ceil

(* defensive check of the padding premise: every tensor of the actual-length
   graph must fit inside its bucket-ceiling counterpart *)
let assert_padding_dominates ~model g_pad g_act =
  match Cim_nnir.Shape_infer.dominates ~over:g_pad ~under:g_act with
  | Ok () -> ()
  | Error e ->
    failwith
      (Printf.sprintf
         "bucketed compile of %s: padded graph does not dominate actual \
          shapes: %s"
         model e)

let compile_model ?config ?faults ?frontiers ?passes ?validate_each ?on_pass
    chip (e : Zoo.entry) w =
  let cfg = resolve_config ?config ?faults () in
  let w', bucket_ceiling = padded_workload cfg e w in
  let padded = Workload.context_len w' <> Workload.context_len w in
  let shape =
    match (cfg.Config.buckets, bucket_ceiling) with
    | Some b, Some c -> Some (shape_fragment b ~ceil:c)
    | _ -> None
  in
  let compile_g ~tag g =
    compile ~config:cfg ?shape ?frontiers ~frontier_tag:tag ?passes
      ?validate_each ?on_pass chip g
  in
  match e.Zoo.layer with
  | None ->
    let g = e.Zoo.build w' in
    if padded then assert_padding_dominates ~model:e.Zoo.display g (e.Zoo.build w);
    let r = compile_g ~tag:"whole" g in
    {
      model = e.Zoo.display;
      workload = w;
      padded_workload = w';
      bucket_ceiling;
      layer = None;
      whole = Some r;
      head = None;
      total_cycles = r.schedule.Plan.total_cycles;
      mem_ratio = memory_mode_ratio r;
      compile_seconds = r.compile_seconds;
    }
  | Some build_layer ->
    let gl = build_layer w' in
    if padded then
      assert_padding_dominates ~model:e.Zoo.display gl (build_layer w);
    let rl = compile_g ~tag:"layer" gl in
    let rh = Option.map (compile_g ~tag:"head") (head_graph e w') in
    let head_cycles =
      match rh with Some r -> r.schedule.Plan.total_cycles | None -> 0.
    in
    let total =
      (float_of_int e.Zoo.n_layers *. rl.schedule.Plan.total_cycles) +. head_cycles
    in
    let head_seconds = match rh with Some r -> r.compile_seconds | None -> 0. in
    {
      model = e.Zoo.display;
      workload = w;
      padded_workload = w';
      bucket_ceiling;
      layer = Some rl;
      whole = None;
      head = rh;
      total_cycles = total;
      mem_ratio = memory_mode_ratio rl;
      compile_seconds = rl.compile_seconds +. head_seconds;
    }

(* --- compilation sessions: the decode-loop fast path ---------------------- *)

type session = {
  s_config : Config.t;
  s_chip : Chip.t;
  s_entry : Zoo.entry;
  s_frontiers : Segment.frontier_state;
  s_memo : (string, model_cost) Hashtbl.t;
}

type step = {
  step_cost : model_cost;
  step_ceiling : int;
  step_recompiled : bool;
  step_prefix_reused : int;
  step_seconds : float;
}

let session ?(config = Config.default) chip e =
  {
    s_config = config;
    s_chip = chip;
    s_entry = e;
    s_frontiers = Segment.frontier_state ();
    s_memo = Hashtbl.create 32;
  }

let session_step s w =
  let w', bucket_ceiling = padded_workload s.s_config s.s_entry w in
  let step_ceiling =
    match bucket_ceiling with
    | Some c -> c
    | None -> Workload.context_len w'
  in
  let key = Workload.to_string w' in
  match Hashtbl.find_opt s.s_memo key with
  | Some mc ->
    {
      step_cost = { mc with workload = w };
      step_ceiling;
      step_recompiled = false;
      step_prefix_reused = 0;
      step_seconds = 0.;
    }
  | None ->
    let t0 = Unix.gettimeofday () in
    let reused_before = fst (Segment.reuse_counters s.s_frontiers) in
    let mc =
      compile_model ~config:s.s_config ~frontiers:s.s_frontiers s.s_chip
        s.s_entry w
    in
    let reused_after = fst (Segment.reuse_counters s.s_frontiers) in
    Hashtbl.replace s.s_memo key mc;
    {
      step_cost = mc;
      step_ceiling;
      step_recompiled = true;
      step_prefix_reused = reused_after - reused_before;
      step_seconds = Unix.gettimeofday () -. t0;
    }
