module Chip = Cim_arch.Chip
module Faultmap = Cim_arch.Faultmap
module Mode = Cim_arch.Mode
module J = Cim_obs.Json

(* Canonical strings use %h for floats: exact binary64, stable across
   printers and processes. Versioned prefixes let a format change invalidate
   every old key at once instead of mis-parsing it. *)

let chip_canonical (c : Chip.t) =
  Printf.sprintf
    "chip.v1{name=%s;n_arrays=%d;grid_cols=%d;rows=%d;cols=%d;cell_bits=%d;\
     weight_bits=%d;buffer_bytes=%d;internal_bw=%h;extern_bw=%h;op_cim=%h;\
     d_cim=%h;l_m2c=%h;l_c2m=%h;write_latency=%h;switch_method=%s;freq_mhz=%h}"
    c.Chip.name c.Chip.n_arrays c.Chip.grid_cols c.Chip.rows c.Chip.cols
    c.Chip.cell_bits c.Chip.weight_bits c.Chip.buffer_bytes c.Chip.internal_bw
    c.Chip.extern_bw c.Chip.op_cim c.Chip.d_cim c.Chip.l_m2c c.Chip.l_c2m
    c.Chip.write_latency c.Chip.switch_method c.Chip.freq_mhz

let fault_canonical (c : Chip.coord) (f : Faultmap.fault) =
  let kind =
    match f with
    | Faultmap.Dead -> "dead"
    | Faultmap.Stuck_mode Mode.Compute -> "stuck=compute"
    | Faultmap.Stuck_mode Mode.Memory -> "stuck=memory"
    | Faultmap.Transient_switch_failure p -> Printf.sprintf "transient=%h" p
  in
  Printf.sprintf "(%d,%d):%s" c.Chip.x c.Chip.y kind

let faults_canonical = function
  | None -> "faults:none"
  | Some fm ->
    Printf.sprintf "faults.v1[%s]"
      (String.concat ";" (List.map (fun (c, f) -> fault_canonical c f)
                            (Faultmap.faults fm)))

let backend_to_string = function
  | Cim_solver.Milp.Revised -> "revised"
  | Cim_solver.Milp.Dense -> "dense"

let backend_of_string = function
  | "revised" -> Some Cim_solver.Milp.Revised
  | "dense" -> Some Cim_solver.Milp.Dense
  | _ -> None

let alloc_canonical (o : Alloc.options) =
  Printf.sprintf
    "alloc.v1{milp_max_nodes=%d;refine=%b;force_all_compute=%b;lp_backend=%s}"
    o.Alloc.milp_max_nodes o.Alloc.refine o.Alloc.force_all_compute
    (backend_to_string o.Alloc.lp_backend)

(* --- per-segment tier ----------------------------------------------------- *)

let seg_tier = "seg"

let seg_key ~chip ~alloc ~signature =
  String.concat "\n"
    [ "seg.v1"; chip_canonical chip; alloc_canonical alloc; signature ]

let plan_to_json (p : Plan.seg_plan) =
  J.Obj
    [ ("lo", J.Int p.Plan.lo);
      ("hi", J.Int p.Plan.hi);
      ( "allocs",
        J.List
          (List.map
             (fun (a : Plan.op_alloc) ->
               J.List
                 [ J.Int a.Plan.uid; J.Int a.Plan.com; J.Int a.Plan.mem_in;
                   J.Int a.Plan.mem_out ])
             p.Plan.allocs) );
      ( "reuse",
        J.List
          (List.map (fun (i, j, r) -> J.List [ J.Int i; J.Int j; J.Int r ])
             p.Plan.reuse) ) ]

let seg_payload_to_string = function
  | None -> J.to_string (J.Obj [ ("infeasible", J.Bool true) ])
  | Some p -> J.to_string (J.Obj [ ("plan", plan_to_json p) ])

let normalize_plan (p : Plan.seg_plan) =
  let shift = -p.Plan.lo in
  if shift = 0 then p
  else
    { p with
      Plan.lo = 0;
      hi = p.Plan.hi + shift;
      allocs =
        List.map
          (fun (a : Plan.op_alloc) -> { a with Plan.uid = a.Plan.uid + shift })
          p.Plan.allocs;
      reuse = List.map (fun (i, j, r) -> (i + shift, j + shift, r)) p.Plan.reuse }

let ( let* ) = Result.bind

let plan_of_json j =
  let ints = function
    | J.List xs ->
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | J.Int i :: rest -> go (i :: acc) rest
        | _ -> None
      in
      go [] xs
    | _ -> None
  in
  match (J.member "lo" j, J.member "hi" j, J.member "allocs" j, J.member "reuse" j)
  with
  | Some (J.Int lo), Some (J.Int hi), Some (J.List allocs), Some (J.List reuse)
    ->
    let* allocs =
      List.fold_left
        (fun acc a ->
          let* acc = acc in
          match ints a with
          | Some [ uid; com; mem_in; mem_out ] ->
            Ok ({ Plan.uid; com; mem_in; mem_out } :: acc)
          | _ -> Error "malformed alloc quadruple")
        (Ok []) allocs
    in
    let* reuse =
      List.fold_left
        (fun acc r ->
          let* acc = acc in
          match ints r with
          | Some [ i; j; v ] -> Ok ((i, j, v) :: acc)
          | _ -> Error "malformed reuse triple")
        (Ok []) reuse
    in
    Ok
      { Plan.lo; hi; allocs = List.rev allocs; reuse = List.rev reuse;
        intra_cycles = 0. }
  | _ -> Error "missing or ill-typed plan field"

(* Shape validation + latency recomputation of a plan anchored at its own
   [lo..hi]: the cached entry only gets to pick WHICH feasible allocation is
   used; every derived number is recomputed by the live cost model. *)
let revalidate_plan ~chip ~(ops : Opinfo.t array) (p : Plan.seg_plan) =
  let lo = p.Plan.lo and hi = p.Plan.hi in
  if lo < 0 || hi >= Array.length ops || lo > hi then Error "bad plan window"
  else begin
    let n = hi - lo + 1 in
    if List.length p.Plan.allocs <> n then Error "wrong alloc count"
    else begin
      let uids_ok =
        List.for_all2
          (fun (a : Plan.op_alloc) expect -> a.Plan.uid = expect)
          p.Plan.allocs
          (List.init n (fun k -> lo + k))
      in
      if not uids_ok then Error "allocs out of uid order"
      else begin
        let alloc_of uid =
          List.find_opt (fun (a : Plan.op_alloc) -> a.Plan.uid = uid)
            p.Plan.allocs
        in
        let reuse_ok =
          List.for_all
            (fun (i, j, r) ->
              i >= lo && j > i && j <= hi && r >= 0
              && (match alloc_of i with
                 | Some a -> r <= a.Plan.mem_out
                 | None -> false)
              && match alloc_of j with
                 | Some a -> r <= a.Plan.mem_in
                 | None -> false)
            p.Plan.reuse
        in
        if not reuse_ok then Error "reuse triple out of range"
        else begin
          let intra =
            List.fold_left
              (fun acc (a : Plan.op_alloc) ->
                Float.max acc (Alloc.op_latency chip ops.(a.Plan.uid) a))
              0. p.Plan.allocs
          in
          let p = { p with Plan.intra_cycles = intra } in
          if Alloc.plan_feasible chip ops p then Ok p
          else Error "cached plan infeasible for the live chip"
        end
      end
    end
  end

let shift_to ~lo ~hi (p : Plan.seg_plan) =
  { p with
    Plan.lo;
    hi;
    allocs =
      List.map
        (fun (a : Plan.op_alloc) -> { a with Plan.uid = a.Plan.uid + lo })
        p.Plan.allocs;
    reuse = List.map (fun (i, j, r) -> (i + lo, j + lo, r)) p.Plan.reuse }

let seg_payload_of_string ~chip ~ops ~lo ~hi s =
  if lo < 0 || hi >= Array.length ops || lo > hi then Error "bad window"
  else
    match J.of_string s with
    | exception J.Parse_error m -> Error ("unparseable payload: " ^ m)
    | j -> (
      match (J.member "infeasible" j, J.member "plan" j) with
      | Some (J.Bool true), _ -> Ok None
      | _, Some pj ->
        let* p = plan_of_json pj in
        if p.Plan.lo <> 0 || p.Plan.hi <> hi - lo then
          Error "plan window does not match the requested window"
        else
          let* p = revalidate_plan ~chip ~ops (shift_to ~lo ~hi p) in
          Ok (Some p)
      | _ -> Error "neither a plan nor an infeasibility verdict")

(* --- whole-program tier --------------------------------------------------- *)

let prog_tier = "prog"

let prog_key ?shape ~graph_text ~chip ~faults ~config ~passes () =
  String.concat "\n"
    [ "prog.v1"; chip_canonical chip; faults_canonical faults; config; passes;
      Option.value shape ~default:"shape:none";
      graph_text ]

type prog_payload = {
  segments : Plan.seg_plan list;
  program_md5 : string;
  mip_solves : int;
  mip_cache_hits : int;
  candidates : int;
  pruned_infeasible : int;
  events : Degrade.event list;
}

let stage_to_tag = function
  | Degrade.Milp_optimal -> "milp_optimal"
  | Degrade.Milp_incumbent -> "milp_incumbent"
  | Degrade.Greedy_fallback -> "greedy_fallback"
  | Degrade.Serial_fallback -> "serial_fallback"

let stage_of_tag = function
  | "milp_optimal" -> Some Degrade.Milp_optimal
  | "milp_incumbent" -> Some Degrade.Milp_incumbent
  | "greedy_fallback" -> Some Degrade.Greedy_fallback
  | "serial_fallback" -> Some Degrade.Serial_fallback
  | _ -> None

let prog_payload_to_string p =
  J.to_string
    (J.Obj
       [ ("segments", J.List (List.map plan_to_json p.segments));
         ("program_md5", J.String p.program_md5);
         ("mip_solves", J.Int p.mip_solves);
         ("mip_cache_hits", J.Int p.mip_cache_hits);
         ("candidates", J.Int p.candidates);
         ("pruned_infeasible", J.Int p.pruned_infeasible);
         ( "events",
           J.List
             (List.map
                (fun (e : Degrade.event) ->
                  J.Obj
                    [ ("lo", J.Int e.Degrade.lo);
                      ("hi", J.Int e.Degrade.hi);
                      ("stage", J.String (stage_to_tag e.Degrade.stage));
                      ("detail", J.String e.Degrade.detail) ])
                p.events) ) ])

let prog_payload_of_string s =
  match J.of_string s with
  | exception J.Parse_error m -> Error ("unparseable payload: " ^ m)
  | j -> (
    let int k = match J.member k j with Some (J.Int i) -> Some i | _ -> None in
    match
      (J.member "segments" j, J.member "program_md5" j, int "mip_solves",
       int "mip_cache_hits", int "candidates", int "pruned_infeasible",
       J.member "events" j)
    with
    | ( Some (J.List segs), Some (J.String program_md5), Some mip_solves,
        Some mip_cache_hits, Some candidates, Some pruned_infeasible,
        Some (J.List events) ) ->
      let* segments =
        List.fold_left
          (fun acc sj ->
            let* acc = acc in
            let* p = plan_of_json sj in
            Ok (p :: acc))
          (Ok []) segs
      in
      let* events =
        List.fold_left
          (fun acc ej ->
            let* acc = acc in
            match
              (J.member "lo" ej, J.member "hi" ej, J.member "stage" ej,
               J.member "detail" ej)
            with
            | Some (J.Int lo), Some (J.Int hi), Some (J.String tag),
              Some (J.String detail) -> (
              match stage_of_tag tag with
              | Some stage -> Ok ({ Degrade.lo; hi; stage; detail } :: acc)
              | None -> Error ("unknown degradation stage " ^ tag))
            | _ -> Error "malformed degradation event")
          (Ok []) events
      in
      Ok
        { segments = List.rev segments; program_md5; mip_solves;
          mip_cache_hits; candidates; pruned_infeasible;
          events = List.rev events }
    | _ -> Error "missing or ill-typed program payload field")
