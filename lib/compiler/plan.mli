(** Shared schedule representation for CMSwitch and the baseline compilers:
    per-segment dual-mode allocations, the inter-segment cost model
    (Eqs. 1, 2, 4) and latency roll-up. *)

type op_alloc = {
  uid : int;
  com : int;      (** compute-mode arrays, >= the operator's minimum *)
  mem_in : int;   (** memory-mode arrays used as input buffer (lambda_min) *)
  mem_out : int;  (** memory-mode arrays used as output buffer (lambda_mout) *)
}

val mem_of : op_alloc -> int
(** [mem_in + mem_out] — the Mem_{O_i} of Table 1. *)

type seg_plan = {
  lo : int;                  (** first operator uid, inclusive *)
  hi : int;                  (** last operator uid, inclusive *)
  allocs : op_alloc list;    (** one per operator, uid order *)
  reuse : (int * int * int) list;
      (** (producer uid, consumer uid, shared arrays): output buffers doubling
          as the consumer's input buffers (Eq. 6) *)
  intra_cycles : float;      (** pipelined segment latency (Eq. 9/10) *)
}

val com_total : seg_plan -> int
val mem_total : seg_plan -> int
val arrays_used : seg_plan -> int
(** com + mem - reuse, the left side of Eq. 8. *)

val max_com : seg_plan -> int

type inter_cost = { writeback : float; switch : float; rewrite : float }

val inter_total : inter_cost -> float

type ctx
(** Precomputed consumer index over an operator list, so boundary-data
    queries inside the DP are O(segment length) rather than O(network). *)

val make_ctx : Opinfo.t array -> ctx

val last_consumers : ctx -> int array
(** Copy of the last-consumer table: entry [i] is the max uid consuming op
    [i]'s output, [-1] when none. Segment's incremental frontier stores and
    compares it — the inter-segment cost of a prefix window depends on it,
    and a suffix op can be the last consumer of a prefix op. *)

val inter_segment_cost :
  Cim_arch.Chip.t -> ctx -> prev:seg_plan option -> cur:seg_plan -> inter_cost
(** The three components of Fig. 10 between the previous segment (if any;
    [None] means cold start — weights still need programming) and [cur]:
    - [writeback]: boundary data held in the previous segment's output
      buffers that the next segment's input buffers cannot absorb in place;
    - [switch]: Eq. 1 with switch counts estimated from the mode totals
      (the placement pass later realises them exactly);
    - [rewrite]: Eq. 2. *)

val boundary_bytes : ctx -> lo:int -> hi:int -> int
(** Output bytes of operators in [lo, hi] consumed after [hi] (or by the
    graph output — operators with no CIM consumer at all). *)

type schedule = {
  compiler : string;
  segments : seg_plan list;
  intra : float;
  writeback : float;
  switch : float;
  rewrite : float;
  total_cycles : float;
}

val roll_up :
  compiler:string -> Cim_arch.Chip.t -> Opinfo.t array -> seg_plan list -> schedule
(** Chain the segments, accumulating inter-segment costs. *)

val pp_schedule : Format.formatter -> schedule -> unit
