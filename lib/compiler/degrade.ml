type stage =
  | Milp_optimal
  | Milp_incumbent
  | Greedy_fallback
  | Serial_fallback

type event = { lo : int; hi : int; stage : stage; detail : string }

type report = {
  total_arrays : int;
  healthy_arrays : int;
  events : event list;
  diagnostics : string list;
}

let empty_report ~total ~healthy =
  { total_arrays = total; healthy_arrays = healthy; events = []; diagnostics = [] }

let degraded r =
  r.events <> [] || r.diagnostics <> [] || r.healthy_arrays < r.total_arrays

let stage_to_string = function
  | Milp_optimal -> "milp-optimal"
  | Milp_incumbent -> "milp-incumbent"
  | Greedy_fallback -> "greedy-fallback"
  | Serial_fallback -> "serial-fallback"

let m_milp_optimal = Cim_obs.Metrics.counter "compile.alloc.milp_optimal"
let m_milp_incumbent = Cim_obs.Metrics.counter "compile.alloc.milp_incumbent"
let m_greedy = Cim_obs.Metrics.counter "compile.alloc.greedy_fallback"
let m_serial = Cim_obs.Metrics.counter "compile.alloc.serial_fallback"

(* ladder-level telemetry: one bump per segment allocation, keyed by the
   stage that finally produced (or failed to produce) its plan *)
let count_stage = function
  | Milp_optimal -> Cim_obs.Metrics.incr m_milp_optimal
  | Milp_incumbent -> Cim_obs.Metrics.incr m_milp_incumbent
  | Greedy_fallback -> Cim_obs.Metrics.incr m_greedy
  | Serial_fallback -> Cim_obs.Metrics.incr m_serial

let budget_spent ~started ~budget =
  match budget with
  | None -> false
  | Some b -> Unix.gettimeofday () -. started >= b

let m_recompile_total = Cim_obs.Metrics.counter "compile.recompile.total"

let count_recompile ~level =
  Cim_obs.Metrics.incr m_recompile_total;
  Cim_obs.Metrics.incr
    (Cim_obs.Metrics.counter (Printf.sprintf "compile.recompile.level%d" level))

let pp ppf r =
  Format.fprintf ppf "@[<v>degradation: %s (%d/%d arrays usable)"
    (if degraded r then "DEGRADED" else "clean")
    r.healthy_arrays r.total_arrays;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,  ops [%d..%d] via %s: %s" e.lo e.hi
        (stage_to_string e.stage) e.detail)
    r.events;
  List.iter (fun d -> Format.fprintf ppf "@,  validator: %s" d) r.diagnostics;
  Format.fprintf ppf "@]"

let solve ?options ?(on_stage = fun _ -> ()) chip (ops : Opinfo.t array) ~lo ~hi =
  let on_stage e =
    count_stage e.stage;
    on_stage e
  in
  let greedy detail =
    match Greedy.solve chip ops ~lo ~hi with
    | Some plan ->
      on_stage { lo; hi; stage = Greedy_fallback; detail };
      Some plan
    | None -> None
  in
  match Alloc.solve_outcome ?options chip ops ~lo ~hi with
  | Alloc.Optimal plan ->
    count_stage Milp_optimal;
    Some plan
  | Alloc.Infeasible -> None
  | Alloc.Truncated_no_incumbent ->
    greedy "MILP node budget exhausted without a feasible incumbent"
  | Alloc.Incumbent plan -> begin
    (* a truncated incumbent can be arbitrarily weak (it may come from the
       root rounding heuristic): adopt the greedy allocation instead when it
       is strictly faster *)
    match Greedy.solve chip ops ~lo ~hi with
    | Some g when g.Plan.intra_cycles < plan.Plan.intra_cycles *. (1. -. 1e-9) ->
      on_stage
        { lo; hi; stage = Greedy_fallback;
          detail =
            Printf.sprintf
              "greedy (%.0f cycles) beat the node-limited incumbent (%.0f)"
              g.Plan.intra_cycles plan.Plan.intra_cycles };
      Some g
    | Some _ | None ->
      on_stage
        { lo; hi; stage = Milp_incumbent;
          detail =
            Printf.sprintf "node-limited incumbent kept (%.0f cycles)"
              plan.Plan.intra_cycles };
      Some plan
  end
