module Chip = Cim_arch.Chip
module Cost = Cim_arch.Cost
module Model = Cim_solver.Model

type options = {
  milp_max_nodes : int;
  refine : bool;
  force_all_compute : bool;
  lp_backend : Cim_solver.Milp.backend;
}

let default_options =
  { milp_max_nodes = 600; refine = true; force_all_compute = false;
    lp_backend = Cim_solver.Milp.Revised }

let ceil_div = Cim_util.Bytesize.ceil_div

let op_latency chip (op : Opinfo.t) (a : Plan.op_alloc) =
  Cost.op_latency chip ~ops:op.Opinfo.macs ~ai:op.Opinfo.ai ~com:a.Plan.com
    ~mem:(Plan.mem_of a)

(* Upper bound on the throughput variable z = 1 / (segment latency):
   every operator is limited by the whole chip's compute rate and by the
   whole chip's memory rate. *)
let z_upper chip (ops : Opinfo.t array) ~lo ~hi =
  let n = chip.Chip.n_arrays in
  let best = ref infinity in
  for i = lo to hi do
    let op = ops.(i) in
    if op.Opinfo.macs > 0. then begin
      let c = Cost.compute_rate chip ~com:n /. op.Opinfo.macs in
      let m = Cost.memory_rate chip ~mem:n *. op.Opinfo.ai /. op.Opinfo.macs in
      best := Float.min !best (Float.min c m)
    end
  done;
  if !best = infinity then 1. else !best

(* Dependency pairs (producer, consumer) inside the segment, for Eq. 6. *)
let segment_deps (ops : Opinfo.t array) ~lo ~hi =
  let pairs = ref [] in
  for j = lo to hi do
    List.iter
      (fun d -> if d >= lo && d < j then pairs := (d, j) :: !pairs)
      ops.(j).Opinfo.deps
  done;
  List.rev !pairs

type vars = {
  v_com : (int, Model.var) Hashtbl.t;
  v_min : (int, Model.var) Hashtbl.t;
  v_mout : (int, Model.var) Hashtbl.t;
  v_reuse : (int * int, Model.var) Hashtbl.t;
}

(* Build the MILP (shared by the optimise and refine phases). Returns the
   model, its variables, and the throughput variable z. *)
let build ~options chip (ops : Opinfo.t array) ~lo ~hi ~z_ub =
  let n_cim = chip.Chip.n_arrays in
  let row_bytes = max 1 (chip.Chip.cols * chip.Chip.cell_bits / 8) in
  let array_bytes = Chip.array_mem_bytes chip in
  let m = Model.create ~name:(Printf.sprintf "segment_%d_%d" lo hi) () in
  let z = Model.add_var m ~lb:0. ~ub:z_ub "z" in
  let vars =
    { v_com = Hashtbl.create 16; v_min = Hashtbl.create 16;
      v_mout = Hashtbl.create 16; v_reuse = Hashtbl.create 16 }
  in
  for i = lo to hi do
    let op = ops.(i) in
    let com =
      Model.add_var m
        ~lb:(float_of_int op.Opinfo.min_compute_arrays)
        ~ub:(float_of_int n_cim) ~integer:true
        (Printf.sprintf "com_%d" i)
    in
    (* memory arrays are banks streaming this operator's traffic; more banks
       than one row of data each is useless, which bounds the search *)
    let mem_cap side_bytes =
      if options.force_all_compute then 0.
      else
        float_of_int
          (min n_cim (ceil_div (max 1 side_bytes) row_bytes))
    in
    let min_ =
      Model.add_var m ~lb:0.
        ~ub:(mem_cap (op.Opinfo.in_bytes + op.Opinfo.weight_bytes))
        ~integer:true
        (Printf.sprintf "min_%d" i)
    in
    let mout =
      Model.add_var m ~lb:0. ~ub:(mem_cap op.Opinfo.out_bytes) ~integer:true
        (Printf.sprintf "mout_%d" i)
    in
    Hashtbl.replace vars.v_com i com;
    Hashtbl.replace vars.v_min i min_;
    Hashtbl.replace vars.v_mout i mout;
    if op.Opinfo.macs > 0. then begin
      (* compute-rate side of Eq. 10 *)
      Model.add_ge m
        [ (chip.Chip.op_cim, com); (-.op.Opinfo.macs, z) ]
        0.;
      (* memory-rate side of Eq. 10: (Mem*D_cim + D_main) * AI >= OP * z *)
      let dterm = chip.Chip.d_cim *. op.Opinfo.ai in
      Model.add_ge m
        [ (dterm, min_); (dterm, mout); (-.op.Opinfo.macs, z) ]
        (-.(Chip.d_main chip *. op.Opinfo.ai))
    end
  done;
  (* Eq. 6: reuse of output buffers as the consumer's input buffers. *)
  let deps = segment_deps ops ~lo ~hi in
  List.iter
    (fun (i, j) ->
      let cap =
        ceil_div
          (max 1 (min ops.(i).Opinfo.out_bytes ops.(j).Opinfo.in_bytes))
          array_bytes
      in
      let r =
        Model.add_var m ~lb:0. ~ub:(float_of_int cap) ~integer:true
          (Printf.sprintf "reuse_%d_%d" i j)
      in
      Hashtbl.replace vars.v_reuse (i, j) r)
    deps;
  (* Eq. 6 strengthened to sums so the placement pass can realise the
     sharing physically: a producer's output buffers bound everything it
     shares out, a consumer's input buffers bound everything it takes in. *)
  let group select var_of =
    let tbl = Hashtbl.create 8 in
    Hashtbl.iter
      (fun key r ->
        let k = select key in
        Hashtbl.replace tbl k ((1., r) :: Option.value (Hashtbl.find_opt tbl k) ~default:[]))
      vars.v_reuse;
    Hashtbl.iter
      (fun k terms -> Model.add_le m ((-1., var_of k) :: terms) 0.)
      tbl
  in
  group fst (fun i -> Hashtbl.find vars.v_mout i);
  group snd (fun j -> Hashtbl.find vars.v_min j);
  (* Eq. 8: capacity. *)
  let capacity_terms =
    List.concat
      [
        List.concat_map
          (fun i ->
            [ (1., Hashtbl.find vars.v_com i); (1., Hashtbl.find vars.v_min i);
              (1., Hashtbl.find vars.v_mout i) ])
          (List.init (hi - lo + 1) (fun k -> lo + k));
        Hashtbl.fold (fun _ r acc -> (-1., r) :: acc) vars.v_reuse [];
      ]
  in
  Model.add_le m capacity_terms (float_of_int n_cim);
  (m, vars, z, capacity_terms)

let segment_problem ?(options = default_options) chip (ops : Opinfo.t array)
    ~lo ~hi =
  if lo < 0 || hi >= Array.length ops || lo > hi then
    invalid_arg "Alloc.segment_problem: bad uid range";
  let z_ub = z_upper chip ops ~lo ~hi in
  let m, _vars, z, _capacity_terms = build ~options chip ops ~lo ~hi ~z_ub in
  Model.maximize m [ (1., z) ];
  Model.to_problem m

let read_plan (ops : Opinfo.t array) chip m vars ~lo ~hi =
  let allocs =
    List.init (hi - lo + 1) (fun k ->
        let i = lo + k in
        {
          Plan.uid = i;
          com = Model.int_value m (Hashtbl.find vars.v_com i);
          mem_in = Model.int_value m (Hashtbl.find vars.v_min i);
          mem_out = Model.int_value m (Hashtbl.find vars.v_mout i);
        })
  in
  let reuse =
    Hashtbl.fold
      (fun (i, j) r acc ->
        let v = Model.int_value m r in
        if v > 0 then (i, j, v) :: acc else acc)
      vars.v_reuse []
    |> List.sort compare
  in
  let intra =
    List.fold_left
      (fun acc a ->
        Float.max acc (op_latency chip ops.(a.Plan.uid) a))
      0. allocs
  in
  { Plan.lo; hi; allocs; reuse; intra_cycles = intra }

type outcome =
  | Optimal of Plan.seg_plan
  | Incumbent of Plan.seg_plan
  | Truncated_no_incumbent
  | Infeasible

(* The degradation chain leans on the node-limited incumbent being a real
   solution: every integer variable integral (Model.int_value rounds within
   the solver's integrality tolerance) and the Eq. 5/8 bounds respected.
   Checked explicitly so a solver regression degrades instead of
   miscompiling. *)
let plan_feasible chip (ops : Opinfo.t array) (p : Plan.seg_plan) =
  List.for_all
    (fun (a : Plan.op_alloc) ->
      a.Plan.com >= ops.(a.Plan.uid).Opinfo.min_compute_arrays
      && a.Plan.mem_in >= 0 && a.Plan.mem_out >= 0)
    p.Plan.allocs
  && List.for_all (fun (_, _, r) -> r >= 0) p.Plan.reuse
  && Plan.arrays_used p <= chip.Chip.n_arrays

let solve_outcome ?(options = default_options) chip (ops : Opinfo.t array) ~lo ~hi =
  if lo < 0 || hi >= Array.length ops || lo > hi then
    invalid_arg "Alloc.solve: bad uid range";
  if Opinfo.total_min_arrays ops ~lo ~hi > chip.Chip.n_arrays then Infeasible
  else begin
    let z_ub = z_upper chip ops ~lo ~hi in
    let m, vars, z, _capacity_terms = build ~options chip ops ~lo ~hi ~z_ub in
    Model.maximize m [ (1., z) ];
    match
      Model.solve ~max_nodes:options.milp_max_nodes ~gap:5e-3
        ~backend:options.lp_backend m
    with
    | Model.Infeasible | Model.Unbounded -> Infeasible
    | Model.Truncated None -> Truncated_no_incumbent
    | Model.Truncated (Some _) ->
      (* node-limited: the incumbent is usable only if it honours the
         feasibility contract; refinement would burn another truncated
         search for nothing, so skip it *)
      let plan = read_plan ops chip m vars ~lo ~hi in
      if plan_feasible chip ops plan then Incumbent plan
      else Truncated_no_incumbent
    | Model.Optimal _ ->
      let plan = read_plan ops chip m vars ~lo ~hi in
      let plan =
        if not options.refine then plan
        else begin
          (* lexicographic phase 2: fewest arrays at (almost) that latency *)
          let z_opt = Model.value m z in
          let m2, vars2, z2, cap2 = build ~options chip ops ~lo ~hi ~z_ub in
          Model.add_ge m2 [ (1., z2) ] (z_opt *. (1. -. 1e-9));
          let arrays_expr =
            List.filter (fun (c, _) -> c > 0.) cap2
          in
          Model.minimize m2 arrays_expr;
          match
            Model.solve ~max_nodes:options.milp_max_nodes ~gap:5e-3
              ~backend:options.lp_backend m2
          with
          | Model.Optimal _ ->
            let refined = read_plan ops chip m2 vars2 ~lo ~hi in
            (* guard against numeric slack: keep the refined plan only if it
               is genuinely no slower *)
            if refined.Plan.intra_cycles <= plan.Plan.intra_cycles *. (1. +. 1e-9)
            then refined
            else plan
          | Model.Infeasible | Model.Unbounded | Model.Truncated _ -> plan
        end
      in
      Optimal plan
  end

let solve ?options chip ops ~lo ~hi =
  match solve_outcome ?options chip ops ~lo ~hi with
  | Optimal p | Incumbent p -> Some p
  | Truncated_no_incumbent | Infeasible -> None
