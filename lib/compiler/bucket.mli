(** Sequence-length bucketing policy for dynamic-shape compilation.

    Generative decode recompiles at every KV length; a bucket policy maps
    each context length to a {e ceiling} length, so one plan compiled at
    the ceiling serves every length inside the bucket (the plan is padded
    — the ceiling-shape program is what executes, and its Eq. 10 cost is
    the honest cost of every step in the bucket). Ceilings, not raw
    lengths, key the compilation-cache tiers (see {!Ccache.prog_key}'s
    [shape] fragment), so warm decode steps re-solve zero MILPs.

    The canonical serialisation rides inside [Cmswitch.Config.canonical]
    (one ';'-separated field), so it must never contain [';'] / ['{'] /
    ['}'] — parentheses delimit instead. *)

type t

val pow2 : ?min_ceiling:int -> ?max_ceiling:int -> unit -> t
(** Power-of-two ceilings clamped below by [min_ceiling] (default 32) and
    capped at [max_ceiling] (default 2048): boundaries are [min_ceiling]
    and every power of two in ([min_ceiling], [max_ceiling]]. Lengths
    above [max_ceiling] compile exactly (their own bucket). Raises
    [Invalid_argument] unless [1 <= min_ceiling <= max_ceiling]. *)

val explicit : int list -> t
(** User-specified boundaries (e.g. [[32; 64; 128; 256; 512; 1024; 2048]]),
    deduplicated and sorted. Lengths above the largest boundary compile
    exactly. Raises [Invalid_argument] on an empty list or non-positive
    boundary. *)

val default : t
(** [pow2 ()] — 32/64/128/.../2048. *)

val ceiling : t -> int -> int
(** [ceiling t len] is the smallest bucket boundary [>= len], or [len]
    itself above the largest boundary. Always [>= len]. Raises
    [Invalid_argument] when [len <= 0]. *)

val boundaries : t -> int list
(** The boundary list, ascending (materialised for the pow2 policy). *)

val equal : t -> t -> bool

val canonical : t -> string
(** Deterministic cache-key form: ["buckets.v1(pow2:32:2048)"] or
    ["buckets.v1(list:32,64,128)"]. Free of [';'], ['{'], ['}']. *)

val of_canonical : string -> (t, string) result
(** Strict inverse of {!canonical}. *)

val of_string : string -> (t, string) result
(** CLI parser: ["pow2"], ["pow2:MIN"], ["pow2:MIN:MAX"], or a comma list
    of boundaries (["32,64,128"]). Also accepts the canonical form. *)

val to_string : t -> string
(** Short CLI form: ["pow2:32:2048"] or ["32,64,128"]. *)
