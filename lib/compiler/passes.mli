(** The nanopass pass manager: the compilation pipeline as a first-class
    list of named passes over an explicit state value, instead of phases
    hardwired inside [Cmswitch.compile].

    Every pass is a record of a [name], a [run] step over {!state}, and an
    optional per-pass validator (the racket nanopass discipline: each pass
    is paired with a checker so a broken pass is caught at its own
    boundary, with the failing pass named). [Cmswitch.compile] /
    [compile_robust] / [compile_model] / [session_step] are thin drivers
    over {!default_pipeline}; the CLI surfaces custom pipelines with
    [--passes], [--dump-after] and [--validate-each].

    The default pipeline is byte-identical to the historical hardwired
    driver — same trace spans, same stats arithmetic, same emitted
    programs (asserted by the golden program MD5s) — so swapping the
    driver is a pure refactor for every existing caller. *)

(** Immutable compilation context shared by every pass of one run. This is
    the decomposed form of [Cmswitch.Config] (the pass layer cannot see
    [Config] — [Cmswitch] depends on this module, not vice versa). *)
type env = {
  chip : Cim_arch.Chip.t;         (** the real chip placement runs on *)
  solve_chip : Cim_arch.Chip.t;
      (** what the solver plans against: the fault map's effective chip
          when compiling around faults, else [chip] itself *)
  faults : Cim_arch.Faultmap.t option;
  partition_fraction : float;
  seg_options : Segment.options;
  frontiers : Segment.frontier_state option;
  frontier_tag : string;
  on_stage : Degrade.event -> unit;
      (** degradation-event sink (the driver accumulates the report) *)
}

(** The compilation-state value passes transform: each artifact starts
    [None] and is filled in by the pass that produces it. *)
type state = {
  env : env;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array option;                 (** extract *)
  segments : Plan.seg_plan list option;        (** segment / segment_serial *)
  dp_stats : Segment.stats option;
  places : Placement.seg_place list option;    (** place *)
  schedule : Plan.schedule option;             (** schedule *)
  program : Cim_metaop.Flow.program option;    (** codegen *)
  isa : Cim_metaop.Isa.image option;           (** lower_isa *)
  diagnostics : string list option;            (** check *)
}

type pass = {
  name : string;
  describe : string;   (** one-line summary shown by [--passes help] *)
  run : state -> state;
  validate : (state -> (unit, string) result) option;
      (** per-pass oracle, run only under [--validate-each] (or
          [?validate_each:true]); an [Error] raises {!Pass_error} naming
          this pass. Reuses {!Cim_metaop.Check} / structural invariants;
          callers may substitute heavier oracles (e.g. the functional
          simulator) by overriding this field. *)
}

exception Pass_error of { pass : string; reason : string }
(** A per-pass validator rejected the state [pass] produced. *)

val log_src : Logs.src
(** Log source ["cmswitch.passes"]: [Debug] traces each pass boundary. *)

val make_env :
  ?faults:Cim_arch.Faultmap.t -> ?frontiers:Segment.frontier_state ->
  ?frontier_tag:string -> ?on_stage:(Degrade.event -> unit) ->
  partition_fraction:float -> seg_options:Segment.options ->
  Cim_arch.Chip.t -> env
(** [solve_chip] is derived from [faults]
    ({!Cim_arch.Faultmap.effective_chip}). [on_stage] defaults to a no-op. *)

val init : env -> Cim_nnir.Graph.t -> state
(** The empty starting state. *)

(** {2 Artifact accessors}

    Raise [Failure] with a message naming the missing artifact and the
    pass that should have produced it — a mis-ordered custom pipeline
    fails with a diagnosis, not a [None] crash. *)

val ops_exn : state -> Opinfo.t array
val segments_exn : state -> Plan.seg_plan list
val dp_stats_exn : state -> Segment.stats
val places_exn : state -> Placement.seg_place list
val schedule_exn : state -> Plan.schedule
val program_exn : state -> Cim_metaop.Flow.program
val isa_exn : state -> Cim_metaop.Isa.image
val diagnostics_exn : state -> string list

(** {2 The registry} *)

val p_extract : pass
(** CIM-operator extraction + greedy sub-operator partitioning (§4.3.1);
    emits the ["partition"] trace span. *)

val p_segment : pass
(** DP segmentation with per-window MIP allocation (Alg. 1); emits
    ["dp.segmentation"]. Frontier lineage [frontier_tag ^ ":main"]. *)

val p_segment_serial : pass
(** Last-resort serial segmentation: one operator per segment under greedy
    allocation, no DP and no MIP; every segment fires a [Serial_fallback]
    event at [env.on_stage]. The fallback pipeline's replacement for
    {!p_segment}. *)

val p_place : pass
(** Physical array placement on the real chip; emits ["placement"]. *)

val p_schedule : pass
(** Roll the schedule up from the placed segments; emits ["schedule"]. *)

val p_probe : pass
(** The all-compute probe: re-run segmentation + placement + schedule with
    memory-mode variables forced to zero and adopt that plan when it turns
    out faster after placement (the CIM-MLC convergence of §5.4). DP stats
    of both searches are summed. No-op when [seg_options] already force
    all-compute; emits ["all_compute.probe"] otherwise. *)

val p_codegen : pass
(** Meta-operator code generation (Fig. 13); emits ["codegen"]. *)

val p_check : pass
(** Static flow validation via {!Cim_metaop.Check}; diagnostics land in
    the state (and, through the driver, in the degradation report); emits
    ["flow.validate"]. *)

val p_lower_isa : pass
(** Lower the meta-operator program onto the MMIO command-stream ISA
    ({!Cim_metaop.Isa}): command FIFO words + DMA descriptors, parallel
    blocks flattened between PAR_BEGIN/PAR_END markers. Not in the
    default pipeline; append with [--passes default,lower_isa]. Emits
    ["lower_isa"]. *)

val registry : pass list
(** Every known pass, lookup table for {!find} / {!parse_list}. *)

val find : string -> pass option

val default_pipeline : pass list
(** [extract; segment; place; schedule; probe; codegen; check] — the
    historical hardwired driver, now as data. *)

val serial_pipeline : pass list
(** [extract; segment_serial; place; schedule; codegen; check] — the
    robust fallback (no DP, no probe). *)

val parse_list : string -> (pass list, string) result
(** Parse a [--passes] spec: comma-separated pass names; the token
    [default] expands to {!default_pipeline} in place (so
    ["default,lower_isa"] appends the ISA lowering). Unknown names are an
    [Error] listing the registry. *)

val fingerprint : pass list -> string
(** Canonical ["passes.v1[name;name;...]"] serialisation of the active
    pass list — the program-tier cache-key fragment ({!Ccache.prog_key}),
    so a reordered or customised pipeline can never replay a program
    cached under a different pipeline. *)

val default_fingerprint : string
(** [fingerprint default_pipeline]. *)

val run_pass : ?validate:bool -> pass -> state -> state
(** Run one pass: wraps [run] in a ["pass.<name>"] trace span, observes
    the [compile.pass.<name>.seconds] histogram, and (with
    [~validate:true]) runs the pass's validator, raising {!Pass_error} on
    rejection. *)

val run_pipeline :
  ?validate_each:bool -> ?on_pass:(pass -> state -> unit) ->
  pass list -> state -> state
(** Fold {!run_pass} over the list. [on_pass] observes the state after
    each pass (the CLI's [--dump-after] hook). *)

val describe_state : state -> string
(** Human-readable dump of which artifacts are present and their shapes
    (ops count, segment list, schedule totals, program size and MD5, ISA
    command count, diagnostics) — what [--dump-after PASS] prints. *)
