module Chip = Cim_arch.Chip
module Cost = Cim_arch.Cost

type op_alloc = { uid : int; com : int; mem_in : int; mem_out : int }

let mem_of a = a.mem_in + a.mem_out

type seg_plan = {
  lo : int;
  hi : int;
  allocs : op_alloc list;
  reuse : (int * int * int) list;
  intra_cycles : float;
}

let com_total s = List.fold_left (fun acc a -> acc + a.com) 0 s.allocs
let mem_total s = List.fold_left (fun acc a -> acc + mem_of a) 0 s.allocs

let arrays_used s =
  let shared = List.fold_left (fun acc (_, _, r) -> acc + r) 0 s.reuse in
  com_total s + mem_total s - shared

let max_com s = List.fold_left (fun acc a -> max acc a.com) 0 s.allocs

type inter_cost = { writeback : float; switch : float; rewrite : float }

let inter_total c = c.writeback +. c.switch +. c.rewrite

type ctx = {
  ctx_ops : Opinfo.t array;
  last_consumer : int array; (* max uid consuming op i; -1 when none *)
}

let make_ctx (ops : Opinfo.t array) =
  let n = Array.length ops in
  let last = Array.make n (-1) in
  for j = 0 to n - 1 do
    List.iter (fun d -> if d >= 0 && d < n then last.(d) <- max last.(d) j)
      ops.(j).Opinfo.deps
  done;
  { ctx_ops = ops; last_consumer = last }

let last_consumers ctx = Array.copy ctx.last_consumer

(* An operator's output is boundary data of segment [lo, hi] when some
   operator beyond hi consumes it, or when nothing consumes it at all (it
   feeds the graph output). *)
let boundary_bytes ctx ~lo ~hi =
  let acc = ref 0 in
  for i = lo to hi do
    let last = ctx.last_consumer.(i) in
    if last > hi || last = -1 then acc := !acc + ctx.ctx_ops.(i).Opinfo.out_bytes
  done;
  !acc

let inter_segment_cost chip ctx ~prev ~cur =
  let rewrite = Cost.weight_rewrite_latency chip ~max_com:(max_com cur) in
  match prev with
  | None ->
    (* cold start: program weights, switch every needed array out of the
       reset (memory) mode *)
    let switch = Cost.switch_latency chip ~m2c:(com_total cur) ~c2m:0 in
    { writeback = 0.; switch; rewrite }
  | Some p ->
    let com_p = com_total p and mem_p = mem_total p in
    let com_c = com_total cur and mem_c = mem_total cur in
    (* Mode-count estimate of Eq. 1: arrays that must newly become compute
       (resp. memory). The placement pass computes the exact overlap. *)
    let m2c = max 0 (com_c - com_p) in
    let c2m = max 0 (mem_c - mem_p) in
    let switch = Cost.switch_latency chip ~m2c ~c2m in
    (* Step 1 of Fig. 10: previous boundary data held in output buffers must
       be written back unless the next segment's input buffers take the
       arrays over in place. *)
    let array_bytes = Chip.array_mem_bytes chip in
    let boundary = boundary_bytes ctx ~lo:p.lo ~hi:p.hi in
    let mem_out_cap =
      List.fold_left (fun acc a -> acc + a.mem_out) 0 p.allocs * array_bytes
    in
    let held = min boundary mem_out_cap in
    let absorb =
      List.fold_left (fun acc a -> acc + a.mem_in) 0 cur.allocs * array_bytes
    in
    let wb_bytes = max 0 (held - absorb) in
    let writeback = Cost.writeback_latency chip ~bytes:wb_bytes in
    { writeback; switch; rewrite }

type schedule = {
  compiler : string;
  segments : seg_plan list;
  intra : float;
  writeback : float;
  switch : float;
  rewrite : float;
  total_cycles : float;
}

let roll_up ~compiler chip ops segments =
  let ctx = make_ctx ops in
  let intra = ref 0. and wb = ref 0. and sw = ref 0. and rw = ref 0. in
  let prev = ref None in
  List.iter
    (fun seg ->
      let ic = inter_segment_cost chip ctx ~prev:!prev ~cur:seg in
      intra := !intra +. seg.intra_cycles;
      wb := !wb +. ic.writeback;
      sw := !sw +. ic.switch;
      rw := !rw +. ic.rewrite;
      prev := Some seg)
    segments;
  {
    compiler;
    segments;
    intra = !intra;
    writeback = !wb;
    switch = !sw;
    rewrite = !rw;
    total_cycles = !intra +. !wb +. !sw +. !rw;
  }

let pp_schedule ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d segments, %.0f cycles (intra %.0f, wb %.0f, switch %.0f, rewrite %.0f)@]"
    s.compiler (List.length s.segments) s.total_cycles s.intra s.writeback
    s.switch s.rewrite
