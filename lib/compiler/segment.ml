module Chip = Cim_arch.Chip

type options = {
  alloc : Alloc.options;
  max_segment_ops : int;
  memoize : bool;
}

let default_options =
  { alloc = Alloc.default_options; max_segment_ops = 10; memoize = true }

type stats = {
  mip_solves : int;
  mip_cache_hits : int;
  candidates : int;
  pruned_infeasible : int;
}

(* Structural signature of a segment: identical windows (same per-op cost
   constants and same internal dependency pattern) have identical MIP
   solutions, so transformer layers hit the cache. Byte-exact constants go
   into the key. *)
let signature (ops : Opinfo.t array) ~lo ~hi =
  let buf = Buffer.create 128 in
  for i = lo to hi do
    let op = ops.(i) in
    Buffer.add_string buf
      (Printf.sprintf "%h:%h:%d:%d:%d:%d;" op.Opinfo.macs op.Opinfo.ai
         op.Opinfo.min_compute_arrays op.Opinfo.in_bytes op.Opinfo.out_bytes
         op.Opinfo.weight_bytes);
    List.iter
      (fun d ->
        if d >= lo && d < i then
          Buffer.add_string buf (Printf.sprintf "d%d," (i - d)))
      op.Opinfo.deps;
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

let run ?(options = default_options) ?on_stage chip (ops : Opinfo.t array) =
  let m = Array.length ops in
  let ctx = Plan.make_ctx ops in
  let cache : (string, Plan.seg_plan option) Hashtbl.t = Hashtbl.create 256 in
  let solves = ref 0 and hits = ref 0 and cands = ref 0 and pruned = ref 0 in
  let solve ~lo ~hi =
    Cim_obs.Trace.with_span "milp.segment" ~cat:"solver"
      ~args:[ ("lo", Cim_obs.Json.Int lo); ("hi", Cim_obs.Json.Int hi) ]
      (fun () -> Degrade.solve ~options:options.alloc ?on_stage chip ops ~lo ~hi)
  in
  let intra ~lo ~hi =
    if options.memoize then begin
      let key = signature ops ~lo ~hi in
      match Hashtbl.find_opt cache key with
      | Some cached ->
        incr hits;
        (* re-anchor the cached plan at this window's uids *)
        Option.map
          (fun (p : Plan.seg_plan) ->
            let shift = lo - p.Plan.lo in
            {
              p with
              Plan.lo;
              hi;
              allocs =
                List.map
                  (fun (a : Plan.op_alloc) -> { a with Plan.uid = a.Plan.uid + shift })
                  p.Plan.allocs;
              reuse = List.map (fun (i, j, r) -> (i + shift, j + shift, r)) p.Plan.reuse;
            })
          cached
      | None ->
        incr solves;
        let r = solve ~lo ~hi in
        Hashtbl.replace cache key r;
        r
    end
    else begin
      incr solves;
      solve ~lo ~hi
    end
  in
  if m = 0 then ([], { mip_solves = 0; mip_cache_hits = 0; candidates = 0;
                       pruned_infeasible = 0 })
  else begin
    (* best.(j) = minimal cost of scheduling ops 0..j-1 (so best.(0) = 0);
       choice.(j) = (segment start i, plan) realising it. *)
    let best = Array.make (m + 1) infinity in
    let choice : (int * Plan.seg_plan) option array = Array.make (m + 1) None in
    best.(0) <- 0.;
    for j = 0 to m - 1 do
      let i = ref j in
      let stop = ref false in
      while (not !stop) && !i >= 0 && j - !i < options.max_segment_ops do
        incr cands;
        if Opinfo.total_min_arrays ops ~lo:!i ~hi:j > chip.Chip.n_arrays then begin
          (* growing the window leftwards only adds operators *)
          incr pruned;
          stop := true
        end
        else begin
          (match intra ~lo:!i ~hi:j with
          | None -> ()
          | Some plan ->
            if best.(!i) < infinity then begin
              let prev =
                if !i = 0 then None
                else Option.map snd choice.(!i)
              in
              let ic = Plan.inter_segment_cost chip ctx ~prev ~cur:plan in
              let cost =
                best.(!i) +. plan.Plan.intra_cycles +. Plan.inter_total ic
              in
              if cost < best.(j + 1) then begin
                best.(j + 1) <- cost;
                choice.(j + 1) <- Some (!i, plan)
              end
            end);
          decr i
        end
      done
    done;
    if best.(m) = infinity then
      failwith "Segment.run: no feasible segmentation (operator exceeds chip)";
    (* backtrack *)
    let rec collect j acc =
      if j = 0 then acc
      else
        match choice.(j) with
        | None -> failwith "Segment.run: broken DP table"
        | Some (i, plan) -> collect i (plan :: acc)
    in
    let segments = collect m [] in
    ( segments,
      { mip_solves = !solves; mip_cache_hits = !hits; candidates = !cands;
        pruned_infeasible = !pruned } )
  end
