module Chip = Cim_arch.Chip
module Pool = Cim_util.Pool
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics

type options = {
  alloc : Alloc.options;
  max_segment_ops : int;
  memoize : bool;
  jobs : int;
  cache : Cim_cache.Store.t option;
}

let default_options =
  { alloc =
      { Alloc.milp_max_nodes = 600; refine = true; force_all_compute = false;
        lp_backend = Cim_solver.Milp.Revised };
    max_segment_ops = 10; memoize = true;
    jobs = Pool.default_jobs (); cache = None }

type stats = {
  mip_solves : int;
  mip_cache_hits : int;
  candidates : int;
  pruned_infeasible : int;
}

(* Structural signature of a segment: identical windows (same per-op cost
   constants and same internal dependency pattern) have identical MIP
   solutions, so transformer layers hit the cache. Byte-exact constants go
   into the key. *)
let signature (ops : Opinfo.t array) ~lo ~hi =
  let buf = Buffer.create 128 in
  for i = lo to hi do
    let op = ops.(i) in
    Buffer.add_string buf
      (Printf.sprintf "%h:%h:%d:%d:%d:%d;" op.Opinfo.macs op.Opinfo.ai
         op.Opinfo.min_compute_arrays op.Opinfo.in_bytes op.Opinfo.out_bytes
         op.Opinfo.weight_bytes);
    List.iter
      (fun d ->
        if d >= lo && d < i then
          Buffer.add_string buf (Printf.sprintf "d%d," (i - d)))
      op.Opinfo.deps;
    Buffer.add_char buf '|'
  done;
  Buffer.contents buf

(* --- incremental DP-prefix reuse -------------------------------------------

   When only trailing operators change between two runs (the decode loop
   crossing a bucket boundary grows the KV-cache operand of the suffix
   attention ops), the DP table entries best.(0..P) of the old run are still
   exact for the new one, provided the reuse check below holds, and the run
   can start its frontier loop at j = P instead of j = 0.

   Validity of a prefix of length P (ops 0..P-1 byte-equal between runs) is
   NOT implied by per-op equality alone: Plan.inter_segment_cost reads
   ctx.last_consumer, and the last consumer of a *prefix* op can be a
   *suffix* op. So a frontier entry stores, and the reuse check compares,
   both the per-op identity (every cost-model field plus absolute deps —
   strictly finer than the window [signature]) and the last-consumer table
   over the prefix. Under the same premise as the window memo table
   (identical inputs => Degrade.solve returns the identical plan), a run
   seeded from a valid frontier chooses byte-identical segments to a cold
   run — only the stats (solve/candidate counts) shrink. *)

type frontier = {
  f_sigs : string array;    (* per-op identity, absolute deps included *)
  f_last : int array;       (* Plan ctx last-consumer table of that run *)
  f_best : float array;     (* DP values, length m+1 *)
  f_choice : (int * Plan.seg_plan) option array;
}

type frontier_state = {
  frontiers : (string, frontier) Hashtbl.t;
  fs_mutex : Mutex.t;
  mutable reused_ops : int;
  mutable solved_ops : int;
}

let frontier_state () =
  { frontiers = Hashtbl.create 8; fs_mutex = Mutex.create ();
    reused_ops = 0; solved_ops = 0 }

let reuse_counters fs =
  Mutex.lock fs.fs_mutex;
  let r = (fs.reused_ops, fs.solved_ops) in
  Mutex.unlock fs.fs_mutex;
  r

let op_identity (op : Opinfo.t) =
  Printf.sprintf "%h:%h:%d:%d:%d:%d:%d:%d:%d:%s" op.Opinfo.macs op.Opinfo.ai
    op.Opinfo.min_compute_arrays op.Opinfo.in_bytes op.Opinfo.out_bytes
    op.Opinfo.weight_bytes op.Opinfo.stationary_rows op.Opinfo.stationary_cols
    op.Opinfo.replicas
    (String.concat "," (List.map string_of_int op.Opinfo.deps))

(* one lineage per (caller tag, chip, window/alloc knobs): the all-compute
   probe and the main solve of a compile, or the layer and head graphs of a
   model, must never seed each other *)
let frontier_key ~tag ~chip ~(options : options) =
  String.concat "|"
    [ tag; Ccache.chip_canonical chip; Ccache.alloc_canonical options.alloc;
      string_of_int options.max_segment_ops; string_of_bool options.memoize ]

(* re-anchor a plan solved for an identical window at this window's uids *)
let shift_plan ~lo ~hi (p : Plan.seg_plan) =
  let shift = lo - p.Plan.lo in
  if shift = 0 then { p with Plan.lo; hi }
  else
    {
      p with
      Plan.lo;
      hi;
      allocs =
        List.map
          (fun (a : Plan.op_alloc) -> { a with Plan.uid = a.Plan.uid + shift })
          p.Plan.allocs;
      reuse = List.map (fun (i, j, r) -> (i + shift, j + shift, r)) p.Plan.reuse;
    }

(* One solved window, as produced on a (possibly worker) domain: the plan,
   the degradation events the solve fired, and its buffered trace spans.
   Events and spans are replayed by the coordinator in task-submission
   order, so callbacks and the trace are identical whatever the job
   count. *)
type solved = {
  plan : Plan.seg_plan option;
  events : Degrade.event list;     (* in firing order *)
  spans : Trace.event list;        (* in recording order *)
}

let run ?(options = default_options) ?frontiers ?(frontier_tag = "") ?on_stage
    chip (ops : Opinfo.t array) =
  if options.jobs < 1 then
    invalid_arg
      (Printf.sprintf "Segment.run: jobs must be >= 1, got %d" options.jobs);
  let m = Array.length ops in
  let ctx = Plan.make_ctx ops in
  (* keys are signatures when memoizing, otherwise "lo:hi" (every window its
     own entry) — one table serves both modes *)
  let cache : (string, Plan.seg_plan option) Hashtbl.t = Hashtbl.create 256 in
  let cache_mutex = Mutex.create () in
  let cache_find key =
    Mutex.lock cache_mutex;
    let r = Hashtbl.find_opt cache key in
    Mutex.unlock cache_mutex;
    r
  in
  let cache_store key v =
    Mutex.lock cache_mutex;
    Hashtbl.replace cache key v;
    Mutex.unlock cache_mutex
  in
  (* the persistent tier rides behind the in-memory memo table: signatures
     only (positional "lo:hi" keys are meaningless across runs), consulted
     by the coordinator during the dedupe scan so hits replay in the same
     deterministic order as memo hits, filled by the solving task. Entries
     are revalidated against the live window before being trusted — a
     stale or corrupted entry is a miss, never a wrong plan. *)
  let persist = if options.memoize then options.cache else None in
  (* when the persistent tier is active [memoize] is on, so the memo key IS
     the window signature — the store key derives from it directly *)
  let store_key signature_key =
    Ccache.seg_key ~chip ~alloc:options.alloc ~signature:signature_key
  in
  let persist_find ~lo ~hi key =
    match persist with
    | None -> None
    | Some store -> (
      match
        Cim_cache.Store.find store ~tier:Ccache.seg_tier ~key:(store_key key)
      with
      | None -> None
      | Some payload -> (
        match Ccache.seg_payload_of_string ~chip ~ops ~lo ~hi payload with
        | Ok plan ->
          cache_store key plan;
          Some plan
        | Error _ ->
          Cim_cache.Store.note_invalid store ~tier:Ccache.seg_tier;
          None))
  in
  let persist_put key plan =
    match persist with
    | None -> ()
    | Some store ->
      Cim_cache.Store.put store ~tier:Ccache.seg_tier ~key:(store_key key)
        ~payload:
          (Ccache.seg_payload_to_string (Option.map Ccache.normalize_plan plan))
  in
  let solves = Atomic.make 0 and hits = Atomic.make 0 in
  let cands = Atomic.make 0 and pruned = Atomic.make 0 in
  (* nested parallelism guard: a Segment.run reached from inside a pool
     worker (parallel bench sweeps, parallel model compiles) runs serial
     rather than multiplying domain counts *)
  let jobs =
    match Pool.current_worker () with Some _ -> 1 | None -> options.jobs
  in
  let solve_window ~lo ~hi () =
    let local_events = ref [] in
    let local_on_stage e = local_events := e :: !local_events in
    let plan, spans =
      Trace.with_buffer (fun () ->
          Trace.with_span "milp.segment" ~cat:"solver"
            ~args:[ ("lo", Cim_obs.Json.Int lo); ("hi", Cim_obs.Json.Int hi) ]
            (fun () ->
              Degrade.solve ~options:options.alloc ~on_stage:local_on_stage
                chip ops ~lo ~hi))
    in
    { plan; events = List.rev !local_events; spans }
  in
  if m = 0 then ([], { mip_solves = 0; mip_cache_hits = 0; candidates = 0;
                       pruned_infeasible = 0 })
  else begin
    let pool =
      if jobs = 1 then None
      else begin
        if Trace.enabled () then
          for i = 0 to jobs - 1 do
            Trace.name_thread ~pid:Trace.pid_compiler ~tid:(2 + i)
              (Printf.sprintf "solver worker %d" i)
          done;
        Some
          (Pool.create ~name:"segment"
             ~on_worker_start:(fun i -> Trace.set_domain_tid (2 + i))
             ~jobs ())
      end
    in
    Fun.protect ~finally:(fun () -> Option.iter Pool.shutdown pool)
    @@ fun () ->
    (* best.(j) = minimal cost of scheduling ops 0..j-1 (so best.(0) = 0);
       choice.(j) = (segment start i, plan) realising it. *)
    let best = Array.make (m + 1) infinity in
    let choice : (int * Plan.seg_plan) option array = Array.make (m + 1) None in
    best.(0) <- 0.;
    (* seed the longest valid DP prefix from a previous run's frontier *)
    let fkey = frontier_key ~tag:frontier_tag ~chip ~options in
    let cur_sigs, cur_last =
      match frontiers with
      | None -> ([||], [||])
      | Some _ -> (Array.map op_identity ops, Plan.last_consumers ctx)
    in
    let start_j =
      match frontiers with
      | None -> 0
      | Some fs ->
        Mutex.lock fs.fs_mutex;
        let prev = Hashtbl.find_opt fs.frontiers fkey in
        Mutex.unlock fs.fs_mutex;
        let p =
          match prev with
          | None -> 0
          | Some f ->
            let n = min (Array.length f.f_sigs) m in
            let rec lcp i =
              if
                i < n
                && f.f_sigs.(i) = cur_sigs.(i)
                && f.f_last.(i) = cur_last.(i)
              then lcp (i + 1)
              else i
            in
            lcp 0
        in
        (match prev with
        | Some f when p > 0 ->
          Array.blit f.f_best 0 best 0 (p + 1);
          Array.blit f.f_choice 0 choice 0 (p + 1)
        | _ -> ());
        if prev <> None then begin
          Metrics.incr (Metrics.counter "compile.incremental.runs");
          Metrics.incr ~by:(float_of_int p)
            (Metrics.counter "compile.incremental.prefix_ops_reused");
          Metrics.incr ~by:(float_of_int (m - p))
            (Metrics.counter "compile.incremental.suffix_ops_solved")
        end;
        Mutex.lock fs.fs_mutex;
        fs.reused_ops <- fs.reused_ops + p;
        fs.solved_ops <- fs.solved_ops + (m - p);
        Mutex.unlock fs.fs_mutex;
        p
    in
    for j = start_j to m - 1 do
      (* frontier j: first gather the candidate windows [i, j] (the cheap
         feasibility walk of Alg. 1 line 9), then solve every window not
         already memoised concurrently, then fold the DP serially — the
         windows are mutually independent, the DP recurrence is not *)
      let candidates = ref [] in
      let i = ref j and stop = ref false in
      while (not !stop) && !i >= 0 && j - !i < options.max_segment_ops do
        Atomic.incr cands;
        if Opinfo.total_min_arrays ops ~lo:!i ~hi:j > chip.Chip.n_arrays then begin
          (* growing the window leftwards only adds operators *)
          Atomic.incr pruned;
          stop := true
        end
        else begin
          candidates := !i :: !candidates;
          decr i
        end
      done;
      let candidates = List.rev !candidates (* i descending from j *) in
      (* consult the memo cache before enqueue: within one frontier,
         windows sharing a signature cost one solve (first occurrence wins,
         exactly as the serial scan would) and cache-resident windows cost
         none. The cache is filled by the solving task under its lock. *)
      let keyed =
        List.map
          (fun lo ->
            let key =
              if options.memoize then signature ops ~lo ~hi:j
              else Printf.sprintf "%d:%d" lo j
            in
            (lo, key))
          candidates
      in
      let to_solve = ref [] and seen = Hashtbl.create 8 in
      List.iter
        (fun (lo, key) ->
          if
            Hashtbl.mem seen key
            || cache_find key <> None
            || persist_find ~lo ~hi:j key <> None
          then Atomic.incr hits
          else begin
            Hashtbl.add seen key ();
            Atomic.incr solves;
            to_solve := (lo, key) :: !to_solve
          end)
        keyed;
      let to_solve = List.rev !to_solve in
      let results =
        let task (lo, key) () =
          let s = solve_window ~lo ~hi:j () in
          cache_store key s.plan;
          persist_put key s.plan;
          s
        in
        match pool with
        | None -> List.map (fun tk -> task tk ()) to_solve
        | Some p -> Pool.map_list p (fun tk -> task tk ()) to_solve
      in
      (* deterministic join: replay buffered spans and degradation events in
         task-submission order, whatever order the workers finished in *)
      List.iter
        (fun s ->
          Trace.merge s.spans;
          match on_stage with
          | None -> ()
          | Some f -> List.iter f s.events)
        results;
      (* serial DP fold over the frontier, same order as the serial scan *)
      List.iter
        (fun (lo, key) ->
          match Option.join (cache_find key) with
          | None -> ()
          | Some plan ->
            let plan = shift_plan ~lo ~hi:j plan in
            if best.(lo) < infinity then begin
              let prev = if lo = 0 then None else Option.map snd choice.(lo) in
              let ic = Plan.inter_segment_cost chip ctx ~prev ~cur:plan in
              let cost =
                best.(lo) +. plan.Plan.intra_cycles +. Plan.inter_total ic
              in
              if cost < best.(j + 1) then begin
                best.(j + 1) <- cost;
                choice.(j + 1) <- Some (lo, plan)
              end
            end)
        keyed
    done;
    if best.(m) = infinity then
      failwith "Segment.run: no feasible segmentation (operator exceeds chip)";
    (* publish this run's frontier for the next incremental recompile *)
    (match frontiers with
    | None -> ()
    | Some fs ->
      let f =
        {
          f_sigs = cur_sigs;
          f_last = cur_last;
          f_best = Array.copy best;
          f_choice = Array.copy choice;
        }
      in
      Mutex.lock fs.fs_mutex;
      Hashtbl.replace fs.frontiers fkey f;
      Mutex.unlock fs.fs_mutex);
    (* backtrack *)
    let rec collect j acc =
      if j = 0 then acc
      else
        match choice.(j) with
        | None -> failwith "Segment.run: broken DP table"
        | Some (i, plan) -> collect i (plan :: acc)
    in
    let segments = collect m [] in
    ( segments,
      { mip_solves = Atomic.get solves; mip_cache_hits = Atomic.get hits;
        candidates = Atomic.get cands;
        pruned_infeasible = Atomic.get pruned } )
  end
