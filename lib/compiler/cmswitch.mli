(** CMSwitch compilation driver: the end-to-end pipeline of Fig. 7
    (graph -> operator extraction -> DP segmentation with per-segment MIP
    allocation -> placement -> meta-operator code generation). *)

val log_src : Logs.src
(** The compiler's log source ("cmswitch"): enable [Debug] to trace the
    pipeline's pass boundaries. *)

type options = {
  partition_fraction : float;   (** sub-operator cap, fraction of the chip *)
  segment : Segment.options;
}

val default_options : options

type result = {
  chip : Cim_arch.Chip.t;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array;
  schedule : Plan.schedule;
  places : Placement.seg_place list;
  program : Cim_metaop.Flow.program;
  dp_stats : Segment.stats;
  degradation : Degrade.report;
      (** which solve stages fired per segment, the usable-array pool the
          plan was made against, and the static flow-validator findings —
          empty events/diagnostics on a clean full-capacity compile *)
  compile_seconds : float;      (** wall-clock compilation time (Fig. 18) *)
}

val compile :
  ?options:options -> ?faults:Cim_arch.Faultmap.t -> Cim_arch.Chip.t ->
  Cim_nnir.Graph.t -> result
(** With [faults], the solver plans against
    {!Cim_arch.Faultmap.effective_chip} (only freely-assignable arrays
    count as capacity) while placement runs on the real chip with dead
    arrays masked and stuck arrays pinned to their mode; the emitted
    program is re-checked by the {!Cim_metaop.Check} flow validator and any
    findings land in [degradation.diagnostics]. Raises
    [Failure]/[Opinfo.Unsupported] on graphs the (remaining) chip cannot
    run — use {!compile_robust} for a non-raising pipeline. *)

val compile_robust :
  ?options:options -> ?faults:Cim_arch.Faultmap.t -> Cim_arch.Chip.t ->
  Cim_nnir.Graph.t -> (result, Degrade.report) Stdlib.result
(** Never raises: on pipeline failure it retries with serial single-operator
    segments under greedy allocation (every segment recorded as a
    [Serial_fallback] event); when even that cannot fit an operator, returns
    [Error report] whose diagnostics say what failed at each stage. *)

val memory_mode_ratio : result -> float
(** Average over segments of (memory-mode arrays / chip arrays) — the
    metric of Fig. 16's last row. *)

(** End-to-end model cost with block reuse: transformer benchmarks compile
    one block and replicate it [n_layers] times (plus the LM head), as the
    paper does; CNNs compile whole. *)
type model_cost = {
  model : string;
  workload : Cim_models.Workload.t;
  layer : result option;        (** the reused block, when block reuse applies *)
  whole : result option;        (** whole-graph compilation (CNNs) *)
  head : result option;         (** LM head (decoder/encoder output projection) *)
  total_cycles : float;
  mem_ratio : float;
  compile_seconds : float;
}

val compile_model :
  ?options:options -> ?faults:Cim_arch.Faultmap.t -> Cim_arch.Chip.t ->
  Cim_models.Zoo.entry -> Cim_models.Workload.t -> model_cost

val head_graph :
  Cim_models.Zoo.entry -> Cim_models.Workload.t -> Cim_nnir.Graph.t option
(** The LM-head projection graph compiled alongside the reused block;
    [None] for CNNs. Shared with the baseline compilers so every compiler
    prices the same end-to-end network. *)
