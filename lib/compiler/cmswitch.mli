(** CMSwitch compilation driver: the end-to-end pipeline of Fig. 7
    (graph -> operator extraction -> DP segmentation with per-segment MIP
    allocation -> placement -> meta-operator code generation).

    Since the nanopass redesign the driver is thin: the phases live in
    {!Passes} as first-class pass values and every entry point here folds
    {!Passes.run_pipeline} over a pass list ({!Passes.default_pipeline}
    unless overridden), projecting the final {!Passes.state} onto
    {!result}. Custom pipelines, per-pass validation and post-pass
    observation plug in through [?passes] / [?validate_each] / [?on_pass];
    the default pipeline is byte-identical to the historical hardwired
    driver.

    Compilation is configured through {!Config} — one flat record;
    [Config.canonical] is the basis of the compilation-cache keys, which
    is why the flattening matters: a cache key must cover {e every}
    semantic knob exactly once. *)

val log_src : Logs.src
(** The compiler's log source ("cmswitch"): enable [Debug] to trace the
    pipeline's pass boundaries (see also {!Passes.log_src}). *)

(** The unified compiler configuration: every semantic knob of the
    pipeline, flattened, plus the fault map and the compilation cache.
    Build with the [with_*] combinators:
    {[Config.default |> Config.with_jobs 4
                     |> Config.with_lp_backend Cim_solver.Milp.Revised]} *)
module Config : sig
  type t = {
    partition_fraction : float;
        (** sub-operator cap, fraction of the chip (Opinfo.extract) *)
    max_segment_ops : int;        (** DP window cap (Segment) *)
    memoize : bool;               (** memoise window MIPs by signature *)
    jobs : int;
        (** concurrent MILP solvers per DP frontier; output is
            byte-identical for every value, so [jobs] is {e excluded} from
            {!canonical} *)
    milp_max_nodes : int;         (** branch-and-bound node budget (Alloc) *)
    refine : bool;                (** lexicographic array-count refinement *)
    force_all_compute : bool;     (** CIM-MLC restriction *)
    lp_backend : Cim_solver.Milp.backend;
    tensor_backend : Cim_tensor.Kernels.backend;
        (** kernel engine for simulation/verification downstream of this
            compile; both backends are bitwise identical, so like [jobs]
            it is {e excluded} from {!canonical} *)
    buckets : Bucket.t option;
        (** length-bucketing policy for {!compile_model} /
            {!session_step}: sequence workloads compile at their
            {!Bucket.ceiling} instead of the raw length. Semantic (the
            compiled graph changes), so it {e is} part of {!canonical}. *)
    faults : Cim_arch.Faultmap.t option;
        (** plan around these faults *)
    cache : Cim_cache.Store.t option;
        (** two-tier compilation cache; [None] compiles from scratch *)
  }

  val default : t
  (** partition_fraction 0.5, window 10, memoisation on, MILP node budget
      600 with refinement, dual-mode search, [Revised] LP backend, no
      buckets, no faults, no cache. [jobs] defaults to
      {!Cim_util.Pool.default_jobs}. *)

  val with_partition_fraction : float -> t -> t
  val with_max_segment_ops : int -> t -> t
  val with_memoize : bool -> t -> t
  val with_jobs : int -> t -> t
  val with_milp_max_nodes : int -> t -> t
  val with_refine : bool -> t -> t
  val with_force_all_compute : bool -> t -> t
  val with_lp_backend : Cim_solver.Milp.backend -> t -> t
  val with_tensor_backend : Cim_tensor.Kernels.backend -> t -> t
  val with_buckets : Bucket.t option -> t -> t
  val with_faults : Cim_arch.Faultmap.t option -> t -> t
  val with_cache : Cim_cache.Store.t option -> t -> t
  val with_cache_dir : string -> t -> t
  (** [with_cache (Some (Cim_cache.Store.open_dir dir))]. *)

  val to_segment_options : t -> Segment.options
  (** Slot the flat record into the engine's internal options shape. *)

  val to_alloc_options : t -> Alloc.options

  val canonical : t -> string
  (** Deterministic single-line serialisation of every {e semantic} field
      — the compilation-cache key component. Floats are rendered as exact
      binary64 hex ([%h]), booleans and enums as fixed tokens, fields in
      fixed order, so the string is byte-stable across runs, processes and
      platforms. [jobs] and [tensor_backend] (execution strategy under the
      byte-identical determinism contract), [faults] (keyed separately, see
      {!Ccache.prog_key}) and [cache] (plumbing) are excluded. *)

  val of_canonical : string -> (t, string) result
  (** Strict inverse of {!canonical} over the included fields; excluded
      fields come back at their defaults. [canonical] ∘ [of_canonical] ∘
      [canonical] is the identity (the round-trip fixed point the cache
      keys rely on). *)
end

type result = {
  chip : Cim_arch.Chip.t;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array;
  schedule : Plan.schedule;
  places : Placement.seg_place list;
  program : Cim_metaop.Flow.program;
  dp_stats : Segment.stats;
  degradation : Degrade.report;
      (** which solve stages fired per segment, the usable-array pool the
          plan was made against, and the static flow-validator findings —
          empty events/diagnostics on a clean full-capacity compile *)
  compile_seconds : float;      (** wall-clock compilation time (Fig. 18) *)
}

val compile :
  ?config:Config.t -> ?faults:Cim_arch.Faultmap.t ->
  ?shape:string -> ?frontiers:Segment.frontier_state ->
  ?frontier_tag:string -> ?passes:Passes.pass list -> ?validate_each:bool ->
  ?on_pass:(Passes.pass -> Passes.state -> unit) ->
  Cim_arch.Chip.t -> Cim_nnir.Graph.t -> result
(** Run the pass pipeline over the graph. An explicit [faults] always
    overrides [config.faults]. With faults, the solver plans against
    {!Cim_arch.Faultmap.effective_chip} (only freely-assignable arrays
    count as capacity) while placement runs on the real chip with dead
    arrays masked and stuck arrays pinned to their mode; the emitted
    program is re-checked by the {!Cim_metaop.Check} flow validator and
    any findings land in [degradation.diagnostics].

    [passes] (default {!Passes.default_pipeline}) selects the pipeline; it
    must produce the artifacts {!result} projects (a pipeline without
    codegen fails with the missing pass named). [validate_each] runs every
    pass's validator ({!Passes.Pass_error} names the failing pass);
    [on_pass] observes the state after each pass (the CLI's
    [--dump-after]).

    With [config.cache], the whole compilation is first looked up in the
    program tier (key: canonical graph text, chip, fault map,
    [Config.canonical], and the {!Passes.fingerprint} of [passes]); a hit
    replays the cached segmentation through the live placement/codegen
    passes and re-validates the program with {!Cim_metaop.Check}, so a
    stale or corrupted entry degrades to a miss — never a wrong program.
    On a miss the per-segment tier still memoises window MIP solutions
    across runs, and a clean result is stored back. Cache hits preserve
    the byte-identical determinism contract at any job count.

    Raises [Failure]/[Opinfo.Unsupported] on graphs the (remaining) chip
    cannot run — use {!compile_robust} for a non-raising pipeline.

    [shape] is an opaque versioned fragment mixed into the program-tier key
    (see {!Ccache.prog_key}); {!compile_model} derives it from the bucket
    policy. [frontiers] enables incremental DP-prefix reuse across
    successive compiles (see {!Segment.run}); [frontier_tag] namespaces the
    lineages when several distinct graphs share one state. Neither affects
    the emitted program — only compile time. *)

val compile_robust :
  ?config:Config.t -> ?faults:Cim_arch.Faultmap.t ->
  Cim_arch.Chip.t -> Cim_nnir.Graph.t -> (result, Degrade.report) Stdlib.result
(** Never raises: on pipeline failure it retries with
    {!Passes.serial_pipeline} — serial single-operator segments under
    greedy allocation (every segment recorded as a [Serial_fallback]
    event); when even that cannot fit an operator, returns [Error report]
    whose diagnostics say what failed at each stage. The serial fallback
    is never cached. *)

(** What an online recompile produced, and how hard it had to degrade. *)
type recompile_outcome = {
  rc_result : result;
  rc_level : int;
      (** ladder level that produced the plan: 0 = the given config,
          1 = node budget clamped to 32, 2 = near-greedy (node budget 1,
          no refinement), 3 = serial single-operator segments *)
  rc_attempts : int;   (** ladder levels actually tried *)
  rc_seconds : float;  (** total wall-clock across all attempts *)
}

val recompile :
  ?config:Config.t -> ?budget_seconds:float -> ?start_level:int ->
  Cim_arch.Chip.t -> Cim_nnir.Graph.t ->
  (recompile_outcome, Degrade.report) Stdlib.result
(** The reusable recompile-around-faults entry point for runtime serving:
    compile under [config] (put the current fault map in [config.faults]),
    descending a fixed degradation ladder until some level yields a plan.
    Each level is an ordinary {!compile}, so a warm compilation cache makes
    repeated recompiles of previously-seen fault maps near-free; duplicate
    ladder configs are skipped. With [budget_seconds], a spent wall-clock
    budget jumps straight to the cheapest (serial) level rather than giving
    up — the caller needs {e a} plan now, not the best one. Note that a
    wall-clock budget can make the {e chosen level} timing-dependent; leave
    it [None] (the default) where the byte-identical determinism contract
    matters, e.g. under {!Cim_sim.Fleet}'s plan prefetch. [start_level]
    (default 0) skips the expensive levels up front. [Error report] only
    when even serial compilation cannot fit the graph on the remaining
    arrays. Emits [compile.recompile.total] / [compile.recompile.level<N>]
    counters on success. *)

val memory_mode_ratio : result -> float
(** Average over segments of (memory-mode arrays / chip arrays) — the
    metric of Fig. 16's last row. *)

(** End-to-end model cost with block reuse: transformer benchmarks compile
    one block and replicate it [n_layers] times (plus the LM head), as the
    paper does; CNNs compile whole. *)
type model_cost = {
  model : string;
  workload : Cim_models.Workload.t;  (** the workload as requested *)
  padded_workload : Cim_models.Workload.t;
      (** the workload actually compiled — the bucket-ceiling rebuild when a
          policy is active, [workload] itself otherwise. [total_cycles] and
          every [result] price this shape: the padded program is what
          executes, so the padding cost is in the Eq. 10 numbers, never
          hidden *)
  bucket_ceiling : int option;
      (** context length compiled at, when a bucket policy applied *)
  layer : result option;        (** the reused block, when block reuse applies *)
  whole : result option;        (** whole-graph compilation (CNNs) *)
  head : result option;         (** LM head (decoder/encoder output projection) *)
  total_cycles : float;
  mem_ratio : float;
  compile_seconds : float;
}

val compile_model :
  ?config:Config.t -> ?faults:Cim_arch.Faultmap.t ->
  ?frontiers:Segment.frontier_state -> ?passes:Passes.pass list ->
  ?validate_each:bool -> ?on_pass:(Passes.pass -> Passes.state -> unit) ->
  Cim_arch.Chip.t -> Cim_models.Zoo.entry -> Cim_models.Workload.t -> model_cost
(** [passes] / [validate_each] / [on_pass] are forwarded to every
    underlying {!compile} (the block, the whole network and the LM head
    alike). With [config.buckets], sequence workloads (never CNNs) are rebuilt at
    their bucket ceiling before compilation: the cache keys carry a
    [shape.v1] fragment derived from the bucket (so every length inside a
    bucket shares the same program- and seg-tier entries), and a
    {!Cim_nnir.Shape_infer.dominates} check asserts the padded graph covers
    the actual shapes whenever padding occurred. *)

(** {2 Compilation sessions — the dynamic-shape decode fast path}

    A [session] pins (config, chip, model) and carries the two stores that
    make a decode sweep cheap: an in-session memo of compiled bucket
    ceilings (same ceiling twice = free) and a {!Segment.frontier_state}
    (crossing into a new bucket re-solves only the DP suffix whose
    operators changed). With [config.cache] also set, warm sweeps re-solve
    zero MILPs across process restarts. *)

type session

type step = {
  step_cost : model_cost;
  step_ceiling : int;        (** context length this step compiled at *)
  step_recompiled : bool;    (** [false] = in-session memo hit (no work) *)
  step_prefix_reused : int;  (** DP ops seeded from the frontier this step *)
  step_seconds : float;      (** wall clock of this step *)
}

val session : ?config:Config.t -> Cim_arch.Chip.t -> Cim_models.Zoo.entry -> session

val session_step : session -> Cim_models.Workload.t -> step
(** Price one decode/prefill step. The program underlying [step_cost] is
    byte-identical to what a cold {!compile_model} of the same (padded)
    workload would emit — memo, cache and frontier reuse change wall-clock
    only. *)

val head_graph :
  Cim_models.Zoo.entry -> Cim_models.Workload.t -> Cim_nnir.Graph.t option
(** The LM-head projection graph compiled alongside the reused block;
    [None] for CNNs. Shared with the baseline compilers so every compiler
    prices the same end-to-end network. *)
