module Chip = Cim_arch.Chip
module Faultmap = Cim_arch.Faultmap
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics
module J = Cim_obs.Json
module Flow = Cim_metaop.Flow
module Isa = Cim_metaop.Isa

let log_src =
  Logs.Src.create "cmswitch.passes" ~doc:"CMSwitch nanopass pipeline"

module Log = (val Logs.src_log log_src : Logs.LOG)

type env = {
  chip : Chip.t;
  solve_chip : Chip.t;
  faults : Faultmap.t option;
  partition_fraction : float;
  seg_options : Segment.options;
  frontiers : Segment.frontier_state option;
  frontier_tag : string;
  on_stage : Degrade.event -> unit;
}

type state = {
  env : env;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array option;
  segments : Plan.seg_plan list option;
  dp_stats : Segment.stats option;
  places : Placement.seg_place list option;
  schedule : Plan.schedule option;
  program : Flow.program option;
  isa : Isa.image option;
  diagnostics : string list option;
}

type pass = {
  name : string;
  describe : string;
  run : state -> state;
  validate : (state -> (unit, string) result) option;
}

exception Pass_error of { pass : string; reason : string }

let () =
  Printexc.register_printer (function
    | Pass_error { pass; reason } ->
      Some (Printf.sprintf "pass %S failed validation: %s" pass reason)
    | _ -> None)

let make_env ?faults ?frontiers ?(frontier_tag = "") ?(on_stage = fun _ -> ())
    ~partition_fraction ~seg_options chip =
  let solve_chip =
    match faults with None -> chip | Some fm -> Faultmap.effective_chip fm
  in
  { chip; solve_chip; faults; partition_fraction; seg_options; frontiers;
    frontier_tag; on_stage }

let init env graph =
  { env; graph; ops = None; segments = None; dp_stats = None; places = None;
    schedule = None; program = None; isa = None; diagnostics = None }

(* a missing artifact in a custom pipeline should name the producing pass,
   not crash on a None *)
let missing what producer =
  failwith
    (Printf.sprintf
       "pipeline state: no %s — the %S pass did not run before one that \
        needs it"
       what producer)

let ops_exn st = match st.ops with Some o -> o | None -> missing "operators" "extract"
let segments_exn st =
  match st.segments with Some s -> s | None -> missing "segmentation" "segment"
let dp_stats_exn st =
  match st.dp_stats with Some s -> s | None -> missing "DP stats" "segment"
let places_exn st =
  match st.places with Some p -> p | None -> missing "placement" "place"
let schedule_exn st =
  match st.schedule with Some s -> s | None -> missing "schedule" "schedule"
let program_exn st =
  match st.program with Some p -> p | None -> missing "program" "codegen"
let isa_exn st = match st.isa with Some i -> i | None -> missing "ISA image" "lower_isa"
let diagnostics_exn st =
  match st.diagnostics with Some d -> d | None -> missing "diagnostics" "check"

(* Roll the schedule up from the *placed* segments so switch latency is
   charged on the realised CM.switch lists rather than the DP estimate. *)
let placed_schedule chip ops (places : Placement.seg_place list) =
  let ctx = Plan.make_ctx ops in
  let intra = ref 0. and wb = ref 0. and sw = ref 0. and rw = ref 0. in
  let prev = ref None in
  List.iter
    (fun (sp : Placement.seg_place) ->
      let seg = sp.Placement.plan in
      let est = Plan.inter_segment_cost chip ctx ~prev:!prev ~cur:seg in
      intra := !intra +. seg.Plan.intra_cycles;
      wb := !wb +. est.Plan.writeback;
      (* Eq. 2 on the placed arrays: in-place K-cache claims (§5.3) keep
         their cell contents across the mode switch and are not
         reprogrammed *)
      let rw_placed =
        List.fold_left
          (fun acc (op : Placement.op_place) ->
            Float.max acc
              (Cim_arch.Cost.weight_rewrite_latency chip
                 ~max_com:
                   (List.length op.Placement.compute
                   - List.length op.Placement.in_place)))
          0. sp.Placement.ops
      in
      rw := !rw +. rw_placed;
      sw :=
        !sw
        +. Cim_arch.Cost.switch_latency chip
             ~m2c:(List.length sp.Placement.to_compute)
             ~c2m:(List.length sp.Placement.to_memory);
      prev := Some seg)
    places;
  {
    Plan.compiler = "CMSwitch";
    segments = List.map (fun sp -> sp.Placement.plan) places;
    intra = !intra;
    writeback = !wb;
    switch = !sw;
    rewrite = !rw;
    total_cycles = !intra +. !wb +. !sw +. !rw;
  }

(* ---- the passes ---------------------------------------------------------- *)

let p_extract =
  {
    name = "extract";
    describe = "CIM-operator extraction + sub-operator partitioning (§4.3.1)";
    run =
      (fun st ->
        let e = st.env in
        let ops =
          Trace.with_span "partition" ~cat:"compiler"
            ~args:[ ("fraction", J.Float e.partition_fraction) ]
            (fun () ->
              Opinfo.extract e.solve_chip
                ~partition_fraction:e.partition_fraction st.graph)
        in
        Log.debug (fun m ->
            m "extracted %d CIM (sub-)operators (cap %.2f of the chip)"
              (Array.length ops) e.partition_fraction);
        { st with ops = Some ops });
    validate =
      Some
        (fun st ->
          let ops = ops_exn st in
          let bad = ref None in
          Array.iteri
            (fun i (o : Opinfo.t) ->
              if !bad = None && o.Opinfo.uid <> i then bad := Some (i, o.Opinfo.uid))
            ops;
          match !bad with
          | None -> Ok ()
          | Some (i, uid) ->
            Error (Printf.sprintf "operator at index %d has uid %d" i uid));
  }

let segs_tile ~m segs =
  let rec tile expect = function
    | [] -> expect = m
    | (s : Plan.seg_plan) :: rest ->
      s.Plan.lo = expect && s.Plan.hi >= s.Plan.lo && tile (s.Plan.hi + 1) rest
  in
  tile 0 segs

let validate_tiling st =
  let ops = ops_exn st and segs = segments_exn st in
  if segs_tile ~m:(Array.length ops) segs then Ok ()
  else Error "segments do not tile the operator list"

let p_segment =
  {
    name = "segment";
    describe = "DP segmentation with per-window MIP allocation (Alg. 1)";
    run =
      (fun st ->
        let e = st.env in
        let ops = ops_exn st in
        let segments, dp_stats =
          Trace.with_span "dp.segmentation" ~cat:"compiler"
            ~args:
              [ ("ops", J.Int (Array.length ops));
                ("window", J.Int e.seg_options.Segment.max_segment_ops) ]
            (fun () ->
              Segment.run ~options:e.seg_options ?frontiers:e.frontiers
                ~frontier_tag:(e.frontier_tag ^ ":main") ~on_stage:e.on_stage
                e.solve_chip ops)
        in
        Log.debug (fun m ->
            m "DP: %d segments, %d MIP solves (%d cache hits), %d candidates"
              (List.length segments) dp_stats.Segment.mip_solves
              dp_stats.Segment.mip_cache_hits dp_stats.Segment.candidates);
        { st with segments = Some segments; dp_stats = Some dp_stats });
    validate = Some validate_tiling;
  }

let p_segment_serial =
  {
    name = "segment_serial";
    describe = "serial fallback: one operator per segment, greedy allocation";
    run =
      (fun st ->
        let e = st.env in
        let ops = ops_exn st in
        let segments =
          Array.to_list
            (Array.mapi
               (fun i _ ->
                 match Greedy.solve e.solve_chip ops ~lo:i ~hi:i with
                 | Some plan ->
                   Degrade.count_stage Degrade.Serial_fallback;
                   e.on_stage
                     { Degrade.lo = i; hi = i; stage = Degrade.Serial_fallback;
                       detail = "single-operator segment via greedy allocation" };
                   plan
                 | None ->
                   failwith
                     (Printf.sprintf
                        "operator %d does not fit even alone on %d usable arrays"
                        i e.solve_chip.Chip.n_arrays))
               ops)
        in
        let dp_stats =
          { Segment.mip_solves = 0; mip_cache_hits = 0;
            candidates = Array.length ops; pruned_infeasible = 0 }
        in
        { st with segments = Some segments; dp_stats = Some dp_stats });
    validate = Some validate_tiling;
  }

let p_place =
  {
    name = "place";
    describe = "physical array placement on the real chip (λ_z of Table 1)";
    run =
      (fun st ->
        let e = st.env in
        let places =
          Trace.with_span "placement" ~cat:"compiler" (fun () ->
              Placement.place e.chip ?faults:e.faults (ops_exn st)
                (segments_exn st))
        in
        { st with places = Some places });
    validate =
      Some
        (fun st ->
          let segs = segments_exn st and places = places_exn st in
          if List.length segs = List.length places then Ok ()
          else
            Error
              (Printf.sprintf "%d segments but %d placed segments"
                 (List.length segs) (List.length places)));
  }

let p_schedule =
  {
    name = "schedule";
    describe = "roll the schedule up from the placed segments (Eq. 10)";
    run =
      (fun st ->
        let schedule =
          Trace.with_span "schedule" ~cat:"compiler" (fun () ->
              placed_schedule st.env.chip (ops_exn st) (places_exn st))
        in
        Log.debug (fun m ->
            m "schedule: %.0f cycles (intra %.0f, wb %.0f, switch %.0f, rewrite %.0f)"
              schedule.Plan.total_cycles schedule.Plan.intra
              schedule.Plan.writeback schedule.Plan.switch schedule.Plan.rewrite);
        { st with schedule = Some schedule });
    validate =
      Some
        (fun st ->
          let s = schedule_exn st in
          if Float.is_finite s.Plan.total_cycles && s.Plan.total_cycles >= 0.
          then Ok ()
          else Error "schedule total_cycles is not a finite non-negative float");
  }

(* The DP's inter-segment costs are estimates, so the dual-mode plan can
   in corner cases place worse than a pure all-compute plan would. The
   dual-mode search space strictly contains the all-compute one, so when
   the restricted plan turns out faster after placement, adopt it — this
   is the CIM-MLC kernel schedule the paper says CMSwitch falls back to
   (§5.4: "CMSwitch's performance converges with that of CIM-MLC, as we
   adopt its kernel optimizations"). *)
let p_probe =
  {
    name = "probe";
    describe = "all-compute probe: adopt the CIM-MLC plan when it places faster";
    run =
      (fun st ->
        let e = st.env in
        if e.seg_options.Segment.alloc.Alloc.force_all_compute then st
        else begin
          let ops = ops_exn st in
          let schedule = schedule_exn st and dp_stats = dp_stats_exn st in
          let restricted =
            { e.seg_options with
              Segment.alloc = { e.seg_options.Segment.alloc with
                                Alloc.force_all_compute = true } }
          in
          let seg_ac, stats_ac, places_ac, sched_ac =
            Trace.with_span "all_compute.probe" ~cat:"compiler" (fun () ->
                let seg_ac, stats_ac =
                  Segment.run ~options:restricted ?frontiers:e.frontiers
                    ~frontier_tag:(e.frontier_tag ^ ":all_compute")
                    ~on_stage:e.on_stage e.solve_chip ops
                in
                let places_ac =
                  Placement.place e.chip ?faults:e.faults ops seg_ac
                in
                (seg_ac, stats_ac, places_ac, placed_schedule e.chip ops places_ac))
          in
          let dp_stats =
            { Segment.mip_solves =
                dp_stats.Segment.mip_solves + stats_ac.Segment.mip_solves;
              mip_cache_hits =
                dp_stats.Segment.mip_cache_hits + stats_ac.Segment.mip_cache_hits;
              candidates = dp_stats.Segment.candidates + stats_ac.Segment.candidates;
              pruned_infeasible =
                dp_stats.Segment.pruned_infeasible
                + stats_ac.Segment.pruned_infeasible }
          in
          if sched_ac.Plan.total_cycles < schedule.Plan.total_cycles then
            { st with segments = Some seg_ac; places = Some places_ac;
              schedule = Some sched_ac; dp_stats = Some dp_stats }
          else { st with dp_stats = Some dp_stats }
        end);
    validate = None;
  }

let p_codegen =
  {
    name = "codegen";
    describe = "meta-operator code generation (Fig. 13)";
    run =
      (fun st ->
        let program =
          Trace.with_span "codegen" ~cat:"compiler" (fun () ->
              Codegen.generate st.env.chip st.graph (ops_exn st) (places_exn st))
        in
        { st with program = Some program });
    validate =
      Some
        (fun st ->
          match Flow.validate st.env.chip (program_exn st) with
          | Ok () -> Ok ()
          | Error m -> Error m);
  }

let p_check =
  {
    name = "check";
    describe = "static flow validation (Check) into the degradation report";
    run =
      (fun st ->
        let e = st.env in
        let diagnostics =
          Trace.with_span "flow.validate" ~cat:"compiler" (fun () ->
              List.map Cim_metaop.Check.diagnostic_to_string
                (Cim_metaop.Check.errors
                   (Cim_metaop.Check.run e.chip ?faults:e.faults
                      (program_exn st))))
        in
        List.iter
          (fun d -> Log.warn (fun m -> m "flow validator: %s" d))
          diagnostics;
        { st with diagnostics = Some diagnostics });
    validate =
      Some
        (fun st ->
          match diagnostics_exn st with
          | [] -> Ok ()
          | d :: _ -> Error ("flow validator rejected the program: " ^ d));
  }

let p_lower_isa =
  {
    name = "lower_isa";
    describe = "lower the flow onto the MMIO command-stream ISA";
    run =
      (fun st ->
        let isa =
          Trace.with_span "lower_isa" ~cat:"compiler" (fun () ->
              Isa.of_flow (program_exn st))
        in
        { st with isa = Some isa });
    validate =
      Some
        (fun st ->
          let img = isa_exn st in
          (* encode -> decode must reproduce the image, and raising back to
             the meta-op level must reproduce the program byte for byte *)
          match Isa.decode (Isa.encode img) with
          | Error e -> Error ("encode/decode round trip failed: " ^ e)
          | Ok img' ->
            if img' <> img then Error "decoded image differs from encoder input"
            else if
              Flow.to_string (Isa.to_flow img)
              <> Flow.to_string (program_exn st)
            then Error "to_flow does not reproduce the lowered program"
            else Ok ());
  }

let registry =
  [ p_extract; p_segment; p_segment_serial; p_place; p_schedule; p_probe;
    p_codegen; p_check; p_lower_isa ]

let find name = List.find_opt (fun p -> p.name = name) registry

let default_pipeline =
  [ p_extract; p_segment; p_place; p_schedule; p_probe; p_codegen; p_check ]

let serial_pipeline =
  [ p_extract; p_segment_serial; p_place; p_schedule; p_codegen; p_check ]

let parse_list spec =
  let names =
    String.split_on_char ',' spec |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if names = [] then Error "empty pass list"
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | "default" :: rest ->
        resolve (List.rev_append default_pipeline acc) rest
      | "serial" :: rest -> resolve (List.rev_append serial_pipeline acc) rest
      | n :: rest -> (
        match find n with
        | Some p -> resolve (p :: acc) rest
        | None ->
          Error
            (Printf.sprintf "unknown pass %S (known: default, serial, %s)" n
               (String.concat ", " (List.map (fun p -> p.name) registry))))
    in
    resolve [] names

let fingerprint passes =
  Printf.sprintf "passes.v1[%s]"
    (String.concat ";" (List.map (fun p -> p.name) passes))

let default_fingerprint = fingerprint default_pipeline

let run_pass ?(validate = false) p st =
  let t0 = Unix.gettimeofday () in
  let st' =
    Trace.with_span ("pass." ^ p.name) ~cat:"pipeline" (fun () -> p.run st)
  in
  Metrics.observe
    (Metrics.histogram ("compile.pass." ^ p.name ^ ".seconds"))
    (Unix.gettimeofday () -. t0);
  if validate then begin
    match p.validate with
    | None -> ()
    | Some v -> (
      match v st' with
      | Ok () -> Log.debug (fun m -> m "pass %s validated" p.name)
      | Error reason -> raise (Pass_error { pass = p.name; reason }))
  end;
  st'

let run_pipeline ?(validate_each = false) ?on_pass passes st =
  List.fold_left
    (fun st p ->
      let st' = run_pass ~validate:validate_each p st in
      (match on_pass with Some f -> f p st' | None -> ());
      st')
    st passes

let describe_state st =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "graph: %s (%d nodes)" st.graph.Cim_nnir.Graph.graph_name
    (List.length st.graph.Cim_nnir.Graph.nodes);
  (match st.ops with
  | None -> line "ops: <none>"
  | Some ops -> line "ops: %d CIM (sub-)operators" (Array.length ops));
  (match st.segments with
  | None -> line "segments: <none>"
  | Some segs ->
    line "segments: %d" (List.length segs);
    List.iter
      (fun (s : Plan.seg_plan) ->
        line "  seg %d..%d intra=%h com=%d mem=%d" s.Plan.lo s.Plan.hi
          s.Plan.intra_cycles (Plan.com_total s) (Plan.mem_total s))
      segs);
  (match st.dp_stats with
  | None -> ()
  | Some d ->
    line "dp_stats: solves=%d hits=%d candidates=%d pruned=%d"
      d.Segment.mip_solves d.Segment.mip_cache_hits d.Segment.candidates
      d.Segment.pruned_infeasible);
  (match st.places with
  | None -> line "places: <none>"
  | Some p -> line "places: %d placed segments" (List.length p));
  (match st.schedule with
  | None -> line "schedule: <none>"
  | Some s ->
    line "schedule: total=%h (intra=%h wb=%h switch=%h rewrite=%h)"
      s.Plan.total_cycles s.Plan.intra s.Plan.writeback s.Plan.switch
      s.Plan.rewrite);
  (match st.program with
  | None -> line "program: <none>"
  | Some p ->
    let text = Flow.to_string p in
    line "program: %d instrs, %d bytes, md5=%s" (List.length p.Flow.instrs)
      (String.length text)
      (Digest.to_hex (Digest.string text)));
  (match st.isa with
  | None -> line "isa: <none>"
  | Some img ->
    line "isa: %d commands, %d bytes encoded" (Array.length img.Isa.cmds)
      (String.length (Isa.encode img)));
  (match st.diagnostics with
  | None -> line "diagnostics: <not checked>"
  | Some [] -> line "diagnostics: clean"
  | Some ds ->
    line "diagnostics: %d" (List.length ds);
    List.iter (fun d -> line "  %s" d) ds);
  Buffer.contents b
