(* Fast kernel engine. The correctness story lives in kernels.mli: both
   backends are bitwise identical on every kernel, which the blocked loops
   below guarantee by preserving the oracle's per-(i,j) ascending-p
   accumulation order (float) or by integer exactness (int8). *)

module BA = Stdlib.Bigarray
module Pool = Cim_util.Pool

type backend = Boxed | Bigarray

let backend_to_string = function Boxed -> "boxed" | Bigarray -> "bigarray"

let backend_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "boxed" -> Ok Boxed
  | "bigarray" -> Ok Bigarray
  | _ ->
    Error
      (Printf.sprintf "unknown tensor backend %S (expected boxed or bigarray)" s)

let default_backend () =
  match Sys.getenv_opt "CMSWITCH_TENSOR_BACKEND" with
  | None -> Bigarray
  | Some s -> ( match backend_of_string s with Ok b -> b | Error _ -> Bigarray)

let current : backend Atomic.t = Atomic.make (default_backend ())
let backend () = Atomic.get current
let set_backend b = Atomic.set current b

let with_backend b f =
  let prev = Atomic.get current in
  Atomic.set current b;
  Fun.protect ~finally:(fun () -> Atomic.set current prev) f

let pool_slot : Pool.t option Atomic.t = Atomic.make None
let set_pool p = Atomic.set pool_slot p

let with_pool p f =
  let prev = Atomic.get pool_slot in
  Atomic.set pool_slot p;
  Fun.protect ~finally:(fun () -> Atomic.set pool_slot prev) f

(* Below these sizes the submit/await round trip costs more than the win;
   macs counts fused multiply-adds, elems counts element-wise passes. *)
let par_threshold_macs = 1 lsl 21
let par_threshold_elems = 1 lsl 17

let usable_pool ~threshold ~work =
  if work < threshold then None
  else
    match Atomic.get pool_slot with
    | Some p when Pool.jobs p > 1 && Pool.current_worker () = None -> Some p
    | _ -> None

(* Run [f lo hi] over a partition of [0, n) into one contiguous chunk per
   worker (serial when no pool applies). Chunks write disjoint output rows,
   so the merged result is the serial result, bitwise. *)
let par_chunks ~threshold ~work n f =
  match usable_pool ~threshold ~work with
  | None -> if n > 0 then f 0 n
  | Some p ->
    let jobs = min (Pool.jobs p) n in
    if jobs <= 1 then (if n > 0 then f 0 n)
    else begin
      let chunk = ((n + jobs) - 1) / jobs in
      let futs =
        List.init jobs (fun t ->
            let lo = t * chunk in
            let hi = min n (lo + chunk) in
            Pool.submit p (fun () -> if lo < hi then f lo hi))
      in
      List.iter Pool.await futs
    end

(* Order-independent reduction: [seg lo hi] reduces a chunk, [merge] folds
   chunk results in submission order. Exact for max-style merges. *)
let par_reduce ~threshold ~work n ~init ~seg ~merge =
  match usable_pool ~threshold ~work with
  | None -> if n > 0 then seg 0 n else init
  | Some p ->
    let jobs = min (Pool.jobs p) n in
    if jobs <= 1 then (if n > 0 then seg 0 n else init)
    else begin
      let chunk = ((n + jobs) - 1) / jobs in
      let futs =
        List.init jobs (fun t ->
            let lo = t * chunk in
            let hi = min n (lo + chunk) in
            Pool.submit p (fun () -> if lo < hi then seg lo hi else init))
      in
      List.fold_left (fun acc fut -> merge acc (Pool.await fut)) init futs
    end

let clamp_i8 v = if v < -128 then -128 else if v > 127 then 127 else v

(* Loop scheme shared by both matmuls: p blocked by [kb] (outermost, so a
   [m x kb] panel of [a] stays in L2 and a [kb x jt] tile of [b] in L1),
   j register-tiled by [jt] — eight accumulators live in registers across
   the whole p block, giving eight independent FP add chains (the single
   acc of the naive loop is latency-bound on the dependent adds) and
   cutting the out-array traffic to one read-modify-write per block.

   Bitwise identity: for every (i, j) the additions into out.(i,j) happen
   for ascending p — within a block via its register, across blocks via
   the spill/reload — with the oracle's exact [av <> 0] skip (which is
   semantic for floats: skipping beats adding 0. * inf). That is the
   naive loop's exact FP op sequence, just scheduled better. *)
let kb = 256
let jt = 8

let matmul2d a aoff b boff ~m ~k ~n =
  let out = Array.make (m * n) 0. in
  let rows r0 r1 =
    let p0 = ref 0 in
    while !p0 < k do
      let phi = min k (!p0 + kb) in
      let jb = ref 0 in
      while !jb + jt <= n do
        let j0 = !jb in
        for i = r0 to r1 - 1 do
          let abase = aoff + (i * k) in
          let obase = (i * n) + j0 in
          let c0 = ref (Array.unsafe_get out obase)
          and c1 = ref (Array.unsafe_get out (obase + 1))
          and c2 = ref (Array.unsafe_get out (obase + 2))
          and c3 = ref (Array.unsafe_get out (obase + 3))
          and c4 = ref (Array.unsafe_get out (obase + 4))
          and c5 = ref (Array.unsafe_get out (obase + 5))
          and c6 = ref (Array.unsafe_get out (obase + 6))
          and c7 = ref (Array.unsafe_get out (obase + 7)) in
          for p = !p0 to phi - 1 do
            let av = Array.unsafe_get a (abase + p) in
            if av <> 0. then begin
              let bb = boff + (p * n) + j0 in
              c0 := !c0 +. (av *. Array.unsafe_get b bb);
              c1 := !c1 +. (av *. Array.unsafe_get b (bb + 1));
              c2 := !c2 +. (av *. Array.unsafe_get b (bb + 2));
              c3 := !c3 +. (av *. Array.unsafe_get b (bb + 3));
              c4 := !c4 +. (av *. Array.unsafe_get b (bb + 4));
              c5 := !c5 +. (av *. Array.unsafe_get b (bb + 5));
              c6 := !c6 +. (av *. Array.unsafe_get b (bb + 6));
              c7 := !c7 +. (av *. Array.unsafe_get b (bb + 7))
            end
          done;
          Array.unsafe_set out obase !c0;
          Array.unsafe_set out (obase + 1) !c1;
          Array.unsafe_set out (obase + 2) !c2;
          Array.unsafe_set out (obase + 3) !c3;
          Array.unsafe_set out (obase + 4) !c4;
          Array.unsafe_set out (obase + 5) !c5;
          Array.unsafe_set out (obase + 6) !c6;
          Array.unsafe_set out (obase + 7) !c7
        done;
        jb := j0 + jt
      done;
      (* remainder columns, one accumulator each *)
      for j = !jb to n - 1 do
        for i = r0 to r1 - 1 do
          let abase = aoff + (i * k) in
          let c = ref (Array.unsafe_get out ((i * n) + j)) in
          for p = !p0 to phi - 1 do
            let av = Array.unsafe_get a (abase + p) in
            if av <> 0. then
              c := !c +. (av *. Array.unsafe_get b (boff + (p * n) + j))
          done;
          Array.unsafe_set out ((i * n) + j) !c
        done
      done;
      p0 := phi
    done
  in
  par_chunks ~threshold:par_threshold_macs ~work:(m * k * n) m rows;
  out

let pack_i8 v len =
  let p = BA.Array1.create BA.int8_signed BA.c_layout len in
  for i = 0 to len - 1 do
    BA.Array1.unsafe_set p i (Array.unsafe_get v i)
  done;
  p

(* The int8 matmul runs in float64: every product is in [-2^14, 2^14] and
   the accumulator magnitude is bounded by 2^14 * k < 2^53 for any feasible
   k, so the float pipeline computes the integer dot products exactly —
   and float mul/add beats OCaml's tagged-int arithmetic by ~2x. Operands
   are converted once ([m*k + k*n] cvts, amortised over [m] rows); the
   zero-skip is dropped because all values are finite, so the adds it
   avoids contribute exactly 0. *)
let qmatmul2d_f a b ~m ~k ~n =
  let af = Array.make (m * k) 0. and bf = Array.make (k * n) 0. in
  for i = 0 to (m * k) - 1 do
    Array.unsafe_set af i (float_of_int (Array.unsafe_get a i))
  done;
  for i = 0 to (k * n) - 1 do
    Array.unsafe_set bf i (float_of_int (Array.unsafe_get b i))
  done;
  let out = Array.make (m * n) 0. in
  let rows r0 r1 =
    let p0 = ref 0 in
    while !p0 < k do
      let phi = min k (!p0 + kb) in
      let jb = ref 0 in
      while !jb + jt <= n do
        let j0 = !jb in
        for i = r0 to r1 - 1 do
          let abase = i * k in
          let obase = (i * n) + j0 in
          let c0 = ref (Array.unsafe_get out obase)
          and c1 = ref (Array.unsafe_get out (obase + 1))
          and c2 = ref (Array.unsafe_get out (obase + 2))
          and c3 = ref (Array.unsafe_get out (obase + 3))
          and c4 = ref (Array.unsafe_get out (obase + 4))
          and c5 = ref (Array.unsafe_get out (obase + 5))
          and c6 = ref (Array.unsafe_get out (obase + 6))
          and c7 = ref (Array.unsafe_get out (obase + 7)) in
          for p = !p0 to phi - 1 do
            let av = Array.unsafe_get af (abase + p) in
            let bb = (p * n) + j0 in
            c0 := !c0 +. (av *. Array.unsafe_get bf bb);
            c1 := !c1 +. (av *. Array.unsafe_get bf (bb + 1));
            c2 := !c2 +. (av *. Array.unsafe_get bf (bb + 2));
            c3 := !c3 +. (av *. Array.unsafe_get bf (bb + 3));
            c4 := !c4 +. (av *. Array.unsafe_get bf (bb + 4));
            c5 := !c5 +. (av *. Array.unsafe_get bf (bb + 5));
            c6 := !c6 +. (av *. Array.unsafe_get bf (bb + 6));
            c7 := !c7 +. (av *. Array.unsafe_get bf (bb + 7))
          done;
          Array.unsafe_set out obase !c0;
          Array.unsafe_set out (obase + 1) !c1;
          Array.unsafe_set out (obase + 2) !c2;
          Array.unsafe_set out (obase + 3) !c3;
          Array.unsafe_set out (obase + 4) !c4;
          Array.unsafe_set out (obase + 5) !c5;
          Array.unsafe_set out (obase + 6) !c6;
          Array.unsafe_set out (obase + 7) !c7
        done;
        jb := j0 + jt
      done;
      for j = !jb to n - 1 do
        for i = r0 to r1 - 1 do
          let abase = i * k in
          let c = ref (Array.unsafe_get out ((i * n) + j)) in
          for p = !p0 to phi - 1 do
            c :=
              !c
              +. (Array.unsafe_get af (abase + p)
                 *. Array.unsafe_get bf ((p * n) + j))
          done;
          Array.unsafe_set out ((i * n) + j) !c
        done
      done;
      p0 := phi
    done
  in
  par_chunks ~threshold:par_threshold_macs ~work:(m * k * n) m rows;
  Array.map int_of_float out

(* Few-row (decode-shaped) calls: the [k*n] operand conversion above would
   dominate, so stream [b] from a dense int8 Bigarray pack instead — 8x
   denser than the boxed int rows, and packing is one byte store per
   element. *)
let qmatmul2d_i8 a b ~m ~k ~n =
  let a8 = pack_i8 a (m * k) and b8 = pack_i8 b (k * n) in
  let out = Array.make (m * n) 0 in
  let rows r0 r1 =
    let p0 = ref 0 in
    while !p0 < k do
      let phi = min k (!p0 + kb) in
      let jb = ref 0 in
      while !jb + jt <= n do
        let j0 = !jb in
        for i = r0 to r1 - 1 do
          let abase = i * k in
          let obase = (i * n) + j0 in
          let c0 = ref (Array.unsafe_get out obase)
          and c1 = ref (Array.unsafe_get out (obase + 1))
          and c2 = ref (Array.unsafe_get out (obase + 2))
          and c3 = ref (Array.unsafe_get out (obase + 3))
          and c4 = ref (Array.unsafe_get out (obase + 4))
          and c5 = ref (Array.unsafe_get out (obase + 5))
          and c6 = ref (Array.unsafe_get out (obase + 6))
          and c7 = ref (Array.unsafe_get out (obase + 7)) in
          for p = !p0 to phi - 1 do
            let av = BA.Array1.unsafe_get a8 (abase + p) in
            if av <> 0 then begin
              let bb = (p * n) + j0 in
              c0 := !c0 + (av * BA.Array1.unsafe_get b8 bb);
              c1 := !c1 + (av * BA.Array1.unsafe_get b8 (bb + 1));
              c2 := !c2 + (av * BA.Array1.unsafe_get b8 (bb + 2));
              c3 := !c3 + (av * BA.Array1.unsafe_get b8 (bb + 3));
              c4 := !c4 + (av * BA.Array1.unsafe_get b8 (bb + 4));
              c5 := !c5 + (av * BA.Array1.unsafe_get b8 (bb + 5));
              c6 := !c6 + (av * BA.Array1.unsafe_get b8 (bb + 6));
              c7 := !c7 + (av * BA.Array1.unsafe_get b8 (bb + 7))
            end
          done;
          Array.unsafe_set out obase !c0;
          Array.unsafe_set out (obase + 1) !c1;
          Array.unsafe_set out (obase + 2) !c2;
          Array.unsafe_set out (obase + 3) !c3;
          Array.unsafe_set out (obase + 4) !c4;
          Array.unsafe_set out (obase + 5) !c5;
          Array.unsafe_set out (obase + 6) !c6;
          Array.unsafe_set out (obase + 7) !c7
        done;
        jb := j0 + jt
      done;
      for j = !jb to n - 1 do
        for i = r0 to r1 - 1 do
          let abase = i * k in
          let c = ref (Array.unsafe_get out ((i * n) + j)) in
          for p = !p0 to phi - 1 do
            let av = BA.Array1.unsafe_get a8 (abase + p) in
            if av <> 0 then c := !c + (av * BA.Array1.unsafe_get b8 ((p * n) + j))
          done;
          Array.unsafe_set out ((i * n) + j) !c
        done
      done;
      p0 := phi
    done
  in
  par_chunks ~threshold:par_threshold_macs ~work:(m * k * n) m rows;
  out

(* Both variants compute the same integers exactly; pick by whether the
   one-off operand conversion amortises over enough output rows. *)
let qmatmul2d a b ~m ~k ~n =
  if m >= 8 then qmatmul2d_f a b ~m ~k ~n else qmatmul2d_i8 a b ~m ~k ~n

let im2col src soff ~c ~h ~w ~kh ~kw ~stride ~pad ~oh ~ow ~dst ~dst_row0 =
  let cols = c * kh * kw in
  let khw = kh * kw in
  let row = ref dst_row0 in
  for oy = 0 to oh - 1 do
    let iy0 = (oy * stride) - pad in
    for ox = 0 to ow - 1 do
      let ix0 = (ox * stride) - pad in
      let base = !row * cols in
      for ci = 0 to c - 1 do
        let cbase = soff + (ci * h * w) in
        let dcbase = base + (ci * khw) in
        for ky = 0 to kh - 1 do
          let iy = iy0 + ky in
          let dbase = dcbase + (ky * kw) in
          if iy < 0 || iy >= h then Array.fill dst dbase kw 0.
          else begin
            let sbase = cbase + (iy * w) in
            if ix0 >= 0 && ix0 + kw <= w then
              Array.blit src (sbase + ix0) dst dbase kw
            else
              for kx = 0 to kw - 1 do
                let ix = ix0 + kx in
                Array.unsafe_set dst (dbase + kx)
                  (if ix < 0 || ix >= w then 0.
                   else Array.unsafe_get src (sbase + ix))
              done
          end
        done
      done;
      incr row
    done
  done

let max_abs v =
  let len = Array.length v in
  let seg lo hi =
    let m = ref 0. in
    for i = lo to hi - 1 do
      let x = Float.abs (Array.unsafe_get v i) in
      if x > !m then m := x
    done;
    !m
  in
  par_reduce ~threshold:par_threshold_elems ~work:len len ~init:0. ~seg
    ~merge:Float.max

let quantize_values v ~scale =
  let len = Array.length v in
  let out = Array.make len 0 in
  par_chunks ~threshold:par_threshold_elems ~work:len len (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set out i
          (clamp_i8
             (int_of_float (Float.round (Array.unsafe_get v i /. scale))))
      done);
  out

let max_abs_int v =
  let len = Array.length v in
  let seg lo hi =
    let m = ref 0 in
    for i = lo to hi - 1 do
      let x = abs (Array.unsafe_get v i) in
      if x > !m then m := x
    done;
    !m
  in
  par_reduce ~threshold:par_threshold_elems ~work:len len ~init:0 ~seg
    ~merge:max

let requantize_values acc ~in_scale ~scale =
  let len = Array.length acc in
  let out = Array.make len 0 in
  par_chunks ~threshold:par_threshold_elems ~work:len len (fun lo hi ->
      for i = lo to hi - 1 do
        Array.unsafe_set out i
          (clamp_i8
             (int_of_float
                (Float.round
                   (float_of_int (Array.unsafe_get acc i) *. in_scale /. scale))))
      done);
  out
