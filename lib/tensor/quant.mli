(** Symmetric int8 quantisation: the paper evaluates every model with 8-bit
    weights and activations, and the CIM arrays compute on int8 operands with
    wide accumulation. *)

type qtensor = {
  values : int array;  (** each in [-128, 127] *)
  scale : float;       (** real = scale * value *)
  shape : Shape.t;
}

val quantize : Tensor.t -> qtensor
(** Symmetric per-tensor quantisation; scale = max|x| / 127 (scale 1.0 for an
    all-zero tensor). *)

val dequantize : qtensor -> Tensor.t

val clamp_i8 : int -> int
(** Saturate to [-128, 127]. *)

val requantize : int array -> Shape.t -> in_scale:float -> qtensor
(** Take wide accumulator values with an effective input scale and produce a
    fresh int8 tensor with a new per-tensor scale. Raises [Invalid_argument]
    when [in_scale] is not strictly positive (a zero scale would silently
    turn every accumulator into 0 through a NaN). *)

val matmul : qtensor -> qtensor -> qtensor
(** [matmul a b] for a:[m;k] b:[k;n] (2-d only), wide accumulation then
    requantisation — the arithmetic a CIM compute array performs. Dispatches
    on {!Kernels.backend} ([Bigarray] packs operands into int8 Bigarrays and
    runs blocked loops); both backends produce identical values bit for bit
    because integer accumulation is exact. *)

val quant_error : Tensor.t -> float
(** Max |x - dequant(quant(x))| — used by property tests to bound the
    round-trip error to one quantisation step. *)
