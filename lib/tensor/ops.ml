(* The 2-d float kernel, oracle form: safe accesses, naive loop order. The
   fast backend (Kernels.matmul2d) must match it bitwise — see kernels.mli
   for why the blocked loops preserve this exact accumulation order. *)
let matmul2d_boxed da aoff db boff ~m ~k ~n =
  let out = Array.make (m * n) 0. in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let av = da.(aoff + (i * k) + p) in
      if av <> 0. then
        for j = 0 to n - 1 do
          out.((i * n) + j) <- out.((i * n) + j) +. (av *. db.(boff + (p * n) + j))
        done
    done
  done;
  out

let matmul2d da aoff db boff ~m ~k ~n =
  match Kernels.backend () with
  | Kernels.Boxed -> matmul2d_boxed da aoff db boff ~m ~k ~n
  | Kernels.Bigarray -> Kernels.matmul2d da aoff db boff ~m ~k ~n

let matmul a b =
  let da = Tensor.data a and db = Tensor.data b in
  match (Tensor.shape a, Tensor.shape b) with
  | [ m; k ], [ k'; n ] when k = k' ->
    Tensor.create (Shape.of_list [ m; n ]) (matmul2d da 0 db 0 ~m ~k ~n)
  | [ bdim; m; k ], [ k'; n ] when k = k' ->
    (* batch slices are indexed with offsets, not copied per iteration *)
    let out = Tensor.zeros (Shape.of_list [ bdim; m; n ]) in
    for bi = 0 to bdim - 1 do
      let r = matmul2d da (bi * m * k) db 0 ~m ~k ~n in
      Array.blit r 0 (Tensor.data out) (bi * m * n) (m * n)
    done;
    out
  | [ bdim; m; k ], [ bdim'; k'; n ] when k = k' && bdim = bdim' ->
    let out = Tensor.zeros (Shape.of_list [ bdim; m; n ]) in
    for bi = 0 to bdim - 1 do
      let r = matmul2d da (bi * m * k) db (bi * k * n) ~m ~k ~n in
      Array.blit r 0 (Tensor.data out) (bi * m * n) (m * n)
    done;
    out
  | sa, sb ->
    invalid_arg
      (Printf.sprintf "Ops.matmul: incompatible shapes %s x %s"
         (Shape.to_string sa) (Shape.to_string sb))

let broadcast_op name f a b =
  match Shape.broadcast (Tensor.shape a) (Tensor.shape b) with
  | None ->
    invalid_arg
      (Printf.sprintf "Ops.%s: shapes %s and %s do not broadcast" name
         (Shape.to_string (Tensor.shape a))
         (Shape.to_string (Tensor.shape b)))
  | Some shape ->
    let rank = Shape.rank shape in
    let pad s = List.init (rank - Shape.rank s) (fun _ -> 1) @ s in
    let sa = pad (Tensor.shape a) and sb = pad (Tensor.shape b) in
    let a = Tensor.reshape a (Shape.of_list sa)
    and b = Tensor.reshape b (Shape.of_list sb) in
    Tensor.init shape (fun idx ->
        let clip s = List.map2 (fun i d -> if d = 1 then 0 else i) idx s in
        f (Tensor.get a (clip sa)) (Tensor.get b (clip sb)))

let add a b = broadcast_op "add" ( +. ) a b
let mul a b = broadcast_op "mul" ( *. ) a b
let relu = Tensor.map (fun x -> Float.max 0. x)

let gelu =
  let c = sqrt (2. /. Float.pi) in
  Tensor.map (fun x -> 0.5 *. x *. (1. +. tanh (c *. (x +. (0.044715 *. x *. x *. x)))))

let silu = Tensor.map (fun x -> x /. (1. +. exp (-.x)))

(* Apply [f row] to each contiguous slice along the last axis. *)
let along_last_axis t f =
  let shape = Tensor.shape t in
  let d = Shape.dim shape (-1) in
  let rows = Shape.numel shape / d in
  let out = Tensor.zeros shape in
  let src = Tensor.data t and dst = Tensor.data out in
  let row = Array.make d 0. in
  for r = 0 to rows - 1 do
    Array.blit src (r * d) row 0 d;
    let res = f row in
    Array.blit res 0 dst (r * d) d
  done;
  out

let softmax t =
  along_last_axis t (fun row ->
      let m = Array.fold_left Float.max neg_infinity row in
      let exps = Array.map (fun x -> exp (x -. m)) row in
      let s = Array.fold_left ( +. ) 0. exps in
      Array.map (fun e -> e /. s) exps)

let layernorm ?(eps = 1e-5) t ~gamma ~beta =
  let d = Shape.dim (Tensor.shape t) (-1) in
  if Tensor.numel gamma <> d || Tensor.numel beta <> d then
    invalid_arg "Ops.layernorm: gamma/beta length mismatch";
  let g = Tensor.data gamma and b = Tensor.data beta in
  along_last_axis t (fun row ->
      let mu = Array.fold_left ( +. ) 0. row /. float_of_int d in
      let var =
        Array.fold_left (fun acc x -> acc +. ((x -. mu) ** 2.)) 0. row
        /. float_of_int d
      in
      let denom = sqrt (var +. eps) in
      Array.mapi (fun i x -> ((x -. mu) /. denom *. g.(i)) +. b.(i)) row)

let rmsnorm ?(eps = 1e-5) t ~gamma =
  let d = Shape.dim (Tensor.shape t) (-1) in
  if Tensor.numel gamma <> d then invalid_arg "Ops.rmsnorm: gamma length mismatch";
  let g = Tensor.data gamma in
  along_last_axis t (fun row ->
      let ms = Array.fold_left (fun acc x -> acc +. (x *. x)) 0. row /. float_of_int d in
      let denom = sqrt (ms +. eps) in
      Array.mapi (fun i x -> x /. denom *. g.(i)) row)

let transpose2d t =
  match Tensor.shape t with
  | [ m; n ] ->
    Tensor.init (Shape.of_list [ n; m ]) (fun idx ->
        match idx with
        | [ j; i ] -> Tensor.get t [ i; j ]
        | _ -> assert false)
  | s -> invalid_arg ("Ops.transpose2d: expected rank 2, got " ^ Shape.to_string s)

let permute t perm =
  let shape = Tensor.shape t in
  let r = Shape.rank shape in
  if List.sort compare perm <> List.init r Fun.id then
    invalid_arg "Ops.permute: not a permutation of axes";
  let out_shape = Shape.of_list (List.map (fun i -> Shape.dim shape i) perm) in
  Tensor.init out_shape (fun idx ->
      let src = Array.make r 0 in
      List.iteri (fun out_axis in_axis -> src.(in_axis) <- List.nth idx out_axis) perm;
      Tensor.get t (Array.to_list src))

let out_dim h k stride pad = ((h + (2 * pad) - k) / stride) + 1

let im2col_boxed src ~n ~c ~h ~w ~kh ~kw ~stride ~pad ~oh ~ow ~dst =
  let cols = c * kh * kw in
  let row = ref 0 in
  for ni = 0 to n - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let base = !row * cols in
        for ci = 0 to c - 1 do
          for ky = 0 to kh - 1 do
            for kx = 0 to kw - 1 do
              let iy = (oy * stride) + ky - pad and ix = (ox * stride) + kx - pad in
              let v =
                if iy < 0 || iy >= h || ix < 0 || ix >= w then 0.
                else src.((((ni * c) + ci) * h * w) + (iy * w) + ix)
              in
              dst.(base + (ci * kh * kw) + (ky * kw) + kx) <- v
            done
          done
        done;
        incr row
      done
    done
  done

let im2col t ~kh ~kw ~stride ~pad =
  match Tensor.shape t with
  | [ n; c; h; w ] ->
    let oh = out_dim h kh stride pad and ow = out_dim w kw stride pad in
    let cols = c * kh * kw in
    let out = Tensor.zeros (Shape.of_list [ n * oh * ow; cols ]) in
    let src = Tensor.data t and dst = Tensor.data out in
    (match Kernels.backend () with
    | Kernels.Boxed -> im2col_boxed src ~n ~c ~h ~w ~kh ~kw ~stride ~pad ~oh ~ow ~dst
    | Kernels.Bigarray ->
      for ni = 0 to n - 1 do
        Kernels.im2col src (ni * c * h * w) ~c ~h ~w ~kh ~kw ~stride ~pad ~oh ~ow
          ~dst ~dst_row0:(ni * oh * ow)
      done);
    out
  | s -> invalid_arg ("Ops.im2col: expected NCHW, got " ^ Shape.to_string s)

(* The group slicing / weight gather / scatter around the matmul is pure
   data movement, so both backends share these blit-based loops (the old
   Tensor.init list-index walks dominated small convolutions). *)
let conv2d_with ~matmul:mm t ~weight ?bias ~stride ~pad ?(groups = 1) () =
  match (Tensor.shape t, Tensor.shape weight) with
  | [ n; c; h; w ], [ oc; cg; kh; kw ] when c = cg * groups && oc mod groups = 0 ->
    let oh = out_dim h kh stride pad and ow = out_dim w kw stride pad in
    let ocg = oc / groups in
    let khw = kh * kw in
    let chw = c * h * w
    and ghw = cg * h * w in
    let out = Tensor.zeros (Shape.of_list [ n; oc; oh; ow ]) in
    let dst = Tensor.data out and src = Tensor.data t in
    let wd = Tensor.data weight in
    for g = 0 to groups - 1 do
      (* slice the input channels of this group: one blit per image *)
      let sub = Tensor.zeros (Shape.of_list [ n; cg; h; w ]) in
      let sd = Tensor.data sub in
      for ni = 0 to n - 1 do
        Array.blit src ((ni * chw) + (g * ghw)) sd (ni * ghw) ghw
      done;
      let patches = im2col sub ~kh ~kw ~stride ~pad in
      (* weight rows for this group: [ocg; cg*kh*kw] transposed to [cg*kh*kw; ocg] *)
      let wmat = Tensor.zeros (Shape.of_list [ cg * khw; ocg ]) in
      let wm = Tensor.data wmat in
      for oi = 0 to ocg - 1 do
        let wbase = ((g * ocg) + oi) * cg * khw in
        for ki = 0 to (cg * khw) - 1 do
          wm.((ki * ocg) + oi) <- wd.(wbase + ki)
        done
      done;
      let res = mm patches wmat in
      (* res is [n*oh*ow; ocg]; scatter back to NCHW *)
      let rd = Tensor.data res in
      for ni = 0 to n - 1 do
        for oi = 0 to ocg - 1 do
          let obase = ((ni * oc) + (g * ocg) + oi) * oh * ow in
          for oy = 0 to oh - 1 do
            let rbase = (((ni * oh) + oy) * ow * ocg) + oi in
            for ox = 0 to ow - 1 do
              dst.(obase + (oy * ow) + ox) <- rd.(rbase + (ox * ocg))
            done
          done
        done
      done
    done;
    (match bias with
    | None -> ()
    | Some b ->
      if Tensor.numel b <> oc then invalid_arg "Ops.conv2d: bias length mismatch";
      let bd = Tensor.data b in
      for ni = 0 to n - 1 do
        for ci = 0 to oc - 1 do
          let base = ((ni * oc) + ci) * oh * ow in
          let bv = bd.(ci) in
          for i = 0 to (oh * ow) - 1 do
            dst.(base + i) <- dst.(base + i) +. bv
          done
        done
      done);
    out
  | si, sw ->
    invalid_arg
      (Printf.sprintf "Ops.conv2d: incompatible shapes %s (w %s, groups %d)"
         (Shape.to_string si) (Shape.to_string sw) groups)

let conv2d t ~weight ?bias ~stride ~pad ?groups () =
  conv2d_with ~matmul t ~weight ?bias ~stride ~pad ?groups ()

let clip t ~lo ~hi =
  if hi < lo then invalid_arg "Ops.clip: hi < lo";
  Tensor.map (fun x -> Float.min hi (Float.max lo x)) t

let maxpool2d t ~k ~stride ?(pad = 0) () =
  match Tensor.shape t with
  | [ n; c; h; w ] ->
    let oh = out_dim h k stride pad and ow = out_dim w k stride pad in
    Tensor.init (Shape.of_list [ n; c; oh; ow ]) (fun idx ->
        match idx with
        | [ ni; ci; oy; ox ] ->
          let best = ref neg_infinity in
          for ky = 0 to k - 1 do
            for kx = 0 to k - 1 do
              let iy = (oy * stride) + ky - pad and ix = (ox * stride) + kx - pad in
              if iy >= 0 && iy < h && ix >= 0 && ix < w then
                best := Float.max !best (Tensor.get t [ ni; ci; iy; ix ])
            done
          done;
          !best
        | _ -> assert false)
  | s -> invalid_arg ("Ops.maxpool2d: expected NCHW, got " ^ Shape.to_string s)

let avgpool2d t ~k ~stride ?(pad = 0) () =
  match Tensor.shape t with
  | [ n; c; h; w ] ->
    let oh = out_dim h k stride pad and ow = out_dim w k stride pad in
    Tensor.init (Shape.of_list [ n; c; oh; ow ]) (fun idx ->
        match idx with
        | [ ni; ci; oy; ox ] ->
          let acc = ref 0. in
          for ky = 0 to k - 1 do
            for kx = 0 to k - 1 do
              let iy = (oy * stride) + ky - pad and ix = (ox * stride) + kx - pad in
              if iy >= 0 && iy < h && ix >= 0 && ix < w then
                acc := !acc +. Tensor.get t [ ni; ci; iy; ix ]
            done
          done;
          !acc /. float_of_int (k * k)
        | _ -> assert false)
  | s -> invalid_arg ("Ops.avgpool2d: expected NCHW, got " ^ Shape.to_string s)

let avgpool_global t =
  match Tensor.shape t with
  | [ n; c; h; w ] ->
    Tensor.init (Shape.of_list [ n; c ]) (fun idx ->
        match idx with
        | [ ni; ci ] ->
          let s = ref 0. in
          for yi = 0 to h - 1 do
            for xi = 0 to w - 1 do
              s := !s +. Tensor.get t [ ni; ci; yi; xi ]
            done
          done;
          !s /. float_of_int (h * w)
        | _ -> assert false)
  | s -> invalid_arg ("Ops.avgpool_global: expected NCHW, got " ^ Shape.to_string s)

let concat a b ~axis =
  match Shape.concat_dim (Tensor.shape a) (Tensor.shape b) ~axis with
  | None -> invalid_arg "Ops.concat: incompatible shapes"
  | Some shape ->
    let da = Shape.dim (Tensor.shape a) axis in
    Tensor.init shape (fun idx ->
        let i = List.nth idx axis in
        if i < da then Tensor.get a idx
        else Tensor.get b (List.mapi (fun ax j -> if ax = axis then j - da else j) idx))

let attention ~q ~k ~v ?(causal = false) () =
  match (Tensor.shape q, Tensor.shape k, Tensor.shape v) with
  | [ m; d ], [ l; d' ], [ l'; d'' ] when d = d' && l = l' && d = d'' ->
    let scores = matmul q (transpose2d k) in
    let scale = 1. /. sqrt (float_of_int d) in
    let scores = Tensor.map (fun x -> x *. scale) scores in
    let scores =
      if not causal then scores
      else
        Tensor.init (Shape.of_list [ m; l ]) (fun idx ->
            match idx with
            | [ i; j ] ->
              (* query i corresponds to absolute position l - m + i *)
              if j > l - m + i then neg_infinity else Tensor.get scores [ i; j ]
            | _ -> assert false)
    in
    matmul (softmax scores) v
  | _ -> invalid_arg "Ops.attention: expects q:[m;d] k:[l;d] v:[l;d]"
