(** The fast kernel engine behind {!Ops} and {!Quant} (ROADMAP item 3).

    Two selectable backends compute the hot tensor kernels — 2-d matrix
    multiply (float and int8), im2col and the element-wise quantisation
    passes:

    - [Boxed] is the seed implementation: safe accesses over the plain
      OCaml arrays, naive loops. It is kept verbatim (in {!Ops} / {!Quant})
      as the differential oracle, exactly like [Lp_dense] next to the
      revised-simplex [Lp].
    - [Bigarray] is the engine in this module: the int8 path packs both
      operands into [Bigarray] int8 buffers (8x denser than the boxed
      [int array], one byte per element) and runs cache-blocked loops with
      unsafe accesses, accumulating in native OCaml ints — wider than the
      int32 a real CIM periphery carries, deliberately, so the result is
      {e exactly} the oracle's for any reduction depth; the float64 path
      runs the same cache-blocked unsafe loops directly over the unboxed
      OCaml float arrays (already flat binary64 storage — a copy into a
      Bigarray would only add O(mk + kn) traffic for zero layout gain).

    Identity contract: for every kernel and every input, both backends
    return {e bitwise identical} results. Integer arithmetic is exact, so
    blocking is free; the float kernels preserve the oracle's per-element
    accumulation order (ascending [p] for each [(i, j)], same zero skip),
    so blocking only reorders {e independent} dot products. The contract is
    what lets the compilation cache, the golden fixtures and the
    byte-identical parallel-simulation contract ignore the backend knob —
    and it is enforced by [test/t_kernels.ml]'s differential suite.

    Row parallelism: when a {!Cim_util.Pool} has been installed with
    {!set_pool}/{!with_pool} and the call site is the pool's submitting
    domain (never from inside a worker — {!Cim_util.Pool.current_worker}),
    large kernels split their output rows into one contiguous chunk per
    worker. Chunks write disjoint rows, every element is computed by
    exactly one task with the serial per-element order, so results stay
    bitwise identical at any job count. *)

type backend = Boxed | Bigarray

val backend_to_string : backend -> string

val backend_of_string : string -> (backend, string) result
(** Accepts ["boxed"] and ["bigarray"] (case-insensitive). *)

val default_backend : unit -> backend
(** [CMSWITCH_TENSOR_BACKEND] from the environment when set to a valid
    backend name, otherwise [Bigarray]. *)

val backend : unit -> backend
(** The process-wide backend {!Ops} and {!Quant} dispatch on. Initially
    {!default_backend}. *)

val set_backend : backend -> unit

val with_backend : backend -> (unit -> 'a) -> 'a
(** Run with the backend forced, restoring the previous one on exit (also
    on exceptions). The knob is global: scoping two different backends
    from two domains concurrently is a caller error. *)

val set_pool : Cim_util.Pool.t option -> unit
(** Install (or remove) the worker pool used for row-parallel kernels.
    Only the pool's submitting domain uses it; kernels called from inside
    any pool worker run serial. *)

val with_pool : Cim_util.Pool.t option -> (unit -> 'a) -> 'a
(** Scoped {!set_pool}, restoring the previous pool on exit. *)

val clamp_i8 : int -> int
(** Saturate to [-128, 127] (shared with {!Quant.clamp_i8}). *)

val matmul2d :
  float array -> int -> float array -> int -> m:int -> k:int -> n:int ->
  float array
(** [matmul2d a aoff b boff ~m ~k ~n] multiplies the [m*k] row-major block
    of [a] starting at [aoff] by the [k*n] block of [b] at [boff] into a
    fresh [m*n] array — bitwise identical to the boxed oracle loop. The
    offsets are how the batched {!Ops.matmul} cases index slices without
    per-batch copies. *)

val qmatmul2d : int array -> int array -> m:int -> k:int -> n:int -> int array
(** Int8 matmul with wide accumulation: operands are int8 {e values} (each
    in [-128, 127], as {!Quant.qtensor}). Returns the raw [m*n]
    accumulator array (feed it to {!Quant.requantize}); exactly equal to
    the boxed oracle's accumulators, by two routes. Wide calls (m >= 8)
    run on the float64 pipeline — every product is within ±2^14 and every
    accumulator within 2^14 * k < 2^53, so float arithmetic computes the
    integer dot products exactly while beating tagged-int arithmetic ~2x.
    Narrow (decode-shaped) calls, where converting the [k*n] operand would
    dominate, stream [b] from a dense int8 Bigarray pack with native-int
    accumulators instead. *)

val im2col :
  float array -> int -> c:int -> h:int -> w:int -> kh:int -> kw:int ->
  stride:int -> pad:int -> oh:int -> ow:int -> dst:float array ->
  dst_row0:int -> unit
(** [im2col src soff ...] unrolls one NCHW image (the [c*h*w] floats of
    [src] starting at [soff]) into patch rows
    [dst_row0 .. dst_row0 + oh*ow) of [dst] (row width [c*kh*kw]),
    zero-padding out-of-bounds taps — the same unrolling as the boxed
    {!Ops.im2col}, with unsafe accesses and contiguous inner-row copies. *)

val max_abs : float array -> float
(** Max absolute value, 0 on the empty array (chunk-parallel; max is
    order-independent, so exact). *)

val quantize_values : float array -> scale:float -> int array
(** Element-wise [clamp_i8 (int_of_float (Float.round (x /. scale)))] —
    the boxed {!Quant.quantize} map, chunk-parallel. *)

val max_abs_int : int array -> int

val requantize_values : int array -> in_scale:float -> scale:float -> int array
(** Element-wise
    [clamp_i8 (int_of_float (Float.round (float v *. in_scale /. scale)))],
    chunk-parallel. *)
