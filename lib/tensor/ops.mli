(** Reference (float) implementations of every operator in the model zoo.
    These define functional correctness for the CIM simulator: the meta-op
    executor must match these up to quantisation error.

    The hot kernels (matmul, im2col and the conv2d lowering built on them)
    dispatch on {!Kernels.backend}: the default [Bigarray] backend runs the
    cache-blocked unsafe loops of {!Kernels}, while [Boxed] keeps the seed
    loops in this module as the differential oracle. Both return bitwise
    identical tensors for every input (see kernels.mli for the contract);
    [test/t_kernels.ml] checks it exhaustively. *)

val matmul : Tensor.t -> Tensor.t -> Tensor.t
(** [m;k] x [k;n] -> [m;n]; also accepts a leading batch dim on the left
    operand ([b;m;k] x [k;n]) and fully batched ([b;m;k] x [b;k;n]). *)

val add : Tensor.t -> Tensor.t -> Tensor.t
(** Broadcasting element-wise addition. *)

val mul : Tensor.t -> Tensor.t -> Tensor.t
(** Broadcasting element-wise (Hadamard) product. *)

val relu : Tensor.t -> Tensor.t
val gelu : Tensor.t -> Tensor.t
(** tanh-approximation GELU, as used by BERT/OPT. *)

val silu : Tensor.t -> Tensor.t
(** x * sigmoid(x), the LLaMA activation. *)

val softmax : Tensor.t -> Tensor.t
(** Along the last axis, numerically stabilised. *)

val layernorm : ?eps:float -> Tensor.t -> gamma:Tensor.t -> beta:Tensor.t -> Tensor.t
(** Along the last axis; [gamma]/[beta] are 1-d of that axis length. *)

val rmsnorm : ?eps:float -> Tensor.t -> gamma:Tensor.t -> Tensor.t

val transpose2d : Tensor.t -> Tensor.t
val permute : Tensor.t -> int list -> Tensor.t

val im2col :
  Tensor.t -> kh:int -> kw:int -> stride:int -> pad:int -> Tensor.t
(** NCHW input [n;c;h;w] -> patch matrix [n * oh * ow; c * kh * kw]; this is
    exactly the unrolling the paper uses to express convolution as MMM. *)

val conv2d :
  Tensor.t -> weight:Tensor.t -> ?bias:Tensor.t -> stride:int -> pad:int ->
  ?groups:int -> unit -> Tensor.t
(** Input [n;c;h;w], weight [oc; c/groups; kh; kw]. Implemented with im2col +
    matmul per group so the functional simulator and the reference share the
    MMM lowering. *)

val conv2d_with :
  matmul:(Tensor.t -> Tensor.t -> Tensor.t) ->
  Tensor.t -> weight:Tensor.t -> ?bias:Tensor.t -> stride:int -> pad:int ->
  ?groups:int -> unit -> Tensor.t
(** Same lowering with a caller-supplied matrix multiply — the CIM
    functional simulator passes the int8 array arithmetic here. *)

val clip : Tensor.t -> lo:float -> hi:float -> Tensor.t
(** Saturate every element into [lo, hi]; ReLU6 is [clip ~lo:0. ~hi:6.]. *)

val maxpool2d : Tensor.t -> k:int -> stride:int -> ?pad:int -> unit -> Tensor.t

val avgpool2d : Tensor.t -> k:int -> stride:int -> ?pad:int -> unit -> Tensor.t
(** Padding contributes zeros to the average (count-include-pad). *)

val avgpool_global : Tensor.t -> Tensor.t
(** [n;c;h;w] -> [n;c]. *)

val concat : Tensor.t -> Tensor.t -> axis:int -> Tensor.t

val attention :
  q:Tensor.t -> k:Tensor.t -> v:Tensor.t -> ?causal:bool -> unit -> Tensor.t
(** Single-head scaled dot-product attention; q:[m;d] k:[l;d] v:[l;d] ->
    [m;d]. Causal masking assumes query i attends keys <= (l - m + i). *)
