type qtensor = { values : int array; scale : float; shape : Shape.t }

let clamp_i8 = Kernels.clamp_i8

let quantize t =
  match Kernels.backend () with
  | Kernels.Boxed ->
    (* oracle form, kept verbatim from the seed *)
    let max_abs = Tensor.fold (fun acc x -> Float.max acc (Float.abs x)) 0. t in
    let scale = if max_abs = 0. then 1. else max_abs /. 127. in
    let values =
      Array.map (fun x -> clamp_i8 (int_of_float (Float.round (x /. scale)))) (Tensor.data t)
    in
    { values; scale; shape = Tensor.shape t }
  | Kernels.Bigarray ->
    let max_abs = Kernels.max_abs (Tensor.data t) in
    let scale = if max_abs = 0. then 1. else max_abs /. 127. in
    { values = Kernels.quantize_values (Tensor.data t) ~scale;
      scale;
      shape = Tensor.shape t }

let dequantize q =
  Tensor.create q.shape (Array.map (fun v -> float_of_int v *. q.scale) q.values)

let requantize acc shape ~in_scale =
  if not (in_scale > 0.) then
    invalid_arg "Quant.requantize: in_scale must be positive";
  let max_abs =
    match Kernels.backend () with
    | Kernels.Boxed -> Array.fold_left (fun m v -> max m (abs v)) 0 acc
    | Kernels.Bigarray -> Kernels.max_abs_int acc
  in
  if max_abs = 0 then { values = Array.map (fun _ -> 0) acc; scale = 1.; shape }
  else begin
    (* Choose the output scale so the widest accumulator maps to 127. *)
    let scale = in_scale *. float_of_int max_abs /. 127. in
    let values =
      match Kernels.backend () with
      | Kernels.Boxed ->
        Array.map
          (fun v ->
            clamp_i8 (int_of_float (Float.round (float_of_int v *. in_scale /. scale))))
          acc
      | Kernels.Bigarray -> Kernels.requantize_values acc ~in_scale ~scale
    in
    { values; scale; shape }
  end

(* Oracle int8 matmul: native-int accumulation (wide — never wraps for any
   in-range operands), ascending-p order. Kernels.qmatmul2d matches it
   exactly by integer associativity. *)
let qmatmul2d_boxed av bv ~m ~k ~n =
  let acc = Array.make (m * n) 0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let a = av.((i * k) + p) in
      if a <> 0 then
        for j = 0 to n - 1 do
          acc.((i * n) + j) <- acc.((i * n) + j) + (a * bv.((p * n) + j))
        done
    done
  done;
  acc

let matmul a b =
  match (a.shape, b.shape) with
  | [ m; k ], [ k'; n ] when k = k' ->
    let acc =
      match Kernels.backend () with
      | Kernels.Boxed -> qmatmul2d_boxed a.values b.values ~m ~k ~n
      | Kernels.Bigarray -> Kernels.qmatmul2d a.values b.values ~m ~k ~n
    in
    requantize acc (Shape.of_list [ m; n ]) ~in_scale:(a.scale *. b.scale)
  | _ -> invalid_arg "Quant.matmul: expects [m;k] x [k;n]"

let quant_error t =
  let q = quantize t in
  Tensor.max_abs_diff t (dequantize q)
