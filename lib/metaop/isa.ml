module Mode = Cim_arch.Mode

type coord = Cim_arch.Chip.coord

type cmd =
  | Switch of { target : Mode.transition; arrays : coord list }
  | Write_weights of {
      label : string;
      node_id : int;
      arrays : coord list;
      slice : Flow.slice;
      bytes : int;
      in_place : bool;
    }
  | Dma_load of { tensor : string; src : Flow.location; dst : Flow.location; bytes : int }
  | Dma_store of { tensor : string; src : Flow.location; dst : Flow.location; bytes : int }
  | Compute of {
      label : string;
      node_id : int;
      arrays : coord list;
      mem_arrays : coord list;
      inputs : string list;
      output : string;
      slice : Flow.slice;
      macs : float;
      ai : float;
    }
  | Vec of { label : string; node_id : int; inputs : string list; output : string }
  | Par_begin of int
  | Par_end

type image = { source : string; cmds : cmd array }

let op_switch = 1
let op_write = 2
let op_dma_load = 3
let op_dma_store = 4
let op_compute = 5
let op_vec = 6
let op_par_begin = 7
let op_par_end = 8

(* ---- flow <-> command stream -------------------------------------------- *)

let rec cmds_of_instr acc (i : Flow.instr) =
  match i with
  | Flow.Switch { target; arrays } -> Switch { target; arrays } :: acc
  | Flow.Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Write_weights { label; node_id; arrays; slice; bytes; in_place } :: acc
  | Flow.Load { tensor; src; dst; bytes } ->
    Dma_load { tensor; src; dst; bytes } :: acc
  | Flow.Store { tensor; src; dst; bytes } ->
    Dma_store { tensor; src; dst; bytes } :: acc
  | Flow.Compute
      { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai } ->
    Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
    :: acc
  | Flow.Vector_op { label; node_id; inputs; output } ->
    Vec { label; node_id; inputs; output } :: acc
  | Flow.Parallel body ->
    if
      List.exists
        (function Flow.Parallel _ -> true | _ -> false)
        body
    then invalid_arg "Isa.of_flow: nested Parallel block";
    let inner = List.fold_left cmds_of_instr [] body in
    Par_end :: (inner @ (Par_begin (List.length body) :: acc))

let of_flow (p : Flow.program) =
  let rev = List.fold_left cmds_of_instr [] p.Flow.instrs in
  { source = p.Flow.source; cmds = Array.of_list (List.rev rev) }

let instr_of_cmd = function
  | Switch { target; arrays } -> Flow.Switch { target; arrays }
  | Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Flow.Write_weights { label; node_id; arrays; slice; bytes; in_place }
  | Dma_load { tensor; src; dst; bytes } -> Flow.Load { tensor; src; dst; bytes }
  | Dma_store { tensor; src; dst; bytes } -> Flow.Store { tensor; src; dst; bytes }
  | Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
    ->
    Flow.Compute
      { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
  | Vec { label; node_id; inputs; output } ->
    Flow.Vector_op { label; node_id; inputs; output }
  | Par_begin _ | Par_end -> invalid_arg "Isa.to_flow: stray bracket marker"

let to_flow (img : image) =
  let n = Array.length img.cmds in
  let rec walk i acc =
    if i >= n then (List.rev acc, i)
    else
      match img.cmds.(i) with
      | Par_end -> (List.rev acc, i)
      | Par_begin expect ->
        let body, j = walk (i + 1) [] in
        if j >= n || img.cmds.(j) <> Par_end then
          invalid_arg "Isa.to_flow: PAR_BEGIN without matching PAR_END";
        if List.length body <> expect then
          invalid_arg
            (Printf.sprintf
               "Isa.to_flow: PAR_BEGIN announces %d commands, block has %d"
               expect (List.length body));
        walk (j + 1) (Flow.Parallel body :: acc)
      | c -> walk (i + 1) (instr_of_cmd c :: acc)
  in
  let instrs, stopped = walk 0 [] in
  if stopped <> n then invalid_arg "Isa.to_flow: PAR_END without PAR_BEGIN";
  { Flow.source = img.source; instrs }

(* ---- encoder ------------------------------------------------------------- *)

let pack_coord (c : coord) =
  if c.Cim_arch.Chip.x < 0 || c.Cim_arch.Chip.x > 0xffff
     || c.Cim_arch.Chip.y < 0 || c.Cim_arch.Chip.y > 0xffff
  then
    invalid_arg
      (Printf.sprintf "Isa.encode: coord (%d,%d) outside 16-bit range"
         c.Cim_arch.Chip.x c.Cim_arch.Chip.y);
  (c.Cim_arch.Chip.x lsl 16) lor c.Cim_arch.Chip.y

let unpack_coord w =
  { Cim_arch.Chip.x = (w lsr 16) land 0xffff; y = w land 0xffff }

(* signed 32-bit two's complement in one word *)
let pack_i32 v =
  if v < -0x8000_0000 || v > 0x7fff_ffff then
    invalid_arg (Printf.sprintf "Isa.encode: %d outside signed 32-bit range" v);
  v land 0xffff_ffff

let unpack_i32 w = if w land 0x8000_0000 <> 0 then w - 0x1_0000_0000 else w

let u32_max = 0xffff_ffff

module Enc = struct
  type t = {
    buf : Buffer.t;                      (* command words, u32 LE *)
    strings : (string, int) Hashtbl.t;   (* string -> table index *)
    mutable table : string list;         (* reversed table *)
    mutable n_strings : int;
    mutable n_words : int;
  }

  let create () =
    { buf = Buffer.create 4096; strings = Hashtbl.create 64; table = [];
      n_strings = 0; n_words = 0 }

  let word e w =
    if w < 0 || w > u32_max then
      invalid_arg (Printf.sprintf "Isa.encode: word %d outside u32 range" w);
    Buffer.add_int32_le e.buf (Int32.of_int w);
    e.n_words <- e.n_words + 1

  let sidx e s =
    match Hashtbl.find_opt e.strings s with
    | Some i -> word e i
    | None ->
      let i = e.n_strings in
      Hashtbl.add e.strings s i;
      e.table <- s :: e.table;
      e.n_strings <- i + 1;
      word e i

  let i64 e v =
    let bits = Int64.of_int v in
    word e (Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xffff_ffffL));
    word e (Int64.to_int (Int64.logand bits 0xffff_ffffL))

  let f64 e v =
    let bits = Int64.bits_of_float v in
    word e (Int64.to_int (Int64.logand (Int64.shift_right_logical bits 32) 0xffff_ffffL));
    word e (Int64.to_int (Int64.logand bits 0xffff_ffffL))

  let coords e cs =
    word e (List.length cs);
    List.iter (fun c -> word e (pack_coord c)) cs

  let location e = function
    | Flow.Main_memory -> word e 0
    | Flow.Buffer -> word e 1
    | Flow.Mem_arrays cs ->
      word e 2;
      coords e cs
end

let encode_cmd e = function
  | Switch { target; arrays } ->
    Enc.word e op_switch;
    Enc.word e (match target with Mode.To_memory -> 0 | Mode.To_compute -> 1);
    Enc.coords e arrays
  | Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Enc.word e op_write;
    Enc.sidx e label;
    Enc.word e (pack_i32 node_id);
    Enc.coords e arrays;
    Enc.word e (pack_i32 slice.Flow.lo);
    Enc.word e (pack_i32 slice.Flow.hi);
    Enc.i64 e bytes;
    Enc.word e (if in_place then 1 else 0)
  | Dma_load { tensor; src; dst; bytes } ->
    Enc.word e op_dma_load;
    Enc.sidx e tensor;
    Enc.location e src;
    Enc.location e dst;
    Enc.i64 e bytes
  | Dma_store { tensor; src; dst; bytes } ->
    Enc.word e op_dma_store;
    Enc.sidx e tensor;
    Enc.location e src;
    Enc.location e dst;
    Enc.i64 e bytes
  | Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
    ->
    Enc.word e op_compute;
    Enc.sidx e label;
    Enc.word e (pack_i32 node_id);
    Enc.coords e arrays;
    Enc.coords e mem_arrays;
    Enc.word e (List.length inputs);
    List.iter (Enc.sidx e) inputs;
    Enc.sidx e output;
    Enc.word e (pack_i32 slice.Flow.lo);
    Enc.word e (pack_i32 slice.Flow.hi);
    Enc.f64 e macs;
    Enc.f64 e ai
  | Vec { label; node_id; inputs; output } ->
    Enc.word e op_vec;
    Enc.sidx e label;
    Enc.word e (pack_i32 node_id);
    Enc.word e (List.length inputs);
    List.iter (Enc.sidx e) inputs;
    Enc.sidx e output
  | Par_begin n ->
    Enc.word e op_par_begin;
    Enc.word e n
  | Par_end -> Enc.word e op_par_end

let magic = "CMSI"
let version = 1

let encode (img : image) =
  let e = Enc.create () in
  Array.iter (encode_cmd e) img.cmds;
  let out = Buffer.create (Buffer.length e.Enc.buf + 256) in
  Buffer.add_string out magic;
  Buffer.add_int32_le out (Int32.of_int version);
  Buffer.add_int32_le out (Int32.of_int (String.length img.source));
  Buffer.add_string out img.source;
  Buffer.add_int32_le out (Int32.of_int e.Enc.n_strings);
  List.iter
    (fun s ->
      Buffer.add_int32_le out (Int32.of_int (String.length s));
      Buffer.add_string out s)
    (List.rev e.Enc.table);
  Buffer.add_int32_le out (Int32.of_int e.Enc.n_words);
  Buffer.add_buffer out e.Enc.buf;
  Buffer.contents out

(* ---- decoder ------------------------------------------------------------- *)

exception Bad of string

module Dec = struct
  type t = { s : string; mutable pos : int }

  let fail fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

  let u32 d =
    if d.pos + 4 > String.length d.s then fail "truncated at byte %d" d.pos;
    let v = Int32.to_int (String.get_int32_le d.s d.pos) in
    d.pos <- d.pos + 4;
    v land 0xffff_ffff

  let bytes d n =
    if n < 0 || d.pos + n > String.length d.s then
      fail "truncated string at byte %d" d.pos;
    let v = String.sub d.s d.pos n in
    d.pos <- d.pos + n;
    v

  let i64 d =
    let hi = u32 d in
    let lo = u32 d in
    Int64.to_int
      (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))

  let f64 d =
    let hi = u32 d in
    let lo = u32 d in
    Int64.float_of_bits
      (Int64.logor (Int64.shift_left (Int64.of_int hi) 32) (Int64.of_int lo))
end

let decode_image s =
  let d = { Dec.s; pos = 0 } in
  if String.length s < 4 || String.sub s 0 4 <> magic then
    Dec.fail "bad magic (want %S)" magic;
  d.Dec.pos <- 4;
  let v = Dec.u32 d in
  if v <> version then Dec.fail "unsupported version %d (want %d)" v version;
  let source = Dec.bytes d (Dec.u32 d) in
  let n_strings = Dec.u32 d in
  if n_strings > String.length s then Dec.fail "absurd string count %d" n_strings;
  let table = Array.init n_strings (fun _ -> Dec.bytes d (Dec.u32 d)) in
  let str i =
    if i < 0 || i >= n_strings then Dec.fail "string index %d out of range" i;
    table.(i)
  in
  let n_words = Dec.u32 d in
  let words_end = d.Dec.pos + (4 * n_words) in
  if words_end <> String.length s then
    Dec.fail "command stream length mismatch (%d words declared)" n_words;
  let coords () =
    let n = Dec.u32 d in
    if n > n_words then Dec.fail "absurd coord count %d" n;
    List.init n (fun _ -> unpack_coord (Dec.u32 d))
  in
  let location () =
    match Dec.u32 d with
    | 0 -> Flow.Main_memory
    | 1 -> Flow.Buffer
    | 2 -> Flow.Mem_arrays (coords ())
    | t -> Dec.fail "unknown location tag %d" t
  in
  let slice () =
    let lo = unpack_i32 (Dec.u32 d) in
    let hi = unpack_i32 (Dec.u32 d) in
    { Flow.lo; hi }
  in
  let strings () =
    let n = Dec.u32 d in
    if n > n_words then Dec.fail "absurd string-list count %d" n;
    List.init n (fun _ -> str (Dec.u32 d))
  in
  let cmds = ref [] in
  while d.Dec.pos < words_end do
    let c =
      match Dec.u32 d with
      | op when op = op_switch ->
        let target =
          match Dec.u32 d with
          | 0 -> Mode.To_memory
          | 1 -> Mode.To_compute
          | t -> Dec.fail "unknown switch target %d" t
        in
        Switch { target; arrays = coords () }
      | op when op = op_write ->
        let label = str (Dec.u32 d) in
        let node_id = unpack_i32 (Dec.u32 d) in
        let arrays = coords () in
        let slice = slice () in
        let bytes = Dec.i64 d in
        let in_place =
          match Dec.u32 d with
          | 0 -> false
          | 1 -> true
          | t -> Dec.fail "bad in-place flag %d" t
        in
        Write_weights { label; node_id; arrays; slice; bytes; in_place }
      | op when op = op_dma_load ->
        let tensor = str (Dec.u32 d) in
        let src = location () in
        let dst = location () in
        Dma_load { tensor; src; dst; bytes = Dec.i64 d }
      | op when op = op_dma_store ->
        let tensor = str (Dec.u32 d) in
        let src = location () in
        let dst = location () in
        Dma_store { tensor; src; dst; bytes = Dec.i64 d }
      | op when op = op_compute ->
        let label = str (Dec.u32 d) in
        let node_id = unpack_i32 (Dec.u32 d) in
        let arrays = coords () in
        let mem_arrays = coords () in
        let inputs = strings () in
        let output = str (Dec.u32 d) in
        let slice = slice () in
        let macs = Dec.f64 d in
        let ai = Dec.f64 d in
        Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
      | op when op = op_vec ->
        let label = str (Dec.u32 d) in
        let node_id = unpack_i32 (Dec.u32 d) in
        let inputs = strings () in
        Vec { label; node_id; inputs; output = str (Dec.u32 d) }
      | op when op = op_par_begin -> Par_begin (Dec.u32 d)
      | op when op = op_par_end -> Par_end
      | op -> Dec.fail "unknown opcode %d at byte %d" op (d.Dec.pos - 4)
    in
    if d.Dec.pos > words_end then Dec.fail "command overruns declared stream";
    cmds := c :: !cmds
  done;
  { source; cmds = Array.of_list (List.rev !cmds) }

let decode s =
  match decode_image s with
  | img -> Ok img
  | exception Bad m -> Error m

(* ---- disassembler -------------------------------------------------------- *)

let words_of_cmd c =
  (* mirror of the encoder, counting only *)
  let loc_words = function
    | Flow.Main_memory | Flow.Buffer -> 1
    | Flow.Mem_arrays cs -> 2 + List.length cs
  in
  match c with
  | Switch { arrays; _ } -> 3 + List.length arrays
  | Write_weights { arrays; _ } -> 9 + List.length arrays
  | Dma_load { src; dst; _ } | Dma_store { src; dst; _ } ->
    4 + loc_words src + loc_words dst
  | Compute { arrays; mem_arrays; inputs; _ } ->
    13 + List.length arrays + List.length mem_arrays + List.length inputs
  | Vec { inputs; _ } -> 5 + List.length inputs
  | Par_begin _ -> 2
  | Par_end -> 1

let word_count img = Array.fold_left (fun n c -> n + words_of_cmd c) 0 img.cmds
let cmd_count img = Array.length img.cmds

let coords_str cs =
  "["
  ^ String.concat ","
      (List.map
         (fun (c : coord) ->
           Printf.sprintf "(%d,%d)" c.Cim_arch.Chip.x c.Cim_arch.Chip.y)
         cs)
  ^ "]"

let loc_str = function
  | Flow.Main_memory -> "mm"
  | Flow.Buffer -> "buf"
  | Flow.Mem_arrays cs -> "mem" ^ coords_str cs

let cmd_str = function
  | Switch { target; arrays } ->
    Printf.sprintf "SWITCH     %s %s"
      (Mode.transition_to_string target)
      (coords_str arrays)
  | Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Printf.sprintf "WRITE      %s node=%d %s slice=[%d,%d) bytes=%d%s" label
      node_id (coords_str arrays) slice.Flow.lo slice.Flow.hi bytes
      (if in_place then " in-place" else "")
  | Dma_load { tensor; src; dst; bytes } ->
    Printf.sprintf "DMA_LOAD   %s %s -> %s bytes=%d" tensor (loc_str src)
      (loc_str dst) bytes
  | Dma_store { tensor; src; dst; bytes } ->
    Printf.sprintf "DMA_STORE  %s %s -> %s bytes=%d" tensor (loc_str src)
      (loc_str dst) bytes
  | Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai }
    ->
    Printf.sprintf
      "COMPUTE    %s node=%d %s mem=%s in=[%s] out=%s slice=[%d,%d) macs=%h ai=%h"
      label node_id (coords_str arrays) (coords_str mem_arrays)
      (String.concat "," inputs) output slice.Flow.lo slice.Flow.hi macs ai
  | Vec { label; node_id; inputs; output } ->
    Printf.sprintf "VEC        %s node=%d in=[%s] out=%s" label node_id
      (String.concat "," inputs) output
  | Par_begin n -> Printf.sprintf "PAR_BEGIN  %d" n
  | Par_end -> "PAR_END"

let disassemble img =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "; source: %s  (%d commands, %d words)\n" img.source
       (cmd_count img) (word_count img));
  let off = ref 0 in
  Array.iter
    (fun c ->
      Buffer.add_string b (Printf.sprintf "%06x  %s\n" !off (cmd_str c));
      off := !off + words_of_cmd c)
    img.cmds;
  Buffer.contents b
