module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode
module Faultmap = Cim_arch.Faultmap

type severity = Error | Warning

type diagnostic = { severity : severity; instr : int; message : string }

let severity_to_string = function Error -> "error" | Warning -> "warning"

let diagnostic_to_string d =
  Printf.sprintf "%s at instr %d: %s" (severity_to_string d.severity) d.instr
    d.message

let pp_diagnostic ppf d = Format.pp_print_string ppf (diagnostic_to_string d)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let is_valid ds = errors ds = []

let coord_str (c : Chip.coord) = Printf.sprintf "(%d,%d)" c.Chip.x c.Chip.y

let run chip ?(initial_mode = Mode.Memory) ?faults (p : Flow.program) =
  let n = chip.Chip.n_arrays in
  let diags = ref [] in
  let idx = ref 0 in
  let add severity fmt =
    Printf.ksprintf
      (fun message -> diags := { severity; instr = !idx; message } :: !diags)
      fmt
  in
  (* per-array abstract state: current mode and resident weights (the
     node_id whose cells the array holds, if any) *)
  let mode =
    Array.init n (fun i ->
        match faults with
        | Some fm -> begin
          match Faultmap.fault_at fm i with
          | Some (Faultmap.Stuck_mode m) -> m
          | _ -> initial_mode
        end
        | None -> initial_mode)
  in
  let resident : int option array = Array.make n None in
  (* a coord is usable if it is on the grid and not dead; returns its index *)
  let check_array ctx c =
    match Chip.index_of_coord chip c with
    | exception Chip.Invalid_config _ ->
      add Error "%s: array %s outside the %s grid" ctx (coord_str c)
        chip.Chip.name;
      None
    | i ->
      (match faults with
      | Some fm when Faultmap.is_dead fm i ->
        add Error "%s: dead array %s referenced" ctx (coord_str c)
      | _ -> ());
      Some i
  in
  let require m ctx cs =
    List.iter
      (fun c ->
        match check_array ctx c with
        | None -> ()
        | Some i ->
          if mode.(i) <> m then
            add Error "%s: array %s is in %s mode, needs %s" ctx (coord_str c)
              (Mode.to_string mode.(i)) (Mode.to_string m))
      cs
  in
  (* liveness: names the program defines somewhere must be defined before
     use; names it never defines are external inputs and always live *)
  let defined_somewhere = Hashtbl.create 64 in
  let rec collect = function
    | Flow.Compute { output; _ } | Flow.Vector_op { output; _ } ->
      Hashtbl.replace defined_somewhere output ()
    | Flow.Parallel is -> List.iter collect is
    | Flow.Switch _ | Flow.Write_weights _ | Flow.Load _ | Flow.Store _ -> ()
  in
  List.iter collect p.Flow.instrs;
  let available = Hashtbl.create 64 in
  let use ctx name =
    if Hashtbl.mem defined_somewhere name && not (Hashtbl.mem available name)
    then add Error "%s: tensor %s consumed before it is produced" ctx name
  in
  let rec walk = function
    | Flow.Switch { target; arrays } ->
      let tgt = Mode.apply target in
      List.iter
        (fun c ->
          match check_array "switch" c with
          | None -> ()
          | Some i ->
            let stuck =
              match faults with
              | Some fm -> begin
                match Faultmap.fault_at fm i with
                | Some (Faultmap.Stuck_mode m) ->
                  add Error "switch: array %s is stuck in %s mode" (coord_str c)
                    (Mode.to_string m);
                  true
                | _ -> false
              end
              | None -> false
            in
            if not stuck then begin
              if mode.(i) = tgt then
                add Warning "switch: array %s already in %s mode" (coord_str c)
                  (Mode.to_string tgt)
              else begin
                mode.(i) <- tgt;
                (* a compute array handed back to memory loses its weights *)
                if tgt = Mode.Memory then resident.(i) <- None
              end
            end)
        arrays
    | Flow.Write_weights { label; node_id; arrays; _ } ->
      require Mode.Compute (Printf.sprintf "write %s" label) arrays;
      List.iter
        (fun c ->
          match Chip.index_of_coord chip c with
          | exception Chip.Invalid_config _ -> ()
          | i -> resident.(i) <- Some node_id)
        arrays
    | Flow.Load { tensor; src; dst; _ } ->
      use (Printf.sprintf "load %s" tensor) tensor;
      let arrays_of = function
        | Flow.Mem_arrays cs -> cs
        | Flow.Main_memory | Flow.Buffer -> []
      in
      require Mode.Memory (Printf.sprintf "load %s" tensor)
        (arrays_of src @ arrays_of dst);
      (* loading data into an array overwrites whatever weights it held *)
      List.iter
        (fun c ->
          match Chip.index_of_coord chip c with
          | exception Chip.Invalid_config _ -> ()
          | i -> resident.(i) <- None)
        (arrays_of dst)
    | Flow.Store { tensor; src; dst; _ } ->
      use (Printf.sprintf "store %s" tensor) tensor;
      let arrays_of = function
        | Flow.Mem_arrays cs -> cs
        | Flow.Main_memory | Flow.Buffer -> []
      in
      require Mode.Memory (Printf.sprintf "store %s" tensor)
        (arrays_of src @ arrays_of dst)
    | Flow.Compute { label; node_id; arrays; mem_arrays; inputs; output; _ } ->
      let ctx = Printf.sprintf "compute %s" label in
      require Mode.Compute ctx arrays;
      require Mode.Memory ctx mem_arrays;
      List.iter
        (fun c ->
          match Chip.index_of_coord chip c with
          | exception Chip.Invalid_config _ -> ()
          | i -> begin
            match resident.(i) with
            | Some id when id = node_id -> ()
            | Some id ->
              add Error "%s: array %s holds node %d's weights, needs node %d's"
                ctx (coord_str c) id node_id
            | None ->
              add Error "%s: array %s has no weights written" ctx (coord_str c)
          end)
        arrays;
      List.iter (use ctx) inputs;
      Hashtbl.replace available output ()
    | Flow.Vector_op { label; inputs; output; _ } ->
      List.iter (use (Printf.sprintf "vector %s" label)) inputs;
      Hashtbl.replace available output ()
    | Flow.Parallel is ->
      (* code generation orders the block topologically; walk it
         sequentially (Flow.validate separately enforces compute-xor-memory
         inside the block) *)
      List.iter walk is
  in
  List.iter
    (fun i ->
      walk i;
      incr idx)
    p.Flow.instrs;
  List.rev !diags
