(** Static validation of meta-operator flow programs. {!Flow.validate}
    checks structural well-formedness; this module goes further and checks
    that the program makes *sense* executed front to back — the three
    properties a degraded or hand-edited plan is most likely to violate:

    - {b mode legality}: every array is in the mode an instruction needs it
      in, mode switches are tracked (and checked against a fault map:
      stuck arrays cannot switch, dead arrays cannot be referenced);
    - {b weight residency}: a [Compute] only runs on arrays whose cells
      currently hold that node's weights (a [Write_weights], in-place or
      not, that no later [To_memory] switch invalidated);
    - {b tensor liveness}: every tensor an instruction consumes was already
      produced by an earlier [Compute]/[Vector_op] (names the program never
      defines are treated as external inputs).

    The checker returns structured diagnostics instead of raising, so the
    pipeline can attach them to its degradation report. *)

type severity = Error | Warning

type diagnostic = {
  severity : severity;
  instr : int;   (** top-level instruction index in [program.instrs] *)
  message : string;
}

val run :
  Cim_arch.Chip.t -> ?initial_mode:Cim_arch.Mode.t ->
  ?faults:Cim_arch.Faultmap.t -> Flow.program -> diagnostic list
(** Abstract interpretation of the program in instruction order (a
    [Parallel] block is walked sequentially — code generation orders its
    body topologically, and {!Flow.validate} separately enforces the
    compute-xor-memory property within the block). [initial_mode] is the
    mode every array starts in (default [Memory], matching
    {!Flow.validate}'s producer). Diagnostics come back in program order;
    an empty list means the program is clean. *)

val errors : diagnostic list -> diagnostic list
(** The [Error]-severity subset. *)

val is_valid : diagnostic list -> bool
(** No [Error]-severity diagnostics ([Warning]s allowed). *)

val severity_to_string : severity -> string

val diagnostic_to_string : diagnostic -> string

val pp_diagnostic : Format.formatter -> diagnostic -> unit
