module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode

type coord = Chip.coord

type location = Main_memory | Buffer | Mem_arrays of coord list

type slice = { lo : int; hi : int }

type instr =
  | Switch of { target : Mode.transition; arrays : coord list }
  | Write_weights of {
      label : string;
      node_id : int;
      arrays : coord list;
      slice : slice;
      bytes : int;
      in_place : bool;
    }
  | Load of { tensor : string; src : location; dst : location; bytes : int }
  | Store of { tensor : string; src : location; dst : location; bytes : int }
  | Compute of {
      label : string;
      node_id : int;
      arrays : coord list;
      mem_arrays : coord list;
      inputs : string list;
      output : string;
      slice : slice;
      macs : float;
      ai : float;
    }
  | Vector_op of { label : string; node_id : int; inputs : string list; output : string }
  | Parallel of instr list

type program = { source : string; instrs : instr list }

let rec switches_of = function
  | Switch { target; arrays } -> List.map (fun a -> (target, a)) arrays
  | Parallel is -> List.concat_map switches_of is
  | Write_weights _ | Load _ | Store _ | Compute _ | Vector_op _ -> []

let switched_arrays p = List.concat_map switches_of p.instrs
let count_switches p = List.length (switched_arrays p)

(* --- validation --- *)

let validate chip p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_coord (c : coord) =
    try
      ignore (Chip.index_of_coord chip c);
      Ok ()
    with Chip.Invalid_config m -> Error m
  in
  let check_coords cs =
    List.fold_left
      (fun acc c -> match acc with Error _ -> acc | Ok () -> check_coord c)
      (Ok ()) cs
  in
  let check_slice label (s : slice) =
    if s.lo < 0 || s.hi <= s.lo then err "%s: malformed slice [%d,%d)" label s.lo s.hi
    else Ok ()
  in
  let ( >>= ) r f = match r with Error _ as e -> e | Ok () -> f () in
  let coords_of_loc = function Mem_arrays cs -> cs | Main_memory | Buffer -> [] in
  let rec check_instr ~in_parallel i =
    match i with
    | Switch { arrays; _ } -> check_coords arrays
    | Write_weights { arrays; slice; label; _ } ->
      check_coords arrays >>= fun () -> check_slice label slice
    | Load { src; dst; bytes; tensor } | Store { src; dst; bytes; tensor } ->
      check_coords (coords_of_loc src) >>= fun () ->
      check_coords (coords_of_loc dst) >>= fun () ->
      if bytes < 0 then err "%s: negative byte count" tensor else Ok ()
    | Compute { arrays; mem_arrays; slice; label; macs; ai; _ } ->
      check_coords arrays >>= fun () ->
      check_coords mem_arrays >>= fun () ->
      check_slice label slice >>= fun () ->
      if macs < 0. || ai < 0. then err "%s: negative macs/ai" label
      else begin
        (* an array cannot be compute and memory for the same operator *)
        let overlap = List.filter (fun c -> List.mem c mem_arrays) arrays in
        match overlap with
        | [] -> Ok ()
        | c :: _ -> err "%s: array (%d,%d) in both modes" label c.Chip.x c.Chip.y
      end
    | Parallel is ->
      if in_parallel then err "nested parallel block"
      else begin
        (* Eq. 5: within a segment an array is compute xor memory. *)
        let compute_set = Hashtbl.create 16 and memory_set = Hashtbl.create 16 in
        let record tbl cs = List.iter (fun c -> Hashtbl.replace tbl c ()) cs in
        List.iter
          (function
            | Compute { arrays; mem_arrays; _ } ->
              record compute_set arrays;
              record memory_set mem_arrays
            | Write_weights { arrays; _ } -> record compute_set arrays
            | Load { src; dst; _ } | Store { src; dst; _ } ->
              record memory_set (coords_of_loc src);
              record memory_set (coords_of_loc dst)
            | Switch _ | Vector_op _ | Parallel _ -> ())
          is;
        let clash =
          Hashtbl.fold
            (fun c () acc ->
              match acc with
              | Some _ -> acc
              | None -> if Hashtbl.mem memory_set c then Some c else None)
            compute_set None
        in
        match clash with
        | Some c ->
          err "parallel block: array (%d,%d) used in both modes" c.Chip.x c.Chip.y
        | None ->
          List.fold_left
            (fun acc i ->
              match acc with
              | Error _ -> acc
              | Ok () -> check_instr ~in_parallel:true i)
            (Ok ()) is
      end
    | Vector_op _ -> Ok ()
  in
  List.fold_left
    (fun acc i -> match acc with Error _ -> acc | Ok () -> check_instr ~in_parallel:false i)
    (Ok ()) p.instrs

(* --- printing (Fig. 13 concrete syntax) --- *)

let pp_coord ppf (c : coord) = Format.fprintf ppf "(%d,%d)" c.Chip.x c.Chip.y

let pp_coords ppf cs =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") pp_coord)
    cs

let pp_loc ppf = function
  | Main_memory -> Format.fprintf ppf "main"
  | Buffer -> Format.fprintf ppf "buffer"
  | Mem_arrays cs -> Format.fprintf ppf "arrays%a" pp_coords cs

let pp_names ppf ns =
  Format.fprintf ppf "(%s)" (String.concat ", " ns)

let rec pp_instr ppf = function
  | Switch { target; arrays } ->
    Format.fprintf ppf "CM.switch(%s, %a)"
      (Cim_arch.Mode.transition_to_string target)
      pp_coords arrays
  | Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Format.fprintf ppf
      "CIM.write(%S, node=%d, arrays=%a, slice=[%d,%d), bytes=%d, inplace=%d)"
      label node_id pp_coords arrays slice.lo slice.hi bytes
      (if in_place then 1 else 0)
  | Load { tensor; src; dst; bytes } ->
    Format.fprintf ppf "MEM.load(%s, %a -> %a, %d)" tensor pp_loc src pp_loc dst bytes
  | Store { tensor; src; dst; bytes } ->
    Format.fprintf ppf "MEM.store(%s, %a -> %a, %d)" tensor pp_loc src pp_loc dst bytes
  | Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai } ->
    Format.fprintf ppf
      "CIM.compute(%S, node=%d, arrays=%a, mem=%a, in=%a, out=(%s), slice=[%d,%d), macs=%.17g, ai=%.17g)"
      label node_id pp_coords arrays pp_coords mem_arrays pp_names inputs output
      slice.lo slice.hi macs ai
  | Vector_op { label; node_id; inputs; output } ->
    Format.fprintf ppf "VEC.op(%S, node=%d, in=%a, out=(%s))" label node_id
      pp_names inputs output
  | Parallel is ->
    Format.fprintf ppf "@[<v 2>parallel {@,%a@]@,}"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr)
      is

let pp ppf p =
  Format.fprintf ppf "@[<v>flow %S@,%a@]@." p.source
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_instr)
    p.instrs

(* [to_string] is on the compiler's hot path — the cache compares a
   regenerated program against a stored one, and a whole-program payload
   embeds the text — so it bypasses [Format] (box/break machinery is ~10x
   slower on large programs) for a direct [Buffer] printer. The output is
   byte-identical to [pp]: same line breaks, same two-space parallel-block
   indentation (checked by the metaop tests). *)

let buf_coords b cs =
  Buffer.add_char b '[';
  List.iteri
    (fun i (c : coord) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_char b '(';
      Buffer.add_string b (string_of_int c.Chip.x);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int c.Chip.y);
      Buffer.add_char b ')')
    cs;
  Buffer.add_char b ']'

let buf_loc b = function
  | Main_memory -> Buffer.add_string b "main"
  | Buffer -> Buffer.add_string b "buffer"
  | Mem_arrays cs ->
    Buffer.add_string b "arrays";
    buf_coords b cs

let buf_newline b indent =
  Buffer.add_char b '\n';
  for _ = 1 to indent do
    Buffer.add_char b ' '
  done

let rec buf_instr b ~indent = function
  | Switch { target; arrays } ->
    Buffer.add_string b "CM.switch(";
    Buffer.add_string b (Cim_arch.Mode.transition_to_string target);
    Buffer.add_string b ", ";
    buf_coords b arrays;
    Buffer.add_char b ')'
  | Write_weights { label; node_id; arrays; slice; bytes; in_place } ->
    Buffer.add_string b (Printf.sprintf "CIM.write(%S, node=%d, arrays=" label node_id);
    buf_coords b arrays;
    Buffer.add_string b
      (Printf.sprintf ", slice=[%d,%d), bytes=%d, inplace=%d)" slice.lo slice.hi
         bytes
         (if in_place then 1 else 0))
  | Load { tensor; src; dst; bytes } ->
    Buffer.add_string b "MEM.load(";
    Buffer.add_string b tensor;
    Buffer.add_string b ", ";
    buf_loc b src;
    Buffer.add_string b " -> ";
    buf_loc b dst;
    Buffer.add_string b (Printf.sprintf ", %d)" bytes)
  | Store { tensor; src; dst; bytes } ->
    Buffer.add_string b "MEM.store(";
    Buffer.add_string b tensor;
    Buffer.add_string b ", ";
    buf_loc b src;
    Buffer.add_string b " -> ";
    buf_loc b dst;
    Buffer.add_string b (Printf.sprintf ", %d)" bytes)
  | Compute { label; node_id; arrays; mem_arrays; inputs; output; slice; macs; ai } ->
    Buffer.add_string b (Printf.sprintf "CIM.compute(%S, node=%d, arrays=" label node_id);
    buf_coords b arrays;
    Buffer.add_string b ", mem=";
    buf_coords b mem_arrays;
    Buffer.add_string b ", in=(";
    Buffer.add_string b (String.concat ", " inputs);
    Buffer.add_string b
      (Printf.sprintf "), out=(%s), slice=[%d,%d), macs=%.17g, ai=%.17g)" output
         slice.lo slice.hi macs ai)
  | Vector_op { label; node_id; inputs; output } ->
    Buffer.add_string b
      (Printf.sprintf "VEC.op(%S, node=%d, in=(%s), out=(%s))" label node_id
         (String.concat ", " inputs)
         output)
  | Parallel is ->
    Buffer.add_string b "parallel {";
    List.iter
      (fun i ->
        buf_newline b (indent + 2);
        buf_instr b ~indent:(indent + 2) i)
      is;
    buf_newline b indent;
    Buffer.add_char b '}'

let to_string p =
  let b = Buffer.create 65536 in
  Buffer.add_string b (Printf.sprintf "flow %S" p.source);
  List.iter
    (fun i ->
      Buffer.add_char b '\n';
      buf_instr b ~indent:0 i)
    p.instrs;
  Buffer.add_char b '\n';
  Buffer.contents b
