(** The lowered MMIO command-stream ISA: the second backend behind the
    nanopass seams. A {!Flow.program} flattens onto a linear command FIFO —
    mode switches and compute issues become command words, [Load]/[Store]
    become DMA descriptors, and [Parallel] blocks become
    [PAR_BEGIN]/[PAR_END] bracket markers — the shape of a register-level
    accelerator driver feeding a memory-mapped queue.

    Binary format (everything little-endian):

    {v
    offset  field
    0       magic "CMSI"
    4       u32 version (= 1)
    8       u32 source-name length, then that many bytes
    .       u32 string-table entry count
    .       per entry: u32 length + bytes (labels / tensor names, deduped)
    .       u32 command-word count
    .       command words, each u32
    v}

    Command encodings (word 0 is always the opcode):

    {v
    op  mnemonic   operand words
    1   SWITCH     target (0=TOM 1=TOC); n; n coords
    2   WRITE      label-sidx; node-id; n; n coords; slice.lo; slice.hi;
                   bytes as i64 (hi word, lo word); in-place (0/1)
    3   DMA_LOAD   tensor-sidx; src location; dst location; bytes as i64
    4   DMA_STORE  tensor-sidx; src location; dst location; bytes as i64
    5   COMPUTE    label-sidx; node-id; n; n coords; m; m mem coords;
                   k; k input sidxs; output sidx; slice.lo; slice.hi;
                   macs as f64 bits (hi, lo); ai as f64 bits (hi, lo)
    6   VEC        label-sidx; node-id; k; k input sidxs; output sidx
    7   PAR_BEGIN  n (commands inside the block)
    8   PAR_END    (no operands)
    v}

    A coord packs as [x lsl 16 lor y]; a location is a tag word
    (0=main-memory, 1=buffer, 2=mem-arrays) where tag 2 is followed by a
    coord-list ([n; n coords]); signed 32-bit fields (node ids) use two's
    complement; 64-bit payloads (byte counts, float bits) split into
    high word then low word. *)

type coord = Cim_arch.Chip.coord

type cmd =
  | Switch of { target : Cim_arch.Mode.transition; arrays : coord list }
  | Write_weights of {
      label : string;
      node_id : int;
      arrays : coord list;
      slice : Flow.slice;
      bytes : int;
      in_place : bool;
    }
  | Dma_load of { tensor : string; src : Flow.location; dst : Flow.location; bytes : int }
  | Dma_store of { tensor : string; src : Flow.location; dst : Flow.location; bytes : int }
  | Compute of {
      label : string;
      node_id : int;
      arrays : coord list;
      mem_arrays : coord list;
      inputs : string list;
      output : string;
      slice : Flow.slice;
      macs : float;
      ai : float;
    }
  | Vec of { label : string; node_id : int; inputs : string list; output : string }
  | Par_begin of int  (** number of commands inside the bracketed block *)
  | Par_end

type image = { source : string; cmds : cmd array }

val of_flow : Flow.program -> image
(** Flatten: each [Parallel] block becomes [Par_begin n; ...; Par_end].
    Raises [Invalid_argument] on nested [Parallel] (which {!Flow.validate}
    already forbids). *)

val to_flow : image -> Flow.program
(** Raise back to the meta-op level. [to_flow (of_flow p)] reproduces [p]
    exactly, so {!Flow.to_string} of both is byte-identical. Raises
    [Invalid_argument] on unbalanced bracket markers. *)

val encode : image -> string
(** Serialise to the binary format above. Raises [Invalid_argument] when a
    field cannot be represented (coord out of 16-bit range, negative byte
    count). *)

val decode : string -> (image, string) result
(** Total inverse of {!encode}: every malformed input is an [Error], never
    an exception. [decode (encode img) = Ok img]. *)

val disassemble : image -> string
(** Textual listing, one command per line: word offset, mnemonic,
    operands. Stable format (CI diffs round trips through it). *)

val cmd_count : image -> int
val word_count : image -> int
(** Command words only (header and string table excluded). *)
