module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor

type node = {
  id : int;
  name : string;
  op : Op.t;
  inputs : string list;
  outputs : string list;
  attrs : (string * Attr.t) list;
}

type initializer_ = {
  init_name : string;
  init_shape : Shape.t;
  value : Tensor.t option;
}

type t = {
  graph_name : string;
  nodes : node list;
  graph_inputs : (string * Shape.t) list;
  graph_outputs : string list;
  initializers : initializer_ list;
}

exception Invalid of string

let invalid fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

(* Kahn topological sort, stable w.r.t. the input order. *)
let topo_sort nodes produced_by =
  let n = List.length nodes in
  let arr = Array.of_list nodes in
  let index_of_id = Hashtbl.create n in
  Array.iteri (fun i nd -> Hashtbl.replace index_of_id nd.id i) arr;
  let succs = Array.make n [] in
  let indeg = Array.make n 0 in
  Array.iteri
    (fun i nd ->
      List.iter
        (fun input ->
          match Hashtbl.find_opt produced_by input with
          | Some pid when pid <> nd.id ->
            let p = Hashtbl.find index_of_id pid in
            succs.(p) <- i :: succs.(p);
            indeg.(i) <- indeg.(i) + 1
          | _ -> ())
        nd.inputs)
    arr;
  (* min-heap over original index keeps the sort stable *)
  let module IS = Set.Make (Int) in
  let ready = ref IS.empty in
  Array.iteri (fun i _ -> if indeg.(i) = 0 then ready := IS.add i !ready) arr;
  let out = ref [] in
  let emitted = ref 0 in
  while not (IS.is_empty !ready) do
    let i = IS.min_elt !ready in
    ready := IS.remove i !ready;
    out := arr.(i) :: !out;
    incr emitted;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then ready := IS.add s !ready)
      succs.(i)
  done;
  if !emitted <> n then invalid "graph contains a cycle";
  List.rev !out

let create ~name ~nodes ~inputs ~outputs ~initializers =
  (* Unique node ids. *)
  let seen_ids = Hashtbl.create 64 in
  List.iter
    (fun nd ->
      if Hashtbl.mem seen_ids nd.id then invalid "duplicate node id %d" nd.id;
      Hashtbl.replace seen_ids nd.id ())
    nodes;
  (* SSA: each tensor name produced exactly once. *)
  let produced_by = Hashtbl.create 64 in
  let define src n =
    if Hashtbl.mem produced_by n then invalid "tensor %s defined twice" n;
    Hashtbl.replace produced_by n src
  in
  List.iter (fun (n, _) -> define (-1) n) inputs;
  List.iter (fun init -> define (-2) init.init_name) initializers;
  List.iter (fun nd -> List.iter (define nd.id) nd.outputs) nodes;
  (* Every consumed name must exist. *)
  List.iter
    (fun nd ->
      List.iter
        (fun input ->
          if not (Hashtbl.mem produced_by input) then
            invalid "node %s consumes undefined tensor %s" nd.name input)
        nd.inputs)
    nodes;
  List.iter
    (fun o ->
      if not (Hashtbl.mem produced_by o) then invalid "graph output %s is undefined" o)
    outputs;
  List.iter
    (fun init ->
      match init.value with
      | Some v when not (Shape.equal (Tensor.shape v) init.init_shape) ->
        invalid "initializer %s value shape mismatch" init.init_name
      | _ -> ())
    initializers;
  let node_producers = Hashtbl.create 64 in
  Hashtbl.iter
    (fun n src -> if src >= 0 then Hashtbl.replace node_producers n src)
    produced_by;
  let sorted = topo_sort nodes node_producers in
  { graph_name = name; nodes = sorted; graph_inputs = inputs;
    graph_outputs = outputs; initializers }

let node_count g = List.length g.nodes

let find_node g id =
  match List.find_opt (fun nd -> nd.id = id) g.nodes with
  | Some nd -> nd
  | None -> invalid "no node with id %d" id

let find_init g name =
  List.find_opt (fun i -> i.init_name = name) g.initializers

let is_initializer g name = find_init g name <> None

let initializer_shape g name =
  Option.map (fun i -> i.init_shape) (find_init g name)

let initializer_value g name = Option.bind (find_init g name) (fun i -> i.value)

let producer g tensor =
  List.find_opt (fun nd -> List.mem tensor nd.outputs) g.nodes

let consumers g tensor =
  List.filter (fun nd -> List.mem tensor nd.inputs) g.nodes

let depends g i j =
  let ni = find_node g i and nj = find_node g j in
  List.exists (fun o -> List.mem o nj.inputs) ni.outputs

let param_count g =
  List.fold_left (fun acc i -> acc + Shape.numel i.init_shape) 0 g.initializers

let cim_nodes g = List.filter (fun nd -> Op.is_cim_supported nd.op) g.nodes

let with_random_values rng g =
  let initializers =
    List.map
      (fun i ->
        match i.value with
        | Some _ -> i
        | None ->
          { i with
            value = Some (Tensor.rand rng i.init_shape ~lo:(-0.5) ~hi:0.5) })
      g.initializers
  in
  { g with initializers }

let pp ppf g =
  Format.fprintf ppf "graph %s (%d nodes, %d params)@." g.graph_name
    (node_count g) (param_count g);
  List.iter
    (fun nd ->
      Format.fprintf ppf "  %3d %-18s %-12s (%s) -> (%s)@." nd.id nd.name
        (Op.to_string nd.op)
        (String.concat ", " nd.inputs)
        (String.concat ", " nd.outputs))
    g.nodes
