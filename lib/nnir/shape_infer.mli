(** Whole-graph shape inference. Every operator's output shape is derived
    from its inputs and attributes; the result maps every tensor name
    (inputs, initializers, intermediates) to its shape. *)

exception Error of string

val infer : Graph.t -> (string, Cim_tensor.Shape.t) Hashtbl.t
(** Raises [Error] when an operator is applied to incompatible shapes. *)

val output_shape :
  Op.t ->
  (string * Attr.t) list ->
  Cim_tensor.Shape.t list ->
  Cim_tensor.Shape.t list
(** Shape rule for a single node: input shapes (in node-input order) to
    output shapes. Raises [Error]. *)

val dominates : over:Graph.t -> under:Graph.t -> (unit, string) result
(** [dominates ~over ~under] checks that every tensor of [under] has a
    counterpart in [over] of equal rank whose dimensions are all [>=] —
    i.e. a program compiled for [over] (a bucket-ceiling padded graph) can
    serve [under] by padding. The error lists every violating tensor,
    sorted, so the message is deterministic. Raises {!Error} when either
    graph fails shape inference. *)
