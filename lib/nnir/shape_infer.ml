module Shape = Cim_tensor.Shape

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let conv_out h k stride pad = ((h + (2 * pad) - k) / stride) + 1

let matmul_shape a b =
  match (a, b) with
  | [ m; k ], [ k'; n ] when k = k' -> [ m; n ]
  | [ bd; m; k ], [ k'; n ] when k = k' -> [ bd; m; n ]
  | [ bd; m; k ], [ bd'; k'; n ] when k = k' && bd = bd' -> [ bd; m; n ]
  | _ ->
    err "MatMul: incompatible %s x %s" (Shape.to_string a) (Shape.to_string b)

let output_shape op attrs input_shapes =
  match (op, input_shapes) with
  | Op.Mat_mul, [ a; b ] -> [ matmul_shape a b ]
  | Op.Gemm, ([ a; b ] | [ a; b; _ ]) -> [ matmul_shape a b ]
  | Op.Conv, ([ x; w ] | [ x; w; _ ]) -> begin
    match (x, w) with
    | [ n; c; h; wd ], [ oc; cg; kh; kw ] ->
      let groups = Attr.get_int_d attrs "groups" 1 in
      let stride = Attr.get_int_d attrs "stride" 1 in
      let pad = Attr.get_int_d attrs "pad" 0 in
      if cg * groups <> c then
        err "Conv: channels %d do not match weight %d x groups %d" c cg groups;
      [ [ n; oc; conv_out h kh stride pad; conv_out wd kw stride pad ] ]
    | _ -> err "Conv: expected NCHW x OIHW"
  end
  | (Op.Relu | Op.Clip | Op.Gelu | Op.Silu | Op.Softmax), [ x ] -> [ x ]
  | Op.Layer_norm, [ x; g; b ] ->
    let d = Shape.dim x (-1) in
    if Shape.numel g <> d || Shape.numel b <> d then
      err "LayerNorm: gamma/beta mismatch";
    [ x ]
  | Op.Rms_norm, [ x; g ] ->
    if Shape.numel g <> Shape.dim x (-1) then err "RMSNorm: gamma mismatch";
    [ x ]
  | (Op.Add | Op.Mul), [ a; b ] -> begin
    match Shape.broadcast a b with
    | Some s -> [ s ]
    | None ->
      err "%s: shapes %s and %s do not broadcast" (Op.to_string op)
        (Shape.to_string a) (Shape.to_string b)
  end
  | (Op.Max_pool | Op.Avg_pool), [ x ] -> begin
    match x with
    | [ n; c; h; w ] ->
      let k = Attr.get_int_d attrs "k" 2 in
      let stride = Attr.get_int_d attrs "stride" k in
      let pad = Attr.get_int_d attrs "pad" 0 in
      [ [ n; c; conv_out h k stride pad; conv_out w k stride pad ] ]
    | _ -> err "%s: expected NCHW" (Op.to_string op)
  end
  | Op.Global_avg_pool, [ x ] -> begin
    match x with
    | [ n; c; _; _ ] -> [ [ n; c ] ]
    | _ -> err "GlobalAveragePool: expected NCHW"
  end
  | Op.Reshape, [ x ] -> begin
    match Attr.get_ints attrs "shape" with
    | None -> err "Reshape: missing shape attribute"
    | Some dims ->
      (* A single -1 dimension is inferred from the remaining ones. *)
      let holes = List.length (List.filter (fun d -> d = -1) dims) in
      if holes > 1 then err "Reshape: more than one -1 dimension";
      let known = List.fold_left (fun acc d -> if d = -1 then acc else acc * d) 1 dims in
      let total = Shape.numel x in
      let dims =
        if holes = 0 then dims
        else begin
          if known = 0 || total mod known <> 0 then
            err "Reshape: cannot infer -1 dimension";
          List.map (fun d -> if d = -1 then total / known else d) dims
        end
      in
      if List.fold_left ( * ) 1 dims <> total then
        err "Reshape: element count mismatch (%s -> %s)" (Shape.to_string x)
          (Shape.to_string dims);
      [ Shape.of_list dims ]
  end
  | Op.Transpose, [ x ] -> begin
    match Attr.get_ints attrs "perm" with
    | None -> err "Transpose: missing perm attribute"
    | Some perm ->
      if List.sort compare perm <> List.init (Shape.rank x) Fun.id then
        err "Transpose: invalid permutation";
      [ List.map (fun i -> Shape.dim x i) perm ]
  end
  | Op.Concat, [ a; b ] -> begin
    let axis = Attr.get_int_d attrs "axis" 0 in
    match Shape.concat_dim a b ~axis with
    | Some s -> [ s ]
    | None ->
      err "Concat: incompatible %s and %s on axis %d" (Shape.to_string a)
        (Shape.to_string b) axis
  end
  | Op.Embedding, [ ids; w ] -> begin
    match w with
    | [ _vocab; d ] -> [ ids @ [ d ] ]
    | _ -> err "Embedding: weight must be [vocab; d]"
  end
  | _, shapes ->
    err "%s: unexpected arity %d" (Op.to_string op) (List.length shapes)

let infer (g : Graph.t) =
  let env = Hashtbl.create 128 in
  List.iter (fun (n, s) -> Hashtbl.replace env n s) g.graph_inputs;
  List.iter
    (fun (i : Graph.initializer_) -> Hashtbl.replace env i.init_name i.init_shape)
    g.initializers;
  List.iter
    (fun (nd : Graph.node) ->
      let ins =
        List.map
          (fun n ->
            match Hashtbl.find_opt env n with
            | Some s -> s
            | None -> err "node %s: input %s has no shape" nd.name n)
          nd.inputs
      in
      let outs =
        try output_shape nd.op nd.attrs ins
        with Error m -> err "node %s: %s" nd.name m
      in
      if List.length outs <> List.length nd.outputs then
        err "node %s: output arity mismatch" nd.name;
      List.iter2 (fun n s -> Hashtbl.replace env n s) nd.outputs outs)
    g.nodes;
  env

(* Soundness check for length-bucketed compilation: a program compiled for
   the padded (bucket-ceiling) graph serves requests of the actual graph
   only if every tensor of the actual graph fits inside its padded
   counterpart. *)
let dominates ~over ~under =
  let eo = infer over and eu = infer under in
  let bad = ref [] in
  Hashtbl.iter
    (fun name su ->
      match Hashtbl.find_opt eo name with
      | None ->
        bad := Printf.sprintf "%s: absent from the padded graph" name :: !bad
      | Some so ->
        if
          Shape.rank so <> Shape.rank su
          || not (List.for_all2 (fun a b -> a >= b) so su)
        then
          bad :=
            Printf.sprintf "%s: padded %s does not cover %s" name
              (Shape.to_string so) (Shape.to_string su)
            :: !bad)
    eu;
  match List.sort compare !bad with
  | [] -> Ok ()
  | l -> Error (String.concat "; " l)
