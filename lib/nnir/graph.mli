(** The computation-graph IR that the compiler consumes — the ONNX substitute.
    Tensors are identified by name (SSA: each name produced exactly once). *)

type node = {
  id : int;               (** dense, unique within the graph *)
  name : string;
  op : Op.t;
  inputs : string list;
  outputs : string list;
  attrs : (string * Attr.t) list;
}

type initializer_ = {
  init_name : string;
  init_shape : Cim_tensor.Shape.t;
  value : Cim_tensor.Tensor.t option;
      (** Concrete weights for functional simulation; [None] for the large
          models where only shapes matter to the compiler. *)
}

type t = private {
  graph_name : string;
  nodes : node list;                               (** topologically sorted *)
  graph_inputs : (string * Cim_tensor.Shape.t) list;
  graph_outputs : string list;
  initializers : initializer_ list;
}

exception Invalid of string

val create :
  name:string ->
  nodes:node list ->
  inputs:(string * Cim_tensor.Shape.t) list ->
  outputs:string list ->
  initializers:initializer_ list ->
  t
(** Validates SSA-ness, that every node input is defined (graph input,
    initializer or earlier node output — cycles rejected), that every graph
    output is produced, and topologically sorts the nodes (stable: ties keep
    the given order). Raises [Invalid]. *)

val node_count : t -> int
val find_node : t -> int -> node
val is_initializer : t -> string -> bool
val initializer_shape : t -> string -> Cim_tensor.Shape.t option
val initializer_value : t -> string -> Cim_tensor.Tensor.t option

val producer : t -> string -> node option
(** The node producing a tensor name, if any. *)

val consumers : t -> string -> node list

val depends : t -> int -> int -> bool
(** [depends g i j] is true when node [j] consumes (directly) an output of
    node [i] — the paper's dependency relation w_{i,j}. *)

val param_count : t -> int
(** Total number of weight elements across initializers. *)

val cim_nodes : t -> node list
(** Nodes whose op is CIM-supported, in topological order. *)

val with_random_values : Cim_util.Rng.t -> t -> t
(** Fill every valueless initializer with seeded uniform values in
    [-0.5, 0.5) (the {!Builder.linear} convention), leaving concrete
    weights untouched — initializers are visited in graph order, so the
    same seed always yields the same weights. Makes the shape-only zoo
    graphs runnable by the functional simulator. *)

val pp : Format.formatter -> t -> unit
