let fail_empty name = invalid_arg (name ^ ": empty list")

let mean = function
  | [] -> fail_empty "Stats.mean"
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> fail_empty "Stats.geomean"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0. then invalid_arg "Stats.geomean: non-positive value"
          else acc +. log x)
        0. xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let stdev = function
  | [] -> fail_empty "Stats.stdev"
  | [ _ ] -> 0.
  | xs ->
    let m = mean xs in
    let sq_sum = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (sq_sum /. float_of_int (List.length xs - 1))

let minimum = function
  | [] -> fail_empty "Stats.minimum"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> fail_empty "Stats.maximum"
  | x :: xs -> List.fold_left max x xs

(* NaN poisons comparison-based sorting: polymorphic [compare] places NaN
   inconsistently, so a silently mis-sorted array would yield an arbitrary
   "percentile". Reject NaN up front and sort with the total order
   [Float.compare]. *)
let sorted_finite name xs =
  if List.exists Float.is_nan xs then invalid_arg (name ^ ": NaN in input");
  Array.of_list (List.sort Float.compare xs)

let percentile p xs =
  if xs = [] then fail_empty "Stats.percentile";
  if Float.is_nan p then invalid_arg "Stats.percentile: p is NaN";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of [0,100]";
  let arr = sorted_finite "Stats.percentile" xs in
  let n = Array.length arr in
  if n = 1 then arr.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    (* short-circuit exact ranks: with infinities in play the blended form
       would evaluate inf - inf = NaN even though frac is 0 *)
    if frac = 0. then arr.(lo)
    else arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

let percentile_nearest_rank p xs =
  if xs = [] then fail_empty "Stats.percentile_nearest_rank";
  if Float.is_nan p then invalid_arg "Stats.percentile_nearest_rank: p is NaN";
  if p < 0. || p > 100. then
    invalid_arg "Stats.percentile_nearest_rank: p out of [0,100]";
  let arr = sorted_finite "Stats.percentile_nearest_rank" xs in
  let n = Array.length arr in
  (* multiply before dividing: p/100 is not exactly representable (95/100
     rounds up), so (p /. 100.) *. n lands just above whole-number ranks
     and ceil then overshoots by one — visible at n = 20, where p95 must be
     the 19th order statistic, not the maximum *)
  let rank = int_of_float (ceil (p *. float_of_int n /. 100.)) in
  arr.(max 0 (min (n - 1) (rank - 1)))

let median xs = percentile 50. xs

let normalize_to_max = function
  | [] -> []
  | xs ->
    let m = maximum xs in
    if m = 0. then xs else List.map (fun x -> x /. m) xs

let ratio a b = if b = 0. then invalid_arg "Stats.ratio: zero denominator" else a /. b
