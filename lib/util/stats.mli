(** Small statistics toolkit used by the benchmark harness and reports. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values. Raises [Invalid_argument] on
    the empty list or if any value is [<= 0.]. *)

val stdev : float list -> float
(** Sample standard deviation (n-1 denominator); [0.] for singleton lists.
    Raises [Invalid_argument] on the empty list. *)

val minimum : float list -> float
val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100], linear interpolation between
    order statistics (sorted under the total order [Float.compare]). Raises
    [Invalid_argument] on the empty list, if [p] is out of range or NaN, or
    if any sample is NaN — NaN has no rank, and letting it through would
    silently mis-sort the input. *)

val percentile_nearest_rank : float -> float list -> float
(** Nearest-rank percentile (the smallest sample with at least [p]% of the
    distribution at or below it) — never interpolates, so on a small sample
    a tail percentile reports an actual observation (p95 of fewer than 20
    samples is the maximum) instead of an optimistic blend of the two
    largest. Raises [Invalid_argument] on the empty list, [p] out of range
    or NaN, or any NaN sample (same rationale as {!percentile}). *)

val median : float list -> float

val normalize_to_max : float list -> float list
(** Scale so the maximum becomes [1.]; the empty list maps to itself, and an
    all-zero list is returned unchanged. *)

val ratio : float -> float -> float
(** [ratio a b = a /. b], raising [Invalid_argument] when [b = 0.]. *)
