(** Plain-text tabular reports, used by the benchmark harness to print the
    paper's tables and figure series. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; raises [Invalid_argument] if the arity differs from the
    header. *)

val add_rule : t -> unit
(** Append a horizontal separator. *)

val render : t -> string
(** Render with box-drawing-free ASCII suitable for log capture. *)

val render_csv : t -> string
(** Header + rows as RFC-4180-ish CSV (cells quoted when they contain a
    comma, quote or newline); rules are omitted. *)

val set_csv_dir : string option -> unit
(** When set, every {!print} additionally writes the table as
    [<dir>/<slug-of-title>.csv] (untitled tables get numbered slugs). The
    directory must exist. Used by the benchmark harness's [--csv] flag. *)

val set_sink : (t -> unit) option -> unit
(** Observer invoked by {!print} with every printed table, before any CSV
    dump. The benchmark harness's [--json] flag uses it to collect result
    rows for a machine-readable dump. *)

val title : t -> string option
val headers : t -> string list

val data_rows : t -> string list list
(** The data rows in print order, rules omitted. *)

val print : t -> unit

val cell_f : ?digits:int -> float -> string
(** Fixed-point float formatting, default 2 digits. *)

val cell_speedup : float -> string
(** e.g. [1.31x]. *)

val cell_pct : float -> string
(** [0.125] renders as [12.5%]. *)

val cell_si : float -> string
(** Engineering notation: 1.2k, 3.4M, 5.6G ... *)
