(* Work pool on OCaml 5 domains: a single FIFO of thunks drained by [jobs]
   worker domains. Stdlib only (Domain / Mutex / Condition / Queue), so the
   compiler core stays dependency-free. *)

type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fm : Mutex.t;
  fcond : Condition.t;
  mutable state : 'a state;
}

(* (run, cancel): [run] executes the task and resolves its future; [cancel]
   fails the future without running it (shutdown with tasks still queued). *)
type task = { run : unit -> unit; cancel : unit -> unit }

type t = {
  jobs : int;
  m : Mutex.t;
  nonempty : Condition.t;
  q : task Queue.t;
  mutable closed : bool;
  mutable domains : unit Domain.t list; (* empty when jobs = 1 *)
}

(* Which pool worker (if any) the current domain is. Nested parallel code
   checks this to degrade to serial instead of spawning domains from inside
   a worker. *)
let worker_key : int option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let current_worker () = Domain.DLS.get worker_key

let parse_jobs s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | Some n -> Error (Printf.sprintf "jobs must be >= 1 (got %d)" n)
  | None -> Error (Printf.sprintf "jobs must be a positive integer (got %S)" s)

let default_jobs () =
  match Sys.getenv_opt "CMSWITCH_JOBS" with
  | Some s -> (
    match parse_jobs s with
    | Ok n -> n
    | Error _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let rec worker_loop t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.nonempty t.m
  done;
  if Queue.is_empty t.q then Mutex.unlock t.m (* closed and drained: exit *)
  else begin
    let task = Queue.pop t.q in
    Mutex.unlock t.m;
    task.run ();
    worker_loop t
  end

let create ?(name = "pool") ?on_worker_start ~jobs () =
  if jobs < 1 then
    invalid_arg (Printf.sprintf "Pool.create (%s): jobs must be >= 1, got %d" name jobs);
  let t =
    { jobs; m = Mutex.create (); nonempty = Condition.create ();
      q = Queue.create (); closed = false; domains = [] }
  in
  if jobs > 1 then
    t.domains <-
      List.init jobs (fun i ->
          Domain.spawn (fun () ->
              Domain.DLS.set worker_key (Some i);
              (match on_worker_start with
              | None -> ()
              | Some f -> ( try f i with _ -> ()));
              worker_loop t));
  t

let jobs t = t.jobs

let resolve fut st =
  Mutex.lock fut.fm;
  fut.state <- st;
  Condition.broadcast fut.fcond;
  Mutex.unlock fut.fm

let submit t f =
  let fut = { fm = Mutex.create (); fcond = Condition.create (); state = Pending } in
  let run () =
    let st =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    resolve fut st
  in
  let cancel () =
    resolve fut
      (Failed (Failure "Pool: task discarded by shutdown", Printexc.get_callstack 0))
  in
  if t.jobs = 1 then begin
    (* inline mode: the caller's domain is the executor, so a 1-job pool is
       exactly the serial baseline *)
    if t.closed then invalid_arg "Pool.submit: pool is shut down";
    run ();
    fut
  end
  else begin
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push { run; cancel } t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.m;
    fut
  end

let await fut =
  Mutex.lock fut.fm;
  while fut.state = Pending do
    Condition.wait fut.fcond fut.fm
  done;
  let st = fut.state in
  Mutex.unlock fut.fm;
  match st with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let shutdown t =
  Mutex.lock t.m;
  if t.closed then Mutex.unlock t.m
  else begin
    t.closed <- true;
    (* fail queued-but-unstarted tasks instead of leaving awaiters hanging *)
    let pending = List.of_seq (Queue.to_seq t.q) in
    Queue.clear t.q;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter (fun task -> task.cancel ()) pending;
    let ds = t.domains in
    t.domains <- [];
    List.iter Domain.join ds
  end

let with_pool ?name ?on_worker_start ~jobs f =
  let t = create ?name ?on_worker_start ~jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  List.map await futs
