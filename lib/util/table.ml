type align = Left | Right | Center

type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
      let left = (width - n) / 2 in
      String.make left ' ' ^ s ^ String.make (width - n - left) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (function
      | Rule -> ()
      | Cells cells ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cells)
    rows;
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) ch)) widths;
    Buffer.add_string buf "+\n"
  in
  let emit aligns cells =
    List.iteri
      (fun i c ->
        let a = List.nth aligns i in
        Buffer.add_string buf ("| " ^ pad a widths.(i) c ^ " "))
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | Some title -> Buffer.add_string buf (title ^ "\n")
  | None -> ());
  line '-';
  emit (List.map (fun _ -> Center) t.headers) t.headers;
  line '=';
  List.iter
    (function Rule -> line '-' | Cells cells -> emit t.aligns cells)
    rows;
  line '-';
  Buffer.contents buf

let csv_cell c =
  let needs_quote =
    String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') c
  in
  if not needs_quote then c
  else begin
    let buf = Buffer.create (String.length c + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun ch ->
        if ch = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf ch)
      c;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let render_csv t =
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_string buf (String.concat "," (List.map csv_cell cells));
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  List.iter (function Rule -> () | Cells cells -> emit cells) (List.rev t.rows);
  Buffer.contents buf

let title t = t.title
let headers t = t.headers

let data_rows t =
  List.filter_map (function Rule -> None | Cells cells -> Some cells) (List.rev t.rows)

let csv_dir = ref None
let csv_counter = ref 0

let set_csv_dir d = csv_dir := d

let sink : (t -> unit) option ref = ref None
let set_sink s = sink := s

let slug_of_title t =
  match t.title with
  | None ->
    incr csv_counter;
    Printf.sprintf "table_%d" !csv_counter
  | Some title ->
    let b = Buffer.create (String.length title) in
    String.iter
      (fun ch ->
        if (ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') then
          Buffer.add_char b ch
        else if ch >= 'A' && ch <= 'Z' then
          Buffer.add_char b (Char.lowercase_ascii ch)
        else if Buffer.length b > 0 && Buffer.nth b (Buffer.length b - 1) <> '-'
        then Buffer.add_char b '-')
      title;
    let s = Buffer.contents b in
    let s = if String.length s > 60 then String.sub s 0 60 else s in
    if s = "" then (incr csv_counter; Printf.sprintf "table_%d" !csv_counter) else s

let print t =
  print_string (render t);
  (match !sink with None -> () | Some f -> f t);
  match !csv_dir with
  | None -> ()
  | Some dir ->
    let path = Filename.concat dir (slug_of_title t ^ ".csv") in
    let oc = open_out path in
    output_string oc (render_csv t);
    close_out oc

let cell_f ?(digits = 2) x = Printf.sprintf "%.*f" digits x
let cell_speedup x = Printf.sprintf "%.2fx" x
let cell_pct x = Printf.sprintf "%.1f%%" (100. *. x)

let cell_si x =
  let ax = Float.abs x in
  if ax >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if ax >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
  else if ax >= 1e3 then Printf.sprintf "%.2fk" (x /. 1e3)
  else Printf.sprintf "%.2f" x
