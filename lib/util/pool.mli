(** Dependency-free work pool on OCaml 5 domains.

    A pool owns [jobs] worker domains fed from a single FIFO task queue
    ([Mutex] + [Condition], stdlib only); the caller's domain only submits
    and awaits. With [jobs = 1] no domain is spawned and every task runs
    inline at submission, so a 1-job pool is behaviourally identical to
    calling the thunks directly — the serial baseline the determinism
    contract of [Segment.run] is stated against.

    Tasks are independent: a task must not await a future of the same pool
    (the caller's domain is the only consumer of futures, and workers never
    block on each other), which is what makes the pool deadlock-free by
    construction. Worker exceptions are captured with their backtraces and
    re-raised at {!await}, never swallowed. *)

type t

type 'a future

val default_jobs : unit -> int
(** The job count compiled against when the caller does not choose one:
    [CMSWITCH_JOBS] from the environment when set to a positive integer,
    otherwise [Domain.recommended_domain_count ()]. *)

val parse_jobs : string -> (int, string) result
(** Validate a user-supplied job count: a positive decimal integer. Used by
    the CLI [--jobs] flag and the [CMSWITCH_JOBS] environment override so
    both reject the same inputs ([0], negatives, garbage) the same way. *)

val create : ?name:string -> ?on_worker_start:(int -> unit) -> jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs] worker domains ([jobs = 1] spawns
    none). [on_worker_start i] runs first on worker [i] (0-based, on the
    worker's own domain) — used to label observability state per domain.
    Raises [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a task. On a 1-job pool the task runs inline before [submit]
    returns. Raises [Invalid_argument] on a pool that has been shut down. *)

val await : 'a future -> 'a
(** Block until the task finished; returns its value or re-raises its
    exception with the worker's backtrace. Only the submitting domain may
    await (single-consumer futures). *)

val shutdown : t -> unit
(** Discard tasks not yet started (their futures raise [Failure] when
    awaited), wait for running ones, and join all worker domains.
    Idempotent. *)

val with_pool : ?name:string -> ?on_worker_start:(int -> unit) -> jobs:int ->
  (t -> 'a) -> 'a
(** [create] / run / [shutdown], shutdown guaranteed on exceptions. *)

val current_worker : unit -> int option
(** [Some i] when called from worker [i] of some pool, [None] on any other
    domain. Lets nested code degrade to serial instead of spawning domains
    from inside a worker (domain counts would otherwise multiply). *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Submit one task per element, await in order. Exceptions re-raise in
    list order: the first failing element wins, deterministically,
    whatever order the workers actually failed in. *)
