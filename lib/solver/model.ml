type var = { index : int; vname : string; integer : bool }

type expr = (float * var) list

type row = { coeffs : (float * var) list; op : Lp.op; rhs : float }

type t = {
  name : string;
  mutable vars : var list; (* reversed *)
  mutable lbs : float list; (* reversed *)
  mutable ubs : float list; (* reversed *)
  mutable rows : row list; (* reversed *)
  mutable objective : expr;
  mutable sense_max : bool;
  mutable solution : Lp.solution option;
}

let create ?(name = "model") () =
  { name; vars = []; lbs = []; ubs = []; rows = []; objective = [];
    sense_max = true; solution = None }

let add_var t ?(lb = 0.) ?(ub = infinity) ?(integer = false) vname =
  let v = { index = List.length t.vars; vname; integer } in
  t.vars <- v :: t.vars;
  t.lbs <- lb :: t.lbs;
  t.ubs <- ub :: t.ubs;
  t.solution <- None;
  v

let var_name v = v.vname

let add_row t coeffs op rhs =
  t.rows <- { coeffs; op; rhs } :: t.rows;
  t.solution <- None

let add_le t ?name:_ expr rhs = add_row t expr Lp.Le rhs
let add_ge t ?name:_ expr rhs = add_row t expr Lp.Ge rhs
let add_eq t ?name:_ expr rhs = add_row t expr Lp.Eq rhs

let maximize t expr =
  t.objective <- expr;
  t.sense_max <- true;
  t.solution <- None

let minimize t expr =
  t.objective <- expr;
  t.sense_max <- false;
  t.solution <- None

type outcome =
  | Optimal of float
  | Infeasible
  | Unbounded
  | Truncated of float option

let to_problem t =
  let n = List.length t.vars in
  let dense expr =
    let arr = Array.make n 0. in
    List.iter (fun (c, v) -> arr.(v.index) <- arr.(v.index) +. c) expr;
    arr
  in
  let sign = if t.sense_max then 1. else -1. in
  let objective = Array.map (fun c -> sign *. c) (dense t.objective) in
  let rows =
    List.rev_map (fun r -> (dense r.coeffs, r.op, r.rhs)) t.rows
  in
  let lower = Array.of_list (List.rev t.lbs) in
  let upper = Array.of_list (List.rev t.ubs) in
  let kinds =
    Array.of_list
      (List.rev_map
         (fun v -> if v.integer then Milp.Integer else Milp.Continuous)
         t.vars)
  in
  ({ Lp.n_vars = n; maximize = objective; rows; lower; upper }, kinds)

let solve ?max_nodes ?gap ?backend t =
  let p, kinds = to_problem t in
  let sign = if t.sense_max then 1. else -1. in
  let has_integer = Array.exists (fun k -> k = Milp.Integer) kinds in
  let lift (sol : Lp.solution) = sign *. sol.Lp.objective in
  if has_integer then begin
    match Milp.solve ?max_nodes ?gap ?backend p ~kinds with
    | Milp.Optimal sol ->
      t.solution <- Some sol;
      Optimal (lift sol)
    | Milp.Infeasible -> Infeasible
    | Milp.Unbounded -> Unbounded
    | Milp.Node_limit sol ->
      t.solution <- sol;
      Truncated (Option.map lift sol)
  end
  else begin
    let r =
      match backend with
      | Some Milp.Dense -> Lp_dense.solve ~validate:true p
      | Some Milp.Revised | None -> Lp.solve ~validate:true p
    in
    match r with
    | Lp.Optimal sol ->
      t.solution <- Some sol;
      Optimal (lift sol)
    | Lp.Infeasible -> Infeasible
    | Lp.Unbounded -> Unbounded
    | Lp.Iteration_limit -> Truncated None
  end

let value t v =
  match t.solution with
  | None -> failwith "Model.value: no stored solution"
  | Some sol -> sol.Lp.values.(v.index)

let int_value t v =
  if not v.integer then failwith ("Model.int_value: " ^ v.vname ^ " is continuous");
  int_of_float (Float.round (value t v))

let n_vars t = List.length t.vars
let n_constraints t = List.length t.rows

let pp_stats ppf t =
  Format.fprintf ppf "model %s: %d vars (%d integer), %d constraints" t.name
    (n_vars t)
    (List.length (List.filter (fun v -> v.integer) t.vars))
    (n_constraints t)
