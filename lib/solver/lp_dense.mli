(** Dense two-phase tableau simplex — the original CMSwitch LP core, kept
    verbatim as a differential oracle for the bounded-variable revised
    simplex in {!Lp} (and as the [Dense] backend of {!Milp}, so benches can
    measure both cores on identical branch-and-bound trees).

    Finite upper bounds are folded into explicit [<=] rows and the tableau
    is rebuilt from scratch on every call, which is exactly the cost the
    revised solver removes; do not use this on hot paths. Shares
    {!Lp.problem} / {!Lp.result}. *)

val solve :
  ?eps:float -> ?max_iters:int -> ?validate:bool -> Lp.problem -> Lp.result
(** [eps] is the feasibility/optimality tolerance (default 1e-9).
    [validate] (default [false]) runs {!Lp.check} first. Returns
    [Lp.Iteration_limit] when the pivot budget (default 20_000) runs
    out. *)
