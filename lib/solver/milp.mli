(** Branch-and-bound mixed-integer solver over the simplex LP relaxation —
    the role Gurobi plays in the paper (§4.3.2). Exact for the small models
    CMSwitch generates (a few dozen variables per network segment).

    Each child node differs from its parent by one tightened variable
    bound, so the parent's optimal basis stays dual-feasible for the child:
    with the default [Revised] backend every non-root node re-solve is
    warm-started from its parent's basis snapshot and repaired by a few
    dual-simplex pivots instead of a from-scratch solve
    ([solver.bb.warm_hits] counts them). Each stack entry also records
    its parent's LP objective — a bound on the whole subtree — so nodes
    whose bound has fallen inside the incumbent's gap by pop time are
    discarded without an LP solve at all ([solver.bb.bound_skips]).
    After the root relaxation seeds the rounding incumbent (deduped
    floor/ceil/round pinnings, skipped when the root is already
    integral), reduced-cost bound tightening shrinks integer boxes once
    for the whole tree ([solver.bb.rc_tightened]). The LP is validated
    once at the root; warm-started child re-solves skip the O(n.m)
    scan. *)

type kind = Continuous | Integer

type backend =
  | Revised  (** bounded-variable revised simplex ({!Lp}), warm-started *)
  | Dense
      (** dense tableau oracle ({!Lp_dense}); every node solves cold.
          Same branch-and-bound, so benches isolate the LP-core cost. *)

type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option
      (** Search truncated — by the node budget or by an LP-level
          [Iteration_limit]; carries the incumbent if one was found. *)

val solve :
  ?eps:float -> ?max_nodes:int -> ?gap:float -> ?backend:backend ->
  ?max_lp_iters:int -> Lp.problem -> kinds:kind array ->
  result
(** [eps] is the integrality tolerance (default 1e-6); [max_nodes] bounds
    the branch-and-bound tree (default 100_000); [gap] is the relative
    optimality gap below which branches are pruned (default 1e-6);
    [max_lp_iters] caps each relaxation's simplex iterations (solver
    default otherwise) — exceeding it truncates the search to
    [Node_limit] rather than raising. The root relaxation is rounded and
    re-solved to seed the incumbent, so pruning is effective from the
    first node. Maximisation, like {!Lp.solve}. Integer variables must
    have finite bounds or bounds implied by constraints; branching
    tightens variable bounds. *)
