(** Factorized basis of the revised simplex: an explicitly maintained
    [B^-1], updated in product form at every pivot and rebuilt from the
    basic columns (Gauss-Jordan with partial pivoting) when the update
    count crosses the refactorization threshold, so rounding drift cannot
    accumulate across a long pivot sequence. *)

type t

val create : ?refactor_every:int -> int -> t
(** [create m] starts as the identity (the all-slack basis) on an [m]-row
    system. [refactor_every] bounds the number of product-form updates
    between refactorizations (default 64). *)

val dim : t -> int

val reset : t -> unit
(** Back to the all-slack identity with a zero update count. Lets a
    workspace reuse one factorization across a whole branch-and-bound
    tree: cold starts reset, warm starts skip it because {!restore}
    overwrites the inverse wholesale. *)

val ftran : t -> float array -> float array
(** [ftran t a] is [B^-1 a] (forward transformation: entering column,
    basic values). *)

val ftran_into : t -> float array -> float array -> unit
(** [ftran_into t a dst] writes [B^-1 a] into [dst] — the allocation-free
    {!ftran} for the solver's per-solve hot path. [dst] must not alias
    [a] or the inverse. *)

val btran : t -> float array -> float array
(** [btran t c] is [c^T B^-1] (backward transformation: pricing vector). *)

val btran_into : t -> float array -> float array -> unit
(** [btran_into t c dst] writes [c^T B^-1] into [dst]; same aliasing rule
    as {!ftran_into}. *)

val row : t -> int -> float array
(** [row t r] is [e_r^T B^-1], the row of the inverse the dual simplex
    prices with. Returns the live row — read-only, and invalidated by the
    next {!pivot}/{!refactor}/{!restore} on [t]. *)

val pivot : t -> row:int -> w:float array -> unit
(** Product-form update replacing the basic variable of [row] by the
    column whose ftran is [w]. [w.(row)] is the pivot element; the caller
    guarantees it is bounded away from zero. *)

val updates_since_refactor : t -> int

val needs_refactor : t -> bool
(** True once [refactor_every] product-form updates have accumulated. *)

val refactor : t -> col:(int -> float array) -> order:int array -> bool
(** Rebuild [B^-1] from scratch by inverting the matrix whose [i]-th
    column is [col order.(i)]. Returns [false] (leaving the factorization
    unusable) if the basis matrix is numerically singular; callers must
    then fall back to a cold start. Bumps the
    [solver.simplex.refactorizations] counter. *)

val export : t -> float array array
(** Deep copy of the current [B^-1], for embedding in a basis snapshot.
    Installing it back with {!restore} costs O(m^2) instead of the O(m^3)
    {!refactor} — the payoff that makes warm-started branch-and-bound
    re-solves cheap. *)

val restore : t -> float array array -> updates:int -> unit
(** Overwrite [B^-1] with an {!export}ed copy and set the update counter
    (so drift accumulated before the export still counts toward the next
    periodic refactorization). Only valid when the snapshot came from a
    basis of the same constraint matrix — the branch-and-bound contract,
    where children change bounds but never rows. *)
