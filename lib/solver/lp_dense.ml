(* The seed dense tableau simplex, preserved as the oracle the QCheck
   differential suite checks the revised solver against. One row per
   constraint plus one synthetic <= row per finite upper bound; phase 1
   over artificial variables, phase 2 over the real objective; Bland's
   rule throughout. *)

open Lp

let m_solves = Cim_obs.Metrics.counter "solver.lp_dense.solves"
let m_pivots = Cim_obs.Metrics.counter "solver.lp_dense.pivots"
let m_wall = Cim_obs.Metrics.counter "solver.lp_dense.wall_seconds"

exception Iter_limit

let solve_raw ~eps ~max_iters (p : problem) =
  Cim_obs.Metrics.incr m_solves;
  let n = p.n_vars in
  (* Shift variables to zero lower bound; fold finite upper bounds into
     extra <= rows. *)
  let shift = p.lower in
  let base_rows =
    List.map
      (fun (coeffs, op, rhs) ->
        let adj = ref rhs in
        Array.iteri (fun j c -> adj := !adj -. (c *. shift.(j))) coeffs;
        (Array.copy coeffs, op, !adj))
      p.rows
  in
  let bound_rows =
    List.concat
      (List.init n (fun j ->
           if Float.is_finite p.upper.(j) then begin
             let coeffs = Array.make n 0. in
             coeffs.(j) <- 1.;
             [ (coeffs, Le, p.upper.(j) -. shift.(j)) ]
           end
           else []))
  in
  let rows = Array.of_list (base_rows @ bound_rows) in
  let m = Array.length rows in
  (* Normalise RHS to be non-negative. *)
  let rows =
    Array.map
      (fun (coeffs, op, rhs) ->
        if rhs < 0. then
          ( Array.map (fun c -> -.c) coeffs,
            (match op with Le -> Ge | Ge -> Le | Eq -> Eq),
            -.rhs )
        else (coeffs, op, rhs))
      rows
  in
  (* Count slack and artificial columns. *)
  let n_slack = ref 0 and n_art = ref 0 in
  Array.iter
    (fun (_, op, _) ->
      match op with
      | Le -> incr n_slack
      | Ge -> incr n_slack; incr n_art
      | Eq -> incr n_art)
    rows;
  let total = n + !n_slack + !n_art in
  let t = Array.make_matrix (m + 1) (total + 1) 0. in
  let basis = Array.make m (-1) in
  let art_cols = ref [] in
  let slack_at = ref n and art_at = ref (n + !n_slack) in
  Array.iteri
    (fun i (coeffs, op, rhs) ->
      Array.blit coeffs 0 t.(i) 0 n;
      t.(i).(total) <- rhs;
      (match op with
      | Le ->
        t.(i).(!slack_at) <- 1.;
        basis.(i) <- !slack_at;
        incr slack_at
      | Ge ->
        t.(i).(!slack_at) <- -1.;
        incr slack_at;
        t.(i).(!art_at) <- 1.;
        basis.(i) <- !art_at;
        art_cols := !art_at :: !art_cols;
        incr art_at
      | Eq ->
        t.(i).(!art_at) <- 1.;
        basis.(i) <- !art_at;
        art_cols := !art_at :: !art_cols;
        incr art_at))
    rows;
  let is_artificial = Array.make total false in
  List.iter (fun c -> is_artificial.(c) <- true) !art_cols;
  let obj = m in
  (* One simplex run over the current objective row. [restrict] excludes
     columns (artificials in phase 2) from entering the basis.
     Returns false on unboundedness. *)
  let iterate restrict =
    let iters = ref 0 in
    let continue_ = ref true in
    let bounded = ref true in
    while !continue_ do
      incr iters;
      if !iters > max_iters then raise Iter_limit;
      (* Bland's rule: smallest-index column with negative reduced cost. *)
      let entering = ref (-1) in
      (try
         for j = 0 to total - 1 do
           if (not (restrict && is_artificial.(j))) && t.(obj).(j) < -.eps then begin
             entering := j;
             raise Exit
           end
         done
       with Exit -> ());
      if !entering < 0 then continue_ := false
      else begin
        let e = !entering in
        (* Smallest ratio; ties broken by smallest basis index (Bland). *)
        let leave = ref (-1) and best = ref infinity in
        for i = 0 to m - 1 do
          if t.(i).(e) > eps then begin
            let ratio = t.(i).(total) /. t.(i).(e) in
            if
              ratio < !best -. eps
              || (Float.abs (ratio -. !best) <= eps
                  && !leave >= 0
                  && basis.(i) < basis.(!leave))
            then begin
              best := ratio;
              leave := i
            end
          end
        done;
        if !leave < 0 then begin
          bounded := false;
          continue_ := false
        end
        else begin
          Cim_obs.Metrics.incr m_pivots;
          let l = !leave in
          let pivot = t.(l).(e) in
          for j = 0 to total do
            t.(l).(j) <- t.(l).(j) /. pivot
          done;
          for i = 0 to m do
            if i <> l && Float.abs t.(i).(e) > 0. then begin
              let f = t.(i).(e) in
              for j = 0 to total do
                t.(i).(j) <- t.(i).(j) -. (f *. t.(l).(j))
              done
            end
          done;
          basis.(l) <- e
        end
      end
    done;
    !bounded
  in
  let price_out () =
    (* Make the objective row consistent with the current basis. *)
    for i = 0 to m - 1 do
      let c = t.(obj).(basis.(i)) in
      if Float.abs c > 0. then
        for j = 0 to total do
          t.(obj).(j) <- t.(obj).(j) -. (c *. t.(i).(j))
        done
    done
  in
  (* Phase 1: minimise the sum of artificials, i.e. maximise -sum. *)
  let infeasible = ref false in
  if !n_art > 0 then begin
    for j = 0 to total do
      t.(obj).(j) <- 0.
    done;
    List.iter (fun c -> t.(obj).(c) <- 1.) !art_cols;
    price_out ();
    ignore (iterate false);
    (* t.(obj).(total) now holds -(sum of artificials). *)
    if Float.abs t.(obj).(total) > 1e-6 then infeasible := true
    else
      (* Pivot any artificial still in the basis out (degenerate rows). *)
      for i = 0 to m - 1 do
        if is_artificial.(basis.(i)) then begin
          let found = ref (-1) in
          (try
             for j = 0 to total - 1 do
               if (not is_artificial.(j)) && Float.abs t.(i).(j) > eps then begin
                 found := j;
                 raise Exit
               end
             done
           with Exit -> ());
          match !found with
          | -1 -> () (* all-zero row: redundant constraint, harmless *)
          | e ->
            let pivot = t.(i).(e) in
            for j = 0 to total do
              t.(i).(j) <- t.(i).(j) /. pivot
            done;
            for i' = 0 to m do
              if i' <> i && Float.abs t.(i').(e) > 0. then begin
                let f = t.(i').(e) in
                for j = 0 to total do
                  t.(i').(j) <- t.(i').(j) -. (f *. t.(i).(j))
                done
              end
            done;
            basis.(i) <- e
        end
      done
  end;
  if !infeasible then Infeasible
  else begin
    (* Phase 2: real objective (maximise c.x -> row holds -c priced out). *)
    for j = 0 to total do
      t.(obj).(j) <- 0.
    done;
    for j = 0 to n - 1 do
      t.(obj).(j) <- -.p.maximize.(j)
    done;
    price_out ();
    if not (iterate true) then Unbounded
    else begin
      let values = Array.make n 0. in
      for i = 0 to m - 1 do
        if basis.(i) < n then values.(basis.(i)) <- t.(i).(total)
      done;
      let values = Array.mapi (fun j v -> v +. shift.(j)) values in
      let objective =
        Array.to_list (Array.mapi (fun j c -> c *. values.(j)) p.maximize)
        |> List.fold_left ( +. ) 0.
      in
      Optimal { values; objective }
    end
  end

let solve ?(eps = 1e-9) ?(max_iters = 20_000) ?(validate = false) p =
  if validate then check p;
  let timed = Cim_obs.Metrics.enabled () in
  let t0 = if timed then Unix.gettimeofday () else 0. in
  let r = try solve_raw ~eps ~max_iters p with Iter_limit -> Iteration_limit in
  if timed then
    Cim_obs.Metrics.incr m_wall ~by:(Unix.gettimeofday () -. t0);
  r
