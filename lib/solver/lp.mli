(** Bounded-variable revised simplex for small linear programs.

    Problems are stated as: maximise [c . x] subject to row constraints and
    per-variable bounds. Lower bounds must be finite (every CMSwitch model
    has natural 0 lower bounds); upper bounds may be [infinity].

    Unlike the dense tableau solver this replaces (kept as {!Lp_dense} to
    serve as a differential oracle), variable bounds are handled implicitly
    through nonbasic-at-lower/at-upper statuses — no synthetic bound rows —
    so the working basis stays at one row per constraint. The basis inverse
    is maintained in product form and refactorized periodically
    ({!Basis}); pricing is Dantzig with an automatic Bland fallback once a
    degeneracy-cycle threshold is hit. Feasibility is reached by a
    zero-objective dual simplex from the all-slack basis, which is the same
    machinery that makes warm starts cheap: {!solve} with [?warm] installs
    a caller-provided basis snapshot and repairs the (typically one-bound)
    primal infeasibility with a handful of dual pivots instead of
    re-solving from scratch. *)

type op = Le | Ge | Eq

type problem = {
  n_vars : int;
  maximize : float array;                       (** length n_vars *)
  rows : (float array * op * float) list;       (** coeffs, op, rhs *)
  lower : float array;
  upper : float array;
}

type solution = { values : float array; objective : float }

type result =
  | Optimal of solution
  | Infeasible
  | Unbounded
  | Iteration_limit
      (** The pivot budget ran out (or the factorization broke down) before
          optimality was proved. Callers degrade — the {!Milp} search
          truncates to its incumbent and the compiler's ladder falls back
          to the greedy allocator — instead of crashing the compile. *)

type vstat = Basic | Nonbasic_lower | Nonbasic_upper

type basis
(** Snapshot of an optimal basis: the status of every column (structural
    and slack), the basic column of every row, and the factorized inverse
    at snapshot time. Valid as a warm start ONLY for a problem with the
    same constraint rows (bounds and objective may differ) — exactly the
    branch-and-bound child shape, where the parent basis stays
    dual-feasible because a branch only tightens one bound. The shared
    matrix is what lets the install reuse the snapshot's [B^-1] (an
    O(m^2) copy) instead of refactorizing (O(m^3)); a snapshot from a
    same-shaped but different matrix is not detected and yields garbage. *)

val basis_status : basis -> int -> vstat
(** Status of structural variable [j] in the snapshot. *)

exception Ill_formed of string

val check : problem -> unit
(** O(n.m) structural validation: dimension agreement, finite lower
    bounds, finite coefficients. Raises {!Ill_formed}. Opt-in via
    [?validate] — call sites validate once at the root of a
    branch-and-bound search, not on every warm-started re-solve. *)

val solve :
  ?eps:float -> ?max_iters:int -> ?validate:bool -> ?warm:basis ->
  problem -> result
(** [eps] is the optimality tolerance (default 1e-9); primal feasibility
    is tested relative to bound magnitude. [max_iters] bounds total simplex
    iterations (default 20_000). [validate] (default [false]) runs
    {!check} first. [warm] starts from a basis snapshot (see {!basis});
    a snapshot that does not fit the problem shape is rejected and the
    solve falls back to a cold start. *)

val solve_info :
  ?eps:float -> ?max_iters:int -> ?validate:bool -> ?warm:basis ->
  problem -> result * basis option
(** Like {!solve}, additionally returning the optimal basis snapshot on
    [Optimal] (and [None] otherwise). *)

type prepared
(** The bound-independent computational form of a problem: negated/scaled
    rows, objective, slack kinds. Branch-and-bound re-solves the same rows
    under dozens of bound boxes; preparing once amortises the O(n.m)
    conversion over the whole tree. A [prepared] value also carries the
    solver's reusable scratch (bounds, statuses, the factorized inverse),
    allocated lazily on first solve — so use one [prepared] value per
    domain and do not interleave solves on the same value. *)

val prepare : problem -> prepared

val solve_prepared :
  ?eps:float -> ?max_iters:int -> ?warm:basis ->
  prepared -> lower:float array -> upper:float array ->
  result * (unit -> basis) option
(** Like {!solve_info} over a prepared form with substituted variable
    bounds (lengths as in the original problem); no validation pass. The
    basis snapshot comes back as a thunk so callers that do not branch
    (pruned nodes, integral leaves, heuristic probes) never pay the
    O(m^2) export — but it reads the live workspace, so it must be forced
    before the next solve on the same [prepared] value. *)

val reduced_costs : prepared -> basis -> float array
(** Reduced cost of each structural variable at the snapshotted basis
    (0 for basic variables), priced from the snapshot's own inverse.
    Off the re-solve hot path on purpose: only the root of a
    branch-and-bound search consumes reduced costs (for bound
    tightening), so they are not computed on every [Optimal] return. *)
