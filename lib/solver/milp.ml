type kind = Continuous | Integer

type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option

let m_nodes = Cim_obs.Metrics.counter "solver.bb.nodes"
let m_pruned = Cim_obs.Metrics.counter "solver.bb.pruned"
let m_infeasible = Cim_obs.Metrics.counter "solver.bb.infeasible_nodes"
let m_incumbents = Cim_obs.Metrics.counter "solver.bb.incumbents"
let m_truncated = Cim_obs.Metrics.counter "solver.bb.truncated_solves"

(* Most-fractional branching: pick the integer variable whose relaxation
   value is farthest from an integer. *)
let most_fractional ~eps kinds (values : float array) =
  let best = ref (-1) and best_frac = ref eps in
  Array.iteri
    (fun j k ->
      match k with
      | Continuous -> ()
      | Integer ->
        let v = values.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := j;
          best_frac := frac
        end)
    kinds;
  if !best < 0 then None else Some !best

let round_integral ~eps kinds (sol : Lp.solution) =
  let values =
    Array.mapi
      (fun j v ->
        match kinds.(j) with
        | Continuous -> v
        | Integer ->
          let r = Float.round v in
          if Float.abs (v -. r) <= eps then r else v)
      sol.Lp.values
  in
  { sol with Lp.values = values }

(* Root heuristic: pin every integer variable to a rounding of its
   relaxation value and re-solve the LP over the continuous remainder. A
   feasible result seeds the incumbent so pruning bites immediately. Three
   rounding policies are tried because different constraint systems tolerate
   different directions (e.g. capacity rows favour floor, covering rows
   favour ceil). *)
let rounding_incumbent ~kinds (p : Lp.problem) (root : Lp.solution) =
  let attempt round =
    let lower = Array.copy p.Lp.lower and upper = Array.copy p.Lp.upper in
    Array.iteri
      (fun j k ->
        if k = Integer then begin
          let v = round root.Lp.values.(j) in
          let v = Float.max p.Lp.lower.(j) (Float.min p.Lp.upper.(j) v) in
          lower.(j) <- v;
          upper.(j) <- v
        end)
      kinds;
    match Lp.solve { p with Lp.lower; upper } with
    | Lp.Optimal s -> Some s
    | Lp.Infeasible | Lp.Unbounded -> None
  in
  List.fold_left
    (fun best round ->
      match attempt round with
      | None -> best
      | Some s -> begin
        match best with
        | Some (b : Lp.solution) when b.Lp.objective >= s.Lp.objective -> best
        | Some _ | None -> Some s
      end)
    None
    [ Float.round; Float.floor; Float.ceil ]

let solve ?(eps = 1e-6) ?(max_nodes = 100_000) ?(gap = 1e-6) (p : Lp.problem) ~kinds =
  if Array.length kinds <> p.Lp.n_vars then
    raise (Lp.Ill_formed "Milp.solve: kinds length mismatch");
  let incumbent = ref None in
  let better (s : Lp.solution) =
    match !incumbent with
    | None -> true
    | Some (i : Lp.solution) -> s.Lp.objective > i.Lp.objective +. 1e-12
  in
  let nodes = ref 0 in
  let truncated = ref false in
  let root_unbounded = ref false in
  (* DFS stack of (lower, upper) bound pairs. Depth-first keeps memory flat
     and finds integral incumbents fast for these models. *)
  let stack = Stack.create () in
  Stack.push (p.Lp.lower, p.Lp.upper) stack;
  while (not (Stack.is_empty stack)) && not !truncated do
    let lower, upper = Stack.pop stack in
    incr nodes;
    if !nodes > max_nodes then truncated := true
    else begin
      Cim_obs.Metrics.incr m_nodes;
      let sub = { p with Lp.lower; upper } in
      match Lp.solve sub with
      | Lp.Infeasible -> Cim_obs.Metrics.incr m_infeasible
      | Lp.Unbounded ->
        (* Unbounded relaxation at the root means the MILP is unbounded or
           needs bounds we cannot infer; surface it. *)
        if !nodes = 1 then root_unbounded := true
      | Lp.Optimal sol ->
        if !nodes = 1 then begin
          (* seed the incumbent from the root relaxation by rounding *)
          match rounding_incumbent ~kinds p sol with
          | Some s when better s ->
            Cim_obs.Metrics.incr m_incumbents;
            incumbent := Some (round_integral ~eps kinds s)
          | Some _ | None -> ()
        end;
        let prune =
          match !incumbent with
          | Some (i : Lp.solution) ->
            (* relative optimality gap: bound the wasted search for
               negligible improvements *)
            sol.Lp.objective
            <= i.Lp.objective +. 1e-9 +. (gap *. Float.abs i.Lp.objective)
          | None -> false
        in
        if prune then Cim_obs.Metrics.incr m_pruned
        else begin
          match most_fractional ~eps kinds sol.Lp.values with
          | None ->
            let sol = round_integral ~eps kinds sol in
            if better sol then begin
              Cim_obs.Metrics.incr m_incumbents;
              incumbent := Some sol
            end
          | Some j ->
            let v = sol.Lp.values.(j) in
            let floor_v = Float.of_int (int_of_float (Float.floor v)) in
            (* Branches whose tightened bound crosses the opposite bound are
               empty (the relaxation value sat on a bound within tolerance)
               and are skipped rather than pushed. Explore the side nearer
               the relaxation value first. *)
            let lo_branch =
              let ub' = Float.min upper.(j) floor_v in
              if ub' < lower.(j) then None
              else begin
                let upper' = Array.copy upper in
                upper'.(j) <- ub';
                Some (Array.copy lower, upper')
              end
            in
            let hi_branch =
              let lb' = Float.max lower.(j) (floor_v +. 1.) in
              if lb' > upper.(j) then None
              else begin
                let lower' = Array.copy lower in
                lower'.(j) <- lb';
                Some (lower', Array.copy upper)
              end
            in
            let push = Option.iter (fun b -> Stack.push b stack) in
            if v -. floor_v > 0.5 then begin
              push lo_branch;
              push hi_branch
            end
            else begin
              push hi_branch;
              push lo_branch
            end
        end
    end
  done;
  if !root_unbounded then Unbounded
  else if !truncated then begin
    Cim_obs.Metrics.incr m_truncated;
    Node_limit !incumbent
  end
  else
    match !incumbent with None -> Infeasible | Some s -> Optimal s
