type kind = Continuous | Integer
type backend = Revised | Dense

type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option

let m_nodes = Cim_obs.Metrics.counter "solver.bb.nodes"
let m_pruned = Cim_obs.Metrics.counter "solver.bb.pruned"
let m_infeasible = Cim_obs.Metrics.counter "solver.bb.infeasible_nodes"
let m_incumbents = Cim_obs.Metrics.counter "solver.bb.incumbents"
let m_truncated = Cim_obs.Metrics.counter "solver.bb.truncated_solves"
let m_warm_hits = Cim_obs.Metrics.counter "solver.bb.warm_hits"
let m_rc_tightened = Cim_obs.Metrics.counter "solver.bb.rc_tightened"
let m_lp_limits = Cim_obs.Metrics.counter "solver.bb.lp_iteration_limits"
let m_bound_skips = Cim_obs.Metrics.counter "solver.bb.bound_skips"

(* Most-fractional branching: pick the integer variable whose relaxation
   value is farthest from an integer. *)
let most_fractional ~eps kinds (values : float array) =
  let best = ref (-1) and best_frac = ref eps in
  Array.iteri
    (fun j k ->
      match k with
      | Continuous -> ()
      | Integer ->
        let v = values.(j) in
        let frac = Float.abs (v -. Float.round v) in
        if frac > !best_frac then begin
          best := j;
          best_frac := frac
        end)
    kinds;
  if !best < 0 then None else Some !best

let round_integral ~eps kinds (sol : Lp.solution) =
  let values =
    Array.mapi
      (fun j v ->
        match kinds.(j) with
        | Continuous -> v
        | Integer ->
          let r = Float.round v in
          if Float.abs (v -. r) <= eps then r else v)
      sol.Lp.values
  in
  { sol with Lp.values = values }

(* Root heuristic: pin every integer variable to a rounding of its
   relaxation value and re-solve the LP over the continuous remainder. A
   feasible result seeds the incumbent so pruning bites immediately. Three
   rounding policies are tried because different constraint systems tolerate
   different directions (e.g. capacity rows favour floor, covering rows
   favour ceil). Pinning only moves bounds, so the root basis stays
   dual-feasible and each attempt warm-starts from it. *)
let rounding_incumbent ~relax ~kinds ?warm (p : Lp.problem)
    (root : Lp.solution) =
  let pinned round =
    let lower = Array.copy p.Lp.lower and upper = Array.copy p.Lp.upper in
    Array.iteri
      (fun j k ->
        if k = Integer then begin
          let v = round root.Lp.values.(j) in
          let v = Float.max p.Lp.lower.(j) (Float.min p.Lp.upper.(j) v) in
          lower.(j) <- v;
          upper.(j) <- v
        end)
      kinds;
    (lower, upper)
  in
  (* per component round = floor or ceil, so policies often pin the same
     box (always, when the relaxation is near-integral): dedupe before
     paying for an LP solve per policy *)
  let boxes =
    List.fold_left
      (fun acc round ->
        let (lower, _) as box = pinned round in
        if
          List.exists
            (fun (l, _) -> Array.for_all2 Float.equal l lower)
            acc
        then acc
        else box :: acc)
      []
      [ Float.round; Float.floor; Float.ceil ]
  in
  List.fold_left
    (fun best box ->
      match fst (relax ?warm box) with
      | Lp.Infeasible | Lp.Unbounded | Lp.Iteration_limit -> best
      | Lp.Optimal s -> begin
        match best with
        | Some (b : Lp.solution) when b.Lp.objective >= s.Lp.objective -> best
        | Some _ | None -> Some s
      end)
    None (List.rev boxes)

(* Reduced-cost bound tightening at the root. At the root optimum z_r with
   reduced cost d_j on a nonbasic structural variable, moving x_j a distance
   t off its bound costs |d_j| * t of objective, so any solution better than
   the incumbent z_i keeps x_j within (z_r - z_i) / |d_j| of that bound.
   Tightened boxes shrink every subtree below the root at once. Only
   solutions *strictly better* than the incumbent survive the tightening,
   which is all branch-and-bound needs: anything else is gap-pruned. *)
let rc_tighten ~kinds ~basis ~reduced ~root_obj ~incumbent_obj lower upper =
  let slack = root_obj -. incumbent_obj in
  if slack < 0. then ()
  else
    Array.iteri
      (fun j d ->
        let integral = kinds.(j) = Integer in
        if Float.abs d > 1e-7 then
          match Lp.basis_status basis j with
          | Lp.Basic -> ()
          | Lp.Nonbasic_lower when d < 0. ->
            let span = slack /. -.d in
            let span = if integral then Float.floor (span +. 1e-9) else span in
            let ub' = lower.(j) +. span in
            if ub' < upper.(j) -. 1e-12 then begin
              upper.(j) <- ub';
              Cim_obs.Metrics.incr m_rc_tightened
            end
          | Lp.Nonbasic_upper when d > 0. ->
            let span = slack /. d in
            let span = if integral then Float.floor (span +. 1e-9) else span in
            let lb' = upper.(j) -. span in
            if lb' > lower.(j) +. 1e-12 then begin
              lower.(j) <- lb';
              Cim_obs.Metrics.incr m_rc_tightened
            end
          | Lp.Nonbasic_lower | Lp.Nonbasic_upper -> ())
      reduced

let solve ?(eps = 1e-6) ?(max_nodes = 100_000) ?(gap = 1e-6)
    ?(backend = Revised) ?max_lp_iters (p : Lp.problem) ~kinds =
  if Array.length kinds <> p.Lp.n_vars then
    raise (Lp.Ill_formed "Milp.solve: kinds length mismatch");
  (* validate once at the root; every node re-solve below skips the scan *)
  Lp.check p;
  (* the rows never change down the tree — convert to computational form
     once and re-solve under each node's bound box *)
  let prep = match backend with Revised -> Some (Lp.prepare p) | Dense -> None in
  let relax ?warm (lower, upper) =
    match prep with
    | Some q -> Lp.solve_prepared ?max_iters:max_lp_iters ?warm q ~lower ~upper
    | None ->
      (Lp_dense.solve ?max_iters:max_lp_iters { p with Lp.lower; upper }, None)
  in
  let incumbent = ref None in
  let better (s : Lp.solution) =
    match !incumbent with
    | None -> true
    | Some (i : Lp.solution) -> s.Lp.objective > i.Lp.objective +. 1e-12
  in
  let nodes = ref 0 in
  let truncated = ref false in
  let root_unbounded = ref false in
  let root_infeasible = ref false in
  (* DFS stack of (lower, upper, parent basis, parent LP bound).
     Depth-first keeps memory flat and finds integral incumbents fast for
     these models; a branch only tightens one bound of the parent box, so
     the parent's optimal basis is dual-feasible for the child and seeds
     its warm start. The parent's LP objective bounds every solution in
     the child's subtree, so a node whose recorded bound has fallen inside
     the incumbent's gap by pop time is discarded without paying for its
     LP solve at all. *)
  let threshold () =
    match !incumbent with
    | Some (i : Lp.solution) ->
      i.Lp.objective +. 1e-9 +. (gap *. Float.abs i.Lp.objective)
    | None -> neg_infinity
  in
  let stack = Stack.create () in
  Stack.push (p.Lp.lower, p.Lp.upper, None, infinity) stack;
  while (not (Stack.is_empty stack)) && not !truncated do
    let lower, upper, warm, parent_bound = Stack.pop stack in
    incr nodes;
    if !nodes > max_nodes then truncated := true
    else begin
      Cim_obs.Metrics.incr m_nodes;
      if parent_bound <= threshold () then begin
        Cim_obs.Metrics.incr m_pruned;
        Cim_obs.Metrics.incr m_bound_skips
      end
      else begin
      if Option.is_some warm then Cim_obs.Metrics.incr m_warm_hits;
      match relax ?warm (lower, upper) with
      | Lp.Iteration_limit, _ ->
        (* degrade, don't crash: truncate to the incumbent so the caller's
           ladder (Alloc -> Degrade) falls back to the greedy allocator *)
        Cim_obs.Metrics.incr m_lp_limits;
        truncated := true
      | Lp.Infeasible, _ ->
        Cim_obs.Metrics.incr m_infeasible;
        if !nodes = 1 then root_infeasible := true
      | Lp.Unbounded, _ ->
        (* Unbounded relaxation at the root means the MILP is unbounded or
           needs bounds we cannot infer; surface it. *)
        if !nodes = 1 then root_unbounded := true
      | Lp.Optimal sol, snap ->
        let frac = most_fractional ~eps kinds sol.Lp.values in
        (* relative optimality gap: bound the wasted search for negligible
           improvements (re-checked below at the root, where the rounding
           heuristic may have just seeded the incumbent) *)
        if sol.Lp.objective <= threshold () then Cim_obs.Metrics.incr m_pruned
        else begin
          match frac with
          | None ->
            let sol = round_integral ~eps kinds sol in
            if better sol then begin
              Cim_obs.Metrics.incr m_incumbents;
              incumbent := Some sol
            end
          | Some j ->
            (* something will consume the basis from here on (rounding
               warm starts, root tightening, child warm starts): force
               the deferred snapshot before any re-solve overwrites the
               solver scratch *)
            let basis = Option.map (fun f -> f ()) snap in
            let lower, upper =
              if !nodes > 1 then (lower, upper)
              else begin
                (* seed the incumbent from the root relaxation by rounding *)
                (match rounding_incumbent ~relax ~kinds ?warm:basis p sol with
                | Some s when better s ->
                  Cim_obs.Metrics.incr m_incumbents;
                  incumbent := Some (round_integral ~eps kinds s)
                | Some _ | None -> ());
                (* shrink the root box with reduced costs before branching *)
                match (prep, basis, !incumbent) with
                | Some q, Some b, Some (i : Lp.solution) ->
                  let reduced = Lp.reduced_costs q b in
                  let lower = Array.copy lower and upper = Array.copy upper in
                  rc_tighten ~kinds ~basis:b ~reduced
                    ~root_obj:sol.Lp.objective ~incumbent_obj:i.Lp.objective
                    lower upper;
                  (lower, upper)
                | _ -> (lower, upper)
              end
            in
            if sol.Lp.objective <= threshold () then
              Cim_obs.Metrics.incr m_pruned
            else begin
            let v = sol.Lp.values.(j) in
            let floor_v = Float.floor v in
            let child_warm = basis in
            (* Branches whose tightened bound crosses the opposite bound are
               empty (the relaxation value sat on a bound within tolerance)
               and are skipped rather than pushed. Explore the side nearer
               the relaxation value first. *)
            let lo_branch =
              let ub' = Float.min upper.(j) floor_v in
              if ub' < lower.(j) then None
              else begin
                let upper' = Array.copy upper in
                upper'.(j) <- ub';
                Some (Array.copy lower, upper', child_warm, sol.Lp.objective)
              end
            in
            let hi_branch =
              let lb' = Float.max lower.(j) (floor_v +. 1.) in
              if lb' > upper.(j) then None
              else begin
                let lower' = Array.copy lower in
                lower'.(j) <- lb';
                Some (lower', Array.copy upper, child_warm, sol.Lp.objective)
              end
            in
            let push = Option.iter (fun b -> Stack.push b stack) in
            if v -. floor_v > 0.5 then begin
              push lo_branch;
              push hi_branch
            end
            else begin
              push hi_branch;
              push lo_branch
            end
            end
        end
      end
    end
  done;
  if !root_unbounded then Unbounded
  else if !truncated then begin
    Cim_obs.Metrics.incr m_truncated;
    Node_limit !incumbent
  end
  else if !root_infeasible then Infeasible
  else
    match !incumbent with None -> Infeasible | Some s -> Optimal s
