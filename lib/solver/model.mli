(** Gurobi-style model-building facade over {!Lp}/{!Milp}: named variables,
    linear expressions, incremental constraints. *)

type t
type var

type expr = (float * var) list
(** Linear combination; a constant term is passed separately. *)

val create : ?name:string -> unit -> t

val add_var :
  t -> ?lb:float -> ?ub:float -> ?integer:bool -> string -> var
(** Default bounds [0, infinity), continuous. *)

val var_name : var -> string

val add_le : t -> ?name:string -> expr -> float -> unit
(** [expr <= rhs]. *)

val add_ge : t -> ?name:string -> expr -> float -> unit
val add_eq : t -> ?name:string -> expr -> float -> unit

val maximize : t -> expr -> unit
val minimize : t -> expr -> unit

type outcome =
  | Optimal of float  (** objective value, in the user's sense (min or max) *)
  | Infeasible
  | Unbounded
  | Truncated of float option
      (** node or iteration budget exhausted; carries the incumbent
          objective when an integral solution was found in time *)

val solve : ?max_nodes:int -> ?gap:float -> ?backend:Milp.backend -> t -> outcome
(** [backend] (default [Milp.Revised]) picks the LP core: the
    bounded-variable revised simplex with warm-started branch-and-bound
    re-solves, or the dense tableau oracle ({!Lp_dense}) for differential
    testing and benchmarking. Pure-LP models (no integer variable) are
    validated and solved directly. *)

val to_problem : t -> Lp.problem * Milp.kind array
(** The assembled computational form: dense objective/rows (minimisation
    is negated into maximisation) plus the per-variable integrality kinds,
    in variable-creation order. Exposed so differential tests and solver
    benchmarks can replay the exact segment MILPs against both backends. *)

val value : t -> var -> float
(** Value in the last [Optimal]/[Truncated-with-incumbent] solution.
    Raises [Failure] when no solution is stored. *)

val int_value : t -> var -> int
(** Rounded [value]; the variable must be integer. *)

val n_vars : t -> int
val n_constraints : t -> int

val pp_stats : Format.formatter -> t -> unit
