type op = Le | Ge | Eq

type problem = {
  n_vars : int;
  maximize : float array;
  rows : (float array * op * float) list;
  lower : float array;
  upper : float array;
}

type solution = { values : float array; objective : float }
type result = Optimal of solution | Infeasible | Unbounded | Iteration_limit

type vstat = Basic | Nonbasic_lower | Nonbasic_upper

type basis = {
  b_rows : int;
  b_cols : int;
  b_stat : vstat array;
  b_order : int array;
  b_binv : float array array;
      (* B^-1 at snapshot time. A branch-and-bound child has the same
         constraint matrix (only bounds move), so installing the copy is
         O(m^2) where refactorizing would be O(m^3). *)
  b_updates : int;
      (* product-form updates accumulated when the snapshot was taken;
         carried so drift along a warm-start chain still triggers the
         periodic refactorization *)
}


exception Ill_formed of string

let ill fmt = Printf.ksprintf (fun s -> raise (Ill_formed s)) fmt

(* registered once; recording is a no-op unless Cim_obs.Metrics is enabled *)
let m_solves = Cim_obs.Metrics.counter "solver.lp.solves"
let m_wall = Cim_obs.Metrics.counter "solver.lp.wall_seconds"
let m_pivots = Cim_obs.Metrics.counter "solver.simplex.pivots"
let m_dual_pivots = Cim_obs.Metrics.counter "solver.simplex.dual_pivots"
let m_flips = Cim_obs.Metrics.counter "solver.simplex.bound_flips"
let m_bland = Cim_obs.Metrics.counter "solver.simplex.bland_fallbacks"
let m_warm_used = Cim_obs.Metrics.counter "solver.lp.warm_starts"
let m_warm_rejected = Cim_obs.Metrics.counter "solver.lp.warm_rejects"

let check p =
  if p.n_vars <= 0 then ill "no variables";
  if Array.length p.maximize <> p.n_vars then ill "objective length mismatch";
  if Array.length p.lower <> p.n_vars || Array.length p.upper <> p.n_vars then
    ill "bounds length mismatch";
  Array.iteri
    (fun i l ->
      if not (Float.is_finite l) then ill "variable %d has non-finite lower bound" i;
      if p.upper.(i) < l then ill "variable %d has upper < lower" i)
    p.lower;
  List.iteri
    (fun r (coeffs, _, rhs) ->
      if Array.length coeffs <> p.n_vars then ill "row %d length mismatch" r;
      if not (Float.is_finite rhs) then ill "row %d has non-finite rhs" r;
      Array.iteri
        (fun j c -> if not (Float.is_finite c) then ill "row %d col %d non-finite" r j)
        coeffs)
    p.rows

(* ---- solver state ------------------------------------------------------- *)

(* Computational form: every row becomes an equality [a.x + s = b] with one
   slack column per row (Ge rows are negated to Le first, so inequality
   slacks live in [0, inf) and Eq slacks are fixed at [0, 0]). Rows are
   equilibrated by their largest structural coefficient — the allocation
   MILPs mix MAC counts around 1e9 with per-array rates around 1e2, and the
   scaling is what keeps the factorization honest across that spread.
   Scaling changes neither the feasible set nor the reduced costs. *)
(* The bound-independent part of the computational form: scaled columns,
   rhs, objective, Eq-row marks. A branch-and-bound search solves the same
   rows dozens of times under different bounds; preparing once amortises
   the O(n.m) negation/equilibration pass over the whole tree. *)
(* Reusable solver scratch: bounds, statuses and the factorized basis for
   one solve. A branch-and-bound tree re-solves the same prepared form
   hundreds of times strictly sequentially, so the arrays (including the
   m x m inverse) are allocated once per tree instead of once per solve.
   Basis snapshots deep-copy out of here ({!snapshot}), so reuse cannot
   corrupt a parent basis held by the search stack. *)
type ws = {
  w_lb : float array;          (* ncols; slack lower bounds stay 0 *)
  w_ub : float array;
  w_stat : vstat array;
  w_order : int array;
  w_xb : float array;
  w_rhs : float array;         (* m scratch: compute_xb right-hand side *)
  w_cb : float array;          (* m scratch: basic objective coefficients *)
  w_y : float array;           (* m scratch: pricing vector *)
  w_fact : Basis.t;
}

type prepared = {
  q_n : int;
  q_m : int;
  q_acol : float array array;  (* structural columns, scaled, length m each *)
  q_b : float array;           (* scaled rhs *)
  q_eq : bool array;           (* row slack fixed at [0, 0] *)
  q_c : float array;           (* objective over all columns; slacks 0 *)
  mutable q_ws : ws option;    (* lazily built; makes [prepared] single-domain *)
}

let prepare (p : problem) =
  let n = p.n_vars in
  let rows = Array.of_list p.rows in
  let m = Array.length rows in
  let acol = Array.init n (fun _ -> Array.make m 0.) in
  let b = Array.make m 0. in
  let eq = Array.make m false in
  let c = Array.make (n + m) 0. in
  Array.blit p.maximize 0 c 0 (min n (Array.length p.maximize));
  Array.iteri
    (fun i (coeffs, op, rhs) ->
      let sgn = match op with Ge -> -1. | Le | Eq -> 1. in
      let scale = ref 0. in
      Array.iter
        (fun v ->
          let a = Float.abs v in
          if a > !scale then scale := a)
        coeffs;
      let s = if !scale > 0. then !scale else 1. in
      for j = 0 to min n (Array.length coeffs) - 1 do
        acol.(j).(i) <- sgn *. coeffs.(j) /. s
      done;
      b.(i) <- sgn *. rhs /. s;
      if op = Eq then eq.(i) <- true)
    rows;
  { q_n = n; q_m = m; q_acol = acol; q_b = b; q_eq = eq; q_c = c; q_ws = None }

type st = {
  n : int;                     (* structural columns *)
  m : int;                     (* rows = slack columns *)
  ncols : int;                 (* n + m *)
  acol : float array array;    (* shared with the prepared form, read-only *)
  lb : float array;            (* per column, length ncols *)
  ub : float array;
  c : float array;             (* shared, read-only; slacks 0 *)
  b : float array;             (* shared, read-only; scaled rhs *)
  stat : vstat array;
  order : int array;           (* basic column of each row *)
  xb : float array;            (* values of basic variables, by row *)
  rhs : float array;           (* scratch, length m *)
  cb : float array;            (* scratch, length m *)
  y : float array;             (* scratch, length m: pricing vector *)
  fact : Basis.t;
  eps : float;
  max_iters : int;
  mutable iters : int;
  mutable bland : bool;        (* Bland fallback armed (sticky per solve) *)
  mutable degen : int;         (* consecutive degenerate pivots *)
}

let get_ws q =
  match q.q_ws with
  | Some w -> w
  | None ->
    let ncols = q.q_n + q.q_m in
    let w =
      {
        w_lb = Array.make ncols 0.;
        w_ub = Array.make ncols infinity;
        w_stat = Array.make ncols Nonbasic_lower;
        w_order = Array.make q.q_m 0;
        w_xb = Array.make q.q_m 0.;
        w_rhs = Array.make q.q_m 0.;
        w_cb = Array.make q.q_m 0.;
        w_y = Array.make q.q_m 0.;
        w_fact = Basis.create q.q_m;
      }
    in
    q.q_ws <- Some w;
    w

(* Reinitializes the workspace to the all-slack start; does NOT reset the
   basis inverse — a cold start must [Basis.reset] it, a warm start
   overwrites it wholesale via [Basis.restore]. *)
let mk_state ~eps ~max_iters q ~lower ~upper =
  let n = q.q_n and m = q.q_m in
  let ncols = n + m in
  let w = get_ws q in
  let lb = w.w_lb and ub = w.w_ub and stat = w.w_stat and order = w.w_order in
  Array.blit lower 0 lb 0 n;
  Array.blit upper 0 ub 0 n;
  for i = 0 to m - 1 do
    ub.(n + i) <- (if q.q_eq.(i) then 0. else infinity)
  done;
  Array.fill stat 0 ncols Nonbasic_lower;
  for i = 0 to m - 1 do
    stat.(n + i) <- Basic;
    order.(i) <- n + i
  done;
  {
    n; m; ncols; acol = q.q_acol; lb; ub; c = q.q_c; b = q.q_b; stat; order;
    xb = w.w_xb;
    rhs = w.w_rhs;
    cb = w.w_cb;
    y = w.w_y;
    fact = w.w_fact;
    eps; max_iters; iters = 0; bland = false; degen = 0;
  }

let col_vec st j =
  if j < st.n then st.acol.(j)
  else begin
    let v = Array.make st.m 0. in
    v.(j - st.n) <- 1.;
    v
  end

let col_dot st (v : float array) j =
  if j < st.n then begin
    let a = st.acol.(j) in
    let acc = ref 0. in
    for i = 0 to st.m - 1 do
      acc := !acc +. (v.(i) *. a.(i))
    done;
    !acc
  end
  else v.(j - st.n)

let nb_val st j =
  match st.stat.(j) with
  | Nonbasic_lower -> st.lb.(j)
  | Nonbasic_upper -> st.ub.(j)
  | Basic -> assert false

let compute_xb st =
  let r = st.rhs in
  Array.blit st.b 0 r 0 st.m;
  for j = 0 to st.ncols - 1 do
    if st.stat.(j) <> Basic then begin
      let v = nb_val st j in
      if v <> 0. then
        if j < st.n then begin
          let a = st.acol.(j) in
          for i = 0 to st.m - 1 do
            r.(i) <- r.(i) -. (a.(i) *. v)
          done
        end
        else r.(j - st.n) <- r.(j - st.n) -. v
    end
  done;
  Basis.ftran_into st.fact r st.xb

let refactor st = Basis.refactor st.fact ~col:(col_vec st) ~order:st.order

let pricing_vector st =
  for i = 0 to st.m - 1 do
    st.cb.(i) <- st.c.(st.order.(i))
  done;
  Basis.btran_into st.fact st.cb st.y;
  st.y

(* primal feasibility is judged relative to bound magnitude *)
let ftol st bound = st.eps *. 1e2 *. (1. +. Float.abs bound)

let bland_after st = 100 + (2 * (st.m + st.n))

let note_degenerate st degenerate =
  if degenerate then begin
    st.degen <- st.degen + 1;
    if (not st.bland) && st.degen > bland_after st then begin
      st.bland <- true;
      Cim_obs.Metrics.incr m_bland
    end
  end
  else st.degen <- 0

type phase_res = R_done | R_unbounded | R_infeasible | R_iters

(* ---- primal simplex ------------------------------------------------------ *)

let primal st =
  let res = ref None in
  while !res = None do
    if st.iters >= st.max_iters then res := Some R_iters
    else begin
      st.iters <- st.iters + 1;
      let y = pricing_vector st in
      (* entering: Dantzig (largest improving reduced cost); Bland mode
         takes the smallest improving index instead *)
      let e = ref (-1) and best = ref st.eps in
      (try
         for j = 0 to st.ncols - 1 do
           if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
             let d = st.c.(j) -. col_dot st y j in
             let score =
               match st.stat.(j) with
               | Nonbasic_lower -> d
               | Nonbasic_upper -> -.d
               | Basic -> 0.
             in
             if score > !best then begin
               e := j;
               best := score;
               if st.bland then raise Exit
             end
           end
         done
       with Exit -> ());
      if !e < 0 then res := Some R_done
      else begin
        let e = !e in
        let w = Basis.ftran st.fact (col_vec st e) in
        let dir = match st.stat.(e) with Nonbasic_lower -> 1. | _ -> -1. in
        (* bounded ratio test: the entering variable's own span competes
           with every basic variable's blocking bound *)
        let tmin = ref (st.ub.(e) -. st.lb.(e)) and lrow = ref (-1) in
        for i = 0 to st.m - 1 do
          let wi = dir *. w.(i) in
          let bi = st.order.(i) in
          let t =
            if wi > st.eps then Float.max 0. ((st.xb.(i) -. st.lb.(bi)) /. wi)
            else if wi < -.st.eps && st.ub.(bi) < infinity then
              Float.max 0. ((st.xb.(i) -. st.ub.(bi)) /. wi)
            else infinity
          in
          if t < infinity then
            if
              t < !tmin -. 1e-12
              || (t <= !tmin +. 1e-12 && !lrow >= 0
                  &&
                  if st.bland then bi < st.order.(!lrow)
                  else Float.abs wi > Float.abs (dir *. w.(!lrow)))
            then begin
              tmin := t;
              lrow := i
            end
        done;
        if !tmin = infinity then res := Some R_unbounded
        else if !lrow < 0 then begin
          (* bound flip: cheaper than a pivot — no basis change at all *)
          Cim_obs.Metrics.incr m_flips;
          let t = !tmin in
          for i = 0 to st.m - 1 do
            st.xb.(i) <- st.xb.(i) -. (t *. dir *. w.(i))
          done;
          st.stat.(e) <-
            (match st.stat.(e) with
            | Nonbasic_lower -> Nonbasic_upper
            | _ -> Nonbasic_lower);
          note_degenerate st (t <= st.eps)
        end
        else begin
          Cim_obs.Metrics.incr m_pivots;
          let r = !lrow and t = !tmin in
          let enter_val = nb_val st e +. (dir *. t) in
          for i = 0 to st.m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (t *. dir *. w.(i))
          done;
          let leave = st.order.(r) in
          st.stat.(leave) <-
            (if dir *. w.(r) > 0. then Nonbasic_lower else Nonbasic_upper);
          st.stat.(e) <- Basic;
          st.order.(r) <- e;
          st.xb.(r) <- enter_val;
          Basis.pivot st.fact ~row:r ~w;
          if Basis.needs_refactor st.fact then
            if refactor st then compute_xb st else res := Some R_iters;
          note_degenerate st (t <= st.eps)
        end
      end
    end
  done;
  Option.get !res

(* ---- dual simplex -------------------------------------------------------- *)

(* With [zero_obj] the objective is identically zero, which makes any basis
   dual-feasible: running the dual simplex then simply restores primal
   feasibility from the all-slack basis (phase 1). With the real objective
   it repairs a warm-started basis whose bounds moved. *)
let dual ?(zero_obj = false) st =
  let res = ref None in
  while !res = None do
    if st.iters >= st.max_iters then res := Some R_iters
    else begin
      st.iters <- st.iters + 1;
      (* leaving: most violated basic bound (Bland: smallest variable index) *)
      let r = ref (-1) and viol = ref 0. and below = ref false in
      for i = 0 to st.m - 1 do
        let bi = st.order.(i) in
        let v = st.xb.(i) in
        let lo = st.lb.(bi) and hi = st.ub.(bi) in
        let record d is_below =
          if
            (st.bland && (!r < 0 || bi < st.order.(!r)))
            || ((not st.bland) && d > !viol)
          then begin
            r := i;
            viol := d;
            below := is_below
          end
        in
        if v < lo -. ftol st lo then record (lo -. v) true
        else if hi < infinity && v > hi +. ftol st hi then record (v -. hi) false
      done;
      if !r < 0 then res := Some R_done
      else begin
        let r = !r and below = !below in
        let rho = Basis.row st.fact r in
        let y = if zero_obj then None else Some (pricing_vector st) in
        (* dual ratio test: among columns whose motion can repair the
           violation, the one whose reduced cost reaches zero first keeps
           every other reduced cost on its feasible side *)
        let e = ref (-1) and bestkey = ref infinity and bestalpha = ref 0. in
        for j = 0 to st.ncols - 1 do
          if st.stat.(j) <> Basic && st.lb.(j) < st.ub.(j) then begin
            let alpha = col_dot st rho j in
            let eligible =
              match (st.stat.(j), below) with
              | Nonbasic_lower, true -> alpha < -.st.eps
              | Nonbasic_upper, true -> alpha > st.eps
              | Nonbasic_lower, false -> alpha > st.eps
              | Nonbasic_upper, false -> alpha < -.st.eps
              | Basic, _ -> false
            in
            if eligible then begin
              let d =
                match y with
                | None -> 0.
                | Some y -> st.c.(j) -. col_dot st y j
              in
              let rat = d /. alpha in
              let key = if below then rat else -.rat in
              if
                key < !bestkey -. 1e-12
                || (key <= !bestkey +. 1e-12 && !e >= 0 && (not st.bland)
                    && Float.abs alpha > !bestalpha)
              then begin
                e := j;
                bestkey := Float.min !bestkey key;
                bestalpha := Float.abs alpha
              end
            end
          end
        done;
        if !e < 0 then res := Some R_infeasible
        else begin
          Cim_obs.Metrics.incr m_pivots;
          Cim_obs.Metrics.incr m_dual_pivots;
          let e = !e in
          let w = Basis.ftran st.fact (col_vec st e) in
          let bi = st.order.(r) in
          let target = if below then st.lb.(bi) else st.ub.(bi) in
          let delta = (st.xb.(r) -. target) /. w.(r) in
          let d_e =
            match y with None -> 0. | Some y -> st.c.(e) -. col_dot st y e
          in
          let enter_val = nb_val st e +. delta in
          for i = 0 to st.m - 1 do
            if i <> r then st.xb.(i) <- st.xb.(i) -. (delta *. w.(i))
          done;
          st.stat.(bi) <- (if below then Nonbasic_lower else Nonbasic_upper);
          st.stat.(e) <- Basic;
          st.order.(r) <- e;
          st.xb.(r) <- enter_val;
          Basis.pivot st.fact ~row:r ~w;
          if Basis.needs_refactor st.fact then
            if refactor st then compute_xb st else res := Some R_iters;
          note_degenerate st (Float.abs (d_e *. delta) <= 1e-12)
        end
      end
    end
  done;
  Option.get !res

(* ---- warm start ---------------------------------------------------------- *)

let install_warm st (wb : basis) =
  if
    wb.b_rows <> st.m || wb.b_cols <> st.ncols
    || Array.length wb.b_stat <> st.ncols
    || Array.length wb.b_order <> st.m
  then false
  else begin
    let ok = ref true in
    let basic_count = ref 0 in
    Array.iteri
      (fun j s ->
        match s with
        | Basic -> incr basic_count
        | Nonbasic_upper -> if st.ub.(j) = infinity then ok := false
        | Nonbasic_lower -> ())
      wb.b_stat;
    if !basic_count <> st.m then ok := false;
    Array.iter
      (fun j ->
        if j < 0 || j >= st.ncols || wb.b_stat.(j) <> Basic then ok := false)
      wb.b_order;
    if not !ok then false
    else begin
      Array.blit wb.b_stat 0 st.stat 0 st.ncols;
      Array.blit wb.b_order 0 st.order 0 st.m;
      (* the snapshot's inverse is exact for any problem sharing the
         constraint matrix (the warm-start contract), so restoring it
         skips the O(m^3) refactorization entirely *)
      Basis.restore st.fact wb.b_binv ~updates:wb.b_updates;
      if Basis.needs_refactor st.fact && not (refactor st) then false
      else begin
        compute_xb st;
        true
      end
    end
  end

(* ---- driver -------------------------------------------------------------- *)

let snapshot st =
  {
    b_rows = st.m;
    b_cols = st.ncols;
    b_stat = Array.copy st.stat;
    b_order = Array.copy st.order;
    b_binv = Basis.export st.fact;
    b_updates = Basis.updates_since_refactor st.fact;
  }

let basis_status b j = b.b_stat.(j)

(* Structural reduced costs priced from the snapshot's own inverse:
   y = c_B B^-1, then d_j = c_j - y.A_j. Only the root of a
   branch-and-bound tree needs these (for reduced-cost bound tightening),
   so they are computed on demand here instead of on every re-solve. *)
let reduced_costs (q : prepared) (wb : basis) =
  let m = q.q_m in
  let y = Array.make m 0. in
  for i = 0 to m - 1 do
    let ci = q.q_c.(wb.b_order.(i)) in
    if ci <> 0. then begin
      let r = wb.b_binv.(i) in
      for j = 0 to m - 1 do
        y.(j) <- y.(j) +. (ci *. r.(j))
      done
    end
  done;
  Array.init q.q_n (fun j ->
      if wb.b_stat.(j) = Basic then 0.
      else begin
        let a = q.q_acol.(j) in
        let acc = ref 0. in
        for i = 0 to m - 1 do
          acc := !acc +. (y.(i) *. a.(i))
        done;
        q.q_c.(j) -. !acc
      end)

let extract st =
  (* product-form drift here is bounded by the refactor_every threshold
     (the pivot loops rebuild eagerly past it), well inside the callers'
     1e-6 tolerances — a final O(m^3) cleanup would cost more than every
     warm-started re-solve it polishes *)
  let values = Array.make st.n 0. in
  for j = 0 to st.n - 1 do
    match st.stat.(j) with
    | Nonbasic_lower -> values.(j) <- st.lb.(j)
    | Nonbasic_upper -> values.(j) <- st.ub.(j)
    | Basic -> ()
  done;
  for i = 0 to st.m - 1 do
    if st.order.(i) < st.n then values.(st.order.(i)) <- st.xb.(i)
  done;
  let objective = ref 0. in
  for j = 0 to st.n - 1 do
    objective := !objective +. (st.c.(j) *. values.(j))
  done;
  { values; objective = !objective }

let solve_prepared ?(eps = 1e-9) ?(max_iters = 20_000) ?warm q ~lower ~upper =
  Cim_obs.Metrics.incr m_solves;
  let timed = Cim_obs.Metrics.enabled () in
  let t0 = if timed then Unix.gettimeofday () else 0. in
  let st = mk_state ~eps ~max_iters q ~lower ~upper in
  let warmed =
    match warm with
    | None -> false
    | Some wb ->
      if install_warm st wb then begin
        Cim_obs.Metrics.incr m_warm_used;
        true
      end
      else begin
        Cim_obs.Metrics.incr m_warm_rejected;
        (* install_warm may have scribbled on the state: rebuild *)
        false
      end
  in
  let st =
    if warmed || Option.is_none warm then st
    else mk_state ~eps ~max_iters q ~lower ~upper
  in
  (* cold starts run from the all-slack identity basis (warm installs
     overwrite the whole inverse, so only cold paths pay the reset) *)
  if not warmed then begin
    Basis.reset st.fact;
    compute_xb st
  end;
  let phase =
    if warmed then
      (* the bounds moved under a basis that is dual-feasible by the
         warm-start contract, and the dual ratio test preserves dual
         feasibility at every pivot — so R_done already proves
         optimality and the primal polish pass would only re-scan *)
      dual st
    else
      (* cold: zero-objective dual simplex is phase 1, primal is phase 2 *)
      match dual ~zero_obj:true st with R_done -> primal st | r -> r
  in
  let out =
    match phase with
    | R_done ->
      (* the snapshot (status/order copies plus an O(m^2) inverse export)
         is deferred behind a closure: branch-and-bound materializes it
         only for nodes that actually branch — pruned nodes, integral
         leaves and rounding attempts skip the copy entirely. Valid only
         until the next solve reuses the workspace. *)
      (Optimal (extract st), Some (fun () -> snapshot st))
    | R_infeasible -> (Infeasible, None)
    | R_unbounded -> (Unbounded, None)
    | R_iters -> (Iteration_limit, None)
  in
  if timed then
    Cim_obs.Metrics.incr m_wall ~by:(Unix.gettimeofday () -. t0);
  out

let solve_info ?eps ?max_iters ?(validate = false) ?warm p =
  if validate then check p;
  let r, snap =
    solve_prepared ?eps ?max_iters ?warm (prepare p) ~lower:p.lower
      ~upper:p.upper
  in
  (r, Option.map (fun f -> f ()) snap)

let solve ?eps ?max_iters ?validate ?warm p =
  fst (solve_info ?eps ?max_iters ?validate ?warm p)
