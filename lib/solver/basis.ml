(* Explicit-inverse basis factorization for the revised simplex. Problems
   here are a few dozen rows, so a dense m x m inverse with product-form
   updates is both the simplest and the fastest representation: every
   ftran/btran is one O(m^2) matrix-vector product, every pivot one O(m^2)
   rank-1 update, and a periodic O(m^3) rebuild from the true basic columns
   keeps the numerics honest. *)

let m_refactor = Cim_obs.Metrics.counter "solver.simplex.refactorizations"

type t = {
  m : int;
  binv : float array array; (* row-major m x m, current B^-1 *)
  refactor_every : int;
  mutable updates : int;
}

let identity_into binv m =
  for i = 0 to m - 1 do
    let r = binv.(i) in
    Array.fill r 0 m 0.;
    r.(i) <- 1.
  done

let create ?(refactor_every = 64) m =
  if m < 0 then invalid_arg "Basis.create: negative dimension";
  if refactor_every < 1 then invalid_arg "Basis.create: refactor_every < 1";
  let binv = Array.make_matrix m m 0. in
  (* make_matrix already zeroed the rows; only the diagonal needs writing *)
  for i = 0 to m - 1 do
    binv.(i).(i) <- 1.
  done;
  { m; binv; refactor_every; updates = 0 }

let reset t =
  identity_into t.binv t.m;
  t.updates <- 0

let dim t = t.m

let ftran_into t a dst =
  for i = 0 to t.m - 1 do
    let r = t.binv.(i) in
    let acc = ref 0. in
    for k = 0 to t.m - 1 do
      acc := !acc +. (r.(k) *. a.(k))
    done;
    dst.(i) <- !acc
  done

let ftran t a =
  let y = Array.make t.m 0. in
  ftran_into t a y;
  y

let btran_into t c dst =
  Array.fill dst 0 t.m 0.;
  for i = 0 to t.m - 1 do
    let ci = c.(i) in
    if ci <> 0. then begin
      let r = t.binv.(i) in
      for j = 0 to t.m - 1 do
        dst.(j) <- dst.(j) +. (ci *. r.(j))
      done
    end
  done

let btran t c =
  let y = Array.make t.m 0. in
  btran_into t c y;
  y

let row t r = t.binv.(r)

let pivot t ~row:r ~w =
  let p = w.(r) in
  let br = t.binv.(r) in
  for j = 0 to t.m - 1 do
    br.(j) <- br.(j) /. p
  done;
  for i = 0 to t.m - 1 do
    if i <> r then begin
      let f = w.(i) in
      if f <> 0. then begin
        let bi = t.binv.(i) in
        for j = 0 to t.m - 1 do
          bi.(j) <- bi.(j) -. (f *. br.(j))
        done
      end
    end
  done;
  t.updates <- t.updates + 1

let updates_since_refactor t = t.updates
let needs_refactor t = t.updates >= t.refactor_every

let export t = Array.map Array.copy t.binv

let restore t binv ~updates =
  if Array.length binv <> t.m then invalid_arg "Basis.restore: dimension";
  for i = 0 to t.m - 1 do
    Array.blit binv.(i) 0 t.binv.(i) 0 t.m
  done;
  t.updates <- updates

(* Gauss-Jordan with partial pivoting on [B | I], in place. *)
let refactor t ~col ~order =
  Cim_obs.Metrics.incr m_refactor;
  let m = t.m in
  let a = Array.make_matrix m m 0. in
  for j = 0 to m - 1 do
    let cj = col order.(j) in
    for i = 0 to m - 1 do
      a.(i).(j) <- cj.(i)
    done
  done;
  identity_into t.binv m;
  let ok = ref true in
  (try
     for k = 0 to m - 1 do
       let best = ref k and mag = ref (Float.abs a.(k).(k)) in
       for i = k + 1 to m - 1 do
         let v = Float.abs a.(i).(k) in
         if v > !mag then begin
           best := i;
           mag := v
         end
       done;
       if !mag < 1e-12 then begin
         ok := false;
         raise Exit
       end;
       if !best <> k then begin
         let tmp = a.(k) in
         a.(k) <- a.(!best);
         a.(!best) <- tmp;
         let tmp = t.binv.(k) in
         t.binv.(k) <- t.binv.(!best);
         t.binv.(!best) <- tmp
       end;
       let p = a.(k).(k) in
       let ak = a.(k) and bk = t.binv.(k) in
       for j = 0 to m - 1 do
         ak.(j) <- ak.(j) /. p;
         bk.(j) <- bk.(j) /. p
       done;
       for i = 0 to m - 1 do
         if i <> k then begin
           let f = a.(i).(k) in
           if f <> 0. then begin
             let ai = a.(i) and bi = t.binv.(i) in
             for j = 0 to m - 1 do
               ai.(j) <- ai.(j) -. (f *. ak.(j));
               bi.(j) <- bi.(j) -. (f *. bk.(j))
             done
           end
         end
       done
     done
   with Exit -> ());
  if !ok then t.updates <- 0;
  !ok
