(* Tests for the analysis/reporting helpers: roofline classification and
   the Markdown compilation report. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Roofline = Cim_models.Roofline
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Report = Cim_compiler.Report
module Plan = Cim_compiler.Plan

let chip = Config.dynaplasia

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_roofline_basics () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512 ] () in
  let s = Roofline.analyze chip g in
  Alcotest.(check (float 1e-6)) "peak"
    (float_of_int chip.Chip.n_arrays *. chip.Chip.op_cim)
    s.Roofline.peak;
  Alcotest.(check (float 1e-6)) "ridge" (s.Roofline.peak /. Chip.d_main chip)
    s.Roofline.ridge_ai;
  (match s.Roofline.points with
  | [ p ] ->
    (* a batch-1 FC has AI ~ 1 << ridge: memory bound, attainable = AI * bw *)
    Alcotest.(check bool) "memory bound" true (p.Roofline.bound = Roofline.Memory_bound);
    Alcotest.(check (float 1e-6)) "attainable follows the slope"
      (p.Roofline.ai *. Chip.d_main chip)
      p.Roofline.attainable
  | _ -> Alcotest.fail "expected one point");
  Alcotest.(check (float 1e-9)) "all MACs memory-bound" 1. s.Roofline.memory_bound_macs

let test_roofline_orderings () =
  (* on the full 96-array chip the ridge AI (480) exceeds every operator's
     AI — everything is memory-bound, which is precisely the dual-mode
     opportunity. Use a smaller array budget so the ridge discriminates. *)
  let small = Cim_arch.Config.scaled chip ~n_arrays:16 in
  let share key w =
    let g = (Option.get (Zoo.find key)).Zoo.build w in
    (Roofline.analyze small g).Roofline.memory_bound_macs
  in
  let llama = share "llama2-7b" (Workload.decode ~batch:1 64) in
  let resnet = share "resnet50" (Workload.prefill ~batch:1 1) in
  Alcotest.(check bool)
    (Printf.sprintf "LLaMA decode (%.2f) more memory-bound than ResNet (%.2f)" llama resnet)
    true (llama > resnet);
  Alcotest.(check bool) "LLaMA decode almost fully memory-bound" true (llama > 0.9)

let test_roofline_attainable_capped () =
  List.iter
    (fun (p : Roofline.point) ->
      Alcotest.(check bool) "attainable <= peak" true
        (p.Roofline.attainable
        <= (float_of_int chip.Chip.n_arrays *. chip.Chip.op_cim) +. 1e-9))
    (Roofline.analyze chip (Cim_models.Cnn.resnet18 ~batch:1)).Roofline.points

let compiled =
  lazy (Cmswitch.compile chip (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ()))

let test_report_rows_match_schedule () =
  let r = Lazy.force compiled in
  let rows = Report.segment_rows r in
  Alcotest.(check int) "one row per segment"
    (List.length r.Cmswitch.schedule.Plan.segments)
    (List.length rows);
  List.iter2
    (fun (_, _, com, mem, intra) (seg : Plan.seg_plan) ->
      Alcotest.(check int) "compute" (Plan.com_total seg) com;
      Alcotest.(check int) "memory" (Plan.mem_total seg) mem;
      Alcotest.(check (float 0.)) "intra" seg.Plan.intra_cycles intra)
    rows r.Cmswitch.schedule.Plan.segments

let test_report_markdown () =
  let r = Lazy.force compiled in
  let md = Report.to_markdown r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true (contains md needle))
    [ "# CMSwitch compilation report"; "## Segments"; "## Mode switches";
      "memory-mode ratio"; "MIP solves" ]

let suite =
  ( "analysis",
    [
      Alcotest.test_case "roofline basics" `Quick test_roofline_basics;
      Alcotest.test_case "roofline orderings" `Quick test_roofline_orderings;
      Alcotest.test_case "roofline attainable capped" `Quick test_roofline_attainable_capped;
      Alcotest.test_case "report rows = schedule" `Quick test_report_rows_match_schedule;
      Alcotest.test_case "report markdown sections" `Quick test_report_markdown;
    ] )
