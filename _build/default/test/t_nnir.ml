(* Tests for the graph IR: validation, topological sorting, shape
   inference per operator, the builder DSL, the textual round-trip and the
   reference executor. *)

module Graph = Cim_nnir.Graph
module Op = Cim_nnir.Op
module Attr = Cim_nnir.Attr
module B = Cim_nnir.Builder
module Shape_infer = Cim_nnir.Shape_infer
module Text = Cim_nnir.Text
module Exec = Cim_nnir.Exec
module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor
module Ops = Cim_tensor.Ops
module Rng = Cim_util.Rng

let node id name op inputs outputs attrs =
  { Graph.id; name; op; inputs; outputs; attrs }

let mk ?(inputs = [ ("x", [ 1; 4 ]) ]) ?(inits = []) ~nodes ~outputs () =
  Graph.create ~name:"t" ~nodes ~inputs ~outputs
    ~initializers:
      (List.map
         (fun (n, s) -> { Graph.init_name = n; init_shape = s; value = None })
         inits)

(* --- validation --- *)

let expect_invalid name f =
  match f () with
  | exception Graph.Invalid _ -> ()
  | _ -> Alcotest.failf "%s: expected Graph.Invalid" name

let test_validation () =
  expect_invalid "undefined input" (fun () ->
      mk ~nodes:[ node 0 "r" Op.Relu [ "nope" ] [ "y" ] [] ] ~outputs:[ "y" ] ());
  expect_invalid "double definition" (fun () ->
      mk
        ~nodes:
          [ node 0 "a" Op.Relu [ "x" ] [ "y" ] []; node 1 "b" Op.Relu [ "x" ] [ "y" ] [] ]
        ~outputs:[ "y" ] ());
  expect_invalid "duplicate node id" (fun () ->
      mk
        ~nodes:
          [ node 0 "a" Op.Relu [ "x" ] [ "y" ] []; node 0 "b" Op.Relu [ "y" ] [ "z" ] [] ]
        ~outputs:[ "z" ] ());
  expect_invalid "undefined output" (fun () ->
      mk ~nodes:[ node 0 "a" Op.Relu [ "x" ] [ "y" ] [] ] ~outputs:[ "zz" ] ());
  (* a cycle cannot even be written in SSA with distinct names unless nodes
     consume each other's outputs *)
  expect_invalid "cycle" (fun () ->
      mk
        ~nodes:
          [ node 0 "a" Op.Add [ "x"; "w" ] [ "v" ] [];
            node 1 "b" Op.Add [ "v"; "x" ] [ "w" ] [] ]
        ~outputs:[ "w" ] ())

let test_topo_sort () =
  (* give nodes out of order; create must sort them *)
  let g =
    mk
      ~nodes:
        [ node 1 "second" Op.Relu [ "mid" ] [ "out" ] [];
          node 0 "first" Op.Relu [ "x" ] [ "mid" ] [] ]
      ~outputs:[ "out" ] ()
  in
  Alcotest.(check (list string)) "sorted order" [ "first"; "second" ]
    (List.map (fun (n : Graph.node) -> n.Graph.name) g.Graph.nodes);
  Alcotest.(check bool) "depends" true (Graph.depends g 0 1);
  Alcotest.(check bool) "not depends" false (Graph.depends g 1 0)

let test_accessors () =
  let g =
    mk
      ~inits:[ ("w", [ 4; 4 ]) ]
      ~nodes:[ node 0 "g" Op.Gemm [ "x"; "w" ] [ "y" ] [] ]
      ~outputs:[ "y" ] ()
  in
  Alcotest.(check bool) "is_initializer" true (Graph.is_initializer g "w");
  Alcotest.(check bool) "input is not initializer" false (Graph.is_initializer g "x");
  Alcotest.(check (option (list int))) "initializer_shape" (Some [ 4; 4 ])
    (Graph.initializer_shape g "w");
  Alcotest.(check int) "param_count" 16 (Graph.param_count g);
  Alcotest.(check (option string)) "producer" (Some "g")
    (Option.map (fun (n : Graph.node) -> n.Graph.name) (Graph.producer g "y"));
  Alcotest.(check int) "consumers of x" 1 (List.length (Graph.consumers g "x"));
  Alcotest.(check int) "cim nodes" 1 (List.length (Graph.cim_nodes g))

(* --- shape inference --- *)

let infer_one op attrs ins = Shape_infer.output_shape op attrs ins

let test_shapes_matmul_gemm () =
  Alcotest.(check (list (list int))) "matmul" [ [ 2; 5 ] ]
    (infer_one Op.Mat_mul [] [ [ 2; 3 ]; [ 3; 5 ] ]);
  Alcotest.(check (list (list int))) "batched" [ [ 7; 2; 5 ] ]
    (infer_one Op.Mat_mul [] [ [ 7; 2; 3 ]; [ 7; 3; 5 ] ]);
  Alcotest.(check (list (list int))) "gemm with bias" [ [ 2; 5 ] ]
    (infer_one Op.Gemm [] [ [ 2; 3 ]; [ 3; 5 ]; [ 5 ] ]);
  Alcotest.check_raises "bad matmul"
    (Shape_infer.Error "MatMul: incompatible 2x3 x 4x5") (fun () ->
      ignore (infer_one Op.Mat_mul [] [ [ 2; 3 ]; [ 4; 5 ] ]))

let test_shapes_conv_pool () =
  let attrs = [ ("stride", Attr.Int 2); ("pad", Attr.Int 3); ("groups", Attr.Int 1) ] in
  Alcotest.(check (list (list int))) "conv stem" [ [ 1; 64; 112; 112 ] ]
    (infer_one Op.Conv attrs [ [ 1; 3; 224; 224 ]; [ 64; 3; 7; 7 ] ]);
  let pool = [ ("k", Attr.Int 2); ("stride", Attr.Int 2) ] in
  Alcotest.(check (list (list int))) "maxpool" [ [ 1; 8; 4; 4 ] ]
    (infer_one Op.Max_pool pool [ [ 1; 8; 8; 8 ] ]);
  Alcotest.(check (list (list int))) "gap" [ [ 2; 16 ] ]
    (infer_one Op.Global_avg_pool [] [ [ 2; 16; 7; 7 ] ]);
  Alcotest.(check (list (list int))) "avgpool" [ [ 1; 8; 4; 4 ] ]
    (infer_one Op.Avg_pool [ ("k", Attr.Int 2); ("stride", Attr.Int 2) ] [ [ 1; 8; 8; 8 ] ]);
  Alcotest.(check (list (list int))) "clip keeps shape" [ [ 3; 5 ] ]
    (infer_one Op.Clip [ ("min", Attr.Float 0.); ("max", Attr.Float 6.) ] [ [ 3; 5 ] ])

let test_shapes_reshape_transpose () =
  Alcotest.(check (list (list int))) "reshape -1" [ [ 2; 12 ] ]
    (infer_one Op.Reshape [ ("shape", Attr.Ints [ 2; -1 ]) ] [ [ 2; 3; 4 ] ]);
  Alcotest.check_raises "reshape bad count"
    (Shape_infer.Error "Reshape: element count mismatch (2x3x4 -> 5x5)")
    (fun () ->
      ignore (infer_one Op.Reshape [ ("shape", Attr.Ints [ 5; 5 ]) ] [ [ 2; 3; 4 ] ]));
  Alcotest.(check (list (list int))) "transpose" [ [ 4; 2; 3 ] ]
    (infer_one Op.Transpose [ ("perm", Attr.Ints [ 2; 0; 1 ]) ] [ [ 2; 3; 4 ] ]);
  Alcotest.(check (list (list int))) "concat" [ [ 2; 7 ] ]
    (infer_one Op.Concat [ ("axis", Attr.Int 1) ] [ [ 2; 3 ]; [ 2; 4 ] ])

let test_shapes_misc () =
  Alcotest.(check (list (list int))) "add broadcast" [ [ 2; 3 ] ]
    (infer_one Op.Add [] [ [ 2; 3 ]; [ 3 ] ]);
  Alcotest.(check (list (list int))) "layernorm" [ [ 2; 8 ] ]
    (infer_one Op.Layer_norm [] [ [ 2; 8 ]; [ 8 ]; [ 8 ] ]);
  Alcotest.(check (list (list int))) "embedding" [ [ 5; 16 ] ]
    (infer_one Op.Embedding [] [ [ 5 ]; [ 100; 16 ] ])

let test_infer_whole_graph () =
  let g = Cim_models.Cnn.tiny_cnn ~batch:2 () in
  let shapes = Shape_infer.infer g in
  List.iter
    (fun o ->
      Alcotest.(check (list int)) "output shape" [ 2; 10 ] (Hashtbl.find shapes o))
    g.Graph.graph_outputs

(* --- builder --- *)

let test_builder_fresh_names () =
  let b = B.create "g" in
  let _ = B.input b "x" (Shape.of_list [ 1; 4 ]) in
  let w1 = B.weight b "w" (Shape.of_list [ 4; 4 ]) in
  let w2 = B.weight b "w" (Shape.of_list [ 4; 4 ]) in
  Alcotest.(check bool) "fresh weight names" true (w1 <> w2);
  Alcotest.check_raises "input name collision"
    (Invalid_argument "Builder.input: name taken: x") (fun () ->
      ignore (B.input b "x" (Shape.of_list [ 1 ])))

let test_builder_graph () =
  let rng = Rng.create 3 in
  let g = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 4; 8; 3 ] () in
  Alcotest.(check int) "two gemms one relu" 3 (Graph.node_count g);
  Alcotest.(check int) "params" ((4 * 8) + (8 * 3)) (Graph.param_count g);
  (* every initializer carries a value *)
  List.iter
    (fun (i : Graph.initializer_) ->
      Alcotest.(check bool) "value attached" true (i.Graph.value <> None))
    g.Graph.initializers

(* --- text round trip --- *)

let strip_values (g : Graph.t) =
  Graph.create ~name:g.Graph.graph_name ~nodes:g.Graph.nodes
    ~inputs:g.Graph.graph_inputs ~outputs:g.Graph.graph_outputs
    ~initializers:
      (List.map (fun i -> { i with Graph.value = None }) g.Graph.initializers)

let test_text_roundtrip_models () =
  List.iter
    (fun g ->
      let s = Text.to_string g in
      let g2 = Text.of_string s in
      Alcotest.(check string) "same rendering" s (Text.to_string g2))
    [
      strip_values (Cim_models.Cnn.tiny_cnn ~batch:1 ());
      Cim_models.Cnn.resnet18 ~batch:1;
      Cim_models.Transformer.build_layer (Cim_models.Transformer.tiny ())
        (Cim_models.Workload.prefill ~batch:1 4) ~layer_index:0;
    ]

let test_text_parse_errors () =
  let bad s =
    match Text.of_string s with
    | exception Text.Parse_error _ -> ()
    | exception Graph.Invalid _ -> ()
    | _ -> Alcotest.failf "expected parse failure: %s" s
  in
  bad "nonsense";
  bad "graph \"g\" { input x 0x3 }";
  bad "graph \"g\" { node 0 \"n\" Bogus (x) -> (y) { } }";
  bad "graph \"g\" { output y }"

(* random small graphs: chains of unary ops over a 2-d input *)
let gen_chain =
  QCheck.Gen.(
    list_size (int_range 1 6) (oneofl [ Op.Relu; Op.Gelu; Op.Silu; Op.Softmax ]))

let arb_chain = QCheck.make gen_chain

let prop_text_roundtrip_random =
  QCheck.Test.make ~name:"text round-trip on random chains" ~count:100 arb_chain
    (fun ops ->
      let nodes =
        List.mapi
          (fun i op ->
            let src = if i = 0 then "x" else Printf.sprintf "t%d" i in
            node i (Printf.sprintf "n%d" i) op [ src ] [ Printf.sprintf "t%d" (i + 1) ] [])
          ops
      in
      let g =
        mk ~inputs:[ ("x", [ 2; 3 ]) ] ~nodes
          ~outputs:[ Printf.sprintf "t%d" (List.length ops) ]
          ()
      in
      Text.to_string (Text.of_string (Text.to_string g)) = Text.to_string g)

(* --- executor --- *)

let test_exec_mlp () =
  let rng = Rng.create 5 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 3; 4; 2 ] () in
  let x = Tensor.rand rng (Shape.of_list [ 1; 3 ]) ~lo:(-1.) ~hi:1. in
  let outs = Exec.run_outputs g [ ("x", x) ] in
  (* recompute by hand *)
  let wv name = Option.get (Graph.initializer_value g name) in
  let expected = Ops.matmul (Ops.relu (Ops.matmul x (wv "fc1_w"))) (wv "fc2_w") in
  match outs with
  | [ (_, got) ] ->
    Alcotest.(check bool) "exec matches manual" true (Tensor.equal ~eps:1e-6 expected got)
  | _ -> Alcotest.fail "expected one output"

let test_exec_missing_input () =
  let g = Cim_models.Mlp.build ~rng:(Rng.create 1) ~batch:1 ~dims:[ 3; 2 ] () in
  Alcotest.check_raises "missing input" (Exec.Error "missing graph input x")
    (fun () -> ignore (Exec.run g []))

let test_exec_missing_weights () =
  let g = Cim_models.Cnn.tiny_cnn ~batch:1 () in
  (* no rng -> no values *)
  let x = Tensor.zeros (Shape.of_list [ 1; 2; 8; 8 ]) in
  match Exec.run g [ ("image", x) ] with
  | exception Exec.Error _ -> ()
  | _ -> Alcotest.fail "expected Exec.Error for valueless initializers"

let test_exec_tiny_transformer_shapes () =
  (* the tiny transformer has no weight values, but shape inference must
     accept both prefill and decode graph variants *)
  let cfg = Cim_models.Transformer.tiny () in
  List.iter
    (fun w ->
      let g = Cim_models.Transformer.build cfg w in
      let shapes = Shape_infer.infer g in
      let bt = w.Cim_models.Workload.batch * Cim_models.Workload.tokens_this_step w in
      List.iter
        (fun o ->
          Alcotest.(check (list int)) "logit shape" [ bt; 50 ] (Hashtbl.find shapes o))
        g.Graph.graph_outputs)
    [ Cim_models.Workload.prefill ~batch:2 4; Cim_models.Workload.decode ~batch:2 3 ]

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "nnir",
    [
      Alcotest.test_case "graph validation" `Quick test_validation;
      Alcotest.test_case "topological sort" `Quick test_topo_sort;
      Alcotest.test_case "accessors" `Quick test_accessors;
      Alcotest.test_case "shapes: matmul/gemm" `Quick test_shapes_matmul_gemm;
      Alcotest.test_case "shapes: conv/pool" `Quick test_shapes_conv_pool;
      Alcotest.test_case "shapes: reshape/transpose/concat" `Quick test_shapes_reshape_transpose;
      Alcotest.test_case "shapes: misc" `Quick test_shapes_misc;
      Alcotest.test_case "whole-graph inference" `Quick test_infer_whole_graph;
      Alcotest.test_case "builder fresh names" `Quick test_builder_fresh_names;
      Alcotest.test_case "builder mlp" `Quick test_builder_graph;
      Alcotest.test_case "text round-trip on models" `Quick test_text_roundtrip_models;
      Alcotest.test_case "text parse errors" `Quick test_text_parse_errors;
      qtest prop_text_roundtrip_random;
      Alcotest.test_case "exec mlp vs manual" `Quick test_exec_mlp;
      Alcotest.test_case "exec missing input" `Quick test_exec_missing_input;
      Alcotest.test_case "exec valueless weights" `Quick test_exec_missing_weights;
      Alcotest.test_case "tiny transformer shapes" `Quick test_exec_tiny_transformer_shapes;
    ] )
