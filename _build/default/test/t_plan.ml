(* Unit tests for the shared plan layer: allocation accounting, the
   consumer index, boundary data, and each component of the inter-segment
   cost model (Fig. 10 / Eqs. 1, 2, 4) on hand-crafted operator lists. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Opinfo = Cim_compiler.Opinfo
module Plan = Cim_compiler.Plan

let chip = Config.dynaplasia

(* Hand-crafted operator table: a chain 0 -> 1 -> 2 with a side output. *)
let op ~uid ~deps ~out_bytes =
  {
    Opinfo.uid;
    node_id = uid;
    label = Printf.sprintf "op%d" uid;
    kind = Cim_models.Intensity.Static_weight;
    macs = 1000.;
    ai = 1.;
    in_bytes = 64;
    out_bytes;
    weight_bytes = 128;
    stationary_rows = 32;
    stationary_cols = 8;
    replicas = 1;
    min_compute_arrays = 1;
    out_lo = 0;
    out_hi = 8;
    inputs = [ "x" ];
    output = Printf.sprintf "t%d" uid;
    deps;
  }

let ops =
  [| op ~uid:0 ~deps:[] ~out_bytes:100;
     op ~uid:1 ~deps:[ 0 ] ~out_bytes:200;
     op ~uid:2 ~deps:[ 1 ] ~out_bytes:300 |]

let alloc ?(com = 1) ?(mem_in = 0) ?(mem_out = 0) uid =
  { Plan.uid; com; mem_in; mem_out }

let seg ?(reuse = []) ~lo ~hi allocs =
  { Plan.lo; hi; allocs; reuse; intra_cycles = 10. }

let test_alloc_accounting () =
  let a = alloc ~com:3 ~mem_in:2 ~mem_out:1 0 in
  Alcotest.(check int) "mem_of" 3 (Plan.mem_of a);
  let s =
    seg ~lo:0 ~hi:1
      ~reuse:[ (0, 1, 1) ]
      [ alloc ~com:3 ~mem_out:2 0; alloc ~com:2 ~mem_in:2 1 ]
  in
  Alcotest.(check int) "com_total" 5 (Plan.com_total s);
  Alcotest.(check int) "mem_total" 4 (Plan.mem_total s);
  Alcotest.(check int) "arrays_used subtracts reuse" 8 (Plan.arrays_used s);
  Alcotest.(check int) "max_com" 3 (Plan.max_com s)

let test_boundary_bytes () =
  let ctx = Plan.make_ctx ops in
  (* [0,0]: op0 is consumed by op1 (beyond) -> boundary *)
  Alcotest.(check int) "prefix boundary" 100 (Plan.boundary_bytes ctx ~lo:0 ~hi:0);
  (* [0,1]: op0 consumed within, op1 consumed beyond *)
  Alcotest.(check int) "middle boundary" 200 (Plan.boundary_bytes ctx ~lo:0 ~hi:1);
  (* [0,2]: op2 has no consumer -> graph output, still boundary *)
  Alcotest.(check int) "tail boundary" 300 (Plan.boundary_bytes ctx ~lo:0 ~hi:2)

let test_inter_cold_start () =
  let ctx = Plan.make_ctx ops in
  let cur = seg ~lo:0 ~hi:0 [ alloc ~com:4 0 ] in
  let ic = Plan.inter_segment_cost chip ctx ~prev:None ~cur in
  Alcotest.(check (float 0.)) "no cold write-back" 0. ic.Plan.writeback;
  (* 4 arrays switch memory->compute at 1 cycle each *)
  Alcotest.(check (float 0.)) "cold switch" 4. ic.Plan.switch;
  (* Eq. 2: max com * write_latency *)
  Alcotest.(check (float 0.)) "cold rewrite" (4. *. 16.) ic.Plan.rewrite

let test_inter_switch_estimate () =
  let ctx = Plan.make_ctx ops in
  let prev = seg ~lo:0 ~hi:0 [ alloc ~com:10 ~mem_out:5 0 ] in
  let cur = seg ~lo:1 ~hi:1 [ alloc ~com:12 ~mem_in:9 1 ] in
  let ic = Plan.inter_segment_cost chip ctx ~prev:(Some prev) ~cur in
  (* com grows by 2, mem grows by 4 -> 2 m->c and 4 c->m at 1 cycle each *)
  Alcotest.(check (float 0.)) "switch estimate" 6. ic.Plan.switch;
  Alcotest.(check (float 0.)) "rewrite of new segment" (12. *. 16.) ic.Plan.rewrite

let test_inter_writeback () =
  let ctx = Plan.make_ctx ops in
  let array_bytes = Chip.array_mem_bytes chip in
  ignore array_bytes;
  (* prev holds its 100-byte boundary output in one mem_out array; the next
     segment has no input buffers to absorb it -> write back 100 bytes *)
  let prev = seg ~lo:0 ~hi:0 [ alloc ~com:1 ~mem_out:1 0 ] in
  let cur = seg ~lo:1 ~hi:1 [ alloc ~com:1 1 ] in
  let ic = Plan.inter_segment_cost chip ctx ~prev:(Some prev) ~cur in
  Alcotest.(check (float 1e-9)) "write-back of held bytes"
    (100. /. chip.Chip.extern_bw) ic.Plan.writeback;
  (* with an absorbing input buffer on the next segment: free *)
  let cur2 = seg ~lo:1 ~hi:1 [ alloc ~com:1 ~mem_in:1 1 ] in
  let ic2 = Plan.inter_segment_cost chip ctx ~prev:(Some prev) ~cur:cur2 in
  Alcotest.(check (float 0.)) "absorbed in place" 0. ic2.Plan.writeback;
  (* data not held on chip (prev had no output buffers): nothing to flush *)
  let prev3 = seg ~lo:0 ~hi:0 [ alloc ~com:1 0 ] in
  let ic3 = Plan.inter_segment_cost chip ctx ~prev:(Some prev3) ~cur in
  Alcotest.(check (float 0.)) "nothing held" 0. ic3.Plan.writeback

let test_roll_up_additivity () =
  let segs =
    [ seg ~lo:0 ~hi:0 [ alloc ~com:2 0 ];
      seg ~lo:1 ~hi:1 [ alloc ~com:2 1 ];
      seg ~lo:2 ~hi:2 [ alloc ~com:2 2 ] ]
  in
  let s = Plan.roll_up ~compiler:"test" chip ops segs in
  Alcotest.(check (float 1e-9)) "intra sums" 30. s.Plan.intra;
  Alcotest.(check (float 1e-9)) "total is the component sum"
    (s.Plan.intra +. s.Plan.writeback +. s.Plan.switch +. s.Plan.rewrite)
    s.Plan.total_cycles;
  Alcotest.(check string) "compiler name" "test" s.Plan.compiler;
  Alcotest.(check int) "segments kept" 3 (List.length s.Plan.segments)

let test_pp_schedule () =
  let s = Plan.roll_up ~compiler:"x" chip ops [ seg ~lo:0 ~hi:2
    [ alloc 0; alloc 1; alloc 2 ] ] in
  let str = Format.asprintf "%a" Plan.pp_schedule s in
  Alcotest.(check bool) "renders" true (String.length str > 10)

let suite =
  ( "plan",
    [
      Alcotest.test_case "allocation accounting" `Quick test_alloc_accounting;
      Alcotest.test_case "boundary bytes" `Quick test_boundary_bytes;
      Alcotest.test_case "inter-cost: cold start" `Quick test_inter_cold_start;
      Alcotest.test_case "inter-cost: switch estimate (Eq. 1)" `Quick test_inter_switch_estimate;
      Alcotest.test_case "inter-cost: write-back cases" `Quick test_inter_writeback;
      Alcotest.test_case "roll-up additivity" `Quick test_roll_up_additivity;
      Alcotest.test_case "schedule printing" `Quick test_pp_schedule;
    ] )
