(* Tests for the model zoo and arithmetic-intensity analysis: the facts the
   paper's motivation section relies on (parameter counts, AI orderings)
   must hold in our builders. *)

module Zoo = Cim_models.Zoo
module Workload = Cim_models.Workload
module Transformer = Cim_models.Transformer
module Intensity = Cim_models.Intensity
module Graph = Cim_nnir.Graph
module Shape_infer = Cim_nnir.Shape_infer

let test_workload () =
  let p = Workload.prefill ~batch:2 64 in
  Alcotest.(check int) "prefill tokens" 64 (Workload.tokens_this_step p);
  Alcotest.(check int) "prefill ctx" 64 (Workload.context_len p);
  let d = Workload.decode ~batch:2 100 in
  Alcotest.(check int) "decode tokens" 1 (Workload.tokens_this_step d);
  Alcotest.(check int) "decode ctx" 101 (Workload.context_len d);
  Alcotest.check_raises "bad seq"
    (Invalid_argument "Workload.prefill: seq must be positive") (fun () ->
      ignore (Workload.prefill 0));
  Alcotest.check_raises "bad kv"
    (Invalid_argument "Workload.decode: negative kv_len") (fun () ->
      ignore (Workload.decode (-1)))

let approx ~tol expected got =
  Float.abs (got -. expected) /. expected < tol

let test_param_counts () =
  (* published parameter counts, within 10% (heads/embeddings vary) *)
  let check name expected =
    let e = Option.get (Zoo.find name) in
    Alcotest.(check bool)
      (Printf.sprintf "%s params %d" name e.Zoo.params)
      true
      (approx ~tol:0.10 expected (float_of_int e.Zoo.params))
  in
  check "resnet18" 11.7e6;
  check "resnet50" 25.6e6;
  check "vgg16" 138e6;
  check "mobilenetv2" 3.5e6;
  check "bert-large" 340e6;
  check "llama2-7b" 6.7e9;
  check "opt-6.7b" 6.7e9;
  check "opt-13b" 13e9;
  check "vit-base" 86e6;
  check "gpt2-xl" 1.56e9

let test_all_models_infer () =
  (* every zoo graph passes shape inference under both phases *)
  List.iter
    (fun (e : Zoo.entry) ->
      let workloads =
        match e.Zoo.family with
        | Zoo.Cnn -> [ Workload.prefill ~batch:2 1 ]
        | Zoo.Encoder_only -> [ Workload.prefill ~batch:2 8 ]
        | Zoo.Decoder_only ->
          [ Workload.prefill ~batch:2 8; Workload.decode ~batch:2 8 ]
      in
      List.iter
        (fun w ->
          let g = e.Zoo.build w in
          ignore (Shape_infer.infer g);
          match e.Zoo.layer with
          | None -> ()
          | Some layer -> ignore (Shape_infer.infer (layer w)))
        workloads)
    Zoo.all

let test_layer_replication_consistency () =
  (* n_layers * per-layer params + embeddings = whole-model params *)
  let cfg = Transformer.tiny () in
  let w = Workload.prefill ~batch:1 4 in
  let layer = Transformer.build_layer cfg w ~layer_index:0 in
  let whole = Transformer.build cfg w in
  let layer_params = Graph.param_count layer in
  let emb = 2 * cfg.Transformer.vocab * cfg.Transformer.d_model in
  let final_norm = 2 * cfg.Transformer.d_model in
  Alcotest.(check int) "analytic = graph"
    ((cfg.Transformer.n_layers * layer_params) + emb + final_norm)
    (Graph.param_count whole);
  Alcotest.(check int) "analytic param_count helper"
    (Transformer.param_count cfg) (Graph.param_count whole)

let test_decode_has_kv_inputs () =
  let cfg = Transformer.tiny () in
  let g = Transformer.build_layer cfg (Workload.decode ~batch:1 6) ~layer_index:0 in
  let names = List.map fst g.Graph.graph_inputs in
  Alcotest.(check bool) "k cache input" true (List.mem "l0_k_cache" names);
  Alcotest.(check bool) "v cache input" true (List.mem "l0_v_cache" names);
  (* kv_len = 0 decode has no cache inputs *)
  let g0 = Transformer.build_layer cfg (Workload.decode ~batch:1 0) ~layer_index:0 in
  Alcotest.(check int) "no cache at kv 0" 1 (List.length g0.Graph.graph_inputs)

(* --- arithmetic intensity (the paper's motivation facts) --- *)

let model_ai key w =
  Intensity.model_ai ((Option.get (Zoo.find key)).Zoo.build w)

let test_ai_orderings () =
  let resnet = model_ai "resnet50" (Workload.prefill ~batch:1 1) in
  let llama_decode = model_ai "llama2-7b" (Workload.decode ~batch:1 64) in
  Alcotest.(check bool) "ResNet-50 AI >> LLaMA2 decode AI (Fig. 5c)" true
    (resnet > 20. *. llama_decode);
  Alcotest.(check bool) "LLaMA decode AI ~ 1 MAC/byte (paper: ~2 FLOPs/byte)" true
    (llama_decode > 0.5 && llama_decode < 2.);
  Alcotest.(check bool) "ResNet-50 AI within the 40..150 MAC/byte band" true
    (resnet > 40. && resnet < 150.)

let test_bert_ai_grows_with_seq () =
  let ai s = model_ai "bert-large" (Workload.prefill ~batch:1 s) in
  Alcotest.(check bool) "AI(32) < AI(128) < AI(512) (Fig. 6b)" true
    (ai 32 < ai 128 && ai 128 < ai 512)

let test_node_stats_kinds () =
  let g =
    Transformer.build_layer Transformer.bert_large (Workload.prefill ~batch:1 8)
      ~layer_index:0
  in
  let stats = Intensity.node_stats g in
  let dyn = List.filter (fun s -> s.Intensity.kind = Intensity.Dynamic_matmul) stats in
  (* exactly two attention matmuls: QK^T and probs x V *)
  Alcotest.(check int) "two dynamic matmuls" 2 (List.length dyn);
  (* QK^T output feeds only softmax, so its out-traffic is exempt (the
     paper's in-place rule): its act_out_bytes must be zero *)
  Alcotest.(check bool) "softmax in-place exemption" true
    (List.exists (fun s -> s.Intensity.act_out_bytes = 0.) dyn)

let test_ai_weights_counted () =
  (* a batch-1 FC layer is weight-traffic dominated: ai_total ~ 1 while
     ai_dynamic is huge *)
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 512 ] () in
  match Intensity.node_stats g with
  | [ s ] ->
    Alcotest.(check bool) "ai_total ~ 1" true (Intensity.ai_total s < 2.);
    Alcotest.(check bool) "ai_dynamic large" true (Intensity.ai_dynamic s > 100.)
  | _ -> Alcotest.fail "expected a single CIM node"

let test_zoo_lookup () =
  Alcotest.(check int) "10 models" 10 (List.length Zoo.all);
  Alcotest.(check bool) "find missing" true (Zoo.find "nope" = None);
  Alcotest.(check (list string)) "names match" (List.map (fun e -> e.Zoo.key) Zoo.all)
    Zoo.names

let suite =
  ( "models",
    [
      Alcotest.test_case "workload descriptors" `Quick test_workload;
      Alcotest.test_case "published parameter counts" `Quick test_param_counts;
      Alcotest.test_case "all models shape-infer" `Slow test_all_models_infer;
      Alcotest.test_case "layer replication consistency" `Quick test_layer_replication_consistency;
      Alcotest.test_case "decode kv-cache inputs" `Quick test_decode_has_kv_inputs;
      Alcotest.test_case "AI orderings (Fig. 5c)" `Quick test_ai_orderings;
      Alcotest.test_case "BERT AI vs seq (Fig. 6b)" `Quick test_bert_ai_grows_with_seq;
      Alcotest.test_case "node kinds + softmax exemption" `Quick test_node_stats_kinds;
      Alcotest.test_case "weight traffic in AI" `Quick test_ai_weights_counted;
      Alcotest.test_case "zoo lookup" `Quick test_zoo_lookup;
    ] )
