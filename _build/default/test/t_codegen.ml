(* Tests for meta-operator code generation: program structure (switches
   before each segment, one parallel block per segment), vector-operator
   anchoring inside segments, load/store locations, and final stores. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Flow = Cim_metaop.Flow
module Cmswitch = Cim_compiler.Cmswitch
module Graph = Cim_nnir.Graph
module Op = Cim_nnir.Op
module Rng = Cim_util.Rng

let chip = Config.dynaplasia

let compile g = (Cmswitch.compile chip g).Cmswitch.program

let rec flatten (i : Flow.instr) =
  match i with Flow.Parallel is -> List.concat_map flatten is | i -> [ i ]

let all_instrs p = List.concat_map flatten p.Flow.instrs

let test_structure () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] () in
  let r = Cmswitch.compile chip g in
  let p = r.Cmswitch.program in
  (* exactly one parallel block per placed segment *)
  let blocks =
    List.filter (function Flow.Parallel _ -> true | _ -> false) p.Flow.instrs
  in
  Alcotest.(check int) "one block per segment"
    (List.length r.Cmswitch.places)
    (List.length blocks);
  (* switches only appear at top level (between segments) *)
  List.iter
    (function
      | Flow.Parallel is ->
        List.iter
          (function
            | Flow.Switch _ -> Alcotest.fail "switch inside a segment block"
            | _ -> ())
          is
      | _ -> ())
    p.Flow.instrs

let test_compute_follows_write () =
  (* within a block, every Compute is preceded by a Write_weights for the
     same sub-operator (same label) *)
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 3000 ] () in
  let p = compile g in
  List.iter
    (function
      | Flow.Parallel is ->
        let seen = Hashtbl.create 8 in
        List.iter
          (function
            | Flow.Write_weights { label; _ } -> Hashtbl.replace seen label ()
            | Flow.Compute { label; _ } ->
              Alcotest.(check bool) ("write precedes compute: " ^ label) true
                (Hashtbl.mem seen label)
            | _ -> ())
          is
      | _ -> ())
    p.Flow.instrs

let test_vector_anchoring () =
  (* relu between two gemms lands between their compute instructions *)
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 64; 64; 64 ] () in
  let p = compile g in
  let seq = all_instrs p in
  let index_of f =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if f x then i else go (i + 1) rest
    in
    go 0 seq
  in
  let first_compute =
    index_of (function Flow.Compute { node_id; _ } -> node_id = 0 | _ -> false)
  in
  let relu =
    index_of (function Flow.Vector_op { node_id; _ } -> node_id = 1 | _ -> false)
  in
  let second_compute =
    index_of (function Flow.Compute { node_id; _ } -> node_id = 2 | _ -> false)
  in
  Alcotest.(check bool) "all present" true
    (first_compute >= 0 && relu >= 0 && second_compute >= 0);
  Alcotest.(check bool) "relu between the gemms" true
    (first_compute < relu && relu < second_compute)

let test_loads_target_memory_arrays_when_allocated () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 1024; 1024 ] () in
  let r = Cmswitch.compile chip g in
  let has_mem =
    List.exists
      (fun (sp : Cim_compiler.Placement.seg_place) ->
        List.exists
          (fun (op : Cim_compiler.Placement.op_place) ->
            op.Cim_compiler.Placement.mem_in <> [])
          sp.Cim_compiler.Placement.ops)
      r.Cmswitch.places
  in
  if has_mem then begin
    let found =
      List.exists
        (function
          | Flow.Load { dst = Flow.Mem_arrays _; _ } -> true
          | _ -> false)
        (all_instrs r.Cmswitch.program)
    in
    Alcotest.(check bool) "loads stage into memory arrays" true found
  end

let test_final_stores () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 64; 32 ] () in
  let p = compile g in
  (* the program ends with a store of each graph output to main memory *)
  match List.rev p.Flow.instrs with
  | Flow.Store { tensor; dst = Flow.Main_memory; _ } :: _ ->
    Alcotest.(check bool) "stores a graph output" true
      (String.length tensor > 0)
  | _ -> Alcotest.fail "expected a trailing store of the graph output"

let test_preamble_vector_ops () =
  (* a vector op with no CIM ancestor (input reshape) runs before any
     segment *)
  let module B = Cim_nnir.Builder in
  let b = B.create "pre" in
  let x = B.input b "x" (Cim_tensor.Shape.of_list [ 4; 16 ]) in
  let flat = B.reshape b x [ 2; 32 ] in
  let out = B.linear ~bias:false b flat ~in_dim:32 ~out_dim:8 ~prefix:"fc" in
  let g = B.finish b ~outputs:[ out ] in
  let p = compile g in
  match p.Flow.instrs with
  | Flow.Vector_op { node_id = 0; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected the reshape in the preamble"

let test_slices_partition_output () =
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 256; 5000 ] () in
  let p = compile g in
  let slices =
    List.filter_map
      (function
        | Flow.Compute { node_id = 0; slice; _ } -> Some (slice.Flow.lo, slice.Flow.hi)
        | _ -> None)
      (all_instrs p)
  in
  Alcotest.(check bool) "multiple slices" true (List.length slices > 1);
  let sorted = List.sort compare slices in
  let covered =
    List.fold_left
      (fun pos (lo, hi) -> if lo = pos then hi else -1000000)
      0 sorted
  in
  Alcotest.(check int) "contiguous cover of 5000 columns" 5000 covered

let suite =
  ( "codegen",
    [
      Alcotest.test_case "program structure" `Quick test_structure;
      Alcotest.test_case "write precedes compute" `Quick test_compute_follows_write;
      Alcotest.test_case "vector anchoring" `Quick test_vector_anchoring;
      Alcotest.test_case "loads into memory arrays" `Quick test_loads_target_memory_arrays_when_allocated;
      Alcotest.test_case "final stores" `Quick test_final_stores;
      Alcotest.test_case "preamble vector ops" `Quick test_preamble_vector_ops;
      Alcotest.test_case "slices partition the output" `Quick test_slices_partition_output;
    ] )
