(* Tests for the hardware abstraction (DEHA) and cost-model primitives. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Cost = Cim_arch.Cost
module Mode = Cim_arch.Mode

let chip = Config.dynaplasia

let test_mode () =
  Alcotest.(check string) "tom" "TOM" (Mode.transition_to_string Mode.To_memory);
  Alcotest.(check string) "toc" "TOC" (Mode.transition_to_string Mode.To_compute);
  Alcotest.(check bool) "no-op transition" true
    (Mode.transition ~from:Mode.Memory ~to_:Mode.Memory = None);
  (match Mode.transition ~from:Mode.Memory ~to_:Mode.Compute with
  | Some t -> Alcotest.(check bool) "apply" true (Mode.apply t = Mode.Compute)
  | None -> Alcotest.fail "expected a transition")

let test_presets_valid () =
  List.iter
    (fun (_, c) -> ignore (Chip.validate c))
    Config.presets;
  Alcotest.(check int) "dynaplasia arrays (Table 2)" 96 chip.Chip.n_arrays;
  Alcotest.(check int) "array size" 320 chip.Chip.rows;
  Alcotest.(check int) "buffer 80 KiB" (80 * 1024) chip.Chip.buffer_bytes;
  Alcotest.(check (float 0.)) "1-cycle switch" 1. chip.Chip.l_m2c

let test_validation_failures () =
  let expect name f =
    match f () with
    | exception Chip.Invalid_config _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_config" name
  in
  expect "zero arrays" (fun () -> Chip.validate { chip with Chip.n_arrays = 0 });
  expect "negative bandwidth" (fun () ->
      Chip.validate { chip with Chip.extern_bw = -1. });
  expect "cell/weight mismatch" (fun () ->
      Chip.validate { chip with Chip.cols = 321 });
  expect "grid too wide" (fun () ->
      Chip.validate { chip with Chip.grid_cols = 97 })

let test_derived () =
  Alcotest.(check (float 0.)) "d_main" 320. (Chip.d_main chip);
  Alcotest.(check int) "weight cols" 40 (Chip.weight_cols chip);
  Alcotest.(check int) "weights per array" (320 * 40) (Chip.array_weight_capacity chip);
  Alcotest.(check int) "scratchpad bytes" (320 * 320 / 8) (Chip.array_mem_bytes chip);
  Alcotest.(check int) "chip capacity" (96 * 320 * 40) (Chip.chip_weight_capacity chip);
  Alcotest.(check (float 0.)) "cycles to us" 2. (Chip.cycles_to_us chip 2000.)

let test_coords () =
  let c0 = Chip.coord_of_index chip 0 in
  Alcotest.(check bool) "origin" true (c0.Chip.x = 0 && c0.Chip.y = 0);
  Alcotest.(check int) "all coords" 96 (List.length (Chip.all_coords chip));
  match Chip.coord_of_index chip 96 with
  | exception Chip.Invalid_config _ -> ()
  | _ -> Alcotest.fail "expected out-of-range"

let prop_coord_roundtrip =
  QCheck.Test.make ~name:"coord index round-trip" ~count:200
    QCheck.(int_bound (chip.Chip.n_arrays - 1))
    (fun i -> Chip.index_of_coord chip (Chip.coord_of_index chip i) = i)

let test_cost_op_latency () =
  (* compute-bound: 1 array at OP_cim = 1600 MAC/cy over 16000 MACs *)
  Alcotest.(check (float 1e-9)) "compute bound" 10.
    (Cost.op_latency chip ~ops:16000. ~ai:1e9 ~com:1 ~mem:0);
  (* memory-bound: ai 1, no memory arrays -> rate = d_main = 320 *)
  Alcotest.(check (float 1e-9)) "memory bound" 100.
    (Cost.op_latency chip ~ops:32000. ~ai:1. ~com:96 ~mem:0);
  (* memory arrays raise the memory-side rate: (1*40 + 320) * 1 = 360 *)
  Alcotest.(check (float 1e-6)) "one memory array" (32000. /. 360.)
    (Cost.op_latency chip ~ops:32000. ~ai:1. ~com:96 ~mem:1);
  Alcotest.(check (float 0.)) "zero work" 0.
    (Cost.op_latency chip ~ops:0. ~ai:0. ~com:0 ~mem:0);
  Alcotest.(check bool) "no compute arrays -> infinite" true
    (Cost.op_latency chip ~ops:1. ~ai:1e9 ~com:0 ~mem:0 = infinity)

let test_cost_other () =
  Alcotest.(check (float 0.)) "switch (Eq. 1)" 7.
    (Cost.switch_latency chip ~m2c:3 ~c2m:4);
  Alcotest.(check (float 0.)) "rewrite (Eq. 2)" (16. *. 5.)
    (Cost.weight_rewrite_latency chip ~max_com:5);
  Alcotest.(check (float 0.)) "writeback" 10. (Cost.writeback_latency chip ~bytes:640);
  Alcotest.(check (float 0.)) "dma" 10. (Cost.dma_load_latency chip ~bytes:640);
  Alcotest.check_raises "negative switch count"
    (Invalid_argument "Cost.switch_latency: negative count") (fun () ->
      ignore (Cost.switch_latency chip ~m2c:(-1) ~c2m:0))

let prop_latency_monotonic_in_mem =
  QCheck.Test.make ~name:"latency non-increasing in memory arrays" ~count:200
    QCheck.(triple (int_range 1 96) (int_range 0 95) (float_range 0.1 100.))
    (fun (com, mem, ai) ->
      let ops = 1e6 in
      Cost.op_latency chip ~ops ~ai ~com ~mem:(mem + 1)
      <= Cost.op_latency chip ~ops ~ai ~com ~mem +. 1e-9)

let prop_latency_monotonic_in_com =
  QCheck.Test.make ~name:"latency non-increasing in compute arrays" ~count:200
    QCheck.(triple (int_range 1 95) (int_range 0 96) (float_range 0.1 100.))
    (fun (com, mem, ai) ->
      let ops = 1e6 in
      Cost.op_latency chip ~ops ~ai ~com:(com + 1) ~mem
      <= Cost.op_latency chip ~ops ~ai ~com ~mem +. 1e-9)

let test_scaled () =
  let c = Config.scaled chip ~n_arrays:100 in
  Alcotest.(check int) "scaled arrays" 100 c.Chip.n_arrays;
  Alcotest.(check bool) "same rates" true (c.Chip.op_cim = chip.Chip.op_cim);
  Alcotest.(check int) "coords cover" 100 (List.length (Chip.all_coords c))

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "arch",
    [
      Alcotest.test_case "modes" `Quick test_mode;
      Alcotest.test_case "presets valid" `Quick test_presets_valid;
      Alcotest.test_case "validation failures" `Quick test_validation_failures;
      Alcotest.test_case "derived quantities" `Quick test_derived;
      Alcotest.test_case "coordinates" `Quick test_coords;
      qtest prop_coord_roundtrip;
      Alcotest.test_case "op latency (Eq. 10)" `Quick test_cost_op_latency;
      Alcotest.test_case "switch/rewrite/dma costs" `Quick test_cost_other;
      qtest prop_latency_monotonic_in_mem;
      qtest prop_latency_monotonic_in_com;
      Alcotest.test_case "scaled preset" `Quick test_scaled;
    ] )
