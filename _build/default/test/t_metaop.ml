(* Tests for the meta-operator flow: validation of Fig. 13 programs,
   pretty-printer/parser round-trip (including on random programs), and
   switch accounting. *)

module Flow = Cim_metaop.Flow
module Parse = Cim_metaop.Parse
module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode

let chip = Cim_arch.Config.dynaplasia
let c x y = { Chip.x; y }
let sl lo hi = { Flow.lo; hi }

let prog instrs = { Flow.source = "test"; instrs }

let compute ?(arrays = [ c 0 0 ]) ?(mem = []) ?(slice = sl 0 4) () =
  Flow.Compute
    { label = "op"; node_id = 0; arrays; mem_arrays = mem; inputs = [ "x" ];
      output = "y"; slice; macs = 100.; ai = 2. }

let test_validate_ok () =
  let p =
    prog
      [
        Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
        Flow.Parallel
          [
            Flow.Write_weights
              { label = "op"; node_id = 0; arrays = [ c 0 0 ]; slice = sl 0 4;
                bytes = 16; in_place = false };
            Flow.Load { tensor = "x"; src = Flow.Main_memory; dst = Flow.Buffer; bytes = 4 };
            compute ();
            Flow.Store { tensor = "y"; src = Flow.Buffer; dst = Flow.Main_memory; bytes = 4 };
            Flow.Vector_op { label = "relu"; node_id = 1; inputs = [ "y" ]; output = "z" };
          ];
      ]
  in
  Alcotest.(check bool) "valid" true (Flow.validate chip p = Ok ())

let expect_invalid name p =
  match Flow.validate chip p with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: expected validation failure" name

let test_validate_failures () =
  expect_invalid "coord out of range" (prog [ compute ~arrays:[ c 50 50 ] () ]);
  expect_invalid "both modes in one op"
    (prog [ compute ~arrays:[ c 0 0 ] ~mem:[ c 0 0 ] () ]);
  expect_invalid "both modes in one segment"
    (prog
       [ Flow.Parallel
           [ compute ~arrays:[ c 0 0 ] ();
             compute ~arrays:[ c 1 0 ] ~mem:[ c 0 0 ] () ] ]);
  expect_invalid "nested parallel" (prog [ Flow.Parallel [ Flow.Parallel [] ] ]);
  expect_invalid "malformed slice" (prog [ compute ~slice:(sl 4 4) () ]);
  expect_invalid "negative bytes"
    (prog [ Flow.Load { tensor = "x"; src = Flow.Main_memory; dst = Flow.Buffer; bytes = -1 } ])

let test_switch_accounting () =
  let p =
    prog
      [
        Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0; c 1 0 ] };
        Flow.Parallel [ Flow.Switch { target = Mode.To_memory; arrays = [ c 2 0 ] } ];
      ]
  in
  Alcotest.(check int) "count" 3 (Flow.count_switches p);
  let kinds = List.map fst (Flow.switched_arrays p) in
  Alcotest.(check int) "toc count" 2
    (List.length (List.filter (fun k -> k = Mode.To_compute) kinds))

let test_roundtrip_manual () =
  let p =
    prog
      [
        Flow.Switch { target = Mode.To_memory; arrays = [ c 3 4 ] };
        Flow.Parallel
          [
            Flow.Write_weights
              { label = "fc[0:40)"; node_id = 7; arrays = [ c 0 0; c 1 1 ];
                slice = sl 0 40; bytes = 12800; in_place = true };
            Flow.Load
              { tensor = "act"; src = Flow.Main_memory;
                dst = Flow.Mem_arrays [ c 3 4 ]; bytes = 1024 };
            Flow.Compute
              { label = "fc[0:40)"; node_id = 7; arrays = [ c 0 0; c 1 1 ];
                mem_arrays = [ c 3 4 ]; inputs = [ "act" ]; output = "out";
                slice = sl 0 40; macs = 1234.5; ai = 0.75 };
            Flow.Store
              { tensor = "out"; src = Flow.Mem_arrays [ c 3 4 ];
                dst = Flow.Main_memory; bytes = 40 };
            Flow.Vector_op { label = "softmax"; node_id = 8; inputs = [ "out" ]; output = "p" };
          ];
      ]
  in
  Alcotest.(check bool) "roundtrip equal" true
    (Parse.program_of_string (Flow.to_string p) = p)

let test_parse_errors () =
  let bad s =
    match Parse.program_of_string s with
    | exception Parse.Error _ -> ()
    | _ -> Alcotest.failf "expected parse error: %s" s
  in
  bad "";
  bad "flow \"x\" CM.switch(SIDEWAYS, [(0,0)])";
  bad "flow \"x\" BOGUS.op(1)";
  bad "flow \"x\" CM.switch(TOM, [(0,0)"

(* random programs built from a tiny combinator grammar *)
let gen_coord = QCheck.Gen.(map2 (fun x y -> { Chip.x; y }) (int_range 0 9) (int_range 0 7))

let gen_leaf =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map2
            (fun t arrays -> Flow.Switch { target = t; arrays })
            (oneofl [ Mode.To_compute; Mode.To_memory ])
            (list_size (int_range 1 4) gen_coord) );
        ( 3,
          map2
            (fun arrays (lo, w) ->
              Flow.Compute
                { label = "k"; node_id = 1; arrays; mem_arrays = [];
                  inputs = [ "a"; "b" ]; output = "o"; slice = sl lo (lo + w + 1);
                  macs = 42.; ai = 1.5 })
            (list_size (int_range 1 3) gen_coord)
            (pair (int_range 0 10) (int_range 0 10)) );
        ( 2,
          map
            (fun bytes ->
              Flow.Load { tensor = "t"; src = Flow.Main_memory; dst = Flow.Buffer; bytes })
            (int_range 0 10000) );
        ( 1,
          map
            (fun out -> Flow.Vector_op { label = "v"; node_id = 2; inputs = [ "o" ]; output = out })
            (oneofl [ "z"; "w" ]) );
      ])

let gen_program =
  QCheck.Gen.(
    map
      (fun leaves -> prog [ Flow.Parallel leaves ])
      (list_size (int_range 1 8) gen_leaf))

let prop_roundtrip_random =
  QCheck.Test.make ~name:"parse . print = id on random programs" ~count:200
    (QCheck.make gen_program)
    (fun p -> Parse.program_of_string (Flow.to_string p) = p)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "metaop",
    [
      Alcotest.test_case "validate accepts good program" `Quick test_validate_ok;
      Alcotest.test_case "validate rejects bad programs" `Quick test_validate_failures;
      Alcotest.test_case "switch accounting" `Quick test_switch_accounting;
      Alcotest.test_case "round-trip manual program" `Quick test_roundtrip_manual;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      qtest prop_roundtrip_random;
    ] )
