(* Tests for the graph optimisation passes, including a semantics-preserving
   fuzz: random graphs are optimised and (a) executed against the
   unoptimised reference, (b) compiled and functionally simulated. *)

module Graph = Cim_nnir.Graph
module Op = Cim_nnir.Op
module Attr = Cim_nnir.Attr
module B = Cim_nnir.Builder
module Passes = Cim_nnir.Passes
module Exec = Cim_nnir.Exec
module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor
module Rng = Cim_util.Rng

let node id name op inputs outputs attrs =
  { Graph.id; name; op; inputs; outputs; attrs }

let mk ?(inputs = [ ("x", [ 2; 3 ]) ]) ~nodes ~outputs () =
  Graph.create ~name:"t" ~nodes ~inputs ~outputs ~initializers:[]

let test_dce () =
  let g =
    mk
      ~nodes:
        [ node 0 "live" Op.Relu [ "x" ] [ "y" ] [];
          node 1 "dead" Op.Gelu [ "x" ] [ "z" ] [];
          node 2 "dead2" Op.Relu [ "z" ] [ "w" ] [] ]
      ~outputs:[ "y" ] ()
  in
  let g' = Passes.dead_code_elimination g in
  Alcotest.(check int) "only the live node survives" 1 (Graph.node_count g');
  Alcotest.(check (list string)) "outputs kept" [ "y" ] g'.Graph.graph_outputs

let test_fuse_transposes () =
  let g =
    mk
      ~nodes:
        [ node 0 "t1" Op.Transpose [ "x" ] [ "a" ] [ ("perm", Attr.Ints [ 1; 0 ]) ];
          node 1 "t2" Op.Transpose [ "a" ] [ "b" ] [ ("perm", Attr.Ints [ 1; 0 ]) ];
          node 2 "use" Op.Relu [ "b" ] [ "y" ] [] ]
      ~outputs:[ "y" ] ()
  in
  let g' = Passes.dead_code_elimination (Passes.fuse_transposes g) in
  (* the two transposes cancel *)
  Alcotest.(check int) "identity pair erased" 1 (Graph.node_count g');
  (* non-cancelling pair fuses to one *)
  let g2 =
    mk
      ~inputs:[ ("x", [ 2; 3; 4 ]) ]
      ~nodes:
        [ node 0 "t1" Op.Transpose [ "x" ] [ "a" ] [ ("perm", Attr.Ints [ 1; 2; 0 ]) ];
          node 1 "t2" Op.Transpose [ "a" ] [ "b" ] [ ("perm", Attr.Ints [ 0; 2; 1 ]) ];
          node 2 "use" Op.Relu [ "b" ] [ "y" ] [] ]
      ~outputs:[ "y" ] ()
  in
  let g2' = Passes.dead_code_elimination (Passes.fuse_transposes g2) in
  Alcotest.(check int) "pair fused" 2 (Graph.node_count g2')

let test_fuse_reshapes_and_identity () =
  let g =
    mk
      ~inputs:[ ("x", [ 2; 6 ]) ]
      ~nodes:
        [ node 0 "r1" Op.Reshape [ "x" ] [ "a" ] [ ("shape", Attr.Ints [ 3; 4 ]) ];
          node 1 "r2" Op.Reshape [ "a" ] [ "b" ] [ ("shape", Attr.Ints [ 2; 6 ]) ];
          node 2 "use" Op.Relu [ "b" ] [ "y" ] [] ]
      ~outputs:[ "y" ] ()
  in
  let g' = Passes.optimize g in
  (* reshape chain collapses to identity and disappears entirely *)
  Alcotest.(check int) "reshapes gone" 1 (Graph.node_count g')

let test_cse () =
  let g =
    mk
      ~nodes:
        [ node 0 "a" Op.Relu [ "x" ] [ "r1" ] [];
          node 1 "b" Op.Relu [ "x" ] [ "r2" ] [];
          node 2 "sum" Op.Add [ "r1"; "r2" ] [ "y" ] [] ]
      ~outputs:[ "y" ] ()
  in
  let g' = Passes.optimize g in
  Alcotest.(check int) "duplicate relu merged" 2 (Graph.node_count g')

let test_optimize_preserves_outputs_produced_by_removed () =
  (* an identity reshape that *is* the graph output must not break *)
  let g =
    mk
      ~inputs:[ ("x", [ 2; 6 ]) ]
      ~nodes:
        [ node 0 "r" Op.Reshape [ "x" ] [ "y" ] [ ("shape", Attr.Ints [ 2; 6 ]) ] ]
      ~outputs:[ "y" ] ()
  in
  let g' = Passes.optimize g in
  (* the node is kept because its output is a graph output *)
  Alcotest.(check int) "kept" 1 (Graph.node_count g')

let test_optimize_real_models () =
  List.iter
    (fun g ->
      let g' = Passes.optimize g in
      Alcotest.(check bool)
        (Passes.stats g g')
        true
        (Graph.node_count g' <= Graph.node_count g);
      (* outputs survive *)
      Alcotest.(check int) "same output arity"
        (List.length g.Graph.graph_outputs)
        (List.length g'.Graph.graph_outputs))
    [
      (Option.get (Cim_models.Zoo.find "bert-large")).Cim_models.Zoo.build
        (Cim_models.Workload.prefill ~batch:1 8);
      Cim_models.Cnn.resnet18 ~batch:1;
    ]

(* --- fuzz: random valued graphs, optimisation preserves semantics and the
   compiled flow still simulates correctly --- *)

type layer = Dense of int | Act of Op.t | Residual | Shuffle

let gen_layers =
  QCheck.Gen.(
    list_size (int_range 1 6)
      (frequency
         [
           (3, map (fun d -> Dense d) (int_range 2 12));
           (3, map (fun o -> Act o) (oneofl [ Op.Relu; Op.Gelu; Op.Silu; Op.Softmax ]));
           (1, return Residual);
           (1, return Shuffle);
         ]))

let build_random (seed, layers) =
  let rng = Rng.create seed in
  let b = B.create "fuzz" in
  let d0 = 4 in
  let x = B.input b "x" (Shape.of_list [ 2; d0 ]) in
  let cur = ref x and dim = ref d0 in
  List.iter
    (fun layer ->
      match layer with
      | Dense d ->
        cur := B.linear ~bias:false ~value_rng:rng b !cur ~in_dim:!dim ~out_dim:d
                 ~prefix:"fc";
        dim := d
      | Act op -> cur := B.node b op [ !cur ]
      | Residual -> cur := B.add b !cur !cur
      | Shuffle ->
        (* transpose twice: fodder for the fusion passes *)
        let t1 = B.transpose b !cur [ 1; 0 ] in
        cur := B.transpose b t1 [ 1; 0 ])
    layers;
  (B.finish b ~outputs:[ !cur ], rng)

let arb_random_graph =
  QCheck.make QCheck.Gen.(pair (int_range 0 10_000) gen_layers)

let prop_optimize_preserves_semantics =
  QCheck.Test.make ~name:"optimize preserves execution semantics" ~count:60
    arb_random_graph
    (fun spec ->
      let g, rng = build_random spec in
      let g' = Cim_nnir.Passes.optimize g in
      let x = Tensor.rand rng (Shape.of_list [ 2; 4 ]) ~lo:(-1.) ~hi:1. in
      let out = Exec.run_outputs g [ ("x", x) ] in
      let out' = Exec.run_outputs g' [ ("x", x) ] in
      List.for_all2
        (fun (_, a) (_, b) -> Tensor.equal ~eps:1e-9 a b)
        out out')

let prop_optimized_graph_compiles_and_simulates =
  QCheck.Test.make ~name:"optimized graphs compile and simulate faithfully"
    ~count:25 arb_random_graph
    (fun spec ->
      let g, rng = build_random spec in
      let g' = Cim_nnir.Passes.optimize g in
      let chip = Cim_arch.Config.dynaplasia in
      let r = Cim_compiler.Cmswitch.compile chip g' in
      let x = Tensor.rand rng (Shape.of_list [ 2; 4 ]) ~lo:(-1.) ~hi:1. in
      let rep =
        Cim_sim.Functional.run chip g' r.Cim_compiler.Cmswitch.program
          ~inputs:[ ("x", x) ]
      in
      rep.Cim_sim.Functional.max_rel_err < 0.30)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "passes",
    [
      Alcotest.test_case "dead code elimination" `Quick test_dce;
      Alcotest.test_case "transpose fusion" `Quick test_fuse_transposes;
      Alcotest.test_case "reshape fusion + identity" `Quick test_fuse_reshapes_and_identity;
      Alcotest.test_case "common subexpressions" `Quick test_cse;
      Alcotest.test_case "output-producing nodes kept" `Quick
        test_optimize_preserves_outputs_produced_by_removed;
      Alcotest.test_case "real models shrink" `Slow test_optimize_real_models;
      qtest prop_optimize_preserves_semantics;
      qtest prop_optimized_graph_compiles_and_simulates;
    ] )
