(* Tests for the simulator: the per-array state machine's legality checks,
   functional simulation against the float reference (the §5.1
   PyTorch-comparison step), and timing-simulator consistency with the
   compiler's own cost roll-up. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Mode = Cim_arch.Mode
module Flow = Cim_metaop.Flow
module Machine = Cim_sim.Machine
module Functional = Cim_sim.Functional
module Timing = Cim_sim.Timing
module Cmswitch = Cim_compiler.Cmswitch
module Plan = Cim_compiler.Plan
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Rng = Cim_util.Rng

let chip = Config.dynaplasia
let c x y = { Chip.x; y }

(* --- machine --- *)

let test_machine_switching () =
  let m = Machine.create chip () in
  Alcotest.(check bool) "starts in memory mode" true (Machine.mode m (c 0 0) = Mode.Memory);
  Machine.switch m Mode.To_compute (c 0 0);
  Alcotest.(check bool) "switched" true (Machine.mode m (c 0 0) = Mode.Compute);
  (match Machine.switch m Mode.To_compute (c 0 0) with
  | exception Machine.Fault _ -> ()
  | () -> Alcotest.fail "redundant switch must fault");
  Alcotest.(check (pair int int)) "switch counts" (1, 0) (Machine.switch_counts m)

let test_machine_weights_and_data () =
  let m = Machine.create chip () in
  (* weights into a memory-mode array: fault *)
  (match Machine.write_weights m (c 1 0) ~node_id:0 ~lo:0 ~hi:4 with
  | exception Machine.Fault _ -> ()
  | () -> Alcotest.fail "weight write in memory mode must fault");
  Machine.switch m Mode.To_compute (c 1 0);
  Machine.write_weights m (c 1 0) ~node_id:0 ~lo:0 ~hi:4;
  Machine.check_compute m (c 1 0) ~node_id:0;
  (* wrong node's weights *)
  (match Machine.check_compute m (c 1 0) ~node_id:9 with
  | exception Machine.Fault _ -> ()
  | () -> Alcotest.fail "stale weights must fault");
  (* data staging needs memory mode *)
  (match Machine.stage_data m (c 1 0) "x" with
  | exception Machine.Fault _ -> ()
  | () -> Alcotest.fail "stage into compute array must fault");
  Machine.stage_data m (c 2 0) "x";
  Machine.check_memory m (c 2 0);
  (* switching away drops staged data but keeps weights *)
  Machine.switch m Mode.To_compute (c 2 0);
  Alcotest.(check bool) "data cleared" true (Machine.content m (c 2 0) = Machine.Empty);
  Machine.switch m Mode.To_memory (c 1 0);
  Alcotest.(check bool) "weights survive" true
    (match Machine.content m (c 1 0) with Machine.Weights _ -> true | _ -> false)

(* --- functional simulation of compiled models --- *)

let functional_check ?(tol = 0.05) name graph inputs =
  let r = Cmswitch.compile chip graph in
  Alcotest.(check bool) (name ^ " flow valid") true
    (Flow.validate chip r.Cmswitch.program = Ok ());
  let rep = Functional.run chip graph r.Cmswitch.program ~inputs in
  Alcotest.(check bool)
    (Printf.sprintf "%s matches reference (rel err %.4f)" name
       rep.Functional.max_rel_err)
    true
    (rep.Functional.max_rel_err < tol);
  rep

let test_functional_mlp () =
  let rng = Rng.create 21 in
  let g = Cim_models.Mlp.build ~rng ~batch:2 ~dims:[ 64; 128; 32 ] () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 64 ]) ~lo:(-1.) ~hi:1. in
  let rep = functional_check "mlp" g [ ("x", x) ] in
  Alcotest.(check bool) "computed both gemms" true (rep.Functional.compute_instrs >= 2)

let test_functional_cnn () =
  let rng = Rng.create 22 in
  let g = Cim_models.Cnn.tiny_cnn ~rng ~batch:2 () in
  let x = Tensor.rand rng (Shape.of_list [ 2; 2; 8; 8 ]) ~lo:(-1.) ~hi:1. in
  ignore (functional_check "tiny-cnn" g [ ("image", x) ])

(* hand-built attention block with weights, exercising dynamic matmuls,
   softmax interleaving and the per-head batched layout *)
let attention_graph rng ~seq ~d ~heads =
  let module B = Cim_nnir.Builder in
  let dh = d / heads in
  let b = B.create "attn" in
  let x = B.input b "x" (Shape.of_list [ seq; d ]) in
  let q = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"q" in
  let k = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"k" in
  let v = B.linear ~bias:false ~value_rng:rng b x ~in_dim:d ~out_dim:d ~prefix:"v" in
  let head y =
    let y = B.reshape b y [ seq; heads; dh ] in
    let y = B.transpose b y [ 1; 0; 2 ] in
    y
  in
  let q3 = head q and k3 = head k and v3 = head v in
  let kt = B.transpose b k3 [ 0; 2; 1 ] in
  let scores = B.matmul b q3 kt in
  let probs = B.softmax b scores in
  let ctx = B.matmul b probs v3 in
  let ctx = B.reshape b (B.transpose b ctx [ 1; 0; 2 ]) [ seq; d ] in
  let out = B.linear ~bias:false ~value_rng:rng b ctx ~in_dim:d ~out_dim:d ~prefix:"o" in
  B.finish b ~outputs:[ out ]

let test_functional_attention () =
  let rng = Rng.create 23 in
  let g = attention_graph rng ~seq:4 ~d:8 ~heads:2 in
  let x = Tensor.rand rng (Shape.of_list [ 4; 8 ]) ~lo:(-1.) ~hi:1. in
  (* attention chains several quantised matmuls; allow a looser budget *)
  ignore (functional_check ~tol:0.25 "attention" g [ ("x", x) ])

let test_functional_sliced_gemm () =
  (* a weight matrix wide enough to partition into several column slices:
     exercises the coverage tracking and slice assembly *)
  let rng = Rng.create 24 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 32; 3000 ] () in
  let r = Cmswitch.compile chip g in
  let sliced =
    Array.length r.Cmswitch.ops > 1
    && Array.for_all (fun (o : Cim_compiler.Opinfo.t) -> o.Cim_compiler.Opinfo.node_id = 0)
         r.Cmswitch.ops
  in
  Alcotest.(check bool) "operator was partitioned" true sliced;
  let x = Tensor.rand rng (Shape.of_list [ 1; 32 ]) ~lo:(-1.) ~hi:1. in
  ignore (functional_check "sliced gemm" g [ ("x", x) ])

let test_functional_rejects_broken_program () =
  let rng = Rng.create 25 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 8; 8 ] () in
  let r = Cmswitch.compile chip g in
  (* strip the switches: computing on memory-mode arrays must fault *)
  let broken =
    { r.Cmswitch.program with
      Flow.instrs =
        List.filter
          (function Flow.Switch _ -> false | _ -> true)
          r.Cmswitch.program.Flow.instrs }
  in
  let x = Tensor.rand rng (Shape.of_list [ 1; 8 ]) ~lo:(-1.) ~hi:1. in
  match Functional.run chip g broken ~inputs:[ ("x", x) ] with
  | exception Machine.Fault _ -> ()
  | exception Functional.Error _ -> ()
  | _ -> Alcotest.fail "expected a fault on the unswitched program"

let test_functional_missing_slice () =
  let rng = Rng.create 26 in
  let g = Cim_models.Mlp.build ~rng ~batch:1 ~dims:[ 32; 3000 ] () in
  let r = Cmswitch.compile chip g in
  (* drop one compute instruction: coverage check must complain *)
  let dropped = ref false in
  let rec drop (i : Flow.instr) =
    match i with
    | Flow.Parallel is ->
      [ Flow.Parallel
          (List.concat_map
             (fun x ->
               match x with
               | Flow.Compute _ when not !dropped ->
                 dropped := true;
                 []
               | other -> drop other)
             is) ]
    | other -> [ other ]
  in
  let broken =
    { r.Cmswitch.program with
      Flow.instrs = List.concat_map drop r.Cmswitch.program.Flow.instrs }
  in
  Alcotest.(check bool) "dropped one" true !dropped;
  let x = Tensor.rand rng (Shape.of_list [ 1; 32 ]) ~lo:(-1.) ~hi:1. in
  match Functional.run chip g broken ~inputs:[ ("x", x) ] with
  | exception Functional.Error _ -> ()
  | _ -> Alcotest.fail "expected a coverage error"

(* --- timing --- *)

let test_timing_matches_schedule () =
  List.iter
    (fun g ->
      let r = Cmswitch.compile chip g in
      let t = Timing.run chip r.Cmswitch.program in
      let sim = t.Timing.cycles.Timing.total in
      let total = r.Cmswitch.schedule.Plan.total_cycles in
      let wb = r.Cmswitch.schedule.Plan.writeback in
      let eps = 1e-6 *. Float.max 1. total in
      Alcotest.(check bool)
        (Printf.sprintf "timing (%g) ~ schedule (%g, wb estimate %g)" sim total wb)
        true
        (sim <= total +. eps && total <= sim +. wb +. eps);
      Alcotest.(check int) "segment count" (List.length r.Cmswitch.places)
        t.Timing.segments)
    [
      Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 256 ] ();
      Cim_models.Cnn.tiny_cnn ~batch:1 ();
      Cim_models.Transformer.build_layer Cim_models.Transformer.bert_large
        (Cim_models.Workload.prefill ~batch:1 32)
        ~layer_index:0;
    ]

let test_timing_writeback_semantics () =
  (* a dirty store into memory arrays followed by a switch of those arrays
     must charge a write-back *)
  let p =
    { Flow.source = "wb";
      instrs =
        [
          Flow.Store
            { tensor = "t"; src = Flow.Buffer; dst = Flow.Mem_arrays [ c 0 0 ];
              bytes = 640 };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
        ] }
  in
  let t = Timing.run chip p in
  Alcotest.(check (float 1e-9)) "flush charged" 10. t.Timing.cycles.Timing.writeback;
  (* clean load displaced -> free *)
  let p2 =
    { Flow.source = "clean";
      instrs =
        [
          Flow.Load
            { tensor = "t"; src = Flow.Main_memory; dst = Flow.Mem_arrays [ c 0 0 ];
              bytes = 640 };
          Flow.Switch { target = Mode.To_compute; arrays = [ c 0 0 ] };
        ] }
  in
  let t2 = Timing.run chip p2 in
  Alcotest.(check (float 0.)) "clean copy free" 0. t2.Timing.cycles.Timing.writeback

let test_timing_empty () =
  let t = Timing.run chip { Flow.source = "empty"; instrs = [] } in
  Alcotest.(check (float 0.)) "empty program" 0. t.Timing.cycles.Timing.total;
  Alcotest.(check (float 0.)) "no switch share" 0. t.Timing.switch_share

let suite =
  ( "sim",
    [
      Alcotest.test_case "machine switching" `Quick test_machine_switching;
      Alcotest.test_case "machine weights/data" `Quick test_machine_weights_and_data;
      Alcotest.test_case "functional: mlp" `Quick test_functional_mlp;
      Alcotest.test_case "functional: tiny cnn" `Quick test_functional_cnn;
      Alcotest.test_case "functional: attention" `Quick test_functional_attention;
      Alcotest.test_case "functional: sliced gemm" `Quick test_functional_sliced_gemm;
      Alcotest.test_case "functional: faults on broken program" `Quick
        test_functional_rejects_broken_program;
      Alcotest.test_case "functional: missing slice detected" `Quick
        test_functional_missing_slice;
      Alcotest.test_case "timing = schedule" `Slow test_timing_matches_schedule;
      Alcotest.test_case "timing write-back semantics" `Quick test_timing_writeback_semantics;
      Alcotest.test_case "timing empty program" `Quick test_timing_empty;
    ] )
