(* Tests for Cim_tensor.Shape: indexing arithmetic, broadcasting,
   concatenation. *)

module Shape = Cim_tensor.Shape

let shape = Alcotest.(list int)

let test_basics () =
  Alcotest.(check int) "numel" 24 (Shape.numel [ 2; 3; 4 ]);
  Alcotest.(check int) "numel scalar" 1 (Shape.numel Shape.scalar);
  Alcotest.(check int) "rank" 3 (Shape.rank [ 2; 3; 4 ]);
  Alcotest.(check string) "to_string" "2x3x4" (Shape.to_string [ 2; 3; 4 ]);
  Alcotest.(check string) "scalar string" "scalar" (Shape.to_string []);
  Alcotest.check_raises "non-positive dim"
    (Invalid_argument "Shape.of_list: non-positive dimension") (fun () ->
      ignore (Shape.of_list [ 2; 0 ]))

let test_dim () =
  let s = [ 2; 3; 4 ] in
  Alcotest.(check int) "dim 0" 2 (Shape.dim s 0);
  Alcotest.(check int) "dim -1" 4 (Shape.dim s (-1));
  Alcotest.(check int) "dim -3" 2 (Shape.dim s (-3));
  Alcotest.check_raises "dim out of bounds"
    (Invalid_argument "Shape.dim: index out of bounds") (fun () ->
      ignore (Shape.dim s 3))

let test_strides_ravel () =
  let s = [ 2; 3; 4 ] in
  Alcotest.(check (array int)) "strides" [| 12; 4; 1 |] (Shape.strides s);
  Alcotest.(check int) "ravel" 23 (Shape.ravel s [ 1; 2; 3 ]);
  Alcotest.(check shape) "unravel" [ 1; 2; 3 ] (Shape.unravel s 23);
  Alcotest.check_raises "ravel bounds"
    (Invalid_argument "Shape.ravel: index out of bounds") (fun () ->
      ignore (Shape.ravel s [ 2; 0; 0 ]))

let test_broadcast () =
  let check_bc name a b expected =
    Alcotest.(check (option shape)) name expected (Shape.broadcast a b)
  in
  check_bc "same" [ 2; 3 ] [ 2; 3 ] (Some [ 2; 3 ]);
  check_bc "ones stretch" [ 2; 1 ] [ 1; 3 ] (Some [ 2; 3 ]);
  check_bc "rank lift" [ 3 ] [ 2; 3 ] (Some [ 2; 3 ]);
  check_bc "scalar" [] [ 4; 5 ] (Some [ 4; 5 ]);
  check_bc "incompatible" [ 2; 3 ] [ 2; 4 ] None

let test_concat_dim () =
  Alcotest.(check (option shape)) "axis 1" (Some [ 2; 5 ])
    (Shape.concat_dim [ 2; 3 ] [ 2; 2 ] ~axis:1);
  Alcotest.(check (option shape)) "mismatch" None
    (Shape.concat_dim [ 2; 3 ] [ 3; 2 ] ~axis:1);
  Alcotest.(check (option shape)) "bad axis" None
    (Shape.concat_dim [ 2; 3 ] [ 2; 3 ] ~axis:2)

let gen_shape =
  QCheck.Gen.(list_size (int_range 1 4) (int_range 1 5))

let arb_shape = QCheck.make ~print:Shape.to_string gen_shape

let prop_ravel_unravel =
  QCheck.Test.make ~name:"unravel . ravel = id on indices" ~count:300
    QCheck.(pair arb_shape (int_bound 10_000))
    (fun (s, seed) ->
      let n = Shape.numel s in
      let off = seed mod n in
      Shape.ravel s (Shape.unravel s off) = off)

let prop_broadcast_comm =
  QCheck.Test.make ~name:"broadcast is commutative" ~count:300
    QCheck.(pair arb_shape arb_shape)
    (fun (a, b) -> Shape.broadcast a b = Shape.broadcast b a)

let prop_broadcast_idem =
  QCheck.Test.make ~name:"broadcast with itself is identity" ~count:200 arb_shape
    (fun s -> Shape.broadcast s s = Some s)

let prop_strides_last_is_one =
  QCheck.Test.make ~name:"last stride is 1" ~count:200 arb_shape (fun s ->
      let st = Shape.strides s in
      Array.length st = 0 || st.(Array.length st - 1) = 1)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "shape",
    [
      Alcotest.test_case "basics" `Quick test_basics;
      Alcotest.test_case "dim indexing" `Quick test_dim;
      Alcotest.test_case "strides/ravel" `Quick test_strides_ravel;
      Alcotest.test_case "broadcast" `Quick test_broadcast;
      Alcotest.test_case "concat_dim" `Quick test_concat_dim;
      qtest prop_ravel_unravel;
      qtest prop_broadcast_comm;
      qtest prop_broadcast_idem;
      qtest prop_strides_last_is_one;
    ] )
