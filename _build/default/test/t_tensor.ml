(* Tests for the tensor substrate: reference operators against
   hand-computed values and independent naive implementations, numerical
   invariants as properties, and the int8 quantisation error bound. *)

module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor
module Ops = Cim_tensor.Ops
module Quant = Cim_tensor.Quant
module Rng = Cim_util.Rng

let t_of shape data = Tensor.create (Shape.of_list shape) data

let check_tensor ?(eps = 1e-6) name expected got =
  Alcotest.(check bool)
    (Printf.sprintf "%s (max diff %g)" name (Tensor.max_abs_diff expected got))
    true
    (Tensor.equal ~eps expected got)

(* --- creation / access --- *)

let test_create () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Tensor.create: data length does not match shape")
    (fun () -> ignore (t_of [ 2; 2 ] [| 1.; 2.; 3. |]));
  let t = Tensor.zeros (Shape.of_list [ 2; 3 ]) in
  Alcotest.(check int) "numel" 6 (Tensor.numel t);
  Tensor.set t [ 1; 2 ] 9.;
  Alcotest.(check (float 0.)) "set/get" 9. (Tensor.get t [ 1; 2 ]);
  Alcotest.(check (float 0.)) "get_flat" 9. (Tensor.get_flat t 5)

let test_reshape_shares () =
  let t = t_of [ 2; 2 ] [| 1.; 2.; 3.; 4. |] in
  let r = Tensor.reshape t (Shape.of_list [ 4 ]) in
  Tensor.set_flat r 0 7.;
  Alcotest.(check (float 0.)) "shared storage" 7. (Tensor.get t [ 0; 0 ]);
  let c = Tensor.copy t in
  Tensor.set_flat c 0 1.;
  Alcotest.(check (float 0.)) "copy is independent" 7. (Tensor.get t [ 0; 0 ])

(* --- matmul --- *)

let test_matmul_2d () =
  let a = t_of [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  let b = t_of [ 3; 2 ] [| 7.; 8.; 9.; 10.; 11.; 12. |] in
  check_tensor "2d matmul" (t_of [ 2; 2 ] [| 58.; 64.; 139.; 154. |]) (Ops.matmul a b)

let test_matmul_batched () =
  let a = t_of [ 2; 1; 2 ] [| 1.; 2.; 3.; 4. |] in
  let b = t_of [ 2; 2 ] [| 1.; 0.; 0.; 1. |] in
  check_tensor "batched x shared" a (Ops.matmul a b);
  let b2 = t_of [ 2; 2; 2 ] [| 1.; 0.; 0.; 1.; 2.; 0.; 0.; 2. |] in
  check_tensor "fully batched"
    (t_of [ 2; 1; 2 ] [| 1.; 2.; 6.; 8. |])
    (Ops.matmul a b2)

let test_matmul_bad_shapes () =
  Alcotest.check_raises "incompatible"
    (Invalid_argument "Ops.matmul: incompatible shapes 2x3 x 2x2") (fun () ->
      ignore (Ops.matmul (Tensor.zeros (Shape.of_list [ 2; 3 ]))
                (Tensor.zeros (Shape.of_list [ 2; 2 ]))))

(* --- element-wise / broadcasting --- *)

let test_add_broadcast () =
  let a = t_of [ 2; 2 ] [| 1.; 2.; 3.; 4. |] in
  let bias = t_of [ 2 ] [| 10.; 20. |] in
  check_tensor "row broadcast" (t_of [ 2; 2 ] [| 11.; 22.; 13.; 24. |]) (Ops.add a bias);
  check_tensor "mul scalar-ish"
    (t_of [ 2; 2 ] [| 10.; 40.; 30.; 80. |])
    (Ops.mul a (t_of [ 2 ] [| 10.; 20. |]))

let test_activations () =
  let x = t_of [ 4 ] [| -1.; 0.; 1.; 2. |] in
  check_tensor "relu" (t_of [ 4 ] [| 0.; 0.; 1.; 2. |]) (Ops.relu x);
  (* gelu(0) = 0, gelu(large) ~ identity, silu(0) = 0 *)
  let g = Ops.gelu x in
  Alcotest.(check (float 1e-9)) "gelu 0" 0. (Tensor.get g [ 1 ]);
  Alcotest.(check bool) "gelu 2 near 2" true (Float.abs (Tensor.get g [ 3 ] -. 1.954) < 0.01);
  Alcotest.(check (float 1e-9)) "silu 0" 0. (Tensor.get (Ops.silu x) [ 1 ])

(* --- softmax / norms --- *)

let rng = Rng.create 11

let prop_softmax_normalised =
  QCheck.Test.make ~name:"softmax rows sum to 1 and are positive" ~count:100
    QCheck.(pair (int_range 1 5) (int_range 1 8))
    (fun (rows, cols) ->
      let t = Tensor.rand rng (Shape.of_list [ rows; cols ]) ~lo:(-5.) ~hi:5. in
      let s = Ops.softmax t in
      let ok = ref true in
      for r = 0 to rows - 1 do
        let sum = ref 0. in
        for c = 0 to cols - 1 do
          let v = Tensor.get s [ r; c ] in
          if v < 0. then ok := false;
          sum := !sum +. v
        done;
        if Float.abs (!sum -. 1.) > 1e-9 then ok := false
      done;
      !ok)

let test_softmax_stability () =
  (* very large logits must not overflow *)
  let t = t_of [ 1; 2 ] [| 1e30; 1e30 |] in
  check_tensor "softmax huge" (t_of [ 1; 2 ] [| 0.5; 0.5 |]) (Ops.softmax t)

let test_layernorm () =
  let x = t_of [ 1; 4 ] [| 1.; 2.; 3.; 4. |] in
  let gamma = t_of [ 4 ] [| 1.; 1.; 1.; 1. |] in
  let beta = Tensor.zeros (Shape.of_list [ 4 ]) in
  let y = Ops.layernorm x ~gamma ~beta in
  let mean = Tensor.fold ( +. ) 0. y /. 4. in
  Alcotest.(check (float 1e-6)) "normalised mean" 0. mean;
  let var = Tensor.fold (fun acc v -> acc +. (v *. v)) 0. y /. 4. in
  Alcotest.(check bool) "unit variance" true (Float.abs (var -. 1.) < 1e-3)

let test_rmsnorm () =
  let x = t_of [ 1; 2 ] [| 3.; 4. |] in
  let gamma = t_of [ 2 ] [| 1.; 1. |] in
  let y = Ops.rmsnorm x ~gamma in
  (* rms = sqrt((9+16)/2) = 3.5355 *)
  Alcotest.(check (float 1e-3)) "rmsnorm" (3. /. 3.5355) (Tensor.get y [ 0; 0 ])

(* --- transpose / permute --- *)

let test_transpose () =
  let a = t_of [ 2; 3 ] [| 1.; 2.; 3.; 4.; 5.; 6. |] in
  check_tensor "transpose2d" (t_of [ 3; 2 ] [| 1.; 4.; 2.; 5.; 3.; 6. |])
    (Ops.transpose2d a);
  check_tensor "permute = transpose" (Ops.transpose2d a) (Ops.permute a [ 1; 0 ]);
  let t = Tensor.rand rng (Shape.of_list [ 2; 3; 4 ]) ~lo:0. ~hi:1. in
  check_tensor "double permute is id" t (Ops.permute (Ops.permute t [ 2; 0; 1 ]) [ 1; 2; 0 ])

(* --- convolution: reference (im2col) vs naive direct loop --- *)

let naive_conv x w ~stride ~pad ~groups =
  match (Tensor.shape x, Tensor.shape w) with
  | [ n; _c; h; wd ], [ oc; cg; kh; kw ] ->
    let oh = ((h + (2 * pad) - kh) / stride) + 1 in
    let ow = ((wd + (2 * pad) - kw) / stride) + 1 in
    let ocg = oc / groups in
    Tensor.init (Shape.of_list [ n; oc; oh; ow ]) (fun idx ->
        match idx with
        | [ ni; oi; oy; ox ] ->
          let g = oi / ocg in
          let acc = ref 0. in
          for ci = 0 to cg - 1 do
            for ky = 0 to kh - 1 do
              for kx = 0 to kw - 1 do
                let iy = (oy * stride) + ky - pad and ix = (ox * stride) + kx - pad in
                if iy >= 0 && iy < h && ix >= 0 && ix < wd then
                  acc :=
                    !acc
                    +. Tensor.get x [ ni; (g * cg) + ci; iy; ix ]
                       *. Tensor.get w [ oi; ci; ky; kx ]
              done
            done
          done;
          !acc
        | _ -> assert false)
  | _ -> assert false

let prop_conv_matches_naive =
  QCheck.Test.make ~name:"im2col conv = naive direct conv" ~count:40
    QCheck.(quad (int_range 1 2) (int_range 1 2) (int_range 1 2) (int_range 0 1))
    (fun (n, groups, stride, pad) ->
      let cg = 2 and ocg = 2 and h = 5 and k = 3 in
      let c = cg * groups and oc = ocg * groups in
      let x = Tensor.rand rng (Shape.of_list [ n; c; h; h ]) ~lo:(-1.) ~hi:1. in
      let w = Tensor.rand rng (Shape.of_list [ oc; cg; k; k ]) ~lo:(-1.) ~hi:1. in
      let got = Ops.conv2d x ~weight:w ~stride ~pad ~groups () in
      let expect = naive_conv x w ~stride ~pad ~groups in
      Tensor.equal ~eps:1e-6 got expect)

let test_conv_bias () =
  let x = Tensor.full (Shape.of_list [ 1; 1; 2; 2 ]) 1. in
  let w = Tensor.full (Shape.of_list [ 1; 1; 1; 1 ]) 2. in
  let bias = t_of [ 1 ] [| 0.5 |] in
  check_tensor "conv bias"
    (Tensor.full (Shape.of_list [ 1; 1; 2; 2 ]) 2.5)
    (Ops.conv2d x ~weight:w ~bias ~stride:1 ~pad:0 ())

let test_im2col_shape () =
  let x = Tensor.zeros (Shape.of_list [ 2; 3; 8; 8 ]) in
  let p = Ops.im2col x ~kh:3 ~kw:3 ~stride:2 ~pad:1 in
  Alcotest.(check (list int)) "patch matrix" [ 2 * 4 * 4; 3 * 9 ] (Tensor.shape p)

(* --- pooling --- *)

let test_maxpool () =
  let x = t_of [ 1; 1; 2; 2 ] [| 1.; 2.; 3.; 4. |] in
  check_tensor "maxpool" (t_of [ 1; 1; 1; 1 ] [| 4. |]) (Ops.maxpool2d x ~k:2 ~stride:2 ());
  check_tensor "avgpool" (t_of [ 1; 1; 1; 1 ] [| 2.5 |]) (Ops.avgpool2d x ~k:2 ~stride:2 ());
  let g = Ops.avgpool_global (t_of [ 1; 2; 1; 2 ] [| 1.; 3.; 10.; 20. |]) in
  check_tensor "global avg" (t_of [ 1; 2 ] [| 2.; 15. |]) g

let test_clip () =
  let x = t_of [ 4 ] [| -3.; 0.5; 6.; 9. |] in
  check_tensor "relu6" (t_of [ 4 ] [| 0.; 0.5; 6.; 6. |]) (Ops.clip x ~lo:0. ~hi:6.);
  Alcotest.check_raises "clip bounds" (Invalid_argument "Ops.clip: hi < lo")
    (fun () -> ignore (Ops.clip x ~lo:1. ~hi:0.))

(* --- attention --- *)

let test_attention_uniform () =
  (* with q = 0, softmax is uniform and the output is the mean of v rows *)
  let d = 4 and l = 3 in
  let q = Tensor.zeros (Shape.of_list [ 1; d ]) in
  let k = Tensor.rand rng (Shape.of_list [ l; d ]) ~lo:(-1.) ~hi:1. in
  let v = t_of [ 3; 4 ] [| 1.;1.;1.;1.; 2.;2.;2.;2.; 3.;3.;3.;3. |] in
  let out = Ops.attention ~q ~k ~v () in
  check_tensor "uniform attention" (Tensor.full (Shape.of_list [ 1; d ]) 2.) out

let test_attention_causal () =
  (* single query attending a cache of length 2 plus itself: causal mask
     allows all; but with m = l and causal, query 0 sees only key 0 *)
  let d = 2 and l = 2 in
  let q = Tensor.zeros (Shape.of_list [ l; d ]) in
  let k = Tensor.zeros (Shape.of_list [ l; d ]) in
  let v = t_of [ 2; 2 ] [| 1.; 1.; 3.; 3. |] in
  let out = Ops.attention ~q ~k ~v ~causal:true () in
  (* row 0 sees v0 only; row 1 averages v0, v1 *)
  check_tensor "causal mask" (t_of [ 2; 2 ] [| 1.; 1.; 2.; 2. |]) out

(* --- quantisation --- *)

let prop_quant_roundtrip_bounded =
  QCheck.Test.make ~name:"int8 round-trip error <= scale/2" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 64) (float_range (-10.) 10.))
    (fun xs ->
      let t = t_of [ List.length xs ] (Array.of_list xs) in
      let q = Quant.quantize t in
      Quant.quant_error t <= (q.Quant.scale /. 2.) +. 1e-9)

let test_quant_zero () =
  let t = Tensor.zeros (Shape.of_list [ 3 ]) in
  let q = Quant.quantize t in
  Alcotest.(check (float 0.)) "zero scale defaults to 1" 1. q.Quant.scale;
  check_tensor "zeros round-trip" t (Quant.dequantize q)

let test_quant_matmul_close () =
  let a = Tensor.rand rng (Shape.of_list [ 4; 8 ]) ~lo:(-1.) ~hi:1. in
  let b = Tensor.rand rng (Shape.of_list [ 8; 4 ]) ~lo:(-1.) ~hi:1. in
  let exact = Ops.matmul a b in
  let approx = Quant.dequantize (Quant.matmul (Quant.quantize a) (Quant.quantize b)) in
  let scale = Tensor.fold (fun acc v -> Float.max acc (Float.abs v)) 0. exact in
  Alcotest.(check bool) "int8 matmul within 5% of float" true
    (Tensor.max_abs_diff exact approx <= 0.05 *. scale)

let test_clamp () =
  Alcotest.(check int) "clamp low" (-128) (Quant.clamp_i8 (-1000));
  Alcotest.(check int) "clamp high" 127 (Quant.clamp_i8 1000);
  Alcotest.(check int) "clamp pass" 5 (Quant.clamp_i8 5)

let qtest = QCheck_alcotest.to_alcotest

let suite =
  ( "tensor",
    [
      Alcotest.test_case "create/access" `Quick test_create;
      Alcotest.test_case "reshape shares storage" `Quick test_reshape_shares;
      Alcotest.test_case "matmul 2d" `Quick test_matmul_2d;
      Alcotest.test_case "matmul batched" `Quick test_matmul_batched;
      Alcotest.test_case "matmul bad shapes" `Quick test_matmul_bad_shapes;
      Alcotest.test_case "add/mul broadcast" `Quick test_add_broadcast;
      Alcotest.test_case "activations" `Quick test_activations;
      qtest prop_softmax_normalised;
      Alcotest.test_case "softmax stability" `Quick test_softmax_stability;
      Alcotest.test_case "layernorm" `Quick test_layernorm;
      Alcotest.test_case "rmsnorm" `Quick test_rmsnorm;
      Alcotest.test_case "transpose/permute" `Quick test_transpose;
      qtest prop_conv_matches_naive;
      Alcotest.test_case "conv bias" `Quick test_conv_bias;
      Alcotest.test_case "im2col shape" `Quick test_im2col_shape;
      Alcotest.test_case "pooling" `Quick test_maxpool;
      Alcotest.test_case "clip/relu6" `Quick test_clip;
      Alcotest.test_case "attention uniform" `Quick test_attention_uniform;
      Alcotest.test_case "attention causal" `Quick test_attention_causal;
      qtest prop_quant_roundtrip_bounded;
      Alcotest.test_case "quant zeros" `Quick test_quant_zero;
      Alcotest.test_case "quant matmul accuracy" `Quick test_quant_matmul_close;
      Alcotest.test_case "clamp_i8" `Quick test_clamp;
    ] )
