(* Tests for the baseline compilers: greedy segmentation packing, PUMA's
   proportional duplication, OCC's serial latency, and their all-compute
   discipline. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Opinfo = Cim_compiler.Opinfo
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Baseline = Cim_baselines.Baseline

let chip = Config.dynaplasia

let graph = lazy (Cim_models.Mlp.build ~batch:1 ~dims:[ 512; 1024; 1024; 512; 256 ] ())

let schedule which = Baseline.compile which chip (Lazy.force graph)

let test_names () =
  Alcotest.(check string) "occ" "OCC" (Baseline.name Baseline.Occ);
  Alcotest.(check string) "puma" "PUMA" (Baseline.name Baseline.Puma);
  Alcotest.(check string) "mlc" "CIM-MLC" (Baseline.name Baseline.Cim_mlc)

let test_all_compute_discipline () =
  List.iter
    (fun which ->
      let s = schedule which in
      List.iter
        (fun (seg : Plan.seg_plan) ->
          Alcotest.(check int)
            (Baseline.name which ^ " allocates no memory arrays")
            0 (Plan.mem_total seg))
        s.Plan.segments)
    [ Baseline.Occ; Baseline.Puma; Baseline.Cim_mlc ]

let test_segments_tile_ops () =
  let ops = Opinfo.extract chip (Lazy.force graph) in
  List.iter
    (fun which ->
      let s = schedule which in
      let next = ref 0 in
      List.iter
        (fun (seg : Plan.seg_plan) ->
          Alcotest.(check int) "contiguous" !next seg.Plan.lo;
          next := seg.Plan.hi + 1)
        s.Plan.segments;
      Alcotest.(check int) "covers all ops" (Array.length ops) !next)
    [ Baseline.Occ; Baseline.Puma; Baseline.Cim_mlc ]

let test_greedy_packing_respects_capacity () =
  List.iter
    (fun which ->
      let s = schedule which in
      List.iter
        (fun (seg : Plan.seg_plan) ->
          Alcotest.(check bool) "within chip" true
            (Plan.arrays_used seg <= chip.Chip.n_arrays))
        s.Plan.segments)
    [ Baseline.Occ; Baseline.Puma ]

let test_occ_serial_vs_puma_pipeline () =
  (* same segmentation, but OCC serialises operators while PUMA pipelines
     and duplicates: within every shared segment OCC's intra is at least
     the max-op latency and PUMA's equals its own allocation's max *)
  let ops = Opinfo.extract chip (Lazy.force graph) in
  let occ = schedule Baseline.Occ and puma = schedule Baseline.Puma in
  Alcotest.(check int) "same greedy segment count"
    (List.length occ.Plan.segments)
    (List.length puma.Plan.segments);
  List.iter2
    (fun (so : Plan.seg_plan) (sp : Plan.seg_plan) ->
      (* serial sum >= pipelined max under identical minimum allocations *)
      Alcotest.(check bool) "OCC intra >= PUMA intra" true
        (so.Plan.intra_cycles >= sp.Plan.intra_cycles -. 1e-9);
      (* OCC's intra is exactly the sum of its per-op latencies *)
      let sum =
        List.fold_left
          (fun acc (a : Plan.op_alloc) ->
            acc +. Alloc.op_latency chip ops.(a.Plan.uid) a)
          0. so.Plan.allocs
      in
      Alcotest.(check (float 1e-6)) "OCC serial sum" sum so.Plan.intra_cycles)
    occ.Plan.segments puma.Plan.segments

let test_puma_duplication_uses_spare_arrays () =
  let ops = Opinfo.extract chip (Lazy.force graph) in
  let puma = schedule Baseline.Puma in
  (* at least one operator gets more than its minimum (spare arrays exist) *)
  let duplicated =
    List.exists
      (fun (seg : Plan.seg_plan) ->
        List.exists
          (fun (a : Plan.op_alloc) ->
            a.Plan.com > ops.(a.Plan.uid).Opinfo.min_compute_arrays)
          seg.Plan.allocs)
      puma.Plan.segments
  in
  Alcotest.(check bool) "duplication happened" true duplicated;
  (* and OCC never duplicates *)
  let occ = schedule Baseline.Occ in
  List.iter
    (fun (seg : Plan.seg_plan) ->
      List.iter
        (fun (a : Plan.op_alloc) ->
          Alcotest.(check int) "OCC at minimum"
            ops.(a.Plan.uid).Opinfo.min_compute_arrays a.Plan.com)
        seg.Plan.allocs)
    occ.Plan.segments

let test_compile_model_agrees_with_compile () =
  (* for a CNN (no block reuse) compile_model = compile on the whole graph *)
  let e = Option.get (Zoo.find "mobilenetv2") in
  let w = Workload.prefill ~batch:1 1 in
  let via_model = Baseline.compile_model Baseline.Occ chip e w in
  let direct = (Baseline.compile Baseline.Occ chip (e.Zoo.build w)).Plan.total_cycles in
  Alcotest.(check (float 1e-6)) "consistent paths" direct via_model

let test_ordering_on_bandwidth_bound_work () =
  (* decode-style MLP: the ordering the paper's Fig. 14 rests on *)
  let g = Cim_models.Mlp.build ~batch:1 ~dims:[ 2048; 2048; 2048 ] () in
  let occ = (Baseline.compile Baseline.Occ chip g).Plan.total_cycles in
  let puma = (Baseline.compile Baseline.Puma chip g).Plan.total_cycles in
  let mlc = (Baseline.compile Baseline.Cim_mlc chip g).Plan.total_cycles in
  Alcotest.(check bool)
    (Printf.sprintf "OCC (%.0f) >= PUMA (%.0f) >= CIM-MLC (%.0f)" occ puma mlc)
    true
    (occ >= puma -. 1e-6 && puma >= mlc -. 1e-6)

let suite =
  ( "baselines",
    [
      Alcotest.test_case "names" `Quick test_names;
      Alcotest.test_case "all-compute discipline" `Quick test_all_compute_discipline;
      Alcotest.test_case "segments tile operators" `Quick test_segments_tile_ops;
      Alcotest.test_case "greedy packing capacity" `Quick test_greedy_packing_respects_capacity;
      Alcotest.test_case "OCC serial vs PUMA pipeline" `Quick test_occ_serial_vs_puma_pipeline;
      Alcotest.test_case "PUMA duplication" `Quick test_puma_duplication_uses_spare_arrays;
      Alcotest.test_case "compile_model consistency" `Quick test_compile_model_agrees_with_compile;
      Alcotest.test_case "bandwidth-bound ordering" `Quick test_ordering_on_bandwidth_bound_work;
    ] )
