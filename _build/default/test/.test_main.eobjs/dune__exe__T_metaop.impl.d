test/t_metaop.ml: Alcotest Cim_arch Cim_metaop List QCheck QCheck_alcotest
