test/t_fuzz_e2e.ml: Array Cim_arch Cim_compiler Cim_metaop Cim_models Cim_sim Float List Printf QCheck QCheck_alcotest String
