test/t_analysis.ml: Alcotest Cim_arch Cim_compiler Cim_models Lazy List Option Printf String
