test/t_models.ml: Alcotest Cim_models Cim_nnir Float List Option Printf
