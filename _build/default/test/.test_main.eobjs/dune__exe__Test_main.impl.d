test/test_main.ml: Alcotest T_analysis T_arch T_baselines T_codegen T_compiler T_e2e T_extensions T_fuzz_e2e T_metaop T_models T_nnir T_passes T_plan T_shape T_sim T_solver T_tensor T_util
