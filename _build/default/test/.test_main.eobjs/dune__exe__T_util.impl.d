test/t_util.ml: Alcotest Array Bytesize Cim_util Float Gen List Printf QCheck QCheck_alcotest Rng Stats String Table
