test/t_e2e.ml: Alcotest Cim_arch Cim_baselines Cim_compiler Cim_metaop Cim_models Cim_sim Cim_util Float List Option Printf
