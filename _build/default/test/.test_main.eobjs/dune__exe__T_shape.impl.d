test/t_shape.ml: Alcotest Array Cim_tensor QCheck QCheck_alcotest
