test/t_extensions.ml: Alcotest Array Cim_arch Cim_baselines Cim_compiler Cim_metaop Cim_models Cim_nnir Cim_sim Cim_util Float Lazy List Option Printf String
