test/t_codegen.ml: Alcotest Cim_arch Cim_compiler Cim_metaop Cim_models Cim_nnir Cim_tensor Cim_util Hashtbl List String
