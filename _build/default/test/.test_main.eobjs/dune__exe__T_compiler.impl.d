test/t_compiler.ml: Alcotest Array Cim_arch Cim_compiler Cim_models Float Hashtbl Lazy List Option Printf
