test/t_tensor.ml: Alcotest Array Cim_tensor Cim_util Float Gen List Printf QCheck QCheck_alcotest
