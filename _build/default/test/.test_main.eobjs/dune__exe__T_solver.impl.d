test/t_solver.ml: Alcotest Array Cim_solver Float Gen List Printf QCheck QCheck_alcotest String
