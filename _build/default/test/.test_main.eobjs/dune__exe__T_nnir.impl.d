test/t_nnir.ml: Alcotest Cim_models Cim_nnir Cim_tensor Cim_util Hashtbl List Option Printf QCheck QCheck_alcotest
