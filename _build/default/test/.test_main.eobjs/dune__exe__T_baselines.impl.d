test/t_baselines.ml: Alcotest Array Cim_arch Cim_baselines Cim_compiler Cim_models Lazy List Option Printf
