test/t_arch.ml: Alcotest Cim_arch List QCheck QCheck_alcotest
