test/t_plan.ml: Alcotest Cim_arch Cim_compiler Cim_models Format List Printf String
