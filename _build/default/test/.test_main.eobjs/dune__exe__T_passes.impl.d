test/t_passes.ml: Alcotest Cim_arch Cim_compiler Cim_models Cim_nnir Cim_sim Cim_tensor Cim_util List Option QCheck QCheck_alcotest
