(* Deploying a CNN: VGG-16 on DynaPlasia. The interesting structure here is
   the one Fig. 15(a) shows — early convolutions are cheap to map (few
   channels) so several share one segment and pipeline; the late, wide
   layers split across segments and pick up memory-mode arrays for operand
   bandwidth.

   Run with: dune exec examples/cnn_deploy.exe *)

module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Plan = Cim_compiler.Plan
module Opinfo = Cim_compiler.Opinfo
module Baseline = Cim_baselines.Baseline
module Table = Cim_util.Table

let chip = Cim_arch.Config.dynaplasia

let () =
  let graph = Cim_models.Cnn.vgg16 ~batch:1 in
  Printf.printf "VGG-16: %d nodes, %s parameters\n" (Cim_nnir.Graph.node_count graph)
    (Table.cell_si (float_of_int (Cim_nnir.Graph.param_count graph)));
  let r = Cmswitch.compile chip graph in
  Format.printf "%a@.@." Plan.pp_schedule r.Cmswitch.schedule;

  (* Where do the memory-mode arrays go? Aggregate by VGG stage. *)
  let stage_of label =
    (* labels look like "s4_conv2[120:240]" or "fc6@r0[0:40]#1/2" *)
    let is_stage_char c =
      (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    in
    let n = String.length label in
    let rec stop i = if i < n && is_stage_char label.[i] then stop (i + 1) else i in
    String.sub label 0 (stop 0)
  in
  let per_stage = Hashtbl.create 8 in
  List.iter
    (fun (seg : Plan.seg_plan) ->
      List.iter
        (fun (a : Plan.op_alloc) ->
          let stage = stage_of r.Cmswitch.ops.(a.Plan.uid).Opinfo.label in
          let com, mem =
            Option.value (Hashtbl.find_opt per_stage stage) ~default:(0, 0)
          in
          Hashtbl.replace per_stage stage
            (com + a.Plan.com, mem + Plan.mem_of a))
        seg.Plan.allocs)
    r.Cmswitch.schedule.Plan.segments;
  let tbl =
    Table.create ~title:"array allocation by network stage (summed over segments)"
      [ ("stage", Table.Left); ("compute", Table.Right); ("memory", Table.Right);
        ("memory share", Table.Right) ]
  in
  List.iter
    (fun stage ->
      match Hashtbl.find_opt per_stage stage with
      | None -> ()
      | Some (com, mem) ->
        let share =
          if com + mem = 0 then 0. else float_of_int mem /. float_of_int (com + mem)
        in
        Table.add_row tbl
          [ stage; string_of_int com; string_of_int mem; Table.cell_pct share ])
    [ "s1"; "s2"; "s3"; "s4"; "s5"; "fc6"; "fc7"; "fc8" ];
  Table.print tbl;

  (* Throughput across batch sizes vs the strongest baseline. *)
  let tbl2 =
    Table.create ~title:"batch scaling (frames/s at 1 GHz)"
      [ ("batch", Table.Right); ("CIM-MLC", Table.Right); ("CMSwitch", Table.Right);
        ("speedup", Table.Right) ]
  in
  let entry = Option.get (Zoo.find "vgg16") in
  List.iter
    (fun batch ->
      let w = Workload.prefill ~batch 1 in
      let c = (Cmswitch.compile_model chip entry w).Cmswitch.total_cycles in
      let b = Baseline.compile_model Baseline.Cim_mlc chip entry w in
      let fps cycles = float_of_int batch *. chip.Cim_arch.Chip.freq_mhz *. 1e6 /. cycles in
      Table.add_row tbl2
        [ string_of_int batch; Table.cell_f (fps b); Table.cell_f (fps c);
          Table.cell_speedup (b /. c) ])
    [ 1; 4; 8 ];
  Table.print tbl2
