(* LLM serving on a dual-mode CIM chip: the scenario from the paper's
   introduction. A LLaMA2-7B server alternates between prompt processing
   (prefill — high arithmetic intensity, wants compute arrays) and token
   generation (decode — bandwidth-bound, wants scratchpad for activations
   and KV cache). CMSwitch reconfigures the same 96 arrays between the two
   phases; a fixed-mode compiler cannot.

   Run with: dune exec examples/llm_serving.exe *)

module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Chip = Cim_arch.Chip
module Cmswitch = Cim_compiler.Cmswitch
module Baseline = Cim_baselines.Baseline
module Table = Cim_util.Table

let chip = Cim_arch.Config.dynaplasia
let model = Option.get (Zoo.find "llama2-7b")

let cms w = (Cmswitch.compile_model chip model w).Cmswitch.total_cycles
let mlc w = Baseline.compile_model Baseline.Cim_mlc chip model w

let tokens_per_second cycles_per_token =
  chip.Chip.freq_mhz *. 1e6 /. cycles_per_token

let () =
  Printf.printf "LLaMA2-7B serving on %s (%d dual-mode arrays)\n\n"
    chip.Chip.name chip.Chip.n_arrays;

  (* Phase profile: how the compiler reallocates the chip per phase. *)
  let profile w =
    let mc = Cmswitch.compile_model chip model w in
    (mc.Cmswitch.total_cycles, mc.Cmswitch.mem_ratio)
  in
  let pre_c, pre_m = profile (Workload.prefill ~batch:1 512) in
  let dec_c, dec_m = profile (Workload.decode ~batch:1 512) in
  Printf.printf "prefill(512): %.2e cycles/pass, %s of arrays in memory mode\n"
    pre_c (Table.cell_pct pre_m);
  Printf.printf "decode(kv=512): %.2e cycles/token, %s of arrays in memory mode\n\n"
    dec_c (Table.cell_pct dec_m);

  (* Decode throughput as the conversation grows. *)
  let tbl =
    Table.create ~title:"decode throughput vs context length (batch 1)"
      [ ("kv length", Table.Right); ("CIM-MLC tok/s", Table.Right);
        ("CMSwitch tok/s", Table.Right); ("speedup", Table.Right) ]
  in
  List.iter
    (fun kv ->
      let w = Workload.decode ~batch:1 kv in
      let c = cms w and b = mlc w in
      Table.add_row tbl
        [ string_of_int kv;
          Table.cell_f (tokens_per_second b);
          Table.cell_f (tokens_per_second c);
          Table.cell_speedup (b /. c) ])
    [ 128; 512; 1024; 2048 ];
  Table.print tbl;

  (* Full request latency: 128-token prompt, 256 generated tokens. *)
  let e2e f =
    let prefill = f (Workload.prefill ~batch:1 128) in
    let decodes =
      List.init 8 (fun i -> f (Workload.decode ~batch:1 (128 + (i * 32))))
    in
    prefill +. (Cim_util.Stats.mean decodes *. 256.)
  in
  let c = e2e cms and b = e2e mlc in
  Printf.printf
    "\nfull request (prompt 128 -> 256 tokens): CMSwitch %.1f ms vs CIM-MLC %.1f ms (%.2fx)\n"
    (Chip.cycles_to_us chip c /. 1000.)
    (Chip.cycles_to_us chip b /. 1000.)
    (b /. c);

  (* trace-driven serving: 20 requests, Poisson arrivals *)
  let module Serving = Cim_sim.Serving in
  let profile_of f =
    let sample_pre = List.map (fun s -> (s, f (Workload.prefill ~batch:1 s))) [ 32; 128; 512 ] in
    let sample_dec = List.map (fun kv -> (kv, f (Workload.decode ~batch:1 kv))) [ 32; 256; 1024 ] in
    { Serving.prefill_cycles = Serving.interpolate sample_pre;
      decode_cycles = Serving.interpolate sample_dec }
  in
  let rng = Cim_util.Rng.create 99 in
  let trace = Serving.poisson_trace rng ~n:20 ~mean_gap:2e6 ~prompt:128 ~output:64 in
  let s_cms = Serving.run (profile_of cms) trace in
  let s_mlc = Serving.run (profile_of mlc) trace in
  Printf.printf
    "\nserving trace (20 requests, Poisson arrivals):\n\
    \  CMSwitch: mean latency %.1f ms, p95 %.1f ms, TTFT %.1f ms, %.1f tok/Mcycle\n\
    \  CIM-MLC : mean latency %.1f ms, p95 %.1f ms, TTFT %.1f ms, %.1f tok/Mcycle\n"
    (Chip.cycles_to_us chip s_cms.Serving.mean_latency /. 1000.)
    (Chip.cycles_to_us chip s_cms.Serving.p95_latency /. 1000.)
    (Chip.cycles_to_us chip s_cms.Serving.mean_ttft /. 1000.)
    s_cms.Serving.tokens_per_megacycle
    (Chip.cycles_to_us chip s_mlc.Serving.mean_latency /. 1000.)
    (Chip.cycles_to_us chip s_mlc.Serving.p95_latency /. 1000.)
    (Chip.cycles_to_us chip s_mlc.Serving.mean_ttft /. 1000.)
    s_mlc.Serving.tokens_per_megacycle
