(* Quickstart: build a small network, compile it with CMSwitch, inspect the
   dual-mode meta-operator flow, and check the compiled program's arithmetic
   against the float reference.

   Run with: dune exec examples/quickstart.exe *)

module Chip = Cim_arch.Chip
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Cmswitch = Cim_compiler.Cmswitch
module Plan = Cim_compiler.Plan
module Flow = Cim_metaop.Flow

let () =
  (* 1. Pick a hardware preset — DynaPlasia, the paper's Table 2 chip. *)
  let chip = Cim_arch.Config.dynaplasia in
  Format.printf "%a@.@." Chip.pp chip;

  (* 2. Build a network. The graph IR speaks ONNX's vocabulary; here a
     3-layer MLP with concrete (random) weights so we can simulate it. *)
  let rng = Cim_util.Rng.create 7 in
  let graph =
    Cim_models.Mlp.build ~rng ~name:"quickstart" ~batch:1
      ~dims:[ 256; 512; 512; 64 ] ()
  in
  Format.printf "%a@." Cim_nnir.Graph.pp graph;

  (* 3. Compile. CMSwitch decides the network segmentation (dynamic
     programming over Eq. 3) and each segment's compute/memory array
     allocation (the per-segment MIP of §4.3.2). *)
  let r = Cmswitch.compile chip graph in
  Format.printf "@.%a@." Plan.pp_schedule r.Cmswitch.schedule;
  Printf.printf "memory-mode arrays on average: %s\n\n"
    (Cim_util.Table.cell_pct (Cmswitch.memory_mode_ratio r));

  (* 4. The result is a meta-operator flow (§4.4): CM.switch instructions
     plus parallel{} segments of compute/memory operators. *)
  print_string (Flow.to_string r.Cmswitch.program);

  (* 5. Validate it functionally: execute the flow with int8 CIM arithmetic
     and compare against the float reference executor. *)
  let x = Tensor.rand rng (Shape.of_list [ 1; 256 ]) ~lo:(-1.) ~hi:1. in
  let rep =
    Cim_sim.Functional.run chip graph r.Cmswitch.program ~inputs:[ ("x", x) ]
  in
  Printf.printf
    "\nfunctional check: max |err| = %.4f (%.2f%% of output range) across %d CIM ops\n"
    rep.Cim_sim.Functional.max_abs_err
    (100. *. rep.Cim_sim.Functional.max_rel_err)
    rep.Cim_sim.Functional.compute_instrs;

  (* 6. And price it with the timing simulator. *)
  let t = Cim_sim.Timing.run chip r.Cmswitch.program in
  Format.printf "%a@." Cim_sim.Timing.pp t
