examples/llm_serving.mli:
