examples/quickstart.ml: Cim_arch Cim_compiler Cim_metaop Cim_models Cim_nnir Cim_sim Cim_tensor Cim_util Format Printf
