examples/cnn_deploy.mli:
