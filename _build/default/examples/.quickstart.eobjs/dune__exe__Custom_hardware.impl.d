examples/custom_hardware.ml: Cim_arch Cim_baselines Cim_compiler Cim_models Cim_util Format List Option Printf Sys
