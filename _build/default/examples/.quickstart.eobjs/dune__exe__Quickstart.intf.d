examples/quickstart.mli:
