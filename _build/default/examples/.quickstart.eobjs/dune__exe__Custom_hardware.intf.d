examples/custom_hardware.mli:
