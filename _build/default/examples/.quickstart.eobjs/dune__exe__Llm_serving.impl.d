examples/llm_serving.ml: Cim_arch Cim_baselines Cim_compiler Cim_models Cim_sim Cim_util List Option Printf
