examples/cnn_deploy.ml: Array Cim_arch Cim_baselines Cim_compiler Cim_models Cim_nnir Cim_util Format Hashtbl List Option Printf String
