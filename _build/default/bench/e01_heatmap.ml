(* E1 — Fig. 1(b) / Fig. 5(a)(b): normalised performance as the
   compute/memory split of 100 dual-mode arrays varies, for LLaMA2-7B
   (single-batch decode) and ResNet-50. "Theoretical performance" is the
   cost-model execution time with every operator granted the whole chip at
   that split — exactly the figure's idealised sweep. *)

open Common
module Cost = Cim_arch.Cost
module Intensity = Cim_models.Intensity

let total_latency chip ~com ~mem graph =
  let stats = Intensity.node_stats graph in
  List.fold_left
    (fun acc (s : Intensity.node_stats) ->
      let ai = Intensity.ai_total s in
      if s.Intensity.macs = 0. || ai <= 0. then acc
      else acc +. Cost.op_latency chip ~ops:s.Intensity.macs ~ai ~com ~mem)
    0. stats

let run () =
  section "E1 | Fig. 1(b) / Fig. 5(a)(b): performance vs compute-mode ratio (100 arrays)";
  let chip = Config.scaled Config.dynaplasia ~n_arrays:100 in
  let cases =
    [
      ( "LLaMA2-7B (decode, kv=64)",
        (Option.get (Zoo.find "llama2-7b")).Zoo.build (Workload.decode ~batch:1 64) );
      ( "ResNet-50 (batch 1)",
        (Option.get (Zoo.find "resnet50")).Zoo.build (Workload.prefill ~batch:1 1) );
    ]
  in
  List.iter
    (fun (label, graph) ->
      let ratios = List.init 11 (fun i -> i * 10) in
      let latencies =
        List.map
          (fun pct ->
            let com = max 1 (pct * chip.Chip.n_arrays / 100) in
            let mem = chip.Chip.n_arrays - com in
            total_latency chip ~com ~mem graph)
          ratios
      in
      let best = Stats.minimum latencies in
      let perfs = List.map (fun l -> best /. l) latencies in
      let tbl =
        Table.create ~title:(label ^ " — normalised performance")
          [ ("compute ratio", Table.Right); ("perf", Table.Right);
            ("bar", Table.Left) ]
      in
      List.iter2
        (fun pct perf ->
          let bar = String.make (int_of_float (perf *. 40.)) '#' in
          Table.add_row tbl
            [ Printf.sprintf "%d%%" pct; Table.cell_f perf; bar ])
        ratios perfs;
      Table.print tbl;
      let best_idx = ref 0 in
      List.iteri (fun i p -> if p >= List.nth perfs !best_idx then best_idx := i)
        perfs;
      Printf.printf "optimum at %d%% compute mode\n" (List.nth ratios !best_idx))
    cases
