(* Bechamel micro-benchmarks: one Test.make per compilation pass and per
   experiment kernel, so pass-level regressions are visible independently of
   the end-to-end experiment tables. *)

open Bechamel
open Toolkit
open Common
module Opinfo = Cim_compiler.Opinfo
module Lp = Cim_solver.Lp

let chip = Config.dynaplasia

let bert_layer =
  lazy
    ((Option.get (Option.get (Zoo.find "bert-large")).Zoo.layer)
       (Workload.prefill ~batch:1 64))

let resnet = lazy ((Option.get (Zoo.find "resnet18")).Zoo.build (Workload.prefill ~batch:1 1))

let bert_ops = lazy (Opinfo.extract chip (Lazy.force bert_layer))

let sample_lp =
  {
    Lp.n_vars = 6;
    maximize = [| 3.; 2.; 4.; 1.; 5.; 2. |];
    rows =
      [
        ([| 1.; 1.; 1.; 1.; 1.; 1. |], Lp.Le, 10.);
        ([| 2.; 1.; 0.; 3.; 0.; 1. |], Lp.Le, 12.);
        ([| 0.; 1.; 2.; 0.; 1.; 0. |], Lp.Ge, 2.);
        ([| 1.; 0.; 0.; 1.; 0.; 1. |], Lp.Eq, 4.);
      ];
    lower = Array.make 6 0.;
    upper = Array.make 6 infinity;
  }

let tests =
  Test.make_grouped ~name:"cmswitch"
    [
      Test.make ~name:"graph-build/bert-layer"
        (Staged.stage (fun () ->
             (Option.get (Option.get (Zoo.find "bert-large")).Zoo.layer)
               (Workload.prefill ~batch:1 64)));
      Test.make ~name:"opinfo-extract/bert-layer"
        (Staged.stage (fun () -> Opinfo.extract chip (Lazy.force bert_layer)));
      Test.make ~name:"mip-alloc/segment-of-4"
        (Staged.stage (fun () ->
             let ops = Lazy.force bert_ops in
             Cim_compiler.Alloc.solve chip ops ~lo:0
               ~hi:(min 3 (Array.length ops - 1))));
      Test.make ~name:"dp-segment/bert-layer"
        (Staged.stage (fun () ->
             Cim_compiler.Segment.run chip (Lazy.force bert_ops)));
      Test.make ~name:"compile/bert-layer"
        (Staged.stage (fun () -> Cmswitch.compile chip (Lazy.force bert_layer)));
      Test.make ~name:"compile/resnet18"
        (Staged.stage (fun () -> Cmswitch.compile chip (Lazy.force resnet)));
      Test.make ~name:"lp-simplex/6var"
        (Staged.stage (fun () -> Lp.solve sample_lp));
      Test.make ~name:"shape-infer/resnet18"
        (Staged.stage (fun () -> Cim_nnir.Shape_infer.infer (Lazy.force resnet)));
    ]

let run () =
  section "micro | bechamel pass-level benchmarks";
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  let tbl =
    Table.create ~title:"per-run wall time (OLS estimate)"
      [ ("benchmark", Table.Left); ("time/run", Table.Right) ]
  in
  List.iter
    (fun (name, o) ->
      let est =
        match Analyze.OLS.estimates o with Some [ e ] -> e | _ -> nan
      in
      let pretty =
        if Float.is_nan est then "n/a"
        else if est >= 1e9 then Printf.sprintf "%.2f s" (est /. 1e9)
        else if est >= 1e6 then Printf.sprintf "%.2f ms" (est /. 1e6)
        else if est >= 1e3 then Printf.sprintf "%.2f us" (est /. 1e3)
        else Printf.sprintf "%.0f ns" est
      in
      Table.add_row tbl [ name; pretty ])
    (List.sort compare rows);
  Table.print tbl
