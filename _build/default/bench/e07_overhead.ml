(* E7 — §5.5 "dual-mode switch overhead": the share of total execution time
   spent on CM.switch transitions, weight (re)programming and displaced-data
   write-back, measured by the timing simulator on each benchmark's
   compiled flow. The paper reports the dual-mode switch machinery costing
   3-5% of execution while the gains dwarf it. *)

open Common
module Timing = Cim_sim.Timing

let compiled_flow key =
  let chip = Config.dynaplasia in
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn ->
    Cmswitch.compile chip (e.Zoo.build (Workload.prefill ~batch:1 1))
  | Zoo.Encoder_only ->
    let layer = Option.get e.Zoo.layer in
    Cmswitch.compile chip (layer (Workload.prefill ~batch:1 64))
  | Zoo.Decoder_only ->
    let layer = Option.get e.Zoo.layer in
    Cmswitch.compile chip (layer (Workload.decode ~batch:1 64))

let run () =
  section "E7 | §5.5: dual-mode switch overhead share";
  let tbl =
    Table.create
      ~title:"timing-simulator breakdown of the CMSwitch flow"
      [ ("model", Table.Left); ("total cycles", Table.Right);
        ("compute", Table.Right); ("switch", Table.Right);
        ("rewrite", Table.Right); ("writeback", Table.Right);
        ("switch share", Table.Right) ]
  in
  List.iter
    (fun key ->
      let r = compiled_flow key in
      let t = Timing.run r.Cmswitch.chip r.Cmswitch.program in
      Table.add_row tbl
        [ (Option.get (Zoo.find key)).Zoo.display;
          Table.cell_si t.Timing.cycles.Timing.total;
          Table.cell_si t.Timing.cycles.Timing.compute;
          Table.cell_si t.Timing.cycles.Timing.switch;
          Table.cell_si t.Timing.cycles.Timing.rewrite;
          Table.cell_si t.Timing.cycles.Timing.writeback;
          Table.cell_pct t.Timing.switch_share ])
    fig14_models;
  Table.print tbl;
  Printf.printf "paper: the switch process contributes ~3-5%% of execution time\n"
