(* E4 — Fig. 15: the compiled compute/memory allocation, (a) per segment of
   VGG-16 and (b) per operator of one OPT-6.7B decoder layer. The figure's
   pie charts become compute/memory array counts here. *)

open Common
module Opinfo = Cim_compiler.Opinfo

let dump_result title (r : Cmswitch.result) ~max_rows =
  let tbl =
    Table.create ~title
      [ ("segment", Table.Right); ("operators", Table.Left);
        ("compute", Table.Right); ("memory", Table.Right);
        ("mem share", Table.Right) ]
  in
  let rows = ref 0 in
  List.iteri
    (fun i (seg : Plan.seg_plan) ->
      if !rows < max_rows then begin
        incr rows;
        let com = Plan.com_total seg and mem = Plan.mem_total seg in
        let names =
          List.init (seg.Plan.hi - seg.Plan.lo + 1) (fun k ->
              r.Cmswitch.ops.(seg.Plan.lo + k).Opinfo.label)
        in
        let shown =
          match names with
          | a :: _ :: _ :: _ ->
            Printf.sprintf "%s .. %s (%d ops)" a
              (List.nth names (List.length names - 1))
              (List.length names)
          | _ -> String.concat ", " names
        in
        let share =
          if com + mem = 0 then 0. else float_of_int mem /. float_of_int (com + mem)
        in
        Table.add_row tbl
          [ string_of_int (i + 1); shown; string_of_int com; string_of_int mem;
            Table.cell_pct share ]
      end)
    r.Cmswitch.schedule.Plan.segments;
  Table.print tbl;
  let n = List.length r.Cmswitch.schedule.Plan.segments in
  if n > max_rows then Printf.printf "... (%d segments total)\n" n

let run () =
  section "E4 | Fig. 15: compute/memory allocation per segment";
  let chip = Config.dynaplasia in
  let vgg = (Option.get (Zoo.find "vgg16")).Zoo.build (Workload.prefill ~batch:1 1) in
  let rv = Cmswitch.compile chip vgg in
  dump_result "Fig. 15(a): VGG-16 segments" rv ~max_rows:18;
  let e = Option.get (Zoo.find "opt-6.7b") in
  let layer = Option.get e.Zoo.layer in
  let ro = Cmswitch.compile chip (layer (Workload.prefill ~batch:1 64)) in
  dump_result "Fig. 15(b): one OPT-6.7B layer (prefill, seq 64)" ro ~max_rows:24;
  Printf.printf
    "paper: FFN/QKV operators get 33%%-67%% memory-mode arrays; attention ops mostly compute\n"
