(* E8 — §5.5 scalability: the same comparison on a PRIME-style ReRAM
   configuration (larger, more numerous arrays; far slower writes). Paper:
   1.48x BERT, 1.09x LLaMA-7B, 1.10x OPT-13B over CIM-MLC — smaller LLM
   gains because the bigger chip holds larger segments. *)

open Common

let run () =
  section "E8 | §5.5: PRIME (ReRAM) scalability";
  let chip = Config.prime in
  Format.printf "%a@." Chip.pp chip;
  let tbl =
    Table.create ~title:"speedup over CIM-MLC on PRIME"
      [ ("model", Table.Left); ("DynaPlasia", Table.Right); ("PRIME", Table.Right) ]
  in
  List.iter
    (fun key ->
      let dyn =
        e2e_cycles (Base Baseline.Cim_mlc) key /. e2e_cycles Cms key
      in
      let prm =
        e2e_cycles ~chip (Base Baseline.Cim_mlc) key /. e2e_cycles ~chip Cms key
      in
      Table.add_row tbl
        [ (Option.get (Zoo.find key)).Zoo.display; Table.cell_speedup dyn;
          Table.cell_speedup prm ])
    [ "bert-large"; "llama2-7b"; "opt-13b" ];
  Table.print tbl;
  Printf.printf "paper (PRIME): 1.48x BERT, 1.09x LLaMA2-7B, 1.10x OPT-13B\n"
