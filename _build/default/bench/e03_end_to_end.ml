(* E3 — Fig. 14: end-to-end speedup of CMSwitch over PUMA, OCC and CIM-MLC
   on the six benchmark networks (transformers at sequence length 64,
   generative models prefill 64 + 64 decoded tokens). The red-arrow numbers
   of the figure are the CIM-MLC column; the figure's geomean bar is the
   last row. *)

open Common

let run () =
  section "E3 | Fig. 14: end-to-end speedup over the baselines";
  let tbl =
    Table.create
      ~title:"speedup of CMSwitch (baseline cycles / CMSwitch cycles)"
      [ ("model", Table.Left); ("vs OCC", Table.Right); ("vs PUMA", Table.Right);
        ("vs CIM-MLC", Table.Right); ("mem-mode ratio", Table.Right) ]
  in
  let per_baseline = Hashtbl.create 8 in
  List.iter
    (fun key ->
      let cms = e2e_cycles Cms key in
      let speedup which =
        let s = e2e_cycles (Base which) key /. cms in
        let acc =
          Option.value (Hashtbl.find_opt per_baseline which) ~default:[]
        in
        Hashtbl.replace per_baseline which (s :: acc);
        s
      in
      let s_occ = speedup Baseline.Occ in
      let s_puma = speedup Baseline.Puma in
      let s_mlc = speedup Baseline.Cim_mlc in
      let e = Option.get (Zoo.find key) in
      let ratio =
        match e.Zoo.family with
        | Zoo.Cnn -> mem_ratio key (Workload.prefill ~batch:1 1)
        | Zoo.Encoder_only -> mem_ratio key (Workload.prefill ~batch:1 64)
        | Zoo.Decoder_only -> mem_ratio key (Workload.decode ~batch:1 96)
      in
      Table.add_row tbl
        [ e.Zoo.display; Table.cell_speedup s_occ; Table.cell_speedup s_puma;
          Table.cell_speedup s_mlc; Table.cell_pct ratio ])
    fig14_models;
  Table.add_rule tbl;
  let geo which = Stats.geomean (Hashtbl.find per_baseline which) in
  Table.add_row tbl
    [ "Geomean"; Table.cell_speedup (geo Baseline.Occ);
      Table.cell_speedup (geo Baseline.Puma);
      Table.cell_speedup (geo Baseline.Cim_mlc); "-" ];
  Table.print tbl;
  Printf.printf
    "paper: geomean 1.31x over CIM-MLC; per-model 1.06-2.03x; ordering OCC < PUMA < CIM-MLC < CMSwitch\n"
