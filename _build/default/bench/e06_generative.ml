(* E6 — Fig. 17: generative models through the two inference regimes.
   (a) input fixed at 128 tokens, output swept 32..2048 — the paper sees a
   near-constant speedup (decode arithmetic intensity does not change with
   output length, and the growing KV cache keeps benefiting from memory
   mode); (b) output fixed at 128, input swept — speedup decays as prefill
   arithmetic intensity grows. *)

open Common

let sweep = [ 32; 128; 512; 2048 ]

let run () =
  section "E6 | Fig. 17: generative models, fixed-input and fixed-output sweeps";
  List.iter
    (fun key ->
      let display = (Option.get (Zoo.find key)).Zoo.display in
      let tbl =
        Table.create ~title:(display ^ " — speedup over CIM-MLC")
          (("regime", Table.Left)
           :: List.map (fun s -> (string_of_int s, Table.Right)) sweep)
      in
      let row label f =
        Table.add_row tbl
          (label
           :: List.map
                (fun s ->
                  let cms, mlc = f s in
                  Table.cell_speedup (mlc /. cms))
                sweep)
      in
      row "input 128, output swept" (fun out ->
          ( generative_cycles Cms key ~batch:1 ~in_len:128 ~out_len:out,
            generative_cycles (Base Baseline.Cim_mlc) key ~batch:1 ~in_len:128
              ~out_len:out ));
      row "output 128, input swept" (fun inp ->
          ( generative_cycles Cms key ~batch:1 ~in_len:inp ~out_len:128,
            generative_cycles (Base Baseline.Cim_mlc) key ~batch:1 ~in_len:inp
              ~out_len:128 ));
      Table.print tbl)
    [ "llama2-7b"; "opt-13b" ];
  Printf.printf
    "paper: fixed input -> near-constant speedup (1.10-1.24x LLaMA, 1.43-1.62x OPT-13B);\n\
     fixed output -> speedup decays as the input length grows\n"
