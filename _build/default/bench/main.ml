(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index). With no argument,
   runs E1-E10 in paper order; pass experiment ids ("e3 e5") to run a
   subset, or "micro" for the bechamel pass-level benchmarks. *)

let experiments =
  [
    ("e1", "Fig. 1(b)/5(a)(b): performance vs compute/memory split", E01_heatmap.run);
    ("e2", "Figs. 5(c)/6: arithmetic intensity", E02_intensity.run);
    ("e3", "Fig. 14: end-to-end speedup vs baselines", E03_end_to_end.run);
    ("e4", "Fig. 15: compute/memory allocation demonstration", E04_allocation.run);
    ("e5", "Fig. 16: workload-scale sensitivity", E05_workload_scale.run);
    ("e6", "Fig. 17: generative-model sweeps", E06_generative.run);
    ("e7", "S5.5: dual-mode switch overhead", E07_overhead.run);
    ("e8", "S5.5: PRIME scalability", E08_prime.run);
    ("e9", "Fig. 18: compilation overhead", E09_compile_time.run);
    ("e10", "Table 2 + Fig. 4: configuration and mapping contrast", E10_config.run);
    ("e11", "ablations: partitioning, DP window, MIP vs greedy, Eq. 9 vs DES", E11_ablation.run);
    ("e12", "energy and EDP, dual-mode vs all-compute", E12_energy.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
  ]

let usage () =
  print_endline "usage: main.exe [e1 .. e12 | micro | all] ... [--csv DIR]";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-5s %s\n" id desc) experiments

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --csv DIR: additionally dump every printed table as CSV into DIR *)
  let rec strip_csv acc = function
    | "--csv" :: dir :: rest ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Cim_util.Table.set_csv_dir (Some dir);
      strip_csv acc rest
    | x :: rest -> strip_csv (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_csv [] args in
  let requested = if args = [] then [ "all" ] else args in
  if List.mem "-h" requested || List.mem "--help" requested then usage ()
  else begin
    print_endline "CMSwitch evaluation harness (paper: ASPLOS'25)";
    List.iter
      (fun req ->
        if req = "all" then
          List.iter (fun (id, _, f) -> if id <> "micro" then f ()) experiments
        else
          match List.find_opt (fun (id, _, _) -> id = req) experiments with
          | Some (_, _, f) -> f ()
          | None ->
            Printf.printf "unknown experiment %S\n" req;
            usage ();
            exit 1)
      requested
  end
