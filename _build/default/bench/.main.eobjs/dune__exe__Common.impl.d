bench/common.ml: Cim_arch Cim_baselines Cim_compiler Cim_models Cim_util Hashtbl Printf Sys
