bench/main.mli:
