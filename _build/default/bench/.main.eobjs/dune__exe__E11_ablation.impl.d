bench/e11_ablation.ml: Alloc Array Cim_compiler Cim_metaop Cmswitch Common Config List Option Plan Printf Segment Sys Table Workload Zoo
