bench/e06_generative.ml: Baseline Common List Option Printf Table Zoo
