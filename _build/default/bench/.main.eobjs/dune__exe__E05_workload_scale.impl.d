bench/e05_workload_scale.ml: Baseline Common List Option Printf Table Workload Zoo
