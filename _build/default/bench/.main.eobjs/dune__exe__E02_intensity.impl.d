bench/e02_intensity.ml: Chip Cim_models Cim_nnir Common Config List Option Printf String Table Workload Zoo
