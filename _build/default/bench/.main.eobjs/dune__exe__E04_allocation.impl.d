bench/e04_allocation.ml: Array Cim_compiler Cmswitch Common Config List Option Plan Printf String Table Workload Zoo
