bench/e12_energy.ml: Alloc Cim_sim Cmswitch Common Config Format List Option Segment Table Workload Zoo
