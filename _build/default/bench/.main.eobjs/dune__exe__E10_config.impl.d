bench/e10_config.ml: Alloc Chip Cim_metaop Cim_models Cim_sim Cim_tensor Cim_util Cmswitch Common Config Format Plan Printf Segment
