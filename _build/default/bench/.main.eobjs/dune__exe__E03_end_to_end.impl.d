bench/e03_end_to_end.ml: Baseline Common Hashtbl List Option Printf Stats Table Workload Zoo
