bench/e08_prime.ml: Baseline Chip Common Config Format List Option Printf Table Zoo
