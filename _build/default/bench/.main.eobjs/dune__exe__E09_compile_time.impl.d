bench/e09_compile_time.ml: Baseline Cmswitch Common Config Float List Option Printf Stats Sys Table Workload Zoo
