bench/e01_heatmap.ml: Chip Cim_arch Cim_models Common Config List Option Printf Stats String Table Workload Zoo
