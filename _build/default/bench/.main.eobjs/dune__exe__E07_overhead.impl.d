bench/e07_overhead.ml: Cim_sim Cmswitch Common Config List Option Printf Table Workload Zoo
