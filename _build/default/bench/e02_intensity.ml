(* E2 — Fig. 5(c): average arithmetic intensity per model;
        Fig. 6(a): layer-wise AI of ResNet-50;
        Fig. 6(b): BERT-large AI vs sequence length, FC vs attention. *)

open Common
module Intensity = Cim_models.Intensity
module Graph = Cim_nnir.Graph

let fig5c () =
  let tbl =
    Table.create ~title:"Fig. 5(c): average arithmetic intensity (MAC/byte, weights included)"
      [ ("model", Table.Left); ("workload", Table.Left); ("AI", Table.Right) ]
  in
  let add key w =
    let e = Option.get (Zoo.find key) in
    let g = e.Zoo.build w in
    Table.add_row tbl
      [ e.Zoo.display; Workload.to_string w; Table.cell_f (Intensity.model_ai g) ]
  in
  add "resnet50" (Workload.prefill ~batch:1 1);
  add "vgg16" (Workload.prefill ~batch:1 1);
  add "mobilenetv2" (Workload.prefill ~batch:1 1);
  add "bert-large" (Workload.prefill ~batch:1 64);
  add "llama2-7b" (Workload.decode ~batch:1 64);
  add "opt-6.7b" (Workload.decode ~batch:1 64);
  add "opt-13b" (Workload.decode ~batch:1 64);
  Table.print tbl

let fig6a () =
  let g = (Option.get (Zoo.find "resnet50")).Zoo.build (Workload.prefill ~batch:1 1) in
  let stats = Intensity.node_stats g in
  let tbl =
    Table.create ~title:"Fig. 6(a): layer-wise arithmetic intensity of ResNet-50"
      [ ("layer", Table.Left); ("MACs", Table.Right); ("AI", Table.Right) ]
  in
  (* one row per convolution kind inside each stage: sample the first block
     of each stage like the figure does *)
  List.iter
    (fun (s : Intensity.node_stats) ->
      let name = s.Intensity.node_name in
      let sampled =
        List.exists (fun p ->
            String.length name >= String.length p
            && String.sub name 0 (String.length p) = p)
          [ "stem"; "st1_b1"; "st2_b1"; "st3_b1"; "st4_b1"; "fc" ]
      in
      if sampled then
        Table.add_row tbl
          [ name; Table.cell_si s.Intensity.macs; Table.cell_f (Intensity.ai_total s) ])
    stats;
  Table.print tbl

let fig6b () =
  let tbl =
    Table.create
      ~title:"Fig. 6(b): BERT-large arithmetic intensity vs sequence length"
      [ ("seq", Table.Right); ("model AI", Table.Right); ("FC AI", Table.Right);
        ("attention AI", Table.Right) ]
  in
  List.iter
    (fun seq ->
      let g = (Option.get (Zoo.find "bert-large")).Zoo.build (Workload.prefill ~batch:1 seq) in
      let stats = Intensity.node_stats g in
      let agg kind_pred =
        let macs, traffic =
          List.fold_left
            (fun (m, t) (s : Intensity.node_stats) ->
              if kind_pred s then
                ( m +. s.Intensity.macs,
                  t +. s.Intensity.act_in_bytes +. s.Intensity.act_out_bytes
                  +. s.Intensity.weight_bytes )
              else (m, t))
            (0., 0.) stats
        in
        if traffic = 0. then 0. else macs /. traffic
      in
      Table.add_row tbl
        [ string_of_int seq;
          Table.cell_f (agg (fun _ -> true));
          Table.cell_f (agg (fun s -> s.Intensity.kind = Intensity.Static_weight));
          Table.cell_f (agg (fun s -> s.Intensity.kind = Intensity.Dynamic_matmul)) ])
    [ 32; 64; 128; 256; 512; 1024; 2048 ];
  Table.print tbl

let roofline () =
  let chip = Config.dynaplasia in
  let tbl =
    Table.create
      ~title:(Printf.sprintf
                "fixed-mode roofline (peak %.0f MAC/cy, ridge AI %.0f): memory-bound MAC share"
                (float_of_int chip.Chip.n_arrays *. chip.Chip.op_cim)
                (float_of_int chip.Chip.n_arrays *. chip.Chip.op_cim /. Chip.d_main chip))
      [ ("model", Table.Left); ("workload", Table.Left);
        ("memory-bound MACs", Table.Right) ]
  in
  let add key w =
    let e = Option.get (Zoo.find key) in
    let s = Cim_models.Roofline.analyze chip (e.Zoo.build w) in
    Table.add_row tbl
      [ e.Zoo.display; Workload.to_string w;
        Table.cell_pct s.Cim_models.Roofline.memory_bound_macs ]
  in
  add "resnet50" (Workload.prefill ~batch:1 1);
  add "bert-large" (Workload.prefill ~batch:1 64);
  add "llama2-7b" (Workload.decode ~batch:1 64);
  Table.print tbl

let run () =
  section "E2 | Figs. 5(c), 6(a), 6(b): arithmetic intensity";
  fig5c ();
  fig6a ();
  fig6b ();
  roofline ()
