lib/metaop/parse.ml: Buffer Cim_arch Float Flow List Printf String
