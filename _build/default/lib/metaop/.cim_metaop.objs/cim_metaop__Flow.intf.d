lib/metaop/flow.mli: Cim_arch Format
