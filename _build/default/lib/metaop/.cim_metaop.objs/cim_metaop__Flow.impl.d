lib/metaop/flow.ml: Cim_arch Format Hashtbl List Printf String
