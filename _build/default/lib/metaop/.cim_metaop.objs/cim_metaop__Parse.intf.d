lib/metaop/parse.mli: Flow
