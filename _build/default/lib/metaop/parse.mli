(** Parser for the meta-operator concrete syntax emitted by {!Flow.pp}, so
    flows can be stored, inspected and fed back to the simulator (and so the
    syntax of Fig. 13 is round-trip tested). *)

exception Error of string

val program_of_string : string -> Flow.program
(** Raises [Error] on malformed input. *)
