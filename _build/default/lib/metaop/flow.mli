(** Meta-operator flow (§4.4, Fig. 13): the compiler's output language.
    Alongside the paper's [CM.switch] operator and [parallel{}] grouping we
    carry standard compute/memory operators; each instruction references the
    source-graph node it implements so the functional simulator can check
    results against the reference executor. *)

type coord = Cim_arch.Chip.coord

(** Where a tensor lives when an instruction touches it. *)
type location =
  | Main_memory
  | Buffer                      (** the chip's original peripheral buffer *)
  | Mem_arrays of coord list    (** scratchpad built from memory-mode arrays *)

type slice = { lo : int; hi : int }
(** Output-feature range [lo, hi) a sub-operator covers; the full operator
    is the union of its sub-operators' slices. *)

type instr =
  | Switch of { target : Cim_arch.Mode.transition; arrays : coord list }
      (** [CM.switch(TOM|TOC, addr)] batched over arrays. *)
  | Write_weights of {
      label : string;
      node_id : int;
      arrays : coord list;
      slice : slice;
      bytes : int;
      in_place : bool;
          (** the arrays already hold the stationary data from a previous
              segment's memory-mode residency (§5.3): the write is a free
              relabel, not a reprogramming *)
    }  (** program a compute array group with (a slice of) an operator's
           stationary matrix *)
  | Load of { tensor : string; src : location; dst : location; bytes : int }
  | Store of { tensor : string; src : location; dst : location; bytes : int }
  | Compute of {
      label : string;
      node_id : int;
      arrays : coord list;        (** compute-mode arrays used *)
      mem_arrays : coord list;    (** memory-mode arrays feeding it *)
      inputs : string list;
      output : string;
      slice : slice;
      macs : float;
      ai : float;
    }
  | Vector_op of { label : string; node_id : int; inputs : string list; output : string }
      (** non-CIM operator executed on the peripheral vector unit *)
  | Parallel of instr list
      (** operators of one network segment, executed pipelined *)

type program = { source : string; instrs : instr list }

val switched_arrays : program -> (Cim_arch.Mode.transition * coord) list
(** Every (transition, array) pair in program order — the raw CM.switch
    stream. *)

val count_switches : program -> int

val validate : Cim_arch.Chip.t -> program -> (unit, string) result
(** Structural checks: coordinates in range, no array used in both modes
    inside one [Parallel] block, slices well-formed, no nested [Parallel]. *)

val pp : Format.formatter -> program -> unit
(** Concrete syntax (grammar of Fig. 13); parseable by {!Parse}. *)

val to_string : program -> string
