module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode

exception Error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type token =
  | Tident of string
  | Tstr of string
  | Tnum of float
  | Tlp | Trp | Tlb | Trb | Tlc | Trc
  | Tcomma | Teq | Tarrow
  | Teof

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  let is_ident c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '/'
  in
  let is_digit c = c >= '0' && c <= '9' in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '(' then (emit Tlp; incr i)
    else if c = ')' then (emit Trp; incr i)
    else if c = '[' then (emit Tlb; incr i)
    else if c = ']' then (emit Trb; incr i)
    else if c = '{' then (emit Tlc; incr i)
    else if c = '}' then (emit Trc; incr i)
    else if c = ',' then (emit Tcomma; incr i)
    else if c = '=' then (emit Teq; incr i)
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then (emit Tarrow; i := !i + 2)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let b = Buffer.create 16 in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\\' && !j + 1 < n then begin
          Buffer.add_char b src.[!j + 1];
          j := !j + 2
        end
        else begin
          Buffer.add_char b src.[!j];
          incr j
        end
      done;
      if !j >= n then perr "unterminated string";
      emit (Tstr (Buffer.contents b));
      i := !j + 1
    end
    else if is_digit c || (c = '-' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let j = ref !i in
      if src.[!j] = '-' then incr j;
      let accept c =
        is_digit c || c = '.' || c = 'e' || c = 'E' || c = '+' || c = '-'
      in
      (* consume while the char continues a float literal; '+'/'-' only
         directly after an exponent marker *)
      let continue_ = ref true in
      while !j < n && !continue_ do
        let c = src.[!j] in
        if is_digit c || c = '.' || c = 'e' || c = 'E' then incr j
        else if (c = '+' || c = '-') && !j > !i
                && (src.[!j - 1] = 'e' || src.[!j - 1] = 'E') then incr j
        else continue_ := false
      done;
      ignore accept;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      (try emit (Tnum (float_of_string word))
       with _ -> perr "bad number literal %S" word)
    end
    else if is_ident c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      emit (Tident (String.sub src !i (!j - !i)));
      i := !j
    end
    else perr "unexpected character %C" c
  done;
  emit Teof;
  List.rev !toks

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> Teof | t :: _ -> t
let advance s = match s.toks with [] -> () | _ :: r -> s.toks <- r

let expect s t what = if peek s = t then advance s else perr "expected %s" what

let ident s = match peek s with
  | Tident x -> advance s; x
  | _ -> perr "expected identifier"

let str s = match peek s with Tstr x -> advance s; x | _ -> perr "expected string"

let num s = match peek s with Tnum x -> advance s; x | _ -> perr "expected number"

let int_ s =
  let f = num s in
  let r = int_of_float f in
  if Float.abs (f -. float_of_int r) > 1e-9 then perr "expected integer";
  r

let coord s =
  expect s Tlp "'('";
  let x = int_ s in
  expect s Tcomma "','";
  let y = int_ s in
  expect s Trp "')'";
  { Chip.x; y }

let coords s =
  expect s Tlb "'['";
  let rec go acc =
    match peek s with
    | Trb -> advance s; List.rev acc
    | Tcomma -> advance s; go acc
    | _ -> go (coord s :: acc)
  in
  go []

let names s =
  expect s Tlp "'('";
  let rec go acc =
    match peek s with
    | Trp -> advance s; List.rev acc
    | Tcomma -> advance s; go acc
    | _ -> go (ident s :: acc)
  in
  go []

let slice s =
  (* [lo,hi) *)
  expect s Tlb "'['";
  let lo = int_ s in
  expect s Tcomma "','";
  let hi = int_ s in
  expect s Trp "')'";
  { Flow.lo; hi }

let location s =
  match ident s with
  | "main" -> Flow.Main_memory
  | "buffer" -> Flow.Buffer
  | "arrays" -> Flow.Mem_arrays (coords s)
  | w -> perr "unknown location %S" w

let key s expected =
  let k = ident s in
  if k <> expected then perr "expected key %S, got %S" expected k;
  expect s Teq "'='"

let rec instr s =
  match peek s with
  | Tident "parallel" ->
    advance s;
    expect s Tlc "'{'";
    let rec go acc =
      match peek s with
      | Trc -> advance s; Flow.Parallel (List.rev acc)
      | _ -> go (instr s :: acc)
    in
    go []
  | Tident "CM.switch" ->
    advance s;
    expect s Tlp "'('";
    let target =
      match ident s with
      | "TOM" -> Mode.To_memory
      | "TOC" -> Mode.To_compute
      | w -> perr "unknown switch type %S" w
    in
    expect s Tcomma "','";
    let arrays = coords s in
    expect s Trp "')'";
    Flow.Switch { target; arrays }
  | Tident "CIM.write" ->
    advance s;
    expect s Tlp "'('";
    let label = str s in
    expect s Tcomma "','";
    key s "node";
    let node_id = int_ s in
    expect s Tcomma "','";
    key s "arrays";
    let arrays = coords s in
    expect s Tcomma "','";
    key s "slice";
    let sl = slice s in
    expect s Tcomma "','";
    key s "bytes";
    let bytes = int_ s in
    expect s Tcomma "','";
    key s "inplace";
    let in_place = int_ s <> 0 in
    expect s Trp "')'";
    Flow.Write_weights { label; node_id; arrays; slice = sl; bytes; in_place }
  | Tident ("MEM.load" | "MEM.store") ->
    let which = ident s in
    expect s Tlp "'('";
    let tensor = ident s in
    expect s Tcomma "','";
    let src = location s in
    expect s Tarrow "'->'";
    let dst = location s in
    expect s Tcomma "','";
    let bytes = int_ s in
    expect s Trp "')'";
    if which = "MEM.load" then Flow.Load { tensor; src; dst; bytes }
    else Flow.Store { tensor; src; dst; bytes }
  | Tident "CIM.compute" ->
    advance s;
    expect s Tlp "'('";
    let label = str s in
    expect s Tcomma "','";
    key s "node";
    let node_id = int_ s in
    expect s Tcomma "','";
    key s "arrays";
    let arrays = coords s in
    expect s Tcomma "','";
    key s "mem";
    let mem_arrays = coords s in
    expect s Tcomma "','";
    key s "in";
    let inputs = names s in
    expect s Tcomma "','";
    key s "out";
    let output = match names s with [ o ] -> o | _ -> perr "expected one output" in
    expect s Tcomma "','";
    key s "slice";
    let sl = slice s in
    expect s Tcomma "','";
    key s "macs";
    let macs = num s in
    expect s Tcomma "','";
    key s "ai";
    let ai = num s in
    expect s Trp "')'";
    Flow.Compute
      { label; node_id; arrays; mem_arrays; inputs; output; slice = sl; macs; ai }
  | Tident "VEC.op" ->
    advance s;
    expect s Tlp "'('";
    let label = str s in
    expect s Tcomma "','";
    key s "node";
    let node_id = int_ s in
    expect s Tcomma "','";
    key s "in";
    let inputs = names s in
    expect s Tcomma "','";
    key s "out";
    let output = match names s with [ o ] -> o | _ -> perr "expected one output" in
    expect s Trp "')'";
    Flow.Vector_op { label; node_id; inputs; output }
  | Tident w -> perr "unknown operator %S" w
  | _ -> perr "expected an instruction"

let program_of_string src =
  let s = { toks = lex src } in
  (match peek s with
  | Tident "flow" -> advance s
  | _ -> perr "expected 'flow'");
  let source = str s in
  let rec go acc =
    match peek s with Teof -> List.rev acc | _ -> go (instr s :: acc)
  in
  { Flow.source; instrs = go [] }
