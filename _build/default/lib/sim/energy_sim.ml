module Chip = Cim_arch.Chip
module Energy = Cim_arch.Energy
module Flow = Cim_metaop.Flow

type breakdown = {
  mac_uj : float;
  operand_uj : float;
  weight_uj : float;
  switch_uj : float;
  static_uj : float;
  total_uj : float;
}

type result = {
  energy : breakdown;
  cycles : float;
  edp_uj_ms : float;
  profile : Energy.profile;
}

let pj_to_uj x = x /. 1e6

let run ?profile chip (p : Flow.program) =
  let prof = match profile with Some pr -> pr | None -> Energy.for_chip chip in
  let mac = ref 0. and operand = ref 0. and weight = ref 0. and switch = ref 0. in
  let rec walk (i : Flow.instr) =
    match i with
    | Flow.Parallel is -> List.iter walk is
    | Flow.Switch { arrays; _ } ->
      switch := !switch +. (prof.Energy.switch_pj *. float_of_int (List.length arrays))
    | Flow.Write_weights { bytes; _ } ->
      weight := !weight +. (prof.Energy.weight_write_pj_per_byte *. float_of_int bytes)
    | Flow.Load { bytes; dst; _ } ->
      (* data crosses the DRAM pins and lands in its destination *)
      let dst_cost =
        match dst with
        | Flow.Mem_arrays _ -> prof.Energy.cim_read_pj_per_byte
        | Flow.Buffer -> prof.Energy.buffer_pj_per_byte
        | Flow.Main_memory -> 0.
      in
      operand :=
        !operand +. ((prof.Energy.dram_pj_per_byte +. dst_cost) *. float_of_int bytes)
    | Flow.Store { bytes; src; dst; _ } ->
      let src_cost =
        match src with
        | Flow.Mem_arrays _ -> prof.Energy.cim_read_pj_per_byte
        | Flow.Buffer -> prof.Energy.buffer_pj_per_byte
        | Flow.Main_memory -> 0.
      in
      let dst_cost =
        match dst with
        | Flow.Main_memory -> prof.Energy.dram_pj_per_byte
        | Flow.Buffer -> prof.Energy.buffer_pj_per_byte
        | Flow.Mem_arrays _ -> prof.Energy.cim_read_pj_per_byte
      in
      operand := !operand +. ((src_cost +. dst_cost) *. float_of_int bytes)
    | Flow.Compute { macs; ai; mem_arrays; _ } ->
      mac := !mac +. (prof.Energy.mac_pj *. macs);
      (* the operator's streamed traffic (its AI denominator) moves through
         memory arrays when it has them, the buffer otherwise *)
      let traffic = if ai > 0. then macs /. ai else 0. in
      let per_byte =
        if mem_arrays <> [] then prof.Energy.cim_read_pj_per_byte
        else prof.Energy.buffer_pj_per_byte
      in
      operand := !operand +. (per_byte *. traffic)
    | Flow.Vector_op _ -> ()
  in
  List.iter walk p.Flow.instrs;
  let t = Timing.run chip p in
  let cycles = t.Timing.cycles.Timing.total in
  let seconds = cycles /. (chip.Chip.freq_mhz *. 1e6) in
  let static_uj = prof.Energy.static_mw *. seconds *. 1e3 in
  let mac_uj = pj_to_uj !mac
  and operand_uj = pj_to_uj !operand
  and weight_uj = pj_to_uj !weight
  and switch_uj = pj_to_uj !switch in
  let total_uj = mac_uj +. operand_uj +. weight_uj +. switch_uj +. static_uj in
  {
    energy = { mac_uj; operand_uj; weight_uj; switch_uj; static_uj; total_uj };
    cycles;
    edp_uj_ms = total_uj *. (seconds *. 1e3);
    profile = prof;
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>energy (%s): %.3f uJ total@,\
     mac %.3f | operands %.3f | weights %.3f | switch %.4f | static %.3f@,\
     EDP %.4f uJ*ms over %.0f cycles@]"
    r.profile.Energy.profile_name r.energy.total_uj r.energy.mac_uj
    r.energy.operand_uj r.energy.weight_uj r.energy.switch_uj
    r.energy.static_uj r.edp_uj_ms r.cycles
