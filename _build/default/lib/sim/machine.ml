module Chip = Cim_arch.Chip
module Mode = Cim_arch.Mode

type content =
  | Empty
  | Weights of { node_id : int; lo : int; hi : int }
  | Data of string

type t = {
  chip : Chip.t;
  modes : Mode.t array;
  contents : content array;
  mutable m2c : int;
  mutable c2m : int;
}

exception Fault of string

let fault fmt = Printf.ksprintf (fun s -> raise (Fault s)) fmt

let create chip ?(initial_mode = Mode.Memory) () =
  {
    chip;
    modes = Array.make chip.Chip.n_arrays initial_mode;
    contents = Array.make chip.Chip.n_arrays Empty;
    m2c = 0;
    c2m = 0;
  }

let idx t c =
  try Chip.index_of_coord t.chip c
  with Chip.Invalid_config m -> fault "machine: %s" m

let mode t c = t.modes.(idx t c)
let content t c = t.contents.(idx t c)

let switch t transition c =
  let i = idx t c in
  let target = Mode.apply transition in
  if t.modes.(i) = target then
    fault "redundant switch of array (%d,%d) to %s" c.Chip.x c.Chip.y
      (Mode.to_string target);
  (match transition with
  | Mode.To_compute -> t.m2c <- t.m2c + 1
  | Mode.To_memory -> t.c2m <- t.c2m + 1);
  t.modes.(i) <- target;
  (* mode change loses the scratchpad view of the cells but the physical
     weight charge survives *)
  (match t.contents.(i) with
  | Data _ -> t.contents.(i) <- Empty
  | Empty | Weights _ -> ())

let write_weights t c ~node_id ~lo ~hi =
  let i = idx t c in
  if t.modes.(i) <> Mode.Compute then
    fault "weight write to array (%d,%d) while in memory mode" c.Chip.x c.Chip.y;
  t.contents.(i) <- Weights { node_id; lo; hi }

let stage_data t c name =
  let i = idx t c in
  if t.modes.(i) <> Mode.Memory then
    fault "data load into array (%d,%d) while in compute mode" c.Chip.x c.Chip.y;
  t.contents.(i) <- Data name

let check_compute t c ~node_id =
  let i = idx t c in
  if t.modes.(i) <> Mode.Compute then
    fault "compute on array (%d,%d) in memory mode" c.Chip.x c.Chip.y;
  match t.contents.(i) with
  | Weights w when w.node_id = node_id -> ()
  | Weights w ->
    fault "array (%d,%d) holds weights of node %d, not %d" c.Chip.x c.Chip.y
      w.node_id node_id
  | Empty | Data _ ->
    fault "array (%d,%d) computes without programmed weights" c.Chip.x c.Chip.y

let check_memory t c =
  let i = idx t c in
  if t.modes.(i) <> Mode.Memory then
    fault "memory access to array (%d,%d) in compute mode" c.Chip.x c.Chip.y

let switch_counts t = (t.m2c, t.c2m)
