lib/sim/timing.ml: Cim_arch Cim_metaop Cim_util Float Format Hashtbl List Option
