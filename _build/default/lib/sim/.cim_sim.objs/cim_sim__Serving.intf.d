lib/sim/serving.mli: Cim_util
