lib/sim/functional.ml: Array Cim_arch Cim_metaop Cim_nnir Cim_tensor Float Hashtbl List Machine Printf
