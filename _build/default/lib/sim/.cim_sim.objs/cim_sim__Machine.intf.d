lib/sim/machine.mli: Cim_arch
