lib/sim/energy_sim.mli: Cim_arch Cim_metaop Format
