lib/sim/energy_sim.ml: Cim_arch Cim_metaop Format List Timing
