lib/sim/serving.ml: Array Cim_util Float List
