lib/sim/machine.ml: Array Cim_arch Printf
