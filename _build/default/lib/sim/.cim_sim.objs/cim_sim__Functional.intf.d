lib/sim/functional.mli: Cim_arch Cim_metaop Cim_nnir Cim_tensor
