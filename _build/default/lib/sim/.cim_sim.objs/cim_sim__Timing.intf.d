lib/sim/timing.mli: Cim_arch Cim_metaop Format
