(** Energy accounting over a meta-operator flow, complementing the timing
    simulator: dynamic energy per event class plus static energy from the
    timed cycle count, and the energy-delay product. All reported in
    microjoules. *)

type breakdown = {
  mac_uj : float;        (** compute-array MAC energy *)
  operand_uj : float;    (** operand movement: scratchpad + buffer + DRAM *)
  weight_uj : float;     (** weight programming *)
  switch_uj : float;     (** CM.switch events *)
  static_uj : float;     (** leakage over the timed execution *)
  total_uj : float;
}

type result = {
  energy : breakdown;
  cycles : float;            (** from the timing simulator *)
  edp_uj_ms : float;         (** energy-delay product: uJ x ms *)
  profile : Cim_arch.Energy.profile;
}

val run :
  ?profile:Cim_arch.Energy.profile -> Cim_arch.Chip.t ->
  Cim_metaop.Flow.program -> result
(** Walks the program once for dynamic energy (each [Compute]'s MACs and
    AI-implied operand traffic, loads/stores by destination, weight writes,
    switches) and uses {!Timing.run} for the cycle count behind the static
    term. The default profile is {!Cim_arch.Energy.for_chip}. *)

val pp : Format.formatter -> result -> unit
