(** Request-level serving simulation: drives a compiled model's cost
    profile with a trace of inference requests (prompt + generation
    lengths, arrival times) through a single CIM chip, FCFS. This is the
    system-level view behind the paper's LLM motivation: decode steps
    dominate wall-clock, and their bandwidth-bound nature is what dual-mode
    compilation accelerates. *)

type request = {
  arrival : float;   (** cycles since trace start *)
  prompt : int;      (** tokens pre-filled at once *)
  output : int;      (** tokens generated, one decode step each *)
}

type cost_profile = {
  prefill_cycles : int -> float;     (** prompt length -> cycles *)
  decode_cycles : int -> float;      (** kv length -> cycles per token *)
}

type stats = {
  completed : int;
  makespan : float;            (** cycles until the last request finishes *)
  mean_latency : float;        (** request arrival -> completion, cycles *)
  p95_latency : float;
  mean_ttft : float;           (** time to first token, cycles *)
  tokens : int;
  tokens_per_megacycle : float;
}

val interpolate : (int * float) list -> int -> float
(** Piecewise-linear interpolation through sample points (sorted
    internally, constant extrapolation outside). Raises
    [Invalid_argument] on an empty list. *)

val run : cost_profile -> request list -> stats
(** FCFS, no batching across requests: each request runs prefill then its
    decode steps with a growing KV length. Raises [Invalid_argument] on an
    empty trace. *)

val poisson_trace :
  Cim_util.Rng.t -> n:int -> mean_gap:float -> prompt:int -> output:int ->
  request list
(** Synthetic trace: exponential inter-arrival gaps, fixed shape. *)
