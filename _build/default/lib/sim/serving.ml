type request = { arrival : float; prompt : int; output : int }

type cost_profile = {
  prefill_cycles : int -> float;
  decode_cycles : int -> float;
}

type stats = {
  completed : int;
  makespan : float;
  mean_latency : float;
  p95_latency : float;
  mean_ttft : float;
  tokens : int;
  tokens_per_megacycle : float;
}

let interpolate samples =
  if samples = [] then invalid_arg "Serving.interpolate: no samples";
  let sorted = List.sort_uniq compare samples in
  let arr = Array.of_list sorted in
  fun x ->
    let n = Array.length arr in
    let xf = float_of_int x in
    if x <= fst arr.(0) then snd arr.(0)
    else if x >= fst arr.(n - 1) then snd arr.(n - 1)
    else begin
      (* find the bracketing pair *)
      let i = ref 0 in
      while fst arr.(!i + 1) < x do
        incr i
      done;
      let x0, y0 = arr.(!i) and x1, y1 = arr.(!i + 1) in
      let t = (xf -. float_of_int x0) /. float_of_int (x1 - x0) in
      y0 +. (t *. (y1 -. y0))
    end

let run profile requests =
  if requests = [] then invalid_arg "Serving.run: empty trace";
  let requests = List.sort (fun a b -> compare a.arrival b.arrival) requests in
  let now = ref 0. in
  let latencies = ref [] and ttfts = ref [] in
  let tokens = ref 0 in
  List.iter
    (fun r ->
      if r.prompt <= 0 || r.output < 0 then
        invalid_arg "Serving.run: malformed request";
      let start = Float.max !now r.arrival in
      let after_prefill = start +. profile.prefill_cycles r.prompt in
      ttfts := (after_prefill -. r.arrival) :: !ttfts;
      let finish = ref after_prefill in
      for t = 0 to r.output - 1 do
        finish := !finish +. profile.decode_cycles (r.prompt + t)
      done;
      now := !finish;
      tokens := !tokens + r.output + 1;
      latencies := (!finish -. r.arrival) :: !latencies)
    requests;
  let latencies = !latencies in
  {
    completed = List.length requests;
    makespan = !now;
    mean_latency = Cim_util.Stats.mean latencies;
    p95_latency = Cim_util.Stats.percentile 95. latencies;
    mean_ttft = Cim_util.Stats.mean !ttfts;
    tokens = !tokens;
    tokens_per_megacycle =
      (if !now > 0. then float_of_int !tokens /. (!now /. 1e6) else 0.);
  }

let poisson_trace rng ~n ~mean_gap ~prompt ~output =
  if n <= 0 then invalid_arg "Serving.poisson_trace: n must be positive";
  let t = ref 0. in
  List.init n (fun _ ->
      let u =
        let rec draw () =
          let u = Cim_util.Rng.float rng 1. in
          if u = 0. then draw () else u
        in
        draw ()
      in
      t := !t +. (-.mean_gap *. log u);
      { arrival = !t; prompt; output })
