(** Convolutional model builders for the ImageNet benchmarks in Fig. 14:
    VGG-16, ResNet-18/50 and MobileNetV2, all at 224x224 NCHW input. *)

val vgg16 : batch:int -> Cim_nnir.Graph.t
val resnet18 : batch:int -> Cim_nnir.Graph.t
val resnet50 : batch:int -> Cim_nnir.Graph.t
val mobilenet_v2 : batch:int -> Cim_nnir.Graph.t

val tiny_cnn : ?rng:Cim_util.Rng.t -> batch:int -> unit -> Cim_nnir.Graph.t
(** A 3-conv 8x8-input CNN, optionally with concrete weights, small enough
    for functional simulation. *)
