module B = Cim_nnir.Builder
module Shape = Cim_tensor.Shape

let build ?rng ?(name = "mlp") ~batch ~dims () =
  match dims with
  | [] | [ _ ] -> invalid_arg "Mlp.build: need at least two dims"
  | d0 :: rest ->
    let b = B.create (Printf.sprintf "%s_b%d" name batch) in
    let x = ref (B.input b "x" (Shape.of_list [ batch; d0 ])) in
    let d = ref d0 in
    let n = List.length rest in
    List.iteri
      (fun i dn ->
        let prefix = Printf.sprintf "fc%d" (i + 1) in
        let y =
          B.linear ~bias:false ?value_rng:rng b !x ~in_dim:!d ~out_dim:dn ~prefix
        in
        x := if i = n - 1 then y else B.relu b y;
        d := dn)
      rest;
    B.finish b ~outputs:[ !x ]
