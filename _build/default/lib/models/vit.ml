module B = Cim_nnir.Builder
module Shape = Cim_tensor.Shape

let patch = 16
let image = 224
let tokens = image / patch * (image / patch) (* 196 *)

let config =
  {
    Transformer.model_name = "ViT-Base/16";
    n_layers = 12;
    d_model = 768;
    n_heads = 12;
    d_ffn = 3072;
    vocab = 1000; (* classification head width *)
    norm = Transformer.Layernorm;
    act = Transformer.Gelu_act;
    causal = false;
  }

let build ~batch =
  let d = config.Transformer.d_model in
  let b = B.create (Printf.sprintf "ViT-Base16_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 3; image; image ]) in
  (* patch embedding: Conv 16x16 stride 16 -> [b; d; 14; 14] *)
  let pw = B.weight b "patch_w" (Shape.of_list [ d; 3; patch; patch ]) in
  let h = B.conv ~name:"patch_embed" b x pw ~stride:patch ~pad:0 () in
  (* NCHW -> token-major [b*196; d] *)
  let h = B.reshape b h [ batch; d; tokens ] in
  let h = B.transpose b h [ 0; 2; 1 ] in
  let h = B.reshape b h [ batch * tokens; d ] in
  (* the encoder sees a prefill workload of 196 tokens *)
  let w = Workload.prefill ~batch tokens in
  let h =
    Transformer.append_blocks config w b h ~start:0 ~count:config.Transformer.n_layers
  in
  (* final norm, mean-pool tokens via the NCHW global pool, classify *)
  let gamma = B.weight b "final_ln_g" (Shape.of_list [ d ]) in
  let beta = B.weight b "final_ln_b" (Shape.of_list [ d ]) in
  let h = B.layernorm b h ~gamma ~beta in
  let h = B.reshape b h [ batch; tokens; d ] in
  let h = B.transpose b h [ 0; 2; 1 ] in
  let side = image / patch in
  let h = B.reshape b h [ batch; d; side; side ] in
  let h = B.global_avg_pool b h in
  let logits = B.linear ~bias:false b h ~in_dim:d ~out_dim:1000 ~prefix:"head" in
  B.finish b ~outputs:[ logits ]

let param_count () =
  let d = config.Transformer.d_model and f = config.Transformer.d_ffn in
  let per_layer = (4 * d * d) + (2 * d * f) + (4 * d) in
  (d * 3 * patch * patch) + (config.Transformer.n_layers * per_layer) + (2 * d)
  + (d * 1000)
