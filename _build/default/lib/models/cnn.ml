module B = Cim_nnir.Builder
module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor

let conv_layer ?rng b x ~in_c ~out_c ~k ~stride ~pad ?(groups = 1) ~prefix () =
  let wshape = Shape.of_list [ out_c; in_c / groups; k; k ] in
  let value = Option.map (fun rng -> Tensor.rand rng wshape ~lo:(-0.3) ~hi:0.3) rng in
  let w = B.weight ?value b (prefix ^ "_w") wshape in
  B.conv ~name:prefix b x w ~stride ~pad ~groups ()

let conv_relu ?rng b x ~in_c ~out_c ~k ~stride ~pad ?groups ~prefix () =
  B.relu b (conv_layer ?rng b x ~in_c ~out_c ~k ~stride ~pad ?groups ~prefix ())

(* MobileNet's activation is ReLU6 = Clip(0, 6) *)
let conv_relu6 ?rng b x ~in_c ~out_c ~k ~stride ~pad ?groups ~prefix () =
  B.relu6 b (conv_layer ?rng b x ~in_c ~out_c ~k ~stride ~pad ?groups ~prefix ())

(* --- VGG-16: 13 convs in 5 stages + 3 FC --- *)

let vgg16 ~batch =
  let b = B.create (Printf.sprintf "VGG-16_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 3; 224; 224 ]) in
  let stage x ~in_c ~out_c ~convs ~prefix =
    let cur = ref x and c = ref in_c in
    for i = 1 to convs do
      cur :=
        conv_relu b !cur ~in_c:!c ~out_c ~k:3 ~stride:1 ~pad:1
          ~prefix:(Printf.sprintf "%s_conv%d" prefix i) ();
      c := out_c
    done;
    B.maxpool b !cur ~k:2 ~stride:2 ()
  in
  let x = stage x ~in_c:3 ~out_c:64 ~convs:2 ~prefix:"s1" in
  let x = stage x ~in_c:64 ~out_c:128 ~convs:2 ~prefix:"s2" in
  let x = stage x ~in_c:128 ~out_c:256 ~convs:3 ~prefix:"s3" in
  let x = stage x ~in_c:256 ~out_c:512 ~convs:3 ~prefix:"s4" in
  let x = stage x ~in_c:512 ~out_c:512 ~convs:3 ~prefix:"s5" in
  let x = B.reshape b x [ batch; 512 * 7 * 7 ] in
  let x = B.relu b (B.linear ~bias:false b x ~in_dim:(512 * 7 * 7) ~out_dim:4096 ~prefix:"fc6") in
  let x = B.relu b (B.linear ~bias:false b x ~in_dim:4096 ~out_dim:4096 ~prefix:"fc7") in
  let logits = B.linear ~bias:false b x ~in_dim:4096 ~out_dim:1000 ~prefix:"fc8" in
  B.finish b ~outputs:[ logits ]

(* --- ResNet --- *)

let basic_block b x ~in_c ~out_c ~stride ~prefix =
  let main =
    conv_relu b x ~in_c ~out_c ~k:3 ~stride ~pad:1 ~prefix:(prefix ^ "_a") ()
  in
  let main = conv_layer b main ~in_c:out_c ~out_c ~k:3 ~stride:1 ~pad:1 ~prefix:(prefix ^ "_b") () in
  let shortcut =
    if stride <> 1 || in_c <> out_c then
      conv_layer b x ~in_c ~out_c ~k:1 ~stride ~pad:0 ~prefix:(prefix ^ "_sc") ()
    else x
  in
  B.relu b (B.add b main shortcut)

let bottleneck b x ~in_c ~mid_c ~out_c ~stride ~prefix =
  let main = conv_relu b x ~in_c ~out_c:mid_c ~k:1 ~stride:1 ~pad:0 ~prefix:(prefix ^ "_a") () in
  let main = conv_relu b main ~in_c:mid_c ~out_c:mid_c ~k:3 ~stride ~pad:1 ~prefix:(prefix ^ "_b") () in
  let main = conv_layer b main ~in_c:mid_c ~out_c ~k:1 ~stride:1 ~pad:0 ~prefix:(prefix ^ "_c") () in
  let shortcut =
    if stride <> 1 || in_c <> out_c then
      conv_layer b x ~in_c ~out_c ~k:1 ~stride ~pad:0 ~prefix:(prefix ^ "_sc") ()
    else x
  in
  B.relu b (B.add b main shortcut)

let resnet_stem b x ~batch:_ =
  let x = conv_relu b x ~in_c:3 ~out_c:64 ~k:7 ~stride:2 ~pad:3 ~prefix:"stem" () in
  B.maxpool b x ~k:3 ~stride:2 ~pad:1 ()

let resnet18 ~batch =
  let b = B.create (Printf.sprintf "ResNet-18_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 3; 224; 224 ]) in
  let x = resnet_stem b x ~batch in
  let stage x ~in_c ~out_c ~blocks ~stride ~prefix =
    let cur = ref x and c = ref in_c in
    for i = 1 to blocks do
      let s = if i = 1 then stride else 1 in
      cur := basic_block b !cur ~in_c:!c ~out_c ~stride:s
               ~prefix:(Printf.sprintf "%s_b%d" prefix i);
      c := out_c
    done;
    !cur
  in
  let x = stage x ~in_c:64 ~out_c:64 ~blocks:2 ~stride:1 ~prefix:"st1" in
  let x = stage x ~in_c:64 ~out_c:128 ~blocks:2 ~stride:2 ~prefix:"st2" in
  let x = stage x ~in_c:128 ~out_c:256 ~blocks:2 ~stride:2 ~prefix:"st3" in
  let x = stage x ~in_c:256 ~out_c:512 ~blocks:2 ~stride:2 ~prefix:"st4" in
  let x = B.global_avg_pool b x in
  let logits = B.linear ~bias:false b x ~in_dim:512 ~out_dim:1000 ~prefix:"fc" in
  B.finish b ~outputs:[ logits ]

let resnet50 ~batch =
  let b = B.create (Printf.sprintf "ResNet-50_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 3; 224; 224 ]) in
  let x = resnet_stem b x ~batch in
  let stage x ~in_c ~mid_c ~out_c ~blocks ~stride ~prefix =
    let cur = ref x and c = ref in_c in
    for i = 1 to blocks do
      let s = if i = 1 then stride else 1 in
      cur := bottleneck b !cur ~in_c:!c ~mid_c ~out_c ~stride:s
               ~prefix:(Printf.sprintf "%s_b%d" prefix i);
      c := out_c
    done;
    !cur
  in
  let x = stage x ~in_c:64 ~mid_c:64 ~out_c:256 ~blocks:3 ~stride:1 ~prefix:"st1" in
  let x = stage x ~in_c:256 ~mid_c:128 ~out_c:512 ~blocks:4 ~stride:2 ~prefix:"st2" in
  let x = stage x ~in_c:512 ~mid_c:256 ~out_c:1024 ~blocks:6 ~stride:2 ~prefix:"st3" in
  let x = stage x ~in_c:1024 ~mid_c:512 ~out_c:2048 ~blocks:3 ~stride:2 ~prefix:"st4" in
  let x = B.global_avg_pool b x in
  let logits = B.linear ~bias:false b x ~in_dim:2048 ~out_dim:1000 ~prefix:"fc" in
  B.finish b ~outputs:[ logits ]

(* --- MobileNetV2: inverted residual blocks with depthwise convolutions --- *)

let inverted_residual b x ~in_c ~out_c ~stride ~expand ~prefix =
  let mid = in_c * expand in
  let h =
    if expand = 1 then x
    else conv_relu6 b x ~in_c ~out_c:mid ~k:1 ~stride:1 ~pad:0 ~prefix:(prefix ^ "_exp") ()
  in
  let h =
    conv_relu6 b h ~in_c:mid ~out_c:mid ~k:3 ~stride ~pad:1 ~groups:mid
      ~prefix:(prefix ^ "_dw") ()
  in
  let h = conv_layer b h ~in_c:mid ~out_c ~k:1 ~stride:1 ~pad:0 ~prefix:(prefix ^ "_proj") () in
  if stride = 1 && in_c = out_c then B.add b x h else h

let mobilenet_v2 ~batch =
  let b = B.create (Printf.sprintf "MobileNetV2_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 3; 224; 224 ]) in
  let x = conv_relu6 b x ~in_c:3 ~out_c:32 ~k:3 ~stride:2 ~pad:1 ~prefix:"stem" () in
  (* (expand, out_c, repeats, first stride) per the MobileNetV2 paper *)
  let settings =
    [ (1, 16, 1, 1); (6, 24, 2, 2); (6, 32, 3, 2); (6, 64, 4, 2); (6, 96, 3, 1);
      (6, 160, 3, 2); (6, 320, 1, 1) ]
  in
  let cur = ref x and c = ref 32 and idx = ref 0 in
  List.iter
    (fun (expand, out_c, repeats, stride) ->
      for i = 1 to repeats do
        let s = if i = 1 then stride else 1 in
        incr idx;
        cur :=
          inverted_residual b !cur ~in_c:!c ~out_c ~stride:s ~expand
            ~prefix:(Printf.sprintf "ir%d" !idx);
        c := out_c
      done)
    settings;
  let x = conv_relu6 b !cur ~in_c:320 ~out_c:1280 ~k:1 ~stride:1 ~pad:0 ~prefix:"head" () in
  let x = B.global_avg_pool b x in
  let logits = B.linear ~bias:false b x ~in_dim:1280 ~out_dim:1000 ~prefix:"fc" in
  B.finish b ~outputs:[ logits ]

let tiny_cnn ?rng ~batch () =
  let b = B.create (Printf.sprintf "tiny-cnn_b%d" batch) in
  let x = B.input b "image" (Shape.of_list [ batch; 2; 8; 8 ]) in
  let x = conv_relu ?rng b x ~in_c:2 ~out_c:4 ~k:3 ~stride:1 ~pad:1 ~prefix:"c1" () in
  let x = B.maxpool b x ~k:2 ~stride:2 () in
  let x = conv_relu ?rng b x ~in_c:4 ~out_c:8 ~k:3 ~stride:1 ~pad:1 ~prefix:"c2" () in
  let x = B.global_avg_pool b x in
  let logits =
    B.linear ~bias:false ?value_rng:rng b x ~in_dim:8 ~out_dim:10 ~prefix:"fc"
  in
  B.finish b ~outputs:[ logits ]
