module B = Cim_nnir.Builder
module Shape = Cim_tensor.Shape

type norm = Layernorm | Rmsnorm
type activation = Gelu_act | Silu_gated

type config = {
  model_name : string;
  n_layers : int;
  d_model : int;
  n_heads : int;
  d_ffn : int;
  vocab : int;
  norm : norm;
  act : activation;
  causal : bool;
}

let bert_large =
  { model_name = "BERT-large"; n_layers = 24; d_model = 1024; n_heads = 16;
    d_ffn = 4096; vocab = 30522; norm = Layernorm; act = Gelu_act; causal = false }

let opt_6_7b =
  { model_name = "OPT-6.7B"; n_layers = 32; d_model = 4096; n_heads = 32;
    d_ffn = 16384; vocab = 50272; norm = Layernorm; act = Gelu_act; causal = true }

let opt_13b =
  { model_name = "OPT-13B"; n_layers = 40; d_model = 5120; n_heads = 40;
    d_ffn = 20480; vocab = 50272; norm = Layernorm; act = Gelu_act; causal = true }

let gpt2_xl =
  { model_name = "GPT-2 XL"; n_layers = 48; d_model = 1600; n_heads = 25;
    d_ffn = 6400; vocab = 50257; norm = Layernorm; act = Gelu_act; causal = true }

let llama2_7b =
  { model_name = "LLaMA2-7B"; n_layers = 32; d_model = 4096; n_heads = 32;
    d_ffn = 11008; vocab = 32000; norm = Rmsnorm; act = Silu_gated; causal = true }

let param_count cfg =
  let d = cfg.d_model and f = cfg.d_ffn in
  let attn = 4 * d * d in
  let ffn = match cfg.act with Gelu_act -> 2 * d * f | Silu_gated -> 3 * d * f in
  let norms = match cfg.norm with Layernorm -> 4 * d | Rmsnorm -> 2 * d in
  let final_norm = match cfg.norm with Layernorm -> 2 * d | Rmsnorm -> d in
  (cfg.vocab * d) + (cfg.n_layers * (attn + ffn + norms)) + final_norm
  + (cfg.vocab * d)

let apply_norm cfg b x ~prefix =
  let d = cfg.d_model in
  match cfg.norm with
  | Layernorm ->
    let gamma = B.weight b (prefix ^ "_ln_g") (Shape.of_list [ d ]) in
    let beta = B.weight b (prefix ^ "_ln_b") (Shape.of_list [ d ]) in
    B.layernorm b x ~gamma ~beta
  | Rmsnorm ->
    let gamma = B.weight b (prefix ^ "_rms_g") (Shape.of_list [ d ]) in
    B.rmsnorm b x ~gamma

let ffn cfg b x ~prefix =
  let d = cfg.d_model and f = cfg.d_ffn in
  match cfg.act with
  | Gelu_act ->
    let h1 = B.linear ~bias:false b x ~in_dim:d ~out_dim:f ~prefix:(prefix ^ "_fc1") in
    let h1 = B.gelu b h1 in
    B.linear ~bias:false b h1 ~in_dim:f ~out_dim:d ~prefix:(prefix ^ "_fc2")
  | Silu_gated ->
    let gate = B.linear ~bias:false b x ~in_dim:d ~out_dim:f ~prefix:(prefix ^ "_gate") in
    let up = B.linear ~bias:false b x ~in_dim:d ~out_dim:f ~prefix:(prefix ^ "_up") in
    let h = B.mul b (B.silu b gate) up in
    B.linear ~bias:false b h ~in_dim:f ~out_dim:d ~prefix:(prefix ^ "_down")

(* One attention + FFN block operating on hidden states [bt; d] where
   bt = batch * tokens_this_step. For decode steps the past keys/values
   arrive as graph inputs shaped [batch*heads; kv; d_head] and the current
   token's K/V are concatenated on — the concat output is what a serving
   runtime would write back into the cache. *)
let block cfg (w : Workload.t) b hidden ~prefix ~kv_inputs =
  let d = cfg.d_model and h = cfg.n_heads in
  let dh = d / h in
  let t = Workload.tokens_this_step w in
  let batch = w.Workload.batch in
  let bt = batch * t in
  let bh = batch * h in
  let x = apply_norm cfg b hidden ~prefix:(prefix ^ "_attn") in
  let q = B.linear ~bias:false b x ~in_dim:d ~out_dim:d ~prefix:(prefix ^ "_q") in
  let k = B.linear ~bias:false b x ~in_dim:d ~out_dim:d ~prefix:(prefix ^ "_k") in
  let v = B.linear ~bias:false b x ~in_dim:d ~out_dim:d ~prefix:(prefix ^ "_v") in
  (* [bt; d] -> [bh; t; dh] *)
  let heads y =
    let y = B.reshape b y [ batch; t; h; dh ] in
    let y = B.transpose b y [ 0; 2; 1; 3 ] in
    B.reshape b y [ bh; t; dh ]
  in
  let q3 = heads q and k3 = heads k and v3 = heads v in
  let kfull, vfull =
    match kv_inputs with
    | None -> (k3, v3)
    | Some (kc, vc) -> (B.concat b kc k3 ~axis:1, B.concat b vc v3 ~axis:1)
  in
  (* scores: [bh; t; ctx] = q3 x kfull^T ; both operands are activations, so
     this MatMul is the dynamic-weight kind the dual-mode compiler cares
     about (the K cache can live in memory-mode arrays). *)
  let kt = B.transpose b kfull [ 0; 2; 1 ] in
  let scores = B.matmul b q3 kt in
  let probs = B.softmax b scores in
  let ctx = B.matmul b probs vfull in
  (* back to [bt; d] *)
  let ctx =
    let y = B.reshape b ctx [ batch; h; t; dh ] in
    let y = B.transpose b y [ 0; 2; 1; 3 ] in
    B.reshape b y [ bt; d ]
  in
  let attn_out =
    B.linear ~bias:false b ctx ~in_dim:d ~out_dim:d ~prefix:(prefix ^ "_o")
  in
  let hidden = B.add b hidden attn_out in
  let x2 = apply_norm cfg b hidden ~prefix:(prefix ^ "_ffn") in
  let ffn_out = ffn cfg b x2 ~prefix in
  B.add b hidden ffn_out

let kv_cache_inputs cfg (w : Workload.t) b ~prefix =
  match w.Workload.phase with
  | Workload.Prefill _ -> None
  | Workload.Decode { kv_len } ->
    if kv_len = 0 then None
    else begin
      let bh = w.Workload.batch * cfg.n_heads in
      let dh = cfg.d_model / cfg.n_heads in
      let shape = Shape.of_list [ bh; kv_len; dh ] in
      let kc = B.input b (prefix ^ "_k_cache") shape in
      let vc = B.input b (prefix ^ "_v_cache") shape in
      Some (kc, vc)
    end

let append_blocks cfg (w : Workload.t) b hidden ~start ~count =
  let cur = ref hidden in
  for l = start to start + count - 1 do
    let prefix = Printf.sprintf "l%d" l in
    let kv = kv_cache_inputs cfg w b ~prefix in
    cur := block cfg w b !cur ~prefix ~kv_inputs:kv
  done;
  !cur

let build_layer cfg (w : Workload.t) ~layer_index =
  if cfg.d_model mod cfg.n_heads <> 0 then
    invalid_arg "Transformer: d_model must divide by n_heads";
  let b = B.create (Printf.sprintf "%s_layer%d_%s" cfg.model_name layer_index
                      (Workload.to_string w)) in
  let bt = w.Workload.batch * Workload.tokens_this_step w in
  let hidden = B.input b "hidden" (Shape.of_list [ bt; cfg.d_model ]) in
  let prefix = Printf.sprintf "l%d" layer_index in
  let kv = kv_cache_inputs cfg w b ~prefix in
  let out = block cfg w b hidden ~prefix ~kv_inputs:kv in
  B.finish b ~outputs:[ out ]

let build cfg (w : Workload.t) =
  if cfg.d_model mod cfg.n_heads <> 0 then
    invalid_arg "Transformer: d_model must divide by n_heads";
  let b = B.create (Printf.sprintf "%s_%s" cfg.model_name (Workload.to_string w)) in
  let bt = w.Workload.batch * Workload.tokens_this_step w in
  let ids = B.input b "ids" (Shape.of_list [ bt ]) in
  let emb_w = B.weight b "tok_emb" (Shape.of_list [ cfg.vocab; cfg.d_model ]) in
  let hidden = B.embedding b ids emb_w in
  let hidden = ref hidden in
  for l = 0 to cfg.n_layers - 1 do
    let prefix = Printf.sprintf "l%d" l in
    let kv = kv_cache_inputs cfg w b ~prefix in
    hidden := block cfg w b !hidden ~prefix ~kv_inputs:kv
  done;
  let normed = apply_norm cfg b !hidden ~prefix:"final" in
  let logits =
    B.linear ~bias:false b normed ~in_dim:cfg.d_model ~out_dim:cfg.vocab
      ~prefix:"lm_head"
  in
  B.finish b ~outputs:[ logits ]

let tiny ?(name = "tiny-transformer") () =
  { model_name = name; n_layers = 2; d_model = 16; n_heads = 2; d_ffn = 32;
    vocab = 50; norm = Layernorm; act = Gelu_act; causal = true }
