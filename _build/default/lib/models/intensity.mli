(** Arithmetic-intensity analysis (Figs. 1(b), 5(c), 6). MAC counts and data
    traffic are derived from inferred shapes; int8 means one byte per
    element. *)

type kind =
  | Static_weight   (** Gemm/Conv/MatMul with an initializer operand (FC-like) *)
  | Dynamic_matmul  (** MatMul between two activations (QK^T, probs x V) *)

type node_stats = {
  node_id : int;
  node_name : string;
  kind : kind;
  macs : float;
  weight_bytes : float;   (** static weight footprint; 0 for Dynamic_matmul *)
  act_in_bytes : float;   (** dynamic input bytes, incl. KV-cache operands *)
  act_out_bytes : float;
}

val node_stats : Cim_nnir.Graph.t -> node_stats list
(** One entry per CIM-supported node, topological order. Raises
    [Cim_nnir.Shape_infer.Error] on malformed graphs. *)

val ai_dynamic : node_stats -> float
(** MACs per byte of dynamic traffic — the [AI_{O_i}] of Eq. 10, where
    static weights are excluded because their programming cost is charged
    separately (Eq. 2). *)

val ai_total : node_stats -> float
(** MACs per byte of *all* traffic including weights — the FLOPs/MemOP
    measure behind Fig. 5(c) (LLaMA2 ~ 2, ResNet-50 ~ 66). *)

val model_ai : Cim_nnir.Graph.t -> float
(** Whole-model [ai_total]: total MACs over total traffic. *)

val model_ai_dynamic : Cim_nnir.Graph.t -> float
