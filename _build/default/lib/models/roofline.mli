(** Roofline analysis of a network against a fixed-mode chip: for each CIM
    operator, its arithmetic intensity and the attainable MAC rate
    [min(peak_compute, AI * D_main)] with every array in compute mode. The
    memory-bound share of work is exactly the opportunity dual-mode
    compilation feeds on (Figs. 1(b), 5). *)

type bound = Compute_bound | Memory_bound

type point = {
  label : string;
  ai : float;                (** MACs per byte, weights included *)
  macs : float;
  attainable : float;        (** MACs/cycle under the fixed-mode roofline *)
  bound : bound;
}

type summary = {
  points : point list;
  ridge_ai : float;          (** AI at which the roofline flattens *)
  peak : float;              (** peak compute rate, MACs/cycle *)
  memory_bound_macs : float; (** MAC fraction below the ridge *)
}

val analyze : Cim_arch.Chip.t -> Cim_nnir.Graph.t -> summary
