type phase = Prefill of { seq : int } | Decode of { kv_len : int }
type t = { batch : int; phase : phase }

let prefill ?(batch = 1) seq =
  if seq <= 0 then invalid_arg "Workload.prefill: seq must be positive";
  if batch <= 0 then invalid_arg "Workload.prefill: batch must be positive";
  { batch; phase = Prefill { seq } }

let decode ?(batch = 1) kv_len =
  if kv_len < 0 then invalid_arg "Workload.decode: negative kv_len";
  if batch <= 0 then invalid_arg "Workload.decode: batch must be positive";
  { batch; phase = Decode { kv_len } }

let tokens_this_step t = match t.phase with Prefill { seq } -> seq | Decode _ -> 1

let context_len t =
  match t.phase with Prefill { seq } -> seq | Decode { kv_len } -> kv_len + 1

let to_string t =
  match t.phase with
  | Prefill { seq } -> Printf.sprintf "prefill(batch=%d, seq=%d)" t.batch seq
  | Decode { kv_len } -> Printf.sprintf "decode(batch=%d, kv=%d)" t.batch kv_len
