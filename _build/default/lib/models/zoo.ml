type family = Cnn | Encoder_only | Decoder_only

type entry = {
  key : string;
  display : string;
  family : family;
  build : Workload.t -> Cim_nnir.Graph.t;
  layer : (Workload.t -> Cim_nnir.Graph.t) option;
  n_layers : int;
  params : int;
}

let cnn_params build =
  (* Parameter count straight off the graph, computed once at first use. *)
  let memo = lazy (Cim_nnir.Graph.param_count (build ~batch:1)) in
  fun () -> Lazy.force memo

let cnn key display build =
  let params = cnn_params build in
  {
    key;
    display;
    family = Cnn;
    build = (fun (w : Workload.t) -> build ~batch:w.Workload.batch);
    layer = None;
    n_layers = 1;
    params = params ();
  }

let transformer key (cfg : Transformer.config) family =
  {
    key;
    display = cfg.Transformer.model_name;
    family;
    build = (fun w -> Transformer.build cfg w);
    layer = Some (fun w -> Transformer.build_layer cfg w ~layer_index:0);
    n_layers = cfg.Transformer.n_layers;
    params = Transformer.param_count cfg;
  }

let all =
  [
    cnn "mobilenetv2" "MobileNetV2" Cnn.mobilenet_v2;
    cnn "resnet18" "ResNet-18" Cnn.resnet18;
    cnn "resnet50" "ResNet-50" Cnn.resnet50;
    cnn "vgg16" "VGG-16" Cnn.vgg16;
    transformer "bert-large" Transformer.bert_large Encoder_only;
    {
      key = "vit-base";
      display = "ViT-Base/16";
      family = Encoder_only;
      build = (fun (w : Workload.t) -> Vit.build ~batch:w.Workload.batch);
      layer = Some (fun (w : Workload.t) ->
          Transformer.build_layer Vit.config
            (Workload.prefill ~batch:w.Workload.batch 196) ~layer_index:0);
      n_layers = Vit.config.Transformer.n_layers;
      params = Vit.param_count ();
    };
    transformer "gpt2-xl" Transformer.gpt2_xl Decoder_only;
    transformer "llama2-7b" Transformer.llama2_7b Decoder_only;
    transformer "opt-6.7b" Transformer.opt_6_7b Decoder_only;
    transformer "opt-13b" Transformer.opt_13b Decoder_only;
  ]

let find key = List.find_opt (fun e -> e.key = key) all
let names = List.map (fun e -> e.key) all
