(** Plain multi-layer perceptrons: the minimal workload for quickstarts,
    tests and the Fig. 4 mapping-contrast demo. Batch 1 inference through
    wide layers is strongly bandwidth-bound, which is exactly where dual
    mode shows its value on a small example. *)

val build :
  ?rng:Cim_util.Rng.t -> ?name:string -> batch:int -> dims:int list -> unit ->
  Cim_nnir.Graph.t
(** [build ~batch ~dims:[d0; d1; ...; dn] ()] chains [n] Gemm+ReLU layers
    (no activation after the last). [dims] needs at least two entries.
    With [rng], concrete weights are attached for functional simulation. *)
