lib/models/roofline.mli: Cim_arch Cim_nnir
