lib/models/zoo.ml: Cim_nnir Cnn Lazy List Transformer Vit Workload
