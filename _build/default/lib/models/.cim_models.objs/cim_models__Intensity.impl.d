lib/models/intensity.ml: Cim_nnir Cim_tensor Hashtbl List
