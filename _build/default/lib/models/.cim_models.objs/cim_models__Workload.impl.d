lib/models/workload.ml: Printf
