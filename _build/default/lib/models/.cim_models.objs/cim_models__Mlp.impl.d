lib/models/mlp.ml: Cim_nnir Cim_tensor List Printf
