lib/models/roofline.ml: Cim_arch Float Intensity List
