lib/models/cnn.mli: Cim_nnir Cim_util
