lib/models/transformer.ml: Cim_nnir Cim_tensor Printf Workload
