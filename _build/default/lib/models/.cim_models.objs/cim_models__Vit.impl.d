lib/models/vit.ml: Cim_nnir Cim_tensor Printf Transformer Workload
