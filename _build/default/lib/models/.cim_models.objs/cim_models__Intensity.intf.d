lib/models/intensity.mli: Cim_nnir
