lib/models/cnn.ml: Cim_nnir Cim_tensor List Option Printf
