lib/models/mlp.mli: Cim_nnir Cim_util
