lib/models/zoo.mli: Cim_nnir Workload
