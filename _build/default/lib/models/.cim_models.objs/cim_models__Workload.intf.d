lib/models/workload.mli:
