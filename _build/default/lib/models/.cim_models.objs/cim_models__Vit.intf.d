lib/models/vit.mli: Cim_nnir Transformer
