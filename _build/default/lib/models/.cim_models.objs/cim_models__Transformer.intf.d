lib/models/transformer.mli: Cim_nnir Workload
