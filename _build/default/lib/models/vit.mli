(** Vision Transformer (ViT-B/16): the paper's motivation cites image
    transformers among the diverse architectures a dual-mode compiler must
    serve. A 16x16 convolutional patch embedding feeds 12 standard encoder
    blocks; classification uses mean pooling over the patch tokens. *)

val config : Transformer.config
(** d_model 768, 12 heads, FFN 3072, 12 layers. *)

val build : batch:int -> Cim_nnir.Graph.t
(** 224x224 NCHW input; 196 patch tokens per image. *)

val param_count : unit -> int
