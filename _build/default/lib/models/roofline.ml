module Chip = Cim_arch.Chip

type bound = Compute_bound | Memory_bound

type point = {
  label : string;
  ai : float;
  macs : float;
  attainable : float;
  bound : bound;
}

type summary = {
  points : point list;
  ridge_ai : float;
  peak : float;
  memory_bound_macs : float;
}

let analyze chip g =
  let peak = float_of_int chip.Chip.n_arrays *. chip.Chip.op_cim in
  let bw = Chip.d_main chip in
  let ridge_ai = peak /. bw in
  let stats = Intensity.node_stats g in
  let points =
    List.filter_map
      (fun (s : Intensity.node_stats) ->
        if s.Intensity.macs <= 0. then None
        else begin
          let ai = Intensity.ai_total s in
          let memory_rate = ai *. bw in
          let attainable = Float.min peak memory_rate in
          Some
            {
              label = s.Intensity.node_name;
              ai;
              macs = s.Intensity.macs;
              attainable;
              bound = (if memory_rate < peak then Memory_bound else Compute_bound);
            }
        end)
      stats
  in
  let total = List.fold_left (fun acc p -> acc +. p.macs) 0. points in
  let mem =
    List.fold_left
      (fun acc p -> if p.bound = Memory_bound then acc +. p.macs else acc)
      0. points
  in
  {
    points;
    ridge_ai;
    peak;
    memory_bound_macs = (if total > 0. then mem /. total else 0.);
  }
