(** Workload descriptors: the knobs the paper sweeps in §5.4 (batch size,
    input/output sequence lengths, prefill vs. decode stage). *)

type phase =
  | Prefill of { seq : int }
      (** process [seq] input tokens at once (BERT encode is always this) *)
  | Decode of { kv_len : int }
      (** generate one token with a KV cache of [kv_len] past tokens *)

type t = { batch : int; phase : phase }

val prefill : ?batch:int -> int -> t
val decode : ?batch:int -> int -> t
(** [decode ?batch kv_len]. *)

val tokens_this_step : t -> int
(** Tokens processed by one forward pass: [seq] or [1]. *)

val context_len : t -> int
(** Sequence length visible to attention: [seq] for prefill, [kv_len + 1]
    for decode. *)

val to_string : t -> string
