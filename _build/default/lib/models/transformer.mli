(** Transformer model builders (the paper's BERT-large, OPT-6.7B/13B and
    LLaMA2-7B benchmarks), expressed in the graph IR with explicit QKV
    projections, per-head attention matmuls, softmax and FFN — the same
    decomposition an ONNX export produces. *)

type norm = Layernorm | Rmsnorm
type activation = Gelu_act | Silu_gated  (** Silu_gated = LLaMA SwiGLU FFN *)

type config = {
  model_name : string;
  n_layers : int;
  d_model : int;
  n_heads : int;
  d_ffn : int;
  vocab : int;
  norm : norm;
  act : activation;
  causal : bool;  (** decoder-only models *)
}

val bert_large : config
val opt_6_7b : config
val opt_13b : config
val llama2_7b : config
val gpt2_xl : config

val param_count : config -> int
(** Analytic parameter count (embeddings + layers + head). *)

val build_layer : config -> Workload.t -> layer_index:int -> Cim_nnir.Graph.t
(** One encoder/decoder block as a standalone graph. Inputs: hidden states
    [[batch*tokens; d_model]]; for decode also the per-head KV caches
    [[batch*heads; kv; d_head]]. Compiling one block and reusing it across
    layers is exactly the block-reuse the paper relies on (Fig. 18). *)

val build : config -> Workload.t -> Cim_nnir.Graph.t
(** The full network: embedding, [n_layers] blocks, final norm and LM/CLS
    head. Large — prefer [build_layer] plus analytic replication for
    compilation studies. *)

val append_blocks :
  config -> Workload.t -> Cim_nnir.Builder.t -> string -> start:int ->
  count:int -> string
(** Append [count] encoder/decoder blocks to an existing builder, starting
    from the given hidden-state tensor name — the hook composite models
    (e.g. ViT's patch embedding followed by encoder blocks) build on. *)

val tiny : ?name:string -> unit -> config
(** A miniature config (2 layers, d_model 16) whose graphs are small enough
    for functional simulation tests. *)
