module Graph = Cim_nnir.Graph
module Shape_infer = Cim_nnir.Shape_infer
module Attr = Cim_nnir.Attr
module Op = Cim_nnir.Op
module Shape = Cim_tensor.Shape

type kind = Static_weight | Dynamic_matmul

type node_stats = {
  node_id : int;
  node_name : string;
  kind : kind;
  macs : float;
  weight_bytes : float;
  act_in_bytes : float;
  act_out_bytes : float;
}

let f = float_of_int

let matmul_macs a b =
  match (a, b) with
  | [ m; k ], [ _; n ] -> f m *. f k *. f n
  | [ bd; m; k ], [ _; n ] -> f bd *. f m *. f k *. f n
  | [ bd; m; k ], [ _; _; n ] -> f bd *. f m *. f k *. f n
  | _ -> 0.

let conv_macs attrs x w =
  match (x, w) with
  | [ n; _c; h; wd ], [ oc; cg; kh; kw ] ->
    let stride = Attr.get_int_d attrs "stride" 1 in
    let pad = Attr.get_int_d attrs "pad" 0 in
    let oh = ((h + (2 * pad) - kh) / stride) + 1 in
    let ow = ((wd + (2 * pad) - kw) / stride) + 1 in
    f n *. f oc *. f oh *. f ow *. f cg *. f kh *. f kw
  | _ -> 0.

let node_stats (g : Graph.t) =
  let shapes = Shape_infer.infer g in
  let shape_of n = Hashtbl.find shapes n in
  (* Attention scores flow through softmax entirely on chip: the paper's
     in-place rule ("data that can be processed in place and will not be
     reused, such as softmax results") exempts that traffic from the
     operator's memory operations. *)
  let via_softmax name =
    match Graph.producer g name with
    | Some p -> p.Graph.op = Op.Softmax
    | None -> false
  in
  let feeds_only_softmax name =
    match Graph.consumers g name with
    | [] -> false
    | cs -> List.for_all (fun (c : Graph.node) -> c.Graph.op = Op.Softmax) cs
  in
  let stats_of (nd : Graph.node) =
    let ins = List.map shape_of nd.inputs in
    let out_bytes =
      List.fold_left
        (fun acc o ->
          if feeds_only_softmax o then acc else acc +. f (Shape.numel (shape_of o)))
        0. nd.outputs
    in
    let weight_bytes, act_in_bytes =
      List.fold_left
        (fun (wb, ab) name ->
          let sz = f (Shape.numel (shape_of name)) in
          if Graph.is_initializer g name then (wb +. sz, ab)
          else if via_softmax name then (wb, ab)
          else (wb, ab +. sz))
        (0., 0.) nd.inputs
    in
    let macs =
      match (nd.op, ins) with
      | Op.Conv, (x :: w :: _) -> conv_macs nd.attrs x w
      | (Op.Mat_mul | Op.Gemm), (a :: b :: _) -> matmul_macs a b
      | _ -> 0.
    in
    let kind =
      match nd.op with
      | Op.Mat_mul when weight_bytes = 0. -> Dynamic_matmul
      | _ -> Static_weight
    in
    { node_id = nd.id; node_name = nd.name; kind; macs; weight_bytes;
      act_in_bytes; act_out_bytes = out_bytes }
  in
  List.map stats_of (Graph.cim_nodes g)

let ai_dynamic s =
  let traffic = s.act_in_bytes +. s.act_out_bytes in
  if traffic = 0. then 0. else s.macs /. traffic

let ai_total s =
  let traffic = s.act_in_bytes +. s.act_out_bytes +. s.weight_bytes in
  if traffic = 0. then 0. else s.macs /. traffic

let sum_over g extract_traffic =
  let stats = node_stats g in
  let macs = List.fold_left (fun acc s -> acc +. s.macs) 0. stats in
  let traffic = List.fold_left (fun acc s -> acc +. extract_traffic s) 0. stats in
  if traffic = 0. then 0. else macs /. traffic

let model_ai g =
  sum_over g (fun s -> s.act_in_bytes +. s.act_out_bytes +. s.weight_bytes)

let model_ai_dynamic g = sum_over g (fun s -> s.act_in_bytes +. s.act_out_bytes)
