(** Named registry over every benchmark network, as consumed by the CLI and
    the experiment harness. *)

type family = Cnn | Encoder_only | Decoder_only

type entry = {
  key : string;                 (** CLI name, e.g. "resnet18" *)
  display : string;             (** paper name, e.g. "ResNet-18" *)
  family : family;
  build : Workload.t -> Cim_nnir.Graph.t;
      (** CNNs ignore the phase and use only [batch]. *)
  layer : (Workload.t -> Cim_nnir.Graph.t) option;
      (** Single repeated block, for block-reuse compilation. *)
  n_layers : int;               (** how many times [layer] repeats; 1 for CNNs *)
  params : int;                 (** analytic parameter count *)
}

val all : entry list
val find : string -> entry option
val names : string list
