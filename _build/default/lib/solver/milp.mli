(** Branch-and-bound mixed-integer solver over the simplex LP relaxation —
    the role Gurobi plays in the paper (§4.3.2). Exact for the small models
    CMSwitch generates (a few dozen variables per network segment). *)

type kind = Continuous | Integer

type result =
  | Optimal of Lp.solution
  | Infeasible
  | Unbounded
  | Node_limit of Lp.solution option
      (** Search truncated; carries the incumbent if one was found. *)

val solve :
  ?eps:float -> ?max_nodes:int -> ?gap:float -> Lp.problem -> kinds:kind array ->
  result
(** [eps] is the integrality tolerance (default 1e-6); [max_nodes] bounds
    the branch-and-bound tree (default 100_000); [gap] is the relative
    optimality gap below which branches are pruned (default 1e-6). The root
    relaxation is rounded and re-solved to seed the incumbent, so pruning is
    effective from the first node. Maximisation, like {!Lp.solve}. Integer
    variables must have finite bounds or bounds implied by constraints;
    branching tightens variable bounds. *)
