(** Dense two-phase primal simplex for small linear programs.

    Problems are stated as: maximise [c . x] subject to row constraints and
    per-variable bounds. Lower bounds must be finite (every CMSwitch model
    has natural 0 lower bounds); upper bounds may be [infinity]. *)

type op = Le | Ge | Eq

type problem = {
  n_vars : int;
  maximize : float array;                       (** length n_vars *)
  rows : (float array * op * float) list;       (** coeffs, op, rhs *)
  lower : float array;
  upper : float array;
}

type solution = { values : float array; objective : float }
type result = Optimal of solution | Infeasible | Unbounded

exception Ill_formed of string

val solve : ?eps:float -> ?max_iters:int -> problem -> result
(** [eps] is the feasibility/optimality tolerance (default 1e-9).
    Raises [Ill_formed] on dimension mismatches or infinite lower bounds;
    raises [Failure] if the iteration limit is hit (default 20_000,
    generous for the problem sizes CMSwitch generates). *)
