lib/solver/model.mli: Format
