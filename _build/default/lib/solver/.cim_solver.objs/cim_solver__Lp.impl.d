lib/solver/lp.ml: Array Float List Printf
