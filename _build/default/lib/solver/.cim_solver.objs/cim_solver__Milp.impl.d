lib/solver/milp.ml: Array Float List Lp Option Stack
