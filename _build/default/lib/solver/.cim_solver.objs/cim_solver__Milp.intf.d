lib/solver/milp.mli: Lp
