lib/solver/model.ml: Array Float Format List Lp Milp Option
