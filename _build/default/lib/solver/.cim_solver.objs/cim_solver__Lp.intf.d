lib/solver/lp.mli:
