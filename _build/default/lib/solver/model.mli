(** Gurobi-style model-building facade over {!Lp}/{!Milp}: named variables,
    linear expressions, incremental constraints. *)

type t
type var

type expr = (float * var) list
(** Linear combination; a constant term is passed separately. *)

val create : ?name:string -> unit -> t

val add_var :
  t -> ?lb:float -> ?ub:float -> ?integer:bool -> string -> var
(** Default bounds [0, infinity), continuous. *)

val var_name : var -> string

val add_le : t -> ?name:string -> expr -> float -> unit
(** [expr <= rhs]. *)

val add_ge : t -> ?name:string -> expr -> float -> unit
val add_eq : t -> ?name:string -> expr -> float -> unit

val maximize : t -> expr -> unit
val minimize : t -> expr -> unit

type outcome =
  | Optimal of float  (** objective value, in the user's sense (min or max) *)
  | Infeasible
  | Unbounded
  | Truncated of float option

val solve : ?max_nodes:int -> ?gap:float -> t -> outcome

val value : t -> var -> float
(** Value in the last [Optimal]/[Truncated-with-incumbent] solution.
    Raises [Failure] when no solution is stored. *)

val int_value : t -> var -> int
(** Rounded [value]; the variable must be integer. *)

val n_vars : t -> int
val n_constraints : t -> int

val pp_stats : Format.formatter -> t -> unit
