(** Textual chip descriptions — the "user-defined hardware parameters" input
    of Fig. 7 as a file format, so a chip can be described without writing
    OCaml. Example:

    {v
    chip "EdgeCIM-32" {
      n_arrays = 32
      grid_cols = 8
      rows = 256
      cols = 256
      cell_bits = 1
      weight_bits = 8
      buffer_bytes = 32768
      internal_bw = 128
      extern_bw = 16
      op_cim = 1024
      d_cim = 32
      l_m2c = 2
      l_c2m = 2
      write_latency = 8
      switch_method = "per-bank wordline driver select"
      freq_mhz = 500
    }
    v} *)

exception Parse_error of string

val to_string : Chip.t -> string

val of_string : string -> Chip.t
(** Parses and validates. Missing keys raise [Parse_error]; invalid values
    raise {!Chip.Invalid_config}. Keys may appear in any order. *)
