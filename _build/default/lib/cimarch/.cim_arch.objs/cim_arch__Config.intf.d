lib/cimarch/config.mli: Chip
