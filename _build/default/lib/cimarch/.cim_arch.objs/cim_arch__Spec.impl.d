lib/cimarch/spec.ml: Buffer Chip Hashtbl List Printf String
