lib/cimarch/energy.mli: Chip
