lib/cimarch/cost.mli: Chip
