lib/cimarch/chip.ml: Cim_util Format List Printf
