lib/cimarch/spec.mli: Chip
