lib/cimarch/config.ml: Chip Cim_util Option Printf
