lib/cimarch/energy.ml: Chip Printf
