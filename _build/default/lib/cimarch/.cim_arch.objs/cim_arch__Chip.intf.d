lib/cimarch/chip.mli: Format
