lib/cimarch/mode.ml:
