lib/cimarch/mode.mli:
