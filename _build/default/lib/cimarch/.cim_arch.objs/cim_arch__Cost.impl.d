lib/cimarch/cost.ml: Chip Float
