type t = Memory | Compute
type transition = To_memory | To_compute

let to_string = function Memory -> "memory" | Compute -> "compute"
let transition_to_string = function To_memory -> "TOM" | To_compute -> "TOC"

let transition ~from ~to_ =
  match (from, to_) with
  | Memory, Compute -> Some To_compute
  | Compute, Memory -> Some To_memory
  | Memory, Memory | Compute, Compute -> None

let apply = function To_memory -> Memory | To_compute -> Compute
