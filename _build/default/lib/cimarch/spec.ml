exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let to_string (c : Chip.t) =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "chip %S {\n" c.Chip.name);
  let int k v = Buffer.add_string b (Printf.sprintf "  %s = %d\n" k v) in
  let flt k v = Buffer.add_string b (Printf.sprintf "  %s = %.17g\n" k v) in
  int "n_arrays" c.Chip.n_arrays;
  int "grid_cols" c.Chip.grid_cols;
  int "rows" c.Chip.rows;
  int "cols" c.Chip.cols;
  int "cell_bits" c.Chip.cell_bits;
  int "weight_bits" c.Chip.weight_bits;
  int "buffer_bytes" c.Chip.buffer_bytes;
  flt "internal_bw" c.Chip.internal_bw;
  flt "extern_bw" c.Chip.extern_bw;
  flt "op_cim" c.Chip.op_cim;
  flt "d_cim" c.Chip.d_cim;
  flt "l_m2c" c.Chip.l_m2c;
  flt "l_c2m" c.Chip.l_c2m;
  flt "write_latency" c.Chip.write_latency;
  Buffer.add_string b (Printf.sprintf "  switch_method = %S\n" c.Chip.switch_method);
  flt "freq_mhz" c.Chip.freq_mhz;
  Buffer.add_string b "}\n";
  Buffer.contents b

(* key = value lines inside chip "name" { ... }; # starts a comment *)
let tokenize src =
  let lines = String.split_on_char '\n' src in
  List.filter_map
    (fun line ->
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let line = String.trim line in
      if line = "" then None else Some line)
    lines

let parse_quoted s =
  let s = String.trim s in
  let n = String.length s in
  if n >= 2 && s.[0] = '"' && s.[n - 1] = '"' then String.sub s 1 (n - 2)
  else perr "expected a quoted string, got %S" s

let of_string src =
  let lines = tokenize src in
  let name = ref None in
  let kv : (string, string) Hashtbl.t = Hashtbl.create 20 in
  List.iter
    (fun line ->
      if String.length line >= 4 && String.sub line 0 4 = "chip" then begin
        let rest = String.trim (String.sub line 4 (String.length line - 4)) in
        let rest =
          if String.length rest > 0 && rest.[String.length rest - 1] = '{' then
            String.trim (String.sub rest 0 (String.length rest - 1))
          else rest
        in
        name := Some (parse_quoted rest)
      end
      else if line = "}" || line = "{" then ()
      else
        match String.index_opt line '=' with
        | None -> perr "malformed line %S" line
        | Some i ->
          let k = String.trim (String.sub line 0 i) in
          let v = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
          if Hashtbl.mem kv k then perr "duplicate key %S" k;
          Hashtbl.replace kv k v)
    lines;
  let name = match !name with Some n -> n | None -> perr "missing chip header" in
  let get k =
    match Hashtbl.find_opt kv k with
    | Some v -> v
    | None -> perr "missing key %S" k
  in
  let int k =
    try int_of_string (get k) with Failure _ -> perr "key %S: expected an integer" k
  in
  let flt k =
    try float_of_string (get k) with Failure _ -> perr "key %S: expected a number" k
  in
  Chip.validate
    {
      Chip.name;
      n_arrays = int "n_arrays";
      grid_cols = int "grid_cols";
      rows = int "rows";
      cols = int "cols";
      cell_bits = int "cell_bits";
      weight_bits = int "weight_bits";
      buffer_bytes = int "buffer_bytes";
      internal_bw = flt "internal_bw";
      extern_bw = flt "extern_bw";
      op_cim = flt "op_cim";
      d_cim = flt "d_cim";
      l_m2c = flt "l_m2c";
      l_c2m = flt "l_c2m";
      write_latency = flt "write_latency";
      switch_method = parse_quoted (get "switch_method");
      freq_mhz = flt "freq_mhz";
    }
