(** Energy model for dual-mode CIM execution. The paper argues dual-mode
    compilation "can significantly boost overall system performance and
    energy efficiency" (§3.2); this module prices the emitted meta-operator
    flows so the claim can be evaluated, with per-event energies drawn from
    published CIM macro numbers (DynaPlasia-class eDRAM, PRIME-class
    ReRAM). All energies in picojoules. *)

type profile = {
  profile_name : string;
  mac_pj : float;              (** one 8-bit MAC inside a compute array *)
  cim_read_pj_per_byte : float;(** scratchpad read from a memory-mode array *)
  buffer_pj_per_byte : float;  (** access to the dedicated on-chip buffer *)
  dram_pj_per_byte : float;    (** main-memory traffic *)
  switch_pj : float;           (** one CM.switch of one array *)
  weight_write_pj_per_byte : float; (** programming weights into an array *)
  static_mw : float;           (** chip static power, for energy-from-cycles *)
}

val edram : profile
(** DynaPlasia-class eDRAM: ~0.05 pJ/MAC-equivalent digital macro numbers,
    cheap writes. *)

val reram : profile
(** PRIME-class ReRAM: cheaper reads, far more expensive writes. *)

val for_chip : Chip.t -> profile
(** Pick a profile from the chip's preset name; eDRAM by default. *)

val validate : profile -> profile
(** Raises [Invalid_argument] if any component is negative. *)
