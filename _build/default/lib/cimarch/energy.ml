type profile = {
  profile_name : string;
  mac_pj : float;
  cim_read_pj_per_byte : float;
  buffer_pj_per_byte : float;
  dram_pj_per_byte : float;
  switch_pj : float;
  weight_write_pj_per_byte : float;
  static_mw : float;
}

let validate p =
  let check name v =
    if v < 0. then invalid_arg (Printf.sprintf "Energy.validate: negative %s" name)
  in
  check "mac_pj" p.mac_pj;
  check "cim_read_pj_per_byte" p.cim_read_pj_per_byte;
  check "buffer_pj_per_byte" p.buffer_pj_per_byte;
  check "dram_pj_per_byte" p.dram_pj_per_byte;
  check "switch_pj" p.switch_pj;
  check "weight_write_pj_per_byte" p.weight_write_pj_per_byte;
  check "static_mw" p.static_mw;
  p

(* eDRAM digital CIM macros report tens of TOPS/W for 8-bit MACs:
   50 TOPS/W ~ 0.02 pJ/op; on-chip SRAM/eDRAM accesses ~ 1 pJ/byte at 28nm;
   LPDDR ~ 20 pJ/byte at the pins. *)
let edram =
  validate
    {
      profile_name = "eDRAM";
      mac_pj = 0.02;
      cim_read_pj_per_byte = 1.0;
      buffer_pj_per_byte = 1.5;
      dram_pj_per_byte = 20.;
      switch_pj = 5.;
      weight_write_pj_per_byte = 2.;
      static_mw = 50.;
    }

(* ReRAM: analog MACs are cheap, reads cheap, but SET/RESET programming is
   two orders of magnitude above eDRAM row writes. *)
let reram =
  validate
    {
      profile_name = "ReRAM";
      mac_pj = 0.01;
      cim_read_pj_per_byte = 0.5;
      buffer_pj_per_byte = 1.5;
      dram_pj_per_byte = 20.;
      switch_pj = 8.;
      weight_write_pj_per_byte = 150.;
      static_mw = 30.;
    }

let for_chip (chip : Chip.t) =
  if chip.Chip.name = "PRIME" then reram else edram
