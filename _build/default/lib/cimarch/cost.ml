let compute_rate (chip : Chip.t) ~com = float_of_int com *. chip.op_cim

let memory_rate (chip : Chip.t) ~mem =
  (float_of_int mem *. chip.d_cim) +. Chip.d_main chip

let op_latency chip ~ops ~ai ~com ~mem =
  if ops < 0. then invalid_arg "Cost.op_latency: negative ops";
  if ops = 0. then 0.
  else if ai <= 0. then invalid_arg "Cost.op_latency: non-positive ai"
  else begin
    let c = compute_rate chip ~com in
    let m = memory_rate chip ~mem *. ai in
    let rate = Float.min c m in
    if rate <= 0. then infinity else ops /. rate
  end

let switch_latency (chip : Chip.t) ~m2c ~c2m =
  if m2c < 0 || c2m < 0 then invalid_arg "Cost.switch_latency: negative count";
  (chip.l_m2c *. float_of_int m2c) +. (chip.l_c2m *. float_of_int c2m)

let weight_rewrite_latency (chip : Chip.t) ~max_com =
  if max_com < 0 then invalid_arg "Cost.weight_rewrite_latency: negative count";
  chip.write_latency *. float_of_int max_com

let writeback_latency (chip : Chip.t) ~bytes =
  if bytes < 0 then invalid_arg "Cost.writeback_latency: negative bytes";
  float_of_int bytes /. chip.extern_bw

let dma_load_latency (chip : Chip.t) ~bytes =
  if bytes < 0 then invalid_arg "Cost.dma_load_latency: negative bytes";
  float_of_int bytes /. chip.extern_bw
