let kib = Cim_util.Bytesize.kib

(* DynaPlasia (Table 2). Rates not given by the table are derived:
   - the 320 columns are 1-bit eDRAM cells, so an 8-bit weight occupies 8
     adjacent cells and one array maps a 320 x 40 weight tile;
   - OP_cim: bit-serial 8-bit inputs complete one full-array MVM every 8
     cycles -> 320 * 40 / 8 x 8-bit-MACs... i.e. 1600 MAC/cycle;
   - D_cim: memory mode reads one 320-bit row per cycle = 40 B/cycle;
   - internal_bw: the 8 x 10 KB buffer banks each sustain 32 B/cycle, so
     pipelined operators see 256 B/cycle of on-chip operand bandwidth
     (Table 2's "32b/cycle" is the per-bank bitline interface);
   - extern_bw: one LPDDR channel seen from the 1 GHz core clock;
   - write_latency: per-array programming *setup* when a segment's weights
     are (re)installed. The weight data delivery itself is part of the
     operator's streamed traffic (its arithmetic intensity counts weight
     bytes), so this constant covers only the row-activation sequencing. *)
let dynaplasia =
  Chip.validate
    {
      Chip.name = "DynaPlasia";
      n_arrays = 96;
      grid_cols = 12;
      rows = 320;
      cols = 320;
      cell_bits = 1;
      weight_bits = 8;
      buffer_bytes = kib 10 * 8;
      internal_bw = 256.;
      extern_bw = 64.;
      op_cim = 1600.;
      d_cim = 40.;
      l_m2c = 1.;
      l_c2m = 1.;
      write_latency = 16.;
      switch_method = "change the input of global IA and IA'";
      freq_mhz = 1000.;
    }

(* PRIME-style ReRAM: larger and more numerous arrays with 2-bit cells (the
   chip can hold a whole large segment), but ReRAM programming setup is two
   orders of magnitude slower than eDRAM row activation. *)
let prime =
  Chip.validate
    {
      Chip.name = "PRIME";
      n_arrays = 256;
      grid_cols = 16;
      rows = 512;
      cols = 512;
      cell_bits = 2;
      weight_bits = 8;
      buffer_bytes = kib 64;
      internal_bw = 256.;
      extern_bw = 64.;
      op_cim = 512. *. 128. /. 8.;
      d_cim = 128.;
      l_m2c = 4.;
      l_c2m = 4.;
      write_latency = 2048.;
      switch_method = "reconfigure wordline drivers (ReRAM)";
      freq_mhz = 1000.;
    }

let scaled ?name chip ~n_arrays =
  let name = Option.value name ~default:(Printf.sprintf "%s-%d" chip.Chip.name n_arrays) in
  let grid_cols =
    let rec best c = if c * c >= n_arrays then c else best (c + 1) in
    min n_arrays (best 1)
  in
  Chip.validate { chip with Chip.name; n_arrays; grid_cols }

let presets = [ ("dynaplasia", dynaplasia); ("prime", prime) ]
