(** Cost-model primitives shared by the compiler's optimisation passes and
    the timing simulator, implementing the paper's equations. All results in
    cycles. *)

val compute_rate : Chip.t -> com:int -> float
(** [Com * OP_cim] — MACs/cycle from [com] compute arrays. *)

val memory_rate : Chip.t -> mem:int -> float
(** [Mem * D_cim + D_main] — bytes/cycle reachable with [mem] memory arrays
    plus the main memory and the original buffer. *)

val op_latency : Chip.t -> ops:float -> ai:float -> com:int -> mem:int -> float
(** Eq. 10: [OP / min(Com*OP_cim, (Mem*D_cim + D_main) * AI)].
    [infinity] when the effective rate is zero (e.g. [com = 0]). *)

val switch_latency : Chip.t -> m2c:int -> c2m:int -> float
(** Eq. 1: [L_{M->C} * Switch_{m->c} + L_{C->M} * Switch_{c->m}]. *)

val weight_rewrite_latency : Chip.t -> max_com:int -> float
(** Eq. 2: [max_l Com_{O_l} * Latency_write] — arrays of distinct operators
    program in parallel, so the segment pays for its widest operator. *)

val writeback_latency : Chip.t -> bytes:int -> float
(** Store dirty scratchpad data to main memory at [extern_bw]. *)

val dma_load_latency : Chip.t -> bytes:int -> float
(** Fetch data from main memory at [extern_bw]. *)
