(** Hardware presets used in the paper's evaluation. *)

val dynaplasia : Chip.t
(** The main target (Table 2): 96 switchable 320x320 eDRAM arrays, 80 KiB
    buffer, 1-cycle mode switch driven by the global IA/IA' input lines. *)

val prime : Chip.t
(** PRIME-style ReRAM configuration for the scalability study (§5.5): larger
    and more numerous arrays, much higher weight-write cost. *)

val scaled : ?name:string -> Chip.t -> n_arrays:int -> Chip.t
(** Same per-array parameters with a different array count (used by the
    Fig. 1(b)/Fig. 5 heat-map sweeps which assume 100 arrays). *)

val presets : (string * Chip.t) list
(** Name -> preset, for the CLI. *)
