(** The two operating modes of a dual-mode CIM array (Fig. 3) and the
    transitions between them. *)

type t = Memory | Compute

type transition = To_memory | To_compute
(** The meta-operator types TOM / TOC (Fig. 13). *)

val to_string : t -> string
val transition_to_string : transition -> string

val transition : from:t -> to_:t -> transition option
(** [None] when no switch is needed. *)

val apply : transition -> t
(** Target mode of a transition. *)
