(** Operator vocabulary, a subset of ONNX sufficient for the paper's model
    zoo (CNNs + transformers). *)

type t =
  | Mat_mul        (** inputs A [.., m, k] and B [k, n]; B may be a weight or an
                       activation (attention score/context matmuls) *)
  | Gemm           (** A [m, k], weight B [k, n], optional bias [n] *)
  | Conv           (** NCHW conv; attrs kh, kw, stride, pad, groups *)
  | Relu
  | Clip           (** attrs min, max (floats); ReLU6 is Clip(0, 6) *)
  | Gelu
  | Silu
  | Softmax
  | Layer_norm     (** inputs x, gamma, beta *)
  | Rms_norm       (** inputs x, gamma *)
  | Add
  | Mul
  | Max_pool       (** attrs k, stride, pad *)
  | Avg_pool       (** attrs k, stride, pad *)
  | Global_avg_pool
  | Reshape        (** attr "shape" *)
  | Transpose      (** attr "perm" *)
  | Concat         (** attr "axis" *)
  | Embedding      (** lookup table: weight [vocab, d], int ids input *)

val to_string : t -> string
val of_string : string -> t option
val all : t list

val is_cim_supported : t -> bool
(** True for operators the CIM array executes in compute mode (MMM/MVM
    family: Mat_mul, Gemm, Conv). Everything else runs on the peripheral
    vector unit / is a data-movement no-op. *)
