module Shape = Cim_tensor.Shape

(* Rebuild a graph from a transformed node list, dropping initializers that
   are no longer referenced. [rename] maps tensor names consumers (and the
   output list) should now use. *)
let rebuild (g : Graph.t) nodes ~rename =
  let subst n = Option.value (Hashtbl.find_opt rename n) ~default:n in
  (* follow rename chains (a -> b -> c) *)
  let rec resolve n =
    let n' = subst n in
    if n' = n then n else resolve n'
  in
  let nodes =
    List.map
      (fun (nd : Graph.node) -> { nd with Graph.inputs = List.map resolve nd.inputs })
      nodes
  in
  let outputs = List.map resolve g.Graph.graph_outputs in
  let referenced = Hashtbl.create 64 in
  List.iter
    (fun (nd : Graph.node) ->
      List.iter (fun i -> Hashtbl.replace referenced i ()) nd.Graph.inputs)
    nodes;
  List.iter (fun o -> Hashtbl.replace referenced o ()) outputs;
  let initializers =
    List.filter
      (fun (i : Graph.initializer_) -> Hashtbl.mem referenced i.Graph.init_name)
      g.Graph.initializers
  in
  Graph.create ~name:g.Graph.graph_name ~nodes ~inputs:g.Graph.graph_inputs
    ~outputs ~initializers

let dead_code_elimination (g : Graph.t) =
  let live_tensors = Hashtbl.create 64 in
  List.iter (fun o -> Hashtbl.replace live_tensors o ()) g.Graph.graph_outputs;
  (* nodes are topologically sorted; walk backwards *)
  let live_nodes =
    List.fold_left
      (fun acc (nd : Graph.node) ->
        if List.exists (Hashtbl.mem live_tensors) nd.Graph.outputs then begin
          List.iter (fun i -> Hashtbl.replace live_tensors i ()) nd.Graph.inputs;
          nd :: acc
        end
        else acc)
      []
      (List.rev g.Graph.nodes)
  in
  rebuild g live_nodes ~rename:(Hashtbl.create 0)

let single_consumer (g : Graph.t) tensor =
  match Graph.consumers g tensor with [ c ] -> Some c | _ -> None

let is_output (g : Graph.t) tensor = List.mem tensor g.Graph.graph_outputs

(* Fuse producer->consumer pairs of the same unary op kind. [combine a b]
   returns the replacement for the consumer (None = the pair cancels and
   consumers read the producer's input directly). *)
let fuse_pairs (g : Graph.t) ~candidate ~combine =
  let rename = Hashtbl.create 8 in
  let drop = Hashtbl.create 8 in
  let replacement = Hashtbl.create 8 in
  List.iter
    (fun (nd : Graph.node) ->
      if candidate nd && not (Hashtbl.mem drop nd.Graph.id) then begin
        match nd.Graph.outputs with
        | [ out ] when not (is_output g out) -> begin
          match single_consumer g out with
          | Some consumer
            when candidate consumer && not (Hashtbl.mem drop consumer.Graph.id) -> begin
            match combine nd consumer with
            | Some fused ->
              Hashtbl.replace replacement consumer.Graph.id fused;
              Hashtbl.replace drop nd.Graph.id ()
            | None ->
              (* the pair is the identity: erase both *)
              Hashtbl.replace drop nd.Graph.id ();
              Hashtbl.replace drop consumer.Graph.id ();
              Hashtbl.replace rename
                (List.hd consumer.Graph.outputs)
                (List.hd nd.Graph.inputs)
          end
          | _ -> ()
        end
        | _ -> ()
      end)
    g.Graph.nodes;
  let nodes =
    List.filter_map
      (fun (nd : Graph.node) ->
        if Hashtbl.mem drop nd.Graph.id then None
        else
          match Hashtbl.find_opt replacement nd.Graph.id with
          | Some fused -> Some fused
          | None -> Some nd)
      g.Graph.nodes
  in
  rebuild g nodes ~rename

let fuse_transposes (g : Graph.t) =
  let candidate (nd : Graph.node) = nd.Graph.op = Op.Transpose in
  let combine (a : Graph.node) (b : Graph.node) =
    match (Attr.get_ints a.Graph.attrs "perm", Attr.get_ints b.Graph.attrs "perm") with
    | Some pa, Some pb when List.length pa = List.length pb ->
      let pc = List.map (fun i -> List.nth pa i) pb in
      if pc = List.init (List.length pc) Fun.id then None
      else
        Some
          { b with
            Graph.inputs = a.Graph.inputs;
            attrs = [ ("perm", Attr.Ints pc) ] }
    | _ -> Some b (* malformed; leave untouched *)
  in
  fuse_pairs g ~candidate ~combine

let fuse_reshapes (g : Graph.t) =
  let candidate (nd : Graph.node) = nd.Graph.op = Op.Reshape in
  let combine (a : Graph.node) (b : Graph.node) =
    Some { b with Graph.inputs = a.Graph.inputs }
  in
  fuse_pairs g ~candidate ~combine

let eliminate_identity_reshapes (g : Graph.t) =
  let shapes = Shape_infer.infer g in
  let rename = Hashtbl.create 8 in
  let nodes =
    List.filter
      (fun (nd : Graph.node) ->
        match (nd.Graph.op, nd.Graph.inputs, nd.Graph.outputs) with
        | Op.Reshape, [ i ], [ o ]
          when Shape.equal (Hashtbl.find shapes i) (Hashtbl.find shapes o)
               && not (is_output g o) ->
          Hashtbl.replace rename o i;
          false
        | _ -> true)
      g.Graph.nodes
  in
  rebuild g nodes ~rename

let common_subexpression_elimination (g : Graph.t) =
  let seen : (string, string) Hashtbl.t = Hashtbl.create 32 in
  (* key -> representative output *)
  let rename = Hashtbl.create 8 in
  let resolve n = Option.value (Hashtbl.find_opt rename n) ~default:n in
  let nodes =
    List.filter
      (fun (nd : Graph.node) ->
        match nd.Graph.outputs with
        | [ out ] when not (is_output g out) ->
          let key =
            Printf.sprintf "%s|%s|%s" (Op.to_string nd.Graph.op)
              (String.concat ";"
                 (List.map (fun (k, v) -> k ^ "=" ^ Attr.to_string v) nd.Graph.attrs))
              (String.concat "," (List.map resolve nd.Graph.inputs))
          in
          (match Hashtbl.find_opt seen key with
          | Some rep ->
            Hashtbl.replace rename out rep;
            false
          | None ->
            Hashtbl.replace seen key out;
            true)
        | _ -> true)
      g.Graph.nodes
  in
  rebuild g nodes ~rename

let optimize g =
  let step g =
    g
    |> common_subexpression_elimination
    |> fuse_transposes
    |> fuse_reshapes
    |> eliminate_identity_reshapes
    |> dead_code_elimination
  in
  let rec fixpoint g budget =
    if budget = 0 then g
    else begin
      let g' = step g in
      if Graph.node_count g' = Graph.node_count g then g'
      else fixpoint g' (budget - 1)
    end
  in
  fixpoint g 8

let stats before after =
  Printf.sprintf "%d -> %d nodes, %d -> %d initializers"
    (Graph.node_count before) (Graph.node_count after)
    (List.length before.Graph.initializers)
    (List.length after.Graph.initializers)
