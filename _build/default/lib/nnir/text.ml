module Shape = Cim_tensor.Shape

exception Parse_error of string

let perr fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let shape_to_string = function
  | [] -> "scalar"
  | dims -> String.concat "x" (List.map string_of_int dims)

let attr_to_string (k, v) =
  match v with
  | Attr.Int i -> Printf.sprintf "%s=%d" k i
  | Attr.Float f -> Printf.sprintf "%s=%h" k f
  | Attr.Ints l ->
    Printf.sprintf "%s=[%s]" k (String.concat "," (List.map string_of_int l))
  | Attr.Str s -> Printf.sprintf "%s=%S" k s

let to_string (g : Graph.t) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %S {\n" g.graph_name);
  List.iter
    (fun (n, s) ->
      Buffer.add_string buf (Printf.sprintf "  input %s %s\n" n (shape_to_string s)))
    g.graph_inputs;
  List.iter
    (fun (i : Graph.initializer_) ->
      Buffer.add_string buf
        (Printf.sprintf "  init %s %s\n" i.init_name (shape_to_string i.init_shape)))
    g.initializers;
  List.iter
    (fun (nd : Graph.node) ->
      Buffer.add_string buf
        (Printf.sprintf "  node %d %S %s (%s) -> (%s) { %s }\n" nd.id nd.name
           (Op.to_string nd.op)
           (String.concat ", " nd.inputs)
           (String.concat ", " nd.outputs)
           (String.concat " " (List.map attr_to_string nd.attrs))))
    g.nodes;
  List.iter
    (fun o -> Buffer.add_string buf (Printf.sprintf "  output %s\n" o))
    g.graph_outputs;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(* --- Lexer --- *)

type token =
  | Ident of string
  | QString of string
  | Num of int
  | Lbrace | Rbrace | Lparen | Rparen | Lbracket | Rbracket
  | Comma | Arrow | Equals
  | Eof

let lex src =
  let n = String.length src in
  let toks = ref [] in
  let i = ref 0 in
  let emit t = toks := t :: !toks in
  let is_ident_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '/'
  in
  while !i < n do
    let c = src.[!i] in
    if c = ' ' || c = '\n' || c = '\t' || c = '\r' then incr i
    else if c = '{' then (emit Lbrace; incr i)
    else if c = '}' then (emit Rbrace; incr i)
    else if c = '(' then (emit Lparen; incr i)
    else if c = ')' then (emit Rparen; incr i)
    else if c = '[' then (emit Lbracket; incr i)
    else if c = ']' then (emit Rbracket; incr i)
    else if c = ',' then (emit Comma; incr i)
    else if c = '=' then (emit Equals; incr i)
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then (emit Arrow; i := !i + 2)
    else if c = '"' then begin
      let j = ref (!i + 1) in
      let b = Buffer.create 16 in
      while !j < n && src.[!j] <> '"' do
        if src.[!j] = '\\' && !j + 1 < n then begin
          Buffer.add_char b src.[!j + 1];
          j := !j + 2
        end
        else begin
          Buffer.add_char b src.[!j];
          incr j
        end
      done;
      if !j >= n then perr "unterminated string";
      emit (QString (Buffer.contents b));
      i := !j + 1
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && src.[!i + 1] >= '0' && src.[!i + 1] <= '9')
    then begin
      let j = ref !i in
      if src.[!j] = '-' then incr j;
      while !j < n && ((src.[!j] >= '0' && src.[!j] <= '9') || src.[!j] = 'x') do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      i := !j;
      (* "1x3x224x224" is a shape literal — keep it as an Ident. *)
      if String.contains word 'x' then emit (Ident word)
      else emit (Num (int_of_string word))
    end
    else if is_ident_char c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do incr j done;
      emit (Ident (String.sub src !i (!j - !i)));
      i := !j
    end
    else perr "unexpected character %C at offset %d" c !i
  done;
  emit Eof;
  List.rev !toks

(* --- Parser --- *)

type stream = { mutable toks : token list }

let peek s = match s.toks with [] -> Eof | t :: _ -> t
let advance s = match s.toks with [] -> () | _ :: rest -> s.toks <- rest

let expect s t =
  if peek s = t then advance s else perr "unexpected token (parser)"

let ident s =
  match peek s with
  | Ident x -> advance s; x
  | Num x -> advance s; string_of_int x (* bare numeric tensor names *)
  | _ -> perr "expected identifier"

let qstring s =
  match peek s with QString x -> advance s; x | _ -> perr "expected string"

let num s = match peek s with Num x -> advance s; x | _ -> perr "expected number"

let parse_shape word =
  if word = "scalar" then Shape.scalar
  else
    try Shape.of_list (List.map int_of_string (String.split_on_char 'x' word))
    with _ -> perr "bad shape literal %S" word

let parse_name_list s =
  expect s Lparen;
  let rec go acc =
    match peek s with
    | Rparen -> advance s; List.rev acc
    | Comma -> advance s; go acc
    | _ -> go (ident s :: acc)
  in
  go []

let parse_attr_value s =
  match peek s with
  | Num v -> advance s; Attr.Int v
  | QString v -> advance s; Attr.Str v
  | Lbracket ->
    advance s;
    let rec go acc =
      match peek s with
      | Rbracket -> advance s; Attr.Ints (List.rev acc)
      | Comma -> advance s; go acc
      | Num v -> advance s; go (v :: acc)
      | _ -> perr "expected int in list attribute"
    in
    go []
  | Ident v ->
    advance s;
    (try Attr.Float (float_of_string v) with _ -> Attr.Str v)
  | _ -> perr "expected attribute value"

let parse_attrs s =
  expect s Lbrace;
  let rec go acc =
    match peek s with
    | Rbrace -> advance s; List.rev acc
    | Ident k ->
      advance s;
      expect s Equals;
      let v = parse_attr_value s in
      go ((k, v) :: acc)
    | _ -> perr "expected attribute name or '}'"
  in
  go []

let of_string src =
  let s = { toks = lex src } in
  (match peek s with
  | Ident "graph" -> advance s
  | _ -> perr "expected 'graph'");
  let gname = qstring s in
  expect s Lbrace;
  let inputs = ref [] and inits = ref [] and nodes = ref [] and outputs = ref [] in
  let rec loop () =
    match peek s with
    | Rbrace -> advance s
    | Ident "input" ->
      advance s;
      let n = ident s in
      let sh = parse_shape (ident s) in
      inputs := (n, sh) :: !inputs;
      loop ()
    | Ident "init" ->
      advance s;
      let n = ident s in
      let sh = parse_shape (ident s) in
      inits := { Graph.init_name = n; init_shape = sh; value = None } :: !inits;
      loop ()
    | Ident "output" ->
      advance s;
      outputs := ident s :: !outputs;
      loop ()
    | Ident "node" ->
      advance s;
      let id = num s in
      let name = qstring s in
      let opname = ident s in
      let op =
        match Op.of_string opname with
        | Some op -> op
        | None -> perr "unknown op %S" opname
      in
      let ins = parse_name_list s in
      expect s Arrow;
      let outs = parse_name_list s in
      let attrs = parse_attrs s in
      nodes := { Graph.id; name; op; inputs = ins; outputs = outs; attrs } :: !nodes;
      loop ()
    | Eof -> perr "unexpected end of input"
    | _ -> perr "unexpected token in graph body"
  in
  loop ();
  Graph.create ~name:gname ~nodes:(List.rev !nodes) ~inputs:(List.rev !inputs)
    ~outputs:(List.rev !outputs) ~initializers:(List.rev !inits)
