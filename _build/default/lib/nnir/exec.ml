module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Ops = Cim_tensor.Ops

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let eval_node (nd : Graph.node) ins =
  match (nd.op, ins) with
  | Op.Mat_mul, [ a; b ] -> Ops.matmul a b
  | Op.Gemm, [ a; b ] -> Ops.matmul a b
  | Op.Gemm, [ a; b; bias ] -> Ops.add (Ops.matmul a b) bias
  | Op.Conv, ([ x; w ] | [ x; w; _ ]) ->
    let stride = Attr.get_int_d nd.attrs "stride" 1 in
    let pad = Attr.get_int_d nd.attrs "pad" 0 in
    let groups = Attr.get_int_d nd.attrs "groups" 1 in
    let bias = match ins with [ _; _; b ] -> Some b | _ -> None in
    Ops.conv2d x ~weight:w ?bias ~stride ~pad ~groups ()
  | Op.Relu, [ x ] -> Ops.relu x
  | Op.Clip, [ x ] ->
    Ops.clip x
      ~lo:(Attr.get_float_d nd.attrs "min" neg_infinity)
      ~hi:(Attr.get_float_d nd.attrs "max" infinity)
  | Op.Gelu, [ x ] -> Ops.gelu x
  | Op.Silu, [ x ] -> Ops.silu x
  | Op.Softmax, [ x ] -> Ops.softmax x
  | Op.Layer_norm, [ x; g; b ] -> Ops.layernorm x ~gamma:g ~beta:b
  | Op.Rms_norm, [ x; g ] -> Ops.rmsnorm x ~gamma:g
  | Op.Add, [ a; b ] -> Ops.add a b
  | Op.Mul, [ a; b ] -> Ops.mul a b
  | Op.Max_pool, [ x ] ->
    let k = Attr.get_int_d nd.attrs "k" 2 in
    let stride = Attr.get_int_d nd.attrs "stride" k in
    let pad = Attr.get_int_d nd.attrs "pad" 0 in
    Ops.maxpool2d x ~k ~stride ~pad ()
  | Op.Avg_pool, [ x ] ->
    let k = Attr.get_int_d nd.attrs "k" 2 in
    let stride = Attr.get_int_d nd.attrs "stride" k in
    let pad = Attr.get_int_d nd.attrs "pad" 0 in
    Ops.avgpool2d x ~k ~stride ~pad ()
  | Op.Global_avg_pool, [ x ] -> Ops.avgpool_global x
  | Op.Reshape, [ x ] -> begin
    match Attr.get_ints nd.attrs "shape" with
    | None -> err "node %s: Reshape missing shape" nd.name
    | Some dims ->
      let shapes = Shape_infer.output_shape nd.op nd.attrs [ Tensor.shape x ] in
      ignore dims;
      Tensor.reshape x (List.hd shapes)
  end
  | Op.Transpose, [ x ] -> begin
    match Attr.get_ints nd.attrs "perm" with
    | None -> err "node %s: Transpose missing perm" nd.name
    | Some perm -> Ops.permute x perm
  end
  | Op.Concat, [ a; b ] ->
    Ops.concat a b ~axis:(Attr.get_int_d nd.attrs "axis" 0)
  | Op.Embedding, [ ids; w ] -> begin
    match Tensor.shape w with
    | [ vocab; d ] ->
      let out_shape = Shape.of_list (Tensor.shape ids @ [ d ]) in
      Tensor.init out_shape (fun idx ->
          let rev = List.rev idx in
          let di = List.hd rev in
          let id_idx = List.rev (List.tl rev) in
          let row = int_of_float (Tensor.get ids id_idx) in
          if row < 0 || row >= vocab then err "node %s: id out of vocab" nd.name;
          Tensor.get w [ row; di ])
    | _ -> err "node %s: Embedding weight not [vocab;d]" nd.name
  end
  | op, ins ->
    err "node %s: %s applied to %d inputs" nd.name (Op.to_string op)
      (List.length ins)

let run (g : Graph.t) inputs =
  let env = Hashtbl.create 128 in
  List.iter
    (fun (name, shape) ->
      match List.assoc_opt name inputs with
      | Some t ->
        if not (Shape.equal (Tensor.shape t) shape) then
          err "input %s: expected %s, got %s" name (Shape.to_string shape)
            (Shape.to_string (Tensor.shape t));
        Hashtbl.replace env name t
      | None -> err "missing graph input %s" name)
    g.graph_inputs;
  List.iter
    (fun (i : Graph.initializer_) ->
      match i.value with
      | Some v -> Hashtbl.replace env i.init_name v
      | None -> err "initializer %s has no value (not executable)" i.init_name)
    g.initializers;
  List.iter
    (fun (nd : Graph.node) ->
      let ins =
        List.map
          (fun n ->
            match Hashtbl.find_opt env n with
            | Some t -> t
            | None -> err "node %s: input %s not computed" nd.name n)
          nd.inputs
      in
      let out = eval_node nd ins in
      match nd.outputs with
      | [ o ] -> Hashtbl.replace env o out
      | _ -> err "node %s: multi-output nodes unsupported" nd.name)
    g.nodes;
  env

let run_outputs g inputs =
  let env = run g inputs in
  List.map (fun o -> (o, Hashtbl.find env o)) g.graph_outputs
