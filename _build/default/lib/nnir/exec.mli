(** Reference interpreter: executes a graph with [lib/tensor] float
    operators. This is the golden model the CIM functional simulator is
    checked against. All initializers must carry values. *)

exception Error of string

val eval_node : Graph.node -> Cim_tensor.Tensor.t list -> Cim_tensor.Tensor.t
(** Evaluate a single node on already-computed input tensors (in node-input
    order). Used by the CIM functional simulator for vector operators. *)

val run :
  Graph.t -> (string * Cim_tensor.Tensor.t) list ->
  (string, Cim_tensor.Tensor.t) Hashtbl.t
(** [run g inputs] returns the full tensor environment (every intermediate
    included). Raises [Error] on missing inputs/values. *)

val run_outputs :
  Graph.t -> (string * Cim_tensor.Tensor.t) list ->
  (string * Cim_tensor.Tensor.t) list
(** Just the graph outputs, in graph order. *)
