lib/nnir/text.ml: Attr Buffer Cim_tensor Graph List Op Printf String
