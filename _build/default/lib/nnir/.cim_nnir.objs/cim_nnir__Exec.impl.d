lib/nnir/exec.ml: Attr Cim_tensor Graph Hashtbl List Op Printf Shape_infer
