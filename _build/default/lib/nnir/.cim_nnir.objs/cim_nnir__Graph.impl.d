lib/nnir/graph.ml: Array Attr Cim_tensor Format Hashtbl Int List Op Option Printf Set String
