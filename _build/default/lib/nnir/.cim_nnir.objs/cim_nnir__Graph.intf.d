lib/nnir/graph.mli: Attr Cim_tensor Format Op
