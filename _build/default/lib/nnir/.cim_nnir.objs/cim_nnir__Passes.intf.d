lib/nnir/passes.mli: Graph
