lib/nnir/op.mli:
