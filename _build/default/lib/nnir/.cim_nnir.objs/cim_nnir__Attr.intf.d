lib/nnir/attr.mli:
