lib/nnir/passes.ml: Attr Cim_tensor Fun Graph Hashtbl List Op Option Printf Shape_infer String
