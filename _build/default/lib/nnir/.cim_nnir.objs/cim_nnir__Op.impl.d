lib/nnir/op.ml: List
