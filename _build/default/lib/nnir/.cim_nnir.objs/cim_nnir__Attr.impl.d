lib/nnir/attr.ml: List Option Printf String
