lib/nnir/shape_infer.ml: Attr Cim_tensor Fun Graph Hashtbl List Op Printf
