lib/nnir/shape_infer.mli: Attr Cim_tensor Graph Hashtbl Op
