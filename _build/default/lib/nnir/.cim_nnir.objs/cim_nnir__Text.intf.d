lib/nnir/text.mli: Graph
