lib/nnir/builder.ml: Attr Cim_tensor Graph Hashtbl List Op Option Printf
