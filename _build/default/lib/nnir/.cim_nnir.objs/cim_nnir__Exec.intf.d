lib/nnir/exec.mli: Cim_tensor Graph Hashtbl
