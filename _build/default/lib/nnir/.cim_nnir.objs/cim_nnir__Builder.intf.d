lib/nnir/builder.mli: Attr Cim_tensor Cim_util Graph Op
