module Shape = Cim_tensor.Shape
module Tensor = Cim_tensor.Tensor

type t = {
  name : string;
  mutable nodes : Graph.node list; (* reversed *)
  mutable inputs : (string * Shape.t) list; (* reversed *)
  mutable inits : Graph.initializer_ list; (* reversed *)
  mutable next_id : int;
  used : (string, unit) Hashtbl.t;
}

let create name =
  { name; nodes = []; inputs = []; inits = []; next_id = 0; used = Hashtbl.create 64 }

let fresh b hint =
  let rec go i =
    let candidate = if i = 0 then hint else Printf.sprintf "%s_%d" hint i in
    if Hashtbl.mem b.used candidate then go (i + 1) else candidate
  in
  let n = go 0 in
  Hashtbl.replace b.used n ();
  n

let input b name shape =
  if Hashtbl.mem b.used name then invalid_arg ("Builder.input: name taken: " ^ name);
  Hashtbl.replace b.used name ();
  b.inputs <- (name, shape) :: b.inputs;
  name

let weight ?value b hint shape =
  let n = fresh b hint in
  b.inits <- { Graph.init_name = n; init_shape = shape; value } :: b.inits;
  n

let node b op ?(attrs = []) ?name inputs =
  let id = b.next_id in
  b.next_id <- id + 1;
  let name =
    match name with Some n -> fresh b n | None -> fresh b (Op.to_string op ^ "_n")
  in
  let out = fresh b (name ^ "_out") in
  b.nodes <-
    { Graph.id; name; op; inputs; outputs = [ out ]; attrs } :: b.nodes;
  out

let matmul ?name b a c = node b Op.Mat_mul ?name [ a; c ]

let gemm ?name ?bias b a w =
  match bias with
  | None -> node b Op.Gemm ?name [ a; w ]
  | Some bi -> node b Op.Gemm ?name [ a; w; bi ]

let conv ?name b x w ?bias ~stride ~pad ?(groups = 1) () =
  let attrs =
    [ ("stride", Attr.Int stride); ("pad", Attr.Int pad); ("groups", Attr.Int groups) ]
  in
  let inputs = match bias with None -> [ x; w ] | Some bi -> [ x; w; bi ] in
  node b Op.Conv ?name ~attrs inputs

let relu b x = node b Op.Relu [ x ]

let relu6 b x =
  node b Op.Clip ~attrs:[ ("min", Attr.Float 0.); ("max", Attr.Float 6.) ] [ x ]
let gelu b x = node b Op.Gelu [ x ]
let silu b x = node b Op.Silu [ x ]
let softmax b x = node b Op.Softmax [ x ]
let layernorm b x ~gamma ~beta = node b Op.Layer_norm [ x; gamma; beta ]
let rmsnorm b x ~gamma = node b Op.Rms_norm [ x; gamma ]
let add b a c = node b Op.Add [ a; c ]
let mul b a c = node b Op.Mul [ a; c ]

let maxpool b x ~k ~stride ?(pad = 0) () =
  node b Op.Max_pool
    ~attrs:[ ("k", Attr.Int k); ("stride", Attr.Int stride); ("pad", Attr.Int pad) ]
    [ x ]

let avgpool b x ~k ~stride ?(pad = 0) () =
  node b Op.Avg_pool
    ~attrs:[ ("k", Attr.Int k); ("stride", Attr.Int stride); ("pad", Attr.Int pad) ]
    [ x ]

let global_avg_pool b x = node b Op.Global_avg_pool [ x ]
let reshape b x shape = node b Op.Reshape ~attrs:[ ("shape", Attr.Ints shape) ] [ x ]
let transpose b x perm = node b Op.Transpose ~attrs:[ ("perm", Attr.Ints perm) ] [ x ]
let concat b a c ~axis = node b Op.Concat ~attrs:[ ("axis", Attr.Int axis) ] [ a; c ]
let embedding b ids w = node b Op.Embedding [ ids; w ]

let linear ?(bias = true) ?value_rng b x ~in_dim ~out_dim ~prefix =
  let mk shape =
    Option.map (fun rng -> Tensor.rand rng shape ~lo:(-0.5) ~hi:0.5) value_rng
  in
  let wshape = Shape.of_list [ in_dim; out_dim ] in
  let w = weight ?value:(mk wshape) b (prefix ^ "_w") wshape in
  if bias then begin
    let bshape = Shape.of_list [ out_dim ] in
    let bi = weight ?value:(mk bshape) b (prefix ^ "_b") bshape in
    gemm ~name:prefix ~bias:bi b x w
  end
  else gemm ~name:prefix b x w

let finish b ~outputs =
  Graph.create ~name:b.name ~nodes:(List.rev b.nodes)
    ~inputs:(List.rev b.inputs) ~outputs ~initializers:(List.rev b.inits)
