(** Imperative graph-construction DSL used by the model zoo. Tensor names
    are generated; every combinator returns the name of its output tensor. *)

type t

val create : string -> t

val input : t -> string -> Cim_tensor.Shape.t -> string
(** Declare a graph input; returns its (given) name. *)

val weight : ?value:Cim_tensor.Tensor.t -> t -> string -> Cim_tensor.Shape.t -> string
(** Declare an initializer with a unique name derived from the hint. *)

val node :
  t -> Op.t -> ?attrs:(string * Attr.t) list -> ?name:string -> string list -> string
(** Generic single-output node. *)

val matmul : ?name:string -> t -> string -> string -> string
val gemm : ?name:string -> ?bias:string -> t -> string -> string -> string
val conv :
  ?name:string -> t -> string -> string -> ?bias:string -> stride:int ->
  pad:int -> ?groups:int -> unit -> string
val relu : t -> string -> string

val relu6 : t -> string -> string
(** Clip(0, 6), MobileNet's activation. *)

val gelu : t -> string -> string
val silu : t -> string -> string
val softmax : t -> string -> string
val layernorm : t -> string -> gamma:string -> beta:string -> string
val rmsnorm : t -> string -> gamma:string -> string
val add : t -> string -> string -> string
val mul : t -> string -> string -> string
val maxpool : t -> string -> k:int -> stride:int -> ?pad:int -> unit -> string
val avgpool : t -> string -> k:int -> stride:int -> ?pad:int -> unit -> string
val global_avg_pool : t -> string -> string
val reshape : t -> string -> int list -> string
val transpose : t -> string -> int list -> string
val concat : t -> string -> string -> axis:int -> string
val embedding : t -> string -> string -> string

val linear :
  ?bias:bool -> ?value_rng:Cim_util.Rng.t -> t -> string -> in_dim:int ->
  out_dim:int -> prefix:string -> string
(** Fully-connected layer: creates the weight (and bias) initializers and the
    Gemm node. When [value_rng] is given, concrete weight values are attached
    (for small functionally-simulated models). *)

val finish : t -> outputs:string list -> Graph.t
