type t =
  | Mat_mul
  | Gemm
  | Conv
  | Relu
  | Clip
  | Gelu
  | Silu
  | Softmax
  | Layer_norm
  | Rms_norm
  | Add
  | Mul
  | Max_pool
  | Avg_pool
  | Global_avg_pool
  | Reshape
  | Transpose
  | Concat
  | Embedding

let to_string = function
  | Mat_mul -> "MatMul"
  | Gemm -> "Gemm"
  | Conv -> "Conv"
  | Relu -> "Relu"
  | Clip -> "Clip"
  | Gelu -> "Gelu"
  | Silu -> "Silu"
  | Softmax -> "Softmax"
  | Layer_norm -> "LayerNorm"
  | Rms_norm -> "RMSNorm"
  | Add -> "Add"
  | Mul -> "Mul"
  | Max_pool -> "MaxPool"
  | Avg_pool -> "AveragePool"
  | Global_avg_pool -> "GlobalAveragePool"
  | Reshape -> "Reshape"
  | Transpose -> "Transpose"
  | Concat -> "Concat"
  | Embedding -> "Embedding"

let all =
  [ Mat_mul; Gemm; Conv; Relu; Clip; Gelu; Silu; Softmax; Layer_norm; Rms_norm;
    Add; Mul; Max_pool; Avg_pool; Global_avg_pool; Reshape; Transpose; Concat;
    Embedding ]

let of_string s = List.find_opt (fun op -> to_string op = s) all

let is_cim_supported = function
  | Mat_mul | Gemm | Conv -> true
  | Relu | Clip | Gelu | Silu | Softmax | Layer_norm | Rms_norm | Add | Mul
  | Max_pool | Avg_pool | Global_avg_pool | Reshape | Transpose | Concat
  | Embedding -> false
