(** Graph clean-up passes run after the ONNX-style import and before
    compilation (the "computation graph expression" lowering of Fig. 7).
    All passes preserve the graph's observable outputs. *)

val dead_code_elimination : Graph.t -> Graph.t
(** Remove nodes (and initializers) that do not reach any graph output. *)

val fuse_transposes : Graph.t -> Graph.t
(** Collapse a Transpose feeding a single Transpose into one node (or into
    nothing when the composition is the identity permutation). *)

val fuse_reshapes : Graph.t -> Graph.t
(** Collapse a Reshape feeding a single Reshape into the outer Reshape. *)

val eliminate_identity_reshapes : Graph.t -> Graph.t
(** Drop Reshape nodes whose output shape equals their input shape,
    rewiring consumers. Needs shape inference; raises
    [Shape_infer.Error] on malformed graphs. *)

val common_subexpression_elimination : Graph.t -> Graph.t
(** Merge structurally identical nodes (same op, attributes and inputs),
    rewiring consumers to a single representative. Safe because every
    operator in this IR is pure. *)

val optimize : Graph.t -> Graph.t
(** The standard pipeline: CSE, transpose/reshape fusion, identity-reshape
    elimination, then DCE — iterated to a fixed point (bounded). *)

val stats : Graph.t -> Graph.t -> string
(** Human-readable before/after summary. *)
