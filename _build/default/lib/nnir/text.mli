(** Textual (de)serialisation of graphs — the ONNX-file substitute. Weight
    values are not serialised, only shapes (like an ONNX model stripped of
    initializer payloads).

    Format example:
    {v
    graph "mlp" {
      input x 1x8
      init fc_w 8x4
      node 0 "fc" Gemm (x, fc_w) -> (y) { }
      node 1 "act" Relu (y) -> (z) { }
      output z
    }
    v} *)

exception Parse_error of string

val to_string : Graph.t -> string
val of_string : string -> Graph.t
(** Raises [Parse_error] on malformed input and [Graph.Invalid] on
    semantically invalid graphs. *)
