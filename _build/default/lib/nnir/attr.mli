(** Node attributes, mirroring ONNX attribute kinds. *)

type t = Int of int | Float of float | Ints of int list | Str of string

val to_string : t -> string

val get_int : (string * t) list -> string -> int option
val get_int_d : (string * t) list -> string -> int -> int
(** With default. *)

val get_ints : (string * t) list -> string -> int list option
val get_float_d : (string * t) list -> string -> float -> float
val get_str : (string * t) list -> string -> string option
