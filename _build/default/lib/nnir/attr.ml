type t = Int of int | Float of float | Ints of int list | Str of string

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Ints l -> "[" ^ String.concat "," (List.map string_of_int l) ^ "]"
  | Str s -> "\"" ^ s ^ "\""

let get_int attrs name =
  match List.assoc_opt name attrs with Some (Int i) -> Some i | _ -> None

let get_int_d attrs name d = Option.value (get_int attrs name) ~default:d

let get_ints attrs name =
  match List.assoc_opt name attrs with Some (Ints l) -> Some l | _ -> None

let get_float_d attrs name d =
  match List.assoc_opt name attrs with
  | Some (Float f) -> f
  | Some (Int i) -> float_of_int i
  | _ -> d

let get_str attrs name =
  match List.assoc_opt name attrs with Some (Str s) -> Some s | _ -> None
