lib/baselines/baseline.ml: Array Cim_arch Cim_compiler Cim_models Float List
