lib/baselines/baseline.mli: Cim_arch Cim_compiler Cim_models Cim_nnir
