type t = { shape : Shape.t; data : float array }

let create shape data =
  if Array.length data <> Shape.numel shape then
    invalid_arg "Tensor.create: data length does not match shape";
  { shape; data }

let zeros shape = { shape; data = Array.make (Shape.numel shape) 0. }
let full shape v = { shape; data = Array.make (Shape.numel shape) v }

let init shape f =
  let n = Shape.numel shape in
  { shape; data = Array.init n (fun off -> f (Shape.unravel shape off)) }

let scalar v = { shape = Shape.scalar; data = [| v |] }

let shape t = t.shape
let numel t = Array.length t.data
let data t = t.data

let get t idx = t.data.(Shape.ravel t.shape idx)
let set t idx v = t.data.(Shape.ravel t.shape idx) <- v
let get_flat t i = t.data.(i)
let set_flat t i v = t.data.(i) <- v

let reshape t shape =
  if Shape.numel shape <> Array.length t.data then
    invalid_arg "Tensor.reshape: element count mismatch";
  { shape; data = t.data }

let copy t = { t with data = Array.copy t.data }
let map f t = { t with data = Array.map f t.data }

let map2 f a b =
  if not (Shape.equal a.shape b.shape) then invalid_arg "Tensor.map2: shape mismatch";
  { a with data = Array.map2 f a.data b.data }

let fold f acc t = Array.fold_left f acc t.data

let max_abs_diff a b =
  if not (Shape.equal a.shape b.shape) then
    invalid_arg "Tensor.max_abs_diff: shape mismatch";
  let m = ref 0. in
  Array.iteri (fun i x -> m := Float.max !m (Float.abs (x -. b.data.(i)))) a.data;
  !m

let equal ?(eps = 1e-9) a b =
  Shape.equal a.shape b.shape && max_abs_diff a b <= eps

let rand rng shape ~lo ~hi =
  init shape (fun _ -> lo +. Cim_util.Rng.float rng (hi -. lo))

let randn rng shape ~mu ~sigma =
  init shape (fun _ -> Cim_util.Rng.gaussian rng ~mu ~sigma)

let to_string ?(max_elems = 16) t =
  let n = numel t in
  let shown = min n max_elems in
  let buf = Buffer.create 64 in
  Buffer.add_string buf (Shape.to_string t.shape ^ " [");
  for i = 0 to shown - 1 do
    if i > 0 then Buffer.add_string buf "; ";
    Buffer.add_string buf (Printf.sprintf "%g" t.data.(i))
  done;
  if shown < n then Buffer.add_string buf "; ...";
  Buffer.add_string buf "]";
  Buffer.contents buf
