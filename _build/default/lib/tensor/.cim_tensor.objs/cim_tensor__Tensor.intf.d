lib/tensor/tensor.mli: Cim_util Shape
