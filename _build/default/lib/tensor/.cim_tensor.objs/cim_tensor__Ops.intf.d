lib/tensor/ops.mli: Tensor
