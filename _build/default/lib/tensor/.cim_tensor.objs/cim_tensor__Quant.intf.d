lib/tensor/quant.mli: Shape Tensor
