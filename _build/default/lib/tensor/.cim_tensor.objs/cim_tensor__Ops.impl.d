lib/tensor/ops.ml: Array Float Fun List Printf Shape Tensor
