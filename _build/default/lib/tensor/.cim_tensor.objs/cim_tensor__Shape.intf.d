lib/tensor/shape.mli:
