lib/tensor/tensor.ml: Array Buffer Cim_util Float Printf Shape
