lib/tensor/quant.ml: Array Float Shape Tensor
