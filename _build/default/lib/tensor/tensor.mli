(** Dense row-major float tensors used as the golden reference for functional
    simulation (the PyTorch substitute). *)

type t

val create : Shape.t -> float array -> t
(** Raises [Invalid_argument] when the data length differs from
    [Shape.numel]. The array is owned by the tensor afterwards. *)

val zeros : Shape.t -> t
val full : Shape.t -> float -> t
val init : Shape.t -> (int list -> float) -> t
val scalar : float -> t

val shape : t -> Shape.t
val numel : t -> int
val data : t -> float array
(** Direct access to the backing store (row-major). *)

val get : t -> int list -> float
val set : t -> int list -> float -> unit
val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val reshape : t -> Shape.t -> t
(** Shares the backing store; raises when element counts differ. *)

val copy : t -> t
val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
(** Element-wise; raises on shape mismatch (no broadcasting here). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val equal : ?eps:float -> t -> t -> bool
(** Shape equality plus element-wise [|a - b| <= eps] (default [1e-9]). *)

val max_abs_diff : t -> t -> float
(** Raises on shape mismatch. *)

val rand : Cim_util.Rng.t -> Shape.t -> lo:float -> hi:float -> t
val randn : Cim_util.Rng.t -> Shape.t -> mu:float -> sigma:float -> t

val to_string : ?max_elems:int -> t -> string
