type qtensor = { values : int array; scale : float; shape : Shape.t }

let clamp_i8 v = if v < -128 then -128 else if v > 127 then 127 else v

let quantize t =
  let max_abs = Tensor.fold (fun acc x -> Float.max acc (Float.abs x)) 0. t in
  let scale = if max_abs = 0. then 1. else max_abs /. 127. in
  let values =
    Array.map (fun x -> clamp_i8 (int_of_float (Float.round (x /. scale)))) (Tensor.data t)
  in
  { values; scale; shape = Tensor.shape t }

let dequantize q =
  Tensor.create q.shape (Array.map (fun v -> float_of_int v *. q.scale) q.values)

let requantize acc shape ~in_scale =
  let max_abs = Array.fold_left (fun m v -> max m (abs v)) 0 acc in
  if max_abs = 0 then { values = Array.map (fun _ -> 0) acc; scale = 1.; shape }
  else begin
    (* Choose the output scale so the widest accumulator maps to 127. *)
    let scale = in_scale *. float_of_int max_abs /. 127. in
    let values =
      Array.map
        (fun v ->
          clamp_i8 (int_of_float (Float.round (float_of_int v *. in_scale /. scale))))
        acc
    in
    { values; scale; shape }
  end

let matmul a b =
  match (a.shape, b.shape) with
  | [ m; k ], [ k'; n ] when k = k' ->
    let acc = Array.make (m * n) 0 in
    for i = 0 to m - 1 do
      for p = 0 to k - 1 do
        let av = a.values.((i * k) + p) in
        if av <> 0 then
          for j = 0 to n - 1 do
            acc.((i * n) + j) <- acc.((i * n) + j) + (av * b.values.((p * n) + j))
          done
      done
    done;
    requantize acc (Shape.of_list [ m; n ]) ~in_scale:(a.scale *. b.scale)
  | _ -> invalid_arg "Quant.matmul: expects [m;k] x [k;n]"

let quant_error t =
  let q = quantize t in
  Tensor.max_abs_diff t (dequantize q)
