type t = int list

let scalar = []

let of_list dims =
  List.iter
    (fun d -> if d <= 0 then invalid_arg "Shape.of_list: non-positive dimension")
    dims;
  dims

let numel s = List.fold_left ( * ) 1 s
let rank = List.length
let equal (a : t) (b : t) = a = b

let to_string = function
  | [] -> "scalar"
  | dims -> String.concat "x" (List.map string_of_int dims)

let dim s i =
  let r = rank s in
  let i = if i < 0 then r + i else i in
  if i < 0 || i >= r then invalid_arg "Shape.dim: index out of bounds";
  List.nth s i

let strides s =
  let dims = Array.of_list s in
  let n = Array.length dims in
  let st = Array.make n 1 in
  for i = n - 2 downto 0 do
    st.(i) <- st.(i + 1) * dims.(i + 1)
  done;
  st

let ravel s idx =
  let dims = Array.of_list s in
  let st = strides s in
  if List.length idx <> Array.length dims then
    invalid_arg "Shape.ravel: rank mismatch";
  let off = ref 0 in
  List.iteri
    (fun i j ->
      if j < 0 || j >= dims.(i) then invalid_arg "Shape.ravel: index out of bounds";
      off := !off + (j * st.(i)))
    idx;
  !off

let unravel s off =
  if off < 0 || off >= numel s then invalid_arg "Shape.unravel: offset out of bounds";
  let st = strides s in
  let rec go i off acc =
    if i >= Array.length st then List.rev acc
    else go (i + 1) (off mod st.(i)) ((off / st.(i)) :: acc)
  in
  go 0 off []

let broadcast a b =
  let ra = rank a and rb = rank b in
  let r = max ra rb in
  let padded s rs = List.init (r - rs) (fun _ -> 1) @ s in
  let a = padded a ra and b = padded b rb in
  let rec go a b acc =
    match (a, b) with
    | [], [] -> Some (List.rev acc)
    | da :: a', db :: b' ->
      if da = db then go a' b' (da :: acc)
      else if da = 1 then go a' b' (db :: acc)
      else if db = 1 then go a' b' (da :: acc)
      else None
    | _ -> None
  in
  go a b []

let concat_dim a b ~axis =
  if rank a <> rank b then None
  else if axis < 0 || axis >= rank a then None
  else
    let ok =
      List.for_all2 ( = )
        (List.filteri (fun i _ -> i <> axis) a)
        (List.filteri (fun i _ -> i <> axis) b)
    in
    if not ok then None
    else Some (List.mapi (fun i d -> if i = axis then d + dim b axis else d) a)
