(** Tensor shapes: immutable lists of positive dimensions. The empty shape
    denotes a scalar. *)

type t = int list

val scalar : t
val of_list : int list -> t
(** Validates that every dimension is positive. *)

val numel : t -> int
(** Number of elements; [1] for the scalar shape. *)

val rank : t -> int

val equal : t -> t -> bool
val to_string : t -> string
(** e.g. [ [2; 3; 4] -> "2x3x4" ], scalar renders as ["scalar"]. *)

val dim : t -> int -> int
(** [dim s i] supports negative indices Python-style; raises
    [Invalid_argument] when out of bounds. *)

val strides : t -> int array
(** Row-major strides. *)

val ravel : t -> int list -> int
(** Multi-index to flat offset; bounds-checked. *)

val unravel : t -> int -> int list
(** Flat offset to multi-index; bounds-checked. *)

val broadcast : t -> t -> t option
(** Numpy broadcasting of two shapes; [None] when incompatible. *)

val concat_dim : t -> t -> axis:int -> t option
(** Resulting shape of concatenation along [axis], or [None] when the other
    dimensions disagree. *)
