module Chip = Cim_arch.Chip
module Flow = Cim_metaop.Flow

let span ops (seg : Plan.seg_plan) =
  let first = ops.(seg.Plan.lo).Opinfo.label in
  if seg.Plan.hi = seg.Plan.lo then first
  else
    Printf.sprintf "%s .. %s (%d ops)" first ops.(seg.Plan.hi).Opinfo.label
      (seg.Plan.hi - seg.Plan.lo + 1)

let segment_rows (r : Cmswitch.result) =
  List.mapi
    (fun i (seg : Plan.seg_plan) ->
      (i + 1, span r.Cmswitch.ops seg, Plan.com_total seg, Plan.mem_total seg,
       seg.Plan.intra_cycles))
    r.Cmswitch.schedule.Plan.segments

let to_markdown (r : Cmswitch.result) =
  let b = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  let s = r.Cmswitch.schedule in
  line "# CMSwitch compilation report";
  line "";
  line "- graph: `%s` (%d nodes, %d CIM operators after partitioning)"
    r.Cmswitch.graph.Cim_nnir.Graph.graph_name
    (Cim_nnir.Graph.node_count r.Cmswitch.graph)
    (Array.length r.Cmswitch.ops);
  line "- chip: %s (%d dual-mode arrays of %dx%d)" r.Cmswitch.chip.Chip.name
    r.Cmswitch.chip.Chip.n_arrays r.Cmswitch.chip.Chip.rows
    r.Cmswitch.chip.Chip.cols;
  line "- total: **%.0f cycles** (%.2f us at %g MHz)" s.Plan.total_cycles
    (Chip.cycles_to_us r.Cmswitch.chip s.Plan.total_cycles)
    r.Cmswitch.chip.Chip.freq_mhz;
  line "- breakdown: intra %.0f | write-back %.0f | switch %.0f | rewrite %.0f"
    s.Plan.intra s.Plan.writeback s.Plan.switch s.Plan.rewrite;
  line "- memory-mode ratio: %.1f%%; CM.switch instructions: %d"
    (100. *. Cmswitch.memory_mode_ratio r)
    (Flow.count_switches r.Cmswitch.program);
  line "- solver: %d MIP solves, %d cache hits, %d candidate windows, %d pruned"
    r.Cmswitch.dp_stats.Segment.mip_solves
    r.Cmswitch.dp_stats.Segment.mip_cache_hits
    r.Cmswitch.dp_stats.Segment.candidates
    r.Cmswitch.dp_stats.Segment.pruned_infeasible;
  line "- compile time: %.3f s" r.Cmswitch.compile_seconds;
  line "";
  line "## Segments";
  line "";
  line "| # | operators | compute | memory | intra cycles |";
  line "|---|-----------|---------|--------|--------------|";
  List.iter
    (fun (i, sp, com, mem, intra) ->
      line "| %d | %s | %d | %d | %.0f |" i sp com mem intra)
    (segment_rows r);
  line "";
  line "## Mode switches per segment";
  line "";
  line "| # | to compute | to memory |";
  line "|---|------------|-----------|";
  List.iteri
    (fun i (sp : Placement.seg_place) ->
      line "| %d | %d | %d |" (i + 1)
        (List.length sp.Placement.to_compute)
        (List.length sp.Placement.to_memory))
    r.Cmswitch.places;
  Buffer.contents b
