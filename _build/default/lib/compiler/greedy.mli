(** Greedy marginal-gain allocator: the heuristic alternative to the
    per-segment MIP, used by the ablation study to quantify what the exact
    solver buys (§4.3.2 motivates the MIP by the entangled search space —
    this is the strawman it is entangled against).

    Every operator starts at its minimum compute arrays and zero memory
    arrays; remaining arrays are handed out one at a time to whichever
    single (operator, mode) grant most reduces the segment's bottleneck
    latency, stopping when no grant helps. *)

val solve :
  Cim_arch.Chip.t -> Opinfo.t array -> lo:int -> hi:int -> Plan.seg_plan option
(** Same contract as {!Alloc.solve} ([None] when the minimum footprint
    exceeds the chip), but heuristic: the result is feasible yet possibly
    slower than the MIP's. Never performs Eq. 6 buffer-reuse. *)
