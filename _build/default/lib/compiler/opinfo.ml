module Graph = Cim_nnir.Graph
module Intensity = Cim_models.Intensity
module Shape = Cim_tensor.Shape
module Shape_infer = Cim_nnir.Shape_infer
module Attr = Cim_nnir.Attr
module Op = Cim_nnir.Op
module Chip = Cim_arch.Chip

type t = {
  uid : int;
  node_id : int;
  label : string;
  kind : Intensity.kind;
  macs : float;
  ai : float;
  in_bytes : int;
  out_bytes : int;
  weight_bytes : int;
  stationary_rows : int;
  stationary_cols : int;
  replicas : int;
  min_compute_arrays : int;
  out_lo : int;
  out_hi : int;
  inputs : string list;
  output : string;
  deps : int list;
}

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun s -> raise (Unsupported s)) fmt

let ceil_div = Cim_util.Bytesize.ceil_div

let arrays_for (chip : Chip.t) ~rows ~cols ~replicas =
  if rows <= 0 || cols <= 0 || replicas <= 0 then
    invalid_arg "Opinfo.arrays_for: non-positive dimensions";
  ceil_div rows chip.rows * ceil_div cols (Chip.weight_cols chip) * replicas

(* Stationary-matrix geometry of a CIM node (Fig. 12): the matrix mapped
   onto the arrays, with [replicas] independent copies for batched matmuls
   and grouped convolutions. *)
let stationary_geometry (nd : Graph.node) shapes =
  let shape_of n = Hashtbl.find shapes n in
  match nd.Graph.op with
  | Op.Conv -> begin
    match (List.map shape_of nd.inputs, nd.inputs) with
    | ([ _x; [ oc; cg; kh; kw ] ] | [ _x; [ oc; cg; kh; kw ]; _ ]), _ ->
      let groups = Attr.get_int_d nd.attrs "groups" 1 in
      (cg * kh * kw, oc / groups, groups)
    | _ -> unsupported "node %s: malformed Conv" nd.name
  end
  | Op.Gemm | Op.Mat_mul -> begin
    match List.map shape_of nd.inputs with
    | [ _; [ k; n ] ] | [ _; [ k; n ]; _ ] -> (k, n, 1)
    | [ _; [ bd; k; n ] ] -> (k, n, bd)
    | _ -> unsupported "node %s: malformed MatMul/Gemm" nd.name
  end
  | op -> unsupported "node %s: %s is not CIM-supported" nd.name (Op.to_string op)

(* CIM producers of each CIM node, reached transitively through non-CIM
   nodes — the dependency relation w_{i,j} lifted over vector ops. *)
let cim_deps (g : Graph.t) =
  let producer_of = Hashtbl.create 64 in
  List.iter
    (fun (nd : Graph.node) ->
      List.iter (fun o -> Hashtbl.replace producer_of o nd) nd.outputs)
    g.nodes;
  let deps_of_node = Hashtbl.create 64 in
  (* nodes are topologically sorted, so producers are resolved first *)
  List.iter
    (fun (nd : Graph.node) ->
      let acc = Hashtbl.create 8 in
      let visit name =
        match Hashtbl.find_opt producer_of name with
        | None -> ()
        | Some (p : Graph.node) ->
          if Op.is_cim_supported p.op then Hashtbl.replace acc p.id ()
          else
            (* vector op: its CIM ancestry was already computed *)
            List.iter
              (fun d -> Hashtbl.replace acc d ())
              (Option.value (Hashtbl.find_opt deps_of_node p.id) ~default:[])
      in
      List.iter visit nd.inputs;
      Hashtbl.replace deps_of_node nd.id (List.of_seq (Hashtbl.to_seq_keys acc)))
    g.nodes;
  deps_of_node

(* Split one operator into sub-operators each needing at most [cap] arrays
   (§4.3.1's greedy partitioning, granularity set by on-chip resources).
   Splitting order: replica groups first (independent stationary matrices of
   batched matmuls / grouped convolutions), then output-column chunks, and
   only when a single column tile of one replica still exceeds the cap, row
   chunks (partial sums accumulated by the peripheral adder). *)
let partition chip ~cap (stats : Intensity.node_stats) ~rows ~cols ~replicas
    ~inputs ~output ~node_id =
  let aw = Chip.weight_cols chip in
  let rt = ceil_div rows chip.Chip.rows in
  let ct = ceil_div cols aw in
  let pieces = ref [] in
  (* fractions of the whole operator this piece carries *)
  let push ~arrays ~lo ~hi ~repl_frac ~row_frac ~label_suffix =
    let col_frac = float_of_int (hi - lo) /. float_of_int cols in
    let macs = stats.Intensity.macs *. repl_frac *. col_frac *. row_frac in
    let weight_bytes =
      stats.Intensity.weight_bytes *. repl_frac *. col_frac *. row_frac
    in
    let out_bytes = stats.Intensity.act_out_bytes *. repl_frac *. col_frac in
    (* each column chunk re-streams its replicas' whole input; row chunks
       read a fraction of it *)
    let in_bytes = stats.Intensity.act_in_bytes *. repl_frac *. row_frac in
    let traffic = in_bytes +. out_bytes +. weight_bytes in
    let ai = if traffic <= 0. then 1. else macs /. traffic in
    let label =
      if label_suffix = "" then stats.Intensity.node_name
      else stats.Intensity.node_name ^ label_suffix
    in
    pieces :=
      {
        uid = -1;
        node_id;
        label;
        kind = stats.Intensity.kind;
        macs;
        ai;
        in_bytes = int_of_float (Float.round in_bytes);
        out_bytes = int_of_float (Float.round out_bytes);
        weight_bytes = int_of_float (Float.round weight_bytes);
        stationary_rows = rows;
        stationary_cols = hi - lo;
        replicas;
        min_compute_arrays = arrays;
        out_lo = lo;
        out_hi = hi;
        inputs;
        output;
        deps = [];
      }
      :: !pieces
  in
  if rt * ct * replicas <= cap then
    (* fits whole *)
    push
      ~arrays:(rt * ct * replicas)
      ~lo:0 ~hi:cols ~repl_frac:1. ~row_frac:1. ~label_suffix:""
  else if rt * ct <= cap then begin
    (* replica groups, full columns each *)
    let per_chunk = max 1 (cap / (rt * ct)) in
    let r = ref 0 in
    while !r < replicas do
      let take = min per_chunk (replicas - !r) in
      push ~arrays:(rt * ct * take) ~lo:0 ~hi:cols
        ~repl_frac:(float_of_int take /. float_of_int replicas)
        ~row_frac:1.
        ~label_suffix:(Printf.sprintf "@r%d+%d" !r take);
      r := !r + take
    done
  end
  else if rt <= cap then begin
    (* one replica at a time, column chunks *)
    let tiles_wide = max 1 (cap / rt) in
    let chunk_cols = tiles_wide * aw in
    for r = 0 to replicas - 1 do
      let lo = ref 0 in
      while !lo < cols do
        let hi = min cols (!lo + chunk_cols) in
        let arrays = rt * ceil_div (hi - !lo) aw in
        let suffix =
          if replicas = 1 then Printf.sprintf "[%d:%d]" !lo hi
          else Printf.sprintf "@r%d[%d:%d]" r !lo hi
        in
        push ~arrays ~lo:!lo ~hi
          ~repl_frac:(1. /. float_of_int replicas)
          ~row_frac:1. ~label_suffix:suffix;
        lo := hi
      done
    done
  end
  else begin
    (* row chunks of single column tiles: partial sums *)
    let nparts = ceil_div rt cap in
    let arrays = ceil_div rt nparts in
    for r = 0 to replicas - 1 do
      let lo = ref 0 in
      while !lo < cols do
        let hi = min cols (!lo + aw) in
        for part = 1 to nparts do
          push ~arrays ~lo:!lo ~hi
            ~repl_frac:(1. /. float_of_int replicas)
            ~row_frac:(1. /. float_of_int nparts)
            ~label_suffix:
              (Printf.sprintf "@r%d[%d:%d]#%d/%d" r !lo hi part nparts)
        done;
        lo := hi
      done
    done
  end;
  List.rev !pieces

let extract chip ?(partition_fraction = 0.5) (g : Graph.t) =
  if partition_fraction <= 0. || partition_fraction > 1. then
    invalid_arg "Opinfo.extract: partition_fraction must be in (0, 1]";
  let cap =
    max 1 (int_of_float (partition_fraction *. float_of_int chip.Chip.n_arrays))
  in
  let shapes = Shape_infer.infer g in
  let stats = Intensity.node_stats g in
  let deps_tbl = cim_deps g in
  let by_id = Hashtbl.create 64 in
  List.iter (fun (nd : Graph.node) -> Hashtbl.replace by_id nd.id nd) g.nodes;
  (* first pass: partition every CIM node *)
  let groups =
    List.map
      (fun (s : Intensity.node_stats) ->
        let nd = Hashtbl.find by_id s.Intensity.node_id in
        let rows, cols, replicas = stationary_geometry nd shapes in
        let dynamic_inputs =
          List.filter (fun n -> not (Graph.is_initializer g n)) nd.inputs
        in
        let output = match nd.outputs with [ o ] -> o | _ -> assert false in
        let pieces =
          partition chip ~cap s ~rows ~cols ~replicas ~inputs:dynamic_inputs
            ~output ~node_id:nd.id
        in
        (nd.id, pieces))
      stats
  in
  (* second pass: assign uids and resolve deps from node ids to uids *)
  let uids_of_node = Hashtbl.create 64 in
  let next = ref 0 in
  let all =
    List.concat_map
      (fun (node_id, pieces) ->
        let pieces = List.map (fun p -> incr next; { p with uid = !next - 1 }) pieces in
        Hashtbl.replace uids_of_node node_id (List.map (fun p -> p.uid) pieces);
        pieces)
      groups
  in
  let resolve node_id =
    let dep_nodes = Option.value (Hashtbl.find_opt deps_tbl node_id) ~default:[] in
    List.concat_map
      (fun d -> Option.value (Hashtbl.find_opt uids_of_node d) ~default:[])
      dep_nodes
    |> List.sort_uniq compare
  in
  Array.of_list (List.map (fun p -> { p with deps = resolve p.node_id }) all)

let node_cim_ancestors = cim_deps

let total_min_arrays ops ~lo ~hi =
  let acc = ref 0 in
  for i = lo to hi do
    acc := !acc + ops.(i).min_compute_arrays
  done;
  !acc
