(** CIM-operator extraction and greedy sub-operator partitioning (§4.3.1).

    The compiler works on the topologically sorted list of CIM-supportable
    operators (MatMul / Gemm / Conv). An operator whose stationary matrix
    needs more arrays than the partition cap is split along its output
    dimension into sub-operators that each fit, and the sub-operators are
    spliced into the sorted list in place of the original. *)

type t = {
  uid : int;                 (** dense index in the final (partitioned) order *)
  node_id : int;             (** source-graph node *)
  label : string;            (** node name, suffixed [#k/n] for sub-operators *)
  kind : Cim_models.Intensity.kind;
  macs : float;              (** MAC count of this (sub-)operator *)
  ai : float;                (** arithmetic intensity (MACs / byte of traffic,
                                 weights included — the paper's FLOPs/MemOP) *)
  in_bytes : int;            (** dynamic input bytes *)
  out_bytes : int;
  weight_bytes : int;        (** stationary-matrix bytes (also for dynamic
                                 stationary operands such as the K cache) *)
  stationary_rows : int;     (** K dimension mapped onto array rows *)
  stationary_cols : int;     (** output dimension mapped onto array columns *)
  replicas : int;            (** batched matmul / grouped conv: independent
                                 stationary matrices mapped side by side *)
  min_compute_arrays : int;  (** arrays needed to hold the stationary matrix *)
  out_lo : int;              (** output-feature slice covered, [out_lo,out_hi) *)
  out_hi : int;
  inputs : string list;      (** dynamic input tensor names *)
  output : string;
  deps : int list;           (** uids of CIM producers (transitively through
                                 non-CIM nodes) — the paper's w_{i,j} *)
}

exception Unsupported of string

val extract : Cim_arch.Chip.t -> ?partition_fraction:float -> Cim_nnir.Graph.t -> t array
(** [partition_fraction] (default 0.5) caps one sub-operator at that
    fraction of the chip's arrays. Raises [Unsupported] on malformed CIM
    nodes and [Invalid_argument] on a bad fraction. *)

val arrays_for : Cim_arch.Chip.t -> rows:int -> cols:int -> replicas:int -> int
(** Fig. 12: [ceil(rows/array_h) * ceil(cols/array_w) * replicas]. *)

val node_cim_ancestors : Cim_nnir.Graph.t -> (int, int list) Hashtbl.t
(** For every node (CIM or not), the ids of the CIM nodes it transitively
    depends on through non-CIM nodes. Used by code generation to anchor
    vector operators to segments. *)

val total_min_arrays : t array -> lo:int -> hi:int -> int
(** Sum of [min_compute_arrays] over the uid range [lo, hi] inclusive —
    the feasibility test of Alg. 1 line 9. *)
