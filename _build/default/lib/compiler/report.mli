(** Human-readable compilation reports: a Markdown account of what the
    compiler decided (segments, allocations, switches, solver effort) for a
    single {!Cmswitch.result}. Written by the CLI's [--report] flag. *)

val to_markdown : Cmswitch.result -> string

val segment_rows : Cmswitch.result -> (int * string * int * int * float) list
(** (index, operator span, compute arrays, memory arrays, intra cycles) per
    segment — the data behind the report's main table, exposed for tests
    and for the experiment harness. *)
