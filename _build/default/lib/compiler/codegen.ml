module Graph = Cim_nnir.Graph
module Op = Cim_nnir.Op
module Shape = Cim_tensor.Shape
module Shape_infer = Cim_nnir.Shape_infer
module Flow = Cim_metaop.Flow
module Mode = Cim_arch.Mode

let generate _chip (g : Graph.t) (ops : Opinfo.t array) (places : Placement.seg_place list) =
  let shapes = Shape_infer.infer g in
  let bytes_of name = Shape.numel (Hashtbl.find shapes name) in
  (* last sub-operator uid of every CIM node *)
  let last_uid_of_node = Hashtbl.create 64 in
  Array.iter
    (fun (op : Opinfo.t) -> Hashtbl.replace last_uid_of_node op.Opinfo.node_id op.Opinfo.uid)
    ops;
  (* anchor every vector node at the max uid among its CIM ancestors *)
  let ancestors = Opinfo.node_cim_ancestors g in
  let anchor_of (nd : Graph.node) =
    let deps = Option.value (Hashtbl.find_opt ancestors nd.id) ~default:[] in
    List.fold_left
      (fun acc d ->
        match Hashtbl.find_opt last_uid_of_node d with
        | Some u -> max acc u
        | None -> acc)
      (-1) deps
  in
  let vector_nodes_at = Hashtbl.create 64 in
  List.iter
    (fun (nd : Graph.node) ->
      if not (Op.is_cim_supported nd.op) then begin
        let a = anchor_of nd in
        let existing = Option.value (Hashtbl.find_opt vector_nodes_at a) ~default:[] in
        Hashtbl.replace vector_nodes_at a (existing @ [ nd ])
      end)
    g.nodes;
  let vec_instr (nd : Graph.node) =
    Flow.Vector_op
      {
        label = nd.name;
        node_id = nd.id;
        inputs = nd.inputs;
        output = (match nd.outputs with [ o ] -> o | _ -> assert false);
      }
  in
  let preamble =
    List.map vec_instr (Option.value (Hashtbl.find_opt vector_nodes_at (-1)) ~default:[])
  in
  let segment_instrs (sp : Placement.seg_place) =
    let switches =
      (if sp.Placement.to_compute = [] then []
       else [ Flow.Switch { target = Mode.To_compute; arrays = sp.Placement.to_compute } ])
      @
      if sp.Placement.to_memory = [] then []
      else [ Flow.Switch { target = Mode.To_memory; arrays = sp.Placement.to_memory } ]
    in
    let body =
      List.concat_map
        (fun (opl : Placement.op_place) ->
          let info = ops.(opl.Placement.uid) in
          let slice = { Flow.lo = info.Opinfo.out_lo; hi = info.Opinfo.out_hi } in
          (* in-place arrays (§5.3) already hold the stationary data: the
             zero-byte write marks the relabel without streaming anything —
             the timing simulator charges nothing for it *)
          let fresh =
            List.filter
              (fun c -> not (List.mem c opl.Placement.in_place))
              opl.Placement.compute
          in
          let write_list =
            let scaled =
              if opl.Placement.compute = [] then 0
              else
                info.Opinfo.weight_bytes * List.length fresh
                / List.length opl.Placement.compute
            in
            (if fresh = [] then []
             else
               [ Flow.Write_weights
                   { label = info.Opinfo.label; node_id = info.Opinfo.node_id;
                     arrays = fresh; slice; bytes = scaled; in_place = false } ])
            @
            if opl.Placement.in_place = [] then []
            else
              [ Flow.Write_weights
                  { label = info.Opinfo.label; node_id = info.Opinfo.node_id;
                    arrays = opl.Placement.in_place; slice; bytes = 0;
                    in_place = true } ]
          in
          let loads =
            List.map
              (fun input ->
                let dst =
                  if opl.Placement.mem_in = [] then Flow.Buffer
                  else Flow.Mem_arrays opl.Placement.mem_in
                in
                Flow.Load
                  { tensor = input; src = Flow.Main_memory; dst; bytes = bytes_of input })
              info.Opinfo.inputs
          in
          let compute =
            Flow.Compute
              {
                label = info.Opinfo.label;
                node_id = info.Opinfo.node_id;
                arrays = opl.Placement.compute;
                mem_arrays = opl.Placement.mem_in @ opl.Placement.mem_out;
                inputs = info.Opinfo.inputs;
                output = info.Opinfo.output;
                slice;
                macs = info.Opinfo.macs;
                ai = info.Opinfo.ai;
              }
          in
          let store =
            let src =
              if opl.Placement.mem_out = [] then Flow.Buffer
              else Flow.Mem_arrays opl.Placement.mem_out
            in
            Flow.Store
              {
                tensor = info.Opinfo.output;
                src;
                dst = Flow.Main_memory;
                bytes = info.Opinfo.out_bytes;
              }
          in
          let vectors =
            List.map vec_instr
              (Option.value
                 (Hashtbl.find_opt vector_nodes_at opl.Placement.uid)
                 ~default:[])
          in
          write_list @ loads @ (compute :: store :: vectors))
        sp.Placement.ops
    in
    switches @ [ Flow.Parallel body ]
  in
  let final_stores =
    List.map
      (fun o ->
        Flow.Store
          { tensor = o; src = Flow.Buffer; dst = Flow.Main_memory; bytes = bytes_of o })
      g.graph_outputs
  in
  {
    Flow.source = g.graph_name;
    instrs = preamble @ List.concat_map segment_instrs places @ final_stores;
  }
