(** Dual-mode meta-operator code generation (§4.4): turn a placed schedule
    into a {!Cim_metaop.Flow.program}. Each network segment becomes a
    [parallel{}] block preceded by its [CM.switch] instructions; vector
    (non-CIM) operators are interleaved at the position of their last CIM
    ancestor so the program executes in dependency order. *)

val generate :
  Cim_arch.Chip.t -> Cim_nnir.Graph.t -> Opinfo.t array ->
  Placement.seg_place list -> Cim_metaop.Flow.program
