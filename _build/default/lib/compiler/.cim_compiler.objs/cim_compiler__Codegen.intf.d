lib/compiler/codegen.mli: Cim_arch Cim_metaop Cim_nnir Opinfo Placement
