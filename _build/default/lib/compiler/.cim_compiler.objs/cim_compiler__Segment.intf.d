lib/compiler/segment.mli: Alloc Cim_arch Opinfo Plan
