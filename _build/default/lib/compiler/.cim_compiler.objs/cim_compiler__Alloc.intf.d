lib/compiler/alloc.mli: Cim_arch Opinfo Plan
