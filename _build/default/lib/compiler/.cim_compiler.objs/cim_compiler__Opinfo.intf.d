lib/compiler/opinfo.mli: Cim_arch Cim_models Cim_nnir Hashtbl
