lib/compiler/report.mli: Cmswitch
