lib/compiler/opinfo.ml: Array Cim_arch Cim_models Cim_nnir Cim_tensor Cim_util Float Hashtbl List Option Printf
