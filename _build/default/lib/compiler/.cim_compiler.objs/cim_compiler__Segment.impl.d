lib/compiler/segment.ml: Alloc Array Buffer Cim_arch Hashtbl List Opinfo Option Plan Printf
