lib/compiler/plan.ml: Array Cim_arch Format List Opinfo
