lib/compiler/placement.ml: Array Cim_arch Cim_models Hashtbl List Opinfo Option Plan
