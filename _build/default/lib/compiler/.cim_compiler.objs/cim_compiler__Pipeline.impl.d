lib/compiler/pipeline.ml: Alloc Array Buffer Bytes Cim_arch Float Hashtbl List Opinfo Plan Printf String
