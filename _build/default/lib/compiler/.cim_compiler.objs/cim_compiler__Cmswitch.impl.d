lib/compiler/cmswitch.ml: Alloc Array Cim_arch Cim_metaop Cim_models Cim_nnir Cim_tensor Cim_util Codegen Float List Logs Opinfo Option Placement Plan Segment Sys
