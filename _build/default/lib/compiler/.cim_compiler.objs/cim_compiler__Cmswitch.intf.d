lib/compiler/cmswitch.mli: Cim_arch Cim_metaop Cim_models Cim_nnir Logs Opinfo Placement Plan Segment
