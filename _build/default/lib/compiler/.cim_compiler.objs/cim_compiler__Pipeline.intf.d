lib/compiler/pipeline.mli: Cim_arch Opinfo Plan
