lib/compiler/plan.mli: Cim_arch Format Opinfo
