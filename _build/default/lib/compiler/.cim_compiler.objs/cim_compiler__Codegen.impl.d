lib/compiler/codegen.ml: Array Cim_arch Cim_metaop Cim_nnir Cim_tensor Hashtbl List Opinfo Option Placement
