lib/compiler/greedy.mli: Cim_arch Opinfo Plan
