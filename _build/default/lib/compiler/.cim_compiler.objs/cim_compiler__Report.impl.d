lib/compiler/report.ml: Array Buffer Cim_arch Cim_metaop Cim_nnir Cmswitch List Opinfo Placement Plan Printf Segment
