lib/compiler/alloc.ml: Array Cim_arch Cim_solver Cim_util Float Hashtbl List Opinfo Option Plan Printf
