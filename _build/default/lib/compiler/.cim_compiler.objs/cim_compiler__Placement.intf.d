lib/compiler/placement.mli: Cim_arch Opinfo Plan
