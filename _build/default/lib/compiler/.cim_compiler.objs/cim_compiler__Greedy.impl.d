lib/compiler/greedy.ml: Alloc Array Cim_arch Float List Opinfo Plan
