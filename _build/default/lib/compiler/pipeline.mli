(** Discrete-event refinement of the pipelined-segment latency.

    Eq. 9 approximates a segment's latency as its slowest operator's Eq. 10
    latency — exact for a saturated pipeline, but it ignores fill/drain and
    intra-segment dependency chains. This module simulates the segment as a
    tile pipeline: the activation stream is cut into [tiles] chunks, each
    operator processes one chunk per step at its allocated Eq. 10 rate, and
    a chunk may start only after the operator's previous chunk and every
    intra-segment producer's same chunk have finished.

    Used by the ablation bench to quantify the approximation error the
    paper's objective accepts, and to render per-operator timelines. *)

type event = {
  uid : int;
  label : string;
  tile : int;
  t_start : float;
  t_finish : float;
}

val simulate :
  Cim_arch.Chip.t -> Opinfo.t array -> Plan.seg_plan -> ?tiles:int ->
  ?include_setup:bool -> unit -> float * event list
(** [simulate chip ops plan ()] returns the segment makespan in cycles and
    the per-(operator, tile) events. [tiles] defaults to 8;
    [include_setup] (default false) charges each operator's Eq. 2 weight
    programming before its first tile. The makespan is always >= the Eq. 9
    approximation ([plan.intra_cycles] when setup is off). *)

val gantt : ?width:int -> event list -> string
(** ASCII timeline, one row per operator. *)
