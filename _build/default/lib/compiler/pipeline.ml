module Chip = Cim_arch.Chip
module Cost = Cim_arch.Cost

type event = {
  uid : int;
  label : string;
  tile : int;
  t_start : float;
  t_finish : float;
}

let simulate chip (ops : Opinfo.t array) (plan : Plan.seg_plan)
    ?(tiles = 8) ?(include_setup = false) () =
  if tiles <= 0 then invalid_arg "Pipeline.simulate: tiles must be positive";
  let allocs = Array.of_list plan.Plan.allocs in
  let n = Array.length allocs in
  let index_of_uid = Hashtbl.create 16 in
  Array.iteri (fun i (a : Plan.op_alloc) -> Hashtbl.replace index_of_uid a.Plan.uid i) allocs;
  let per_tile =
    Array.map
      (fun (a : Plan.op_alloc) ->
        Alloc.op_latency chip ops.(a.Plan.uid) a /. float_of_int tiles)
      allocs
  in
  let setup =
    Array.map
      (fun (a : Plan.op_alloc) ->
        if include_setup then
          Cost.weight_rewrite_latency chip ~max_com:a.Plan.com
        else 0.)
      allocs
  in
  (* finish.(i) holds the completion time of operator i's latest tile *)
  let finish = Array.make n 0. in
  let events = ref [] in
  let makespan = ref 0. in
  for tile = 0 to tiles - 1 do
    for i = 0 to n - 1 do
      let uid = allocs.(i).Plan.uid in
      let dep_ready =
        List.fold_left
          (fun acc d ->
            match Hashtbl.find_opt index_of_uid d with
            | Some j when j < i -> Float.max acc finish.(j)
            | Some _ | None -> acc)
          0. ops.(uid).Opinfo.deps
      in
      let self_ready = if tile = 0 then setup.(i) else finish.(i) in
      let t_start = Float.max dep_ready self_ready in
      let t_finish = t_start +. per_tile.(i) in
      finish.(i) <- t_finish;
      makespan := Float.max !makespan t_finish;
      events :=
        { uid; label = ops.(uid).Opinfo.label; tile; t_start; t_finish } :: !events
    done
  done;
  (!makespan, List.rev !events)

let gantt ?(width = 64) events =
  match events with
  | [] -> "(empty)\n"
  | _ ->
    let horizon =
      List.fold_left (fun acc e -> Float.max acc e.t_finish) 0. events
    in
    let rows = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun e ->
        if not (Hashtbl.mem rows e.uid) then begin
          Hashtbl.replace rows e.uid (Bytes.make width '.');
          order := e.uid :: !order
        end;
        let row = Hashtbl.find rows e.uid in
        let pos t = min (width - 1) (int_of_float (t /. horizon *. float_of_int width)) in
        for p = pos e.t_start to pos (e.t_finish -. 1e-12) do
          Bytes.set row p '#'
        done)
      events;
    let label_of uid =
      match List.find_opt (fun e -> e.uid = uid) events with
      | Some e -> e.label
      | None -> string_of_int uid
    in
    let buf = Buffer.create 256 in
    List.iter
      (fun uid ->
        Buffer.add_string buf
          (Printf.sprintf "%-28s |%s|\n"
             (let l = label_of uid in
              if String.length l > 28 then String.sub l 0 28 else l)
             (Bytes.to_string (Hashtbl.find rows uid))))
      (List.rev !order);
    Buffer.add_string buf (Printf.sprintf "horizon: %.0f cycles\n" horizon);
    Buffer.contents buf
