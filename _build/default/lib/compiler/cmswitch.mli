(** CMSwitch compilation driver: the end-to-end pipeline of Fig. 7
    (graph -> operator extraction -> DP segmentation with per-segment MIP
    allocation -> placement -> meta-operator code generation). *)

val log_src : Logs.src
(** The compiler's log source ("cmswitch"): enable [Debug] to trace the
    pipeline's pass boundaries. *)

type options = {
  partition_fraction : float;   (** sub-operator cap, fraction of the chip *)
  segment : Segment.options;
}

val default_options : options

type result = {
  chip : Cim_arch.Chip.t;
  graph : Cim_nnir.Graph.t;
  ops : Opinfo.t array;
  schedule : Plan.schedule;
  places : Placement.seg_place list;
  program : Cim_metaop.Flow.program;
  dp_stats : Segment.stats;
  compile_seconds : float;      (** wall-clock compilation time (Fig. 18) *)
}

val compile : ?options:options -> Cim_arch.Chip.t -> Cim_nnir.Graph.t -> result
(** Raises [Failure]/[Opinfo.Unsupported] on graphs the chip cannot run. *)

val memory_mode_ratio : result -> float
(** Average over segments of (memory-mode arrays / chip arrays) — the
    metric of Fig. 16's last row. *)

(** End-to-end model cost with block reuse: transformer benchmarks compile
    one block and replicate it [n_layers] times (plus the LM head), as the
    paper does; CNNs compile whole. *)
type model_cost = {
  model : string;
  workload : Cim_models.Workload.t;
  layer : result option;        (** the reused block, when block reuse applies *)
  whole : result option;        (** whole-graph compilation (CNNs) *)
  head : result option;         (** LM head (decoder/encoder output projection) *)
  total_cycles : float;
  mem_ratio : float;
  compile_seconds : float;
}

val compile_model :
  ?options:options -> Cim_arch.Chip.t -> Cim_models.Zoo.entry ->
  Cim_models.Workload.t -> model_cost

val head_graph :
  Cim_models.Zoo.entry -> Cim_models.Workload.t -> Cim_nnir.Graph.t option
(** The LM-head projection graph compiled alongside the reused block;
    [None] for CNNs. Shared with the baseline compilers so every compiler
    prices the same end-to-end network. *)
