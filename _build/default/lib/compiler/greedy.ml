module Chip = Cim_arch.Chip

let solve chip (ops : Opinfo.t array) ~lo ~hi =
  if lo < 0 || hi >= Array.length ops || lo > hi then
    invalid_arg "Greedy.solve: bad uid range";
  if Opinfo.total_min_arrays ops ~lo ~hi > chip.Chip.n_arrays then None
  else begin
    let n = hi - lo + 1 in
    let alloc =
      Array.init n (fun k ->
          { Plan.uid = lo + k;
            com = ops.(lo + k).Opinfo.min_compute_arrays;
            mem_in = 0;
            mem_out = 0 })
    in
    let used = ref (Opinfo.total_min_arrays ops ~lo ~hi) in
    let latency k = Alloc.op_latency chip ops.(lo + k) alloc.(k) in
    let bottleneck () =
      let worst = ref 0. in
      for k = 0 to n - 1 do
        worst := Float.max !worst (latency k)
      done;
      !worst
    in
    let grant_com k a = ignore k; { a with Plan.com = a.Plan.com + 1 } in
    let grant_mem k a = ignore k; { a with Plan.mem_in = a.Plan.mem_in + 1 } in
    let continue_ = ref true in
    while !continue_ && !used < chip.Chip.n_arrays do
      let before = bottleneck () in
      let best : (int * (int -> Plan.op_alloc -> Plan.op_alloc) * float) option ref =
        ref None
      in
      for k = 0 to n - 1 do
        List.iter
          (fun grant ->
            let saved = alloc.(k) in
            alloc.(k) <- grant k saved;
            let after = bottleneck () in
            alloc.(k) <- saved;
            if after < before -. 1e-12 then
              match !best with
              | Some (_, _, b) when b <= after -> ()
              | _ -> best := Some (k, grant, after))
          [ grant_com; grant_mem ]
      done;
      match !best with
      | None -> continue_ := false
      | Some (k, grant, _) ->
        alloc.(k) <- grant k alloc.(k);
        incr used
    done;
    Some
      {
        Plan.lo;
        hi;
        allocs = Array.to_list alloc;
        reuse = [];
        intra_cycles = bottleneck ();
      }
  end
