type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  raw mod bound

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  raw /. 9007199254740992. *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  lo + int t (hi - lo + 1)

let gaussian t ~mu ~sigma =
  (* Box–Muller; reject u1 = 0 to keep log finite. *)
  let rec draw () =
    let u1 = float t 1. in
    if u1 = 0. then draw () else u1
  in
  let u1 = draw () in
  let u2 = float t 1. in
  mu +. (sigma *. sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2))

let split t = { state = next_int64 t }

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
