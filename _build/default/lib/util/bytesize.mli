(** Byte-size arithmetic and formatting used throughout the hardware
    abstraction and cost model. All sizes are in bytes and non-negative. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val to_string : int -> string
(** Human-readable, e.g. [80 KiB], [6.7 GiB]. *)

val of_bits : int -> int
(** Round bits up to whole bytes. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] = ceiling of a/b for positive [b], non-negative [a]. *)
