let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let to_string n =
  let f = float_of_int n in
  if n >= gib 1 then Printf.sprintf "%.2f GiB" (f /. float_of_int (gib 1))
  else if n >= mib 1 then Printf.sprintf "%.2f MiB" (f /. float_of_int (mib 1))
  else if n >= kib 1 then Printf.sprintf "%.2f KiB" (f /. float_of_int (kib 1))
  else Printf.sprintf "%d B" n

let of_bits bits = (bits + 7) / 8

let ceil_div a b =
  if b <= 0 then invalid_arg "Bytesize.ceil_div: non-positive divisor";
  if a < 0 then invalid_arg "Bytesize.ceil_div: negative dividend";
  (a + b - 1) / b
