lib/util/stats.mli:
