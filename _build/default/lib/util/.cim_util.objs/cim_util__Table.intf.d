lib/util/table.mli:
