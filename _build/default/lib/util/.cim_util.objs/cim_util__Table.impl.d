lib/util/table.ml: Array Buffer Char Filename Float List Printf String
