lib/util/bytesize.ml: Printf
