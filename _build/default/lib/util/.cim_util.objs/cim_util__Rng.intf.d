lib/util/rng.mli:
