lib/util/bytesize.mli:
