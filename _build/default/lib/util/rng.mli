(** Deterministic splittable RNG (splitmix64) so every experiment, test and
    synthetic workload is reproducible without touching the global [Random]
    state. *)

type t

val create : int -> t
(** [create seed] builds an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] uniform in [0, bound); [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] uniform in [0, bound). *)

val bool : t -> bool

val int_range : t -> int -> int -> int
(** [int_range t lo hi] uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal sample. *)

val split : t -> t
(** Derive an independent child stream. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
