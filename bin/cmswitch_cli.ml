(* cmswitch — command-line front end.

   cmswitch list
   cmswitch compile MODEL [--chip X] [--batch N] [--seq N | --kv N] [--emit] [--sim]
                          [--passes LIST] [--dump-after PASS] [--validate-each]
   cmswitch compare MODEL [--chip X] [--batch N] [--seq N | --kv N]
   cmswitch serve MODEL [--chips N] [--fault-schedule FILE] [--slo CYCLES]
                        [--telemetry FILE] [--openmetrics FILE]
   cmswitch disasm MODEL [--chip X] [--batch N] [--seq N | --kv N]
   cmswitch report FILE [-o FILE]
   cmswitch cache (stats|clear|verify) [--cache-dir DIR]

   The flags shared by compile / compare / serve / disasm (--jobs,
   --tensor-backend, --buckets, --cache-dir, --no-cache, --trace,
   --metrics, -v) are assembled from one [common_term] builder, so their
   help text is identical on every subcommand. *)

open Cmdliner
module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Store = Cim_cache.Store
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Bucket = Cim_compiler.Bucket
module Segment = Cim_compiler.Segment
module Plan = Cim_compiler.Plan
module Degrade = Cim_compiler.Degrade
module Faultmap = Cim_arch.Faultmap
module Serving = Cim_sim.Serving
module Fleet = Cim_sim.Fleet
module Baseline = Cim_baselines.Baseline

let chip_arg =
  let parse s =
    (* a preset name, or a path to a chip-spec file (see Cim_arch.Spec) *)
    match List.assoc_opt (String.lowercase_ascii s) Config.presets with
    | Some c -> Ok c
    | None ->
      if Sys.file_exists s then begin
        (* close the channel on every path, including a read that raises *)
        let ic = open_in s in
        let src =
          Fun.protect
            ~finally:(fun () -> close_in_noerr ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        match Cim_arch.Spec.of_string src with
        | c -> Ok c
        | exception Cim_arch.Spec.Parse_error m ->
          Error (`Msg (Printf.sprintf "chip spec %s: %s" s m))
        | exception Chip.Invalid_config m ->
          Error (`Msg (Printf.sprintf "chip spec %s: %s" s m))
      end
      else
        Error (`Msg (Printf.sprintf "unknown chip %S (try: %s, or a spec file)" s
                       (String.concat ", " (List.map fst Config.presets))))
  in
  let print ppf (c : Chip.t) = Format.fprintf ppf "%s" c.Chip.name in
  Arg.(value
       & opt (conv (parse, print)) Config.dynaplasia
       & info [ "chip" ] ~docv:"CHIP"
           ~doc:"Hardware preset (dynaplasia, prime) or a chip-spec file path.")

let model_arg =
  Arg.(required
       & pos 0 (some string) None
       & info [] ~docv:"MODEL" ~doc:"Model key; see $(b,cmswitch list).")

let batch_arg =
  Arg.(value & opt int 1 & info [ "batch" ] ~docv:"N" ~doc:"Batch size.")

let seq_arg =
  Arg.(value & opt int 64
       & info [ "seq" ] ~docv:"N" ~doc:"Prefill sequence length (transformers).")

let kv_arg =
  Arg.(value & opt (some int) None
       & info [ "kv" ] ~docv:"N" ~doc:"Compile a decode step with this KV-cache length instead of prefill.")

let emit_arg =
  Arg.(value & flag & info [ "emit" ] ~doc:"Print the meta-operator flow.")

let sim_arg =
  Arg.(value & flag & info [ "sim" ] ~doc:"Run the timing simulator on the flow.")

let fault_rate_arg =
  Arg.(value & opt float 0.
       & info [ "fault-rate" ] ~docv:"R"
           ~doc:"Fraction of arrays injected as dead (0..1); the compiler \
                 plans around them and reports the degradation.")

let fault_seed_arg =
  Arg.(value & opt int 0
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed for deterministic fault injection.")

let deadline_arg =
  Arg.(value & opt (some float) None
       & info [ "deadline" ] ~docv:"CYCLES"
           ~doc:"Serve a small synthetic request trace against the compiled \
                 schedule, dropping requests whose completion would exceed \
                 this per-request deadline (in cycles).")

(* validated through the same parser as the CMSWITCH_JOBS environment
   override, so 0 / negatives / garbage are rejected with a usage error *)
let jobs_conv =
  let parse s =
    match Cim_util.Pool.parse_jobs s with
    | Ok n -> Ok n
    | Error m -> Error (`Msg m)
  in
  Cmdliner.Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(value & opt (some jobs_conv) None
       & info [ "jobs" ] ~docv:"N"
           ~doc:"Concurrent MILP solvers per DP frontier (default: \
                 $(b,CMSWITCH_JOBS), else the recommended domain count). \
                 Compilation output is byte-identical for every value; \
                 only wall-clock changes.")

let tensor_backend_conv =
  let parse s =
    match Cim_tensor.Kernels.backend_of_string s with
    | Ok b -> Ok b
    | Error m -> Error (`Msg m)
  in
  Cmdliner.Arg.conv
    ( parse,
      fun ppf b ->
        Format.pp_print_string ppf (Cim_tensor.Kernels.backend_to_string b) )

let tensor_backend_arg =
  Arg.(value & opt (some tensor_backend_conv) None
       & info [ "tensor-backend" ] ~docv:"BACKEND"
           ~doc:"Kernel engine for the simulators: $(b,bigarray) \
                 (cache-blocked unsafe int8/float kernels) or $(b,boxed) \
                 (the seed loops, kept as the differential oracle). Both \
                 produce bitwise-identical tensors; only wall-clock \
                 changes. Default: $(b,CMSWITCH_TENSOR_BACKEND), else \
                 bigarray.")

let sim_check_arg =
  Arg.(value & flag
       & info [ "sim-check" ]
           ~doc:"Run the functional simulator on the compiled flow with \
                 seeded random weights/inputs and print its byte-identity \
                 digest ($(b,functional_md5=)...) and max abs/rel error \
                 against the float reference. The digest is invariant \
                 across $(b,--jobs) and $(b,--tensor-backend).")

let buckets_conv =
  let parse s =
    match Bucket.of_string s with Ok b -> Ok b | Error m -> Error (`Msg m)
  in
  Cmdliner.Arg.conv
    (parse, fun ppf b -> Format.pp_print_string ppf (Bucket.to_string b))

let buckets_arg =
  Arg.(value & opt (some buckets_conv) None
       & info [ "buckets" ] ~docv:"POLICY"
           ~doc:"Length-bucketed compilation: transformer workloads compile \
                 at the bucket ceiling of their sequence/context length, so \
                 every length inside a bucket shares one cached program and \
                 warm decode steps re-solve zero MILPs. POLICY is \
                 $(b,pow2) (powers of two, ceilings 32..2048), \
                 $(b,pow2:MIN:MAX), or an explicit comma-separated boundary \
                 list like $(b,32,64,128,512).")

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~docv:"DIR"
           ~doc:"Persist the compilation cache (per-segment MILP solutions \
                 and whole-program plans) under DIR, so repeat compiles are \
                 warm across processes. Defaults to $(b,CMSWITCH_CACHE_DIR) \
                 when that is set.")

let no_cache_arg =
  Arg.(value & flag
       & info [ "no-cache" ]
           ~doc:"Disable the compilation cache, overriding $(b,--cache-dir) \
                 and $(b,CMSWITCH_CACHE_DIR).")

let env_cache_dir () =
  match Sys.getenv_opt "CMSWITCH_CACHE_DIR" with
  | Some d when d <> "" -> Some d
  | _ -> None

let store_for ~cache_dir ~no_cache =
  if no_cache then None
  else
    match (cache_dir, env_cache_dir ()) with
    | Some d, _ | None, Some d -> Some (Store.open_dir d)
    | None, None -> None

let config_for ?tensor_backend ?buckets ~jobs ~store () =
  let cfg = Cmswitch.Config.default in
  let cfg =
    match jobs with None -> cfg | Some j -> Cmswitch.Config.with_jobs j cfg
  in
  let cfg =
    match buckets with
    | None -> cfg
    | Some b -> Cmswitch.Config.with_buckets (Some b) cfg
  in
  let cfg =
    match tensor_backend with
    | None -> cfg
    | Some b ->
      (* the knob steers every kernel in this process, not just calls that
         thread the config through *)
      Cim_tensor.Kernels.set_backend b;
      Cmswitch.Config.with_tensor_backend b cfg
  in
  Cmswitch.Config.with_cache store cfg

let hit_rate_pct (c : Store.counters) =
  let total = c.Store.hits + c.Store.misses in
  if total = 0 then 0. else 100. *. float_of_int c.Store.hits /. float_of_int total

let report_cache_counters store =
  match store with
  | None -> ()
  | Some s ->
    let line tier (c : Store.counters) =
      (* the "hits=... misses=... invalid=..." prefix is parsed by the CI
         cache-smoke step; append new fields after it, never reformat it *)
      Printf.printf
        "cache %-4s: hits=%d misses=%d invalid=%d puts=%d hit-rate=%.1f%% (dir %s)\n"
        tier c.Store.hits c.Store.misses c.Store.invalid c.Store.puts
        (hit_rate_pct c) (Store.dir s)
    in
    line "prog" (Store.tier_counters s Cim_compiler.Ccache.prog_tier);
    line "seg" (Store.tier_counters s Cim_compiler.Ccache.seg_tier);
    (* persist this process's deltas so `cmswitch cache stats` can report
       lifetime hit rates across invocations *)
    Store.flush_counters s

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace the compilation pipeline.")

let trace_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Record a Chrome trace-event JSON of the compilation passes, \
                 per-segment MILP solves and per-array mode residency to \
                 FILE; open it in Perfetto or chrome://tracing.")

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Print the metrics registry (B&B nodes, simplex pivots, \
                 degradation ladder, mode switches, cycles by mode) as a \
                 Markdown table after the run.")

module Obs_trace = Cim_obs.Trace
module Obs_metrics = Cim_obs.Metrics
module Telemetry = Cim_obs.Telemetry
module Timeline = Cim_obs.Timeline
module Json = Cim_obs.Json

let setup_obs ~trace ~metrics =
  if trace <> None then begin
    Obs_trace.set_enabled true;
    Obs_trace.reset ()
  end;
  if metrics || trace <> None then begin
    (* a trace without the matching counters is half the story; --trace
       implies metric recording, --metrics controls printing *)
    Obs_metrics.set_enabled true;
    Obs_metrics.reset ()
  end

let finish_obs ~trace ~metrics =
  (match trace with
  | None -> ()
  | Some file ->
    Obs_trace.write_file file;
    Printf.printf "trace written to %s (load in Perfetto / chrome://tracing)\n"
      file);
  if metrics then begin
    print_newline ();
    print_string (Obs_metrics.to_markdown ())
  end

let setup_logs verbose =
  Fmt_tty.setup_std_outputs ();
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then begin
    Logs.Src.set_level Cim_compiler.Cmswitch.log_src (Some Logs.Debug);
    Logs.Src.set_level Cim_compiler.Passes.log_src (Some Logs.Debug)
  end

(* ---- the shared flag set -------------------------------------------------- *)

(* One builder for the flags every heavyweight subcommand shares; the cache
   subcommand needs only [cache_dir_arg], which it reuses directly. *)
type common = {
  jobs : int option;
  tensor_backend : Cim_tensor.Kernels.backend option;
  buckets : Bucket.t option;
  cache_dir : string option;
  no_cache : bool;
  verbose : bool;
  trace : string option;
  metrics : bool;
}

let common_term =
  let make jobs tensor_backend buckets cache_dir no_cache verbose trace
      metrics =
    { jobs; tensor_backend; buckets; cache_dir; no_cache; verbose; trace;
      metrics }
  in
  Term.(const make $ jobs_arg $ tensor_backend_arg $ buckets_arg
        $ cache_dir_arg $ no_cache_arg $ verbose_arg $ trace_arg
        $ metrics_arg)

(* logging + observability + cache store in one go; [?metrics_on] lets
   serve imply metric recording while a telemetry collector is active *)
let setup_common ?metrics_on c =
  setup_logs c.verbose;
  setup_obs ~trace:c.trace
    ~metrics:(Option.value metrics_on ~default:c.metrics);
  store_for ~cache_dir:c.cache_dir ~no_cache:c.no_cache

let config_of_common c ~store =
  config_for ?tensor_backend:c.tensor_backend ?buckets:c.buckets ~jobs:c.jobs
    ~store ()

let finish_common c ~store =
  report_cache_counters store;
  finish_obs ~trace:c.trace ~metrics:c.metrics

(* ---- pass-pipeline flags (compile) ---------------------------------------- *)

module Passes = Cim_compiler.Passes

let pass_names () =
  String.concat ", " (List.map (fun p -> p.Passes.name) Passes.registry)

let passes_arg =
  Arg.(value & opt (some string) None
       & info [ "passes" ] ~docv:"LIST"
           ~doc:(Printf.sprintf
                   "Run a custom pass pipeline: comma-separated pass names \
                    (known: %s). The token $(b,default) expands to the \
                    standard pipeline and $(b,serial) to the no-DP \
                    fallback, so $(b,--passes default,lower_isa) appends \
                    the ISA lowering. The pass list is part of the \
                    program-cache key — a custom pipeline never replays a \
                    program cached under a different one."
                   (pass_names ())))

let dump_after_arg =
  Arg.(value & opt_all string []
       & info [ "dump-after" ] ~docv:"PASS"
           ~doc:"Print the compilation state (ops, segments, schedule \
                 totals, program size and digest, ISA command count) after \
                 the named pass; repeatable. Dumps fire on cold compiles \
                 only — a program-cache hit replays no passes.")

let validate_each_arg =
  Arg.(value & flag
       & info [ "validate-each" ]
           ~doc:"Run every pass's validator after it (the nanopass \
                 discipline): a broken intermediate state aborts the \
                 compile naming the offending pass.")

let resolve_passes spec =
  match spec with
  | None -> Passes.default_pipeline
  | Some s -> (
    match Passes.parse_list s with
    | Ok l -> l
    | Error m ->
      Printf.eprintf "--passes: %s\n" m;
      exit 1)

let on_pass_of ~passes dump_after =
  List.iter
    (fun nm ->
      if not (List.exists (fun p -> p.Passes.name = nm) passes) then begin
        Printf.eprintf
          "--dump-after: pass %S is not in the active pipeline (%s)\n" nm
          (String.concat ", " (List.map (fun p -> p.Passes.name) passes));
        exit 1
      end)
    dump_after;
  if dump_after = [] then None
  else
    Some
      (fun (p : Passes.pass) st ->
        if List.mem p.Passes.name dump_after then
          Printf.printf "--- after %s ---\n%s%!" p.Passes.name
            (Passes.describe_state st))

let report_arg =
  Arg.(value & opt (some string) None
       & info [ "report" ] ~docv:"FILE"
           ~doc:"Write a Markdown compilation report to FILE.")

let workload_of entry ~batch ~seq ~kv =
  match (entry.Zoo.family, kv) with
  | Zoo.Cnn, _ -> Workload.prefill ~batch 1
  | _, Some kv -> Workload.decode ~batch kv
  | _, None -> Workload.prefill ~batch seq

let find_model key =
  match Zoo.find key with
  | Some e -> e
  | None ->
    Printf.eprintf "unknown model %S; known: %s\n" key
      (String.concat ", " Zoo.names);
    exit 1

let do_list () =
  Printf.printf "%-12s %-12s %-14s %s\n" "key" "family" "params" "display";
  List.iter
    (fun (e : Zoo.entry) ->
      let fam =
        match e.Zoo.family with
        | Zoo.Cnn -> "cnn"
        | Zoo.Encoder_only -> "encoder"
        | Zoo.Decoder_only -> "decoder"
      in
      Printf.printf "%-12s %-12s %-14s %s\n" e.Zoo.key fam
        (Cim_util.Table.cell_si (float_of_int e.Zoo.params))
        e.Zoo.display)
    Zoo.all;
  Printf.printf "\nchips: %s\n" (String.concat ", " (List.map fst Config.presets))

let do_compile chip key batch seq kv emit sim sim_check report fault_rate
    fault_seed deadline passes_spec dump_after validate_each common =
  let store = setup_common common in
  let e = find_model key in
  let w = workload_of e ~batch ~seq ~kv in
  Printf.printf "compiling %s for %s on %s ...\n%!" e.Zoo.display
    (Workload.to_string w) chip.Chip.name;
  let faults =
    if fault_rate <= 0. then None
    else begin
      let fm =
        try Faultmap.inject chip ~seed:fault_seed ~dead_rate:fault_rate ()
        with Invalid_argument msg ->
          Printf.eprintf "fault injection failed: %s\n" msg;
          exit 1
      in
      Printf.printf "injected faults (seed %d): %d dead of %d arrays\n"
        fault_seed
        (chip.Chip.n_arrays - Faultmap.healthy_count fm)
        chip.Chip.n_arrays;
      Some fm
    end
  in
  let passes = resolve_passes passes_spec in
  let on_pass = on_pass_of ~passes dump_after in
  let mc =
    try
      Cmswitch.compile_model
        ~config:(config_of_common common ~store)
        ?faults ~passes ~validate_each ?on_pass chip e w
    with
    | Failure msg | Invalid_argument msg ->
      Printf.eprintf "compilation failed: %s\n" msg;
      exit 1
    | Passes.Pass_error { pass; reason } ->
      Printf.eprintf "pass %s rejected its output: %s\n" pass reason;
      exit 1
  in
  (match (common.buckets, mc.Cmswitch.bucket_ceiling) with
  | Some b, Some ceil ->
    Printf.printf
      "bucketed: compiled at %s (ceiling %d for %s); every length in the \
       bucket shares this cached program\n"
      (Workload.to_string mc.Cmswitch.padded_workload)
      ceil (Bucket.to_string b)
  | Some _, None ->
    Printf.printf "bucketed: policy is a no-op for this workload\n"
  | None, _ -> ());
  let part =
    match (mc.Cmswitch.layer, mc.Cmswitch.whole) with
    | Some r, _ -> Some (r, Printf.sprintf "one of %d identical blocks" e.Zoo.n_layers)
    | None, Some r -> Some (r, "whole network")
    | None, None -> None
  in
  (match part with
  | None -> ()
  | Some (r, scope) ->
    Format.printf "%a (%s)@." Plan.pp_schedule r.Cmswitch.schedule scope;
    Printf.printf "memory-mode ratio: %s; DP: %d MIP solves, %d cache hits\n"
      (Cim_util.Table.cell_pct (Cmswitch.memory_mode_ratio r))
      r.Cmswitch.dp_stats.Cim_compiler.Segment.mip_solves
      r.Cmswitch.dp_stats.Cim_compiler.Segment.mip_cache_hits;
    Printf.printf "program_md5=%s\n"
      (Digest.to_hex
         (Digest.string (Cim_metaop.Flow.to_string r.Cmswitch.program)));
    (* --trace implies a timing pass: the simulator populates the per-array
       mode-residency tracks and the cycles-by-mode counters *)
    if sim || common.trace <> None then begin
      let t = Cim_sim.Timing.run chip r.Cmswitch.program in
      if sim then Format.printf "%a@." Cim_sim.Timing.pp t
    end;
    if sim_check then begin
      (* seeded weights + inputs, so the digest is comparable across runs,
         job counts and backends (the byte-identity CI check) *)
      let rng = Cim_util.Rng.create 42 in
      let g = Cim_nnir.Graph.with_random_values rng r.Cmswitch.graph in
      let inputs =
        List.map
          (fun (n, shape) ->
            (n, Cim_tensor.Tensor.rand rng shape ~lo:(-1.) ~hi:1.))
          g.Cim_nnir.Graph.graph_inputs
      in
      let rep =
        try
          Cim_sim.Functional.run chip ?faults ?jobs:common.jobs g
            r.Cmswitch.program ~inputs
        with Cim_sim.Functional.Error msg ->
          Printf.eprintf "functional simulation failed: %s\n" msg;
          exit 1
      in
      Printf.printf
        "functional_md5=%s (computes=%d vectors=%d max_abs=%.3e max_rel=%.3e)\n"
        (Cim_sim.Functional.digest rep)
        rep.Cim_sim.Functional.compute_instrs rep.Cim_sim.Functional.vector_instrs
        rep.Cim_sim.Functional.max_abs_err rep.Cim_sim.Functional.max_rel_err
    end;
    if Degrade.degraded r.Cmswitch.degradation then
      Format.printf "%a@." Degrade.pp r.Cmswitch.degradation;
    if emit then print_string (Cim_metaop.Flow.to_string r.Cmswitch.program);
    match report with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Cim_compiler.Report.to_markdown r);
      close_out oc;
      Printf.printf "report written to %s\n" file);
  Printf.printf "end-to-end: %.3e cycles (%.2f ms at %g MHz), compile %.2fs\n"
    mc.Cmswitch.total_cycles
    (Chip.cycles_to_us chip mc.Cmswitch.total_cycles /. 1000.)
    chip.Chip.freq_mhz mc.Cmswitch.compile_seconds;
  (match deadline with
  | None -> ()
  | Some d ->
    (* a schedule-derived cost profile: every prefill or decode step is one
       full pass of the compiled schedule *)
    let pass = mc.Cmswitch.total_cycles in
    let profile =
      { Serving.prefill_cycles = (fun _ -> pass);
        decode_cycles = (fun _ -> pass) }
    in
    let rng = Cim_util.Rng.create fault_seed in
    let reqs =
      Serving.poisson_trace rng ~n:16 ~mean_gap:(2. *. pass)
        ~prompt:(max 1 seq) ~output:4
    in
    let s = Serving.run ~deadline:d profile reqs in
    Printf.printf
      "serving (deadline %.3e cycles): %d completed, %d dropped, p95 \
       latency %.3e, %.2f tokens/Mcycle\n"
      d s.Serving.completed s.Serving.dropped s.Serving.p95_latency
      s.Serving.tokens_per_megacycle);
  finish_common common ~store

let do_compare chip key batch seq kv common =
  let store = setup_common common in
  let e = find_model key in
  let w = workload_of e ~batch ~seq ~kv in
  Printf.printf "%s on %s, %s\n" e.Zoo.display chip.Chip.name (Workload.to_string w);
  let cms =
    (Cmswitch.compile_model ~config:(config_of_common common ~store) chip e w)
      .Cmswitch.total_cycles
  in
  Printf.printf "  %-10s %.4e cycles\n" "CMSwitch" cms;
  List.iter
    (fun which ->
      let c = Baseline.compile_model which chip e w in
      Printf.printf "  %-10s %.4e cycles (CMSwitch %.2fx faster)\n"
        (Baseline.name which) c (c /. cms))
    [ Baseline.Cim_mlc; Baseline.Puma; Baseline.Occ ];
  finish_common common ~store

(* ---- serve subcommand ---------------------------------------------------- *)

let chips_arg =
  Arg.(value & opt int 2
       & info [ "chips" ] ~docv:"N" ~doc:"Fleet size (identical chips).")

let requests_arg =
  Arg.(value & opt int 32
       & info [ "requests" ] ~docv:"N" ~doc:"Requests in the synthetic trace.")

let mean_gap_arg =
  Arg.(value & opt (some float) None
       & info [ "mean-gap" ] ~docv:"CYCLES"
           ~doc:"Mean inter-arrival gap. Default: twice the per-request \
                 service cost divided by the fleet size (about half the \
                 fleet's saturation load).")

let burst_arg =
  Arg.(value & opt int 1
       & info [ "burst" ] ~docv:"N"
           ~doc:"Group arrivals into bursts of N back-to-back requests \
                 (1 = open-loop Poisson).")

let slo_arg =
  Arg.(value & opt (some float) None
       & info [ "slo" ] ~docv:"CYCLES"
           ~doc:"Per-request latency target: requests that cannot meet it \
                 in full are degraded to a truncated shed tier before any \
                 request is dropped.")

let fault_schedule_arg =
  Arg.(value & opt (some string) None
       & info [ "fault-schedule" ] ~docv:"FILE"
           ~doc:"Runtime fault schedule, one event per line: \
                 $(i,at=CYCLES chip=I array=X,Y fault=KIND) with KIND one \
                 of dead, stuck-compute, stuck-memory, transient:P, clear.")

let fault_events_arg =
  Arg.(value & opt int 0
       & info [ "fault-events" ] ~docv:"N"
           ~doc:"Generate N random mid-run fault events (seeded by \
                 $(b,--fault-seed)) instead of reading a schedule file.")

let seed_arg =
  Arg.(value & opt int 42
       & info [ "seed" ] ~docv:"SEED" ~doc:"Trace-generator seed.")

let shed_output_arg =
  Arg.(value & opt int 4
       & info [ "shed-output" ] ~docv:"N"
           ~doc:"Output tokens a shed request still receives.")

let max_retries_arg =
  Arg.(value & opt int 3
       & info [ "max-retries" ] ~docv:"N"
           ~doc:"Fault-abort retries before a request is given up (shed).")

let breaker_arg =
  Arg.(value & opt int 4
       & info [ "breaker" ] ~docv:"N"
           ~doc:"Circuit-breaker threshold: fault events on one chip \
                 before it is pulled out of rotation for good.")

let recompile_cycles_arg =
  Arg.(value & opt (some float) None
       & info [ "recompile-cycles" ] ~docv:"CYCLES"
           ~doc:"Simulated downtime charged per online recompile. Default: \
                 one full-service pass.")

let recompile_budget_arg =
  Arg.(value & opt (some float) None
       & info [ "recompile-budget" ] ~docv:"SECONDS"
           ~doc:"Wall-clock budget per recompile: once spent, the \
                 degradation ladder jumps straight to its cheapest level. \
                 Note: makes the chosen plan level timing-dependent.")

let telemetry_arg =
  Arg.(value & opt (some string) None
       & info [ "telemetry" ] ~docv:"FILE"
           ~doc:"Record run telemetry — per-request phase spans, periodic \
                 fleet snapshots, cost-model drift, metrics, OpenMetrics \
                 text — into one JSON file; render it offline with \
                 $(b,cmswitch report).")

let timeline_csv_arg =
  Arg.(value & opt (some string) None
       & info [ "timeline-csv" ] ~docv:"FILE"
           ~doc:"Also write the snapshot timeline as CSV (implies the \
                 telemetry collector).")

let openmetrics_arg =
  Arg.(value & opt (some string) None
       & info [ "openmetrics" ] ~docv:"FILE"
           ~doc:"Also write the metrics registry in OpenMetrics/Prometheus \
                 text exposition format (implies the telemetry collector).")

let snapshot_interval_arg =
  Arg.(value & opt (some float) None
       & info [ "snapshot-interval" ] ~docv:"CYCLES"
           ~doc:"Fleet-snapshot sampling interval in simulated cycles. \
                 Default: 1/12 of the trace horizon.")

let slo_budget_arg =
  Arg.(value & opt float 0.05
       & info [ "slo-budget" ] ~docv:"FRACTION"
           ~doc:"SLO error budget: the tolerated fraction of served \
                 requests that may violate the SLO; telemetry reports the \
                 burn rate against it. Only meaningful with $(b,--slo).")

let do_serve chip key batch seq kv chips requests mean_gap burst slo
    fault_schedule fault_events fault_seed seed shed_output max_retries breaker
    recompile_cycles recompile_budget telemetry_file timeline_csv openmetrics
    snapshot_interval slo_budget common =
  let tele_on =
    telemetry_file <> None || timeline_csv <> None || openmetrics <> None
  in
  (* the telemetry document embeds the metrics dump and the OpenMetrics
     text, so a collector implies metric recording (not printing) *)
  let store = setup_common ~metrics_on:(common.metrics || tele_on) common in
  let buckets = common.buckets in
  let e = find_model key in
  let w = workload_of e ~batch ~seq ~kv in
  (* buckets stay out of the base config on purpose: only the bucketed
     healthy-path session below compiles under the policy *)
  let base_cfg =
    config_for ?tensor_backend:common.tensor_backend ~jobs:common.jobs ~store ()
  in
  (* the representative graph: one block for transformers (a pass costs
     n_layers block passes — the LM head is dropped from this estimate),
     the whole network for CNNs *)
  let graph, layers =
    match e.Zoo.layer with
    | Some build_layer -> (build_layer w, float_of_int e.Zoo.n_layers)
    | None -> (e.Zoo.build w, 1.)
  in
  let pass_of (r : Cmswitch.result) =
    r.Cmswitch.schedule.Plan.total_cycles *. layers
  in
  Printf.printf "compiling %s for %s on %d x %s ...\n%!" e.Zoo.display
    (Workload.to_string w) chips chip.Chip.name;
  let r0 =
    try Cmswitch.compile ~config:base_cfg chip graph
    with Failure msg | Invalid_argument msg ->
      Printf.eprintf "compilation failed: %s\n" msg;
      exit 1
  in
  let pass = pass_of r0 in
  let flat_profile pass =
    { Serving.prefill_cycles = (fun _ -> pass);
      decode_cycles = (fun _ -> pass) }
  in
  let rng = Cim_util.Rng.create seed in
  (* a request costs prefill + 4 decode steps = 5 schedule passes; the
     default gap offers about half the fleet's service rate *)
  let mean_gap =
    match mean_gap with
    | Some g -> g
    | None -> 2. *. (5. *. pass) /. float_of_int chips
  in
  let reqs =
    if burst > 1 then
      Serving.bursty_trace rng ~n:requests ~burst ~mean_gap:(mean_gap *. float_of_int burst)
        ~intra_gap:0. ~prompt:(max 1 seq) ~output:4
    else
      Serving.poisson_trace rng ~n:requests ~mean_gap ~prompt:(max 1 seq)
        ~output:4
  in
  let horizon =
    List.fold_left (fun acc (r : Serving.request) ->
        Float.max acc r.Serving.arrival)
      pass reqs
  in
  let schedule =
    match fault_schedule with
    | Some file ->
      let ic = open_in file in
      let src =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Fleet.schedule_of_string src with
      | Ok evs -> evs
      | Error msg ->
        Printf.eprintf "%s: %s\n" file msg;
        exit 1)
    | None ->
      if fault_events <= 0 then []
      else
        Fleet.random_schedule
          (Cim_util.Rng.create fault_seed)
          ~chip ~chips ~n:fault_events ~horizon
  in
  if schedule <> [] then
    Printf.printf "fault schedule: %d events over %.3e cycles\n"
      (List.length schedule) horizon;
  (* Eq. 10 drift attribution: the compiled schedule's predicted cycles
     against one timing-simulator pass of the same flow, per component /
     mode / segment — published as costmodel.drift.* and embedded in the
     telemetry document *)
  let drift =
    if not (tele_on || common.metrics) then None
    else begin
      let measured = Cim_sim.Timing.run chip r0.Cmswitch.program in
      let sched = r0.Cmswitch.schedule in
      let prediction =
        { Cim_sim.Drift.source = sched.Plan.compiler;
          seg_intra =
            List.map (fun s -> s.Plan.intra_cycles) sched.Plan.segments;
          intra = sched.Plan.intra;
          switch = sched.Plan.switch;
          rewrite = sched.Plan.rewrite;
          writeback = sched.Plan.writeback;
          total = sched.Plan.total_cycles;
        }
      in
      let d = Cim_sim.Drift.attribute prediction measured in
      Cim_sim.Drift.record_metrics d;
      Some d
    end
  in
  let tele =
    if not tele_on then None
    else begin
      let interval =
        match snapshot_interval with
        | Some i -> i
        | None -> Float.max 1. (horizon /. 12.)
      in
      let t =
        Telemetry.create ~snapshot_interval:interval
          ?slo_budget:(if slo = None then None else Some slo_budget) ()
      in
      Telemetry.set_meta t "model" (Json.String e.Zoo.key);
      Telemetry.set_meta t "chip" (Json.String chip.Chip.name);
      Telemetry.set_meta t "workload" (Json.String (Workload.to_string w));
      Telemetry.set_meta t "requests" (Json.Int requests);
      Telemetry.set_meta t "seed" (Json.Int seed);
      Telemetry.set_meta t "horizon" (Json.Float horizon);
      Telemetry.set_meta t "fault_events" (Json.Int (List.length schedule));
      (match drift with
      | Some d -> Telemetry.set_extra t "drift" (Cim_sim.Drift.to_json d)
      | None -> ());
      (match buckets with
      | Some b -> Telemetry.set_meta t "buckets" (Json.String (Bucket.to_string b))
      | None -> ());
      Some t
    end
  in
  (* Bucketed healthy-path pricing: a compilation session pins (config,
     chip, model) and prices each length at its bucket ceiling, reusing the
     in-session memo and DP frontier across steps; the serving profile then
     memoises one cost per distinct ceiling. Every bucket-crossing
     recompile lands in the telemetry as a span on the "compile" lane.
     Faulted plans keep the flat per-level recompile profiles — fault
     recovery is about surviving, not about dynamic shapes. *)
  let healthy_profile =
    match buckets with
    | Some b when e.Zoo.family <> Zoo.Cnn ->
      Printf.printf "bucketed serving: policy %s\n" (Bucket.to_string b);
      let sess =
        Cmswitch.session
          ~config:(Cmswitch.Config.with_buckets (Some b) base_cfg)
          chip e
      in
      let compile_clock = ref 0. in
      let step_cost w =
        let st = Cmswitch.session_step sess w in
        if st.Cmswitch.step_recompiled then begin
          let dur = st.Cmswitch.step_seconds *. chip.Chip.freq_mhz *. 1e6 in
          (match tele with
          | Some t ->
            Telemetry.span t ~lane:"compile" ~ts:!compile_clock ~dur
              ~attrs:
                [ ("ceiling", Json.Int st.Cmswitch.step_ceiling);
                  ("prefix_reused", Json.Int st.Cmswitch.step_prefix_reused);
                  ("workload", Json.String (Workload.to_string w)) ]
              "bucket_compile"
          | None -> ());
          compile_clock := !compile_clock +. dur
        end;
        st.Cmswitch.step_cost.Cmswitch.total_cycles
      in
      Some
        (Serving.bucketed_profile ~ceiling:(Bucket.ceiling b)
           ~prefill_cycles:(fun s -> step_cost (Workload.prefill ~batch s))
           ~decode_cycles:(fun kvl -> step_cost (Workload.decode ~batch kvl)))
    | Some _ ->
      Printf.printf "bucketed serving: policy is a no-op for CNN models\n";
      None
    | None -> None
  in
  let planner ~chip:_ ~faults:fm =
    let healthy = Faultmap.fault_count fm = 0 in
    let cfg =
      if healthy then base_cfg
      else Cmswitch.Config.with_faults (Some fm) base_cfg
    in
    match
      Cmswitch.recompile ~config:cfg ?budget_seconds:recompile_budget chip
        graph
    with
    | Ok o ->
      let profile =
        match healthy_profile with
        | Some p when healthy -> p
        | _ -> flat_profile (pass_of o.Cmswitch.rc_result)
      in
      Some { Fleet.level = o.Cmswitch.rc_level; profile }
    | Error _ -> None
  in
  let snapshot_extra () =
    match store with
    | None -> []
    | Some s ->
      let tally tier =
        let c = Store.tier_counters s tier in
        (c.Store.hits, c.Store.hits + c.Store.misses)
      in
      let ph, pt = tally Cim_compiler.Ccache.prog_tier in
      let sh, st = tally Cim_compiler.Ccache.seg_tier in
      let hits, total = (ph + sh, pt + st) in
      [ ("cache_hit_rate",
         if total = 0 then 0. else float_of_int hits /. float_of_int total) ]
  in
  let config =
    { Fleet.chips;
      slo;
      shed_output;
      max_retries;
      backoff_base = 0.25 *. pass;
      backoff_cap = 4. *. pass;
      breaker_threshold = breaker;
      recompile_cycles = Option.value recompile_cycles ~default:pass;
      jobs = Option.value common.jobs ~default:(Cim_util.Pool.default_jobs ());
    }
  in
  let s =
    try Fleet.run ~config ?telemetry:tele ~snapshot_extra ~chip planner
          schedule reqs
    with Invalid_argument msg ->
      Printf.eprintf "fleet run failed: %s\n" msg;
      exit 1
  in
  let failed = s.Fleet.offered - s.Fleet.completed - s.Fleet.dropped - s.Fleet.shed in
  Printf.printf
    "fleet: offered=%d completed=%d dropped=%d shed=%d (starved %d) failed=%d\n"
    s.Fleet.offered s.Fleet.completed s.Fleet.dropped s.Fleet.shed
    s.Fleet.starved failed;
  Printf.printf
    "       retries=%d recompiles=%d breaker_opens=%d chips_out=%d%s\n"
    s.Fleet.retries s.Fleet.recompiles s.Fleet.breaker_opens s.Fleet.chips_out
    (match slo with
    | None -> ""
    | Some _ -> Printf.sprintf " slo_violations=%d" s.Fleet.slo_violations);
  Printf.printf
    "latency: mean=%.3e p50=%.3e p95=%.3e p99=%.3e p999=%.3e ttft=%.3e cycles\n"
    s.Fleet.mean_latency s.Fleet.p50_latency s.Fleet.p95_latency
    s.Fleet.p99_latency s.Fleet.p999_latency s.Fleet.mean_ttft;
  Printf.printf "per-token: p50=%.3e p95=%.3e p99=%.3e cycles\n" s.Fleet.p50_tpt
    s.Fleet.p95_tpt s.Fleet.p99_tpt;
  Printf.printf "throughput: %.2f tokens/Mcycle over %.3e cycles; per-chip [%s]\n"
    s.Fleet.tokens_per_megacycle s.Fleet.makespan
    (String.concat "; " (List.map string_of_int s.Fleet.per_chip_served));
  (match drift with
  | Some d when common.metrics -> Format.printf "%a@." Cim_sim.Drift.pp d
  | _ -> ());
  (match tele with
  | None -> ()
  | Some t ->
    (match telemetry_file with
    | Some file ->
      Telemetry.write_file t file;
      Printf.printf
        "telemetry written to %s (%d spans, %d snapshots); render with \
         `cmswitch report %s`\n"
        file (Telemetry.span_count t)
        (Timeline.count (Telemetry.timeline t))
        file
    | None -> ());
    (match timeline_csv with
    | Some file ->
      let oc = open_out file in
      output_string oc (Timeline.to_csv (Telemetry.timeline t));
      close_out oc;
      Printf.printf "snapshot timeline written to %s\n" file
    | None -> ());
    match openmetrics with
    | Some file ->
      Cim_obs.Openmetrics.write_file file;
      Printf.printf "OpenMetrics exposition written to %s\n" file
    | None -> ());
  finish_common common ~store

(* ---- report subcommand --------------------------------------------------- *)

let telemetry_pos_arg =
  Arg.(required
       & pos 0 (some string) None
       & info [] ~docv:"FILE"
           ~doc:"Telemetry file from $(b,cmswitch serve --telemetry).")

let report_out_arg =
  Arg.(value & opt (some string) None
       & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the dashboard to FILE instead of stdout.")

let do_report file out =
  let doc =
    try Telemetry.load file with
    | Sys_error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1
    | Json.Parse_error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
  in
  let md = Telemetry.report doc in
  match out with
  | None -> print_string md
  | Some f ->
    let oc = open_out f in
    output_string oc md;
    close_out oc;
    Printf.printf "report written to %s\n" f

(* ---- cache subcommand ---------------------------------------------------- *)

let cache_dir_required cache_dir =
  match (cache_dir, env_cache_dir ()) with
  | Some d, _ | None, Some d -> d
  | None, None ->
    Printf.eprintf
      "no cache directory: pass --cache-dir or set CMSWITCH_CACHE_DIR\n";
    exit 2

let do_cache_stats cache_dir =
  let s = Store.open_dir (cache_dir_required cache_dir) in
  let d = Store.disk_stats s in
  Printf.printf "cache at %s: %d entries, %d bytes\n" (Store.dir s)
    d.Store.total_entries d.Store.total_bytes;
  List.iter
    (fun (t : Store.tier_stats) ->
      let c = Store.lifetime_tier_counters s t.Store.tier in
      Printf.printf
        "  %-4s %6d entries %10d bytes | lifetime hits=%d misses=%d \
         invalid=%d puts=%d hit-rate=%.1f%%\n"
        t.Store.tier t.Store.entries t.Store.bytes c.Store.hits c.Store.misses
        c.Store.invalid c.Store.puts (hit_rate_pct c))
    d.Store.tiers;
  (* which bucket ceilings have compiled programs resident: prog-tier keys
     carry a "shape.v1(<policy>:ceil=N)" fragment when the program was
     compiled at a bucket ceiling *)
  let ceilings =
    Store.fold_keys s ~tier:Cim_compiler.Ccache.prog_tier ~init:[]
      ~f:(fun acc key ->
        match
          List.find_opt
            (fun line ->
              String.length line >= 9 && String.sub line 0 9 = "shape.v1(")
            (String.split_on_char '\n' key)
        with
        | None -> acc
        | Some line -> (
          match String.index_opt line '=' with
          | None -> acc
          | Some i -> (
            let rest = String.sub line (i + 1) (String.length line - i - 1) in
            let digits =
              String.to_seq rest
              |> Seq.take_while (fun c -> c >= '0' && c <= '9')
              |> String.of_seq
            in
            match int_of_string_opt digits with
            | Some c -> c :: acc
            | None -> acc)))
  in
  let distinct = List.sort_uniq compare ceilings in
  if distinct = [] then Printf.printf "  buckets: none\n"
  else
    Printf.printf "  buckets: %d bucketed program(s) at ceilings [%s]\n"
      (List.length ceilings)
      (String.concat "; " (List.map string_of_int distinct))

let do_cache_clear cache_dir =
  let s = Store.open_dir (cache_dir_required cache_dir) in
  let n = Store.clear s in
  Printf.printf "cleared %d entries from %s\n" n (Store.dir s)

let do_cache_verify cache_dir =
  let s = Store.open_dir (cache_dir_required cache_dir) in
  match Store.verify s with
  | [] ->
    let d = Store.disk_stats s in
    Printf.printf "cache at %s: %d entries verified, all sound\n" (Store.dir s)
      d.Store.total_entries
  | problems ->
    List.iter
      (fun (path, problem) -> Printf.eprintf "%s: %s\n" path problem)
      problems;
    Printf.eprintf "%d bad entries\n" (List.length problems);
    exit 1

(* ---- disasm subcommand --------------------------------------------------- *)

let do_disasm chip key batch seq kv common =
  let store = setup_common common in
  let e = find_model key in
  let w = workload_of e ~batch ~seq ~kv in
  (* stdout carries nothing but the listing, so it pipes cleanly *)
  Printf.eprintf "compiling %s for %s on %s ...\n%!" e.Zoo.display
    (Workload.to_string w) chip.Chip.name;
  let mc =
    try
      Cmswitch.compile_model ~config:(config_of_common common ~store) chip e w
    with Failure msg | Invalid_argument msg ->
      Printf.eprintf "compilation failed: %s\n" msg;
      exit 1
  in
  let r, scope =
    match (mc.Cmswitch.layer, mc.Cmswitch.whole) with
    | Some r, _ ->
      (r, Printf.sprintf "one of %d identical blocks" e.Zoo.n_layers)
    | None, Some r -> (r, "whole network")
    | None, None ->
      Printf.eprintf "nothing to disassemble for %s\n" e.Zoo.display;
      exit 1
  in
  let img = Cim_metaop.Isa.of_flow r.Cmswitch.program in
  let bytes = Cim_metaop.Isa.encode img in
  (match Cim_metaop.Isa.decode bytes with
  | Ok img' when img' = img -> ()
  | Ok _ ->
    Printf.eprintf "ISA round trip: decoded image differs from encoder input\n";
    exit 1
  | Error m ->
    Printf.eprintf "ISA round trip failed: %s\n" m;
    exit 1);
  Printf.eprintf "%s; round trip ok: %d commands, %d words, %d bytes\n%!"
    scope
    (Cim_metaop.Isa.cmd_count img)
    (Cim_metaop.Isa.word_count img)
    (String.length bytes);
  print_string (Cim_metaop.Isa.disassemble img);
  finish_common common ~store

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List models and hardware presets")
    Term.(const do_list $ const ())

let compile_cmd =
  Cmd.v (Cmd.info "compile" ~doc:"Compile a model and print the schedule")
    Term.(const do_compile $ chip_arg $ model_arg $ batch_arg $ seq_arg
          $ kv_arg $ emit_arg $ sim_arg $ sim_check_arg $ report_arg
          $ fault_rate_arg $ fault_seed_arg $ deadline_arg $ passes_arg
          $ dump_after_arg $ validate_each_arg $ common_term)

let compare_cmd =
  Cmd.v (Cmd.info "compare" ~doc:"Compare CMSwitch against the baselines")
    Term.(const do_compare $ chip_arg $ model_arg $ batch_arg $ seq_arg
          $ kv_arg $ common_term)

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Simulate fault-tolerant fleet serving: a request trace against N \
          chips with runtime fault events, online recompile-around-faults \
          and SLO-aware shedding")
    Term.(const do_serve $ chip_arg $ model_arg $ batch_arg $ seq_arg $ kv_arg
          $ chips_arg $ requests_arg $ mean_gap_arg $ burst_arg
          $ slo_arg
          $ fault_schedule_arg $ fault_events_arg $ fault_seed_arg $ seed_arg
          $ shed_output_arg $ max_retries_arg $ breaker_arg
          $ recompile_cycles_arg $ recompile_budget_arg $ telemetry_arg
          $ timeline_csv_arg $ openmetrics_arg $ snapshot_interval_arg
          $ slo_budget_arg $ common_term)

let disasm_cmd =
  Cmd.v
    (Cmd.info "disasm"
       ~doc:
         "Compile a model, lower the meta-operator flow onto the MMIO \
          command-stream ISA ($(b,--passes default,lower_isa) territory) \
          and print the disassembly; stdout carries only the listing. The \
          image is round-tripped through the binary encoding first — any \
          mismatch is a non-zero exit.")
    Term.(const do_disasm $ chip_arg $ model_arg $ batch_arg $ seq_arg $ kv_arg
          $ common_term)

let report_cmd =
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a telemetry file from $(b,cmswitch serve --telemetry) as a \
          Markdown dashboard: serving outcome, latency percentiles, \
          per-chip utilization, Eq. 10 cost-model drift, SLO error budget, \
          snapshot timeline")
    Term.(const do_report $ telemetry_pos_arg $ report_out_arg)

let cache_cmd =
  let stats =
    Cmd.v (Cmd.info "stats" ~doc:"Entry counts and bytes per tier")
      Term.(const do_cache_stats $ cache_dir_arg)
  in
  let clear =
    Cmd.v (Cmd.info "clear" ~doc:"Remove every cached entry")
      Term.(const do_cache_clear $ cache_dir_arg)
  in
  let verify =
    Cmd.v
      (Cmd.info "verify"
         ~doc:"Integrity-check every entry; non-zero exit on corruption")
      Term.(const do_cache_verify $ cache_dir_arg)
  in
  Cmd.group (Cmd.info "cache" ~doc:"Inspect or maintain the compilation cache")
    [ stats; clear; verify ]

let () =
  let info =
    Cmd.info "cmswitch" ~version:"1.0.0"
      ~doc:"Dual-mode-aware DNN compiler for CIM accelerators"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; compile_cmd; compare_cmd; serve_cmd; disasm_cmd;
            report_cmd; cache_cmd ]))
