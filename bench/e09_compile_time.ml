(* E9 — Fig. 18: compilation overhead. Wall-clock compile time of CMSwitch
   vs CIM-MLC per benchmark (the paper averages 20 runs; we use 3 — the
   measurement noise here is far below the 2.8-6.3x ratios of interest).
   The paper also observes CNNs costing ~2.5x more compile time than
   transformers thanks to block reuse.

   Also records the serial-vs-parallel solver fan-out: the same CMSwitch
   compile at --jobs 1 and at the pooled job count, so the uploaded JSON
   carries the wall-clock effect of parallel segment solving (outputs are
   byte-identical by contract; only this column may move). *)

open Common
module Segment = Cim_compiler.Segment
module Metrics = Cim_obs.Metrics
module Milp = Cim_solver.Milp

let reps = 3

(* wall clock, not Sys.time: parallel solves burn CPU seconds on every
   worker domain, which is exactly what this experiment must not count *)
let time f =
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  Stats.mean samples

let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | Zoo.Encoder_only -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
  | Zoo.Decoder_only -> (Option.get e.Zoo.layer) (Workload.decode ~batch:1 64)

let config_with_jobs jobs = Cmswitch.Config.(with_jobs jobs default)

let run () =
  section "E9 | Fig. 18: compilation overhead";
  let chip = Config.dynaplasia in
  (* at least 2 so the parallel column exercises the domain pool even when
     one core is recommended *)
  let par_jobs = max 2 (Pool.default_jobs ()) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "compile wall-clock (mean of %d runs; parallel = %d jobs)" reps
           par_jobs)
      [ ("model", Table.Left); ("CIM-MLC (s)", Table.Right);
        ("CMSwitch jobs=1 (s)", Table.Right);
        (Printf.sprintf "CMSwitch jobs=%d (s)" par_jobs, Table.Right);
        ("par speedup", Table.Right); ("ratio vs MLC", Table.Right) ]
  in
  let cnn_times = ref [] and tf_times = ref [] in
  List.iter
    (fun key ->
      let g = graph_of key in
      let t_mlc = time (fun () -> Baseline.compile Baseline.Cim_mlc chip g) in
      let t_cms =
        time (fun () -> Cmswitch.compile ~config:(config_with_jobs 1) chip g)
      in
      let t_par =
        time (fun () ->
            Cmswitch.compile ~config:(config_with_jobs par_jobs) chip g)
      in
      let e = Option.get (Zoo.find key) in
      (match e.Zoo.family with
      | Zoo.Cnn -> cnn_times := t_cms :: !cnn_times
      | Zoo.Encoder_only | Zoo.Decoder_only -> tf_times := t_cms :: !tf_times);
      Table.add_row tbl
        [ e.Zoo.display; Table.cell_f ~digits:3 t_mlc;
          Table.cell_f ~digits:3 t_cms; Table.cell_f ~digits:3 t_par;
          Table.cell_speedup (t_cms /. Float.max 1e-6 t_par);
          Table.cell_speedup (t_cms /. Float.max 1e-6 t_mlc) ])
    fig14_models;
  Table.print tbl;
  Printf.printf "CNN mean %.3fs vs transformer mean %.3fs (paper: CNNs ~2.5x transformers)\n"
    (Stats.mean !cnn_times) (Stats.mean !tf_times);
  Printf.printf "paper: CMSwitch compile time 2.8-6.3x CIM-MLC\n";
  (* LP-core ablation: the same serial compile with each LP backend, total
     LP solve cost read from the solver's own wall-clock counters (summed
     over every branch-and-bound relaxation of the compile). The revised
     simplex owes its margin to warm-started re-solves + the factorized
     basis; the dense tableau rebuilds from scratch at every node. *)
  let config_with_backend backend =
    Cmswitch.Config.(with_jobs 1 (with_lp_backend backend default))
  in
  let lp_reps = 7 in
  let lp_tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "LP solve wall-clock per compile: revised simplex vs dense tableau \
            (min of %d compiles)" lp_reps)
      [ ("model", Table.Left); ("dense (s)", Table.Right);
        ("revised (s)", Table.Right); ("dense pivots", Table.Right);
        ("revised pivots", Table.Right); ("LP speedup", Table.Right) ]
  in
  List.iter
    (fun key ->
      let g = graph_of key in
      (* min over interleaved repetitions: the totals are a few
         milliseconds, so a single GC pause or scheduler hiccup skews any
         one run. Taking each backend's per-compile minimum is the
         standard noise-robust estimate, and alternating backends within
         the rep loop keeps transient machine load from landing on only
         one side of the ratio. The pivot counts are deterministic — any
         rep reports the same. *)
      let measure backend wall_counter pivot_counter =
        Metrics.set_enabled true;
        Metrics.reset ();
        ignore
          (Cmswitch.compile ~config:(config_with_backend backend) chip g);
        let wall = Metrics.counter_value (Metrics.counter wall_counter) in
        let pivots = Metrics.counter_value (Metrics.counter pivot_counter) in
        Metrics.set_enabled false;
        Metrics.reset ();
        (wall, pivots)
      in
      let d_wall = ref infinity and r_wall = ref infinity in
      let d_pivots = ref 0. and r_pivots = ref 0. in
      for _ = 1 to lp_reps do
        let dw, dp =
          measure Milp.Dense "solver.lp_dense.wall_seconds"
            "solver.lp_dense.pivots"
        in
        let rw, rp =
          measure Milp.Revised "solver.lp.wall_seconds"
            "solver.simplex.pivots"
        in
        if dw < !d_wall then d_wall := dw;
        if rw < !r_wall then r_wall := rw;
        d_pivots := dp;
        r_pivots := rp
      done;
      let d_wall = !d_wall and r_wall = !r_wall in
      let d_pivots = !d_pivots and r_pivots = !r_pivots in
      Table.add_row lp_tbl
        [ key; Table.cell_f ~digits:4 d_wall; Table.cell_f ~digits:4 r_wall;
          Table.cell_f ~digits:0 d_pivots; Table.cell_f ~digits:0 r_pivots;
          Table.cell_speedup (d_wall /. Float.max 1e-9 r_wall) ])
    [ "bert-large"; "llama2-7b" ];
  Table.print lp_tbl
