(* E9 — Fig. 18: compilation overhead. Wall-clock compile time of CMSwitch
   vs CIM-MLC per benchmark (the paper averages 20 runs; we use 3 — the
   measurement noise here is far below the 2.8-6.3x ratios of interest).
   The paper also observes CNNs costing ~2.5x more compile time than
   transformers thanks to block reuse.

   Also records the serial-vs-parallel solver fan-out: the same CMSwitch
   compile at --jobs 1 and at the pooled job count, so the uploaded JSON
   carries the wall-clock effect of parallel segment solving (outputs are
   byte-identical by contract; only this column may move). *)

open Common
module Segment = Cim_compiler.Segment

let reps = 3

(* wall clock, not Sys.time: parallel solves burn CPU seconds on every
   worker domain, which is exactly what this experiment must not count *)
let time f =
  let samples =
    List.init reps (fun _ ->
        let t0 = Unix.gettimeofday () in
        ignore (f ());
        Unix.gettimeofday () -. t0)
  in
  Stats.mean samples

let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | Zoo.Encoder_only -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
  | Zoo.Decoder_only -> (Option.get e.Zoo.layer) (Workload.decode ~batch:1 64)

let options_with_jobs jobs =
  { Cmswitch.default_options with
    Cmswitch.segment =
      { Cmswitch.default_options.Cmswitch.segment with Segment.jobs } }

let run () =
  section "E9 | Fig. 18: compilation overhead";
  let chip = Config.dynaplasia in
  (* at least 2 so the parallel column exercises the domain pool even when
     one core is recommended *)
  let par_jobs = max 2 (Pool.default_jobs ()) in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "compile wall-clock (mean of %d runs; parallel = %d jobs)" reps
           par_jobs)
      [ ("model", Table.Left); ("CIM-MLC (s)", Table.Right);
        ("CMSwitch jobs=1 (s)", Table.Right);
        (Printf.sprintf "CMSwitch jobs=%d (s)" par_jobs, Table.Right);
        ("par speedup", Table.Right); ("ratio vs MLC", Table.Right) ]
  in
  let cnn_times = ref [] and tf_times = ref [] in
  List.iter
    (fun key ->
      let g = graph_of key in
      let t_mlc = time (fun () -> Baseline.compile Baseline.Cim_mlc chip g) in
      let t_cms =
        time (fun () -> Cmswitch.compile ~options:(options_with_jobs 1) chip g)
      in
      let t_par =
        time (fun () ->
            Cmswitch.compile ~options:(options_with_jobs par_jobs) chip g)
      in
      let e = Option.get (Zoo.find key) in
      (match e.Zoo.family with
      | Zoo.Cnn -> cnn_times := t_cms :: !cnn_times
      | Zoo.Encoder_only | Zoo.Decoder_only -> tf_times := t_cms :: !tf_times);
      Table.add_row tbl
        [ e.Zoo.display; Table.cell_f ~digits:3 t_mlc;
          Table.cell_f ~digits:3 t_cms; Table.cell_f ~digits:3 t_par;
          Table.cell_speedup (t_cms /. Float.max 1e-6 t_par);
          Table.cell_speedup (t_cms /. Float.max 1e-6 t_mlc) ])
    fig14_models;
  Table.print tbl;
  Printf.printf "CNN mean %.3fs vs transformer mean %.3fs (paper: CNNs ~2.5x transformers)\n"
    (Stats.mean !cnn_times) (Stats.mean !tf_times);
  Printf.printf "paper: CMSwitch compile time 2.8-6.3x CIM-MLC\n"
