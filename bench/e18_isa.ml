(* E18 — lowered MMIO command-stream backend: flatten compiled meta-operator
   programs onto the ISA (command FIFO words + DMA descriptors), measure the
   encoded stream, and differentially test the machine-level ISA simulator
   against the meta-op functional simulator. Every differential row checks
   the digest contract: the flat-PC interpreter must produce exactly the
   functional simulator's report digest (outputs + instruction and switch
   counters), at jobs 1 and 4. The wall-clock columns are machine-dependent
   and reported only; CI asserts the identical and round-trip columns. *)

open Common
module Graph = Cim_nnir.Graph
module Tensor = Cim_tensor.Tensor
module Flow = Cim_metaop.Flow
module Isa = Cim_metaop.Isa
module Functional = Cim_sim.Functional
module Isa_sim = Cim_sim.Isa_sim
module Rng = Cim_util.Rng

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let run () =
  section "E18 | MMIO command-stream ISA: lowering + machine-level simulator";
  let chip = Config.dynaplasia in
  let models =
    [ ("resnet18", "whole network");
      ("bert-large", "one encoder block") ]
  in
  let compiled =
    List.map
      (fun (key, scope) ->
        let e = Option.get (Zoo.find key) in
        let g0 =
          match e.Zoo.family with
          | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
          | _ -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
        in
        let r = Cmswitch.compile ~config:Cmswitch.Config.(default |> with_jobs 1) chip g0 in
        (key, scope, r))
      models
  in
  (* --- the lowered streams: size and round-trip fidelity --- *)
  let tbl =
    Table.create ~title:"lowered command streams"
      [ ("model", Table.Left); ("scope", Table.Left);
        ("commands", Table.Right); ("words", Table.Right);
        ("bytes", Table.Right); ("bytes/cmd", Table.Right);
        ("round trip", Table.Left) ]
  in
  let images =
    List.map
      (fun (key, scope, r) ->
        let img = Isa.of_flow r.Cmswitch.program in
        let bytes = Isa.encode img in
        let trip =
          Isa.decode bytes = Ok img
          && Flow.to_string (Isa.to_flow img)
             = Flow.to_string r.Cmswitch.program
        in
        Table.add_row tbl
          [ key; scope;
            string_of_int (Isa.cmd_count img);
            string_of_int (Isa.word_count img);
            string_of_int (String.length bytes);
            Table.cell_f ~digits:1
              (float_of_int (String.length bytes)
              /. float_of_int (Isa.cmd_count img));
            (if trip then "yes" else "NO") ];
        (key, r, img))
      compiled
  in
  Table.print tbl;
  (* --- the differential: machine-level sim vs the meta-op functional sim --- *)
  let tbl =
    Table.create ~title:"machine-level ISA sim vs meta-op functional sim"
      [ ("model", Table.Left); ("simulator", Table.Left);
        ("jobs", Table.Right); ("time (s)", Table.Right);
        ("identical", Table.Left) ]
  in
  List.iter
    (fun (key, (r : Cmswitch.result), img) ->
      let rng = Rng.create 42 in
      let g = Graph.with_random_values rng r.Cmswitch.graph in
      let inputs =
        List.map
          (fun (n, sh) -> (n, Tensor.rand rng sh ~lo:(-1.) ~hi:1.))
          g.Graph.graph_inputs
      in
      let rep0, t0 =
        time (fun () ->
            Functional.run chip ~jobs:1 g r.Cmswitch.program ~inputs)
      in
      let d0 = Functional.digest rep0 in
      Table.add_row tbl
        [ key; "meta-op functional"; "1"; Table.cell_f ~digits:3 t0; "yes" ];
      List.iter
        (fun jobs ->
          let rep, t =
            time (fun () -> Isa_sim.run chip ~jobs g img ~inputs)
          in
          let identical = Functional.digest rep = d0 in
          Table.add_row tbl
            [ key; "ISA machine-level"; string_of_int jobs;
              Table.cell_f ~digits:3 t;
              (if identical then "yes" else "NO") ])
        [ 1; 4 ])
    images;
  Table.print tbl;
  print_endline
    "identical = the ISA interpreter's report digest (outputs + compute /\n\
     vector instruction counts + per-array switch counters) matches the\n\
     meta-op functional simulator's, byte for byte - required at every job\n\
     count. round trip = decode(encode(img)) = img and raising the flat\n\
     stream back to a Flow program reproduces the compiler's bytes"
