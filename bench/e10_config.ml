(* E10 — Table 2 echo plus the Fig. 4 mapping contrast: the same small
   network mapped the traditional way (every array compute) and the
   dual-mode-aware way, showing where the memory-mode arrays go and what it
   buys. Also verifies the generated flow functionally against the float
   reference (the PyTorch-comparison step of §5.1). *)

open Common
module Functional = Cim_sim.Functional
module Flow = Cim_metaop.Flow
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape

let run () =
  section "E10 | Table 2 configuration and Fig. 4 mapping contrast";
  Format.printf "%a@.@." Chip.pp Config.dynaplasia;
  let chip = Config.dynaplasia in
  let rng = Cim_util.Rng.create 2025 in
  (* a bandwidth-bound MLP (batch-1 inference through wide layers) shows the
     Fig. 4 contrast: the fixed-mode mapping starves on operand delivery *)
  let demo = Cim_models.Mlp.build ~batch:1 ~dims:[ 1024; 1024; 1024; 1024 ] () in
  let dual = Cmswitch.compile chip demo in
  let fixed =
    Cmswitch.compile
      ~config:Cmswitch.Config.(with_force_all_compute true default)
      chip demo
  in
  Printf.printf
    "Fig. 4 contrast on a batch-1 1024-wide MLP:\n\
    \  (a) all-compute mapping : %g cycles, %d switches\n\
    \  (b) dual-mode mapping   : %g cycles, %d switches, %.1f%% arrays in memory mode\n"
    fixed.Cmswitch.schedule.Plan.total_cycles
    (Flow.count_switches fixed.Cmswitch.program)
    dual.Cmswitch.schedule.Plan.total_cycles
    (Flow.count_switches dual.Cmswitch.program)
    (100. *. Cmswitch.memory_mode_ratio dual);
  (* functional verification of a small compiled flow *)
  let g = Cim_models.Cnn.tiny_cnn ~rng ~batch:2 () in
  let small = Cmswitch.compile chip g in
  let input = Tensor.rand rng (Shape.of_list [ 2; 2; 8; 8 ]) ~lo:(-1.) ~hi:1. in
  let rep = Functional.run chip g small.Cmswitch.program ~inputs:[ ("image", input) ] in
  Printf.printf
    "functional check vs float reference: max |err| %.4f (rel %.2f%%) over %d CIM ops, %d vector ops\n"
    rep.Functional.max_abs_err
    (100. *. rep.Functional.max_rel_err)
    rep.Functional.compute_instrs rep.Functional.vector_instrs;
  print_string (Flow.to_string small.Cmswitch.program)
