(* E5 — Fig. 16: sensitivity to workload scale. For each transformer model,
   batch sizes 4/8/16 and sequence lengths 32..2048: speedup over CIM-MLC
   and the average memory-mode array ratio. The paper's trend: speedup and
   memory ratio both decay toward parity as sequence length (and so
   arithmetic intensity) grows. *)

open Common

let seqs = [ 32; 128; 512; 2048 ]
let batches = [ 4; 8; 16 ]

let encoder_point key ~batch ~seq =
  let w = Workload.prefill ~batch seq in
  let cms = cycles Cms key w and mlc = cycles (Base Baseline.Cim_mlc) key w in
  (mlc /. cms, mem_ratio key w)

let decoder_point key ~batch ~seq =
  let cms = generative_cycles Cms key ~batch ~in_len:seq ~out_len:seq in
  let mlc =
    generative_cycles (Base Baseline.Cim_mlc) key ~batch ~in_len:seq ~out_len:seq
  in
  (* the figure's last row reports the memory-mode ratio of the decode
     stage, which dominates token count *)
  (mlc /. cms, mem_ratio key (Workload.decode ~batch (seq + (seq / 2))))

let run () =
  section "E5 | Fig. 16: speedup and memory-mode ratio across workload scales";
  List.iter
    (fun (key, point) ->
      let display = (Option.get (Zoo.find key)).Zoo.display in
      let tbl =
        Table.create ~title:(display ^ " — speedup over CIM-MLC (memory-mode ratio)")
          (("batch", Table.Right)
           :: List.map (fun s -> (Printf.sprintf "seq %d" s, Table.Right)) seqs)
      in
      (* all (batch, seq) points of one model are independent compiles:
         evaluate them on the pool, then assemble rows in order *)
      let points =
        par_map
          (fun (batch, seq) -> point key ~batch ~seq)
          (List.concat_map
             (fun batch -> List.map (fun seq -> (batch, seq)) seqs)
             batches)
      in
      List.iteri
        (fun bi batch ->
          let cells =
            List.mapi
              (fun si _ ->
                let speedup, ratio =
                  List.nth points ((bi * List.length seqs) + si)
                in
                Printf.sprintf "%s (%s)" (Table.cell_speedup speedup)
                  (Table.cell_pct ratio))
              seqs
          in
          Table.add_row tbl (string_of_int batch :: cells))
        batches;
      Table.print tbl)
    [ ("bert-large", encoder_point); ("llama2-7b", decoder_point);
      ("opt-6.7b", decoder_point); ("opt-13b", decoder_point) ];
  Printf.printf
    "paper: BERT 1.19x->1.03x as seq grows (parity past 512); generative 1.76x->1.32x;\n\
     memory-mode ratio decays toward zero with sequence length\n"
