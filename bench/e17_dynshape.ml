(* E17 — dynamic-shape fast path: time-per-token of plan acquisition over
   a 1..2048 decode sweep of llama2-7b, four regimes:

   - cold:      per-length compile into an empty cache (every KV length is
                a distinct program — the dynamic-shape tax)
   - warm:      per-length prog-tier replay (a second process over the same
                cache; still one entry per length)
   - bucketed:  lengths compile at their bucket ceiling, so one program per
                bucket serves every length inside it
   - bkt-warm:  bucketed sweep against the populated cache — every length
                hits the prog tier and re-solves ZERO MILPs (checked via
                the solver.bb.nodes counter, which only moves when the
                branch-and-bound solver actually runs)
   - incr:      a compilation session walking the lengths in decode order;
                bucket-interior steps are in-session memo hits and each
                bucket crossing seeds the DP from the previous frontier

   The bucketed/incremental programs must be byte-identical to each other
   (same program_md5 at every ceiling) — the differential that licenses
   frontier reuse. *)

open Common
module Store = Cim_cache.Store
module Bucket = Cim_compiler.Bucket
module Flow = Cim_metaop.Flow
module Metrics = Cim_obs.Metrics

let model_key = "llama2-7b"

(* boundary-straddling KV lengths: at, just below and just above each
   power-of-two context boundary, plus interior points *)
let kvs =
  [ 1; 16; 31; 32; 33; 63; 64; 100; 127; 128; 200; 255; 256; 400; 511; 512;
    800; 1023; 1024; 1500; 2000; 2047 ]

let md5_of_mc (mc : Cmswitch.model_cost) =
  let part = function
    | None -> ""
    | Some (r : Cmswitch.result) -> Flow.to_string r.Cmswitch.program
  in
  Digest.to_hex
    (Digest.string
       (part mc.Cmswitch.layer ^ part mc.Cmswitch.whole ^ part mc.Cmswitch.head))

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let median xs = Stats.percentile_nearest_rank 50. xs

let run () =
  section "E17 | dynamic-shape decode sweep: cold vs warm vs bucketed vs incremental";
  Metrics.set_enabled true;
  let chip = Config.dynaplasia in
  let e = Option.get (Zoo.find model_key) in
  let policy = Bucket.default in
  let dir_flat = Filename.temp_dir "cmswitch-e17-flat" "" in
  let dir_bkt = Filename.temp_dir "cmswitch-e17-bkt" "" in
  let base = Cmswitch.Config.(default |> with_jobs 1) in
  let flat_cfg store = Cmswitch.Config.with_cache (Some store) base in
  let bkt_cfg store =
    Cmswitch.Config.(
      base |> with_buckets (Some policy) |> with_cache (Some store))
  in
  let sweep cfg =
    List.map
      (fun kv ->
        time (fun () ->
            Cmswitch.compile_model ~config:cfg chip e (Workload.decode ~batch:1 kv)))
      kvs
  in
  let cold = sweep (flat_cfg (Store.open_dir dir_flat)) in
  let warm = sweep (flat_cfg (Store.open_dir dir_flat)) in
  let bcold = sweep (bkt_cfg (Store.open_dir dir_bkt)) in
  (* the warm bucketed sweep must never reach the MILP solver *)
  let bb_nodes = Metrics.counter "solver.bb.nodes" in
  let nodes_before = Metrics.counter_value bb_nodes in
  let bwarm = sweep (bkt_cfg (Store.open_dir dir_bkt)) in
  let warm_bb_nodes = Metrics.counter_value bb_nodes -. nodes_before in
  (* incremental: one session (no disk cache), lengths in decode order *)
  let sess =
    Cmswitch.session ~config:(Cmswitch.Config.with_buckets (Some policy) base)
      chip e
  in
  let incr =
    List.map
      (fun kv ->
        time (fun () -> Cmswitch.session_step sess (Workload.decode ~batch:1 kv)))
      kvs
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "dynamic-shape decode sweep (%s, policy %s, jobs=1)"
           model_key (Bucket.to_string policy))
      [ ("kv", Table.Right); ("ceiling", Table.Right); ("cold (ms)", Table.Right);
        ("warm (ms)", Table.Right); ("bucketed (ms)", Table.Right);
        ("bkt-warm (ms)", Table.Right); ("incr (ms)", Table.Right);
        ("prefix reuse", Table.Right) ]
  in
  let ms t = Table.cell_f ~digits:2 (1e3 *. t) in
  List.iteri
    (fun i kv ->
      let mc_b, t_b = List.nth bcold i in
      let _, t_c = List.nth cold i in
      let _, t_w = List.nth warm i in
      let _, t_bw = List.nth bwarm i in
      let st, t_i = List.nth incr i in
      Table.add_row tbl
        [ string_of_int kv;
          (match mc_b.Cmswitch.bucket_ceiling with
          | Some c -> string_of_int c
          | None -> "-");
          ms t_c; ms t_w; ms t_b; ms t_bw; ms t_i;
          string_of_int st.Cmswitch.step_prefix_reused ])
    kvs;
  Table.print tbl;
  (* byte-identity: every length in a bucket must replay the same program,
     and the frontier-seeded session must agree with the full compiles *)
  let by_ceiling =
    List.fold_left
      (fun acc (mc, _) ->
        match mc.Cmswitch.bucket_ceiling with
        | None -> acc
        | Some c ->
          let m = md5_of_mc mc in
          (match List.assoc_opt c acc with
          | Some ms when not (List.mem m ms) -> (c, m :: ms) :: List.remove_assoc c acc
          | Some _ -> acc
          | None -> (c, [ m ]) :: acc))
      [] bwarm
  in
  let md5_within_bucket =
    List.for_all (fun (_, ms) -> List.length ms = 1) by_ceiling
  in
  let incr_matches =
    List.for_all2
      (fun (mc, _) (st, _) -> md5_of_mc mc = md5_of_mc st.Cmswitch.step_cost)
      bwarm incr
  in
  let seconds xs = List.map snd xs in
  let med_cold = median (seconds cold) in
  let med_bwarm = median (seconds bwarm) in
  let med_incr = median (seconds incr) in
  let summary =
    Table.create ~title:"dynamic-shape summary"
      [ ("metric", Table.Left); ("value", Table.Right) ]
  in
  List.iter
    (fun row -> Table.add_row summary row)
    [
      [ "median cold compile (ms/token)"; Table.cell_f ~digits:3 (1e3 *. med_cold) ];
      [ "median warm per-length (ms/token)";
        Table.cell_f ~digits:3 (1e3 *. median (seconds warm)) ];
      (* cross-process replay: zero MILPs but the deterministic passes
         (extract, placement, codegen, validate) re-run at the ceiling *)
      [ "median bucketed warm replay (ms/token)";
        Table.cell_f ~digits:3 (1e3 *. med_bwarm) ];
      (* the serving fast path: an in-session decode step is a memo hit for
         every length inside an already-compiled bucket *)
      [ "median bucketed decode step (ms/token)";
        Table.cell_f ~digits:3 (1e3 *. med_incr) ];
      [ "bucketed decode-step speedup vs cold";
        Table.cell_f ~digits:1 (med_cold /. Float.max 1e-6 med_incr) ];
      [ "warm bucketed B&B nodes"; Printf.sprintf "%.0f" warm_bb_nodes ];
      [ "md5 identical within bucket"; (if md5_within_bucket then "yes" else "NO") ];
      [ "incremental md5 matches full"; (if incr_matches then "yes" else "NO") ];
      [ "distinct bucket ceilings"; string_of_int (List.length by_ceiling) ];
      [ "lengths swept"; string_of_int (List.length kvs) ];
    ];
  Table.print summary;
  ignore (Store.clear (Store.open_dir dir_flat));
  ignore (Store.clear (Store.open_dir dir_bkt));
  print_endline
    "bucketed compilation prices every length at its bucket ceiling: the\n\
     padded program is what executes, its cost is what Eq. 10 reports, and\n\
     every length inside a bucket replays one cached program - warm decode\n\
     steps re-solve zero MILPs"
