(* Shared machinery for the experiment harness: compiler invocation with
   caching, end-to-end generative-model cost, and table helpers. *)

module Chip = Cim_arch.Chip
module Config = Cim_arch.Config
module Workload = Cim_models.Workload
module Zoo = Cim_models.Zoo
module Cmswitch = Cim_compiler.Cmswitch
module Segment = Cim_compiler.Segment
module Alloc = Cim_compiler.Alloc
module Plan = Cim_compiler.Plan
module Baseline = Cim_baselines.Baseline
module Table = Cim_util.Table
module Stats = Cim_util.Stats
module Pool = Cim_util.Pool

type compiler = Cms | Base of Baseline.which

let compiler_name = function
  | Cms -> "CMSwitch"
  | Base w -> Baseline.name w

let all_compilers = [ Base Baseline.Occ; Base Baseline.Puma; Base Baseline.Cim_mlc; Cms ]

(* (chip name, compiler, model, workload) -> (total cycles, mem ratio,
   compile seconds). The cache keeps repeated sweep points cheap; access is
   mutex-guarded so {!par_map} sweeps may fill it from pool workers. *)
let cache : (string * string * string * string, float * float * float) Hashtbl.t =
  Hashtbl.create 128

let cache_mutex = Mutex.create ()

let model_cost ?(chip = Config.dynaplasia) compiler key (w : Workload.t) =
  let ck =
    (chip.Chip.name, compiler_name compiler, key, Workload.to_string w)
  in
  Mutex.lock cache_mutex;
  let cached = Hashtbl.find_opt cache ck in
  Mutex.unlock cache_mutex;
  match cached with
  | Some r -> r
  | None ->
    let e =
      match Zoo.find key with
      | Some e -> e
      | None -> failwith ("unknown model " ^ key)
    in
    let r =
      match compiler with
      | Cms ->
        let t0 = Unix.gettimeofday () in
        let mc = Cmswitch.compile_model chip e w in
        (mc.Cmswitch.total_cycles, mc.Cmswitch.mem_ratio,
         Unix.gettimeofday () -. t0)
      | Base which ->
        let t0 = Unix.gettimeofday () in
        let cycles = Baseline.compile_model which chip e w in
        (cycles, 0., Unix.gettimeofday () -. t0)
    in
    (* two workers racing on one point compute the same value; last write
       wins harmlessly *)
    Mutex.lock cache_mutex;
    Hashtbl.replace cache ck r;
    Mutex.unlock cache_mutex;
    r

(* Evaluate independent sweep points on the segment-solver pool. Each point
   compiles serially inside its worker (Segment.run's nested-parallelism
   guard), so the domain count stays bounded by the pool size. Point order
   in the result is preserved; with one recommended domain this is exactly
   List.map. *)
let par_map f xs =
  let jobs = Pool.default_jobs () in
  if jobs > 1 && Pool.current_worker () = None then
    Pool.with_pool ~name:"bench-sweep" ~jobs (fun p -> Pool.map_list p f xs)
  else List.map f xs

let cycles ?chip compiler key w =
  let c, _, _ = model_cost ?chip compiler key w in
  c

let mem_ratio ?chip key w =
  let _, r, _ = model_cost ?chip Cms key w in
  r

(* End-to-end generative inference: one prefill pass over the prompt, then
   [out_len] decode steps with a growing KV cache. The per-token decode
   latency is sampled at three cache lengths and integrated with the
   trapezoid rule — decode cost is close to linear in kv length, and the
   paper's own block-reuse argument licenses the same shortcut. *)
let generative_cycles ?chip compiler key ~batch ~in_len ~out_len =
  let prefill = cycles ?chip compiler key (Workload.prefill ~batch in_len) in
  if out_len <= 0 then prefill
  else begin
    let sample kv = cycles ?chip compiler key (Workload.decode ~batch kv) in
    let k0 = in_len and k2 = in_len + out_len - 1 in
    let k1 = (k0 + k2) / 2 in
    let c0 = sample k0 and c1 = sample k1 and c2 = sample k2 in
    let n = float_of_int out_len in
    (* trapezoid over the two halves *)
    let decode_total = (((c0 +. c1) /. 2.) +. ((c1 +. c2) /. 2.)) *. (n /. 2.) in
    prefill +. decode_total
  end

(* Fig. 14-style end-to-end cost at the paper's "sequence length 64". *)
let e2e_cycles ?chip compiler key =
  match (Zoo.find key : Zoo.entry option) with
  | Some { family = Zoo.Cnn; _ } ->
    cycles ?chip compiler key (Workload.prefill ~batch:1 1)
  | Some { family = Zoo.Encoder_only; _ } ->
    cycles ?chip compiler key (Workload.prefill ~batch:1 64)
  | Some { family = Zoo.Decoder_only; _ } ->
    generative_cycles ?chip compiler key ~batch:1 ~in_len:64 ~out_len:64
  | None -> failwith ("unknown model " ^ key)

let fig14_models =
  [ "mobilenetv2"; "resnet18"; "vgg16"; "bert-large"; "llama2-7b"; "opt-13b" ]

let section title =
  Printf.printf "\n==== %s ====\n%!" title
