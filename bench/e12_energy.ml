(* E12 — energy efficiency. §3.2 claims dual-mode resource allocation can
   "significantly boost overall system performance and energy efficiency":
   keeping operands in on-chip memory-mode arrays avoids DRAM round-trips.
   We price both compilers' flows with the energy model and report energy
   and EDP. *)

open Common
module Energy_sim = Cim_sim.Energy_sim
module Timing = Cim_sim.Timing

let chip = Config.dynaplasia

let flow_of config key (w : Workload.t) =
  let e = Option.get (Zoo.find key) in
  let g = match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w in
  (Cmswitch.compile ~config chip g).Cmswitch.program

let restricted = Cmswitch.Config.(with_force_all_compute true default)

let run () =
  section "E12 | energy and energy-delay product (dual-mode vs all-compute)";
  let tbl =
    Table.create
      ~title:"per benchmark unit (one block for transformers, whole CNN)"
      [ ("model", Table.Left); ("CMSwitch uJ", Table.Right);
        ("CIM-MLC uJ", Table.Right); ("energy gain", Table.Right);
        ("EDP gain", Table.Right) ]
  in
  List.iter
    (fun (key, w) ->
      let dual = Energy_sim.run chip (flow_of Cmswitch.Config.default key w) in
      let fixed = Energy_sim.run chip (flow_of restricted key w) in
      Table.add_row tbl
        [ (Option.get (Zoo.find key)).Zoo.display;
          Table.cell_f dual.Energy_sim.energy.Energy_sim.total_uj;
          Table.cell_f fixed.Energy_sim.energy.Energy_sim.total_uj;
          Table.cell_speedup
            (fixed.Energy_sim.energy.Energy_sim.total_uj
            /. dual.Energy_sim.energy.Energy_sim.total_uj);
          Table.cell_speedup
            (fixed.Energy_sim.edp_uj_ms /. dual.Energy_sim.edp_uj_ms) ])
    [ ("mobilenetv2", Workload.prefill ~batch:1 1);
      ("resnet18", Workload.prefill ~batch:1 1);
      ("vgg16", Workload.prefill ~batch:1 1);
      ("bert-large", Workload.prefill ~batch:1 64);
      ("llama2-7b", Workload.decode ~batch:1 64);
      ("opt-13b", Workload.decode ~batch:1 64) ];
  Table.print tbl;
  (* detailed breakdown for one case *)
  let dual = Energy_sim.run chip (flow_of Cmswitch.Config.default "llama2-7b"
                                    (Workload.decode ~batch:1 64)) in
  Format.printf "LLaMA2-7B decode block, dual-mode:@.%a@." Energy_sim.pp dual
