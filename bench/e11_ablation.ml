(* E11 — ablations over CMSwitch's design choices (beyond the paper's own
   evaluation; DESIGN.md calls these out):
   a) sub-operator partition cap (granularity of §4.3.1's greedy split);
   b) DP segment-window length;
   c) exact MIP vs greedy marginal-gain allocation;
   d) the lexicographic refine phase;
   e) Eq. 9's max-approximation vs the discrete-event pipeline simulator. *)

open Common
module Opinfo = Cim_compiler.Opinfo
module Greedy = Cim_compiler.Greedy
module Pipeline = Cim_compiler.Pipeline

let chip = Config.dynaplasia

let compile_with config key (w : Workload.t) =
  let e = Option.get (Zoo.find key) in
  let g = match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w in
  let t0 = Sys.time () in
  let r = Cmswitch.compile ~config chip g in
  (r, Sys.time () -. t0)

let sweep_partition () =
  let tbl =
    Table.create ~title:"(a) partition cap (fraction of the chip per sub-operator)"
      [ ("fraction", Table.Right); ("BERT layer cycles", Table.Right);
        ("ops", Table.Right); ("VGG-16 cycles", Table.Right); ("ops", Table.Right) ]
  in
  List.iter
    (fun frac ->
      let config = Cmswitch.Config.(with_partition_fraction frac default) in
      let rb, _ = compile_with config "bert-large" (Workload.prefill ~batch:1 64) in
      let rv, _ = compile_with config "vgg16" (Workload.prefill ~batch:1 1) in
      Table.add_row tbl
        [ Table.cell_f frac;
          Table.cell_si rb.Cmswitch.schedule.Plan.total_cycles;
          string_of_int (Array.length rb.Cmswitch.ops);
          Table.cell_si rv.Cmswitch.schedule.Plan.total_cycles;
          string_of_int (Array.length rv.Cmswitch.ops) ])
    [ 0.25; 0.5; 0.75; 1.0 ];
  Table.print tbl

let sweep_window () =
  let tbl =
    Table.create ~title:"(b) DP segment-window length"
      [ ("max ops/segment", Table.Right); ("BERT layer cycles", Table.Right);
        ("segments", Table.Right); ("compile s", Table.Right) ]
  in
  List.iter
    (fun window ->
      let config = Cmswitch.Config.(with_max_segment_ops window default) in
      let r, secs = compile_with config "bert-large" (Workload.prefill ~batch:1 64) in
      Table.add_row tbl
        [ string_of_int window;
          Table.cell_si r.Cmswitch.schedule.Plan.total_cycles;
          string_of_int (List.length r.Cmswitch.schedule.Plan.segments);
          Table.cell_f ~digits:3 secs ])
    [ 1; 2; 4; 10; 16 ];
  Table.print tbl

let mip_vs_greedy () =
  let tbl =
    Table.create ~title:"(c) exact MIP vs greedy marginal-gain allocation (per segment)"
      [ ("workload", Table.Left); ("segment", Table.Right); ("MIP cycles", Table.Right);
        ("greedy cycles", Table.Right); ("greedy slower by", Table.Right) ]
  in
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let g = match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w in
      let ops = Opinfo.extract chip g in
      let segments, _ = Segment.run chip ops in
      (* ablate the first few multi-op segments *)
      let shown = ref 0 in
      List.iter
        (fun (s : Plan.seg_plan) ->
          if !shown < 3 && s.Plan.hi > s.Plan.lo then begin
            incr shown;
            match Greedy.solve chip ops ~lo:s.Plan.lo ~hi:s.Plan.hi with
            | None -> ()
            | Some gplan ->
              Table.add_row tbl
                [ key;
                  Printf.sprintf "[%d,%d]" s.Plan.lo s.Plan.hi;
                  Table.cell_f s.Plan.intra_cycles;
                  Table.cell_f gplan.Plan.intra_cycles;
                  Table.cell_speedup (gplan.Plan.intra_cycles /. s.Plan.intra_cycles) ]
          end)
        segments)
    [ ("bert-large", Workload.prefill ~batch:1 64);
      ("llama2-7b", Workload.decode ~batch:1 64);
      ("vgg16", Workload.prefill ~batch:1 1) ];
  Table.print tbl

let refine_ablation () =
  let tbl =
    Table.create ~title:"(d) lexicographic refine phase (array economy at equal latency)"
      [ ("model", Table.Left); ("cycles (refine on)", Table.Right);
        ("cycles (off)", Table.Right); ("switches on/off", Table.Right) ]
  in
  List.iter
    (fun (key, w) ->
      let on, _ = compile_with Cmswitch.Config.default key w in
      let off_config = Cmswitch.Config.(with_refine false default) in
      let off, _ = compile_with off_config key w in
      Table.add_row tbl
        [ key;
          Table.cell_si on.Cmswitch.schedule.Plan.total_cycles;
          Table.cell_si off.Cmswitch.schedule.Plan.total_cycles;
          Printf.sprintf "%d / %d"
            (Cim_metaop.Flow.count_switches on.Cmswitch.program)
            (Cim_metaop.Flow.count_switches off.Cmswitch.program) ])
    [ ("bert-large", Workload.prefill ~batch:1 64);
      ("resnet18", Workload.prefill ~batch:1 1) ];
  Table.print tbl

let pipeline_vs_eq9 () =
  let tbl =
    Table.create
      ~title:"(e) Eq. 9 max-approximation vs discrete-event pipeline (8 tiles)"
      [ ("workload", Table.Left); ("Eq. 9 intra sum", Table.Right);
        ("DES makespan sum", Table.Right); ("underestimate", Table.Right) ]
  in
  List.iter
    (fun (key, w) ->
      let e = Option.get (Zoo.find key) in
      let g = match e.Zoo.layer with Some f -> f w | None -> e.Zoo.build w in
      let ops = Opinfo.extract chip g in
      let segments, _ = Segment.run chip ops in
      let eq9, des =
        List.fold_left
          (fun (a, b) (s : Plan.seg_plan) ->
            let makespan, _ = Pipeline.simulate chip ops s () in
            (a +. s.Plan.intra_cycles, b +. makespan))
          (0., 0.) segments
      in
      Table.add_row tbl
        [ key; Table.cell_si eq9; Table.cell_si des; Table.cell_speedup (des /. eq9) ])
    [ ("bert-large", Workload.prefill ~batch:1 64);
      ("vgg16", Workload.prefill ~batch:1 1);
      ("llama2-7b", Workload.decode ~batch:1 64) ];
  Table.print tbl;
  (* show one segment's timeline *)
  let g = (Option.get (Option.get (Zoo.find "bert-large")).Zoo.layer)
            (Workload.prefill ~batch:1 64) in
  let ops = Opinfo.extract chip g in
  let segments, _ = Segment.run chip ops in
  (match List.find_opt (fun (s : Plan.seg_plan) -> s.Plan.hi > s.Plan.lo) segments with
  | Some s ->
    let _, events = Pipeline.simulate chip ops s ~tiles:6 () in
    print_string (Pipeline.gantt events)
  | None -> ())

let run () =
  section "E11 | ablations over the compiler's design choices";
  sweep_partition ();
  sweep_window ();
  mip_vs_greedy ();
  refine_ablation ();
  pipeline_vs_eq9 ()
