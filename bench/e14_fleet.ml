(* E14 — fault-tolerant fleet serving: throughput and tail latency vs
   offered load, with and without mid-run fault events. Each sweep point
   replays the same seeded Poisson trace through Cim_sim.Fleet at a given
   offered load rho = service_cost / (chips * mean_gap); the faulty rows
   add a seeded mid-run fault schedule, forcing online recompiles (warm
   from a shared cache directory) and SLO shedding. The interesting output
   is the saturation knee: the first load where the p95 latency departs
   from the light-load baseline. *)

open Common
module Fleet = Cim_sim.Fleet
module Serving = Cim_sim.Serving
module Faultmap = Cim_arch.Faultmap
module Store = Cim_cache.Store

let model = "resnet18"
let chips = 2
let requests = 64
let output_tokens = 16
let rhos = [ 0.25; 0.5; 0.75; 0.9; 1.1; 1.5 ]

let graph_of key =
  let e = Option.get (Zoo.find key) in
  match e.Zoo.family with
  | Zoo.Cnn -> e.Zoo.build (Workload.prefill ~batch:1 1)
  | Zoo.Encoder_only -> (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64)
  | Zoo.Decoder_only -> (Option.get e.Zoo.layer) (Workload.decode ~batch:1 64)

let run () =
  section "E14 | fleet serving: load sweep with runtime faults";
  let chip = Config.dynaplasia in
  let graph = graph_of model in
  (* one cache directory for the whole sweep: every recompile against a
     previously-seen fault map replays from the program tier *)
  let dir = Filename.temp_dir "cmswitch-bench-fleet" "" in
  let store = Store.open_dir dir in
  let base_cfg =
    Cmswitch.Config.(default |> with_jobs 1 |> with_cache (Some store))
  in
  let pass =
    (Cmswitch.compile ~config:base_cfg chip graph).Cmswitch.schedule
      .Plan.total_cycles
  in
  let flat pass =
    { Serving.prefill_cycles = (fun _ -> pass); decode_cycles = (fun _ -> pass) }
  in
  let planner ~chip:_ ~faults:fm =
    let cfg =
      if Faultmap.fault_count fm = 0 then base_cfg
      else Cmswitch.Config.with_faults (Some fm) base_cfg
    in
    match Cmswitch.recompile ~config:cfg chip graph with
    | Ok o ->
      Some
        { Fleet.level = o.Cmswitch.rc_level;
          profile = flat o.Cmswitch.rc_result.Cmswitch.schedule.Plan.total_cycles }
    | Error _ -> None
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf "%s x%d chips, %d requests: offered load sweep" model
           chips requests)
      [ ("rho", Table.Right); ("faults", Table.Left); ("offered", Table.Right);
        ("completed", Table.Right); ("dropped", Table.Right);
        ("shed", Table.Right); ("recompiles", Table.Right);
        ("p50 (cyc)", Table.Right); ("p95 (cyc)", Table.Right);
        ("p99 (cyc)", Table.Right); ("tok/Mcyc", Table.Right) ]
  in
  let p95_base = ref [] (* (faulty, p95 at lightest load) *) in
  let knee = ref [] in
  List.iter
    (fun faulty ->
      List.iter
        (fun rho ->
          (* a full request costs prefill + output_tokens passes; rho is
             offered load relative to the whole fleet's service rate *)
          let unit_cost = pass *. float_of_int (1 + output_tokens) in
          let mean_gap = unit_cost /. (float_of_int chips *. rho) in
          let reqs =
            Serving.poisson_trace (Cim_util.Rng.create 42) ~n:requests
              ~mean_gap ~prompt:64 ~output:output_tokens
          in
          let horizon =
            List.fold_left
              (fun acc (r : Serving.request) -> Float.max acc r.Serving.arrival)
              pass reqs
          in
          let schedule =
            if not faulty then []
            else
              Fleet.random_schedule (Cim_util.Rng.create 7) ~chip ~chips ~n:4
                ~horizon
          in
          let config =
            { Fleet.default_config with
              Fleet.chips;
              (* generous target: p95 gets to grow ~8x under overload
                 before admission control caps it, so the knee is visible;
                 shedding (17 passes -> 5) engages well before drops *)
              slo = Some (8. *. unit_cost);
              backoff_base = 0.25 *. pass;
              backoff_cap = 4. *. pass;
              recompile_cycles = pass;
              jobs = 1 }
          in
          let s = Fleet.run ~config ~chip planner schedule reqs in
          (* knee detection: p95 departing 3x from this scenario's
             lightest-load baseline *)
          (match List.assoc_opt faulty !p95_base with
          | None -> p95_base := (faulty, s.Fleet.p95_latency) :: !p95_base
          | Some base ->
            if
              s.Fleet.p95_latency > 3. *. base
              && not (List.mem_assoc faulty !knee)
            then knee := (faulty, rho) :: !knee);
          Table.add_row tbl
            [ Printf.sprintf "%.2f" rho; (if faulty then "yes" else "no");
              string_of_int s.Fleet.offered; string_of_int s.Fleet.completed;
              string_of_int s.Fleet.dropped; string_of_int s.Fleet.shed;
              string_of_int s.Fleet.recompiles;
              Printf.sprintf "%.3e" s.Fleet.p50_latency;
              Printf.sprintf "%.3e" s.Fleet.p95_latency;
              Printf.sprintf "%.3e" s.Fleet.p99_latency;
              Table.cell_f ~digits:1 s.Fleet.tokens_per_megacycle ])
        rhos)
    [ false; true ];
  Table.print tbl;
  List.iter
    (fun faulty ->
      match List.assoc_opt faulty !knee with
      | Some rho ->
        Printf.printf "saturation knee (%s faults): p95 departs 3x at rho=%.2f\n"
          (if faulty then "with" else "without")
          rho
      | None ->
        Printf.printf
          "saturation knee (%s faults): not reached in this sweep\n"
          (if faulty then "with" else "without"))
    [ false; true ];
  ignore (Store.clear store)
