(* E16 — kernel engine: boxed seed loops vs the Bigarray backend, micro
   (ns/mac on BERT-shaped matmuls) and end-to-end (functional simulation of
   a bert-large encoder block), with a jobs sweep over the parallel
   functional simulator. Every row checks the determinism contract: the
   Bigarray result must be bitwise identical to the boxed serial seed
   (exactly equal int8 accumulators on the quantized path), at every job
   count. The speedup column is machine-dependent — the jobs sweep only
   pays off with spare cores — so CI asserts identity, not the ratio. *)

open Common
module Kernels = Cim_tensor.Kernels
module Tensor = Cim_tensor.Tensor
module Shape = Cim_tensor.Shape
module Quant = Cim_tensor.Quant
module Ops = Cim_tensor.Ops
module Graph = Cim_nnir.Graph
module Functional = Cim_sim.Functional
module Rng = Cim_util.Rng

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* min over [n] trials: the harness shares the machine with other tenants,
   and the minimum is the least-disturbed sample *)
let best n f =
  let t = ref infinity and r = ref None in
  for _ = 1 to n do
    let v, d = time f in
    r := Some v;
    if d < !t then t := d
  done;
  (Option.get !r, !t)

let run () =
  section "E16 | kernel engine: boxed vs Bigarray + parallel functional sim";
  (* --- micro: BERT-large projection and FFN matmul shapes --- *)
  let tbl =
    Table.create ~title:"matmul kernels (min of 3, seq=64)"
      [ ("kernel", Table.Left); ("shape", Table.Left);
        ("boxed ns/mac", Table.Right); ("bigarray ns/mac", Table.Right);
        ("speedup", Table.Right); ("identical", Table.Left) ]
  in
  let rng = Rng.create 11 in
  let shapes = [ (64, 1024, 1024); (64, 1024, 4096) ] in
  List.iter
    (fun (m, k, n) ->
      let a = Tensor.rand rng (Shape.of_list [ m; k ]) ~lo:(-1.) ~hi:1. in
      let b = Tensor.rand rng (Shape.of_list [ k; n ]) ~lo:(-1.) ~hi:1. in
      let macs = float_of_int (m * k * n) in
      let fbox, tb = best 3 (fun () -> Kernels.with_backend Kernels.Boxed (fun () -> Ops.matmul a b)) in
      let fbig, tg = best 3 (fun () -> Kernels.with_backend Kernels.Bigarray (fun () -> Ops.matmul a b)) in
      let identical = Tensor.data fbox = Tensor.data fbig in
      Table.add_row tbl
        [ "float64"; Printf.sprintf "%dx%dx%d" m k n;
          Table.cell_f ~digits:2 (tb /. macs *. 1e9);
          Table.cell_f ~digits:2 (tg /. macs *. 1e9);
          Table.cell_speedup (tb /. tg);
          (if identical then "yes" else "NO") ];
      let qa = Quant.quantize a and qb = Quant.quantize b in
      let qbox, tb = best 3 (fun () -> Kernels.with_backend Kernels.Boxed (fun () -> Quant.matmul qa qb)) in
      let qbig, tg = best 3 (fun () -> Kernels.with_backend Kernels.Bigarray (fun () -> Quant.matmul qa qb)) in
      let identical = qbox.Quant.values = qbig.Quant.values in
      Table.add_row tbl
        [ "int8"; Printf.sprintf "%dx%dx%d" m k n;
          Table.cell_f ~digits:2 (tb /. macs *. 1e9);
          Table.cell_f ~digits:2 (tg /. macs *. 1e9);
          Table.cell_speedup (tb /. tg);
          (if identical then "yes" else "NO") ])
    shapes;
  Table.print tbl;
  (* --- end-to-end: functional simulation of a bert-large block --- *)
  let e = Option.get (Zoo.find "bert-large") in
  let g0 = (Option.get e.Zoo.layer) (Workload.prefill ~batch:1 64) in
  let chip = Config.dynaplasia in
  let r = Cmswitch.compile ~config:Cmswitch.Config.(default |> with_jobs 1) chip g0 in
  let rng = Rng.create 7 in
  let g = Graph.with_random_values rng r.Cmswitch.graph in
  let inputs =
    List.map
      (fun (n, sh) -> (n, Tensor.rand rng sh ~lo:(-1.) ~hi:1.))
      g.Graph.graph_inputs
  in
  let sim ~backend ~jobs () =
    Functional.run chip ~jobs ~backend g r.Cmswitch.program ~inputs
  in
  let tbl =
    Table.create
      ~title:"functional sim, bert-large block (prefill batch=1 seq=64)"
      [ ("backend", Table.Left); ("jobs", Table.Right);
        ("cold (s)", Table.Right); ("warm (s)", Table.Right);
        ("speedup", Table.Right); ("identical", Table.Left) ]
  in
  let rep0, t0_cold = time (sim ~backend:Kernels.Boxed ~jobs:1) in
  let _, t0_warm = best 2 (sim ~backend:Kernels.Boxed ~jobs:1) in
  let d0 = Functional.digest rep0 in
  Table.add_row tbl
    [ "boxed (seed)"; "1"; Table.cell_f ~digits:3 t0_cold;
      Table.cell_f ~digits:3 t0_warm; Table.cell_speedup 1.0; "yes" ];
  List.iter
    (fun jobs ->
      let rep, t_cold = time (sim ~backend:Kernels.Bigarray ~jobs) in
      let _, t_warm = best 2 (sim ~backend:Kernels.Bigarray ~jobs) in
      let identical = Functional.digest rep = d0 in
      Table.add_row tbl
        [ "bigarray"; string_of_int jobs; Table.cell_f ~digits:3 t_cold;
          Table.cell_f ~digits:3 t_warm;
          Table.cell_speedup (t0_warm /. t_warm);
          (if identical then "yes" else "NO") ])
    [ 1; 2; 4 ];
  Table.print tbl;
  print_endline
    "speedup is vs the boxed serial seed (warm/warm); identical = the\n\
     functional-sim digest (outputs + stats) matches the seed's, byte for\n\
     byte - required at every backend and job count. jobs only pay off\n\
     with spare cores; the kernel win is core-count independent"
