(* E15 — telemetry overhead: the same fleet run with observability off,
   with a telemetry collector attached, and with the full stack on
   (collector + metrics registry + bounded Chrome trace). The serving
   stats must be byte-identical in all three configurations — telemetry is
   recording-only — and the wall-clock delta is the price of recording.
   Uses a compiler-free planner so the measured loop is the DES event loop
   itself, not plan compilation. *)

open Common
module Chip = Cim_arch.Chip
module Faultmap = Cim_arch.Faultmap
module Fleet = Cim_sim.Fleet
module Serving = Cim_sim.Serving
module Telemetry = Cim_obs.Telemetry
module Timeline = Cim_obs.Timeline
module Trace = Cim_obs.Trace
module Metrics = Cim_obs.Metrics

let chips = 4
let requests = 256
let rounds = 3

let run () =
  section "E15 | telemetry overhead: fleet serving with observability off/on";
  let chip = Config.dynaplasia in
  let planner ~chip:_ ~faults:fm =
    let flex = Faultmap.flexible_count fm in
    if flex = 0 then None
    else
      let pass = 1e4 *. float_of_int chip.Chip.n_arrays /. float_of_int flex in
      Some
        { Fleet.level = (if flex = chip.Chip.n_arrays then 0 else 1);
          profile =
            { Serving.prefill_cycles = (fun _ -> pass);
              decode_cycles = (fun _ -> pass) } }
  in
  let reqs =
    (* one request is prefill + 8 decode passes (~9e4 cycles on a healthy
       chip); a 2.8e4-cycle mean gap over 4 chips is ~0.8 offered load *)
    Serving.poisson_trace (Cim_util.Rng.create 42) ~n:requests ~mean_gap:2.8e4
      ~prompt:64 ~output:8
  in
  let horizon =
    List.fold_left
      (fun acc (r : Serving.request) -> Float.max acc r.Serving.arrival)
      1e4 reqs
  in
  let schedule =
    Fleet.random_schedule (Cim_util.Rng.create 7) ~chip ~chips ~n:6 ~horizon
  in
  let config =
    { Fleet.default_config with
      Fleet.chips;
      slo = Some 3e5;
      backoff_base = 1e3;
      backoff_cap = 6.4e4;
      recompile_cycles = 1e4;
      jobs = 1 }
  in
  let time f =
    (* best of [rounds]: the quantity of interest is the cheapest
       achievable loop, not scheduler noise *)
    let best = ref Float.infinity and result = ref None in
    for _ = 1 to rounds do
      let t0 = Unix.gettimeofday () in
      let r = f () in
      let dt = Unix.gettimeofday () -. t0 in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let baseline, t_off =
    time (fun () -> Fleet.run ~config ~chip planner schedule reqs)
  in
  let interval = Float.max 1. (horizon /. 50.) in
  let last_tele = ref None in
  let collector, t_coll =
    time (fun () ->
        let tele = Telemetry.create ~snapshot_interval:interval ~slo_budget:0.05 () in
        last_tele := Some tele;
        Fleet.run ~config ~telemetry:tele ~chip planner schedule reqs)
  in
  let tele = Option.get !last_tele in
  let full, t_full =
    time (fun () ->
        Metrics.set_enabled true;
        Metrics.reset ();
        Trace.set_enabled true;
        Trace.reset ();
        Trace.set_capacity (Some 4096);
        Fun.protect
          ~finally:(fun () ->
            Trace.set_capacity None;
            Trace.set_enabled false;
            Trace.reset ();
            Metrics.set_enabled false;
            Metrics.reset ())
          (fun () ->
            let t =
              Telemetry.create ~snapshot_interval:interval ~slo_budget:0.05 ()
            in
            Fleet.run ~config ~telemetry:t ~chip planner schedule reqs))
  in
  let tbl =
    Table.create
      ~title:
        (Printf.sprintf
           "%d chips, %d requests, %d faults: recording cost (best of %d)"
           chips requests (List.length schedule) rounds)
      [ ("observability", Table.Left); ("wall (ms)", Table.Right);
        ("overhead", Table.Right); ("spans", Table.Right);
        ("snapshots", Table.Right); ("stats identical", Table.Left) ]
  in
  let pct t = 100. *. (t -. t_off) /. t_off in
  Table.add_row tbl
    [ "off"; Printf.sprintf "%.2f" (1e3 *. t_off); "-"; "-"; "-"; "-" ];
  Table.add_row tbl
    [ "collector"; Printf.sprintf "%.2f" (1e3 *. t_coll);
      Printf.sprintf "%+.1f%%" (pct t_coll);
      string_of_int (Telemetry.span_count tele);
      string_of_int (Timeline.count (Telemetry.timeline tele));
      (if collector = baseline then "yes" else "NO") ];
  Table.add_row tbl
    [ "collector+metrics+trace"; Printf.sprintf "%.2f" (1e3 *. t_full);
      Printf.sprintf "%+.1f%%" (pct t_full); "-"; "-";
      (if full = baseline then "yes" else "NO") ];
  Table.print tbl;
  Printf.printf
    "served %d/%d, %d recompiles; telemetry must never change a stat\n"
    baseline.Fleet.completed baseline.Fleet.offered baseline.Fleet.recompiles
