(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index). With no argument,
   runs E1-E10 in paper order; pass experiment ids ("e3 e5") to run a
   subset, or "micro" for the bechamel pass-level benchmarks. *)

let experiments =
  [
    ("e1", "Fig. 1(b)/5(a)(b): performance vs compute/memory split", E01_heatmap.run);
    ("e2", "Figs. 5(c)/6: arithmetic intensity", E02_intensity.run);
    ("e3", "Fig. 14: end-to-end speedup vs baselines", E03_end_to_end.run);
    ("e4", "Fig. 15: compute/memory allocation demonstration", E04_allocation.run);
    ("e5", "Fig. 16: workload-scale sensitivity", E05_workload_scale.run);
    ("e6", "Fig. 17: generative-model sweeps", E06_generative.run);
    ("e7", "S5.5: dual-mode switch overhead", E07_overhead.run);
    ("e8", "S5.5: PRIME scalability", E08_prime.run);
    ("e9", "Fig. 18: compilation overhead", E09_compile_time.run);
    ("e10", "Table 2 + Fig. 4: configuration and mapping contrast", E10_config.run);
    ("e11", "ablations: partitioning, DP window, MIP vs greedy, Eq. 9 vs DES", E11_ablation.run);
    ("e12", "energy and EDP, dual-mode vs all-compute", E12_energy.run);
    ("e13", "compilation cache: cold vs warm compile", E13_cache.run);
    ("e14", "fleet serving: load sweep with runtime faults", E14_fleet.run);
    ("e15", "telemetry overhead: fleet run with observability off/on", E15_telemetry.run);
    ("e16", "kernel engine: boxed vs Bigarray + parallel functional sim", E16_kernels.run);
    ("e17", "dynamic shapes: bucketed + incremental decode-sweep compile", E17_dynshape.run);
    ("e18", "MMIO command-stream ISA: lowering + machine-level simulator", E18_isa.run);
    ("micro", "bechamel micro-benchmarks", Micro.run);
    ("solver", "per-MILP solver cost, revised vs dense backend", Micro.run_solver);
  ]

let usage () =
  print_endline
    "usage: main.exe [e1 .. e18 | micro | solver | all] ... [--csv DIR] [--json FILE]";
  List.iter (fun (id, desc, _) -> Printf.printf "  %-5s %s\n" id desc) experiments

(* Sys.mkdir is not recursive; "--csv out/csv" must create "out" first. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir && parent <> "." then mkdir_p parent;
    try Sys.mkdir dir 0o755
    with Sys_error _ when Sys.is_directory dir -> ()
  end

module J = Cim_obs.Json

(* collected via the Table sink: every printed table becomes one JSON
   record, numeric-looking cells lifted to JSON numbers *)
let json_tables : J.t list ref = ref []

let cell_to_json c =
  match int_of_string_opt c with
  | Some i -> J.Int i
  | None -> begin
    match float_of_string_opt c with
    | Some f when Float.is_finite f -> J.Float f
    | Some _ | None -> J.String c
  end

let collect_table t =
  let title =
    match Cim_util.Table.title t with Some s -> J.String s | None -> J.Null
  in
  json_tables :=
    J.Obj
      [ ("title", title);
        ("headers", J.List (List.map (fun h -> J.String h) (Cim_util.Table.headers t)));
        ("rows",
         J.List
           (List.map
              (fun row -> J.List (List.map cell_to_json row))
              (Cim_util.Table.data_rows t))) ]
    :: !json_tables

let write_json file =
  let doc =
    J.Obj
      [ ("harness", J.String "cmswitch-bench");
        ("experiments", J.List (List.rev !json_tables)) ]
  in
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string ~pretty:true doc));
  Printf.printf "json results written to %s\n" file

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --csv DIR: additionally dump every printed table as CSV into DIR;
     --json FILE: dump every printed table's rows as one JSON document *)
  let json_file = ref None in
  let rec strip_flags acc = function
    | "--csv" :: dir :: rest ->
      mkdir_p dir;
      Cim_util.Table.set_csv_dir (Some dir);
      strip_flags acc rest
    | "--json" :: file :: rest ->
      json_file := Some file;
      Cim_util.Table.set_sink (Some collect_table);
      strip_flags acc rest
    | x :: rest -> strip_flags (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = strip_flags [] args in
  let requested = if args = [] then [ "all" ] else args in
  if List.mem "-h" requested || List.mem "--help" requested then usage ()
  else begin
    print_endline "CMSwitch evaluation harness (paper: ASPLOS'25)";
    List.iter
      (fun req ->
        if req = "all" then
          List.iter
            (fun (id, _, f) -> if id <> "micro" && id <> "solver" then f ())
            experiments
        else
          match List.find_opt (fun (id, _, _) -> id = req) experiments with
          | Some (_, _, f) -> f ()
          | None ->
            Printf.printf "unknown experiment %S\n" req;
            usage ();
            exit 1)
      requested;
    Option.iter write_json !json_file
  end
